#!/usr/bin/env bash
# Docs-link check (ctest label `docs`): the prose entry points must exist,
# every bench binary and example must be mentioned in the docs, intra-docs
# markdown links must resolve to existing files, and source-file comments
# must not reference doc sections that no longer exist — so the documented
# surface cannot silently drift from the built one.
#
#   tools/check_docs.sh [repo_root]
set -u
ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
status=0

fail() {
  echo "FAIL: $*" >&2
  status=1
}

# 1. The prose entry points exist and are non-empty.
for doc in README.md docs/architecture.md docs/benchmarks.md docs/serving.md docs/resilience.md docs/model_zoo.md docs/networking.md docs/optimizer.md; do
  if [ ! -s "$ROOT/$doc" ]; then
    fail "$doc is missing or empty"
  fi
done

# 2. Every bench binary is documented in docs/benchmarks.md.
for src in "$ROOT"/bench/bench_*.cc; do
  name="$(basename "$src" .cc)"
  if ! grep -q "$name" "$ROOT/docs/benchmarks.md"; then
    fail "bench/$name.cc is not mentioned in docs/benchmarks.md"
  fi
done

# 3. Every example is documented (README.md or docs/*.md).
for src in "$ROOT"/examples/*.cpp; do
  name="$(basename "$src" .cpp)"
  if ! grep -q "$name" "$ROOT/README.md" "$ROOT"/docs/*.md; then
    fail "examples/$name.cpp is not mentioned in README.md or docs/"
  fi
done

# 4. Docs must not reference source files that do not exist (catches
# renames). Checks `src/...`, `bench/...`, `examples/...`, `tools/...`
# paths with an extension.
for doc in "$ROOT/README.md" "$ROOT"/docs/*.md; do
  for ref in $(grep -oE '\b(src|bench|examples|tools)/[A-Za-z0-9_./-]+\.(h|cc|cpp|sh)\b' "$doc" | sort -u); do
    # `src/nn/layers.*`-style globs are written without extension, so only
    # explicit single-file references arrive here.
    if [ ! -f "$ROOT/$ref" ]; then
      fail "$(basename "$doc") references missing file $ref"
    fi
  done
done

# 5. Intra-docs markdown links must resolve: every relative `](path)` link
# in README.md and docs/*.md (external URLs and pure #anchors excluded)
# must point at an existing file, resolved against the linking doc's
# directory.
for doc in "$ROOT/README.md" "$ROOT"/docs/*.md; do
  doc_dir="$(dirname "$doc")"
  for link in $(grep -oE '\]\([^)#]+(#[A-Za-z0-9_.-]*)?\)' "$doc" \
                 | sed -E 's/^\]\(//; s/\)$//; s/#.*$//' | sort -u); do
    case "$link" in
      ''|*://*|mailto:*) continue ;;  # anchors-only and external URLs
    esac
    if [ ! -e "$doc_dir/$link" ] && [ ! -e "$ROOT/$link" ]; then
      fail "$(basename "$doc") links to missing file $link"
    fi
  done
done

# 6. Source comments referencing a doc section ("docs/architecture.md §7",
# "serving.md §3", ...) must name a section that exists as a `## N.`
# heading — catches renumbering a doc out from under the code that cites
# it.
for src in "$ROOT"/src/**/*.h "$ROOT"/src/**/*.cc "$ROOT"/src/*/*/*.h \
           "$ROOT"/src/*/*/*.cc "$ROOT"/bench/*.cc "$ROOT"/bench/*.h \
           "$ROOT"/examples/*.cpp "$ROOT"/tests/*.cc "$ROOT"/tests/*.h; do
  [ -f "$src" ] || continue
  while read -r ref; do
    [ -n "$ref" ] || continue
    docname="$(printf '%s' "$ref" | sed -E 's/^(docs\/)?([A-Za-z0-9_-]+\.md).*$/\2/')"
    section="$(printf '%s' "$ref" | sed -E 's/^.*§([0-9]+).*$/\1/')"
    docfile="$ROOT/docs/$docname"
    if [ ! -f "$docfile" ]; then
      fail "$(basename "$src") references missing doc $docname (§$section)"
      continue
    fi
    if ! grep -qE "^## $section\." "$docfile"; then
      fail "$(basename "$src") references $docname §$section, which has no '## $section.' heading"
    fi
  done < <(grep -ohE '(docs/)?[A-Za-z0-9_-]+\.md §[0-9]+' "$src" | sort -u)
done

if [ "$status" -eq 0 ]; then
  echo "docs check passed"
fi
exit $status
