#!/usr/bin/env bash
# Docs-link check (ctest label `docs`): the prose entry points must exist,
# and every bench binary and example must be mentioned in the docs so the
# documented surface cannot silently drift from the built one.
#
#   tools/check_docs.sh [repo_root]
set -u
ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
status=0

fail() {
  echo "FAIL: $*" >&2
  status=1
}

# 1. The prose entry points exist and are non-empty.
for doc in README.md docs/architecture.md docs/benchmarks.md; do
  if [ ! -s "$ROOT/$doc" ]; then
    fail "$doc is missing or empty"
  fi
done

# 2. Every bench binary is documented in docs/benchmarks.md.
for src in "$ROOT"/bench/bench_*.cc; do
  name="$(basename "$src" .cc)"
  if ! grep -q "$name" "$ROOT/docs/benchmarks.md"; then
    fail "bench/$name.cc is not mentioned in docs/benchmarks.md"
  fi
done

# 3. Every example is documented (README.md or docs/*.md).
for src in "$ROOT"/examples/*.cpp; do
  name="$(basename "$src" .cpp)"
  if ! grep -q "$name" "$ROOT/README.md" "$ROOT"/docs/*.md; then
    fail "examples/$name.cpp is not mentioned in README.md or docs/"
  fi
done

# 4. Docs must not reference source files that do not exist (catches
# renames). Checks `src/...`, `bench/...`, `examples/...`, `tools/...`
# paths with an extension.
for doc in "$ROOT/README.md" "$ROOT"/docs/*.md; do
  for ref in $(grep -oE '\b(src|bench|examples|tools)/[A-Za-z0-9_./-]+\.(h|cc|cpp|sh)\b' "$doc" | sort -u); do
    # `src/nn/layers.*`-style globs are written without extension, so only
    # explicit single-file references arrive here.
    if [ ! -f "$ROOT/$ref" ]; then
      fail "$(basename "$doc") references missing file $ref"
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "docs check passed"
fi
exit $status
