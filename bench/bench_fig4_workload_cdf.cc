// Figure 4 reproduction: cumulative distribution of the true cardinalities
// of the generated workloads (training/In-Q vs Rand-Q) per dataset. The
// paper uses this plot to show that the two test workloads have markedly
// different distributions, i.e. Rand-Q really is a drifted workload.
//
// Flags: --queries=N --datasets=census,kdd,dmv
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace duet::bench {
namespace {

void PrintCdf(const char* name, const query::Workload& wl) {
  std::vector<double> cards;
  cards.reserve(wl.size());
  for (const auto& lq : wl) cards.push_back(static_cast<double>(lq.cardinality));
  std::sort(cards.begin(), cards.end());
  std::printf("%-8s", name);
  for (int decile = 0; decile <= 10; ++decile) {
    const size_t idx = std::min(cards.size() - 1, cards.size() * decile / 10);
    std::printf(" %9.0f", cards[idx]);
  }
  std::printf("\n");
}

void RunDataset(const data::Table& t, int queries) {
  std::printf("\n--- %s (%lld rows): cardinality at CDF deciles 0%%..100%% ---\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()));
  std::printf("%-8s", "workload");
  for (int d = 0; d <= 10; ++d) std::printf(" %8d%%", d * 10);
  std::printf("\n");
  PrintCdf("train", MakeTrainingWorkload(t, queries));
  PrintCdf("In-Q", MakeInQ(t, queries));
  PrintCdf("Rand-Q", MakeRandQ(t, queries));
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int queries = static_cast<int>(flags.GetInt("queries", static_cast<int64_t>(400 * scale)));
  const std::string datasets = flags.GetString("datasets", "census,kdd,dmv");
  std::printf("Figure 4 reproduction: workload cardinality CDFs\n");
  if (datasets.find("census") != std::string::npos) RunDataset(MakeCensus(scale), queries);
  if (datasets.find("kdd") != std::string::npos) RunDataset(MakeKdd(scale), queries);
  if (datasets.find("dmv") != std::string::npos) RunDataset(MakeDmv(scale), queries);
  std::printf("\nExpected shape: the In-Q/train CDF differs visibly from Rand-Q "
              "(different selectivity profile), demonstrating workload drift.\n");
  return 0;
}
