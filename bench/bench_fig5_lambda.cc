// Figure 5 reproduction: hyper-parameter study of the trade-off coefficient
// lambda on the Kddcup98-like dataset. Trains hybrid Duet with lambda in
// {1e-3, 1e-2, 1e-1, 1} and evaluates on Rand-Q; the paper selects 0.1.
//
// Flags: --epochs=N --queries=N
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 4));
  const int queries = static_cast<int>(flags.GetInt("queries", 100));

  data::Table t = MakeKdd(scale);
  const query::Workload train_wl = MakeTrainingWorkload(t, static_cast<int>(300 * scale));
  const query::Workload rand_q = MakeRandQ(t, queries);

  std::printf("Figure 5 reproduction: lambda sweep on %s, Rand-Q accuracy\n",
              t.name().c_str());
  std::printf("%-10s %10s %10s %10s %12s\n", "lambda", "mean", "median", "99th", "max");
  for (float lambda : {1e-3f, 1e-2f, 1e-1f, 1.0f}) {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.train_workload = &train_wl;
    topt.lambda = lambda;
    core::DuetTrainer(model, topt).Train();
    core::DuetEstimator est(model);
    const auto errors = query::EvaluateQErrors(est, rand_q, t.num_rows());
    const ErrorSummary s = ErrorSummary::FromValues(errors);
    std::printf("%-10g %10.3f %10.3f %10.3f %12.3f\n", static_cast<double>(lambda), s.mean,
                s.median, s.p99, s.max);
  }
  std::printf("\nExpected shape: a sweet spot near lambda = 0.1; very large lambda "
              "degrades generalization on random queries (paper Fig. 5).\n");
  return 0;
}
