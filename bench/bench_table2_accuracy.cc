// Table II reproduction: accuracy of all estimators on the three datasets
// under In-Workload and Random query workloads. Prints size (MB), mean
// estimation cost (ms) and the Q-error five-number summary per estimator,
// one block per dataset, mirroring the paper's Table II layout.
//
// Flags: --datasets=census,kdd,dmv  --epochs=N  --queries=N  --train_queries=N
//        --naru_samples=N  (env DUET_BENCH_SCALE grows the datasets)
#include <cstdio>
#include <memory>

#include "baselines/lw/lw_models.h"
#include "baselines/mscn/mscn_model.h"
#include "baselines/pgm/chow_liu.h"
#include "baselines/spn/spn.h"
#include "baselines/traditional/independence.h"
#include "baselines/traditional/mhist.h"
#include "baselines/traditional/sampling.h"
#include "bench/bench_util.h"

namespace duet::bench {
namespace {

struct DatasetPlan {
  data::Table table;
  int epochs;
  int naru_samples;
  int test_queries;
  int train_queries;
  /// UAE hybrid sampling configuration; kdd uses the paper-scale sample
  /// count, which the memory model rejects (Table II's "-" entries).
  int uae_samples;
  int64_t batch;
  /// Also run the extension baselines (LW-XGB / LW-NN [11], RobustMSCN
  /// [45], Chow-Liu PGM [40]) the paper cites but does not evaluate.
  bool extended = true;
};

void RunDataset(DatasetPlan plan) {
  const data::Table& t = plan.table;
  std::printf("\n=== dataset %s: %lld rows x %d cols ===\n", t.name().c_str(),
              static_cast<long long>(t.num_rows()), t.num_columns());

  const query::Workload train_wl = MakeTrainingWorkload(t, plan.train_queries);
  const query::Workload in_q = MakeInQ(t, plan.test_queries);
  const query::Workload rand_q = MakeRandQ(t, plan.test_queries);

  struct Entry {
    std::string name;
    std::unique_ptr<query::CardinalityEstimator> estimator;
  };
  std::vector<Entry> entries;

  // --- traditional ---
  entries.push_back({"Sampling", std::make_unique<baselines::SamplingEstimator>(t, 0.01)});
  entries.push_back({"Indep", std::make_unique<baselines::IndependenceEstimator>(t)});
  entries.push_back({"MHist", std::make_unique<baselines::MHistEstimator>(t, 1024)});

  // --- MSCN (query-driven) ---
  {
    baselines::MscnOptions mopt;
    mopt.epochs = 25;
    mopt.bitmap_size = 500;
    mopt.max_preds = t.num_columns();
    auto mscn = std::make_unique<baselines::MscnModel>(t, mopt);
    Timer timer;
    mscn->Train(train_wl);
    std::printf("[train] MSCN: %.1fs\n", timer.Seconds());
    entries.push_back({"MSCN", std::move(mscn)});
  }

  // --- extension baselines (cited in the paper, not in its Table II) ---
  if (plan.extended) {
    {
      baselines::LwXgbOptions lopt;
      lopt.gbdt.num_trees = 80;
      auto lw = std::make_unique<baselines::LwXgbEstimator>(t, lopt);
      Timer timer;
      lw->Train(train_wl);
      std::printf("[train] LW-XGB: %.1fs\n", timer.Seconds());
      entries.push_back({"LW-XGB", std::move(lw)});
    }
    {
      baselines::LwNnOptions lopt;
      lopt.epochs = 25;
      auto lw = std::make_unique<baselines::LwNnEstimator>(t, lopt);
      Timer timer;
      lw->Train(train_wl);
      std::printf("[train] LW-NN: %.1fs\n", timer.Seconds());
      entries.push_back({"LW-NN", std::move(lw)});
    }
    {
      baselines::MscnOptions mopt;
      mopt.epochs = 25;
      mopt.bitmap_size = 500;
      mopt.max_preds = t.num_columns();
      mopt.mask_prob = 0.15;
      auto robust = std::make_unique<baselines::MscnModel>(t, mopt);
      Timer timer;
      robust->Train(train_wl);
      std::printf("[train] RobustMSCN: %.1fs\n", timer.Seconds());
      entries.push_back({"RobustMSCN", std::move(robust)});
    }
    {
      Timer timer;
      auto pgm = std::make_unique<baselines::ChowLiuEstimator>(t);
      std::printf("[train] PGM: %.1fs\n", timer.Seconds());
      entries.push_back({"PGM", std::move(pgm)});
    }
  }

  // --- DeepDB (SPN) ---
  {
    Timer timer;
    auto spn = std::make_unique<baselines::SpnEstimator>(t);
    std::printf("[train] DeepDB: %.1fs\n", timer.Seconds());
    entries.push_back({"DeepDB", std::move(spn)});
  }

  // --- Naru ---
  auto naru_model =
      std::make_unique<baselines::NaruModel>(t, NaruOptionsFor(t, plan.naru_samples));
  {
    core::TrainOptions topt;
    topt.epochs = plan.epochs;
    topt.batch_size = plan.batch;
    Timer timer;
    baselines::NaruTrainer(*naru_model, topt).Train();
    std::printf("[train] Naru: %.1fs\n", timer.Seconds());
    entries.push_back({"Naru", std::make_unique<baselines::NaruEstimator>(*naru_model)});
  }

  // --- UAE (hybrid Naru) ---
  baselines::UaeOptions uopt;
  uopt.naru = NaruOptionsFor(t, plan.naru_samples);
  uopt.train_samples = plan.uae_samples;
  uopt.memory_budget_mb = 10240;  // RTX3080-sized accelerator (paper Sec. V-F)
  auto uae_model = std::make_unique<baselines::UaeModel>(t, uopt);
  bool uae_oom = false;
  {
    core::TrainOptions topt;
    topt.epochs = plan.epochs;
    topt.batch_size = plan.batch;
    topt.train_workload = &train_wl;
    Timer timer;
    baselines::UaeTrainer trainer(*uae_model, topt);
    trainer.Train();
    uae_oom = trainer.oom();
    if (uae_oom) {
      std::printf("[train] UAE: OOM (retained-activation estimate %.0f MB > budget)\n",
                  uae_model->EstimatedTrainMemoryMB(plan.batch / 8));
    } else {
      std::printf("[train] UAE: %.1fs\n", timer.Seconds());
      entries.push_back({"UAE", std::make_unique<baselines::UaeEstimator>(*uae_model)});
    }
  }

  // --- DuetD (data-driven only) ---
  auto duetd_model = std::make_unique<core::DuetModel>(t, DuetOptionsFor(t));
  {
    core::TrainOptions topt;
    topt.epochs = plan.epochs;
    topt.batch_size = plan.batch;
    Timer timer;
    core::DuetTrainer(*duetd_model, topt).Train();
    std::printf("[train] DuetD: %.1fs\n", timer.Seconds());
    entries.push_back({"DuetD", std::make_unique<core::DuetEstimator>(*duetd_model, "DuetD")});
  }

  // --- Duet (hybrid) ---
  auto duet_model = std::make_unique<core::DuetModel>(t, DuetOptionsFor(t));
  {
    core::TrainOptions topt;
    topt.epochs = plan.epochs;
    topt.batch_size = plan.batch;
    topt.train_workload = &train_wl;
    topt.lambda = 0.1f;
    Timer timer;
    core::DuetTrainer(*duet_model, topt).Train();
    std::printf("[train] Duet: %.1fs\n", timer.Seconds());
    entries.push_back({"Duet", std::make_unique<core::DuetEstimator>(*duet_model)});
  }

  for (const char* workload_name : {"In-Workload Queries", "Random Queries"}) {
    const query::Workload& wl =
        std::string(workload_name) == "In-Workload Queries" ? in_q : rand_q;
    PrintSectionRule();
    PrintAccuracyHeader(workload_name);
    for (auto& e : entries) {
      Timer timer;
      const auto errors = query::EvaluateQErrors(*e.estimator, wl, t.num_rows());
      const double cost_ms = timer.Millis() / static_cast<double>(wl.size());
      PrintAccuracyRow(e.name, e.estimator->SizeMB(), cost_ms,
                       ErrorSummary::FromValues(errors));
    }
    if (uae_oom) {
      std::printf("%-10s %8s %9s  (gradient-explosion / OOM at paper-scale sampling)\n",
                  "UAE", "-", "-");
    }
  }
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const std::string datasets = flags.GetString("datasets", "census,kdd,dmv");
  std::printf("Table II reproduction (scale %.2f). Shapes, not absolute numbers, are the "
              "target; see EXPERIMENTS.md.\n",
              scale);

  if (datasets.find("census") != std::string::npos) {
    DatasetPlan plan{MakeCensus(scale),
                     static_cast<int>(flags.GetInt("epochs", 6)),
                     static_cast<int>(flags.GetInt("naru_samples", 100)),
                     static_cast<int>(flags.GetInt("queries", 200)),
                     static_cast<int>(flags.GetInt("train_queries", 600)),
                     /*uae_samples=*/4,
                     flags.GetInt("batch", 128)};
    plan.extended = flags.GetInt("extended", 1) != 0;
    RunDataset(std::move(plan));
  }
  if (datasets.find("kdd") != std::string::npos) {
    DatasetPlan plan{MakeKdd(scale),
                     static_cast<int>(flags.GetInt("epochs", 4)),
                     static_cast<int>(flags.GetInt("naru_samples", 24)),
                     static_cast<int>(flags.GetInt("queries", 100)),
                     static_cast<int>(flags.GetInt("train_queries", 400)),
                     /*uae_samples=*/200,  // paper-scale: triggers the OOM path
                     flags.GetInt("batch", 128)};
    plan.extended = flags.GetInt("extended", 1) != 0;
    RunDataset(std::move(plan));
  }
  if (datasets.find("dmv") != std::string::npos) {
    DatasetPlan plan{MakeDmv(scale),
                     static_cast<int>(flags.GetInt("epochs", 3)),
                     static_cast<int>(flags.GetInt("naru_samples", 50)),
                     static_cast<int>(flags.GetInt("queries", 150)),
                     static_cast<int>(flags.GetInt("train_queries", 600)),
                     /*uae_samples=*/4,
                     flags.GetInt("batch", 256)};
    plan.extended = flags.GetInt("extended", 1) != 0;
    RunDataset(std::move(plan));
  }
  return 0;
}
