// Thread-scaling ablation (paper Sec. IV-E: "the N^2 part comes from the
// matrix multiplication and can be highly paralleled on the CPU with AVX
// instruction set", and Sec. IV-C's per-column parallel sampler).
//
// Sweeps the worker count and measures three parallel paths: batched
// estimation (the GPU-batching stand-in), Algorithm 1's virtual-tuple
// sampler, and single-query latency (whose small matmuls saturate early —
// the honest part of the curve).
//
// Flags: --rows=N --queries=N
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/sampler.h"

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int queries = static_cast<int>(flags.GetInt("queries", 256));

  data::Table t =
      data::DmvLike(flags.GetInt("rows", static_cast<int64_t>(20000 * scale)), 42);
  const query::Workload rand_q = MakeRandQ(t, queries);
  std::vector<query::Query> probe;
  probe.reserve(rand_q.size());
  for (const auto& lq : rand_q) probe.push_back(lq.query);

  // One trained model reused across thread counts (weights fixed; only the
  // execution substrate changes).
  core::DuetModel model(t, DuetOptionsFor(t));
  {
    core::TrainOptions topt;
    topt.epochs = 2;
    topt.batch_size = 256;
    core::DuetTrainer(model, topt).Train();
  }

  core::SamplerOptions sopt;
  sopt.expand = 4;
  core::VirtualTupleSampler sampler(t, sopt);
  std::vector<int64_t> anchors(2048);
  std::iota(anchors.begin(), anchors.end(), 0);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("Thread scaling on %s (%lld rows x %d cols), %u hardware threads\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()), t.num_columns(),
              hw);
  std::printf("%-8s %16s %16s %16s\n", "threads", "batch est(ms/q)", "sampler(Mtuple/s)",
              "single est(ms)");

  std::vector<unsigned> sweep;
  for (unsigned threads : {1u, 2u, 4u, hw}) {
    if (threads == 0 || threads > hw) continue;  // no oversubscription rows
    if (!sweep.empty() && threads <= sweep.back()) continue;
    sweep.push_back(threads);
  }
  std::string json_rows;
  for (unsigned threads : sweep) {
    ThreadPool::SetGlobalThreads(threads);

    Timer timer;
    model.EstimateSelectivityBatch(probe);
    const double batch_ms = timer.Millis() / static_cast<double>(probe.size());

    timer.Reset();
    const int kReps = 10;
    for (int r = 0; r < kReps; ++r) sampler.Sample(anchors, 1234 + r);
    const double tuples = static_cast<double>(kReps) *
                          static_cast<double>(anchors.size()) * sopt.expand;
    const double mtps = tuples / (timer.Millis() * 1000.0);

    timer.Reset();
    for (const query::Query& q : probe) model.EstimateSelectivity(q);
    const double single_ms = timer.Millis() / static_cast<double>(probe.size());

    std::printf("%-8u %16.4f %16.3f %16.4f\n", threads, batch_ms, mtps, single_ms);

    char row[160];
    std::snprintf(row, sizeof(row),
                  "%s{\"threads\":%u,\"batch_ms_per_q\":%.4f,\"sampler_mtps\":%.3f,"
                  "\"single_ms\":%.4f}",
                  json_rows.empty() ? "" : ",", threads, batch_ms, mtps, single_ms);
    json_rows += row;
  }
  ThreadPool::SetGlobalThreads(0);  // restore the default

  std::printf(
      "\nExpected shape: batched estimation and the per-column sampler scale\n"
      "with workers (the paper's parallel matmul / Algorithm 1 claims);\n"
      "single-query latency on a small MADE saturates early because its\n"
      "matmuls are below the parallel grain - the honest caveat.\n"
      "CAVEAT: hw_threads below is what scaling claims must be read against.\n"
      "On a 1-hardware-thread host the sweep collapses to a single serial\n"
      "row and NO parallel speedup is observable by construction - treat\n"
      "such runs as correctness smoke, not scaling evidence.\n");
  // hw_threads is recorded so a result archive can tell a real scaling
  // curve from a 1-core degenerate run (docs/benchmarks.md schema).
  std::printf("{\"bench\":\"ablation_threads\",\"hw_threads\":%u,\"rows\":[%s]}\n", hw,
              json_rows.c_str());
  return 0;
}
