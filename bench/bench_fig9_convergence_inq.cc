// Figure 9 reproduction: convergence of the max Q-error on In-Workload Queries
// as training progresses, for Duet, DuetD, Naru and UAE on the Kdd-like
// (high-dimensional) and DMV-like (high-cardinality) datasets. Expected
// shape: hybrid training (Duet vs DuetD) slightly speeds convergence on
// in-workload queries (paper Fig. 9).
//
// Flags: --epochs=N --queries=N --datasets=kdd,dmv
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace duet::bench {
namespace {

void RunDataset(const data::Table& t, int epochs, int /*queries*/, int naru_samples,
                int uae_samples, const query::Workload& eval_wl) {
  const query::Workload train_wl = MakeTrainingWorkload(t, 300);
  std::printf("\n--- %s: max Q-error on In-Q after each epoch ---\n", t.name().c_str());
  std::printf("%-8s", "epoch");
  for (int e = 1; e <= epochs; ++e) std::printf(" %9d", e);
  std::printf("\n");

  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.train_workload = &train_wl;
    core::DuetTrainer trainer(model, topt);
    std::printf("%-8s", "Duet");
    for (int e = 0; e < epochs; ++e) {
      trainer.TrainEpoch(e);
      core::DuetEstimator est(model);
      const auto errs = query::EvaluateQErrors(est, eval_wl, t.num_rows());
      std::printf(" %9.2f", ErrorSummary::FromValues(errs).max);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    core::DuetTrainer trainer(model, topt);
    std::printf("%-8s", "DuetD");
    for (int e = 0; e < epochs; ++e) {
      trainer.TrainEpoch(e);
      core::DuetEstimator est(model, "DuetD");
      const auto errs = query::EvaluateQErrors(est, eval_wl, t.num_rows());
      std::printf(" %9.2f", ErrorSummary::FromValues(errs).max);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  {
    baselines::NaruModel model(t, NaruOptionsFor(t, naru_samples));
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    baselines::NaruTrainer trainer(model, topt);
    std::printf("%-8s", "Naru");
    for (int e = 0; e < epochs; ++e) {
      trainer.TrainEpoch(e);
      baselines::NaruEstimator est(model);
      const auto errs = query::EvaluateQErrors(est, eval_wl, t.num_rows());
      std::printf(" %9.2f", ErrorSummary::FromValues(errs).max);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  {
    baselines::UaeOptions uopt;
    uopt.naru = NaruOptionsFor(t, naru_samples);
    uopt.train_samples = uae_samples;
    uopt.memory_budget_mb = 10240;
    baselines::UaeModel model(t, uopt);
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.train_workload = &train_wl;
    baselines::UaeTrainer trainer(model, topt);
    std::printf("%-8s", "UAE");
    for (int e = 0; e < epochs; ++e) {
      trainer.TrainEpoch(e);
      if (trainer.oom()) {
        std::printf(" %9s", "OOM");
        break;
      }
      baselines::UaeEstimator est(model);
      const auto errs = query::EvaluateQErrors(est, eval_wl, t.num_rows());
      std::printf(" %9.2f", ErrorSummary::FromValues(errs).max);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 5));
  const int queries = static_cast<int>(flags.GetInt("queries", 60));
  const std::string datasets = flags.GetString("datasets", "kdd,dmv");
  std::printf("Figure 9 reproduction: convergence on In-Workload Queries\n");
  if (datasets.find("kdd") != std::string::npos) {
    data::Table t = MakeKdd(scale);
    RunDataset(t, epochs, queries, /*naru_samples=*/16, /*uae_samples=*/200,
               MakeInQ(t, queries));
  }
  if (datasets.find("dmv") != std::string::npos) {
    data::Table t = MakeDmv(scale);
    RunDataset(t, epochs, queries, /*naru_samples=*/50, /*uae_samples=*/4,
               MakeInQ(t, queries));
  }
  return 0;
}
