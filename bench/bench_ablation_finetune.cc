// Long-tail fine-tuning ablation (paper Sec. IV-A): collect the served
// queries the deployed model estimates worst, fine-tune on them with the
// hybrid loss, and measure the tail before/after — plus a held-out workload
// to confirm the correction does not erode general accuracy.
//
// Flags: --epochs=N --rows=N --queries=N --threshold=Q
#include <cstdio>

#include "bench/bench_util.h"
#include "core/finetune.h"

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 5));
  const int queries = static_cast<int>(flags.GetInt("queries", 300));

  data::Table t =
      data::CensusLike(flags.GetInt("rows", static_cast<int64_t>(4000 * scale)), 42);
  const query::Workload served = MakeRandQ(t, queries);
  const query::Workload held_out = MakeInQ(t, queries);

  // A deliberately lightly-trained model so the tail has room to move.
  core::DuetModel model(t, DuetOptionsFor(t));
  core::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 128;
  topt.lambda = 0.0f;
  core::DuetTrainer(model, topt).Train();
  core::DuetEstimator est(model);

  auto summary = [&](const query::Workload& wl) {
    return ErrorSummary::FromValues(query::EvaluateQErrors(est, wl, t.num_rows()));
  };
  const ErrorSummary served_before = summary(served);
  const ErrorSummary held_before = summary(held_out);

  core::FineTuneOptions fopt;
  fopt.qerror_threshold = flags.GetInt("threshold", 3);
  fopt.epochs = 4;
  const core::FineTuneReport report = core::FineTune(model, served, fopt);

  const ErrorSummary served_after = summary(served);
  const ErrorSummary held_after = summary(held_out);

  std::printf("Long-tail fine-tuning on %s (%lld rows); collected %zu queries with "
              "QErr > %.1f\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()),
              report.collected.size(), fopt.qerror_threshold);
  std::printf("%-26s %9s %9s %9s %9s\n", "workload", "median", "99th", "max", "mean");
  std::printf("%-26s %9.3f %9.3f %9.3f %9.3f\n", "served (before)", served_before.median,
              served_before.p99, served_before.max, served_before.mean);
  std::printf("%-26s %9.3f %9.3f %9.3f %9.3f\n", "served (after)", served_after.median,
              served_after.p99, served_after.max, served_after.mean);
  std::printf("%-26s %9.3f %9.3f %9.3f %9.3f\n", "held-out (before)", held_before.median,
              held_before.p99, held_before.max, held_before.mean);
  std::printf("%-26s %9.3f %9.3f %9.3f %9.3f\n", "held-out (after)", held_after.median,
              held_after.p99, held_after.max, held_after.mean);
  std::printf("collected-set mean QErr: %.3f -> %.3f, max: %.3f -> %.3f\n",
              report.before_mean, report.after_mean, report.before_max, report.after_max);
  std::printf(
      "\nExpected shape: the collected tail shrinks decisively (that is the\n"
      "paper's Sec. IV-A promise) while held-out accuracy stays in the same\n"
      "band because the unsupervised replay term anchors the data\n"
      "distribution during fine-tuning.\n");
  return 0;
}
