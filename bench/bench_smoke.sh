#!/usr/bin/env bash
# Smoke-runs every bench binary at a tiny scale so the bench suite cannot
# silently bit-rot: each binary must exit 0. Wired into CTest as the
# `bench_smoke` label (ctest -L bench_smoke); also runnable by hand:
#
#   bench/bench_smoke.sh <build_dir>
#
# DUET_BENCH_SCALE shrinks datasets/workloads/training budgets; 0.05 keeps
# the whole sweep in CI-friendly time. DUET_BENCH_BACKENDS selects which
# packed-weight backends the throughput sweep smoke-runs (default: all
# four, so none of the backend code paths can silently bit-rot), and
# DUET_BENCH_PLAN which compiled-plan modes (default both, so the plan and
# per-layer execution paths are both exercised).
set -u
BUILD_DIR="${1:-build}"
export DUET_BENCH_SCALE="${DUET_BENCH_SCALE:-0.05}"
BACKENDS="${DUET_BENCH_BACKENDS:-dense,csr,int8,f16}"
PLAN_MODES="${DUET_BENCH_PLAN:-on,off}"

status=0
ran=0
for bin in "$BUILD_DIR"/bench_*; do
  [ -x "$bin" ] && [ -f "$bin" ] || continue
  name="$(basename "$bin")"
  extra=""
  case "$name" in
    # Keep the inference sweep short; coverage, not measurement. --backend
    # makes every packed-weight backend take the kernel + cache paths, and
    # the tiny --live_update run exercises the registry/hot-swap/worker
    # pipeline end to end.
    bench_table3_throughput)
      extra="--sweep_queries=64 --sweep_min_seconds=0.05 --backend=$BACKENDS --plan=$PLAN_MODES"
      extra="$extra --live_update --live_queries=128 --live_publishes=1"
      extra="$extra --live_min_seconds=0.5 --live_max_seconds=30"
      # The overload sweep smoke-runs the admission-control path (bounded
      # queue + deadlines + shed-to-fallback) at a sub-second phase length.
      extra="$extra --overload --overload_seconds=0.5" ;;
    # Small fleet + sub-second steady phase keeps the zoo smoke quick while
    # still exercising cold-start loads, Zipf traffic, eviction churn and
    # the zero-repack assertion (the binary exits nonzero if any zoo load
    # or serve repacked weights).
    bench_zoo)
      extra="--models=24 --cold_samples=16 --steady_seconds=0.3" ;;
    # Sub-second closed-loop phases over loopback: exercises the epoll
    # server, the DuetRpc codec, wire batching and the open-loop pacer
    # without turning the smoke into a throughput measurement.
    bench_net)
      extra="--net_min_seconds=0.15 --conns_sweep=1,4" ;;
    # Few queries + a short training budget keep the optimizer-in-the-loop
    # bench quick; the binary still plans through the zoo-mode serving
    # engine and exits nonzero unless the oracle provider reproduces the
    # optimal plan on every query (P-error == 1.0 exactly).
    bench_optimizer_plancost)
      extra="--queries=10 --epochs=6" ;;
  esac
  start=$(date +%s)
  if "$bin" $extra >/dev/null 2>&1; then
    echo "ok   $name ($(($(date +%s) - start))s)"
  else
    echo "FAIL $name (exit $?)"
    status=1
  fi
  ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
  echo "no bench binaries found under $BUILD_DIR" >&2
  exit 1
fi
exit $status
