// Model-zoo serving bench (docs/model_zoo.md): cold-start latency and
// steady-state throughput of serve::ModelZoo + the zoo-mode ServingEngine
// over a large population of snapshot artifacts.
//
// Phases:
//  1. Artifact fleet: trains/constructs a few distinct tiny models, writes
//     each as an mmap-able artifact (artifact/artifact.h), and registers
//     --models keys (default 1000 x DUET_BENCH_SCALE) that fan out over
//     those files — registration is metadata-only, so 1k+ models cost one
//     hash-map entry each until touched.
//  2. Cold start: with an empty zoo, measures load-to-first-estimate
//     latency (mmap + validate + encoder rebuild + one estimate) across a
//     sample of keys; reports p50/p99 and the pure-load share.
//  3. Steady state: Zipf-distributed keyed EstimateBatch traffic through a
//     zoo-mode ServingEngine under a memory budget that keeps only
//     --resident_pct of the fleet mapped, so the run continuously evicts
//     and reloads; reports q/s, loads, evictions and resident bytes.
//
// The zero-repack contract is asserted, not just reported: across every
// zoo load and every served batch, tensor::PackWeightsCalls() must not
// move ("repacks":0 in the JSON line) — artifact serving points PackedArray
// views at the mapping and never rebuilds a pack.
//
// Output: one {"bench":"zoo",...} JSON line (schema in docs/benchmarks.md).
// Flags: --models=N --distinct=N --resident_pct=P --zipf_s=S
//        --cold_samples=N --batch=N --steady_seconds=S --workers=N
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "serve/model_zoo.h"
#include "serve/serving_engine.h"
#include "tensor/packed_weights.h"

namespace duet::bench {
namespace {

/// Writes `distinct` tiny artifacts (one per seed) and returns their paths.
std::vector<std::string> WriteArtifactFleet(const data::Table& table, int distinct) {
  std::vector<std::string> paths;
  for (int i = 0; i < distinct; ++i) {
    core::DuetModelOptions opt;
    opt.hidden_sizes = {24, 24};
    opt.residual = true;
    opt.seed = 4242 + static_cast<uint64_t>(i);
    core::DuetModel model(table, opt);
    model.SetInferenceBackend(tensor::WeightBackend::kCsrF32);
    model.SetPlanEnabled(true);
    const std::string path =
        "/tmp/duet_bench_zoo_" + std::to_string(::getpid()) + "_" + std::to_string(i) + ".duet";
    const artifact::ArtifactStatus st =
        artifact::WriteArtifact(path, model, tensor::WeightBackend::kCsrF32);
    if (!st.ok) {
      std::fprintf(stderr, "artifact write failed: %s\n", st.error.c_str());
      std::exit(1);
    }
    paths.push_back(path);
  }
  return paths;
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();

  const int num_models = static_cast<int>(flags.GetInt(
      "models", std::max<int64_t>(8, static_cast<int64_t>(1000 * scale))));
  const int distinct = static_cast<int>(flags.GetInt("distinct", 8));
  const double resident_pct = flags.GetDouble("resident_pct", 25.0);
  const double zipf_s = flags.GetDouble("zipf_s", 1.1);
  const int cold_samples =
      static_cast<int>(flags.GetInt("cold_samples", std::min(num_models, 64)));
  const int batch = static_cast<int>(flags.GetInt("batch", 16));
  const double steady_seconds = flags.GetDouble("steady_seconds", 2.0 * scale);
  const unsigned workers = static_cast<unsigned>(flags.GetInt("workers", 2));

  std::printf("model-zoo serving bench: %d models (%d distinct artifacts)\n", num_models,
              distinct);

  const data::Table table = data::CensusLike(1500, 42);
  const std::vector<std::string> paths = WriteArtifactFleet(table, distinct);
  const query::Workload workload = MakeRandQ(table, 256);
  std::vector<query::Query> queries;
  for (const auto& lq : workload) queries.push_back(lq.query);

  // One mapped artifact's size calibrates the budget.
  uint64_t artifact_bytes = 0;
  {
    std::shared_ptr<const artifact::ArtifactModel> probe;
    const artifact::ArtifactStatus st =
        artifact::LoadArtifact(paths[0], artifact::ArtifactLoadOptions{}, &probe);
    if (!st.ok) {
      std::fprintf(stderr, "artifact load failed: %s\n", st.error.c_str());
      return 1;
    }
    artifact_bytes = probe->mapped_bytes();
  }
  const uint64_t budget =
      std::max<uint64_t>(2 * artifact_bytes,
                         static_cast<uint64_t>(static_cast<double>(artifact_bytes) *
                                               num_models * resident_pct / 100.0));

  serve::ZooOptions zopt;
  zopt.memory_budget_bytes = budget;
  serve::ModelZoo zoo(zopt);
  for (int m = 0; m < num_models; ++m) {
    zoo.Register("model-" + std::to_string(m), paths[static_cast<size_t>(m % distinct)]);
  }

  // Everything from here on serves from mmap-ed artifacts: any PackWeights
  // call would mean the zero-repack contract broke.
  const uint64_t packs_before = tensor::PackWeightsCalls();

  // ---- phase 2: cold-start load-to-first-estimate ----
  std::vector<double> cold_us;
  std::vector<double> load_us;
  {
    Rng rng(7);
    for (int i = 0; i < cold_samples; ++i) {
      const std::string key = "model-" + std::to_string(rng.UniformInt(num_models));
      zoo.Evict(key);  // force a true cold touch even if sampled twice
      Timer timer;
      serve::ZooPin pin;
      const artifact::ArtifactStatus st = zoo.TryAcquire(key, &pin);
      if (!st.ok) {
        std::fprintf(stderr, "zoo acquire failed: %s\n", st.error.c_str());
        return 1;
      }
      pin->model().EstimateSelectivity(queries[static_cast<size_t>(i) % queries.size()]);
      cold_us.push_back(timer.Micros());
      serve::ZooModelStats ms;
      zoo.ModelStats(key, &ms);
      load_us.push_back(ms.last_load_micros);
    }
  }
  const double cold_p50 = Percentile(cold_us, 50.0);
  const double cold_p99 = Percentile(cold_us, 99.0);
  const double load_p50 = Percentile(load_us, 50.0);
  std::printf("cold start (n=%d): p50 %.0fus p99 %.0fus (pure load p50 %.0fus)\n",
              cold_samples, cold_p50, cold_p99, load_p50);

  // ---- phase 3: steady-state Zipf traffic under the budget ----
  uint64_t served = 0;
  double steady_qps = 0.0;
  {
    serve::ServingOptions sopt;
    sopt.num_workers = workers;
    serve::ServingEngine engine(zoo, sopt);
    Rng rng(13);
    ZipfDistribution zipf(static_cast<uint32_t>(num_models), zipf_s);
    std::vector<query::Query> batch_queries(static_cast<size_t>(batch));
    Timer timer;
    while (timer.Seconds() < steady_seconds) {
      const std::string key = "model-" + std::to_string(zipf.Sample(rng));
      for (int q = 0; q < batch; ++q) {
        batch_queries[static_cast<size_t>(q)] =
            queries[rng.UniformInt(queries.size())];
      }
      engine.EstimateBatch(key, batch_queries);
      served += static_cast<uint64_t>(batch);
    }
    steady_qps = static_cast<double>(served) / timer.Seconds();
  }

  const uint64_t repacks = tensor::PackWeightsCalls() - packs_before;
  const serve::ZooStats stats = zoo.stats();
  std::printf("steady state: %.0f q/s (%llu queries, %llu loads, %llu evictions, "
              "%.1f MB resident of %.1f MB budget)\n",
              steady_qps, static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(stats.loads),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<double>(stats.resident_bytes) / (1024.0 * 1024.0),
              static_cast<double>(budget) / (1024.0 * 1024.0));
  if (repacks != 0) {
    std::fprintf(stderr, "FAIL: %llu PackWeights calls during zoo serving (expected 0)\n",
                 static_cast<unsigned long long>(repacks));
    return 1;
  }

  std::printf(
      "{\"bench\":\"zoo\",\"models\":%d,\"distinct\":%d,\"artifact_bytes\":%llu,"
      "\"budget_bytes\":%llu,\"cold_p50_us\":%.1f,\"cold_p99_us\":%.1f,"
      "\"load_p50_us\":%.1f,\"steady_qps\":%.1f,\"served\":%llu,\"loads\":%llu,"
      "\"evictions\":%llu,\"resident_bytes\":%llu,\"repacks\":%llu}\n",
      num_models, distinct, static_cast<unsigned long long>(artifact_bytes),
      static_cast<unsigned long long>(budget), cold_p50, cold_p99, load_p50, steady_qps,
      static_cast<unsigned long long>(served), static_cast<unsigned long long>(stats.loads),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.resident_bytes),
      static_cast<unsigned long long>(repacks));

  for (const std::string& p : paths) ::unlink(p.c_str());
  return 0;
}
