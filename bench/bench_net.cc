// Network front-end benchmark (docs/networking.md, docs/benchmarks.md):
// what does putting the serving engine behind the DuetRpc epoll front-end
// cost, and how does wire-level batching compose with the engine's
// cross-request fusion?
//
// Three measurements over one loopback NetServer:
//  1. In-process baselines: closed-loop async Submit/Wait at batch 1
//     (`clients` submitter threads — the apples-to-apples twin of the wire
//     sweep) and sync EstimateBatch at batch 64.
//  2. Closed-loop wire sweep: connections {1, 4, 16} x frame batch {1, 64},
//     each connection a thread running blocking EstimateBatch round trips;
//     per-request latency is recorded client-side into the same
//     log-bucketed histogram scheme the server and engine use, so p50/p99/
//     p999 are directly comparable across all three layers.
//  3. Paced open-loop run at a fraction of the measured wire capacity:
//     arrival-time pacing (not closed-loop back-to-back), the latency
//     numbers docs/networking.md quotes.
//
// The headline ratio `wire_fraction` is wire batch-1 q/s over in-process
// batch-1 q/s at the same concurrency: the full cost of frames, checksums,
// loopback TCP and the event loop. The JSON line also exports the server's
// NetStats so a result archive can see bytes moved, frames batched and
// that nothing was shed or rejected during the measurement.
//
// Flags: --conns_sweep=1,4,16 --clients=4 --net_min_seconds=S
//        --open_load=0.6 --batch_large=64
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/net_stats.h"
#include "net/server.h"
#include "serve/serving_engine.h"

namespace duet::bench {
namespace {

using Clock = std::chrono::steady_clock;
using net::NetServer;
using net::RpcClient;
using query::Query;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct WireResult {
  int conns = 0;
  int batch = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

/// Closed-loop wire run: `conns` client threads hammering batch-`batch`
/// EstimateBatch frames for `seconds`. Returns merged client-side numbers.
WireResult RunWireClosedLoop(uint16_t port, const std::vector<Query>& queries, int conns,
                             int batch, double seconds) {
  WireResult result;
  result.conns = conns;
  result.batch = batch;
  std::vector<net::LatencyHistogram> hists(static_cast<size_t>(conns));
  std::vector<uint64_t> served(static_cast<size_t>(conns), 0);
  std::atomic<bool> failed{false};
  const std::vector<Query> frame(queries.begin(), queries.begin() + batch);

  const Clock::time_point start = Clock::now();
  const Clock::time_point stop = start + std::chrono::duration_cast<Clock::duration>(
                                             std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      RpcClient client;
      if (!client.Connect("127.0.0.1", port).ok) {
        failed.store(true);
        return;
      }
      std::vector<serve::Estimate> out;
      while (Clock::now() < stop) {
        const Clock::time_point t0 = Clock::now();
        if (!client.EstimateBatch("", frame, 0, &out).ok) {
          failed.store(true);
          return;
        }
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0).count();
        hists[static_cast<size_t>(c)].Record(micros);
        served[static_cast<size_t>(c)] += static_cast<uint64_t>(batch);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = Seconds(start, Clock::now());
  if (failed.load()) {
    std::fprintf(stderr, "bench_net: wire run failed (conns=%d batch=%d)\n", conns, batch);
    std::exit(1);
  }
  net::LatencyHistogram merged;
  uint64_t total = 0;
  for (int c = 0; c < conns; ++c) {
    merged.MergeFrom(hists[static_cast<size_t>(c)]);
    total += served[static_cast<size_t>(c)];
  }
  result.qps = static_cast<double>(total) / elapsed;
  result.p50_us = merged.Quantile(0.5);
  result.p99_us = merged.Quantile(0.99);
  result.p999_us = merged.Quantile(0.999);
  return result;
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const double min_seconds = flags.GetDouble("net_min_seconds", std::min(1.0, 2.0 * scale));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const int batch_large = static_cast<int>(flags.GetInt("batch_large", 64));
  const double open_load = flags.GetDouble("open_load", 0.6);

  data::Table table = MakeCensus();
  core::DuetModel model(table, DuetOptionsFor(table));
  core::DuetEstimator estimator(model);

  const query::Workload rand_q = MakeRandQ(table, std::max(batch_large, 256));
  std::vector<Query> queries;
  queries.reserve(rand_q.size());
  for (const auto& lq : rand_q) queries.push_back(lq.query);

  serve::ServingOptions serving;
  serving.max_batch = batch_large;
  serve::ServingEngine engine(estimator, serving);

  net::NetServerOptions net_options;
  NetServer server(engine, net_options);
  {
    const net::WireStatus st = server.Start();
    if (!st.ok) {
      std::fprintf(stderr, "bench_net: server start failed: %s\n", st.error.c_str());
      return 1;
    }
  }

  std::printf("Network front-end on 127.0.0.1:%u (%s, %lld rows x %d cols, %u workers)\n",
              server.port(), table.name().c_str(),
              static_cast<long long>(table.num_rows()), table.num_columns(),
              engine.num_workers());

  // ---- in-process baselines --------------------------------------------
  // Batch-1 closed loop through the SAME async micro-batcher the wire path
  // feeds, at the same concurrency as the headline wire row.
  double inproc_b1_qps = 0.0;
  {
    std::vector<uint64_t> served(static_cast<size_t>(clients), 0);
    const Clock::time_point start = Clock::now();
    const Clock::time_point stop =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(min_seconds));
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        size_t at = static_cast<size_t>(c);
        while (Clock::now() < stop) {
          engine.Submit(queries[at % queries.size()]).Wait();
          at += static_cast<size_t>(clients);
          ++served[static_cast<size_t>(c)];
        }
      });
    }
    for (auto& t : threads) t.join();
    uint64_t total = 0;
    for (uint64_t s : served) total += s;
    inproc_b1_qps = static_cast<double>(total) / Seconds(start, Clock::now());
  }
  // Batch-64 sync path: the engine's sharded EstimateBatch ceiling.
  double inproc_b64_qps = 0.0;
  {
    const std::vector<Query> frame(queries.begin(), queries.begin() + batch_large);
    uint64_t total = 0;
    const Clock::time_point start = Clock::now();
    const Clock::time_point stop =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(min_seconds));
    while (Clock::now() < stop) {
      engine.EstimateBatch(frame);
      total += static_cast<uint64_t>(batch_large);
    }
    inproc_b64_qps = static_cast<double>(total) / Seconds(start, Clock::now());
  }
  std::printf("in-process     batch 1 x%d threads %12.1f q/s    batch %d sync %12.1f q/s\n",
              clients, inproc_b1_qps, batch_large, inproc_b64_qps);

  // ---- closed-loop wire sweep ------------------------------------------
  std::vector<int> conns_sweep;
  {
    const std::string spec = flags.GetString("conns_sweep", "1,4,16");
    size_t pos = 0;
    while (pos < spec.size()) {
      const size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(pos, comma == std::string::npos ? spec.npos
                                                                          : comma - pos);
      if (!tok.empty()) conns_sweep.push_back(std::max(1, std::atoi(tok.c_str())));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (conns_sweep.empty()) conns_sweep = {1, 4, 16};
  }

  std::printf("%-8s %8s %12s %10s %10s %10s\n", "conns", "batch", "wire q/s", "p50 us",
              "p99 us", "p999 us");
  std::vector<WireResult> sweep;
  double headline_wire_qps = 0.0;
  for (int conns : conns_sweep) {
    for (int batch : {1, batch_large}) {
      const WireResult r =
          RunWireClosedLoop(server.port(), queries, conns, batch, min_seconds);
      std::printf("%-8d %8d %12.1f %10.0f %10.0f %10.0f\n", r.conns, r.batch, r.qps,
                  r.p50_us, r.p99_us, r.p999_us);
      if (conns == clients && batch == 1) headline_wire_qps = r.qps;
      sweep.push_back(r);
    }
  }
  if (headline_wire_qps == 0.0 && !sweep.empty()) headline_wire_qps = sweep.front().qps;
  const double wire_fraction =
      inproc_b1_qps > 0.0 ? headline_wire_qps / inproc_b1_qps : 0.0;
  std::printf("wire batch-1 throughput = %.2fx in-process batch-1 (same %d-way concurrency)\n",
              wire_fraction, clients);

  // ---- paced open-loop run ---------------------------------------------
  // Offer a fixed fraction of the measured wire capacity with arrival-time
  // pacing; the latencies here are what a non-saturating client sees.
  WireResult open;
  double offered_qps = open_load * headline_wire_qps;
  {
    const int conns = clients;
    offered_qps = std::max(offered_qps, 100.0);
    const double per_conn_qps = offered_qps / conns;
    std::vector<net::LatencyHistogram> hists(static_cast<size_t>(conns));
    std::vector<uint64_t> served(static_cast<size_t>(conns), 0);
    std::atomic<bool> failed{false};
    const Clock::time_point start = Clock::now();
    const Clock::time_point stop =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(min_seconds));
    std::vector<std::thread> threads;
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        RpcClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok) {
          failed.store(true);
          return;
        }
        const auto interval = std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(1.0 / per_conn_qps));
        Clock::time_point next = start + (c + 1) * interval / conns;
        std::vector<serve::Estimate> out;
        std::vector<Query> one(1);
        size_t at = static_cast<size_t>(c);
        while (next < stop) {
          std::this_thread::sleep_until(next);
          one[0] = queries[at % queries.size()];
          at += static_cast<size_t>(conns);
          const Clock::time_point t0 = Clock::now();
          if (!client.EstimateBatch("", one, 0, &out).ok) {
            failed.store(true);
            return;
          }
          const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                  Clock::now() - t0)
                                  .count();
          hists[static_cast<size_t>(c)].Record(micros);
          ++served[static_cast<size_t>(c)];
          next += interval;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed.load()) {
      std::fprintf(stderr, "bench_net: open-loop run failed\n");
      return 1;
    }
    net::LatencyHistogram merged;
    uint64_t total = 0;
    for (int c = 0; c < conns; ++c) {
      merged.MergeFrom(hists[static_cast<size_t>(c)]);
      total += served[static_cast<size_t>(c)];
    }
    open.conns = conns;
    open.batch = 1;
    open.qps = static_cast<double>(total) / Seconds(start, Clock::now());
    open.p50_us = merged.Quantile(0.5);
    open.p99_us = merged.Quantile(0.99);
    open.p999_us = merged.Quantile(0.999);
  }
  std::printf("open loop @%.0f%% capacity: offered %.1f q/s, served %.1f q/s, "
              "p50 %.0f us, p99 %.0f us, p999 %.0f us\n",
              100.0 * open_load, offered_qps, open.qps, open.p50_us, open.p99_us,
              open.p999_us);

  const net::NetStats ns = server.stats();
  server.Stop();

  // ---- JSON line (docs/benchmarks.md schema) ---------------------------
  std::string wire_json;
  for (const WireResult& r : sweep) {
    char row[192];
    std::snprintf(row, sizeof(row),
                  "%s{\"conns\":%d,\"batch\":%d,\"qps\":%.1f,\"p50_us\":%.0f,"
                  "\"p99_us\":%.0f,\"p999_us\":%.0f}",
                  wire_json.empty() ? "" : ",", r.conns, r.batch, r.qps, r.p50_us, r.p99_us,
                  r.p999_us);
    wire_json += row;
  }
  std::printf(
      "{\"bench\":\"net\",\"inprocess\":{\"batch1_qps\":%.1f,\"batch%d_qps\":%.1f},"
      "\"wire\":[%s],\"wire_fraction\":%.3f,"
      "\"open_loop\":{\"load\":%.2f,\"offered_qps\":%.1f,\"achieved_qps\":%.1f,"
      "\"p50_us\":%.0f,\"p99_us\":%.0f,\"p999_us\":%.0f},"
      "\"net_stats\":{\"bytes_in\":%llu,\"bytes_out\":%llu,\"frames_in\":%llu,"
      "\"frames_out\":%llu,\"batched_frames\":%llu,\"queries\":%llu,\"sheds\":%llu,"
      "\"protocol_errors\":%llu,\"inflight_high_water\":%lld}}\n",
      inproc_b1_qps, batch_large, inproc_b64_qps, wire_json.c_str(), wire_fraction,
      open_load, offered_qps, open.qps, open.p50_us, open.p99_us, open.p999_us,
      static_cast<unsigned long long>(ns.bytes_in),
      static_cast<unsigned long long>(ns.bytes_out),
      static_cast<unsigned long long>(ns.frames_in),
      static_cast<unsigned long long>(ns.frames_out),
      static_cast<unsigned long long>(ns.batched_frames),
      static_cast<unsigned long long>(ns.queries),
      static_cast<unsigned long long>(ns.sheds),
      static_cast<unsigned long long>(ns.protocol_errors),
      static_cast<long long>(ns.inflight_high_water));
  return 0;
}
