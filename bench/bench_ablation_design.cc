// Ablation benches for the design choices DESIGN.md calls out (paper
// Sec. IV): the expand coefficient mu, the wildcard-skipping probability,
// the value-encoding policy, and the merged vs per-column MPSN execution.
//
// Flags: --epochs=N --rows=N --queries=N
#include <cstdio>

#include "bench/bench_util.h"
#include "core/mpsn_model.h"

namespace duet::bench {
namespace {

double TrainAndMedianQError(const data::Table& t, core::DuetModelOptions mopt,
                            core::TrainOptions topt, const query::Workload& eval_wl) {
  core::DuetModel model(t, mopt);
  core::DuetTrainer(model, topt).Train();
  core::DuetEstimator est(model);
  const auto errs = query::EvaluateQErrors(est, eval_wl, t.num_rows());
  return ErrorSummary::FromValues(errs).median;
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 5));
  const int queries = static_cast<int>(flags.GetInt("queries", 150));

  data::Table t = data::CensusLike(flags.GetInt("rows", static_cast<int64_t>(4000 * scale)), 42);
  const query::Workload rand_q = MakeRandQ(t, queries);

  std::printf("Design-choice ablations on %s (%lld rows), Rand-Q median Q-error\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()));

  // --- expand coefficient mu (Sec. IV-C: each tuple trains mu times with
  // different predicates per step) ---
  std::printf("\n[mu expand coefficient]\n%-6s %14s %14s\n", "mu", "median QErr",
              "epoch time(s)");
  for (int mu : {1, 2, 4, 8}) {
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.expand = mu;
    core::DuetModel model(t, DuetOptionsFor(t));
    core::DuetTrainer trainer(model, topt);
    double seconds = 0.0;
    for (int e = 0; e < epochs; ++e) seconds += trainer.TrainEpoch(e).seconds;
    core::DuetEstimator est(model);
    const auto errs = query::EvaluateQErrors(est, rand_q, t.num_rows());
    std::printf("%-6d %14.3f %14.3f\n", mu, ErrorSummary::FromValues(errs).median,
                seconds / epochs);
  }

  // --- wildcard-skipping probability ---
  std::printf("\n[wildcard probability]\n%-6s %14s\n", "p", "median QErr");
  for (double p : {0.0, 0.15, 0.3, 0.6}) {
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.wildcard_prob = p;
    std::printf("%-6.2f %14.3f\n", p,
                TrainAndMedianQError(t, DuetOptionsFor(t), topt, rand_q));
  }

  // --- value encoding policy ---
  std::printf("\n[value encoding]\n%-10s %14s %12s\n", "encoding", "median QErr",
              "input width");
  {
    struct EncCase {
      const char* name;
      int32_t one_hot_max;
      core::ValueEncoding large;
    };
    for (const EncCase& c :
         {EncCase{"one-hot", 4096, core::ValueEncoding::kOneHot},
          EncCase{"binary", 0, core::ValueEncoding::kBinary},
          EncCase{"embed16", 0, core::ValueEncoding::kEmbedding}}) {
      core::DuetModelOptions mopt = DuetOptionsFor(t);
      mopt.encoding.one_hot_max_ndv = c.one_hot_max;
      mopt.encoding.large_encoding = c.large;
      core::TrainOptions topt;
      topt.epochs = epochs;
      topt.batch_size = 128;
      core::DuetModel probe(t, mopt);
      const int64_t width = probe.encoder().total_width();
      std::printf("%-10s %14.3f %12lld\n", c.name,
                  TrainAndMedianQError(t, mopt, topt, rand_q),
                  static_cast<long long>(width));
    }
  }

  // --- merged vs per-column MPSN execution (Sec. IV-F acceleration) ---
  std::printf("\n[MPSN execution]\n%-12s %14s %14s\n", "mode", "train time(s)",
              "est cost(ms)");
  {
    query::WorkloadSpec tspec;
    tspec.num_queries = 80;
    tspec.seed = 1234;
    tspec.two_sided_prob = 0.5;
    const query::Workload two_sided = query::WorkloadGenerator(t, tspec).Generate();
    for (bool merged : {true, false}) {
      core::DuetMpsnOptions opt;
      opt.base.hidden_sizes = {64, 64};
      opt.base.residual = true;
      opt.mpsn.kind = core::MpsnKind::kMlp;
      opt.mpsn.merged = merged;
      opt.mpsn.max_preds = 2;
      opt.mpsn.embed_dim = 16;
      core::DuetMpsnModel model(t, opt);
      core::TrainOptions topt;
      topt.epochs = 2;
      topt.batch_size = 128;
      core::MpsnTrainer trainer(model, topt);
      Timer timer;
      trainer.Train();
      const double train_s = timer.Seconds();
      core::DuetMpsnEstimator est(model);
      const double est_ms = MeasureEstimationMs(est, two_sided);
      std::printf("%-12s %14.3f %14.3f\n", merged ? "merged" : "per-column", train_s, est_ms);
    }
  }
  std::printf("\nExpected shapes: mu trades epoch time for sample diversity; moderate "
              "wildcard probability helps Rand-Q; binary encoding shrinks the input "
              "with little accuracy cost; merged MPSN executes fewer, larger ops.\n");
  return 0;
}
