// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench runs standalone with scaled-down defaults sized for a laptop
// CPU; set DUET_BENCH_SCALE (e.g. 4 or 10) to grow datasets, workloads and
// training budgets toward paper scale. All sizes are also overridable via
// --flags. The printed rows/series mirror the corresponding paper artifact
// (see DESIGN.md Sec. 4 for the per-experiment index).
#ifndef DUET_BENCH_BENCH_UTIL_H_
#define DUET_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/naru/naru_model.h"
#include "baselines/uae/uae_model.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/estimator.h"
#include "query/workload.h"

namespace duet::bench {

/// Scaled dataset factories (paper: Census 48.8k x 14, Kddcup98 95k x 100,
/// DMV 12.4M x 11; defaults here are laptop-sized stand-ins, DESIGN.md S1).
inline data::Table MakeCensus(double scale = Flags::ScaleFactor()) {
  return data::CensusLike(static_cast<int64_t>(6000 * scale), 42);
}
inline data::Table MakeKdd(double scale = Flags::ScaleFactor(), int cols = 100) {
  return data::KddLike(static_cast<int64_t>(4000 * scale), cols, 42);
}
inline data::Table MakeDmv(double scale = Flags::ScaleFactor()) {
  return data::DmvLike(static_cast<int64_t>(20000 * scale), 42);
}

/// Paper-shaped model architectures, scaled for CPU benches:
/// DMV uses the plain heterogeneous MADE, Census/Kdd use 2-block ResMADE.
inline core::DuetModelOptions DuetOptionsFor(const data::Table& table) {
  core::DuetModelOptions opt;
  if (table.name() == "dmv_like") {
    opt.hidden_sizes = {128, 64, 128, 32, 256};  // paper: 512,256,512,128,1024
    opt.residual = false;
  } else {
    opt.hidden_sizes = {64, 64};  // paper: 2 x 128 ResMADE
    opt.residual = true;
  }
  return opt;
}

inline baselines::NaruOptions NaruOptionsFor(const data::Table& table, int num_samples) {
  baselines::NaruOptions opt;
  const core::DuetModelOptions base = DuetOptionsFor(table);
  opt.hidden_sizes = base.hidden_sizes;
  opt.residual = base.residual;
  opt.num_samples = num_samples;
  return opt;
}

/// Training workload (paper Sec. V-A2): seed 42, gamma-skewed predicate
/// count, bounded column = 1% of the largest column's distinct values.
inline query::Workload MakeTrainingWorkload(const data::Table& table, int n) {
  query::WorkloadSpec spec;
  spec.num_queries = n;
  spec.seed = 42;
  spec.gamma_num_predicates = true;
  spec.bounded_column = table.LargestNdvColumn();
  return query::WorkloadGenerator(table, spec).Generate();
}

/// In-workload test queries: same distribution and seed family as training.
inline query::Workload MakeInQ(const data::Table& table, int n) {
  query::WorkloadSpec spec;
  spec.num_queries = n;
  spec.seed = 42;
  spec.gamma_num_predicates = true;
  spec.bounded_column = table.LargestNdvColumn();
  // Offset the stream so the queries are fresh but in-distribution.
  spec.seed = 42 + 1;
  return query::WorkloadGenerator(table, spec).Generate();
}

/// Random test queries: seed 1234, uniform predicate count, unbounded.
inline query::Workload MakeRandQ(const data::Table& table, int n) {
  query::WorkloadSpec spec;
  spec.num_queries = n;
  spec.seed = 1234;
  return query::WorkloadGenerator(table, spec).Generate();
}

/// Measures mean per-query estimation latency (ms).
inline double MeasureEstimationMs(query::CardinalityEstimator& est,
                                  const query::Workload& workload) {
  Timer timer;
  for (const auto& lq : workload) est.EstimateSelectivity(lq.query);
  return timer.Millis() / static_cast<double>(workload.size());
}

/// One Table-II-style row: name, size, cost, five-number summary.
inline void PrintAccuracyRow(const std::string& name, double size_mb, double cost_ms,
                             const ErrorSummary& sum) {
  std::printf("%-10s %8.2f %9.3f  %s\n", name.c_str(), size_mb, cost_ms,
              sum.ToString().c_str());
}

inline void PrintAccuracyHeader(const std::string& workload_name) {
  std::printf("%-10s %8s %9s  %8s %8s %8s %10s %10s   [%s]\n", "estimator", "size(MB)",
              "cost(ms)", "mean", "median", "75th", "99th", "max", workload_name.c_str());
}

inline void PrintSectionRule() {
  std::printf("------------------------------------------------------------------------------\n");
}

}  // namespace duet::bench

#endif  // DUET_BENCH_BENCH_UTIL_H_
