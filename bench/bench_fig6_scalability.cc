// Figure 6 reproduction: estimation-latency scalability with the number of
// constrained columns on the 100-column Kdd-like dataset. One model per
// method is trained on all 100 columns; workloads constrain only the first
// k columns, k in {2, 5, 10, 25, 50, 100}. Reports per-query latency and
// its phase breakdown (encode / network forward / sampling-or-mask) — the
// paper's O(n) vs O(1) money plot.
//
// Flags: --epochs=N --queries=N --naru_samples=N
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 2));
  const int queries = static_cast<int>(flags.GetInt("queries", 30));
  const int naru_samples = static_cast<int>(flags.GetInt("naru_samples", 16));

  data::Table t = MakeKdd(scale);
  std::printf("Figure 6 reproduction: scalability on %s (%d columns)\n", t.name().c_str(),
              t.num_columns());

  // Train one model per method on the full table (brief: latency is the
  // object of measurement here, not accuracy).
  core::DuetModel duet(t, DuetOptionsFor(t));
  {
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    core::DuetTrainer(duet, topt).Train();
  }
  baselines::NaruModel naru(t, NaruOptionsFor(t, naru_samples));
  {
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    baselines::NaruTrainer(naru, topt).Train();
  }
  // UAE shares Naru's inference path; a separately trained instance stands
  // in for it (progressive sampling cost is identical by construction).
  baselines::NaruModel uae(t, NaruOptionsFor(t, naru_samples));
  {
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = 128;
    baselines::NaruTrainer(uae, topt).Train();
  }

  std::printf("%-6s | %-34s | %-34s | %-10s\n", "#cols", "Naru ms (enc/fwd/sample)",
              "UAE ms (enc/fwd/sample)", "Duet ms (enc/fwd/mask)");
  for (int k : {2, 5, 10, 25, 50, 100}) {
    query::WorkloadSpec spec;
    spec.num_queries = queries;
    spec.seed = 1234;
    spec.max_columns = k;
    const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

    naru.phase_times().Clear();
    Rng naru_rng(7);
    Timer timer;
    for (const auto& lq : wl) naru.EstimateSelectivity(lq.query, naru_rng);
    const double naru_ms = timer.Millis() / queries;
    const auto naru_phases = naru.phase_times();

    uae.phase_times().Clear();
    Rng uae_rng(7);
    timer.Reset();
    for (const auto& lq : wl) uae.EstimateSelectivity(lq.query, uae_rng);
    const double uae_ms = timer.Millis() / queries;
    const auto uae_phases = uae.phase_times();

    duet.phase_times().Clear();
    timer.Reset();
    for (const auto& lq : wl) duet.EstimateSelectivity(lq.query);
    const double duet_ms = timer.Millis() / queries;
    const auto duet_phases = duet.phase_times();

    std::printf(
        "%-6d | %7.3f (%6.3f/%6.3f/%6.3f) | %7.3f (%6.3f/%6.3f/%6.3f) | %7.4f "
        "(%5.4f/%5.4f/%5.4f)\n",
        k, naru_ms, naru_phases.encode_ms / queries, naru_phases.forward_ms / queries,
        naru_phases.post_ms / queries, uae_ms, uae_phases.encode_ms / queries,
        uae_phases.forward_ms / queries, uae_phases.post_ms / queries, duet_ms,
        duet_phases.encode_ms / queries, duet_phases.forward_ms / queries,
        duet_phases.post_ms / queries);
  }
  std::printf("\nExpected shape: Naru/UAE latency grows ~linearly with #constrained "
              "columns (one forward pass per column over %d samples); Duet stays flat "
              "with a single forward pass (paper Fig. 6).\n",
              naru_samples);
  return 0;
}
