// Table I reproduction: the three MPSN candidates (MLP / REC / RNN) on the
// Census-like dataset with multi-predicate (two-sided) workloads. Reports
// max Q-error on Rand-Q, per-query estimation cost, training cost, and the
// epoch that produced the best model — the paper's selection experiment
// that picks MLP for efficiency.
//
// Flags: --epochs=N --queries=N --rows=N
#include <cstdio>

#include "bench/bench_util.h"
#include "core/mpsn_model.h"

namespace duet::bench {
namespace {

struct Result {
  double max_qerr = 0.0;
  double est_cost_ms = 0.0;
  double train_cost_s = 0.0;
  int best_epoch = 0;
};

Result RunKind(const data::Table& t, core::MpsnKind kind, int epochs,
               const query::Workload& train_wl, const query::Workload& test_wl) {
  core::DuetMpsnOptions opt;
  opt.base.hidden_sizes = {64, 64};
  opt.base.residual = true;
  opt.mpsn.kind = kind;
  opt.mpsn.hidden = 64;
  opt.mpsn.embed_dim = 16;
  opt.mpsn.max_preds = 2;
  core::DuetMpsnModel model(t, opt);

  core::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 128;
  topt.expand = 2;
  topt.train_workload = &train_wl;
  core::MpsnTrainer trainer(model, topt);

  Result res;
  res.max_qerr = 1e30;
  Timer train_timer;
  for (int e = 0; e < epochs; ++e) {
    trainer.TrainEpoch(e);
    // Track the best epoch by test max-Q (the paper's "best epoch" column).
    core::DuetMpsnEstimator est(model);
    const auto errors = query::EvaluateQErrors(est, test_wl, t.num_rows());
    const double mx = ErrorSummary::FromValues(errors).max;
    if (mx < res.max_qerr) {
      res.max_qerr = mx;
      res.best_epoch = e + 1;
    }
  }
  res.train_cost_s = train_timer.Seconds();
  core::DuetMpsnEstimator est(model);
  res.est_cost_ms = MeasureEstimationMs(est, test_wl);
  return res;
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 5));
  const int queries = static_cast<int>(flags.GetInt("queries", 120));

  data::Table t = data::CensusLike(
      flags.GetInt("rows", static_cast<int64_t>(4000 * scale)), 42);

  query::WorkloadSpec train_spec;
  train_spec.num_queries = static_cast<int>(300 * scale);
  train_spec.seed = 42;
  train_spec.gamma_num_predicates = true;
  train_spec.two_sided_prob = 0.5;
  const query::Workload train_wl = query::WorkloadGenerator(t, train_spec).Generate();

  query::WorkloadSpec test_spec;
  test_spec.num_queries = queries;
  test_spec.seed = 1234;
  test_spec.two_sided_prob = 0.5;
  const query::Workload test_wl = query::WorkloadGenerator(t, test_spec).Generate();

  std::printf("Table I reproduction: MPSN variants on %s (%lld rows), two-sided workloads\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()));
  std::printf("%-6s %12s %14s %14s %12s\n", "name", "max Q-Error", "est cost(ms)",
              "train cost(s)", "best epoch");
  for (core::MpsnKind kind :
       {core::MpsnKind::kMlp, core::MpsnKind::kRecursive, core::MpsnKind::kRnn}) {
    const auto res = RunKind(t, kind, epochs, train_wl, test_wl);
    std::printf("%-6s %12.3f %14.3f %14.3f %12d\n", core::MpsnKindName(kind), res.max_qerr,
                res.est_cost_ms, res.train_cost_s, res.best_epoch);
  }
  return 0;
}
