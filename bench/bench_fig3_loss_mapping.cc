// Figure 3 reproduction: convergence of the query loss with and without
// Duet's log2(QError + 1) mapping, next to L_data, on the DMV-like dataset.
// The paper's observation: the raw Q-error starts orders of magnitude above
// L_data and destabilizes training; the mapped loss has the same order and
// convergence rate as L_data.
//
// Flags: --epochs=N --rows=N
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6));

  data::Table t = data::DmvLike(flags.GetInt("rows", static_cast<int64_t>(8000 * scale)), 42);
  const query::Workload train_wl = MakeTrainingWorkload(t, static_cast<int>(400 * scale));

  std::printf("Figure 3 reproduction on %s (%lld rows)\n", t.name().c_str(),
              static_cast<long long>(t.num_rows()));
  std::printf("%-6s %16s %18s %22s\n", "epoch", "L_data", "raw mean QError",
              "mapped log2(QErr+1)");

  // One hybrid run with the mapped loss; the raw Q-error of the training
  // queries is tracked alongside (the paper plots both curves).
  core::DuetModel model(t, DuetOptionsFor(t));
  core::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 256;
  topt.train_workload = &train_wl;
  topt.lambda = 0.1f;
  topt.map_query_loss = true;
  core::DuetTrainer trainer(model, topt);
  for (int e = 0; e < epochs; ++e) {
    const auto stats = trainer.TrainEpoch(e);
    std::printf("%-6d %16.4f %18.2f %22.4f\n", e + 1, stats.data_loss, stats.raw_qerror,
                stats.query_loss);
  }

  std::printf("\nSame training with the UNMAPPED Q-error loss (UAE-style single-factor "
              "scaling):\n");
  std::printf("%-6s %16s %18s\n", "epoch", "L_data", "L_query = mean QErr");
  core::DuetModel model_raw(t, DuetOptionsFor(t));
  core::TrainOptions topt_raw = topt;
  topt_raw.map_query_loss = false;
  topt_raw.lambda = 0.1f;
  core::DuetTrainer trainer_raw(model_raw, topt_raw);
  for (int e = 0; e < epochs; ++e) {
    const auto stats = trainer_raw.TrainEpoch(e);
    std::printf("%-6d %16.4f %18.2f\n", e + 1, stats.data_loss, stats.query_loss);
  }
  std::printf("\nExpected shape: the unmapped L_query starts orders of magnitude above "
              "L_data; the mapped loss tracks L_data's scale (paper Fig. 3).\n");
  return 0;
}
