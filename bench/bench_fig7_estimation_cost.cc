// Figure 7 reproduction (google-benchmark): per-query estimation cost of
// the learned estimators on the Census-like and DMV-like datasets.
//
// The paper's comparison pits Duet-on-CPU against sampling methods
// on GPU; here the GPU stand-in is batched inference (Duet_Batch64,
// Naru's per-column passes are already internally batched over their
// Monte-Carlo samples — see DESIGN.md Sec. 1). Expected shape: MSCN
// cheapest, Duet next (single pass), Naru/UAE an order of magnitude
// slower, growing with the number of constrained columns.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/mscn/mscn_model.h"
#include "baselines/spn/spn.h"
#include "bench/bench_util.h"

namespace duet::bench {
namespace {

/// Shared trained models, built once (google-benchmark re-enters the
/// benchmark body many times).
struct Context {
  data::Table table;
  query::Workload queries;
  std::unique_ptr<core::DuetModel> duet;
  std::unique_ptr<baselines::NaruModel> naru;
  std::unique_ptr<baselines::MscnModel> mscn;
  std::unique_ptr<baselines::SpnEstimator> spn;

  explicit Context(data::Table t) : table(std::move(t)) {
    queries = MakeRandQ(table, 64);
    const query::Workload train_wl = MakeTrainingWorkload(table, 300);
    duet = std::make_unique<core::DuetModel>(table, DuetOptionsFor(table));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = 256;
    core::DuetTrainer(*duet, topt).Train();
    naru = std::make_unique<baselines::NaruModel>(table, NaruOptionsFor(table, 100));
    baselines::NaruTrainer(*naru, topt).Train();
    baselines::MscnOptions mopt;
    mopt.epochs = 3;
    mopt.bitmap_size = 500;
    mopt.max_preds = table.num_columns();
    mscn = std::make_unique<baselines::MscnModel>(table, mopt);
    mscn->Train(train_wl);
    spn = std::make_unique<baselines::SpnEstimator>(table);
  }
};

Context& Census() {
  static Context* ctx = new Context(MakeCensus());
  return *ctx;
}
Context& Dmv() {
  static Context* ctx = new Context(MakeDmv());
  return *ctx;
}

template <Context& (*Dataset)()>
void BM_Duet(benchmark::State& state) {
  Context& ctx = Dataset();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.duet->EstimateSelectivity(ctx.queries[i++ % ctx.queries.size()].query));
  }
}

template <Context& (*Dataset)()>
void BM_DuetBatch64(benchmark::State& state) {
  Context& ctx = Dataset();
  std::vector<query::Query> batch;
  for (const auto& lq : ctx.queries) batch.push_back(lq.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.duet->EstimateSelectivityBatch(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
}

template <Context& (*Dataset)()>
void BM_Naru(benchmark::State& state) {
  Context& ctx = Dataset();
  Rng rng(3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.naru->EstimateSelectivity(ctx.queries[i++ % ctx.queries.size()].query, rng));
  }
}

template <Context& (*Dataset)()>
void BM_Mscn(benchmark::State& state) {
  Context& ctx = Dataset();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.mscn->EstimateSelectivity(ctx.queries[i++ % ctx.queries.size()].query));
  }
}

template <Context& (*Dataset)()>
void BM_DeepDb(benchmark::State& state) {
  Context& ctx = Dataset();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx.spn->EstimateSelectivity(ctx.queries[i++ % ctx.queries.size()].query));
  }
}

BENCHMARK(BM_Mscn<Census>)->Name("fig7/census/MSCN")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Duet<Census>)->Name("fig7/census/Duet")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DuetBatch64<Census>)
    ->Name("fig7/census/Duet_batch64")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeepDb<Census>)->Name("fig7/census/DeepDB")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Naru<Census>)->Name("fig7/census/Naru_UAE")->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_Mscn<Dmv>)->Name("fig7/dmv/MSCN")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Duet<Dmv>)->Name("fig7/dmv/Duet")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DuetBatch64<Dmv>)->Name("fig7/dmv/Duet_batch64")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeepDb<Dmv>)->Name("fig7/dmv/DeepDB")->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Naru<Dmv>)->Name("fig7/dmv/Naru_UAE")->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  // Train the shared models up front so the first measured iteration of
  // each benchmark does not absorb context construction.
  duet::bench::Census();
  duet::bench::Dmv();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
