// Table III reproduction: training throughput (tuples/s) of the data-driven
// and hybrid methods on the three datasets. The expected shape (paper):
// Naru > DuetD > Duet >> UAE, with UAE OOM on the high-dimensional dataset
// at its paper-scale sampling configuration.
//
// Also measures serving-side inference throughput of the Duet estimator:
//  * single-thread batch sweep through EstimateSelectivityBatch (batch
//    1/8/64/512) with the batch-1 encode/forward/post phase split (the
//    masked-weight cache's target metric),
//  * a multi-thread serving sweep through serve::ServingEngine (1/2/4/8
//    workers x the same batch sizes), with a bitwise sharded-vs-single-
//    thread equality check, and
//  * a packed-weight backend sweep (dense fp32 / CSR sparse / int8 / f16 /
//    int4), A/B'd over compiled-plan execution (--plan=on,off): batch-1 and
//    batch-64 queries/sec per (plan, backend) row, the packed-cache and
//    plan footprints, plan compile time / cache hits, and the median
//    q-error delta vs the fp32 path on the seeded workload (exactly 0 for
//    CSR, bounded for int8/f16/int4) — so the plan win is measured, not
//    asserted, and
//  * a cross-request fusion A/B through the async micro-batcher: the same
//    batch-1 submission stream with GEMV->GEMM fusion on vs off, with a
//    bitwise per-request identity check between the two arms (fusion
//    changes throughput, never answers).
// The JSON line carries the runtime-selected SIMD tier ("isa") and the
// host hardware thread count ("hw_threads") so numbers from different
// machines are comparable.
// All sweeps are emitted in one JSON line for tooling (schema documented
// in docs/benchmarks.md).
//
// With --live_update, additionally measures zero-downtime online updates
// (docs/serving.md): serving through a ModelRegistry-backed engine while a
// background UpdateWorker fine-tunes on served-traffic feedback and
// hot-swaps snapshots in — sustained live throughput vs steady state, the
// publish/swap latencies, update verdict counters, and the median q-error
// before/after the updates, emitted as a second JSON line
// ({"bench":"live_update",...}).
//
// With --overload, additionally measures admission control under
// saturation (docs/resilience.md): a self-calibrated open-loop stream at
// 0.5x and 4x the engine's measured capacity through a bounded queue with
// deadlines — offered vs served load, shed/expired/fallback counts and the
// admitted p50/p99, emitted as a third JSON line ({"bench":"overload",...}).
//
// Flags: --datasets=census,kdd,dmv --batch=N --sweep_queries=N
//        --sweep_min_seconds=S --sweep=0|1 --sweep_scalar=0|1
//        --sweep_hidden=N --backend=dense,csr,int8,f16,int4 --backend_hidden=N
//        --plan=on,off --live_update --live_hidden=N --live_queries=N
//        --live_publishes=N --live_min_seconds=S --live_max_seconds=S
//        --overload --overload_hidden=N --overload_workers=N
//        --overload_seconds=S
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "baselines/traditional/independence.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/finetune.h"
#include "serve/model_registry.h"
#include "serve/serving_engine.h"
#include "serve/update_worker.h"
#include "tensor/packed_weights.h"
#include "tensor/simd_dispatch.h"

namespace duet::bench {
namespace {

struct Row {
  std::string dataset;
  double naru = 0.0;
  double uae = 0.0;
  bool uae_oom = false;
  double duetd = 0.0;
  double duet = 0.0;
};

Row RunDataset(const data::Table& t, int64_t batch, int uae_samples) {
  Row row;
  row.dataset = t.name();
  const query::Workload train_wl = MakeTrainingWorkload(t, 200);

  {
    baselines::NaruModel model(t, NaruOptionsFor(t, 100));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    row.naru = baselines::NaruTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  {
    baselines::UaeOptions uopt;
    uopt.naru = NaruOptionsFor(t, 100);
    uopt.train_samples = uae_samples;
    uopt.memory_budget_mb = 10240;
    baselines::UaeModel model(t, uopt);
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    topt.train_workload = &train_wl;
    baselines::UaeTrainer trainer(model, topt);
    const auto stats = trainer.TrainEpoch(0);
    row.uae_oom = trainer.oom();
    row.uae = stats.tuples_per_second;
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    row.duetd = core::DuetTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    topt.train_workload = &train_wl;
    row.duet = core::DuetTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  return row;
}

/// Single-thread queries/sec of `est` at one batch size: the query stream is
/// processed in chunks of `batch` through the batch-first API, repeated
/// until `min_seconds` of wall time accumulate.
double MeasureBatchedQps(query::CardinalityEstimator& est,
                         const std::vector<query::Query>& queries, int64_t batch,
                         double min_seconds) {
  // Pre-slice the stream so chunk construction is not charged to the
  // estimator.
  std::vector<std::vector<query::Query>> chunks;
  for (size_t begin = 0; begin < queries.size(); begin += static_cast<size_t>(batch)) {
    const size_t end = std::min(queries.size(), begin + static_cast<size_t>(batch));
    chunks.emplace_back(queries.begin() + static_cast<int64_t>(begin),
                        queries.begin() + static_cast<int64_t>(end));
  }
  // Warm-up pass: populates the inference arena so the measured steady
  // state performs no activation allocations.
  for (const auto& chunk : chunks) est.EstimateSelectivityBatch(chunk);
  Timer timer;
  int64_t done = 0;
  do {
    for (const auto& chunk : chunks) {
      est.EstimateSelectivityBatch(chunk);
      done += static_cast<int64_t>(chunk.size());
    }
  } while (timer.Seconds() < min_seconds);
  return static_cast<double>(done) / timer.Seconds();
}

/// Queries/sec through the sharded serving engine at one batch size (same
/// chunked protocol as MeasureBatchedQps so numbers are comparable).
double MeasureServingQps(serve::ServingEngine& engine,
                         const std::vector<query::Query>& queries, int64_t batch,
                         double min_seconds) {
  std::vector<std::vector<query::Query>> chunks;
  for (size_t begin = 0; begin < queries.size(); begin += static_cast<size_t>(batch)) {
    const size_t end = std::min(queries.size(), begin + static_cast<size_t>(batch));
    chunks.emplace_back(queries.begin() + static_cast<int64_t>(begin),
                        queries.begin() + static_cast<int64_t>(end));
  }
  // Warm-up: populates each worker thread's inference arena.
  for (const auto& chunk : chunks) engine.EstimateBatch(chunk);
  Timer timer;
  int64_t done = 0;
  do {
    for (const auto& chunk : chunks) {
      engine.EstimateBatch(chunk);
      done += static_cast<int64_t>(chunk.size());
    }
  } while (timer.Seconds() < min_seconds);
  return static_cast<double>(done) / timer.Seconds();
}

/// Queries/sec of batch-1 async submissions through the micro-batcher at one
/// fusion setting (serve::ServingOptions::fuse_requests). The per-request
/// answers of the warm-up pass are captured so the caller can assert the
/// fused and unfused arms bitwise-identical — the fusion contract is that
/// coalescing same-target GEMVs into one GEMM changes throughput, never
/// values.
double MeasureAsyncQps(query::CardinalityEstimator& est,
                       const std::vector<query::Query>& queries, bool fuse,
                       double min_seconds, std::vector<double>* answers) {
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 64;
  sopt.max_wait_us = 200;
  sopt.fuse_requests = fuse;
  serve::ServingEngine engine(est, sopt);
  // Warm-up (populates worker arenas) doubles as the answer capture.
  std::vector<serve::ServingEngine::Future> warm;
  warm.reserve(queries.size());
  for (const auto& q : queries) warm.push_back(engine.Submit(q));
  answers->clear();
  answers->reserve(queries.size());
  for (auto& f : warm) answers->push_back(f.Wait());
  Timer timer;
  int64_t done = 0;
  do {
    std::vector<serve::ServingEngine::Future> futures;
    futures.reserve(queries.size());
    for (const auto& q : queries) futures.push_back(engine.Submit(q));
    for (auto& f : futures) f.Wait();
    done += static_cast<int64_t>(queries.size());
  } while (timer.Seconds() < min_seconds);
  return static_cast<double>(done) / timer.Seconds();
}

/// Batch-size sweep of the Duet estimator; prints a table and emits the
/// results as a single JSON line (parsed by tooling / CI).
void RunInferenceSweep(const Flags& flags, double scale) {
  const data::Table t = MakeCensus(scale);
  // Serving-scale architecture (paper-scale nets reach {512,...,1024} on
  // DMV): large enough that per-query weight traffic dominates at batch 1,
  // which is exactly what batching amortizes. --sweep_hidden overrides.
  core::DuetModelOptions opt;
  const int64_t hidden = flags.GetInt("sweep_hidden", 256);
  opt.hidden_sizes = {hidden, hidden};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);

  const int64_t num_queries = flags.GetInt("sweep_queries", 512);
  const double min_seconds = flags.GetDouble("sweep_min_seconds", 0.4);
  query::WorkloadSpec spec;
  spec.seed = 1234;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(1234);
  std::vector<query::Query> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int64_t i = 0; i < num_queries; ++i) queries.push_back(gen.GenerateQuery(rng));

  // Single-thread measurement: the speedup below is pure batching
  // (amortized weight traffic, fused kernels, arena reuse), not parallelism.
  // --sweep_scalar=1 reruns the sweep on the scalar reference kernels,
  // isolating the tiled-GEMM contribution.
  const bool scalar = flags.GetBool("sweep_scalar", false);
  tensor::SetUseScalarKernels(scalar);
  ThreadPool::SetGlobalThreads(1);
  const std::vector<int64_t> batch_sizes = {1, 8, 64, 512};
  std::vector<double> qps(batch_sizes.size(), 0.0);
  std::printf("\nInference throughput sweep (Duet estimator, 1 thread, %lld queries%s)\n",
              static_cast<long long>(num_queries), scalar ? ", scalar kernels" : "");
  std::printf("%-8s %14s %10s\n", "batch", "queries/s", "speedup");
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    qps[i] = MeasureBatchedQps(est, queries, batch_sizes[i], min_seconds);
    std::printf("%-8lld %14.1f %9.2fx\n", static_cast<long long>(batch_sizes[i]), qps[i],
                qps[i] / qps[0]);
  }

  // Batch-1 phase split: before the masked-weight cache the forward phase
  // (dominated by per-call W o M materialization) was ~95% of latency; the
  // cache is judged by how far this share drops.
  model.phase_times().Clear();
  const int64_t phase_reps = std::max<int64_t>(64, num_queries);
  for (int64_t i = 0; i < phase_reps; ++i) {
    est.EstimateSelectivity(queries[static_cast<size_t>(i) % queries.size()]);
  }
  const core::PhaseTimes phases = model.phase_times();
  const double total_ms = phases.total_ms() > 0.0 ? phases.total_ms() : 1.0;
  const double forward_share = phases.forward_ms / total_ms;
  std::printf("batch-1 phase split: encode %.1f%%  forward %.1f%%  post %.1f%%\n",
              100.0 * phases.encode_ms / total_ms, 100.0 * forward_share,
              100.0 * phases.post_ms / total_ms);

  // Multi-thread serving sweep: the same chunk protocol through the sharded
  // ServingEngine. Worker threads run tensor ops serially (shard = unit of
  // parallelism), so speedup here is pure cross-query parallelism.
  const std::vector<unsigned> worker_counts = {1, 2, 4, 8};
  // serving_qps[w][b]
  std::vector<std::vector<double>> serving_qps(
      worker_counts.size(), std::vector<double>(batch_sizes.size(), 0.0));
  bool bitwise_equal = true;
  std::printf("\nServing sweep (sharded ServingEngine, %lld queries)\n",
              static_cast<long long>(num_queries));
  std::printf("%-8s %-8s %14s %16s\n", "workers", "batch", "queries/s", "vs 1 worker");
  for (size_t w = 0; w < worker_counts.size(); ++w) {
    serve::ServingOptions sopt;
    sopt.num_workers = worker_counts[w];
    sopt.min_shard = 8;
    serve::ServingEngine engine(est, sopt);
    // Determinism check: sharded result must be bitwise equal to the
    // single-thread batch path.
    const std::vector<double> sharded = engine.EstimateBatch(queries);
    const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
    if (sharded != reference) bitwise_equal = false;
    for (size_t b = 0; b < batch_sizes.size(); ++b) {
      serving_qps[w][b] = MeasureServingQps(engine, queries, batch_sizes[b], min_seconds);
      std::printf("%-8u %-8lld %14.1f %15.2fx\n", worker_counts[w],
                  static_cast<long long>(batch_sizes[b]), serving_qps[w][b],
                  serving_qps[w][b] / serving_qps[0][b]);
    }
  }
  std::printf("sharded vs single-thread batch: %s\n",
              bitwise_equal ? "bitwise equal" : "MISMATCH");

  // Packed-weight backend sweep (single thread, like the batch sweep):
  // batch-1 is the weight-traffic-bound regime the backends target; batch
  // 64 shows what the amortized GEMM path pays for each format. Accuracy is
  // tracked as the median q-error on a seeded labeled workload, reported as
  // a delta against the fp32 dense path (CSR must be exactly 0 — it is a
  // bitwise backend; int8 is quantization-bounded).
  struct BackendRow {
    tensor::WeightBackend backend;
    bool plan = true;  // compiled-plan execution on/off for this row
    double qps_b1 = 0.0;
    double qps_b64 = 0.0;
    uint64_t packed_bytes = 0;
    uint64_t plan_bytes = 0;
    double median_qerror = 0.0;
    double qerror_delta = 0.0;  // (median - dense median) / dense median
  };
  // The packed CSR/int8 kernels have no scalar-reference variant, so make
  // sure the dense row is measured on the same SIMD kernels even when
  // --sweep_scalar=1 reran the batch sweep on the scalar reference —
  // otherwise the per-backend comparison would mostly measure scalar vs
  // SIMD instead of the weight formats.
  tensor::SetUseScalarKernels(false);

  // --backend: comma-separated subset of dense,csr,int8,f16,int4, swept in
  // the given order. Unknown names are a hard error — a typo must not let
  // the smoke run silently skip every backend code path.
  const std::string backend_list = flags.GetString("backend", "dense,csr,int8,f16,int4");
  std::vector<tensor::WeightBackend> backends;
  for (size_t pos = 0; pos <= backend_list.size();) {
    size_t comma = backend_list.find(',', pos);
    if (comma == std::string::npos) comma = backend_list.size();
    const std::string token = backend_list.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    tensor::WeightBackend parsed;
    if (!tensor::ParseWeightBackend(token, &parsed)) {
      std::fprintf(stderr,
                   "unknown --backend entry '%s' (expected dense,csr,int8,f16,int4)\n",
                   token.c_str());
      std::exit(1);  // a typo must fail the run, not skip the sweep
    }
    backends.push_back(parsed);
  }
  if (backends.empty()) {
    std::fprintf(stderr, "--backend selected no backends (got '%s')\n", backend_list.c_str());
    std::exit(1);  // same policy as unknown tokens: no silent skip
  }

  // --plan: comma-separated subset of on,off — the compiled-plan A/B. Each
  // backend is measured under every selected mode, so the plan win shows up
  // as two JSON rows per backend instead of a claim.
  const std::string plan_list = flags.GetString("plan", "on,off");
  std::vector<bool> plan_modes;
  for (size_t pos = 0; pos <= plan_list.size();) {
    size_t comma = plan_list.find(',', pos);
    if (comma == std::string::npos) comma = plan_list.size();
    const std::string token = plan_list.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    if (token == "on") {
      plan_modes.push_back(true);
    } else if (token == "off") {
      plan_modes.push_back(false);
    } else {
      std::fprintf(stderr, "unknown --plan entry '%s' (expected on,off)\n", token.c_str());
      std::exit(1);  // same no-silent-skip policy as --backend
    }
  }
  if (plan_modes.empty()) {
    std::fprintf(stderr, "--plan selected no modes (got '%s')\n", plan_list.c_str());
    std::exit(1);
  }

  query::WorkloadSpec lspec;
  lspec.num_queries = static_cast<int>(num_queries);
  lspec.seed = 1234;
  const query::Workload labeled = query::WorkloadGenerator(t, lspec).Generate();
  std::vector<query::Query> lqueries;
  lqueries.reserve(labeled.size());
  for (const auto& lq : labeled) lqueries.push_back(lq.query);
  const double rows_n = static_cast<double>(t.num_rows());

  // The backend sweep runs its own model at paper-serving width
  // (--backend_hidden, default 512 — the DMV nets reach {512,...,1024}).
  // At the batch sweep's default 2x256 the whole dense W o M fits in cache
  // and batch-1 is compute-bound, which is not the regime the packed
  // backends target: the weight-traffic levers only engage once the
  // packed weights outgrow cache.
  core::DuetModelOptions bopt;
  const int64_t backend_hidden = flags.GetInt("backend_hidden", 512);
  bopt.hidden_sizes = {backend_hidden, backend_hidden};
  bopt.residual = true;
  core::DuetModel bmodel(t, bopt);
  core::DuetEstimator best(bmodel);

  std::vector<BackendRow> brows;
  for (bool plan_on : plan_modes) {
    bmodel.SetPlanEnabled(plan_on);
    for (tensor::WeightBackend backend : backends) {
      BackendRow row;
      row.backend = backend;
      row.plan = plan_on;
      bmodel.SetInferenceBackend(backend);
      row.qps_b1 = MeasureBatchedQps(best, queries, 1, min_seconds);
      row.qps_b64 = MeasureBatchedQps(best, queries, 64, min_seconds);
      row.packed_bytes = bmodel.CachedBytes();
      row.plan_bytes = bmodel.PlanBytes();
      const std::vector<double> sels = best.EstimateSelectivityBatch(lqueries);
      std::vector<double> qerrs;
      qerrs.reserve(sels.size());
      for (size_t i = 0; i < sels.size(); ++i) {
        const double card =
            std::max(1.0, query::CardinalityEstimator::ClampSelectivity(sels[i]) * rows_n);
        qerrs.push_back(query::QError(card, static_cast<double>(labeled[i].cardinality)));
      }
      std::sort(qerrs.begin(), qerrs.end());
      row.median_qerror = qerrs.empty() ? 0.0 : qerrs[qerrs.size() / 2];
      brows.push_back(row);
    }
  }
  bmodel.SetPlanEnabled(true);  // restore the default

  // Deltas are anchored on the first dense (fp32) row wherever it ran in
  // the sweep order (dense is bitwise-invariant to the plan toggle, so any
  // dense row anchors both modes); without a dense row there is no
  // reference and the field is omitted from the JSON below.
  bool have_dense = false;
  double dense_median = 0.0;
  for (const BackendRow& row : brows) {
    if (row.backend == tensor::WeightBackend::kDenseF32) {
      have_dense = true;
      dense_median = row.median_qerror;
      break;
    }
  }
  std::printf("\nPacked-weight backend sweep (1 thread, %lld queries, 2x%lld ResMADE)\n",
              static_cast<long long>(num_queries), static_cast<long long>(backend_hidden));
  std::printf("%-8s %-5s %14s %14s %12s %10s %14s\n", "backend", "plan", "batch-1 q/s",
              "batch-64 q/s", "packed KiB", "plan KiB", "qerr delta");
  for (BackendRow& row : brows) {
    row.qerror_delta = have_dense && dense_median > 0.0
                           ? (row.median_qerror - dense_median) / dense_median
                           : 0.0;
    std::printf("%-8s %-5s %14.1f %14.1f %12.1f %10.1f ",
                tensor::WeightBackendName(row.backend), row.plan ? "on" : "off", row.qps_b1,
                row.qps_b64, static_cast<double>(row.packed_bytes) / 1024.0,
                static_cast<double>(row.plan_bytes) / 1024.0);
    if (have_dense) {
      std::printf("%+13.4f%%\n", 100.0 * row.qerror_delta);
    } else {
      std::printf("%14s\n", "n/a");
    }
  }
  std::printf("plan cache: %llu compiles in %.1f ms, %llu hits\n",
              static_cast<unsigned long long>(bmodel.PlanInfo().compiles),
              static_cast<double>(best.PlanCompileMicros()) / 1000.0,
              static_cast<unsigned long long>(best.PlanCacheHits()));

  // Cross-request fusion A/B: the same stream of batch-1 async submissions
  // through the micro-batcher with GEMV->GEMM fusion on vs off, on the
  // weight-traffic-bound backend-sweep model (batch-1 is exactly the regime
  // fusion rescues: concurrent singleton requests coalesce into one GEMM
  // that re-reads the packed weights once per group instead of once per
  // query). The two arms must be bitwise identical per request.
  bmodel.SetInferenceBackend(tensor::WeightBackend::kDenseF32);
  std::vector<double> fused_answers, unfused_answers;
  const double fused_qps = MeasureAsyncQps(best, queries, /*fuse=*/true, min_seconds,
                                           &fused_answers);
  const double unfused_qps = MeasureAsyncQps(best, queries, /*fuse=*/false, min_seconds,
                                             &unfused_answers);
  const bool fusion_bitwise = fused_answers == unfused_answers;
  const double fusion_speedup = unfused_qps > 0.0 ? fused_qps / unfused_qps : 0.0;
  std::printf("\nCross-request fusion A/B (async batch-1 submissions, 2 workers, dense)\n");
  std::printf("fused    %14.1f q/s\nunfused  %14.1f q/s\nfusion speedup %.2fx, "
              "per-request results %s\n",
              fused_qps, unfused_qps, fusion_speedup,
              fusion_bitwise ? "bitwise equal" : "MISMATCH");

  ThreadPool::SetGlobalThreads(0);
  tensor::SetUseScalarKernels(false);

  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"bench\":\"table3_throughput\",\"isa\":\"%s\",\"hw_threads\":%u,"
                "\"inference_sweep\":{\"estimator\":\"Duet\",\"threads\":1,\"results\":[",
                tensor::simd::ActiveIsaName(), std::thread::hardware_concurrency());
  std::string json = head;
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s{\"batch\":%lld,\"qps\":%.1f}", i == 0 ? "" : ",",
                  static_cast<long long>(batch_sizes[i]), qps[i]);
    json += buf;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "],\"speedup_batch64_vs_1\":%.2f,\"forward_share_batch1\":%.3f}",
                qps[2] / qps[0], forward_share);
  json += tail;
  json += ",\"serving_sweep\":{\"estimator\":\"Duet\",\"results\":[";
  bool first = true;
  for (size_t w = 0; w < worker_counts.size(); ++w) {
    for (size_t b = 0; b < batch_sizes.size(); ++b) {
      char buf[112];
      std::snprintf(buf, sizeof(buf), "%s{\"workers\":%u,\"batch\":%lld,\"qps\":%.1f}",
                    first ? "" : ",", worker_counts[w],
                    static_cast<long long>(batch_sizes[b]), serving_qps[w][b]);
      json += buf;
      first = false;
    }
  }
  char tail2[128];
  std::snprintf(tail2, sizeof(tail2),
                "],\"speedup_w4_vs_w1_batch64\":%.2f,\"sharded_bitwise_equal\":%s}",
                serving_qps[2][2] / serving_qps[0][2], bitwise_equal ? "true" : "false");
  json += tail2;
  // Backend sweep: one row per (plan mode, packed-weight backend).
  // qerror_delta is relative to the dense (fp32) median q-error;
  // best_nondense_b1_speedup is the best non-dense batch-1 throughput over
  // dense within the plan=on rows (falling back to whatever mode ran — the
  // ROADMAP's weight-traffic lever, expected > 1 from CSR/int8/f16);
  // plan_b1_speedup_best is the best per-backend batch-1 ratio of plan=on
  // over plan=off (the compiled-plan lever, only present when both modes
  // ran).
  json += ",\"backend_sweep\":{\"results\":[";
  double dense_b1 = 0.0, best_nondense_b1 = 0.0;
  for (size_t i = 0; i < brows.size(); ++i) {
    const BackendRow& row = brows[i];
    const bool counts = row.plan == plan_modes.front();  // one mode feeds speedups
    if (row.backend == tensor::WeightBackend::kDenseF32) {
      if (counts) dense_b1 = row.qps_b1;
    } else if (counts) {
      best_nondense_b1 = std::max(best_nondense_b1, row.qps_b1);
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"backend\":\"%s\",\"plan\":\"%s\",\"qps_batch1\":%.1f,"
                  "\"qps_batch64\":%.1f,\"packed_weight_bytes\":%llu,"
                  "\"plan_bytes\":%llu,\"median_qerror\":%.4f",
                  i == 0 ? "" : ",", tensor::WeightBackendName(row.backend),
                  row.plan ? "on" : "off", row.qps_b1, row.qps_b64,
                  static_cast<unsigned long long>(row.packed_bytes),
                  static_cast<unsigned long long>(row.plan_bytes), row.median_qerror);
    json += buf;
    if (have_dense) {  // no dense row in the sweep -> no delta reference
      std::snprintf(buf, sizeof(buf), ",\"qerror_delta_vs_dense\":%.6f", row.qerror_delta);
      json += buf;
    }
    json += "}";
  }
  char tail3[96];
  std::snprintf(tail3, sizeof(tail3), "],\"best_nondense_b1_speedup\":%.2f",
                dense_b1 > 0.0 ? best_nondense_b1 / dense_b1 : 0.0);
  json += tail3;
  // Per-backend plan-on/plan-off batch-1 ratio (requires both modes).
  double plan_speedup_best = 0.0;
  for (const BackendRow& on_row : brows) {
    if (!on_row.plan) continue;
    for (const BackendRow& off_row : brows) {
      if (off_row.plan || off_row.backend != on_row.backend) continue;
      if (off_row.qps_b1 > 0.0) {
        plan_speedup_best = std::max(plan_speedup_best, on_row.qps_b1 / off_row.qps_b1);
      }
    }
  }
  if (plan_speedup_best > 0.0) {
    std::snprintf(tail3, sizeof(tail3), ",\"plan_b1_speedup_best\":%.2f", plan_speedup_best);
    json += tail3;
  }
  std::snprintf(tail3, sizeof(tail3),
                ",\"plan_compile_micros\":%llu,\"plan_cache_hits\":%llu}",
                static_cast<unsigned long long>(best.PlanCompileMicros()),
                static_cast<unsigned long long>(best.PlanCacheHits()));
  json += tail3;
  // Fusion A/B: per-request bitwise identity is a correctness gate, so it
  // rides in the JSON where CI tooling can assert on it.
  char tail4[192];
  std::snprintf(tail4, sizeof(tail4),
                ",\"fusion_sweep\":{\"fused_qps\":%.1f,\"unfused_qps\":%.1f,"
                "\"fusion_b1_speedup\":%.2f,\"fusion_bitwise_equal\":%s}}",
                fused_qps, unfused_qps, fusion_speedup,
                fusion_bitwise ? "true" : "false");
  json += tail4;
  std::printf("%s\n", json.c_str());
}

/// Zero-downtime online-update sweep (--live_update): serve through a
/// ModelRegistry-backed engine while a background UpdateWorker fine-tunes
/// on served-traffic feedback and hot-swaps snapshots in. Reports sustained
/// live throughput against the steady state (the no-quiesce claim is a
/// measured ratio, not an assertion), the publish/swap latencies, the
/// update verdict counters and the median q-error before/after.
void RunLiveUpdateSweep(const Flags& flags, double scale) {
  const data::Table t = MakeCensus(scale);
  core::DuetModelOptions opt;
  const int64_t hidden = flags.GetInt("live_hidden", 128);
  opt.hidden_sizes = {hidden, hidden};
  opt.residual = true;
  auto model = std::make_unique<core::DuetModel>(t, opt);
  {
    // Briefly trained baseline: good enough to serve, with headroom for the
    // online updates to improve on.
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = 512;
    core::DuetTrainer(*model, topt).Train();
  }

  // Feedback stream: fresh random queries throughout (each update wave sees
  // queries the model was never tuned on — sustained drift), plus a fixed
  // eval workload for the before/after accuracy comparison.
  query::WorkloadSpec spec;
  spec.num_queries = static_cast<int>(flags.GetInt("live_queries", 768));
  spec.seed = 4321;
  const query::Workload feedback_wl = query::WorkloadGenerator(t, spec).Generate();
  query::WorkloadSpec eval_spec;
  eval_spec.num_queries = 128;
  eval_spec.seed = 4322;
  const query::Workload eval_wl = query::WorkloadGenerator(t, eval_spec).Generate();
  std::vector<query::Query> serve_queries;
  serve_queries.reserve(feedback_wl.size());
  for (const auto& lq : feedback_wl) serve_queries.push_back(lq.query);

  ThreadPool::SetGlobalThreads(1);
  serve::ModelRegistry registry(std::move(model));  // dense fp32, plans on
  const double qerror_before = core::MedianQError(registry.Current()->model(), eval_wl);

  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  serve::ServingEngine engine(registry, sopt);

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = flags.GetInt("live_min_feedback", 96);
  wopt.update.max_regression = 1.1;
  wopt.update.finetune.qerror_threshold = 1.05;
  wopt.update.finetune.epochs = 1;
  wopt.update.finetune.batch_size = 512;
  wopt.update.finetune.expand = 2;
  // Bounded round cost: each background epoch visits at most this many
  // anchors, so a fine-tune round costs the same on any table size — the
  // knob that keeps the update duty cycle (and the live/steady throughput
  // ratio) under control on small machines.
  wopt.update.finetune.max_anchor_rows = flags.GetInt("live_anchor_rows", 384);
  serve::UpdateWorker worker(registry, wopt);

  // Steady state: no update worker attached, no feedback flowing. Measured
  // over a window comparable to the live phase — the ratio below compares
  // two long averages, not a long average against a burst.
  const double min_seconds = flags.GetDouble("sweep_min_seconds", 0.4);
  const double steady_seconds =
      std::max(min_seconds, flags.GetDouble("live_min_seconds", 24.0 * scale) / 4.0);
  const int64_t batch = 64;
  const double steady_qps = MeasureServingQps(engine, serve_queries, batch, steady_seconds);

  // Live phase: same serving loop while the background worker clones,
  // tunes, validates and publishes. Feedback is fed in waves of
  // min_feedback fresh pairs — one wave per completed round — until the
  // target number of snapshots has been published; serving never pauses.
  const int64_t target_publishes = flags.GetInt("live_publishes", 3);
  const double live_min_seconds =
      std::max(0.5, flags.GetDouble("live_min_seconds", 24.0 * scale));
  const double live_max_seconds = flags.GetDouble("live_max_seconds", live_min_seconds * 6 + 60.0);
  std::vector<std::vector<query::Query>> chunks;
  for (size_t begin = 0; begin < serve_queries.size(); begin += static_cast<size_t>(batch)) {
    const size_t end = std::min(serve_queries.size(), begin + static_cast<size_t>(batch));
    chunks.emplace_back(serve_queries.begin() + static_cast<int64_t>(begin),
                        serve_queries.begin() + static_cast<int64_t>(end));
  }
  size_t feedback_cursor = 0;
  auto feed_wave = [&] {
    for (int64_t i = 0; i < wopt.min_feedback && feedback_cursor < feedback_wl.size();
         ++i, ++feedback_cursor) {
      const query::LabeledQuery& lq = feedback_wl[feedback_cursor];
      engine.ReportObserved(lq.query, static_cast<double>(lq.cardinality));
    }
  };
  engine.AttachUpdateWorker(&worker);
  worker.Start();
  Timer live_timer;
  int64_t served = 0;
  uint64_t waves_fed = 1;
  feed_wave();
  for (;;) {
    for (const auto& chunk : chunks) {
      engine.EstimateBatch(chunk);
      served += static_cast<int64_t>(chunk.size());
    }
    const serve::UpdateWorkerStats ws = worker.stats();
    // One fresh wave per completed round until enough snapshots shipped.
    if (ws.rounds >= waves_fed && ws.published < static_cast<uint64_t>(target_publishes)) {
      ++waves_fed;
      feed_wave();
    }
    const double elapsed = live_timer.Seconds();
    if (ws.published >= static_cast<uint64_t>(target_publishes) && elapsed >= live_min_seconds) {
      break;
    }
    // A starved run with the feedback stream exhausted and every fed wave
    // consumed can never publish again — stop instead of spinning out the
    // rest of live_max_seconds.
    if (ws.published < static_cast<uint64_t>(target_publishes) &&
        feedback_cursor >= feedback_wl.size() && ws.rounds >= waves_fed) {
      break;
    }
    if (elapsed > live_max_seconds) break;  // cap a gate-starved run
  }
  const double live_seconds = live_timer.Seconds();
  const double live_qps = static_cast<double>(served) / live_seconds;
  worker.Stop();
  // The worker (declared after the engine) is destroyed first; detach so
  // the engine never holds a dangling feedback pointer during teardown.
  engine.AttachUpdateWorker(nullptr);
  ThreadPool::SetGlobalThreads(0);

  const serve::UpdateWorkerStats ws = worker.stats();
  const serve::RegistryStats rs = registry.stats();
  const serve::ServingStats es = engine.stats();
  const double qerror_after = core::MedianQError(registry.Current()->model(), eval_wl);
  const double ratio = steady_qps > 0.0 ? live_qps / steady_qps : 0.0;

  std::printf("\nLive-update sweep (registry-backed serving, 2x%lld ResMADE, batch %lld)\n",
              static_cast<long long>(hidden), static_cast<long long>(batch));
  std::printf("steady-state    %14.1f q/s\n", steady_qps);
  std::printf("during updates  %14.1f q/s  (%.1f%% of steady, %.1fs window)\n", live_qps,
              100.0 * ratio, live_seconds);
  std::printf("updates         %llu published, %llu rolled back, %llu skipped "
              "(%llu feedback pairs)\n",
              static_cast<unsigned long long>(ws.published),
              static_cast<unsigned long long>(ws.rolled_back),
              static_cast<unsigned long long>(ws.skipped),
              static_cast<unsigned long long>(ws.feedback_received));
  std::printf("swap latency    %.1f us (pointer swap), %.1f ms publish end-to-end, "
              "last round %.2fs\n",
              rs.last_swap_micros, rs.last_publish_micros / 1000.0, ws.last_round_seconds);
  std::printf("median q-error  %.3f -> %.3f on the eval workload (snapshot %llu, "
              "%llu swaps seen by traffic)\n",
              qerror_before, qerror_after,
              static_cast<unsigned long long>(rs.current_id),
              static_cast<unsigned long long>(es.snapshot_swaps));

  char buf[640];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"live_update\",\"steady_qps\":%.1f,\"live_qps\":%.1f,"
                "\"qps_ratio\":%.3f,\"updates_published\":%llu,"
                "\"updates_rolled_back\":%llu,\"updates_skipped\":%llu,"
                "\"feedback_pairs\":%llu,\"snapshot_swaps\":%llu,"
                "\"swap_micros_last\":%.1f,\"publish_micros_last\":%.1f,"
                "\"round_seconds_last\":%.3f,\"qerror_before\":%.4f,"
                "\"qerror_after\":%.4f}",
                steady_qps, live_qps, ratio,
                static_cast<unsigned long long>(ws.published),
                static_cast<unsigned long long>(ws.rolled_back),
                static_cast<unsigned long long>(ws.skipped),
                static_cast<unsigned long long>(ws.feedback_received),
                static_cast<unsigned long long>(es.snapshot_swaps), rs.last_swap_micros,
                rs.last_publish_micros, ws.last_round_seconds, qerror_before, qerror_after);
  std::printf("%s\n", buf);
}

/// Overload sweep (--overload): admission control and graceful degradation
/// under saturation (docs/resilience.md §2). The sweep self-calibrates: it
/// first measures the engine's closed-loop async capacity, then drives a
/// paced open-loop stream at ~0.5x capacity (steady) and ~4x capacity
/// (overload) through a fresh engine per phase with a bounded queue
/// (2 x max_batch) and per-query deadlines. Under overload the bounded
/// queue must shed rather than build an unbounded backlog, shed/expired
/// queries get flagged fallback answers, and the admitted p99 stays within
/// ~2x of the steady-state p99 (the no-collapse claim, reported not
/// asserted).
void RunOverloadSweep(const Flags& flags, double scale) {
  const data::Table t = MakeCensus(scale);
  core::DuetModelOptions opt;
  const int64_t hidden = flags.GetInt("overload_hidden", 128);
  opt.hidden_sizes = {hidden, hidden};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  baselines::IndependenceEstimator fallback(t);

  query::WorkloadSpec spec;
  spec.seed = 1234;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(1234);
  std::vector<query::Query> queries;
  const int64_t num_queries = flags.GetInt("sweep_queries", 512);
  queries.reserve(static_cast<size_t>(num_queries));
  for (int64_t i = 0; i < num_queries; ++i) queries.push_back(gen.GenerateQuery(rng));

  const unsigned workers = static_cast<unsigned>(flags.GetInt("overload_workers", 2));
  const int64_t max_batch = 64;
  const double phase_seconds =
      std::max(0.5, flags.GetDouble("overload_seconds", 4.0 * scale));

  ThreadPool::SetGlobalThreads(1);  // engine workers only, like the live sweep

  // Calibration: closed-loop async capacity with an unbounded queue and no
  // deadlines — the saturation rate the offered loads are scaled from.
  double capacity_qps = 0.0;
  {
    serve::ServingOptions sopt;
    sopt.num_workers = workers;
    sopt.max_batch = max_batch;
    sopt.max_wait_us = 1000;
    serve::ServingEngine engine(est, sopt);
    std::vector<serve::ServingEngine::Future> warm;
    for (const auto& q : queries) warm.push_back(engine.Submit(q));
    for (auto& f : warm) f.Wait();
    const int64_t n = 4096;
    std::vector<serve::ServingEngine::Future> futures;
    futures.reserve(static_cast<size_t>(n));
    Timer timer;
    for (int64_t i = 0; i < n; ++i) {
      futures.push_back(engine.Submit(queries[static_cast<size_t>(i) % queries.size()]));
    }
    for (auto& f : futures) f.Wait();
    capacity_qps = static_cast<double>(n) / timer.Seconds();
  }

  // One paced open-loop phase: fresh engine, bounded queue, per-query
  // deadlines; offered load = `rate` queries/sec for `phase_seconds`.
  struct PhaseResult {
    double offered_qps = 0.0;
    double achieved_qps = 0.0;
    uint64_t submitted = 0;
    serve::ServingStats stats;
  };
  auto run_phase = [&](double rate, int64_t deadline_us) {
    PhaseResult r;
    r.offered_qps = rate;
    serve::ServingOptions sopt;
    sopt.num_workers = workers;
    sopt.max_batch = max_batch;
    sopt.max_wait_us = 1000;
    sopt.max_queue = 2 * max_batch;  // bounded: overload must shed, not queue
    sopt.default_deadline_us = deadline_us;
    serve::ServingEngine engine(est, sopt);
    engine.AttachFallback(&fallback);
    // Bound the future backlog so a fast machine cannot blow memory.
    const uint64_t cap = static_cast<uint64_t>(
        std::min(500000.0, std::max(1000.0, rate * phase_seconds)));
    std::vector<serve::ServingEngine::Future> futures;
    futures.reserve(cap);
    Timer timer;
    uint64_t submitted = 0;
    while (timer.Seconds() < phase_seconds && submitted < cap) {
      // Pace: keep cumulative submissions at rate * elapsed.
      const auto target = static_cast<uint64_t>(rate * timer.Seconds());
      while (submitted < target && submitted < cap) {
        futures.push_back(
            engine.Submit(queries[static_cast<size_t>(submitted) % queries.size()]));
        ++submitted;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& f : futures) f.Wait();
    const double elapsed = timer.Seconds();
    r.submitted = submitted;
    r.achieved_qps = static_cast<double>(submitted) / elapsed;
    r.stats = engine.stats();
    return r;
  };

  // Steady phase first (generous deadline: it should never fire), so the
  // overload deadline can be anchored on the measured steady p99.
  const PhaseResult steady = run_phase(0.5 * capacity_qps, /*deadline_us=*/0);
  const int64_t deadline_us = std::max<int64_t>(
      2000, static_cast<int64_t>(1.5 * static_cast<double>(steady.stats.latency_p99_us)));
  const PhaseResult overload = run_phase(4.0 * capacity_qps, deadline_us);

  ThreadPool::SetGlobalThreads(0);

  const double p99_ratio =
      steady.stats.latency_p99_us > 0
          ? static_cast<double>(overload.stats.latency_p99_us) /
                static_cast<double>(steady.stats.latency_p99_us)
          : 0.0;
  const double shed_share =
      overload.submitted > 0
          ? static_cast<double>(overload.stats.shed) / static_cast<double>(overload.submitted)
          : 0.0;

  std::printf("\nOverload sweep (admission control, %u workers, 2x%lld ResMADE, "
              "queue %lld, deadline %lld us)\n",
              workers, static_cast<long long>(hidden), static_cast<long long>(2 * max_batch),
              static_cast<long long>(deadline_us));
  std::printf("capacity (closed loop)  %14.1f q/s\n", capacity_qps);
  std::printf("%-10s %12s %12s %10s %10s %10s %9s %9s %9s\n", "phase", "offered q/s",
              "served q/s", "shed", "expired", "fallback", "p50 us", "p99 us", "p999 us");
  auto print_phase = [](const char* name, const PhaseResult& r) {
    std::printf("%-10s %12.1f %12.1f %10llu %10llu %10llu %9llu %9llu %9llu\n", name,
                r.offered_qps, r.achieved_qps,
                static_cast<unsigned long long>(r.stats.shed),
                static_cast<unsigned long long>(r.stats.deadline_missed),
                static_cast<unsigned long long>(r.stats.fallback_served),
                static_cast<unsigned long long>(r.stats.latency_p50_us),
                static_cast<unsigned long long>(r.stats.latency_p99_us),
                static_cast<unsigned long long>(r.stats.latency_p999_us));
  };
  print_phase("steady", steady);
  print_phase("overload", overload);
  std::printf("overload: %.1f%% of offered load shed, admitted p99 %.2fx steady p99\n",
              100.0 * shed_share, p99_ratio);

  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"overload\",\"capacity_qps\":%.1f,\"queue_limit\":%lld,"
      "\"deadline_us\":%lld,\"steady\":{\"offered_qps\":%.1f,\"achieved_qps\":%.1f,"
      "\"shed\":%llu,\"deadline_missed\":%llu,\"p50_us\":%llu,\"p99_us\":%llu,"
      "\"p999_us\":%llu},"
      "\"overload\":{\"offered_qps\":%.1f,\"achieved_qps\":%.1f,\"shed\":%llu,"
      "\"deadline_missed\":%llu,\"fallback_served\":%llu,\"p50_us\":%llu,"
      "\"p99_us\":%llu,\"p999_us\":%llu},\"shed_share\":%.4f,\"admitted_p99_ratio\":%.3f}",
      capacity_qps, static_cast<long long>(2 * max_batch),
      static_cast<long long>(deadline_us), steady.offered_qps, steady.achieved_qps,
      static_cast<unsigned long long>(steady.stats.shed),
      static_cast<unsigned long long>(steady.stats.deadline_missed),
      static_cast<unsigned long long>(steady.stats.latency_p50_us),
      static_cast<unsigned long long>(steady.stats.latency_p99_us),
      static_cast<unsigned long long>(steady.stats.latency_p999_us), overload.offered_qps,
      overload.achieved_qps, static_cast<unsigned long long>(overload.stats.shed),
      static_cast<unsigned long long>(overload.stats.deadline_missed),
      static_cast<unsigned long long>(overload.stats.fallback_served),
      static_cast<unsigned long long>(overload.stats.latency_p50_us),
      static_cast<unsigned long long>(overload.stats.latency_p99_us),
      static_cast<unsigned long long>(overload.stats.latency_p999_us), shed_share, p99_ratio);
  std::printf("%s\n", buf);
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const std::string datasets = flags.GetString("datasets", "census,kdd,dmv");
  std::printf("Table III reproduction: training throughput (tuples/s)\n");

  std::vector<Row> rows;
  if (datasets.find("census") != std::string::npos) {
    rows.push_back(RunDataset(MakeCensus(scale), flags.GetInt("batch", 128), 4));
  }
  if (datasets.find("kdd") != std::string::npos) {
    // UAE at its paper-scale sample count: the memory model reports OOM.
    rows.push_back(RunDataset(MakeKdd(scale), flags.GetInt("batch", 128), 200));
  }
  if (datasets.find("dmv") != std::string::npos) {
    rows.push_back(RunDataset(MakeDmv(scale), flags.GetInt("batch", 256), 4));
  }

  std::printf("\n%-10s", "estimator");
  for (const Row& r : rows) std::printf(" %14s", r.dataset.c_str());
  std::printf("\n");
  auto print_line = [&](const char* name, auto getter, auto oom_getter) {
    std::printf("%-10s", name);
    for (const Row& r : rows) {
      if (oom_getter(r)) {
        std::printf(" %14s", "OOM");
      } else {
        std::printf(" %14.1f", getter(r));
      }
    }
    std::printf("\n");
  };
  print_line("Naru", [](const Row& r) { return r.naru; }, [](const Row&) { return false; });
  print_line("UAE", [](const Row& r) { return r.uae; }, [](const Row& r) { return r.uae_oom; });
  print_line("DuetD", [](const Row& r) { return r.duetd; }, [](const Row&) { return false; });
  print_line("Duet", [](const Row& r) { return r.duet; }, [](const Row&) { return false; });

  if (flags.GetBool("sweep", true)) RunInferenceSweep(flags, scale);
  if (flags.GetBool("live_update", false)) RunLiveUpdateSweep(flags, scale);
  if (flags.GetBool("overload", false)) RunOverloadSweep(flags, scale);
  return 0;
}
