// Table III reproduction: training throughput (tuples/s) of the data-driven
// and hybrid methods on the three datasets. The expected shape (paper):
// Naru > DuetD > Duet >> UAE, with UAE OOM on the high-dimensional dataset
// at its paper-scale sampling configuration.
//
// Also measures serving-side inference throughput of the Duet estimator
// through the batch-first API (EstimateSelectivityBatch) with a single
// thread across batch sizes 1/8/64/512, and emits the sweep as one JSON
// line for tooling.
//
// Flags: --datasets=census,kdd,dmv --batch=N --sweep_queries=N
//        --sweep_min_seconds=S --sweep=0|1
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/thread_pool.h"

namespace duet::bench {
namespace {

struct Row {
  std::string dataset;
  double naru = 0.0;
  double uae = 0.0;
  bool uae_oom = false;
  double duetd = 0.0;
  double duet = 0.0;
};

Row RunDataset(const data::Table& t, int64_t batch, int uae_samples) {
  Row row;
  row.dataset = t.name();
  const query::Workload train_wl = MakeTrainingWorkload(t, 200);

  {
    baselines::NaruModel model(t, NaruOptionsFor(t, 100));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    row.naru = baselines::NaruTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  {
    baselines::UaeOptions uopt;
    uopt.naru = NaruOptionsFor(t, 100);
    uopt.train_samples = uae_samples;
    uopt.memory_budget_mb = 10240;
    baselines::UaeModel model(t, uopt);
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    topt.train_workload = &train_wl;
    baselines::UaeTrainer trainer(model, topt);
    const auto stats = trainer.TrainEpoch(0);
    row.uae_oom = trainer.oom();
    row.uae = stats.tuples_per_second;
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    row.duetd = core::DuetTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    topt.train_workload = &train_wl;
    row.duet = core::DuetTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  return row;
}

/// Single-thread queries/sec of `est` at one batch size: the query stream is
/// processed in chunks of `batch` through the batch-first API, repeated
/// until `min_seconds` of wall time accumulate.
double MeasureBatchedQps(query::CardinalityEstimator& est,
                         const std::vector<query::Query>& queries, int64_t batch,
                         double min_seconds) {
  // Pre-slice the stream so chunk construction is not charged to the
  // estimator.
  std::vector<std::vector<query::Query>> chunks;
  for (size_t begin = 0; begin < queries.size(); begin += static_cast<size_t>(batch)) {
    const size_t end = std::min(queries.size(), begin + static_cast<size_t>(batch));
    chunks.emplace_back(queries.begin() + static_cast<int64_t>(begin),
                        queries.begin() + static_cast<int64_t>(end));
  }
  // Warm-up pass: populates the inference arena so the measured steady
  // state performs no activation allocations.
  for (const auto& chunk : chunks) est.EstimateSelectivityBatch(chunk);
  Timer timer;
  int64_t done = 0;
  do {
    for (const auto& chunk : chunks) {
      est.EstimateSelectivityBatch(chunk);
      done += static_cast<int64_t>(chunk.size());
    }
  } while (timer.Seconds() < min_seconds);
  return static_cast<double>(done) / timer.Seconds();
}

/// Batch-size sweep of the Duet estimator; prints a table and emits the
/// results as a single JSON line (parsed by tooling / CI).
void RunInferenceSweep(const Flags& flags, double scale) {
  const data::Table t = MakeCensus(scale);
  // Serving-scale architecture (paper-scale nets reach {512,...,1024} on
  // DMV): large enough that per-query weight traffic dominates at batch 1,
  // which is exactly what batching amortizes. --sweep_hidden overrides.
  core::DuetModelOptions opt;
  const int64_t hidden = flags.GetInt("sweep_hidden", 256);
  opt.hidden_sizes = {hidden, hidden};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);

  const int64_t num_queries = flags.GetInt("sweep_queries", 512);
  const double min_seconds = flags.GetDouble("sweep_min_seconds", 0.4);
  query::WorkloadSpec spec;
  spec.seed = 1234;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(1234);
  std::vector<query::Query> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int64_t i = 0; i < num_queries; ++i) queries.push_back(gen.GenerateQuery(rng));

  // Single-thread measurement: the speedup below is pure batching
  // (amortized weight traffic, fused kernels, arena reuse), not parallelism.
  // --sweep_scalar=1 reruns the sweep on the scalar reference kernels,
  // isolating the tiled-GEMM contribution.
  const bool scalar = flags.GetBool("sweep_scalar", false);
  tensor::SetUseScalarKernels(scalar);
  ThreadPool::SetGlobalThreads(1);
  const std::vector<int64_t> batch_sizes = {1, 8, 64, 512};
  std::vector<double> qps(batch_sizes.size(), 0.0);
  std::printf("\nInference throughput sweep (Duet estimator, 1 thread, %lld queries%s)\n",
              static_cast<long long>(num_queries), scalar ? ", scalar kernels" : "");
  std::printf("%-8s %14s %10s\n", "batch", "queries/s", "speedup");
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    qps[i] = MeasureBatchedQps(est, queries, batch_sizes[i], min_seconds);
    std::printf("%-8lld %14.1f %9.2fx\n", static_cast<long long>(batch_sizes[i]), qps[i],
                qps[i] / qps[0]);
  }
  ThreadPool::SetGlobalThreads(0);
  tensor::SetUseScalarKernels(false);

  std::string json = "{\"bench\":\"table3_throughput\",\"inference_sweep\":{"
                     "\"estimator\":\"Duet\",\"threads\":1,\"results\":[";
  for (size_t i = 0; i < batch_sizes.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s{\"batch\":%lld,\"qps\":%.1f}", i == 0 ? "" : ",",
                  static_cast<long long>(batch_sizes[i]), qps[i]);
    json += buf;
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "],\"speedup_batch64_vs_1\":%.2f}}", qps[2] / qps[0]);
  json += tail;
  std::printf("%s\n", json.c_str());
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const std::string datasets = flags.GetString("datasets", "census,kdd,dmv");
  std::printf("Table III reproduction: training throughput (tuples/s)\n");

  std::vector<Row> rows;
  if (datasets.find("census") != std::string::npos) {
    rows.push_back(RunDataset(MakeCensus(scale), flags.GetInt("batch", 128), 4));
  }
  if (datasets.find("kdd") != std::string::npos) {
    // UAE at its paper-scale sample count: the memory model reports OOM.
    rows.push_back(RunDataset(MakeKdd(scale), flags.GetInt("batch", 128), 200));
  }
  if (datasets.find("dmv") != std::string::npos) {
    rows.push_back(RunDataset(MakeDmv(scale), flags.GetInt("batch", 256), 4));
  }

  std::printf("\n%-10s", "estimator");
  for (const Row& r : rows) std::printf(" %14s", r.dataset.c_str());
  std::printf("\n");
  auto print_line = [&](const char* name, auto getter, auto oom_getter) {
    std::printf("%-10s", name);
    for (const Row& r : rows) {
      if (oom_getter(r)) {
        std::printf(" %14s", "OOM");
      } else {
        std::printf(" %14.1f", getter(r));
      }
    }
    std::printf("\n");
  };
  print_line("Naru", [](const Row& r) { return r.naru; }, [](const Row&) { return false; });
  print_line("UAE", [](const Row& r) { return r.uae; }, [](const Row& r) { return r.uae_oom; });
  print_line("DuetD", [](const Row& r) { return r.duetd; }, [](const Row&) { return false; });
  print_line("Duet", [](const Row& r) { return r.duet; }, [](const Row&) { return false; });

  if (flags.GetBool("sweep", true)) RunInferenceSweep(flags, scale);
  return 0;
}
