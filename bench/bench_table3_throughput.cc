// Table III reproduction: training throughput (tuples/s) of the data-driven
// and hybrid methods on the three datasets. The expected shape (paper):
// Naru > DuetD > Duet >> UAE, with UAE OOM on the high-dimensional dataset
// at its paper-scale sampling configuration.
//
// Flags: --datasets=census,kdd,dmv --batch=N
#include <cstdio>

#include "bench/bench_util.h"

namespace duet::bench {
namespace {

struct Row {
  std::string dataset;
  double naru = 0.0;
  double uae = 0.0;
  bool uae_oom = false;
  double duetd = 0.0;
  double duet = 0.0;
};

Row RunDataset(const data::Table& t, int64_t batch, int uae_samples) {
  Row row;
  row.dataset = t.name();
  const query::Workload train_wl = MakeTrainingWorkload(t, 200);

  {
    baselines::NaruModel model(t, NaruOptionsFor(t, 100));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    row.naru = baselines::NaruTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  {
    baselines::UaeOptions uopt;
    uopt.naru = NaruOptionsFor(t, 100);
    uopt.train_samples = uae_samples;
    uopt.memory_budget_mb = 10240;
    baselines::UaeModel model(t, uopt);
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    topt.train_workload = &train_wl;
    baselines::UaeTrainer trainer(model, topt);
    const auto stats = trainer.TrainEpoch(0);
    row.uae_oom = trainer.oom();
    row.uae = stats.tuples_per_second;
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    row.duetd = core::DuetTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  {
    core::DuetModel model(t, DuetOptionsFor(t));
    core::TrainOptions topt;
    topt.epochs = 1;
    topt.batch_size = batch;
    topt.train_workload = &train_wl;
    row.duet = core::DuetTrainer(model, topt).TrainEpoch(0).tuples_per_second;
  }
  return row;
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const std::string datasets = flags.GetString("datasets", "census,kdd,dmv");
  std::printf("Table III reproduction: training throughput (tuples/s)\n");

  std::vector<Row> rows;
  if (datasets.find("census") != std::string::npos) {
    rows.push_back(RunDataset(MakeCensus(scale), flags.GetInt("batch", 128), 4));
  }
  if (datasets.find("kdd") != std::string::npos) {
    // UAE at its paper-scale sample count: the memory model reports OOM.
    rows.push_back(RunDataset(MakeKdd(scale), flags.GetInt("batch", 128), 200));
  }
  if (datasets.find("dmv") != std::string::npos) {
    rows.push_back(RunDataset(MakeDmv(scale), flags.GetInt("batch", 256), 4));
  }

  std::printf("\n%-10s", "estimator");
  for (const Row& r : rows) std::printf(" %14s", r.dataset.c_str());
  std::printf("\n");
  auto print_line = [&](const char* name, auto getter, auto oom_getter) {
    std::printf("%-10s", name);
    for (const Row& r : rows) {
      if (oom_getter(r)) {
        std::printf(" %14s", "OOM");
      } else {
        std::printf(" %14.1f", getter(r));
      }
    }
    std::printf("\n");
  };
  print_line("Naru", [](const Row& r) { return r.naru; }, [](const Row&) { return false; });
  print_line("UAE", [](const Row& r) { return r.uae; }, [](const Row& r) { return r.uae_oom; });
  print_line("DuetD", [](const Row& r) { return r.duetd; }, [](const Row&) { return false; });
  print_line("Duet", [](const Row& r) { return r.duet; }, [](const Row&) { return false; });
  return 0;
}
