// End-to-end plan-quality bench: how much plan cost does each estimator's
// Q-error buy? (The paper's introduction motivation, quantified with the
// plan-cost ratio / P-error of Han et al., ref [46].)
//
// A three-table star schema with correlated filter columns is planned for
// many random filter combinations; for each estimator we report the
// distribution of true-cost(chosen plan) / true-cost(optimal plan).
//
// Flags: --rows=N --queries=N --epochs=N
#include <cstdio>
#include <memory>

#include "baselines/pgm/chow_liu.h"
#include "baselines/traditional/independence.h"
#include "baselines/traditional/mhist.h"
#include "bench/bench_util.h"
#include "optimizer/planner.h"
#include "query/evaluator.h"

namespace duet::bench {
namespace {

class Oracle : public query::CardinalityEstimator {
 public:
  explicit Oracle(const data::Table& t) : table_(t), exact_(t) {}
  double EstimateSelectivity(const query::Query& q) override {
    return static_cast<double>(exact_.Count(q)) / static_cast<double>(table_.num_rows());
  }
  std::string name() const override { return "Oracle"; }

 private:
  const data::Table& table_;
  query::ExactEvaluator exact_;
};

/// Equal-sized tables whose *filters* decide the join order; `correlation`
/// controls how badly the independence assumption misjudges the two-column
/// conjunction (0 = independent columns, Indep is exact).
data::Table MakeStarTable(const std::string& name, int64_t rows, uint64_t seed,
                          double correlation) {
  data::SyntheticSpec spec;
  spec.name = name;
  spec.rows = rows;
  spec.seed = seed;
  spec.num_latent = 1;
  spec.latent_cardinality = 40;
  spec.columns = {{40, 0.4, 0.3, 0},
                  {12, 0.6, correlation, 0},
                  {12, 0.6, correlation, 0}};
  return data::GenerateSynthetic(spec);
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int num_queries = static_cast<int>(flags.GetInt("queries", 60));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 20));

  const int64_t rows = flags.GetInt("rows", static_cast<int64_t>(6000 * scale));
  data::Table a = MakeStarTable("t_corr", rows, 1, /*correlation=*/0.95);
  data::Table b = MakeStarTable("t_mixed", rows, 2, /*correlation=*/0.6);
  data::Table c = MakeStarTable("t_indep", rows, 3, /*correlation=*/0.0);
  const std::vector<const data::Table*> tables = {&a, &b, &c};

  // Per-table estimator stables.
  std::vector<std::unique_ptr<core::DuetModel>> duet_models;
  std::vector<std::unique_ptr<query::CardinalityEstimator>> duet_est, indep_est, mhist_est,
      pgm_est, oracle_est;
  for (const data::Table* t : tables) {
    core::DuetModelOptions mopt;
    mopt.hidden_sizes = {64, 64};
    mopt.residual = true;
    auto model = std::make_unique<core::DuetModel>(*t, mopt);
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    core::DuetTrainer(*model, topt).Train();
    duet_est.push_back(std::make_unique<core::DuetEstimator>(*model));
    duet_models.push_back(std::move(model));
    indep_est.push_back(std::make_unique<baselines::IndependenceEstimator>(*t));
    mhist_est.push_back(std::make_unique<baselines::MHistEstimator>(*t, 512));
    pgm_est.push_back(std::make_unique<baselines::ChowLiuEstimator>(*t));
    oracle_est.push_back(std::make_unique<Oracle>(*t));
  }

  struct Entry {
    const char* name;
    std::vector<query::CardinalityEstimator*> ests;
    std::vector<double> ratios;
  };
  auto raw = [](const std::vector<std::unique_ptr<query::CardinalityEstimator>>& v) {
    std::vector<query::CardinalityEstimator*> out;
    for (const auto& e : v) out.push_back(e.get());
    return out;
  };
  std::vector<Entry> entries = {{"Indep", raw(indep_est), {}},
                                {"MHist", raw(mhist_est), {}},
                                {"PGM", raw(pgm_est), {}},
                                {"Duet", raw(duet_est), {}},
                                {"Oracle", raw(oracle_est), {}}};

  // Random correlated filters: a >=-range pair on the two filter columns.
  Rng rng(777);
  for (int qi = 0; qi < num_queries; ++qi) {
    optimizer::StarJoinQuery star;
    star.tables = tables;
    star.join_col = 0;
    for (const data::Table* t : tables) {
      // Equality pairs on the correlated filter columns: the conjunction is
      // exactly where the independence assumption breaks.
      const data::Column& c1 = t->column(1);
      const data::Column& c2 = t->column(2);
      query::Query f;
      f.predicates.push_back(
          {1, query::PredOp::kEq,
           c1.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c1.ndv()))))});
      f.predicates.push_back(
          {2, query::PredOp::kEq,
           c2.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c2.ndv()))))});
      star.filters.push_back(f);
    }
    optimizer::StarJoinPlanner planner(star);
    for (Entry& e : entries) {
      const optimizer::JoinPlan plan = planner.PlanWithEstimators(e.ests);
      e.ratios.push_back(planner.PlanCostRatio(plan));
    }
  }

  std::printf("Plan-cost ratio over %d random star-join queries "
              "(3 tables, correlated filters; 1.0 = optimal plan)\n",
              num_queries);
  std::printf("%-10s %9s %9s %9s %9s\n", "estimator", "mean", "median", "95th", "max");
  for (Entry& e : entries) {
    const ErrorSummary s = ErrorSummary::FromValues(e.ratios);
    std::printf("%-10s %9.3f %9.3f %9.3f %9.3f\n", e.name, s.mean, s.median,
                Percentile(e.ratios, 95.0), s.max);
  }
  std::printf(
      "\nExpected shape: the oracle's small residual gap is the uniform-key\n"
      "fanout assumption in the join formula, not cardinality error; Duet\n"
      "tracks the oracle because its conditional model absorbs the\n"
      "cross-column correlation; the independence assumption pays the\n"
      "largest plan-cost premium — the end-to-end version of the paper's\n"
      "accuracy story.\n");
  return 0;
}
