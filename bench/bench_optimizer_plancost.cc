// Headline optimizer-in-the-loop bench: the provider-driven join-order
// planner (optimizer/card_provider.h, docs/optimizer.md) planning random
// star joins THROUGH the serving stack, scored with the plan-cost ratio
// (P-error of Han et al., paper ref [46]).
//
// Three estimator rows share one planner and one star workload:
//  * oracle    — ExactCardinalityProvider; P-error is 1.0 EXACTLY for every
//                query (bitwise-shared DP), asserted, nonzero exit if not;
//  * neural    — per-table trained Duet artifacts in a ModelZoo behind a
//                zoo-mode ServingEngine, one keyed Submit burst per DP
//                level (ServingCardinalityProvider);
//  * classical — per-table IndependenceEstimator, the fallback tier
//                (EstimatorCardinalityProvider).
//
// A second section A/Bs the estimation latency of one plan search with the
// level-batched fetch against a sequential one-request-at-a-time arm, both
// unmemoized so they issue identical request streams — the wall-clock value
// of handing the micro-batcher the whole fan-out at once.
//
// Flags: --rows=N --queries=N --epochs=N
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "baselines/traditional/independence.h"
#include "bench/bench_util.h"
#include "optimizer/card_provider.h"
#include "optimizer/planner.h"
#include "serve/model_zoo.h"
#include "serve/serving_engine.h"
#include "tensor/packed_weights.h"

namespace duet::bench {
namespace {

/// Equal-sized tables whose *filters* decide the join order; `correlation`
/// controls how badly the independence assumption misjudges the two-column
/// conjunction (0 = independent columns, the classical row is exact).
///
/// The generator draws each table an independent real-valued dictionary, so
/// the key column (col 0) is rebuilt onto the canonical 0..39 domain every
/// star table shares — star joins match by VALUE (JoinKeyStats /
/// data::EquiJoin semantics), and disjoint dictionaries would make every
/// join factor zero.
data::Table MakeStarTable(const std::string& name, int64_t rows, uint64_t seed,
                          double correlation) {
  data::SyntheticSpec spec;
  spec.name = name;
  spec.rows = rows;
  spec.seed = seed;
  spec.num_latent = 1;
  spec.latent_cardinality = 40;
  spec.columns = {{40, 0.4, 0.3, 0},
                  {12, 0.6, correlation, 0},
                  {12, 0.6, correlation, 0}};
  const data::Table generated = data::GenerateSynthetic(spec);

  std::vector<double> shared_domain(40);
  for (int32_t v = 0; v < 40; ++v) shared_domain[static_cast<size_t>(v)] = v;
  std::vector<data::Column> columns;
  for (int c = 0; c < generated.num_columns(); ++c) {
    const data::Column& src = generated.column(c);
    std::vector<int32_t> codes(static_cast<size_t>(generated.num_rows()));
    for (int64_t r = 0; r < generated.num_rows(); ++r) {
      codes[static_cast<size_t>(r)] = src.code(r);
    }
    columns.push_back(data::Column::FromCodes(
        src.name(), std::move(codes), c == 0 ? shared_domain : src.distinct()));
  }
  return data::Table(name, std::move(columns));
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int num_queries = static_cast<int>(flags.GetInt("queries", 60));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 20));
  const int64_t rows = flags.GetInt("rows", static_cast<int64_t>(6000 * scale));

  data::Table a = MakeStarTable("t_corr", rows, 1, /*correlation=*/0.95);
  data::Table b = MakeStarTable("t_mixed", rows, 2, /*correlation=*/0.6);
  data::Table c = MakeStarTable("t_indep", rows, 3, /*correlation=*/0.0);
  const std::vector<const data::Table*> tables = {&a, &b, &c};
  const int k = static_cast<int>(tables.size());

  // Train one Duet model per table and publish it as a zoo artifact — the
  // neural row estimates through the full serving path, not in-process.
  std::vector<std::string> model_keys, artifact_paths;
  serve::ModelZoo zoo;
  for (int t = 0; t < k; ++t) {
    core::DuetModelOptions mopt;
    mopt.hidden_sizes = {64, 64};
    mopt.residual = true;
    core::DuetModel model(*tables[static_cast<size_t>(t)], mopt);
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    core::DuetTrainer(model, topt).Train();
    model.SetInferenceBackend(tensor::WeightBackend::kCsrF32);
    model.SetPlanEnabled(true);
    model.EstimateSelectivityBatch({query::Query{}});  // compile the plan
    const std::string path = "/tmp/duet_bench_plancost_" + std::to_string(::getpid()) +
                             "_" + std::to_string(t) + ".duet";
    const artifact::ArtifactStatus st =
        artifact::WriteArtifact(path, model, tensor::WeightBackend::kCsrF32);
    if (!st.ok) {
      std::fprintf(stderr, "artifact write failed: %s\n", st.error.c_str());
      return 1;
    }
    artifact_paths.push_back(path);
    model_keys.push_back("star-" + std::to_string(t));
    zoo.Register(model_keys.back(), path);
  }
  serve::ServingEngine engine(zoo);  // defaults: fused keyed micro-batching

  std::vector<std::unique_ptr<baselines::IndependenceEstimator>> indep_owned;
  std::vector<query::CardinalityEstimator*> indep;
  for (const data::Table* t : tables) {
    indep_owned.push_back(std::make_unique<baselines::IndependenceEstimator>(*t));
    indep.push_back(indep_owned.back().get());
  }

  const optimizer::JoinKeyStats stats(tables, /*join_col=*/0);
  optimizer::ServingCardinalityProvider neural(engine, model_keys, stats);
  optimizer::EstimatorCardinalityProvider classical(indep, stats);

  // Unmemoized batched vs sequential arms: identical request streams
  // (ell * C(k, ell) per level), only the waiting discipline differs.
  optimizer::ComposedProviderOptions fanout_batched;
  fanout_batched.memoize = false;
  optimizer::ComposedProviderOptions fanout_sequential;
  fanout_sequential.memoize = false;
  fanout_sequential.sequential = true;
  optimizer::ServingCardinalityProvider neural_batched(engine, model_keys, stats,
                                                       fanout_batched);
  optimizer::ServingCardinalityProvider neural_sequential(engine, model_keys, stats,
                                                          fanout_sequential);

  struct Row {
    const char* name;
    optimizer::CardinalityProvider* provider;  // null = oracle, built per query
    std::vector<double> ratios;
    uint64_t degraded = 0;
  };
  std::vector<Row> rows_out = {{"oracle", nullptr, {}, 0},
                               {"neural", &neural, {}, 0},
                               {"classical", &classical, {}, 0}};

  bool oracle_exact = true;
  double batched_us = 0.0, sequential_us = 0.0;
  Rng rng(777);
  for (int qi = 0; qi < num_queries; ++qi) {
    optimizer::StarJoinQuery star;
    star.tables = tables;
    star.join_col = 0;
    for (const data::Table* t : tables) {
      // Equality pairs on the correlated filter columns: the conjunction is
      // exactly where the independence assumption breaks.
      const data::Column& c1 = t->column(1);
      const data::Column& c2 = t->column(2);
      query::Query f;
      f.predicates.push_back(
          {1, query::PredOp::kEq,
           c1.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c1.ndv()))))});
      f.predicates.push_back(
          {2, query::PredOp::kEq,
           c2.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c2.ndv()))))});
      star.filters.push_back(f);
    }

    optimizer::JoinOrderPlanner planner(star);
    optimizer::ExactCardinalityProvider oracle(planner.exact());
    for (Row& row : rows_out) {
      optimizer::CardinalityProvider& provider =
          row.provider != nullptr ? *row.provider : static_cast<optimizer::CardinalityProvider&>(oracle);
      const optimizer::PlanSearchResult res = planner.Plan(provider);
      row.ratios.push_back(planner.PlanCostRatio(res.plan));
      row.degraded += res.degraded_estimates;
    }
    if (rows_out[0].ratios.back() != 1.0) oracle_exact = false;

    batched_us += planner.Plan(neural_batched).estimation_micros;
    sequential_us += planner.Plan(neural_sequential).estimation_micros;
  }

  std::printf("Plan-cost ratio (P-error) over %d random star-join queries\n"
              "(%d tables, %lld rows each, correlated filters; 1.0 = optimal plan;\n"
              " neural row served through a zoo-mode engine, one keyed burst per DP level)\n",
              num_queries, k, static_cast<long long>(rows));
  std::printf("%-10s %9s %9s %9s %9s %10s\n", "estimator", "mean", "p50", "p99", "max",
              "degraded");
  for (Row& row : rows_out) {
    const ErrorSummary s = ErrorSummary::FromValues(row.ratios);
    std::printf("%-10s %9.3f %9.3f %9.3f %9.3f %10llu\n", row.name, s.mean, s.median,
                s.p99, s.max, static_cast<unsigned long long>(row.degraded));
  }
  const double per_plan_batched = batched_us / num_queries;
  const double per_plan_sequential = sequential_us / num_queries;
  const double speedup =
      per_plan_batched > 0.0 ? per_plan_sequential / per_plan_batched : 0.0;
  std::printf("\nEstimation latency per plan search (unmemoized fan-out, same request "
              "stream):\n  batched  %9.1f us\n  sequential %7.1f us   (batch speedup "
              "%.2fx)\n",
              per_plan_batched, per_plan_sequential, speedup);

  const ErrorSummary neural_s = ErrorSummary::FromValues(rows_out[1].ratios);
  const ErrorSummary classical_s = ErrorSummary::FromValues(rows_out[2].ratios);
  const bool neural_beats_classical = neural_s.mean <= classical_s.mean;

  // Machine-readable line (docs/benchmarks.md schema).
  std::printf("\nJSON: {\"bench\":\"optimizer_plancost\",\"queries\":%d,\"tables\":%d,"
              "\"rows_per_table\":%lld,\"estimators\":[",
              num_queries, k, static_cast<long long>(rows));
  for (size_t i = 0; i < rows_out.size(); ++i) {
    const ErrorSummary s = ErrorSummary::FromValues(rows_out[i].ratios);
    std::printf("%s{\"name\":\"%s\",\"perror_p50\":%.6f,\"perror_p99\":%.6f,"
                "\"perror_max\":%.6f,\"degraded\":%llu}",
                i == 0 ? "" : ",", rows_out[i].name, s.median, s.p99, s.max,
                static_cast<unsigned long long>(rows_out[i].degraded));
  }
  std::printf("],\"batched_est_us_per_plan\":%.1f,\"sequential_est_us_per_plan\":%.1f,"
              "\"batch_speedup\":%.2f,\"oracle_exact\":%s,\"neural_beats_classical\":%s}\n",
              per_plan_batched, per_plan_sequential, speedup,
              oracle_exact ? "true" : "false", neural_beats_classical ? "true" : "false");

  for (const std::string& p : artifact_paths) ::unlink(p.c_str());
  if (!oracle_exact) {
    std::fprintf(stderr, "FAIL: oracle provider did not reproduce the optimal plan "
                         "(P-error != 1.0)\n");
    return 1;
  }
  return 0;
}
