// Importance-sampling ablation (paper Sec. IV-C): uniform predicate
// sampling is the worst-case-robust default; with strong query time
// locality the historical workload's operator and value distributions can
// guide the virtual-table sampler instead.
//
// Trains DuetD twice — uniform vs workload-guided sampling — and evaluates
// both on In-Q (matching the historical distribution) and Rand-Q (drifted).
// Expected shape: importance helps In-Q and must not catastrophically hurt
// Rand-Q; uniform stays the safer choice under drift, which is why the
// paper defaults to it.
//
// Flags: --epochs=N --rows=N --queries=N
#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6));
  const int queries = static_cast<int>(flags.GetInt("queries", 200));

  data::Table t =
      data::CensusLike(flags.GetInt("rows", static_cast<int64_t>(4000 * scale)), 42);
  const query::Workload history = MakeTrainingWorkload(t, 600);
  const query::Workload in_q = MakeInQ(t, queries);
  const query::Workload rand_q = MakeRandQ(t, queries);

  std::printf("Importance-sampling ablation on %s (%lld rows), %d epochs, DuetD\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()), epochs);
  std::printf("%-22s %9s %9s %9s %9s %9s %9s\n", "sampler", "InQ med", "InQ 99th",
              "InQ max", "RandQ med", "RandQ 99", "RandQ max");

  for (const bool importance : {false, true}) {
    core::TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.lambda = 0.0f;
    if (importance) topt.importance_workload = &history;
    core::DuetModel model(t, DuetOptionsFor(t));
    core::DuetTrainer(model, topt).Train();
    core::DuetEstimator est(model);
    const ErrorSummary in_sum =
        ErrorSummary::FromValues(query::EvaluateQErrors(est, in_q, t.num_rows()));
    const ErrorSummary rand_sum =
        ErrorSummary::FromValues(query::EvaluateQErrors(est, rand_q, t.num_rows()));
    std::printf("%-22s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                importance ? "workload-guided" : "uniform (paper)", in_sum.median,
                in_sum.p99, in_sum.max, rand_sum.median, rand_sum.p99, rand_sum.max);
  }

  std::printf(
      "\nExpected shape: workload-guided sampling sharpens in-workload tails\n"
      "(predicates the history favours are trained more often); uniform\n"
      "remains the robust default under drift (paper Sec. IV-C).\n");
  return 0;
}
