// Backbone ablation: MADE vs BlockTransformer carrying the Duet estimator.
//
// The paper evaluates Duet on MADE/ResMADE and argues (Sec. V-A4) that the
// O(n) -> O(1) inference saving grows with backbone cost, anticipating a
// Transformer variant. This bench trains both backbones on the same data
// with the same budget and reports accuracy, estimation cost and size, plus
// the Naru-style O(n) cost a Transformer *would* pay with progressive
// sampling (forward passes x per-pass cost) to show the saving scales.
//
// Flags: --epochs=N --rows=N --queries=N
#include <cstdio>

#include "bench/bench_util.h"

namespace duet::bench {
namespace {

struct BackboneResult {
  std::string name;
  double train_s = 0.0;
  double est_ms = 0.0;
  double size_mb = 0.0;
  ErrorSummary rand_q;
};

BackboneResult RunOne(const data::Table& t, core::DuetModelOptions mopt,
                      core::TrainOptions topt, const query::Workload& rand_q,
                      const std::string& name) {
  BackboneResult res;
  res.name = name;
  core::DuetModel model(t, mopt);
  Timer timer;
  core::DuetTrainer(model, topt).Train();
  res.train_s = timer.Millis() / 1000.0;
  core::DuetEstimator est(model);
  res.est_ms = MeasureEstimationMs(est, rand_q);
  res.size_mb = model.SizeMB();
  res.rand_q = ErrorSummary::FromValues(query::EvaluateQErrors(est, rand_q, t.num_rows()));
  return res;
}

}  // namespace
}  // namespace duet::bench

int main(int argc, char** argv) {
  using namespace duet;
  using namespace duet::bench;
  Flags flags(argc, argv);
  const double scale = Flags::ScaleFactor();
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6));
  const int queries = static_cast<int>(flags.GetInt("queries", 150));

  data::Table t =
      data::CensusLike(flags.GetInt("rows", static_cast<int64_t>(4000 * scale)), 42);
  const query::Workload rand_q = MakeRandQ(t, queries);

  core::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = 128;
  topt.lambda = 0.0f;  // isolate the backbone: data-driven training only

  std::printf("Backbone ablation on %s (%lld rows), %d epochs, Rand-Q\n",
              t.name().c_str(), static_cast<long long>(t.num_rows()), epochs);
  std::printf("%-14s %10s %10s %9s %9s %9s %9s\n", "backbone", "train(s)", "est(ms)",
              "size(MB)", "median", "99th", "max");

  // MADE (the paper's evaluated configuration).
  core::DuetModelOptions made_opt = DuetOptionsFor(t);
  const BackboneResult made = RunOne(t, made_opt, topt, rand_q, "MADE");

  // BlockTransformer (the paper's anticipated configuration).
  core::DuetModelOptions tr_opt = DuetOptionsFor(t);
  tr_opt.backbone = core::DuetBackbone::kTransformer;
  tr_opt.transformer.d_model = 32;
  tr_opt.transformer.num_heads = 4;
  tr_opt.transformer.num_layers = 2;
  const BackboneResult trans = RunOne(t, tr_opt, topt, rand_q, "Transformer");

  for (const BackboneResult& r : {made, trans}) {
    std::printf("%-14s %10.2f %10.3f %9.2f %9.3f %9.3f %9.3f\n", r.name.c_str(),
                r.train_s, r.est_ms, r.size_mb, r.rand_q.median, r.rand_q.p99,
                r.rand_q.max);
  }

  // The scaling argument: a progressive-sampling estimator pays
  // n_constrained forward passes per estimate; Duet pays exactly one. The
  // per-pass cost of a Transformer is higher, so the multiplicative saving
  // grows with the backbone.
  PrintSectionRule();
  const double avg_preds = [&] {
    double s = 0.0;
    for (const auto& lq : rand_q) s += lq.query.NumConstrainedColumns();
    return s / static_cast<double>(rand_q.size());
  }();
  std::printf(
      "hypothetical progressive-sampling cost on the Transformer backbone:\n"
      "  avg constrained columns = %.2f -> ~%.2f ms/query vs Duet's %.3f ms\n",
      avg_preds, avg_preds * trans.est_ms, trans.est_ms);
  std::printf(
      "\nExpected shape: the Transformer trades higher per-pass cost for\n"
      "similar accuracy at this scale; Duet keeps both backbones O(1) per\n"
      "estimate, so the saving vs progressive sampling grows with the\n"
      "backbone's forward cost (paper Sec. V-A4).\n");
  return 0;
}
