// A two-node Duet deployment over loopback (docs/networking.md).
//
// One process plays three roles. A PRIMARY node trains a Duet model, holds
// it in a serve::ModelRegistry and serves it through a net::NetServer
// speaking the DuetRpc binary protocol. A REPLICA node runs its own
// NetServer over a serve::ModelZoo and receives the primary's snapshot via
// checksummed snapshot replication (net::ReplicateSnapshot) — validate,
// mmap-load, hot-swap, no quiesce. A CLIENT talks to both nodes with
// net::RpcClient and measures q-error strictly over the wire.
//
// The deployment story: the primary's background serve::UpdateWorker
// fine-tunes on observed cardinalities and hot-swaps an improved snapshot;
// one more replication round ships the improvement to the replica. The
// final table shows before/after median q-error on BOTH nodes, and that
// primary and replica answers are bitwise-identical at every stage — the
// replica is a real copy, not an approximation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "net/client.h"
#include "net/server.h"
#include "query/workload.h"
#include "serve/model_registry.h"
#include "serve/model_zoo.h"
#include "serve/serving_engine.h"
#include "serve/update_worker.h"

int main() {
  using namespace duet;
  data::Table table = data::CensusLike(/*rows=*/6000, /*seed=*/42);
  const double rows = static_cast<double>(table.num_rows());

  // Skewed training workload vs. drifted serving workload (paper Sec. V-A2),
  // same setup as examples/workload_drift.cpp — but served over TCP here.
  query::WorkloadSpec train_spec;
  train_spec.num_queries = 800;
  train_spec.seed = 42;
  train_spec.gamma_num_predicates = true;
  train_spec.bounded_column = table.LargestNdvColumn();
  const query::Workload train_wl = query::WorkloadGenerator(table, train_spec).Generate();

  query::WorkloadSpec drift_spec;
  drift_spec.num_queries = 240;
  drift_spec.seed = 1234;
  const query::Workload drift_wl = query::WorkloadGenerator(table, drift_spec).Generate();
  std::vector<query::Query> drift_queries;
  drift_queries.reserve(drift_wl.size());
  for (const auto& lq : drift_wl) drift_queries.push_back(lq.query);

  // --- Primary node: train -> registry -> engine -> NetServer ---
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  mopt.residual = true;
  auto model = std::make_unique<core::DuetModel>(table, mopt);
  core::TrainOptions topt;
  topt.epochs = 4;
  topt.batch_size = 256;
  topt.train_workload = &train_wl;
  topt.lambda = 0.1f;
  core::DuetTrainer(*model, topt).Train();

  serve::ModelRegistry registry(std::move(model));
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  serve::ServingEngine primary_engine(registry, sopt);
  net::NetServer primary(primary_engine);  // ephemeral loopback port
  primary.AttachSnapshotSource(&registry);
  net::WireStatus st = primary.Start();
  if (!st.ok) {
    std::fprintf(stderr, "primary start failed: %s\n", st.error.c_str());
    return 1;
  }

  // --- Replica node: empty zoo -> engine -> its own NetServer ---
  serve::ModelZoo zoo;
  serve::ServingEngine replica_engine(zoo);
  net::NetServer replica(replica_engine);
  st = replica.Start();
  if (!st.ok) {
    std::fprintf(stderr, "replica start failed: %s\n", st.error.c_str());
    return 1;
  }

  std::printf("Two-node serving over DuetRpc (loopback)\n");
  std::printf("  primary  127.0.0.1:%u  (registry, snapshot source)\n", primary.port());
  std::printf("  replica  127.0.0.1:%u  (zoo, replication target)\n\n", replica.port());

  // --- Ship snapshot #1 primary -> replica ---
  char path_buf[128];
  std::snprintf(path_buf, sizeof(path_buf), "/tmp/duet_example_replica.%d.artifact",
                static_cast<int>(::getpid()));
  const std::string replica_path = path_buf;
  net::RpcClient repl_link;
  st = repl_link.Connect("127.0.0.1", primary.port());
  if (!st.ok) {
    std::fprintf(stderr, "replication link failed: %s\n", st.error.c_str());
    return 1;
  }
  st = net::ReplicateSnapshot(repl_link, zoo, "census", replica_path);
  if (!st.ok) {
    std::fprintf(stderr, "replication failed: %s\n", st.error.c_str());
    return 1;
  }
  std::printf("replicated snapshot %llu -> replica (checksummed stream ok)\n\n",
              static_cast<unsigned long long>(registry.stats().current_id));

  // --- Client: measure q-error over the wire on both nodes ---
  net::RpcClient to_primary, to_replica;
  if (!to_primary.Connect("127.0.0.1", primary.port()).ok ||
      !to_replica.Connect("127.0.0.1", replica.port()).ok) {
    std::fprintf(stderr, "client connect failed\n");
    return 1;
  }
  auto wire_qerror = [&](net::RpcClient& client, const std::string& key,
                         std::vector<serve::Estimate>* raw) {
    std::vector<serve::Estimate> out;
    const net::WireStatus rs = client.EstimateBatch(key, drift_queries, 0, &out);
    if (!rs.ok) {
      std::fprintf(stderr, "wire estimate failed: %s\n", rs.error.c_str());
      std::exit(1);
    }
    std::vector<double> qerrs;
    qerrs.reserve(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
      const double est = std::max(1.0, out[i].selectivity * rows);
      qerrs.push_back(query::QError(est, static_cast<double>(drift_wl[i].cardinality)));
    }
    if (raw) *raw = std::move(out);
    return ErrorSummary::FromValues(qerrs);
  };
  auto bitwise_equal = [](const std::vector<serve::Estimate>& a,
                          const std::vector<serve::Estimate>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].selectivity != b[i].selectivity) return false;
    }
    return true;
  };

  std::vector<serve::Estimate> p_raw, r_raw;
  const ErrorSummary p_before = wire_qerror(to_primary, "", &p_raw);
  const ErrorSummary r_before = wire_qerror(to_replica, "census", &r_raw);
  std::printf("drifted workload, snapshot #1 (over the wire):\n");
  std::printf("  primary  median %.2f  p99 %.2f\n", p_before.median, p_before.p99);
  std::printf("  replica  median %.2f  p99 %.2f   bitwise equal to primary: %s\n\n",
              r_before.median, r_before.p99, bitwise_equal(p_raw, r_raw) ? "yes" : "NO");

  // --- Primary fine-tunes in the background on observed cardinalities ---
  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 128;
  wopt.update.finetune.qerror_threshold = 1.2;
  wopt.update.finetune.epochs = 2;
  wopt.update.finetune.max_anchor_rows = 1024;
  wopt.update.max_regression = 1.1;
  serve::UpdateWorker worker(registry, wopt);
  worker.Start();
  primary_engine.AttachUpdateWorker(&worker);
  for (const auto& lq : drift_wl) {
    primary_engine.ReportObserved(lq.query, static_cast<double>(lq.cardinality));
  }
  for (int i = 0; i < 600; ++i) {  // serve while the worker adapts
    to_primary.EstimateBatch("", drift_queries, 0, &p_raw);
    if (worker.stats().rounds > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  worker.Stop();
  primary_engine.AttachUpdateWorker(nullptr);
  const serve::UpdateWorkerStats ws = worker.stats();
  std::printf("update worker: %llu published, %llu rolled back (holdout %.2f -> %.2f)\n",
              static_cast<unsigned long long>(ws.published),
              static_cast<unsigned long long>(ws.rolled_back), ws.last_holdout_before,
              ws.last_holdout_after);

  // --- One more replication round ships the fine-tuned snapshot ---
  st = net::ReplicateSnapshot(repl_link, zoo, "census", replica_path);
  if (!st.ok) {
    std::fprintf(stderr, "re-replication failed: %s\n", st.error.c_str());
    return 1;
  }
  std::printf("re-replicated snapshot %llu -> replica (hot-swapped, no quiesce)\n\n",
              static_cast<unsigned long long>(registry.stats().current_id));

  const ErrorSummary p_after = wire_qerror(to_primary, "", &p_raw);
  const ErrorSummary r_after = wire_qerror(to_replica, "census", &r_raw);
  std::printf("drifted workload, snapshot #%llu (over the wire):\n",
              static_cast<unsigned long long>(registry.stats().current_id));
  std::printf("  primary  median %.2f -> %.2f\n", p_before.median, p_after.median);
  std::printf("  replica  median %.2f -> %.2f   bitwise equal to primary: %s\n",
              r_before.median, r_after.median, bitwise_equal(p_raw, r_raw) ? "yes" : "NO");

  const net::NetStats ps = primary.stats();
  std::printf("\nprimary wire stats: %llu frames in, %llu queries, %llu snapshot streams "
              "(%llu bytes shipped), %llu protocol errors\n",
              static_cast<unsigned long long>(ps.frames_in),
              static_cast<unsigned long long>(ps.queries),
              static_cast<unsigned long long>(ps.snapshot_streams),
              static_cast<unsigned long long>(ps.snapshot_bytes_sent),
              static_cast<unsigned long long>(ps.protocol_errors));
  std::printf("\nExpected: after the second replication round both nodes move together\n"
              "(the fine-tuned snapshot improves or holds the drifted median), and\n"
              "the replica's answers stay bitwise-identical to the primary's at\n"
              "every stage — replication ships the exact snapshot, not a retrained\n"
              "approximation.\n");

  to_primary.Close();
  to_replica.Close();
  repl_link.Close();
  replica.Stop();
  primary.Stop();
  ::unlink(replica_path.c_str());
  ::unlink((replica_path + ".fetch").c_str());
  return 0;
}
