// Workload drift, served live (the paper's Problem 5 plus its Sec. IV-A
// deployment story).
//
// Duet is trained on a bounded, skewed workload and then serves a drifted
// random workload — through the zero-downtime serving stack this time:
// a serve::ModelRegistry holds the model as an immutable snapshot, a
// serve::ServingEngine dispatches batches against it, and a background
// serve::UpdateWorker receives the true cardinalities the "execution
// engine" observes for served queries, fine-tunes a clone on exactly that
// feedback, validates it on a holdout slice, and hot-swaps the improved
// snapshot in while traffic keeps flowing. No quiesce anywhere: the
// before/after median q-error printed at the end is measured on the same
// engine across a live snapshot swap. (Compare examples/hybrid_finetune.cpp,
// the offline collect-then-tune flow this example supersedes for serving;
// see docs/serving.md for the lifecycle.)
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/workload.h"
#include "serve/model_registry.h"
#include "serve/serving_engine.h"
#include "serve/update_worker.h"

int main() {
  using namespace duet;
  data::Table table = data::CensusLike(/*rows=*/6000, /*seed=*/42);
  const double rows = static_cast<double>(table.num_rows());

  // Training workload: gamma-skewed predicate counts, bounded column
  // (only 1% of the largest column's values ever appear) — paper Sec. V-A2.
  query::WorkloadSpec train_spec;
  train_spec.num_queries = 800;
  train_spec.seed = 42;
  train_spec.gamma_num_predicates = true;
  train_spec.bounded_column = table.LargestNdvColumn();
  const query::Workload train_wl = query::WorkloadGenerator(table, train_spec).Generate();

  // The drifted workload the service will actually face (Rand-Q flavour).
  query::WorkloadSpec drift_spec;
  drift_spec.num_queries = 240;
  drift_spec.seed = 1234;
  const query::Workload drift_wl = query::WorkloadGenerator(table, drift_spec).Generate();
  std::vector<query::Query> drift_queries;
  drift_queries.reserve(drift_wl.size());
  for (const auto& lq : drift_wl) drift_queries.push_back(lq.query);

  // --- Train, then hand the model to the registry as snapshot #1 ---
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  mopt.residual = true;
  auto duet = std::make_unique<core::DuetModel>(table, mopt);
  core::TrainOptions topt;
  topt.epochs = 4;  // a young deployment: accurate in-distribution, with
                    // headroom for the online updates to close under drift
  topt.batch_size = 256;
  topt.train_workload = &train_wl;
  topt.lambda = 0.1f;
  core::DuetTrainer(*duet, topt).Train();

  serve::ModelRegistry registry(std::move(duet));
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  serve::ServingEngine engine(registry, sopt);

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 128;
  wopt.update.finetune.qerror_threshold = 1.2;
  wopt.update.finetune.epochs = 2;
  wopt.update.finetune.max_anchor_rows = 1024;  // bounded background cost
  wopt.update.max_regression = 1.1;
  serve::UpdateWorker worker(registry, wopt);
  worker.Start();
  engine.AttachUpdateWorker(&worker);

  auto median_qerror_via_engine = [&](uint64_t* snapshot_id) {
    const std::vector<double> sels = engine.EstimateBatch(drift_queries, snapshot_id);
    std::vector<double> qerrs;
    qerrs.reserve(sels.size());
    for (size_t i = 0; i < sels.size(); ++i) {
      const double est = std::max(1.0, sels[i] * rows);
      qerrs.push_back(query::QError(est, static_cast<double>(drift_wl[i].cardinality)));
    }
    return ErrorSummary::FromValues(qerrs);
  };

  std::printf("Workload drift, served live (registry + hot swap + background fine-tune)\n\n");
  uint64_t snapshot_before = 0;
  const ErrorSummary before = median_qerror_via_engine(&snapshot_before);
  std::printf("drifted workload on snapshot %llu:  median %.2f  p99 %.2f  max %.2f\n",
              static_cast<unsigned long long>(snapshot_before), before.median, before.p99,
              before.max);

  // The execution engine "runs" the served queries and reports what it
  // observed; the background worker takes it from there.
  for (const auto& lq : drift_wl) {
    engine.ReportObserved(lq.query, static_cast<double>(lq.cardinality));
  }
  std::printf("reported %zu observed cardinalities; serving continues while the "
              "background worker adapts...\n",
              drift_wl.size());

  // Keep traffic flowing until the worker has published (or given up) —
  // this loop is the "no quiesce" point: it never stops dispatching.
  for (int i = 0; i < 600; ++i) {
    engine.EstimateBatch(drift_queries);
    const serve::UpdateWorkerStats ws = worker.stats();
    if (ws.rounds > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  worker.Stop();
  // The worker (declared after the engine) is destroyed first; detach so
  // the engine never holds a dangling feedback pointer during teardown.
  engine.AttachUpdateWorker(nullptr);

  uint64_t snapshot_after = 0;
  const ErrorSummary after = median_qerror_via_engine(&snapshot_after);
  const serve::UpdateWorkerStats ws = worker.stats();
  const serve::RegistryStats rs = registry.stats();
  std::printf("drifted workload on snapshot %llu:  median %.2f  p99 %.2f  max %.2f\n\n",
              static_cast<unsigned long long>(snapshot_after), after.median, after.p99,
              after.max);
  std::printf("update worker: %llu published, %llu rolled back, %llu skipped "
              "(holdout median %.2f -> %.2f); last swap %.1f us\n",
              static_cast<unsigned long long>(ws.published),
              static_cast<unsigned long long>(ws.rolled_back),
              static_cast<unsigned long long>(ws.skipped), ws.last_holdout_before,
              ws.last_holdout_after, rs.last_swap_micros);
  std::printf("median q-error before/after the live update: %.2f -> %.2f\n", before.median,
              after.median);
  std::printf("\nExpected: the published snapshot improves (or at least holds) the drifted\n"
              "median while serving never paused; a rolled-back round leaves the serving\n"
              "snapshot — and its estimates — bitwise untouched.\n");
  return 0;
}
