// Workload drift (the paper's Problem 5, its core motivation).
//
// A query-driven estimator (MSCN) is trained on a bounded, skewed workload
// and then confronted with random queries whose distribution has drifted;
// its error degrades. Duet, which learns mostly from data, keeps its
// accuracy on the drifted workload without any fine-tuning — the behaviour
// Table II demonstrates with the In-Q vs Rand-Q comparison.
#include <cstdio>

#include "baselines/mscn/mscn_model.h"
#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/workload.h"

int main() {
  using namespace duet;
  data::Table table = data::CensusLike(/*rows=*/6000, /*seed=*/42);

  // Training workload: gamma-skewed predicate counts, bounded column
  // (only 1% of the largest column's values ever appear) — paper Sec. V-A2.
  query::WorkloadSpec train_spec;
  train_spec.num_queries = 800;
  train_spec.seed = 42;
  train_spec.gamma_num_predicates = true;
  train_spec.bounded_column = table.LargestNdvColumn();
  const query::Workload train_wl = query::WorkloadGenerator(table, train_spec).Generate();

  // In-workload test queries (same distribution) and drifted random queries.
  query::WorkloadSpec in_spec = train_spec;
  in_spec.seed = 43;
  in_spec.num_queries = 200;
  const query::Workload in_q = query::WorkloadGenerator(table, in_spec).Generate();
  query::WorkloadSpec rand_spec;
  rand_spec.num_queries = 200;
  rand_spec.seed = 1234;
  const query::Workload rand_q = query::WorkloadGenerator(table, rand_spec).Generate();

  // --- MSCN: learns only from the labeled workload ---
  baselines::MscnOptions mscn_opt;
  mscn_opt.epochs = 30;
  mscn_opt.bitmap_size = 500;
  mscn_opt.max_preds = table.num_columns();
  baselines::MscnModel mscn(table, mscn_opt);
  mscn.Train(train_wl);

  // --- Duet: hybrid (data first, workload as a supplement) ---
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  mopt.residual = true;
  core::DuetModel duet(table, mopt);
  core::TrainOptions topt;
  topt.epochs = 8;
  topt.batch_size = 256;
  topt.train_workload = &train_wl;
  topt.lambda = 0.1f;
  core::DuetTrainer(duet, topt).Train();
  core::DuetEstimator duet_est(duet);

  auto report = [&](const char* name, query::CardinalityEstimator& est) {
    const auto in_err = query::EvaluateQErrors(est, in_q, table.num_rows());
    const auto rand_err = query::EvaluateQErrors(est, rand_q, table.num_rows());
    const ErrorSummary in_sum = ErrorSummary::FromValues(in_err);
    const ErrorSummary rand_sum = ErrorSummary::FromValues(rand_err);
    std::printf("%-6s  In-Q   median %7.2f  p99 %9.2f  max %9.2f\n", name, in_sum.median,
                in_sum.p99, in_sum.max);
    std::printf("%-6s  Rand-Q median %7.2f  p99 %9.2f  max %9.2f   (drift ratio p99: %.1fx)\n",
                name, rand_sum.median, rand_sum.p99, rand_sum.max,
                rand_sum.p99 / in_sum.p99);
  };
  std::printf("Workload drift: in-distribution vs drifted accuracy\n\n");
  report("MSCN", mscn);
  std::printf("\n");
  report("Duet", duet_est);
  std::printf("\nExpected: MSCN's error inflates under drift; Duet's stays stable because "
              "its knowledge comes from the data distribution itself.\n");
  return 0;
}
