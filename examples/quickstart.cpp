// Quickstart: build a table, train Duet for a few epochs, estimate queries.
//
// This is the smallest end-to-end use of the public API:
//   1. data::Table        - dictionary-encoded relation (here: synthetic)
//   2. core::DuetModel    - the predicate-conditioned autoregressive model
//   3. core::DuetTrainer  - Algorithm 2 (data-driven here; see the
//                           hybrid_finetune example for query feedback)
//   4. model.EstimateSelectivity(query) - Algorithm 3, one forward pass.
#include <cstdio>

#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/evaluator.h"
#include "query/workload.h"

int main() {
  using namespace duet;

  // A Census-like table: 14 columns, skewed and correlated.
  data::Table table = data::CensusLike(/*rows=*/8000, /*seed=*/42);
  std::printf("table %s: %lld rows, %d columns\n", table.name().c_str(),
              static_cast<long long>(table.num_rows()), table.num_columns());

  // Duet with a 2-block ResMADE (the paper's Census architecture, scaled).
  core::DuetModelOptions options;
  options.hidden_sizes = {64, 64};
  options.residual = true;
  core::DuetModel model(table, options);
  std::printf("model: %lld parameters (%.2f MB)\n",
              static_cast<long long>(model.NumParams()), model.SizeMB());

  core::TrainOptions train;
  train.epochs = 8;
  train.batch_size = 256;
  core::DuetTrainer trainer(model, train);
  trainer.Train([](const core::EpochStats& e) {
    std::printf("epoch %d: L_data=%.4f (%.0f tuples/s)\n", e.epoch + 1, e.data_loss,
                e.tuples_per_second);
  });

  // Estimate a few random range queries and compare with the exact count.
  query::WorkloadSpec spec;
  spec.num_queries = 8;
  spec.seed = 7;
  const query::Workload workload = query::WorkloadGenerator(table, spec).Generate();
  std::printf("\n%-52s %10s %10s %8s\n", "query", "estimate", "actual", "q-error");
  for (const auto& lq : workload) {
    const double sel = model.EstimateSelectivity(lq.query);
    const double est = std::max(1.0, sel * static_cast<double>(table.num_rows()));
    const double err = query::QError(est, static_cast<double>(lq.cardinality));
    std::string text = lq.query.DebugString(table);
    if (text.size() > 50) text = text.substr(0, 47) + "...";
    std::printf("%-52s %10.0f %10llu %8.2f\n", text.c_str(), est,
                static_cast<unsigned long long>(lq.cardinality), err);
  }
  return 0;
}
