// Quickstart: build a table, train Duet for a few epochs, estimate queries.
//
// This is the smallest end-to-end use of the public API:
//   1. data::Table        - dictionary-encoded relation (here: synthetic)
//   2. core::DuetModel    - the predicate-conditioned autoregressive model
//   3. core::DuetTrainer  - Algorithm 2 (data-driven here; see the
//                           hybrid_finetune example for query feedback)
//   4. estimator.EstimateCardinalityBatch(queries) - Algorithm 3 through
//      the batch-first API: one forward pass for ALL queries (the
//      recommended entry point; results match per-query estimation
//      exactly, see src/query/estimator.h).
#include <cstdio>
#include <vector>

#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/evaluator.h"
#include "query/workload.h"

int main() {
  using namespace duet;

  // A Census-like table: 14 columns, skewed and correlated.
  data::Table table = data::CensusLike(/*rows=*/8000, /*seed=*/42);
  std::printf("table %s: %lld rows, %d columns\n", table.name().c_str(),
              static_cast<long long>(table.num_rows()), table.num_columns());

  // Duet with a 2-block ResMADE (the paper's Census architecture, scaled).
  core::DuetModelOptions options;
  options.hidden_sizes = {64, 64};
  options.residual = true;
  core::DuetModel model(table, options);
  std::printf("model: %lld parameters (%.2f MB)\n",
              static_cast<long long>(model.NumParams()), model.SizeMB());

  core::TrainOptions train;
  train.epochs = 8;
  train.batch_size = 256;
  core::DuetTrainer trainer(model, train);
  trainer.Train([](const core::EpochStats& e) {
    std::printf("epoch %d: L_data=%.4f (%.0f tuples/s)\n", e.epoch + 1, e.data_loss,
                e.tuples_per_second);
  });

  // Estimate a few random range queries and compare with the exact count.
  // All queries go through one batched call — one forward pass instead of
  // one per query — which is how the estimator should be driven in serving
  // settings (and what bench_table3_throughput measures).
  query::WorkloadSpec spec;
  spec.num_queries = 8;
  spec.seed = 7;
  const query::Workload workload = query::WorkloadGenerator(table, spec).Generate();
  std::vector<query::Query> queries;
  queries.reserve(workload.size());
  for (const auto& lq : workload) queries.push_back(lq.query);

  core::DuetEstimator estimator(model);
  const std::vector<double> estimates =
      estimator.EstimateCardinalityBatch(queries, table.num_rows());

  // The first no-grad forward compiled the model into an inference plan
  // (a flat packed-op program — see docs/architecture.md §5). This is the
  // default serving path; the footprint below is what the compiled weights
  // cost on top of the fp32 parameters.
  std::printf("inference plan: %.1f KiB compiled (%.1f KiB packed caches total), "
              "%llu compile(s), %llu cache hit(s)\n",
              static_cast<double>(estimator.PlanBytes()) / 1024.0,
              static_cast<double>(estimator.PackedWeightBytes()) / 1024.0,
              static_cast<unsigned long long>(model.PlanInfo().compiles),
              static_cast<unsigned long long>(estimator.PlanCacheHits()));

  std::printf("\n%-52s %10s %10s %8s\n", "query", "estimate", "actual", "q-error");
  for (size_t i = 0; i < workload.size(); ++i) {
    const auto& lq = workload[i];
    const double err = query::QError(estimates[i], static_cast<double>(lq.cardinality));
    std::string text = lq.query.DebugString(table);
    if (text.size() > 50) text = text.substr(0, 47) + "...";
    std::printf("%-52s %10.0f %10llu %8.2f\n", text.c_str(), estimates[i],
                static_cast<unsigned long long>(lq.cardinality), err);
  }
  return 0;
}
