// High-dimensional tables (the paper's Problems 1 and 2).
//
// On a 100-column table, progressive sampling needs one network pass per
// constrained column and its per-column errors compound into a long tail.
// Duet answers any conjunction with a single pass. This example trains both
// briefly and prints latency plus tail error side by side.
#include <cstdio>

#include "baselines/naru/naru_model.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/workload.h"

int main() {
  using namespace duet;
  data::Table table = data::KddLike(/*rows=*/3000, /*num_columns=*/100, /*seed=*/42);
  std::printf("table: %lld rows x %d columns (Kddcup98-like)\n",
              static_cast<long long>(table.num_rows()), table.num_columns());

  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  mopt.residual = true;
  core::DuetModel duet(table, mopt);
  core::TrainOptions topt;
  topt.epochs = 4;
  topt.batch_size = 128;
  core::DuetTrainer(duet, topt).Train();

  baselines::NaruOptions nopt;
  nopt.hidden_sizes = {64, 64};
  nopt.residual = true;
  nopt.num_samples = 32;
  baselines::NaruModel naru(table, nopt);
  baselines::NaruTrainer(naru, topt).Train();

  query::WorkloadSpec spec;
  spec.num_queries = 60;
  spec.seed = 1234;
  const query::Workload wl = query::WorkloadGenerator(table, spec).Generate();

  // Latency + accuracy, same trained budget for both.
  Timer timer;
  std::vector<double> duet_err;
  for (const auto& lq : wl) {
    const double est = std::max(1.0, duet.EstimateSelectivity(lq.query) *
                                         static_cast<double>(table.num_rows()));
    duet_err.push_back(query::QError(est, static_cast<double>(lq.cardinality)));
  }
  const double duet_ms = timer.Millis() / static_cast<double>(wl.size());

  Rng rng(9);
  timer.Reset();
  std::vector<double> naru_err;
  for (const auto& lq : wl) {
    const double est = std::max(1.0, naru.EstimateSelectivity(lq.query, rng) *
                                         static_cast<double>(table.num_rows()));
    naru_err.push_back(query::QError(est, static_cast<double>(lq.cardinality)));
  }
  const double naru_ms = timer.Millis() / static_cast<double>(wl.size());

  const ErrorSummary duet_sum = ErrorSummary::FromValues(duet_err);
  const ErrorSummary naru_sum = ErrorSummary::FromValues(naru_err);
  std::printf("\n%-6s %12s %10s %10s %12s\n", "model", "latency(ms)", "median", "p99", "max");
  std::printf("%-6s %12.3f %10.2f %10.2f %12.2f\n", "Duet", duet_ms, duet_sum.median,
              duet_sum.p99, duet_sum.max);
  std::printf("%-6s %12.3f %10.2f %10.2f %12.2f\n", "Naru", naru_ms, naru_sum.median,
              naru_sum.p99, naru_sum.max);
  std::printf("\nExpected: Duet is an order of magnitude faster (one pass vs one pass per "
              "constrained column) and has a shorter error tail (no per-column error "
              "accumulation).\n");
  return 0;
}
