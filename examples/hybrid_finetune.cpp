// Hybrid fine-tuning on badly estimated queries (paper Sec. IV-A / IV-D:
// "for queries with large estimation errors during actual use, we can
// collect them and perform targeted fine-tuning").
//
// Because Duet's whole estimation path is differentiable, a deployed model
// can be improved with the Q-error of real (historical) queries as a
// supervised signal — no sampling machinery, no separate student model.
#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/workload.h"

int main() {
  using namespace duet;
  data::Table table = data::DmvLike(/*rows=*/12000, /*seed=*/42);

  // Phase 1: data-driven pre-training (DuetD).
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 32, 64};
  core::DuetModel model(table, mopt);
  core::TrainOptions pre;
  pre.epochs = 4;
  pre.batch_size = 256;
  core::DuetTrainer(model, pre).Train();

  // Phase 2: the "production" workload arrives; collect the worst queries.
  query::WorkloadSpec spec;
  spec.num_queries = 400;
  spec.seed = 42;
  spec.gamma_num_predicates = true;
  const query::Workload history = query::WorkloadGenerator(table, spec).Generate();

  core::DuetEstimator est(model);
  std::vector<std::pair<double, size_t>> ranked;
  for (size_t i = 0; i < history.size(); ++i) {
    const double e = est.EstimateCardinality(history[i].query, table.num_rows());
    ranked.push_back({query::QError(e, static_cast<double>(history[i].cardinality)), i});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  query::Workload bad;
  for (size_t i = 0; i < std::min<size_t>(100, ranked.size()); ++i) {
    bad.push_back(history[ranked[i].second]);
  }
  const auto before = query::EvaluateQErrors(est, bad, table.num_rows());
  std::printf("collected %zu bad queries; before fine-tuning: median %.2f, max %.2f\n",
              bad.size(), Percentile(before, 50), Percentile(before, 100));

  // Phase 3: hybrid fine-tuning on the collected queries.
  core::TrainOptions fine;
  fine.epochs = 3;
  fine.batch_size = 256;
  fine.train_workload = &bad;
  fine.lambda = 0.2f;  // workload is trusted history: weight it a bit higher
  fine.learning_rate = 1e-3f;
  core::DuetTrainer(model, fine).Train();

  const auto after = query::EvaluateQErrors(est, bad, table.num_rows());
  std::printf("after fine-tuning:                 median %.2f, max %.2f\n",
              Percentile(after, 50), Percentile(after, 100));

  // The fix must not wreck generalization: check a fresh random workload.
  query::WorkloadSpec fresh_spec;
  fresh_spec.num_queries = 200;
  fresh_spec.seed = 777;
  const query::Workload fresh = query::WorkloadGenerator(table, fresh_spec).Generate();
  const auto fresh_err = query::EvaluateQErrors(est, fresh, table.num_rows());
  std::printf("fresh random workload after tuning: median %.2f, p99 %.2f\n",
              Percentile(fresh_err, 50), Percentile(fresh_err, 99));
  return 0;
}
