// Optimizer integration: what cardinality estimation is *for*.
//
// The paper's introduction motivates Duet with the query optimizer: plans
// are costed from cardinality estimates, so estimation error turns into bad
// join orders and bad access paths. This example builds a three-table star
// schema with correlated columns, plans the same join with (a) the
// independence assumption, (b) a trained Duet model per table, and (c) the
// exact oracle, and prints the plan-cost ratio each choice pays.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/traditional/independence.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "optimizer/planner.h"
#include "common/rng.h"
#include "query/evaluator.h"

namespace {

/// Exact-cardinality oracle.
class Oracle : public duet::query::CardinalityEstimator {
 public:
  explicit Oracle(const duet::data::Table& t) : table_(t), exact_(t) {}
  double EstimateSelectivity(const duet::query::Query& q) override {
    return static_cast<double>(exact_.Count(q)) /
           static_cast<double>(table_.num_rows());
  }
  std::string name() const override { return "Oracle"; }

 private:
  const duet::data::Table& table_;
  duet::query::ExactEvaluator exact_;
};

duet::data::Table MakeStarTable(const std::string& name, int64_t rows, uint64_t seed,
                                double correlation) {
  duet::data::SyntheticSpec spec;
  spec.name = name;
  spec.rows = rows;
  spec.seed = seed;
  spec.num_latent = 1;
  spec.latent_cardinality = 40;
  // Column 0 is the join key; 1 and 2 are filter columns driven by the same
  // latent factor, so their conjunction defeats the independence assumption
  // on the correlated tables.
  spec.columns = {{/*ndv=*/40, /*zipf_s=*/0.4, /*correlation=*/0.3, /*latent=*/0},
                  {/*ndv=*/12, /*zipf_s=*/0.6, correlation, /*latent=*/0},
                  {/*ndv=*/12, /*zipf_s=*/0.6, correlation, /*latent=*/0}};
  return duet::data::GenerateSynthetic(spec);
}

}  // namespace

int main() {
  using namespace duet;

  data::Table a = MakeStarTable("t_corr", 6000, 1, /*correlation=*/0.95);
  data::Table b = MakeStarTable("t_mixed", 6000, 2, /*correlation=*/0.6);
  data::Table c = MakeStarTable("t_indep", 6000, 3, /*correlation=*/0.0);
  // (a) independence-assumption estimators.
  baselines::IndependenceEstimator ia(a), ib(b), ic(c);

  // (b) a small Duet model per table.
  auto train_duet = [](const data::Table& t) {
    core::DuetModelOptions mopt;
    mopt.hidden_sizes = {64, 64};
    mopt.residual = true;
    auto model = std::make_unique<core::DuetModel>(t, mopt);
    core::TrainOptions topt;
    topt.epochs = 15;
    topt.batch_size = 128;
    core::DuetTrainer(*model, topt).Train();
    return model;
  };
  auto da = train_duet(a), db = train_duet(b), dc = train_duet(c);
  core::DuetEstimator ea(*da), eb(*db), ec(*dc);

  // (c) the oracle.
  Oracle oa(a), ob(b), oc(c);

  // Plan a batch of random filter queries: equality pairs on the correlated
  // filter columns, exactly the conjunctions the independence assumption
  // misjudges. Aggregating over queries keeps the picture stable.
  struct Contender {
    const char* name;
    std::vector<query::CardinalityEstimator*> ests;
    double ratio_sum = 0.0;
    double ratio_max = 0.0;
  };
  std::vector<Contender> contenders = {{"Indep", {&ia, &ib, &ic}, 0.0, 0.0},
                                       {"Duet", {&ea, &eb, &ec}, 0.0, 0.0},
                                       {"Oracle", {&oa, &ob, &oc}, 0.0, 0.0}};
  Rng rng(779);
  const int kQueries = 12;
  for (int qi = 0; qi < kQueries; ++qi) {
    optimizer::StarJoinQuery star;
    star.tables = {&a, &b, &c};
    star.join_col = 0;
    for (const data::Table* t : star.tables) {
      const data::Column& c1 = t->column(1);
      const data::Column& c2 = t->column(2);
      query::Query f;
      f.predicates.push_back(
          {1, query::PredOp::kEq,
           c1.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c1.ndv()))))});
      f.predicates.push_back(
          {2, query::PredOp::kEq,
           c2.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c2.ndv()))))});
      star.filters.push_back(f);
    }
    optimizer::StarJoinPlanner planner(star);
    for (Contender& who : contenders) {
      const double ratio = planner.PlanCostRatio(planner.PlanWithEstimators(who.ests));
      who.ratio_sum += ratio;
      who.ratio_max = std::max(who.ratio_max, ratio);
    }
  }

  std::printf("plan-cost ratio over %d star-join queries (1.0 = optimal plan)\n", kQueries);
  for (const Contender& who : contenders) {
    std::printf("%-10s mean = %6.3f   max = %6.3f\n", who.name, who.ratio_sum / kQueries,
                who.ratio_max);
  }
  std::printf(
      "\nA ratio of 1.0 means the truly optimal join order was chosen. Even the\n"
      "oracle keeps a small gap (the planner's uniform-key fanout formula);\n"
      "everything above that is the price of cardinality estimation error.\n");
  return 0;
}
