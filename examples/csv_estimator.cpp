// Using Duet on your own data: load a CSV, train, estimate, then ship the
// trained model two ways — a training checkpoint and an mmap-able serving
// artifact registered in a model zoo (docs/model_zoo.md).
//
//   csv_estimator [--csv=path/to/table.csv] [--epochs=N]
//                 [--where="col >= 3 AND other = 1 OR col < 1"]
//
// Without --csv the example writes and uses a small demo CSV so it runs
// out of the box. String columns are dictionary-encoded lexicographically;
// numeric columns keep their natural order, so range predicates behave as
// expected in both cases. --where accepts the paper's predicate fragment
// (= < > <= >=, AND/OR with AND binding tighter); OR clauses are estimated
// by inclusion-exclusion (paper Sec. III), with all intersection terms
// going through the batch-first API (EstimateSelectivityBatch) as one
// forward pass — the recommended way to drive any estimator in this repo.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "artifact/artifact.h"
#include "common/flags.h"
#include "core/disjunction.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/csv.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/query.h"
#include "serve/model_zoo.h"

namespace {

constexpr const char* kDemoCsv =
    "region,product,price,quantity\n"
    "north,apple,1.5,10\nnorth,apple,1.5,12\nnorth,pear,2.0,7\n"
    "south,apple,1.4,20\nsouth,melon,4.5,2\nsouth,pear,2.1,6\n"
    "east,apple,1.5,11\neast,melon,4.0,3\neast,pear,2.0,8\n"
    "west,apple,1.6,9\nwest,melon,4.2,4\nwest,pear,1.9,14\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace duet;
  Flags flags(argc, argv);

  data::Table table = [&] {
    const std::string path = flags.GetString("csv", "");
    if (!path.empty()) return data::LoadCsvFile(path, "user_table");
    std::printf("no --csv given; using a built-in demo table\n");
    std::stringstream demo(kDemoCsv);
    return data::LoadCsv(demo, "demo");
  }();
  std::printf("loaded %s: %lld rows, %d columns\n", table.name().c_str(),
              static_cast<long long>(table.num_rows()), table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("  column %-12s ndv=%d\n", table.column(c).name().c_str(),
                table.column(c).ndv());
  }

  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {32, 32};
  core::DuetModel model(table, mopt);
  core::TrainOptions topt;
  topt.epochs = static_cast<int>(flags.GetInt("epochs", 30));
  topt.batch_size = std::min<int64_t>(64, table.num_rows());
  core::DuetTrainer(model, topt).Train();

  // Either the user's --where text, or a default range query over the
  // first column with ndv > 2.
  query::ParsedWhere parsed;
  const std::string where = flags.GetString("where", "");
  if (!where.empty()) {
    std::string error;
    if (!query::ParseWhere(where, table, &parsed, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
  } else {
    int col = 0;
    for (int c = 0; c < table.num_columns(); ++c) {
      if (table.column(c).ndv() > 2) {
        col = c;
        break;
      }
    }
    query::Query q;
    q.predicates.push_back(
        {col, query::PredOp::kLe, table.column(col).Value(table.column(col).ndv() / 2)});
    parsed.clauses.push_back(std::move(q));
  }

  query::ExactEvaluator exact(table);
  core::DuetEstimator estimator(model);
  // EstimateDisjunction builds every inclusion-exclusion term and estimates
  // them through one EstimateSelectivityBatch call (a single forward pass),
  // not a per-term scalar loop.
  const double sel = core::EstimateDisjunction(estimator, parsed.clauses);
  double actual = 0.0;
  {
    // Exact count of the DNF via inclusion-exclusion over the evaluator.
    class ExactAdapter : public query::CardinalityEstimator {
     public:
      explicit ExactAdapter(const data::Table& t) : table_(t), eval_(t) {}
      double EstimateSelectivity(const query::Query& q) override {
        return static_cast<double>(eval_.Count(q)) /
               static_cast<double>(table_.num_rows());
      }
      std::string name() const override { return "exact"; }

     private:
      const data::Table& table_;
      query::ExactEvaluator eval_;
    } exact_adapter(table);
    actual = core::EstimateDisjunction(exact_adapter, parsed.clauses) *
             static_cast<double>(table.num_rows());
  }
  for (size_t i = 0; i < parsed.clauses.size(); ++i) {
    std::printf("\nclause %zu: %s", i + 1, parsed.clauses[i].DebugString(table).c_str());
  }
  std::printf("\nestimated %.1f rows, actual %.0f rows\n",
              sel * static_cast<double>(table.num_rows()), actual);
  // Estimation above ran through the compiled inference plan (built
  // automatically on the first no-grad forward; docs/architecture.md §5).
  std::printf("inference plan: %.1f KiB compiled, %.1f KiB packed caches total\n",
              static_cast<double>(estimator.PlanBytes()) / 1024.0,
              static_cast<double>(estimator.PackedWeightBytes()) / 1024.0);

  // Checkpoint round-trip: the trained model can be reloaded for more
  // training or fine-tuning later.
  {
    std::ofstream out("/tmp/duet_demo.ckpt", std::ios::binary);
    BinaryWriter w(out);
    model.Save(w);
  }
  std::printf("checkpoint written to /tmp/duet_demo.ckpt (%.2f MB of weights)\n",
              model.SizeMB());

  // Serving hand-off: freeze the trained model into an mmap-able snapshot
  // artifact and serve it back through a model zoo by key — the multi-model
  // deployment path (docs/model_zoo.md). CSR packing is bitwise-equal to
  // the dense fp32 path, so the artifact serves the exact bits above.
  const std::string artifact_path = "/tmp/duet_demo.duet";
  {
    const artifact::ArtifactStatus st =
        artifact::WriteArtifact(artifact_path, model, tensor::WeightBackend::kCsrF32);
    if (!st.ok) {
      std::fprintf(stderr, "artifact write failed: %s\n", st.error.c_str());
      return 1;
    }
  }
  serve::ModelZoo zoo;
  zoo.Register(table.name(), artifact_path);
  serve::ZooPin pin;
  const artifact::ArtifactStatus st = zoo.TryAcquire(table.name(), &pin);
  if (!st.ok) {
    std::fprintf(stderr, "zoo load failed: %s\n", st.error.c_str());
    return 1;
  }
  const double zoo_sel = core::EstimateDisjunction(pin->estimator(), parsed.clauses);
  std::printf("artifact written to %s (%.1f KiB mapped), served via zoo key '%s': "
              "%.1f rows (%s the trained model)\n",
              artifact_path.c_str(),
              static_cast<double>(pin->model().mapped_bytes()) / 1024.0,
              pin->key().c_str(), zoo_sel * static_cast<double>(table.num_rows()),
              zoo_sel == sel ? "bitwise-equal to" : "DIVERGED from");
  return zoo_sel == sel ? 0 : 1;
}
