// Model persistence: train, checkpoint to disk, reload into a fresh model,
// and verify the reloaded estimator is bit-identical — the deployment flow
// behind the paper's "fine-tune the model after it is deployed" scenario
// (Sec. IV-D): serve from a checkpoint, collect badly-estimated queries,
// fine-tune, checkpoint again.
#include <cstdio>
#include <cstdlib>

#include "core/checkpoint.h"
#include "core/duet_model.h"
#include "core/finetune.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "query/workload.h"

int main() {
  using namespace duet;

  data::Table table = data::CensusLike(/*rows=*/6000, /*seed=*/42);
  core::DuetModelOptions options;
  options.hidden_sizes = {64, 64};
  options.residual = true;

  // --- train and checkpoint ---
  core::DuetModel model(table, options);
  core::TrainOptions topt;
  topt.epochs = 5;
  topt.batch_size = 128;
  core::DuetTrainer(model, topt).Train();

  const std::string path = "/tmp/duet_example_checkpoint.bin";
  core::SaveModuleFile(path, "duet", model);
  std::printf("saved %lld parameters (fingerprint %016llx) to %s\n",
              static_cast<long long>(model.NumParams()),
              static_cast<unsigned long long>(core::ModuleFingerprint(model)),
              path.c_str());

  // --- reload into a freshly constructed model of the same architecture ---
  core::DuetModel reloaded(table, options);
  core::LoadModuleFile(path, "duet", &reloaded);

  query::WorkloadSpec wspec;
  wspec.num_queries = 200;
  wspec.seed = 1234;
  const query::Workload served = query::WorkloadGenerator(table, wspec).Generate();

  int identical = 0;
  for (const query::LabeledQuery& lq : served) {
    if (model.EstimateSelectivity(lq.query) == reloaded.EstimateSelectivity(lq.query)) {
      ++identical;
    }
  }
  std::printf("reloaded model reproduces %d/%zu estimates exactly\n", identical,
              served.size());

  // --- the deployed loop: collect bad queries, fine-tune, re-checkpoint ---
  core::FineTuneOptions fopt;
  fopt.qerror_threshold = 3.0;
  const core::FineTuneReport report = core::FineTune(reloaded, served, fopt);
  std::printf("fine-tuned on %zu high-error queries: mean QErr %.2f -> %.2f\n",
              report.collected.size(), report.before_mean, report.after_mean);
  core::SaveModuleFile(path, "duet", reloaded);
  std::printf("updated checkpoint written\n");

  std::remove(path.c_str());
  return identical == static_cast<int>(served.size()) ? 0 : 1;
}
