// Runtime SIMD dispatch parity suite (tensor/simd_dispatch.h) plus the
// int4 per-group pack-format units (tensor/packed_weights.h).
//
// The dispatch contract under test:
//  * every tier the CPU supports is deterministic and bitwise-repeatable,
//  * every tier is bitwise-identical to the scalar tier for EVERY backend
//    (the shared kernel source uses plain mul+add, no FMA contraction, no
//    cross-lane reductions — width changes throughput, never values), which
//    subsumes the per-backend error bounds: int8/int4/f16 stay inside their
//    documented bounds vs fp32 on any tier because they are bitwise the
//    scalar-tier results that test_backends already bounds,
//  * CSR stays bitwise-equal to dense within each tier,
//  * ForceIsa/DUET_FORCE_ISA degrade safely: unsupported tiers are refused
//    in-process (and clamped at startup), never crash.
//
// The int4 contract under test:
//  * nibble layout (two packed columns per byte, low nibble first, odd-out
//    tail nibble zero; signed [-7,7] as two's-complement low nibbles),
//  * group-major per-(group, packed-column) scales s[g][j] = max|W|/7,
//  * degree-sorted permutation + prefix-skip parity,
//  * the per-output error bound |y_q - y| <= 0.5 * sum_k |x_k| * s[g(k),j],
//  * end-to-end: int4 median q-error within 1% of fp32.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "nn/made.h"
#include "query/workload.h"
#include "tensor/packed_weights.h"
#include "tensor/simd_dispatch.h"
#include "tensor/tensor.h"

namespace duet {
namespace {

namespace simd = tensor::simd;
using query::Query;
using tensor::Tensor;
using tensor::WeightBackend;

/// Restores the previously active tier on scope exit, so a test that forces
/// a tier cannot leak it into later tests.
class ScopedIsa {
 public:
  explicit ScopedIsa(const std::string& name) : prev_(simd::ActiveIsaName()) {
    ok_ = simd::ForceIsa(name);
  }
  ~ScopedIsa() { simd::ForceIsa(prev_); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
  bool ok() const { return ok_; }

 private:
  std::string prev_;
  bool ok_ = false;
};

/// Tier names this CPU can actually run (probed via ForceIsa; the active
/// selection is restored). Always contains at least the baseline tier.
std::vector<std::string> SupportedTierNames() {
  const std::string prev = simd::ActiveIsaName();
  std::vector<std::string> names;
  for (const char* name : {"scalar", "avx2", "avx512"}) {
    if (simd::ForceIsa(name)) names.emplace_back(name);
  }
  simd::ForceIsa(prev);
  return names;
}

const std::vector<WeightBackend> kAllBackends = {
    WeightBackend::kDenseF32, WeightBackend::kCsrF32, WeightBackend::kInt8,
    WeightBackend::kF16, WeightBackend::kInt4};

Tensor CheckeredMask(int64_t in, int64_t out) {
  Tensor mask = Tensor::Zeros({in, out});
  float* m = mask.data();
  for (int64_t i = 0; i < in * out; ++i) m[i] = ((i / 3 + i % 7) % 2 == 0) ? 1.0f : 0.0f;
  return mask;
}

Tensor RandomInput(int64_t b, int64_t d, uint64_t seed, float zero_prob = 0.3f) {
  Rng rng(seed);
  Tensor x = Tensor::Zeros({b, d});
  float* p = x.data();
  for (int64_t i = 0; i < b * d; ++i) {
    p[i] = rng.UniformFloat() < zero_prob ? 0.0f : (rng.UniformFloat() * 2.0f - 1.0f);
  }
  return x;
}

/// A masked random weight (exact zeros where the mask is 0), the shape the
/// packed kernels' zero-skip and prefix paths key on.
Tensor MaskedWeight(int64_t in, int64_t out, uint64_t seed) {
  Rng rng(seed);
  const Tensor mask = CheckeredMask(in, out);
  Tensor w = Tensor::Zeros({in, out});
  for (int64_t i = 0; i < in * out; ++i) {
    w.data()[i] = mask.data()[i] != 0.0f ? (rng.UniformFloat() * 2.0f - 1.0f) : 0.0f;
  }
  return w;
}

/// 1-D bias vector (PackedMatMulBiasAct requires ndim 1).
Tensor RandomBias(int64_t d, uint64_t seed) {
  Rng rng(seed);
  Tensor b = Tensor::Zeros({d});
  for (int64_t i = 0; i < d; ++i) b.data()[i] = rng.UniformFloat() * 2.0f - 1.0f;
  return b;
}

/// One fused packed forward under the ACTIVE tier.
std::vector<float> PackedForward(const tensor::PackedWeights& w, const Tensor& x,
                                 const Tensor& bias) {
  tensor::NoGradScope no_grad;
  return tensor::PackedMatMulBiasAct(x, w, bias, tensor::Activation::kRelu).value_vector();
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// ----- dispatch selection ---------------------------------------------------

TEST(SimdDispatchTest, ProbeIsCoherent) {
  // Kernels() must have selected a tier the CPU supports, and the name must
  // round-trip through ForceIsa.
  (void)simd::Kernels();
  EXPECT_LE(simd::ActiveIsa(), simd::DetectIsa());
  EXPECT_TRUE(simd::ForceIsa(simd::ActiveIsaName()));
}

TEST(SimdDispatchTest, ForceIsaRefusesUnknownAndUnsupported) {
  const std::string prev = simd::ActiveIsaName();
  EXPECT_FALSE(simd::ForceIsa("sse9"));
  EXPECT_FALSE(simd::ForceIsa(""));
  EXPECT_EQ(simd::ActiveIsaName(), prev) << "a refused ForceIsa must not switch tiers";
  if (simd::DetectIsa() < simd::IsaTier::kAvx512) {
    EXPECT_FALSE(simd::ForceIsa("avx512"));
    EXPECT_EQ(simd::ActiveIsaName(), prev);
  }
}

TEST(SimdDispatchTest, BaselineTierAlwaysAvailable) {
  // "scalar" (and its aarch64 alias "neon") must be forceable on any host —
  // the portable fallback can never be refused.
  const std::string prev = simd::ActiveIsaName();
  EXPECT_TRUE(simd::ForceIsa("scalar"));
  EXPECT_TRUE(simd::ForceIsa("neon"));
  EXPECT_EQ(simd::ActiveIsa(), simd::IsaTier::kScalar);
  EXPECT_TRUE(simd::ForceIsa(prev));
}

// ----- per-tier determinism and cross-tier bitwise parity -------------------

TEST(SimdParityTest, EachTierIsBitwiseRepeatable) {
  const int64_t in = 43, out = 29;
  const Tensor w = MaskedWeight(in, out, 5);
  const Tensor x = RandomInput(3, in, 7);
  const Tensor bias = RandomBias(out, 9);
  for (const std::string& tier : SupportedTierNames()) {
    ScopedIsa isa(tier);
    ASSERT_TRUE(isa.ok());
    for (WeightBackend backend : kAllBackends) {
      const auto packed = tensor::PackWeights(w, backend);
      const std::vector<float> first = PackedForward(*packed, x, bias);
      const std::vector<float> second = PackedForward(*packed, x, bias);
      EXPECT_EQ(first, second) << "tier " << tier << " backend "
                               << tensor::WeightBackendName(backend);
    }
  }
}

TEST(SimdParityTest, EveryTierMatchesScalarBitwiseForEveryBackend) {
  const int64_t in = 61, out = 37;  // odd out: exercises the int4 tail nibble
  const Tensor w = MaskedWeight(in, out, 11);
  const Tensor x = RandomInput(4, in, 13);
  const Tensor bias = RandomBias(out, 17);
  for (WeightBackend backend : kAllBackends) {
    const auto packed = tensor::PackWeights(w, backend);
    std::vector<float> scalar_result;
    {
      ScopedIsa isa("scalar");
      ASSERT_TRUE(isa.ok());
      scalar_result = PackedForward(*packed, x, bias);
    }
    for (const std::string& tier : SupportedTierNames()) {
      ScopedIsa isa(tier);
      ASSERT_TRUE(isa.ok());
      EXPECT_EQ(PackedForward(*packed, x, bias), scalar_result)
          << "tier " << tier << " diverged from scalar for backend "
          << tensor::WeightBackendName(backend);
    }
  }
}

TEST(SimdParityTest, MadeForwardIsBitwiseIdenticalAcrossTiers) {
  nn::MadeOptions opt;
  opt.input_widths = {5, 9, 4, 7};
  opt.output_widths = {6, 11, 3, 8};
  opt.hidden_sizes = {40, 40};
  opt.residual = true;
  Rng rng(23);
  nn::Made made(opt, rng);
  const Tensor x = RandomInput(6, made.input_dim(), 29, /*zero_prob=*/0.5f);
  for (WeightBackend backend : kAllBackends) {
    made.SetInferenceBackend(backend);
    std::vector<float> scalar_result;
    {
      ScopedIsa isa("scalar");
      ASSERT_TRUE(isa.ok());
      tensor::NoGradScope no_grad;
      scalar_result = made.Forward(x).value_vector();
    }
    for (const std::string& tier : SupportedTierNames()) {
      ScopedIsa isa(tier);
      ASSERT_TRUE(isa.ok());
      tensor::NoGradScope no_grad;
      EXPECT_EQ(made.Forward(x).value_vector(), scalar_result)
          << "tier " << tier << " backend " << tensor::WeightBackendName(backend);
    }
  }
}

TEST(SimdParityTest, CsrBitwiseEqualsDenseWithinEachTier) {
  const int64_t in = 37, out = 29;
  const Tensor w = MaskedWeight(in, out, 31);
  const Tensor x = RandomInput(1, in, 33);
  const auto dense = tensor::PackWeights(w, WeightBackend::kDenseF32);
  const auto csr = tensor::PackWeights(w, WeightBackend::kCsrF32);
  for (const std::string& tier : SupportedTierNames()) {
    ScopedIsa isa(tier);
    ASSERT_TRUE(isa.ok());
    std::vector<float> yd(static_cast<size_t>(out), 0.0f);
    std::vector<float> yc(static_cast<size_t>(out), 0.0f);
    tensor::PackedGemv(*dense, x.data(), yd.data());
    tensor::PackedGemv(*csr, x.data(), yc.data());
    EXPECT_EQ(yd, yc) << "tier " << tier;
  }
}

// ----- int4 pack format -----------------------------------------------------

TEST(Int4PackFormatTest, NibbleLayoutScalesAndOddOutTail) {
  // in=2 (one group), out=3 (odd: the final high nibble must stay zero).
  // Column maxima: |{-7, 14}| -> 14, |{3.5, 1}| -> 3.5, |{0, 0}| -> 0.
  const Tensor w = Tensor::FromVector({2, 3}, {-7.0f, 3.5f, 0.0f,  //
                                               14.0f, 1.0f, 0.0f});
  const auto packed = tensor::PackWeights(w, WeightBackend::kInt4);
  ASSERT_EQ(packed->backend, WeightBackend::kInt4);
  ASSERT_EQ(packed->group_scales.size(), 3u);  // ceil(2/32) groups x 3 cols
  EXPECT_FLOAT_EQ(packed->group_scales[0], 2.0f);         // 14 / 7
  EXPECT_FLOAT_EQ(packed->group_scales[1], 0.5f);         // 3.5 / 7
  EXPECT_FLOAT_EQ(packed->group_scales[2], 0.0f);         // all-zero channel
  // Row stride (3+1)/2 = 2 bytes. Quantized values: row 0 = {-7/2, 3.5/.5, 0}
  // = {round(-3.5), 7, 0} = {-4, 7, 0}; row 1 = {7, 2, 0}.
  // nearbyint(-3.5) rounds-to-even to -4. Two's-complement low nibbles:
  // -4 -> 0xC. Byte 0 of row 0 = low(-4) | high(7) = 0x7C; byte 1 = 0x00.
  ASSERT_EQ(packed->nibbles.size(), 4u);
  EXPECT_EQ(packed->nibbles[0], 0x7Cu);
  EXPECT_EQ(packed->nibbles[1], 0x00u) << "odd-out tail nibble must be zero";
  EXPECT_EQ(packed->nibbles[2], 0x27u);  // low(7)=0x7, high(2)=0x2
  EXPECT_EQ(packed->nibbles[3], 0x00u);
  // Decode contract: (x ^ 8) - 8 recovers the signed value.
  EXPECT_EQ(((packed->nibbles[0] & 0xF) ^ 8) - 8, -4);
  EXPECT_EQ((((packed->nibbles[0] >> 4) & 0xF) ^ 8) - 8, 7);
  EXPECT_EQ(packed->bytes(), 4u * sizeof(uint8_t) + 3u * sizeof(float));
}

TEST(Int4PackFormatTest, GroupScalesAreGroupMajorPerColumn) {
  // Two k-groups (rows 0..31 and 32..39): distinct magnitudes per group so
  // the per-group maxima are distinguishable from a per-column max.
  const int64_t in = tensor::kInt4GroupSize + 8, out = 2;
  Tensor w = Tensor::Zeros({in, out});
  for (int64_t k = 0; k < in; ++k) {
    const bool second = k >= tensor::kInt4GroupSize;
    w.data()[k * out + 0] = second ? 0.7f : 7.0f;
    w.data()[k * out + 1] = second ? 14.0f : 1.4f;
  }
  const auto packed = tensor::PackWeights(w, WeightBackend::kInt4);
  ASSERT_EQ(packed->group_scales.size(), 4u);  // 2 groups x 2 cols, group-major
  EXPECT_FLOAT_EQ(packed->group_scales[0], 1.0f);   // g0 col0: 7/7
  EXPECT_FLOAT_EQ(packed->group_scales[1], 0.2f);   // g0 col1: 1.4/7
  EXPECT_FLOAT_EQ(packed->group_scales[2], 0.1f);   // g1 col0: 0.7/7
  EXPECT_FLOAT_EQ(packed->group_scales[3], 2.0f);   // g1 col1: 14/7
}

TEST(Int4PackFormatTest, FootprintIsWellUnderInt8) {
  const int64_t in = 128, out = 96;
  const Tensor w = MaskedWeight(in, out, 41);
  const auto int8 = tensor::PackWeights(w, WeightBackend::kInt8);
  const auto int4 = tensor::PackWeights(w, WeightBackend::kInt4);
  // Payload is exactly half; group scales add out * 4 bytes per 32 input
  // rows, so the total lands at ~0.625x int8 for deep groups.
  EXPECT_EQ(int4->nibbles.size(), static_cast<size_t>(in) * ((out + 1) / 2));
  EXPECT_LT(int4->bytes(), static_cast<uint64_t>(0.7 * static_cast<double>(int8->bytes())));
}

TEST(Int4PackFormatTest, PermutedPackMatchesIdentityBitwise) {
  // The degree-sorted permutation reorders columns before quantization; the
  // per-(group, packed-column) scale moves with its column, so packed
  // position p of the permuted GEMV must equal original column perm[p] of
  // the identity GEMV — bitwise, on every tier.
  const int64_t in = 48, out = 24;
  const Tensor w = MaskedWeight(in, out, 43);
  const std::vector<int32_t> perm = tensor::DegreeSortPermutation(w);
  ASSERT_FALSE(perm.empty()) << "mask degenerate: degree sort collapsed to identity";
  const auto identity = tensor::PackWeights(w, WeightBackend::kInt4);
  const auto permuted = tensor::PackWeights(w, WeightBackend::kInt4, &perm);
  ASSERT_TRUE(permuted->permuted());
  const Tensor x = RandomInput(1, in, 47);
  for (const std::string& tier : SupportedTierNames()) {
    ScopedIsa isa(tier);
    ASSERT_TRUE(isa.ok());
    std::vector<float> y_id(static_cast<size_t>(out), 0.0f);
    std::vector<float> y_perm(static_cast<size_t>(out), 0.0f);
    tensor::PackedGemv(*identity, x.data(), y_id.data());
    tensor::PackedGemv(*permuted, x.data(), y_perm.data());
    for (int64_t p = 0; p < out; ++p) {
      EXPECT_EQ(y_perm[static_cast<size_t>(p)], y_id[static_cast<size_t>(perm[p])])
          << "tier " << tier << " packed position " << p;
    }
  }
}

TEST(Int4PackFormatTest, GemvStaysInsidePerGroupErrorBound) {
  const int64_t in = 80, out = 33;
  const Tensor w = MaskedWeight(in, out, 53);
  const Tensor x = RandomInput(1, in, 59, /*zero_prob=*/0.0f);
  const auto dense = tensor::PackWeights(w, WeightBackend::kDenseF32);
  const auto int4 = tensor::PackWeights(w, WeightBackend::kInt4);
  std::vector<float> y_ref(static_cast<size_t>(out), 0.0f);
  std::vector<float> y_q(static_cast<size_t>(out), 0.0f);
  tensor::PackedGemv(*dense, x.data(), y_ref.data());
  tensor::PackedGemv(*int4, x.data(), y_q.data());
  // |y_q[j] - y[j]| <= 0.5 * sum_k |x_k| * s[g(k), j]  (+ tiny fp slack):
  // each weight is off by at most half a quantization step of its group.
  for (int64_t j = 0; j < out; ++j) {
    double bound = 0.0;
    for (int64_t k = 0; k < in; ++k) {
      const float gs =
          int4->group_scales[static_cast<size_t>((k / tensor::kInt4GroupSize) * out + j)];
      bound += 0.5 * std::fabs(static_cast<double>(x.data()[k])) * gs;
    }
    EXPECT_NEAR(y_q[static_cast<size_t>(j)], y_ref[static_cast<size_t>(j)],
                bound * 1.001 + 1e-5)
        << "output " << j;
  }
}

// ----- end-to-end accuracy guard --------------------------------------------

TEST(Int4AccuracyTest, MedianQErrorWithinOnePercentOfFp32) {
  const data::Table t = data::CensusLike(600, 11);
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 128;
  core::DuetTrainer(model, topt).Train();

  query::WorkloadSpec spec;
  spec.num_queries = 80;
  spec.seed = 97;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  std::vector<Query> queries;
  for (const auto& lq : wl) queries.push_back(lq.query);
  const int64_t rows = t.num_rows();

  auto median_under = [&](WeightBackend b) {
    model.SetInferenceBackend(b);
    const std::vector<double> sels = model.EstimateSelectivityBatch(queries);
    std::vector<double> errs;
    errs.reserve(sels.size());
    for (size_t i = 0; i < sels.size(); ++i) {
      const double est = std::max(1.0, sels[i] * static_cast<double>(rows));
      errs.push_back(query::QError(est, static_cast<double>(wl[i].cardinality)));
    }
    return Median(errs);
  };
  const double median_fp32 = median_under(WeightBackend::kDenseF32);
  const double median_int4 = median_under(WeightBackend::kInt4);
  EXPECT_LE(std::fabs(median_int4 - median_fp32), 0.01 * median_fp32)
      << "int4 median " << median_int4 << " vs fp32 " << median_fp32;
}

}  // namespace
}  // namespace duet
