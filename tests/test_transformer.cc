// Tests for the attention op vocabulary, LR schedules / gradient clipping,
// and the BlockTransformer backbone — including the autoregressive property
// the Duet estimator relies on (output block i invariant to perturbations of
// input blocks >= i) and a small end-to-end Duet training run on the
// Transformer backbone.
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/transformer.h"
#include "query/evaluator.h"
#include "query/workload.h"
#include "tensor/attention_ops.h"
#include "tensor/ops.h"
#include "tensor/schedule.h"

namespace duet {
namespace {

using duet::testing::ExpectGradMatchesNumeric;
using tensor::Tensor;

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed, bool requires_grad) {
  Rng rng(seed);
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  std::vector<float> data(static_cast<size_t>(n));
  for (float& v : data) v = static_cast<float>(rng.Gaussian());
  return Tensor::FromVector(std::move(shape), std::move(data), requires_grad);
}

// ---------------------------------------------------------------------------
// Attention op forward semantics.
// ---------------------------------------------------------------------------

TEST(LayerNormTest, NormalizesRows) {
  Tensor x = RandomTensor({3, 8}, 7, false);
  Tensor gamma = Tensor::Full({8}, 1.0f);
  Tensor beta = Tensor::Full({8}, 0.0f);
  Tensor y = tensor::LayerNorm(x, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (int64_t c = 0; c < 8; ++c) mean += y.data()[r * 8 + c];
    mean /= 8.0;
    for (int64_t c = 0; c < 8; ++c) {
      const double d = y.data()[r * 8 + c] - mean;
      var += d * d;
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GammaBetaApplied) {
  Tensor x = RandomTensor({2, 4}, 8, false);
  Tensor gamma = Tensor::Full({4}, 2.0f);
  Tensor beta = Tensor::Full({4}, -1.0f);
  Tensor base = tensor::LayerNorm(x, Tensor::Full({4}, 1.0f), Tensor::Full({4}, 0.0f));
  Tensor scaled = tensor::LayerNorm(x, gamma, beta);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(scaled.data()[i], 2.0f * base.data()[i] - 1.0f, 1e-5);
  }
}

TEST(GeluTest, KnownValues) {
  Tensor x = Tensor::FromVector({1, 3}, {-1.0f, 0.0f, 1.0f});
  Tensor y = tensor::Gelu(x);
  EXPECT_NEAR(y.data()[0], -0.1588f, 1e-3);  // gelu(-1)
  EXPECT_FLOAT_EQ(y.data()[1], 0.0f);
  EXPECT_NEAR(y.data()[2], 0.8412f, 1e-3);  // gelu(1)
}

TEST(SplitMergeHeadsTest, RoundTripIsIdentity) {
  const int64_t b = 2, n = 3, h = 2, d = 8;
  Tensor x = RandomTensor({b * n, d}, 9, false);
  Tensor split = tensor::SplitHeads(x, b, n, h);
  EXPECT_EQ(split.dim(0), b * h * n);
  EXPECT_EQ(split.dim(1), d / h);
  Tensor merged = tensor::MergeHeads(split, b, n, h);
  ASSERT_EQ(merged.numel(), x.numel());
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(merged.data()[i], x.data()[i]) << i;
  }
}

TEST(SplitHeadsTest, LayoutMatchesDefinition) {
  const int64_t b = 2, n = 2, h = 2, d = 4, dh = 2;
  // x[row=b*n+t, col] = 100*b + 10*t + col.
  std::vector<float> data;
  for (int64_t bb = 0; bb < b; ++bb)
    for (int64_t t = 0; t < n; ++t)
      for (int64_t c = 0; c < d; ++c)
        data.push_back(static_cast<float>(100 * bb + 10 * t + c));
  Tensor x = Tensor::FromVector({b * n, d}, data);
  Tensor s = tensor::SplitHeads(x, b, n, h);
  // Row of (batch bb, head hh, token t) must hold x[bb*n+t, hh*dh..].
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t hh = 0; hh < h; ++hh) {
      for (int64_t t = 0; t < n; ++t) {
        for (int64_t c = 0; c < dh; ++c) {
          const float expect = static_cast<float>(100 * bb + 10 * t + hh * dh + c);
          EXPECT_FLOAT_EQ(s.data()[((bb * h + hh) * n + t) * dh + c], expect);
        }
      }
    }
  }
}

TEST(BatchedScoresTest, MatchesManualDot) {
  const int64_t b = 2, n = 2, d = 3;
  Tensor q = RandomTensor({b * n, d}, 10, false);
  Tensor k = RandomTensor({b * n, d}, 11, false);
  Tensor s = tensor::BatchedScores(q, k, b, n, 0.5f);
  for (int64_t bb = 0; bb < b; ++bb) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t c = 0; c < d; ++c) {
          acc += q.data()[(bb * n + i) * d + c] * k.data()[(bb * n + j) * d + c];
        }
        EXPECT_NEAR(s.data()[(bb * n + i) * n + j], 0.5f * acc, 1e-5);
      }
    }
  }
}

TEST(CausalSoftmaxRowsTest, RowsSumToOneWithinPrefix) {
  const int64_t n = 4;
  Tensor s = RandomTensor({2 * n, n}, 12, false);
  Tensor y = tensor::CausalSoftmaxRows(s, n);
  for (int64_t r = 0; r < 2 * n; ++r) {
    const int64_t t = r % n;
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const float v = y.data()[r * n + j];
      if (j <= t) {
        EXPECT_GT(v, 0.0f);
        sum += v;
      } else {
        EXPECT_FLOAT_EQ(v, 0.0f) << "future position leaked at row " << r;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(BatchedAttendTest, IdentityAttentionCopiesValues) {
  const int64_t b = 1, n = 3, d = 2;
  // attn = identity within the batch block.
  std::vector<float> attn(static_cast<size_t>(n * n), 0.0f);
  for (int64_t i = 0; i < n; ++i) attn[static_cast<size_t>(i * n + i)] = 1.0f;
  Tensor a = Tensor::FromVector({b * n, n}, attn);
  Tensor v = RandomTensor({b * n, d}, 13, false);
  Tensor out = tensor::BatchedAttend(a, v, b, n);
  for (int64_t i = 0; i < v.numel(); ++i) EXPECT_FLOAT_EQ(out.data()[i], v.data()[i]);
}

TEST(AddRowBroadcastTest, AddsTableModuloRows) {
  const int64_t n = 2, d = 3;
  Tensor x = Tensor::Full({2 * n, d}, 1.0f);
  Tensor table = Tensor::FromVector({n, d}, {0.f, 1.f, 2.f, 10.f, 11.f, 12.f});
  Tensor y = tensor::AddRowBroadcast(x, table);
  for (int64_t r = 0; r < 2 * n; ++r) {
    for (int64_t c = 0; c < d; ++c) {
      EXPECT_FLOAT_EQ(y.data()[r * d + c], 1.0f + table.data()[(r % n) * d + c]);
    }
  }
}

// ---------------------------------------------------------------------------
// Gradient checks (central differences) for every new op.
// ---------------------------------------------------------------------------

TEST(AttentionGradTest, LayerNormInput) {
  Tensor x = RandomTensor({2, 5}, 20, true);
  Tensor gamma = RandomTensor({5}, 21, false);
  Tensor beta = RandomTensor({5}, 22, false);
  ExpectGradMatchesNumeric(x, [&] {
    return tensor::MeanAll(tensor::Mul(tensor::LayerNorm(x, gamma, beta),
                                       tensor::LayerNorm(x, gamma, beta)));
  });
}

TEST(AttentionGradTest, LayerNormGammaBeta) {
  Tensor x = RandomTensor({3, 4}, 23, false);
  Tensor gamma = RandomTensor({4}, 24, true);
  Tensor beta = RandomTensor({4}, 25, true);
  ExpectGradMatchesNumeric(gamma, [&] {
    return tensor::MeanAll(tensor::Mul(tensor::LayerNorm(x, gamma, beta),
                                       tensor::LayerNorm(x, gamma, beta)));
  });
  ExpectGradMatchesNumeric(beta, [&] {
    return tensor::MeanAll(tensor::Mul(tensor::LayerNorm(x, gamma, beta),
                                       tensor::LayerNorm(x, gamma, beta)));
  });
}

TEST(AttentionGradTest, Gelu) {
  Tensor x = RandomTensor({2, 6}, 26, true);
  ExpectGradMatchesNumeric(
      x, [&] { return tensor::MeanAll(tensor::Mul(tensor::Gelu(x), tensor::Gelu(x))); });
}

TEST(AttentionGradTest, SplitAndMergeHeads) {
  const int64_t b = 2, n = 2, h = 2;
  Tensor x = RandomTensor({b * n, 4}, 27, true);
  ExpectGradMatchesNumeric(x, [&] {
    Tensor s = tensor::SplitHeads(x, b, n, h);
    Tensor m = tensor::MergeHeads(s, b, n, h);
    return tensor::MeanAll(tensor::Mul(m, s.numel() == m.numel() ? m : s));
  });
}

TEST(AttentionGradTest, BatchedScoresBothSides) {
  const int64_t b = 1, n = 3, d = 2;
  Tensor q = RandomTensor({b * n, d}, 28, true);
  Tensor k = RandomTensor({b * n, d}, 29, true);
  auto loss = [&] {
    Tensor s = tensor::BatchedScores(q, k, b, n, 0.7f);
    return tensor::MeanAll(tensor::Mul(s, s));
  };
  ExpectGradMatchesNumeric(q, loss);
  ExpectGradMatchesNumeric(k, loss);
}

TEST(AttentionGradTest, CausalSoftmax) {
  const int64_t n = 3;
  Tensor s = RandomTensor({n, n}, 30, true);
  // Weighted sum so the gradient is not identically zero by symmetry.
  Tensor w = RandomTensor({n, n}, 31, false);
  ExpectGradMatchesNumeric(s, [&] {
    return tensor::MeanAll(tensor::Mul(tensor::CausalSoftmaxRows(s, n), w));
  });
}

TEST(AttentionGradTest, BatchedAttendBothSides) {
  const int64_t b = 1, n = 3, d = 2;
  Tensor a = RandomTensor({b * n, n}, 32, true);
  Tensor v = RandomTensor({b * n, d}, 33, true);
  auto loss = [&] {
    Tensor o = tensor::BatchedAttend(a, v, b, n);
    return tensor::MeanAll(tensor::Mul(o, o));
  };
  ExpectGradMatchesNumeric(a, loss);
  ExpectGradMatchesNumeric(v, loss);
}

TEST(AttentionGradTest, AddRowBroadcastBothSides) {
  const int64_t n = 2, d = 3;
  Tensor x = RandomTensor({2 * n, d}, 34, true);
  Tensor t = RandomTensor({n, d}, 35, true);
  auto loss = [&] {
    Tensor o = tensor::AddRowBroadcast(x, t);
    return tensor::MeanAll(tensor::Mul(o, o));
  };
  ExpectGradMatchesNumeric(x, loss);
  ExpectGradMatchesNumeric(t, loss);
}

// ---------------------------------------------------------------------------
// LR schedules and gradient clipping.
// ---------------------------------------------------------------------------

TEST(ScheduleTest, StepDecayHalvesEveryStepSize) {
  tensor::StepDecayLr s(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(s.LrAt(0), 1.0f);
  EXPECT_FLOAT_EQ(s.LrAt(9), 1.0f);
  EXPECT_FLOAT_EQ(s.LrAt(10), 0.5f);
  EXPECT_FLOAT_EQ(s.LrAt(25), 0.25f);
}

TEST(ScheduleTest, WarmupCosineEndpoints) {
  tensor::WarmupCosineLr s(1.0f, 10, 110, 0.1f);
  EXPECT_NEAR(s.LrAt(0), 0.1f, 1e-5);       // first warmup step: base/warmup
  EXPECT_NEAR(s.LrAt(9), 1.0f, 1e-5);       // warmup complete
  EXPECT_NEAR(s.LrAt(10), 1.0f, 1e-4);      // cosine start
  EXPECT_NEAR(s.LrAt(60), 0.55f, 1e-3);     // halfway: (base+min)/2
  EXPECT_NEAR(s.LrAt(110), 0.1f, 1e-5);     // decayed to min
  EXPECT_NEAR(s.LrAt(1000), 0.1f, 1e-5);    // clamped beyond total
}

TEST(ScheduleTest, CosineMonotoneAfterWarmup) {
  tensor::WarmupCosineLr s(1.0f, 5, 100);
  float prev = s.LrAt(5);
  for (int64_t t = 6; t < 100; ++t) {
    const float cur = s.LrAt(t);
    EXPECT_LE(cur, prev + 1e-6f);
    prev = cur;
  }
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Tensor a = Tensor::Full({4}, 0.0f, true);
  Tensor b = Tensor::Full({2}, 0.0f, true);
  for (int i = 0; i < 4; ++i) a.grad_data()[i] = 3.0f;
  for (int i = 0; i < 2; ++i) b.grad_data()[i] = 4.0f;
  // norm = sqrt(4*9 + 2*16) = sqrt(68)
  const double norm = tensor::ClipGradNorm({a, b}, 1.0);
  EXPECT_NEAR(norm, std::sqrt(68.0), 1e-6);
  double clipped_sq = 0.0;
  for (int i = 0; i < 4; ++i) clipped_sq += a.grad_data()[i] * a.grad_data()[i];
  for (int i = 0; i < 2; ++i) clipped_sq += b.grad_data()[i] * b.grad_data()[i];
  EXPECT_NEAR(std::sqrt(clipped_sq), 1.0, 1e-5);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor a = Tensor::Full({3}, 0.0f, true);
  for (int i = 0; i < 3; ++i) a.grad_data()[i] = 0.1f;
  tensor::ClipGradNorm({a}, 10.0);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a.grad_data()[i], 0.1f);
}

// ---------------------------------------------------------------------------
// BlockTransformer backbone.
// ---------------------------------------------------------------------------

nn::TransformerOptions SmallTransformer(std::vector<int64_t> in_w,
                                        std::vector<int64_t> out_w) {
  nn::TransformerOptions o;
  o.input_widths = std::move(in_w);
  o.output_widths = std::move(out_w);
  o.config.d_model = 16;
  o.config.num_heads = 2;
  o.config.num_layers = 2;
  return o;
}

TEST(BlockTransformerTest, ForwardShape) {
  Rng rng(40);
  nn::BlockTransformer t(SmallTransformer({3, 4, 2}, {5, 6, 7}), rng);
  EXPECT_EQ(t.input_dim(), 9);
  EXPECT_EQ(t.output_dim(), 18);
  EXPECT_EQ(t.num_columns(), 3);
  Tensor x = RandomTensor({4, 9}, 41, false);
  Tensor y = t.Forward(x);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 18);
}

TEST(BlockTransformerTest, AutoregressiveProperty) {
  // Output block i must be invariant to perturbations of input blocks >= i.
  Rng rng(42);
  const std::vector<int64_t> in_w = {3, 2, 4, 2};
  const std::vector<int64_t> out_w = {4, 3, 5, 2};
  nn::BlockTransformer t(SmallTransformer(in_w, out_w), rng);
  Tensor x = RandomTensor({2, t.input_dim()}, 43, false);
  Tensor y0 = t.Forward(x).Clone();

  int64_t in_off = 0;
  for (size_t j = 0; j < in_w.size(); ++j) {
    Tensor xp = x.Clone();
    for (int64_t c = 0; c < in_w[j]; ++c) {
      xp.data()[0 * t.input_dim() + in_off + c] += 5.0f;  // perturb batch row 0
      xp.data()[1 * t.input_dim() + in_off + c] -= 3.0f;  // and row 1
    }
    Tensor y1 = t.Forward(xp);
    int64_t out_off = 0;
    for (size_t i = 0; i < out_w.size(); ++i) {
      bool changed = false;
      for (int64_t r = 0; r < 2; ++r) {
        for (int64_t c = 0; c < out_w[i]; ++c) {
          if (std::abs(y1.data()[r * t.output_dim() + out_off + c] -
                       y0.data()[r * t.output_dim() + out_off + c]) > 1e-6f) {
            changed = true;
          }
        }
      }
      if (i <= j) {
        EXPECT_FALSE(changed) << "output block " << i << " saw input block " << j;
      }
      out_off += out_w[i];
    }
    in_off += in_w[j];
  }
}

TEST(BlockTransformerTest, GradientReachesAllParameters) {
  Rng rng(44);
  nn::BlockTransformer t(SmallTransformer({2, 3}, {3, 4}), rng);
  Tensor x = RandomTensor({3, 5}, 45, true);
  Tensor y = t.Forward(x);
  Tensor loss = tensor::MeanAll(tensor::Mul(y, y));
  loss.Backward();
  int params_with_grad = 0;
  for (const Tensor& p : t.parameters()) {
    bool any = false;
    if (!p.grad_vector().empty()) {
      for (float g : p.grad_vector()) any |= g != 0.0f;
    }
    params_with_grad += any ? 1 : 0;
  }
  // Input projections for the *last* block are absent by construction, and
  // the BOS/pos-path parameters all receive gradient; expect the vast
  // majority of parameters to be touched.
  EXPECT_GT(params_with_grad, static_cast<int>(t.parameters().size() * 3 / 4));
}

TEST(BlockTransformerTest, DeterministicAcrossConstructions) {
  Rng rng1(46), rng2(46);
  nn::BlockTransformer a(SmallTransformer({2, 2}, {3, 3}), rng1);
  nn::BlockTransformer b(SmallTransformer({2, 2}, {3, 3}), rng2);
  Tensor x = RandomTensor({2, 4}, 47, false);
  Tensor ya = a.Forward(x), yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(DuetTransformerTest, TrainsOnSmallTable) {
  data::SyntheticSpec spec;
  spec.name = "t";
  spec.rows = 600;
  spec.seed = 11;
  spec.columns = {{/*ndv=*/8, /*zipf_s=*/0.7, /*correlation=*/0.3, /*latent=*/0},
                  {/*ndv=*/6, /*zipf_s=*/0.9, /*correlation=*/0.6, /*latent=*/0},
                  {/*ndv=*/10, /*zipf_s=*/0.5, /*correlation=*/0.4, /*latent=*/1}};
  data::Table table = data::GenerateSynthetic(spec);

  core::DuetModelOptions opt;
  opt.backbone = core::DuetBackbone::kTransformer;
  opt.transformer.d_model = 24;
  opt.transformer.num_heads = 2;
  opt.transformer.num_layers = 1;
  core::DuetModel model(table, opt);

  core::TrainOptions train;
  train.epochs = 8;
  train.batch_size = 128;
  train.lambda = 0.0f;
  core::DuetTrainer trainer(model, train);
  auto stats = trainer.Train();
  ASSERT_FALSE(stats.empty());
  EXPECT_LT(stats.back().data_loss, stats.front().data_loss);

  // Sanity: fully-wildcard query estimates selectivity ~1.
  query::Query q;
  EXPECT_NEAR(model.EstimateSelectivity(q), 1.0, 1e-6);

  // Estimates for real queries land in [0, 1] and are deterministic.
  query::WorkloadSpec wspec;
  wspec.num_queries = 20;
  wspec.seed = 5;
  query::WorkloadGenerator gen(table, wspec);
  for (const query::LabeledQuery& lq : gen.Generate()) {
    const double s1 = model.EstimateSelectivity(lq.query);
    const double s2 = model.EstimateSelectivity(lq.query);
    EXPECT_GE(s1, 0.0);
    EXPECT_LE(s1, 1.0);
    EXPECT_DOUBLE_EQ(s1, s2);
  }
}

}  // namespace
}  // namespace duet
