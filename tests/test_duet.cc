// Tests for the Duet core: encoders, the Algorithm 1 sampler invariants,
// Algorithm 3 estimation semantics (determinism, wildcard telescoping,
// empty ranges), and training behaviour (loss decreases; hybrid runs; the
// estimator beats the independence baseline on a correlated table).
#include <cmath>
#include <sstream>

#include "common/stats.h"

#include "baselines/traditional/independence.h"
#include "core/duet_model.h"
#include "core/encoding.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/estimator.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::core {
namespace {

using query::PredOp;
using query::Query;

data::Table SmallTable(int64_t rows = 1500, uint64_t seed = 5) {
  return data::CensusLike(rows, seed);
}

// ---------- encoding ----------

TEST(EncodingTest, BinaryWidths) {
  EXPECT_EQ(BinaryWidth(2), 1);
  EXPECT_EQ(BinaryWidth(3), 2);
  EXPECT_EQ(BinaryWidth(4), 2);
  EXPECT_EQ(BinaryWidth(5), 3);
  EXPECT_EQ(BinaryWidth(1024), 10);
  EXPECT_EQ(BinaryWidth(1025), 11);
}

TEST(EncodingTest, PolicySelectsOneHotVsBinary) {
  data::Table t = SmallTable();
  EncodingOptions opt;
  opt.one_hot_max_ndv = 16;
  ColumnValueEncoder enc(t, opt);
  for (int c = 0; c < t.num_columns(); ++c) {
    if (t.column(c).ndv() <= 16) {
      EXPECT_EQ(enc.encoding_kind(c), ValueEncoding::kOneHot);
      EXPECT_EQ(enc.value_width(c), t.column(c).ndv());
    } else {
      EXPECT_EQ(enc.encoding_kind(c), ValueEncoding::kBinary);
      EXPECT_EQ(enc.value_width(c), BinaryWidth(t.column(c).ndv()));
    }
  }
}

TEST(EncodingTest, BinaryBitsRoundTrip) {
  data::Table t = SmallTable();
  EncodingOptions opt;
  opt.one_hot_max_ndv = 2;  // force binary nearly everywhere
  ColumnValueEncoder enc(t, opt);
  const int col = t.LargestNdvColumn();
  const int64_t w = enc.value_width(col);
  for (int32_t code : {0, 1, t.column(col).ndv() - 1}) {
    std::vector<float> buf(static_cast<size_t>(w), 0.0f);
    enc.EncodeValue(col, code, buf.data());
    int32_t decoded = 0;
    for (int64_t b = 0; b < w; ++b) {
      if (buf[static_cast<size_t>(b)] > 0.5f) decoded |= 1 << b;
    }
    EXPECT_EQ(decoded, code);
  }
}

TEST(EncodingTest, CodeMatrixRowsMatchEncodeValue) {
  data::Table t = SmallTable();
  EncodingOptions opt;
  ColumnValueEncoder enc(t, opt);
  const int col = 0;
  tensor::Tensor m = enc.CodeMatrix(col);
  ASSERT_EQ(m.dim(0), t.column(col).ndv());
  std::vector<float> buf(static_cast<size_t>(enc.value_width(col)), 0.0f);
  enc.EncodeValue(col, 1, buf.data());
  for (int64_t j = 0; j < enc.value_width(col); ++j) {
    EXPECT_FLOAT_EQ(m.data()[1 * enc.value_width(col) + j], buf[static_cast<size_t>(j)]);
  }
}

TEST(EncodingTest, DuetBlockLayout) {
  data::Table t = SmallTable();
  EncodingOptions opt;
  DuetInputEncoder enc(t, opt);
  int64_t total = 0;
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(enc.block_offset(c), total);
    EXPECT_EQ(enc.block_width(c), enc.values().value_width(c) + query::kNumPredOps);
    total += enc.block_width(c);
  }
  EXPECT_EQ(enc.total_width(), total);
}

TEST(EncodingTest, DuetPredicateSetsOneOpBit) {
  data::Table t = SmallTable();
  DuetInputEncoder enc(t, EncodingOptions{});
  std::vector<float> buf(static_cast<size_t>(enc.block_width(0)), 0.0f);
  enc.EncodePredicate(0, PredOp::kGe, 2, buf.data());
  float op_sum = 0.0f;
  for (int i = 0; i < query::kNumPredOps; ++i) {
    op_sum += buf[static_cast<size_t>(enc.values().value_width(0) + i)];
  }
  EXPECT_FLOAT_EQ(op_sum, 1.0f);
  EXPECT_FLOAT_EQ(buf[static_cast<size_t>(enc.values().value_width(0) +
                                          static_cast<int>(PredOp::kGe))],
                  1.0f);
}

TEST(EncodingTest, NaruPresentFlagDisambiguatesWildcard) {
  data::Table t = SmallTable();
  NaruInputEncoder enc(t, EncodingOptions{});
  std::vector<float> buf(static_cast<size_t>(enc.block_width(0)), 0.0f);
  enc.EncodeValue(0, 0, buf.data());
  // Code 0 in binary is all-zero bits; the present flag distinguishes it
  // from a wildcard (all-zero block).
  EXPECT_FLOAT_EQ(buf[0], 1.0f);
}

TEST(EncodingTest, EmbeddingKindUsesFixedCodebook) {
  data::Table t = SmallTable();
  EncodingOptions opt;
  opt.one_hot_max_ndv = 4;
  opt.large_encoding = ValueEncoding::kEmbedding;
  opt.embedding_dim = 8;
  ColumnValueEncoder enc(t, opt);
  const int col = t.LargestNdvColumn();
  ASSERT_EQ(enc.encoding_kind(col), ValueEncoding::kEmbedding);
  EXPECT_EQ(enc.value_width(col), 8);
  std::vector<float> a(8, 0.0f), b(8, 0.0f);
  enc.EncodeValue(col, 3, a.data());
  enc.EncodeValue(col, 3, b.data());
  EXPECT_EQ(a, b);  // deterministic codebook
}

// ---------- Algorithm 1 sampler ----------

bool AnchorSatisfies(PredOp op, int32_t anchor, int32_t value) {
  switch (op) {
    case PredOp::kEq: return anchor == value;
    case PredOp::kGt: return anchor > value;
    case PredOp::kLt: return anchor < value;
    case PredOp::kGe: return anchor >= value;
    case PredOp::kLe: return anchor <= value;
  }
  return false;
}

class SamplerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplerPropertyTest, EveryPredicateIsSatisfiedByItsAnchor) {
  data::Table t = SmallTable(800, 3);
  SamplerOptions opt;
  opt.expand = 3;
  opt.wildcard_prob = 0.25;
  VirtualTupleSampler sampler(t, opt);
  std::vector<int64_t> anchors;
  Rng rng(GetParam());
  for (int i = 0; i < 64; ++i) {
    anchors.push_back(static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(t.num_rows()))));
  }
  const VirtualBatch vb = sampler.Sample(anchors, GetParam());
  EXPECT_EQ(vb.batch, 64 * 3);
  int predicates = 0;
  for (int64_t r = 0; r < vb.batch; ++r) {
    for (int c = 0; c < vb.num_columns; ++c) {
      const int8_t op = vb.op_at(r, c);
      if (op < 0) {
        EXPECT_EQ(vb.code_at(r, c), -1);  // wildcard slots carry no code
        continue;
      }
      ++predicates;
      const int32_t code = vb.code_at(r, c);
      ASSERT_GE(code, 0);
      ASSERT_LT(code, t.column(c).ndv());
      EXPECT_TRUE(AnchorSatisfies(static_cast<PredOp>(op), vb.label_at(r, c), code))
          << "op " << static_cast<int>(op) << " anchor " << vb.label_at(r, c) << " value code "
          << code;
    }
  }
  EXPECT_GT(predicates, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerPropertyTest, ::testing::Values(1, 2, 3, 4));

TEST(SamplerTest, DeterministicInSeed) {
  data::Table t = SmallTable(300, 2);
  VirtualTupleSampler sampler(t, SamplerOptions{});
  std::vector<int64_t> anchors = {0, 5, 10, 200};
  const VirtualBatch a = sampler.Sample(anchors, 77);
  const VirtualBatch b = sampler.Sample(anchors, 77);
  EXPECT_EQ(a.pred_codes, b.pred_codes);
  EXPECT_EQ(a.pred_ops, b.pred_ops);
  const VirtualBatch c = sampler.Sample(anchors, 78);
  EXPECT_NE(a.pred_codes, c.pred_codes);
}

TEST(SamplerTest, ParallelMatchesSerial) {
  data::Table t = SmallTable(500, 9);
  SamplerOptions par;
  par.parallel = true;
  SamplerOptions ser;
  ser.parallel = false;
  std::vector<int64_t> anchors;
  for (int64_t i = 0; i < 128; ++i) anchors.push_back(i);
  const VirtualBatch a = VirtualTupleSampler(t, par).Sample(anchors, 5);
  const VirtualBatch b = VirtualTupleSampler(t, ser).Sample(anchors, 5);
  EXPECT_EQ(a.pred_codes, b.pred_codes);
  EXPECT_EQ(a.pred_ops, b.pred_ops);
}

TEST(SamplerTest, ExpandReplicatesAnchors) {
  data::Table t = SmallTable(200, 1);
  SamplerOptions opt;
  opt.expand = 4;
  VirtualTupleSampler sampler(t, opt);
  const VirtualBatch vb = sampler.Sample({3, 9}, 1);
  EXPECT_EQ(vb.batch, 8);
  // Replica-major layout: labels repeat every bs rows.
  for (int c = 0; c < vb.num_columns; ++c) {
    EXPECT_EQ(vb.label_at(0, c), vb.label_at(2, c));
    EXPECT_EQ(vb.label_at(1, c), vb.label_at(3, c));
  }
}

TEST(SamplerTest, OpsAreBalancedAcrossSlices) {
  data::Table t = SmallTable(1000, 8);
  SamplerOptions opt;
  opt.expand = 1;
  opt.wildcard_prob = 0.0;
  VirtualTupleSampler sampler(t, opt);
  std::vector<int64_t> anchors;
  for (int64_t i = 0; i < 500; ++i) anchors.push_back(i);
  const VirtualBatch vb = sampler.Sample(anchors, 3);
  // Column with a large domain: all five ops should be nearly feasible
  // everywhere, and the slice trick assigns ~1/5 of the batch to each.
  const int col = t.LargestNdvColumn();
  std::vector<int> counts(query::kNumPredOps, 0);
  for (int64_t r = 0; r < vb.batch; ++r) {
    const int8_t op = vb.op_at(r, col);
    if (op >= 0) counts[static_cast<size_t>(op)]++;
  }
  for (int k = 0; k < query::kNumPredOps; ++k) {
    EXPECT_GT(counts[static_cast<size_t>(k)], 40) << "op " << k << " starved";
  }
}

// ---------- Algorithm 3 estimation ----------

TEST(DuetEstimationTest, UntrainedModelStillNormalizes) {
  data::Table t = SmallTable(400, 2);
  DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  DuetModel model(t, opt);
  Query q;  // no predicates
  EXPECT_NEAR(model.EstimateSelectivity(q), 1.0, 1e-6);
}

TEST(DuetEstimationTest, EmptyRangeGivesZero) {
  data::Table t = SmallTable(400, 2);
  DuetModelOptions opt;
  opt.hidden_sizes = {16};
  DuetModel model(t, opt);
  Query q;
  q.predicates.push_back({0, PredOp::kLt, t.column(0).Value(0)});  // nothing below min
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q), 0.0);
}

TEST(DuetEstimationTest, DeterministicAcrossCalls) {
  data::Table t = SmallTable(400, 2);
  DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  DuetModel model(t, opt);
  Query q;
  q.predicates.push_back({1, PredOp::kGe, t.column(1).Value(1)});
  q.predicates.push_back({3, PredOp::kLe, t.column(3).Value(2)});
  const double a = model.EstimateSelectivity(q);
  const double b = model.EstimateSelectivity(q);
  EXPECT_EQ(a, b);  // bit-identical: Problem 4 (instability) removed
}

TEST(DuetEstimationTest, BatchMatchesSingle) {
  data::Table t = SmallTable(600, 4);
  DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  DuetModel model(t, opt);
  query::WorkloadSpec spec;
  spec.num_queries = 32;
  spec.seed = 6;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(6);
  std::vector<Query> queries;
  for (int i = 0; i < 32; ++i) queries.push_back(gen.GenerateQuery(rng));
  const auto batch = model.EstimateSelectivityBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(batch[i], model.EstimateSelectivity(queries[i]), 1e-9);
  }
}

TEST(DuetEstimationTest, DifferentiablePathMatchesRawPath) {
  data::Table t = SmallTable(500, 7);
  DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  DuetModel model(t, opt);
  query::WorkloadSpec spec;
  spec.num_queries = 16;
  spec.seed = 4;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(4);
  std::vector<Query> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(gen.GenerateQuery(rng));
  tensor::Tensor sel = model.SelectivityBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(sel.data()[static_cast<int64_t>(i)]),
                model.EstimateSelectivity(queries[i]), 5e-4);
  }
}

TEST(DuetEstimationTest, MultiPredicateColumnIsCondensedInDirectMode) {
  // Direct mode condenses a two-sided range into one conditioning predicate;
  // the zero-out mask stays exact, so a range covering the full domain must
  // behave like a wildcard mask-wise (factor from the learned head only).
  data::Table t = SmallTable(300, 2);
  DuetModelOptions opt;
  opt.hidden_sizes = {16};
  DuetModel model(t, opt);
  Query q;
  q.predicates.push_back({0, PredOp::kGe, t.column(0).Value(0)});
  q.predicates.push_back({0, PredOp::kLe, t.column(0).Value(1)});
  const double sel = model.EstimateSelectivity(q);
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0 + 1e-6);
  // Contradictory two-sided range -> empty mask -> exactly 0.
  Query contradiction;
  contradiction.predicates.push_back({0, PredOp::kGe, t.column(0).Value(2)});
  contradiction.predicates.push_back({0, PredOp::kLe, t.column(0).Value(0)});
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(contradiction), 0.0);
}

// ---------- training ----------

TEST(DuetTrainingTest, DataLossDecreases) {
  data::Table t = SmallTable(1200, 11);
  DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  mopt.residual = true;
  DuetModel model(t, mopt);
  TrainOptions topt;
  topt.epochs = 8;
  topt.batch_size = 128;
  topt.expand = 2;
  DuetTrainer trainer(model, topt);
  const auto history = trainer.Train();
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().data_loss, history.front().data_loss * 0.9);
  for (const auto& e : history) EXPECT_TRUE(std::isfinite(e.data_loss));
}

TEST(DuetTrainingTest, TrainedModelBeatsIndependenceOnCorrelatedData) {
  // Strongly correlated two-column table: AVI is systematically wrong,
  // a trained Duet should not be.
  data::SyntheticSpec spec;
  spec.name = "corr";
  spec.rows = 3000;
  spec.num_latent = 1;
  spec.latent_cardinality = 12;
  spec.seed = 10;
  for (int i = 0; i < 3; ++i) {
    data::ColumnSpec cs;
    cs.ndv = 12;
    cs.zipf_s = 0.7;
    cs.correlation = 0.9;
    cs.latent = 0;
    spec.columns.push_back(cs);
  }
  data::Table t = data::GenerateSynthetic(spec);

  DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  DuetModel model(t, mopt);
  TrainOptions topt;
  topt.epochs = 25;
  topt.batch_size = 256;
  topt.learning_rate = 3e-3f;
  DuetTrainer trainer(model, topt);
  trainer.Train();

  // Anchored equality pairs on the two correlated columns: AVI multiplies
  // marginals and misses the correlation factor; Duet must learn the joint.
  query::Workload wl;
  query::ExactEvaluator ev(t);
  Rng rng(1234);
  for (int i = 0; i < 120; ++i) {
    const int64_t row = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(t.num_rows())));
    Query q;
    q.predicates.push_back({0, PredOp::kEq, t.column(0).Value(t.code(row, 0))});
    q.predicates.push_back({1, PredOp::kEq, t.column(1).Value(t.code(row, 1))});
    wl.push_back({q, ev.Count(q)});
  }

  DuetEstimator duet(model);
  baselines::IndependenceEstimator indep(t);
  const auto duet_err = query::EvaluateQErrors(duet, wl, t.num_rows());
  const auto indep_err = query::EvaluateQErrors(indep, wl, t.num_rows());
  const double duet_med = duet::Percentile(duet_err, 50);
  const double indep_med = duet::Percentile(indep_err, 50);
  EXPECT_LT(duet_med, indep_med) << "Duet median " << duet_med << " vs AVI " << indep_med;
  EXPECT_LT(duet_med, 3.0);
}

TEST(DuetTrainingTest, HybridTrainingRunsAndReportsQueryLoss) {
  data::Table t = SmallTable(1000, 12);
  query::WorkloadSpec wspec;
  wspec.num_queries = 200;
  wspec.seed = 42;
  wspec.gamma_num_predicates = true;
  const query::Workload train_wl = query::WorkloadGenerator(t, wspec).Generate();

  DuetModelOptions mopt;
  mopt.hidden_sizes = {32, 32};
  DuetModel model(t, mopt);
  TrainOptions topt;
  topt.epochs = 3;
  topt.batch_size = 128;
  topt.lambda = 0.1f;
  topt.train_workload = &train_wl;
  DuetTrainer trainer(model, topt);
  const auto history = trainer.Train();
  for (const auto& e : history) {
    EXPECT_GT(e.query_loss, 0.0);
    EXPECT_TRUE(std::isfinite(e.query_loss));
    EXPECT_GT(e.raw_qerror, 0.0);
  }
}

TEST(DuetTrainingTest, ThroughputIsReported) {
  data::Table t = SmallTable(600, 13);
  DuetModelOptions mopt;
  mopt.hidden_sizes = {16};
  DuetModel model(t, mopt);
  TrainOptions topt;
  topt.epochs = 1;
  topt.batch_size = 100;
  DuetTrainer trainer(model, topt);
  const auto stats = trainer.TrainEpoch(0);
  EXPECT_GT(stats.tuples_per_second, 0.0);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(DuetModelTest, SaveLoadPreservesEstimates) {
  data::Table t = SmallTable(500, 14);
  DuetModelOptions mopt;
  mopt.hidden_sizes = {32};
  DuetModel a(t, mopt);
  TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 128;
  DuetTrainer(a, topt).Train();

  std::stringstream buf;
  BinaryWriter w(buf);
  a.Save(w);
  DuetModelOptions mopt2 = mopt;
  mopt2.seed = 999;  // different init, then overwritten by Load
  DuetModel b(t, mopt2);
  BinaryReader r(buf);
  b.Load(r);

  Query q;
  q.predicates.push_back({2, PredOp::kLe, t.column(2).Value(t.column(2).ndv() / 2)});
  EXPECT_DOUBLE_EQ(a.EstimateSelectivity(q), b.EstimateSelectivity(q));
}

TEST(DuetModelTest, PhaseTimesAccumulate) {
  data::Table t = SmallTable(300, 15);
  DuetModelOptions mopt;
  mopt.hidden_sizes = {16};
  DuetModel model(t, mopt);
  model.phase_times().Clear();
  Query q;
  q.predicates.push_back({0, PredOp::kGe, t.column(0).Value(0)});
  model.EstimateSelectivity(q);
  EXPECT_GT(model.phase_times().total_ms(), 0.0);
}

}  // namespace
}  // namespace duet::core
