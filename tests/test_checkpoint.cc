// Tests for versioned model checkpoints: round trips for every model class
// that persists, plus failure injection (corrupt files, wrong kind, wrong
// architecture) which must fail loudly rather than load garbage.
#include <cstdio>
#include <fstream>
#include <string>

#include "baselines/mscn/mscn_model.h"
#include "baselines/naru/naru_model.h"
#include "core/checkpoint.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/workload.h"

namespace duet::core {
namespace {

/// Unique temp path per test.
std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/duet_ckpt_" + tag + ".bin";
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { table_ = data::CensusLike(1200, 42); }

  DuetModelOptions SmallOptions() const {
    DuetModelOptions o;
    o.hidden_sizes = {32, 32};
    o.residual = true;
    return o;
  }

  data::Table table_;
};

TEST_F(CheckpointTest, DuetRoundTripReproducesEstimates) {
  DuetModel model(table_, SmallOptions());
  TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 128;
  DuetTrainer(model, topt).Train();

  const std::string path = TempPath("duet_roundtrip");
  SaveModuleFile(path, "duet", model);

  DuetModel reloaded(table_, SmallOptions());
  LoadModuleFile(path, "duet", &reloaded);

  query::WorkloadSpec spec;
  spec.num_queries = 60;
  spec.seed = 5;
  for (const auto& lq : query::WorkloadGenerator(table_, spec).Generate()) {
    EXPECT_DOUBLE_EQ(model.EstimateSelectivity(lq.query),
                     reloaded.EstimateSelectivity(lq.query));
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TransformerBackboneRoundTrip) {
  DuetModelOptions opt = SmallOptions();
  opt.backbone = DuetBackbone::kTransformer;
  opt.transformer.d_model = 16;
  opt.transformer.num_heads = 2;
  opt.transformer.num_layers = 1;
  DuetModel model(table_, opt);

  const std::string path = TempPath("duet_transformer");
  SaveModuleFile(path, "duet", model);
  DuetModel reloaded(table_, opt);
  LoadModuleFile(path, "duet", &reloaded);

  query::Query q;
  q.predicates.push_back({0, query::PredOp::kLe, 3.0});
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q), reloaded.EstimateSelectivity(q));
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, NaruRoundTrip) {
  baselines::NaruOptions nopt;
  nopt.hidden_sizes = {32, 32};
  nopt.residual = true;
  nopt.num_samples = 20;
  baselines::NaruModel model(table_, nopt);

  const std::string path = TempPath("naru");
  SaveModuleFile(path, "naru", model);
  baselines::NaruModel reloaded(table_, nopt);
  LoadModuleFile(path, "naru", &reloaded);
  for (int64_t i = 0; i < model.parameters()[0].numel(); ++i) {
    EXPECT_FLOAT_EQ(model.parameters()[0].data()[i], reloaded.parameters()[0].data()[i]);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MscnRoundTrip) {
  baselines::MscnOptions mopt;
  mopt.bitmap_size = 100;
  baselines::MscnModel model(table_, mopt);

  const std::string path = TempPath("mscn");
  SaveModuleFile(path, "mscn", model);
  baselines::MscnModel reloaded(table_, mopt);
  LoadModuleFile(path, "mscn", &reloaded);
  query::Query q;
  q.predicates.push_back({1, query::PredOp::kGe, 1.0});
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q), reloaded.EstimateSelectivity(q));
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, FingerprintDistinguishesArchitectures) {
  DuetModel a(table_, SmallOptions());
  DuetModelOptions other = SmallOptions();
  other.hidden_sizes = {48, 48};
  DuetModel b(table_, other);
  EXPECT_NE(ModuleFingerprint(a), ModuleFingerprint(b));
  // Same architecture -> same fingerprint (weights don't matter).
  DuetModel c(table_, SmallOptions());
  EXPECT_EQ(ModuleFingerprint(a), ModuleFingerprint(c));
}

using CheckpointDeathTest = CheckpointTest;

TEST_F(CheckpointDeathTest, MissingFileFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  EXPECT_DEATH(LoadModuleFile("/nonexistent/dir/ckpt.bin", "duet", &model),
               "cannot open checkpoint");
}

TEST_F(CheckpointDeathTest, GarbageFileFailsLoudly) {
  const std::string path = TempPath("garbage");
  std::ofstream(path) << "this is not a checkpoint at all";
  DuetModel model(table_, SmallOptions());
  EXPECT_DEATH(LoadModuleFile(path, "duet", &model), "not a duet checkpoint");
  std::remove(path.c_str());
}

TEST_F(CheckpointDeathTest, WrongKindFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("kind");
  SaveModuleFile(path, "duet", model);
  EXPECT_DEATH(LoadModuleFile(path, "naru", &model), "expected 'naru'");
  std::remove(path.c_str());
}

TEST_F(CheckpointDeathTest, ArchitectureMismatchFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("arch");
  SaveModuleFile(path, "duet", model);
  DuetModelOptions other = SmallOptions();
  other.hidden_sizes = {48, 48};
  DuetModel different(table_, other);
  EXPECT_DEATH(LoadModuleFile(path, "duet", &different), "fingerprint mismatch");
  std::remove(path.c_str());
}

TEST_F(CheckpointDeathTest, TruncatedFileFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("truncated");
  SaveModuleFile(path, "duet", model);
  // Truncate to the first 64 bytes (header survives, parameters don't).
  {
    std::ifstream in(path, std::ios::binary);
    std::string head(64, '\0');
    in.read(head.data(), 64);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(head.data(), 64);
  }
  DuetModel reloaded(table_, SmallOptions());
  EXPECT_DEATH(LoadModuleFile(path, "duet", &reloaded), "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace duet::core
