// Tests for versioned model checkpoints: round trips for every model class
// that persists, plus failure injection (corrupt files, wrong kind, wrong
// architecture) which must fail loudly rather than load garbage.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/mscn/mscn_model.h"
#include "baselines/naru/naru_model.h"
#include "core/checkpoint.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/workload.h"

namespace duet::core {
namespace {

/// Unique temp path per test.
std::string TempPath(const std::string& tag) {
  return ::testing::TempDir() + "/duet_ckpt_" + tag + ".bin";
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { table_ = data::CensusLike(1200, 42); }

  DuetModelOptions SmallOptions() const {
    DuetModelOptions o;
    o.hidden_sizes = {32, 32};
    o.residual = true;
    return o;
  }

  data::Table table_;
};

TEST_F(CheckpointTest, DuetRoundTripReproducesEstimates) {
  DuetModel model(table_, SmallOptions());
  TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 128;
  DuetTrainer(model, topt).Train();

  const std::string path = TempPath("duet_roundtrip");
  SaveModuleFile(path, "duet", model);

  DuetModel reloaded(table_, SmallOptions());
  LoadModuleFile(path, "duet", &reloaded);

  query::WorkloadSpec spec;
  spec.num_queries = 60;
  spec.seed = 5;
  for (const auto& lq : query::WorkloadGenerator(table_, spec).Generate()) {
    EXPECT_DOUBLE_EQ(model.EstimateSelectivity(lq.query),
                     reloaded.EstimateSelectivity(lq.query));
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TransformerBackboneRoundTrip) {
  DuetModelOptions opt = SmallOptions();
  opt.backbone = DuetBackbone::kTransformer;
  opt.transformer.d_model = 16;
  opt.transformer.num_heads = 2;
  opt.transformer.num_layers = 1;
  DuetModel model(table_, opt);

  const std::string path = TempPath("duet_transformer");
  SaveModuleFile(path, "duet", model);
  DuetModel reloaded(table_, opt);
  LoadModuleFile(path, "duet", &reloaded);

  query::Query q;
  q.predicates.push_back({0, query::PredOp::kLe, 3.0});
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q), reloaded.EstimateSelectivity(q));
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, NaruRoundTrip) {
  baselines::NaruOptions nopt;
  nopt.hidden_sizes = {32, 32};
  nopt.residual = true;
  nopt.num_samples = 20;
  baselines::NaruModel model(table_, nopt);

  const std::string path = TempPath("naru");
  SaveModuleFile(path, "naru", model);
  baselines::NaruModel reloaded(table_, nopt);
  LoadModuleFile(path, "naru", &reloaded);
  for (int64_t i = 0; i < model.parameters()[0].numel(); ++i) {
    EXPECT_FLOAT_EQ(model.parameters()[0].data()[i], reloaded.parameters()[0].data()[i]);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MscnRoundTrip) {
  baselines::MscnOptions mopt;
  mopt.bitmap_size = 100;
  baselines::MscnModel model(table_, mopt);

  const std::string path = TempPath("mscn");
  SaveModuleFile(path, "mscn", model);
  baselines::MscnModel reloaded(table_, mopt);
  LoadModuleFile(path, "mscn", &reloaded);
  query::Query q;
  q.predicates.push_back({1, query::PredOp::kGe, 1.0});
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q), reloaded.EstimateSelectivity(q));
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, FingerprintDistinguishesArchitectures) {
  DuetModel a(table_, SmallOptions());
  DuetModelOptions other = SmallOptions();
  other.hidden_sizes = {48, 48};
  DuetModel b(table_, other);
  EXPECT_NE(ModuleFingerprint(a), ModuleFingerprint(b));
  // Same architecture -> same fingerprint (weights don't matter).
  DuetModel c(table_, SmallOptions());
  EXPECT_EQ(ModuleFingerprint(a), ModuleFingerprint(c));
}

using CheckpointDeathTest = CheckpointTest;

TEST_F(CheckpointDeathTest, MissingFileFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  EXPECT_DEATH(LoadModuleFile("/nonexistent/dir/ckpt.bin", "duet", &model),
               "cannot open checkpoint");
}

TEST_F(CheckpointDeathTest, GarbageFileFailsLoudly) {
  const std::string path = TempPath("garbage");
  std::ofstream(path) << "this is not a checkpoint at all";
  DuetModel model(table_, SmallOptions());
  EXPECT_DEATH(LoadModuleFile(path, "duet", &model), "not a duet checkpoint");
  std::remove(path.c_str());
}

TEST_F(CheckpointDeathTest, WrongKindFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("kind");
  SaveModuleFile(path, "duet", model);
  EXPECT_DEATH(LoadModuleFile(path, "naru", &model), "expected 'naru'");
  std::remove(path.c_str());
}

TEST_F(CheckpointDeathTest, ArchitectureMismatchFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("arch");
  SaveModuleFile(path, "duet", model);
  DuetModelOptions other = SmallOptions();
  other.hidden_sizes = {48, 48};
  DuetModel different(table_, other);
  EXPECT_DEATH(LoadModuleFile(path, "duet", &different), "fingerprint mismatch");
  std::remove(path.c_str());
}

TEST_F(CheckpointDeathTest, TruncatedFileFailsLoudly) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("truncated");
  SaveModuleFile(path, "duet", model);
  // Truncate to the first 64 bytes (header survives, parameters don't).
  {
    std::ifstream in(path, std::ios::binary);
    std::string head(64, '\0');
    in.read(head.data(), 64);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(head.data(), 64);
  }
  DuetModel reloaded(table_, SmallOptions());
  EXPECT_DEATH(LoadModuleFile(path, "duet", &reloaded), "");
  std::remove(path.c_str());
}

// ---- TryLoadModuleFile: corruption yields a clean error and an untouched
// model (docs/resilience.md §4). The death tests above pin the abort-on-load
// contract of LoadModuleFile; these pin the recoverable API the registry and
// update worker use.

/// Weights before/after comparison helper: flattens every parameter.
std::vector<float> FlattenParameters(core::DuetModel& model) {
  std::vector<float> flat;
  for (const auto& p : model.parameters()) {
    flat.insert(flat.end(), p.data(), p.data() + p.numel());
  }
  return flat;
}

TEST_F(CheckpointTest, TryLoadTruncatedFileReportsErrorAndLeavesModelAlone) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("try_truncated");
  SaveModuleFile(path, "duet", model);
  // Chop off the tail of the payload: checksum can no longer match and the
  // declared payload size exceeds what is on disk.
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto size = static_cast<size_t>(in.tellg());
    in.seekg(0);
    std::string data(size / 2, '\0');
    in.read(data.data(), static_cast<std::streamsize>(data.size()));
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  DuetModel reloaded(table_, SmallOptions());
  const std::vector<float> before = FlattenParameters(reloaded);
  const CheckpointStatus st = TryLoadModuleFile(path, "duet", &reloaded);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("truncated checkpoint payload"), std::string::npos) << st.error;
  EXPECT_EQ(FlattenParameters(reloaded), before);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TryLoadFlippedByteReportsChecksumMismatch) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("try_bitflip");
  SaveModuleFile(path, "duet", model);
  // Flip one byte in the middle of the payload (well past the header).
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(f.tellg());
    ASSERT_GT(size, 128);
    const int64_t at = size / 2;
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(at);
    f.write(&byte, 1);
  }
  DuetModel reloaded(table_, SmallOptions());
  const std::vector<float> before = FlattenParameters(reloaded);
  const CheckpointStatus st = TryLoadModuleFile(path, "duet", &reloaded);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("checksum mismatch"), std::string::npos) << st.error;
  EXPECT_EQ(FlattenParameters(reloaded), before);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TryLoadWrongVersionReportsCleanError) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("try_version");
  SaveModuleFile(path, "duet", model);
  // Bump the version field (bytes 4..7, after the magic) to a future value.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const uint32_t future = 999;
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  DuetModel reloaded(table_, SmallOptions());
  const std::vector<float> before = FlattenParameters(reloaded);
  const CheckpointStatus st = TryLoadModuleFile(path, "duet", &reloaded);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("unsupported checkpoint version"), std::string::npos) << st.error;
  EXPECT_EQ(FlattenParameters(reloaded), before);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, TryLoadMissingFileReportsCleanError) {
  DuetModel model(table_, SmallOptions());
  const CheckpointStatus st =
      TryLoadModuleFile("/nonexistent/dir/ckpt.bin", "duet", &model);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find("cannot open checkpoint"), std::string::npos) << st.error;
}

TEST_F(CheckpointTest, TryLoadIntactFileSucceeds) {
  DuetModel model(table_, SmallOptions());
  const std::string path = TempPath("try_ok");
  SaveModuleFile(path, "duet", model);
  DuetModel reloaded(table_, SmallOptions());
  const CheckpointStatus st = TryLoadModuleFile(path, "duet", &reloaded);
  EXPECT_TRUE(st.ok) << st.error;
  EXPECT_EQ(FlattenParameters(reloaded), FlattenParameters(model));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace duet::core
