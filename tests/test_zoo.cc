// Model-zoo suite (`ctest -L zoo`): lazy loading, cost-aware LRU eviction
// under a budget, pinning, re-publish semantics, and the concurrency
// contract of serve::ModelZoo + the zoo-mode ServingEngine.
//
// The properties pinned here (docs/model_zoo.md):
//  * the memory budget is never exceeded by evictable state — ResidentBytes
//    stays <= max(budget, pinned working set) at every observation point;
//  * pinned models are never evicted, LRU victims are the coldest unpinned
//    residents (ties toward larger mappings);
//  * eviction is transparent: a later acquire reloads from the artifact
//    path and serves bitwise-identical estimates, with zero repacks
//    (tensor::PackWeightsCalls() stays flat across any number of reloads);
//  * teardown leaks nothing: after eviction and pin release,
//    AliveSnapshots() == 0;
//  * N client threads hammering keyed EstimateBatch across many models —
//    with a publisher re-registering keys and an evictor churning under
//    them — observe per-batch results bitwise equal to one of that key's
//    published models, never a crash or a mid-batch mix.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "artifact/artifact.h"
#include "common/rng.h"
#include "core/duet_model.h"
#include "data/generator.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "query/query.h"
#include "query/workload.h"
#include "serve/model_zoo.h"
#include "serve/serving_engine.h"
#include "tensor/packed_weights.h"

namespace duet {
namespace {

using artifact::ArtifactStatus;
using query::Query;

data::Table SmallTable() { return data::CensusLike(300, 13); }

core::DuetModelOptions SmallModelOptions(uint64_t seed) {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {12, 12};
  opt.residual = true;
  opt.seed = seed;
  return opt;
}

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

std::string TempPath(const std::string& name) {
  return "/tmp/duet_zoo_" + std::to_string(::getpid()) + "_" + name + ".duet";
}

/// Writes one artifact for a model seeded with `seed` and returns the
/// reference estimates the zoo must reproduce bitwise after any reload.
std::vector<double> WriteModelArtifact(const data::Table& table, uint64_t seed,
                                       const std::string& path,
                                       const std::vector<Query>& queries) {
  core::DuetModel model(table, SmallModelOptions(seed));
  model.SetInferenceBackend(tensor::WeightBackend::kCsrF32);
  model.SetPlanEnabled(true);
  const std::vector<double> reference = model.EstimateSelectivityBatch(queries);
  const ArtifactStatus st = artifact::WriteArtifact(path, model, tensor::WeightBackend::kCsrF32);
  EXPECT_TRUE(st.ok) << st.error;
  return reference;
}

/// Zoo test bed: `count` distinct tiny artifacts on disk plus their
/// reference estimates, cleaned up on destruction.
struct ZooBed {
  ZooBed(int count, int num_queries, const std::string& tag)
      : table(SmallTable()), queries(MakeQueries(table, num_queries)) {
    for (int i = 0; i < count; ++i) {
      keys.push_back("model-" + std::to_string(i));
      paths.push_back(TempPath(tag + "_" + std::to_string(i)));
      reference.push_back(WriteModelArtifact(table, 100 + static_cast<uint64_t>(i),
                                             paths.back(), queries));
    }
  }
  ~ZooBed() {
    for (const std::string& p : paths) ::unlink(p.c_str());
  }

  void RegisterAll(serve::ModelZoo& zoo) const {
    for (size_t i = 0; i < keys.size(); ++i) zoo.Register(keys[i], paths[i]);
  }

  data::Table table;
  std::vector<Query> queries;
  std::vector<std::string> keys;
  std::vector<std::string> paths;
  std::vector<std::vector<double>> reference;
};

uint64_t ArtifactBytes(const std::string& path) {
  std::shared_ptr<const artifact::ArtifactModel> model;
  const ArtifactStatus st =
      artifact::LoadArtifact(path, artifact::ArtifactLoadOptions{}, &model);
  EXPECT_TRUE(st.ok) << st.error;
  return model->mapped_bytes();
}

// ---- registration and lazy loading ----

TEST(ModelZooTest, RegistrationIsMetadataOnlyAndLoadsAreLazy) {
  ZooBed bed(3, 16, "lazy");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  EXPECT_EQ(zoo.NumRegistered(), 3u);
  EXPECT_TRUE(zoo.Contains("model-1"));
  EXPECT_FALSE(zoo.Contains("nope"));
  EXPECT_EQ(zoo.ResidentModels(), 0u);
  EXPECT_EQ(zoo.ResidentBytes(), 0u);
  EXPECT_EQ(zoo.stats().loads, 0u);

  serve::ZooPin pin = zoo.Acquire("model-1");
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->key(), "model-1");
  EXPECT_EQ(zoo.ResidentModels(), 1u);
  EXPECT_GT(zoo.ResidentBytes(), 0u);
  EXPECT_EQ(zoo.stats().loads, 1u);
  EXPECT_GT(zoo.stats().last_load_micros, 0.0);

  const std::vector<double> got = pin->model().EstimateSelectivityBatch(bed.queries);
  for (size_t q = 0; q < got.size(); ++q) EXPECT_EQ(got[q], bed.reference[1][q]);

  // A second acquire of a resident model is a cache hit, not a reload.
  serve::ZooPin again = zoo.Acquire("model-1");
  EXPECT_EQ(zoo.stats().loads, 1u);
  serve::ZooModelStats ms;
  ASSERT_TRUE(zoo.ModelStats("model-1", &ms));
  EXPECT_TRUE(ms.resident);
  EXPECT_EQ(ms.pins, 2u);
  EXPECT_EQ(ms.loads, 1u);
}

TEST(ModelZooTest, UnknownKeyIsACleanError) {
  serve::ModelZoo zoo;
  serve::ZooPin pin;
  const ArtifactStatus st = zoo.TryAcquire("missing", &pin);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(pin, nullptr);
  EXPECT_EQ(zoo.ResidentModels(), 0u);
}

// ---- LRU eviction under a budget ----

TEST(ModelZooTest, LruEvictionRespectsBudgetAndRecency) {
  ZooBed bed(4, 12, "lru");
  const uint64_t one = ArtifactBytes(bed.paths[0]);
  serve::ZooOptions zopt;
  zopt.memory_budget_bytes = 2 * one + one / 2;  // room for two residents
  serve::ModelZoo zoo(zopt);
  bed.RegisterAll(zoo);

  zoo.Acquire("model-0");  // pin dropped immediately: evictable
  zoo.Acquire("model-1");
  EXPECT_EQ(zoo.ResidentModels(), 2u);
  EXPECT_LE(zoo.ResidentBytes(), zopt.memory_budget_bytes);

  // Touch model-0 so model-1 becomes the LRU victim, then load a third.
  zoo.Acquire("model-0");
  zoo.Acquire("model-2");
  EXPECT_LE(zoo.ResidentBytes(), zopt.memory_budget_bytes);
  serve::ZooModelStats ms;
  ASSERT_TRUE(zoo.ModelStats("model-1", &ms));
  EXPECT_FALSE(ms.resident) << "LRU victim should have been model-1";
  EXPECT_EQ(ms.evictions, 1u);
  ASSERT_TRUE(zoo.ModelStats("model-0", &ms));
  EXPECT_TRUE(ms.resident);
  ASSERT_TRUE(zoo.ModelStats("model-2", &ms));
  EXPECT_TRUE(ms.resident);
}

TEST(ModelZooTest, PinnedModelsAreNeverEvicted) {
  ZooBed bed(3, 12, "pin");
  const uint64_t one = ArtifactBytes(bed.paths[0]);
  serve::ZooOptions zopt;
  zopt.memory_budget_bytes = one + one / 2;  // room for one resident
  serve::ModelZoo zoo(zopt);
  bed.RegisterAll(zoo);

  serve::ZooPin pin0 = zoo.Acquire("model-0");
  serve::ZooPin pin1 = zoo.Acquire("model-1");
  // Both pinned: the pinned working set alone exceeds the budget, nothing
  // can be evicted, and both mappings must survive.
  EXPECT_EQ(zoo.ResidentModels(), 2u);
  serve::ZooModelStats ms;
  ASSERT_TRUE(zoo.ModelStats("model-0", &ms));
  EXPECT_TRUE(ms.resident);
  EXPECT_EQ(ms.evictions, 0u);

  // Dropping the older pin lets the deferred budget enforcement run: the
  // now-unpinned model-0 is the victim; the still-pinned model-1 survives.
  pin0.reset();
  EXPECT_LE(zoo.ResidentBytes(), zopt.memory_budget_bytes);
  ASSERT_TRUE(zoo.ModelStats("model-0", &ms));
  EXPECT_FALSE(ms.resident);
  ASSERT_TRUE(zoo.ModelStats("model-1", &ms));
  EXPECT_TRUE(ms.resident);
  EXPECT_EQ(ms.evictions, 0u);

  // Explicit eviction of a pinned model must refuse.
  EXPECT_FALSE(zoo.Evict("model-1"));
  pin1.reset();
  EXPECT_TRUE(zoo.Evict("model-1"));
  EXPECT_EQ(zoo.ResidentModels(), 0u);
}

TEST(ModelZooTest, EvictionIsTransparentAndBitwiseRepeatable) {
  ZooBed bed(2, 20, "reload");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);

  const uint64_t packs_before = tensor::PackWeightsCalls();
  for (int round = 0; round < 5; ++round) {
    serve::ZooPin pin = zoo.Acquire("model-0");
    const std::vector<double> got = pin->model().EstimateSelectivityBatch(bed.queries);
    for (size_t q = 0; q < got.size(); ++q) {
      ASSERT_EQ(got[q], bed.reference[0][q]) << "round " << round << " query " << q;
    }
    pin.reset();
    EXPECT_TRUE(zoo.Evict("model-0"));
  }
  serve::ZooModelStats ms;
  ASSERT_TRUE(zoo.ModelStats("model-0", &ms));
  EXPECT_EQ(ms.loads, 5u);
  EXPECT_EQ(ms.evictions, 5u);
  EXPECT_EQ(tensor::PackWeightsCalls(), packs_before)
      << "zoo reloads must never repack weights";
  EXPECT_EQ(zoo.AliveSnapshots(), 0u) << "evicted, unpinned: nothing may stay mapped";
}

TEST(ModelZooTest, RepublishSwapsModelsWhilePinsFinishOnTheOldOne) {
  ZooBed bed(2, 16, "republish");
  serve::ModelZoo zoo;
  zoo.Register("live", bed.paths[0]);

  serve::ZooPin old_pin = zoo.Acquire("live");
  const uint64_t old_fingerprint = old_pin->fingerprint();

  // Re-register the key at a different artifact: the zoo's resident copy is
  // dropped; the outstanding pin keeps serving the superseded mapping.
  zoo.Register("live", bed.paths[1]);
  EXPECT_EQ(zoo.ResidentModels(), 0u);
  const std::vector<double> old_bits = old_pin->model().EstimateSelectivityBatch(bed.queries);
  for (size_t q = 0; q < old_bits.size(); ++q) EXPECT_EQ(old_bits[q], bed.reference[0][q]);

  serve::ZooPin new_pin = zoo.Acquire("live");
  EXPECT_NE(new_pin->fingerprint(), old_fingerprint);
  const std::vector<double> new_bits = new_pin->model().EstimateSelectivityBatch(bed.queries);
  for (size_t q = 0; q < new_bits.size(); ++q) EXPECT_EQ(new_bits[q], bed.reference[1][q]);

  // Both generations are alive while held; releasing drains the old one.
  EXPECT_EQ(zoo.AliveSnapshots(), 2u);
  old_pin.reset();
  EXPECT_EQ(zoo.AliveSnapshots(), 1u);
  new_pin.reset();
  zoo.EvictAll();
  EXPECT_EQ(zoo.AliveSnapshots(), 0u);
}

// ---- randomized churn property test ----

TEST(ModelZooTest, RandomizedZipfChurnKeepsEveryInvariant) {
  constexpr int kModels = 10;
  ZooBed bed(kModels, 10, "churn");
  const uint64_t one = ArtifactBytes(bed.paths[0]);
  serve::ZooOptions zopt;
  zopt.memory_budget_bytes = 3 * one + one / 2;
  serve::ModelZoo zoo(zopt);
  bed.RegisterAll(zoo);

  Rng rng(2024);
  ZipfDistribution zipf(kModels, 1.1);
  const uint64_t packs_before = tensor::PackWeightsCalls();
  for (int iter = 0; iter < 400; ++iter) {
    const int m = static_cast<int>(zipf.Sample(rng));
    const double op = rng.UniformDouble();
    if (op < 0.70) {
      // Acquire, serve, release — the common path.
      serve::ZooPin pin;
      const ArtifactStatus st = zoo.TryAcquire(bed.keys[static_cast<size_t>(m)], &pin);
      ASSERT_TRUE(st.ok) << st.error;
      // While pinned, the budget may only be exceeded by the pinned set.
      EXPECT_LE(zoo.ResidentBytes(),
                std::max(zopt.memory_budget_bytes, pin->model().mapped_bytes()));
      const std::vector<double> got = pin->model().EstimateSelectivityBatch(bed.queries);
      for (size_t q = 0; q < got.size(); ++q) {
        ASSERT_EQ(got[q], bed.reference[static_cast<size_t>(m)][q])
            << "iter " << iter << " model " << m;
      }
      pin->NoteServed(got.size());
    } else if (op < 0.85) {
      zoo.Evict(bed.keys[static_cast<size_t>(m)]);  // may refuse; that's fine
    } else {
      // Re-publish the same artifact path (a no-op version bump).
      zoo.Register(bed.keys[static_cast<size_t>(m)], bed.paths[static_cast<size_t>(m)]);
    }
    // With no pins outstanding the budget is a hard bound.
    EXPECT_LE(zoo.ResidentBytes(), zopt.memory_budget_bytes) << "iter " << iter;
    EXPECT_LE(zoo.AliveSnapshots(), zoo.ResidentModels()) << "iter " << iter;
  }
  EXPECT_EQ(tensor::PackWeightsCalls(), packs_before);

  const serve::ZooStats stats = zoo.stats();
  EXPECT_GT(stats.loads, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.serves, 0u);

  zoo.EvictAll();
  EXPECT_EQ(zoo.ResidentModels(), 0u);
  EXPECT_EQ(zoo.ResidentBytes(), 0u);
  EXPECT_EQ(zoo.AliveSnapshots(), 0u) << "teardown leaked a mapping";
}

// ---- zoo-mode serving engine ----

TEST(ZooServingTest, KeyedEstimateBatchMatchesDirectModelBitwise) {
  ZooBed bed(4, 32, "engine");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  serve::ServingOptions sopt;
  sopt.num_workers = 3;
  serve::ServingEngine engine(zoo, sopt);

  for (size_t m = 0; m < bed.keys.size(); ++m) {
    uint64_t snapshot_id = 0;
    const std::vector<double> got = engine.EstimateBatch(bed.keys[m], bed.queries, &snapshot_id);
    ASSERT_EQ(got.size(), bed.queries.size());
    for (size_t q = 0; q < got.size(); ++q) EXPECT_EQ(got[q], bed.reference[m][q]);
    serve::ZooPin pin = zoo.Acquire(bed.keys[m]);
    EXPECT_EQ(snapshot_id, pin->fingerprint()) << "zoo snapshot id is the fingerprint";
  }

  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.queries, bed.keys.size() * bed.queries.size());
  serve::ZooModelStats ms;
  ASSERT_TRUE(zoo.ModelStats("model-2", &ms));
  EXPECT_EQ(ms.serves, bed.queries.size()) << "per-model serve accounting";
}

TEST(ZooServingTest, UnknownKeyDegradesToFallbackFlagged) {
  ZooBed bed(1, 8, "fallback");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  serve::ServingEngine engine(zoo);

  const std::vector<serve::Estimate> results = engine.EstimateBatchEx("no-such-model", bed.queries);
  ASSERT_EQ(results.size(), bed.queries.size());
  for (const serve::Estimate& e : results) {
    EXPECT_TRUE(e.fallback) << "missing model must degrade, not crash";
    EXPECT_EQ(e.selectivity, 0.0) << "no fallback attached: flagged 0.0";
  }
  // The breaker must NOT have tripped: a missing model is not a neural
  // failure, and the registered model still serves normally.
  const std::vector<double> ok = engine.EstimateBatch(bed.keys[0], bed.queries);
  for (size_t q = 0; q < ok.size(); ++q) EXPECT_EQ(ok[q], bed.reference[0][q]);
  EXPECT_EQ(engine.stats().breaker_trips, 0u);
}

TEST(ZooServingTest, KeyedSubmitGroupsMicroBatchesByModel) {
  ZooBed bed(3, 24, "submit");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 16;
  sopt.max_wait_us = 2000;
  serve::ServingEngine engine(zoo, sopt);

  std::vector<std::pair<size_t, serve::ServingEngine::Future>> futures;
  for (int round = 0; round < 3; ++round) {
    for (size_t m = 0; m < bed.keys.size(); ++m) {
      for (size_t q = 0; q < bed.queries.size(); q += 3) {
        futures.emplace_back(m * bed.queries.size() + q,
                             engine.Submit(bed.keys[m], bed.queries[q]));
      }
    }
  }
  for (auto& [slot, future] : futures) {
    const size_t m = slot / bed.queries.size();
    const size_t q = slot % bed.queries.size();
    EXPECT_EQ(future.Wait(), bed.reference[m][q])
        << "async answer drifted from model " << m << " query " << q;
  }
}

// ---- concurrency: readers vs publisher vs evictor ----

TEST(ZooServingTest, ConcurrentServePublishEvictStaysBitwise) {
  constexpr int kModels = 64;
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 60;
  ZooBed bed(kModels, 8, "conc");
  // One alternate artifact per republished key (same table, different
  // seed): concurrent batches must observe exactly generation A or B.
  const int kRepublished = 8;
  std::vector<std::string> alt_paths;
  std::vector<std::vector<double>> alt_reference;
  for (int i = 0; i < kRepublished; ++i) {
    alt_paths.push_back(TempPath("conc_alt_" + std::to_string(i)));
    alt_reference.push_back(WriteModelArtifact(bed.table, 9000 + static_cast<uint64_t>(i),
                                               alt_paths.back(), bed.queries));
  }

  const uint64_t one = ArtifactBytes(bed.paths[0]);
  serve::ZooOptions zopt;
  zopt.memory_budget_bytes = 12 * one;  // far fewer than kModels: real churn
  serve::ModelZoo zoo(zopt);
  bed.RegisterAll(zoo);

  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  serve::ServingEngine engine(zoo, sopt);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(7000 + static_cast<uint64_t>(t));
      ZipfDistribution zipf(kModels, 1.05);
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        const size_t m = zipf.Sample(rng);
        const std::vector<double> got = engine.EstimateBatch(bed.keys[m], bed.queries);
        // The whole batch must match one generation of this key bitwise.
        const std::vector<double>& a = bed.reference[m];
        bool match_a = true, match_b = false;
        for (size_t q = 0; q < got.size(); ++q) match_a = match_a && got[q] == a[q];
        if (!match_a && m < static_cast<size_t>(kRepublished)) {
          const std::vector<double>& b = alt_reference[m];
          match_b = true;
          for (size_t q = 0; q < got.size(); ++q) match_b = match_b && got[q] == b[q];
        }
        if (!match_a && !match_b) mismatches.fetch_add(1);
      }
    });
  }
  std::thread publisher([&] {
    Rng rng(555);
    int flip = 0;
    while (!stop.load()) {
      const size_t m = rng.UniformInt(kRepublished);
      const bool alt = (flip++ & 1) != 0;
      zoo.Register(bed.keys[m], alt ? alt_paths[m] : bed.paths[m]);
      std::this_thread::yield();
    }
  });
  std::thread evictor([&] {
    Rng rng(777);
    while (!stop.load()) {
      zoo.Evict(bed.keys[rng.UniformInt(kModels)]);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : readers) t.join();
  stop.store(true);
  publisher.join();
  evictor.join();

  EXPECT_EQ(mismatches.load(), 0) << "a concurrent batch served mixed/foreign bits";
  EXPECT_LE(zoo.ResidentBytes(), zopt.memory_budget_bytes);

  // Drain: evict everything, nothing may stay mapped.
  zoo.EvictAll();
  EXPECT_EQ(zoo.ResidentModels(), 0u);
  EXPECT_EQ(zoo.AliveSnapshots(), 0u);
  for (const std::string& p : alt_paths) ::unlink(p.c_str());
}

}  // namespace
}  // namespace duet
