// Unit tests for the tensor/autograd engine: op forward semantics, numeric
// gradient checks for every differentiable op, optimizer behaviour, and the
// graph machinery (NoGradGuard, detach, reuse).
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace duet::tensor {
namespace {

using duet::testing::ExpectGradMatchesNumeric;

Tensor RandomTensor(std::vector<int64_t> shape, Rng& rng, float lo, float hi,
                    bool requires_grad) {
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = lo + rng.UniformFloat() * (hi - lo);
  }
  return t;
}

TEST(TensorBasics, ShapeAndNumel) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
}

TEST(TensorBasics, FromVectorChecksSize) {
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f}), "CHECK");
}

TEST(TensorBasics, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(3.5f).item(), 3.5f);
}

TEST(TensorBasics, CloneIsDeep) {
  Tensor a = Tensor::Full({2}, 1.0f);
  Tensor b = a.Clone();
  b.data()[0] = 9.0f;
  EXPECT_FLOAT_EQ(a.data()[0], 1.0f);
}

TEST(TensorBasics, DetachSharesNothingInGraph) {
  Tensor a = Tensor::Full({2}, 2.0f, /*requires_grad=*/true);
  Tensor b = MulScalar(a, 3.0f);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_FLOAT_EQ(d.data()[0], 6.0f);
}

TEST(MatMulTest, ForwardValues) {
  // [1,2;3,4] x [5;6] = [17;39]
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::FromVector({2, 1}, {5, 6});
  Tensor c = MatMul(a, w);
  EXPECT_FLOAT_EQ(c.data()[0], 17.0f);
  EXPECT_FLOAT_EQ(c.data()[1], 39.0f);
}

TEST(MatMulTest, GradWeight) {
  Rng rng(1);
  Tensor a = RandomTensor({3, 4}, rng, -1, 1, false);
  Tensor w = RandomTensor({4, 2}, rng, -1, 1, true);
  ExpectGradMatchesNumeric(w, [&] { return SumAll(MatMul(a, w)); });
}

TEST(MatMulTest, GradInput) {
  Rng rng(2);
  Tensor a = RandomTensor({3, 4}, rng, -1, 1, true);
  Tensor w = RandomTensor({4, 2}, rng, -1, 1, false);
  // Input-gradient path requires the input to be an interior node; wrap it.
  ExpectGradMatchesNumeric(a, [&] { return SumAll(MatMul(a, w)); });
}

TEST(AddBiasTest, ForwardAndGrad) {
  Rng rng(3);
  Tensor x = RandomTensor({2, 3}, rng, -1, 1, false);
  Tensor b = RandomTensor({3}, rng, -1, 1, true);
  Tensor y = AddBias(x, b);
  EXPECT_FLOAT_EQ(y.data()[0], x.data()[0] + b.data()[0]);
  ExpectGradMatchesNumeric(b, [&] { return SumAll(AddBias(x, b)); });
}

struct ElementwiseCase {
  const char* name;
  Tensor (*fn)(const Tensor&, const Tensor&);
};

class BinaryOpGradTest : public ::testing::TestWithParam<ElementwiseCase> {};

TEST_P(BinaryOpGradTest, GradBothSides) {
  Rng rng(4);
  Tensor a = RandomTensor({2, 3}, rng, 0.5f, 2.0f, true);
  Tensor b = RandomTensor({2, 3}, rng, 0.5f, 2.0f, true);
  auto fn = GetParam().fn;
  ExpectGradMatchesNumeric(a, [&] { return SumAll(fn(a, b)); });
  ExpectGradMatchesNumeric(b, [&] { return SumAll(fn(a, b)); });
}

INSTANTIATE_TEST_SUITE_P(AllBinaryOps, BinaryOpGradTest,
                         ::testing::Values(ElementwiseCase{"Add", Add},
                                           ElementwiseCase{"Sub", Sub},
                                           ElementwiseCase{"Mul", Mul},
                                           ElementwiseCase{"Div", Div}),
                         [](const ::testing::TestParamInfo<ElementwiseCase>& info) {
                           return info.param.name;
                         });

struct UnaryCase {
  const char* name;
  Tensor (*fn)(const Tensor&);
  float lo;
  float hi;
};

class UnaryOpGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryOpGradTest, Grad) {
  Rng rng(5);
  const UnaryCase& c = GetParam();
  Tensor x = RandomTensor({2, 4}, rng, c.lo, c.hi, true);
  ExpectGradMatchesNumeric(x, [&] { return SumAll(c.fn(x)); });
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryOpGradTest,
    ::testing::Values(UnaryCase{"Relu", Relu, 0.3f, 2.0f},
                      UnaryCase{"Sigmoid", Sigmoid, -2.0f, 2.0f},
                      UnaryCase{"Tanh", Tanh, -2.0f, 2.0f},
                      UnaryCase{"Exp", Exp, -1.0f, 1.0f},
                      UnaryCase{"Log", Log, 0.5f, 3.0f}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) { return info.param.name; });

TEST(ScalarOpsTest, ForwardAndGrad) {
  Rng rng(6);
  Tensor x = RandomTensor({5}, rng, -1, 1, true);
  Tensor y = AddScalar(MulScalar(x, 2.0f), 1.0f);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], 2.0f * x.data()[i] + 1.0f);
  }
  ExpectGradMatchesNumeric(x, [&] { return SumAll(AddScalar(MulScalar(x, 2.0f), 1.0f)); });
}

TEST(ClampMinTest, ForwardAndGradMasksClampedSide) {
  Tensor x = Tensor::FromVector({3}, {-1.0f, 0.5f, 2.0f}, true);
  Tensor y = ClampMin(x, 0.0f);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.5f);
  Tensor loss = SumAll(ClampMin(x, 0.0f));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad_vector()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad_vector()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad_vector()[2], 1.0f);
}

TEST(ConcatSliceTest, RoundTrip) {
  Rng rng(7);
  Tensor a = RandomTensor({2, 3}, rng, -1, 1, false);
  Tensor b = RandomTensor({2, 2}, rng, -1, 1, false);
  Tensor cat = ConcatCols({a, b});
  ASSERT_EQ(cat.dim(1), 5);
  Tensor a2 = SliceCols(cat, 0, 3);
  Tensor b2 = SliceCols(cat, 3, 2);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a2.data()[i], a.data()[i]);
  for (int64_t i = 0; i < b.numel(); ++i) EXPECT_FLOAT_EQ(b2.data()[i], b.data()[i]);
}

TEST(ConcatSliceTest, Grads) {
  Rng rng(8);
  Tensor a = RandomTensor({2, 3}, rng, -1, 1, true);
  Tensor b = RandomTensor({2, 2}, rng, -1, 1, true);
  ExpectGradMatchesNumeric(a, [&] { return SumAll(SliceCols(ConcatCols({a, b}), 1, 3)); });
  ExpectGradMatchesNumeric(b, [&] { return SumAll(SliceCols(ConcatCols({a, b}), 1, 3)); });
}

TEST(ConcatRowsTest, StacksAndGrads) {
  Rng rng(9);
  Tensor a = RandomTensor({1, 3}, rng, -1, 1, true);
  Tensor b = RandomTensor({2, 3}, rng, -1, 1, false);
  Tensor cat = ConcatRows({a, b});
  ASSERT_EQ(cat.dim(0), 3);
  EXPECT_FLOAT_EQ(cat.data()[0], a.data()[0]);
  EXPECT_FLOAT_EQ(cat.data()[3], b.data()[0]);
  ExpectGradMatchesNumeric(a, [&] { return SumAll(ConcatRows({a, b})); });
}

TEST(EmbeddingTest, LookupAndGrad) {
  Rng rng(10);
  Tensor w = RandomTensor({4, 3}, rng, -1, 1, true);
  std::vector<int32_t> idx = {2, 0, 2};
  Tensor y = EmbeddingLookup(w, idx);
  ASSERT_EQ(y.dim(0), 3);
  EXPECT_FLOAT_EQ(y.data()[0], w.data()[2 * 3 + 0]);
  // Repeated index 2 must accumulate twice in the gradient.
  Tensor loss = SumAll(EmbeddingLookup(w, idx));
  loss.Backward();
  EXPECT_FLOAT_EQ(w.grad_vector()[2 * 3 + 0], 2.0f);
  EXPECT_FLOAT_EQ(w.grad_vector()[0 * 3 + 0], 1.0f);
  EXPECT_FLOAT_EQ(w.grad_vector()[1 * 3 + 0], 0.0f);
  ExpectGradMatchesNumeric(w, [&] { return SumAll(EmbeddingLookup(w, idx)); });
}

TEST(SoftmaxTest, BlocksSumToOne) {
  Rng rng(11);
  Tensor x = RandomTensor({3, 7}, rng, -2, 2, false);
  std::vector<BlockSpec> blocks = {{0, 3}, {3, 4}};
  Tensor y = SoftmaxBlocks(x, blocks);
  for (int64_t r = 0; r < 3; ++r) {
    for (const BlockSpec& blk : blocks) {
      float sum = 0.0f;
      for (int64_t j = 0; j < blk.len; ++j) sum += y.data()[r * 7 + blk.offset + j];
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

TEST(SoftmaxTest, Grad) {
  Rng rng(12);
  Tensor x = RandomTensor({2, 5}, rng, -1, 1, true);
  std::vector<BlockSpec> blocks = {{0, 2}, {2, 3}};
  // Weighted sum keeps the gradient non-trivial (plain sum would be ~0).
  Tensor wts = RandomTensor({2, 5}, rng, 0.1f, 1.0f, false);
  ExpectGradMatchesNumeric(x, [&] { return SumAll(Mul(SoftmaxBlocks(x, blocks), wts)); });
}

TEST(LogSoftmaxTest, MatchesLogOfSoftmax) {
  Rng rng(13);
  Tensor x = RandomTensor({2, 6}, rng, -2, 2, false);
  std::vector<BlockSpec> blocks = {{0, 6}};
  Tensor a = LogSoftmaxBlocks(x, blocks);
  Tensor b = Log(SoftmaxBlocks(x, blocks));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5f);
}

TEST(LogSoftmaxTest, Grad) {
  Rng rng(14);
  Tensor x = RandomTensor({2, 5}, rng, -1, 1, true);
  std::vector<BlockSpec> blocks = {{0, 3}, {3, 2}};
  Tensor wts = RandomTensor({2, 5}, rng, 0.1f, 1.0f, false);
  ExpectGradMatchesNumeric(x, [&] { return SumAll(Mul(LogSoftmaxBlocks(x, blocks), wts)); });
}

TEST(NllLossTest, PicksTargets) {
  // logp chosen by hand: loss = -(logp[0, t0] + logp[0, 2 + t1]) with B=1.
  Tensor logp = Tensor::FromVector({1, 5}, {-1, -2, -3, -4, -5}, false);
  std::vector<BlockSpec> blocks = {{0, 2}, {2, 3}};
  std::vector<int32_t> targets = {1, 2};  // -> -(-2) - (-5) = 7
  Tensor loss = NllLossBlocks(logp, blocks, targets);
  EXPECT_FLOAT_EQ(loss.item(), 7.0f);
}

TEST(NllLossTest, Grad) {
  Rng rng(15);
  Tensor x = RandomTensor({3, 5}, rng, -1, 1, true);
  std::vector<BlockSpec> blocks = {{0, 2}, {2, 3}};
  std::vector<int32_t> targets = {0, 2, 1, 0, 1, 1};
  ExpectGradMatchesNumeric(
      x, [&] { return NllLossBlocks(LogSoftmaxBlocks(x, blocks), blocks, targets); });
}

TEST(MaskedSumTest, ForwardAndGrad) {
  Rng rng(16);
  Tensor p = RandomTensor({2, 5}, rng, 0.1f, 1.0f, true);
  Tensor mask = Tensor::FromVector({2, 5}, {1, 0, 1, 1, 0, 0, 1, 0, 0, 1}, false);
  std::vector<BlockSpec> blocks = {{0, 2}, {2, 3}};
  Tensor y = MaskedSumBlocks(p, mask, blocks);
  ASSERT_EQ(y.dim(1), 2);
  EXPECT_FLOAT_EQ(y.data()[0], p.data()[0]);
  EXPECT_FLOAT_EQ(y.data()[1], p.data()[2] + p.data()[3]);
  ExpectGradMatchesNumeric(p, [&] { return SumAll(MaskedSumBlocks(p, mask, blocks)); });
}

TEST(ReductionTest, SumColsMeanAllSumAll) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}, false);
  Tensor rows = SumCols(x);
  EXPECT_FLOAT_EQ(rows.data()[0], 6.0f);
  EXPECT_FLOAT_EQ(rows.data()[1], 15.0f);
  EXPECT_FLOAT_EQ(MeanAll(x).item(), 3.5f);
  EXPECT_FLOAT_EQ(SumAll(x).item(), 21.0f);
}

TEST(ReductionTest, Grads) {
  Rng rng(17);
  Tensor x = RandomTensor({3, 4}, rng, -1, 1, true);
  ExpectGradMatchesNumeric(x, [&] { return MeanAll(Exp(x)); });
  ExpectGradMatchesNumeric(x, [&] { return SumAll(Mul(SumCols(x), SumCols(x))); });
}

TEST(SelectTest, ChoosesBranchAndRoutesGrad) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3}, true);
  Tensor b = Tensor::FromVector({3}, {10, 20, 30}, true);
  std::vector<float> cond = {1, 0, 1};
  Tensor y = Select(cond, a, b);
  EXPECT_FLOAT_EQ(y.data()[0], 1.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 20.0f);
  Tensor loss = SumAll(Select(cond, a, b));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad_vector()[0], 1.0f);
  EXPECT_FLOAT_EQ(a.grad_vector()[1], 0.0f);
  EXPECT_FLOAT_EQ(b.grad_vector()[1], 1.0f);
}

TEST(MeanPoolTest, PoolsWithMask) {
  // B=2, S=2, H=2.
  Tensor x = Tensor::FromVector({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8}, true);
  std::vector<float> mask = {1, 1, 1, 0};
  Tensor y = MeanPoolSegments(x, mask, 2, 2);
  EXPECT_FLOAT_EQ(y.data()[0], 2.0f);  // (1+3)/2
  EXPECT_FLOAT_EQ(y.data()[1], 3.0f);  // (2+4)/2
  EXPECT_FLOAT_EQ(y.data()[2], 5.0f);  // only first row present
  ExpectGradMatchesNumeric(x, [&] { return SumAll(MeanPoolSegments(x, mask, 2, 2)); });
}

TEST(ReshapeTest, PreservesDataAndGrad) {
  Rng rng(18);
  Tensor x = RandomTensor({2, 3}, rng, -1, 1, true);
  Tensor y = Reshape(x, {6});
  EXPECT_EQ(y.ndim(), 1);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  ExpectGradMatchesNumeric(x, [&] { return SumAll(Exp(Reshape(x, {6, 1}))); });
}

TEST(BlockDiagTest, MatchesPerBlockMatMul) {
  Rng rng(19);
  const int64_t blocks = 3, in = 4, out = 2, b = 5;
  Tensor x = RandomTensor({b, blocks * in}, rng, -1, 1, false);
  Tensor w = RandomTensor({blocks, in, out}, rng, -1, 1, false);
  Tensor y = BlockDiagMatMul(x, w, blocks, in, out);
  for (int64_t k = 0; k < blocks; ++k) {
    Tensor xk = SliceCols(x, k * in, in);
    Tensor wk = Tensor::FromVector(
        {in, out},
        std::vector<float>(w.data() + k * in * out, w.data() + (k + 1) * in * out));
    Tensor yk = MatMul(xk, wk);
    for (int64_t r = 0; r < b; ++r) {
      for (int64_t c = 0; c < out; ++c) {
        EXPECT_NEAR(y.data()[r * blocks * out + k * out + c], yk.data()[r * out + c], 1e-4f);
      }
    }
  }
}

TEST(BlockDiagTest, Grads) {
  Rng rng(20);
  const int64_t blocks = 2, in = 3, out = 2, b = 2;
  Tensor x = RandomTensor({b, blocks * in}, rng, -1, 1, true);
  Tensor w = RandomTensor({blocks, in, out}, rng, -1, 1, true);
  ExpectGradMatchesNumeric(x, [&] { return SumAll(Exp(BlockDiagMatMul(x, w, blocks, in, out))); });
  ExpectGradMatchesNumeric(w, [&] { return SumAll(Exp(BlockDiagMatMul(x, w, blocks, in, out))); });
}

TEST(AutogradTest, ReusedTensorAccumulatesGrad) {
  Tensor x = Tensor::FromVector({1}, {3.0f}, true);
  // y = x*x + 2x -> dy/dx = 2x + 2 = 8.
  Tensor y = Add(Mul(x, x), MulScalar(x, 2.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_vector()[0], 8.0f);
}

TEST(AutogradTest, BackwardTwiceRecomputesFreshGrads) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  Tensor y = Mul(x, x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_vector()[0], 4.0f);
  y.Backward();  // grads are re-seeded, not accumulated across calls
  EXPECT_FLOAT_EQ(x.grad_vector()[0], 4.0f);
}

TEST(AutogradTest, NoGradGuardSkipsGraph) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  NoGradGuard guard;
  Tensor y = Mul(x, x);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FALSE(static_cast<bool>(y.impl()->backward));
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 0.0f);
  Tensor loss = SumAll(y);
  loss.Backward();  // iterative topo sort must handle 20k-node chains
  EXPECT_FLOAT_EQ(x.grad_vector()[0], 1.0f);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  Tensor x = Tensor::FromVector({2}, {5.0f, -3.0f}, true);
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor loss = SumAll(Mul(x, x));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-2f);
  EXPECT_NEAR(x.data()[1], 0.0f, 1e-2f);
}

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  Tensor x = Tensor::FromVector({1}, {4.0f}, true);
  Sgd opt({x}, 0.1f, 0.5f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Tensor loss = SumAll(Mul(x, x));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, UntouchedParamIsSkipped) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Tensor unused = Tensor::FromVector({1}, {7.0f}, true);
  Adam opt({x, unused}, 0.1f);
  opt.ZeroGrad();
  Tensor loss = SumAll(Mul(x, x));
  loss.Backward();
  opt.Step();
  EXPECT_FLOAT_EQ(unused.data()[0], 7.0f);
}

}  // namespace
}  // namespace duet::tensor
