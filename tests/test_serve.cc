// Serving engine + masked-weight cache: sharded estimation must equal the
// single-thread batch path bitwise across ragged batch sizes and worker
// counts; the masked-weight cache must be invalidated by optimizer steps,
// fine-tuning and checkpoint loads; async Submit/Wait must return each
// query's own estimate regardless of micro-batch grouping.
#include <cmath>
#include <sstream>
#include <vector>

#include "core/duet_model.h"
#include "core/finetune.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "nn/layers.h"
#include "query/workload.h"
#include "serve/serving_engine.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace duet {
namespace {

using query::Query;

data::Table SmallTable() { return data::CensusLike(600, 11); }

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

TEST(ServingEngineTest, ShardedMatchesSingleThreadBitwise) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  const std::vector<Query> all = MakeQueries(t, 130);

  // Ragged sizes hit the 1-query, sub-min_shard, uneven-split and
  // larger-than-workers regimes.
  const std::vector<int> sizes = {1, 2, 3, 7, 16, 33, 64, 65, 130};
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    serve::ServingOptions sopt;
    sopt.num_workers = workers;
    sopt.min_shard = 4;
    serve::ServingEngine engine(est, sopt);
    for (int size : sizes) {
      const std::vector<Query> batch(all.begin(), all.begin() + size);
      const std::vector<double> reference = est.EstimateSelectivityBatch(batch);
      const std::vector<double> sharded = engine.EstimateBatch(batch);
      ASSERT_EQ(sharded.size(), reference.size());
      for (size_t i = 0; i < reference.size(); ++i) {
        // Bitwise: sharding must not perturb numerics at all.
        EXPECT_EQ(sharded[i], reference[i])
            << "workers=" << workers << " size=" << size << " query=" << i;
      }
    }
  }
}

TEST(ServingEngineTest, ConcurrentSyncCallersDoNotInterfere) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  serve::ServingOptions sopt;
  sopt.num_workers = 4;
  sopt.min_shard = 2;
  serve::ServingEngine engine(est, sopt);

  const std::vector<Query> qa = MakeQueries(t, 40, 1);
  const std::vector<Query> qb = MakeQueries(t, 23, 2);
  const std::vector<double> ra = est.EstimateSelectivityBatch(qa);
  const std::vector<double> rb = est.EstimateSelectivityBatch(qb);

  std::vector<double> got_a, got_b;
  std::thread ta([&] { got_a = engine.EstimateBatch(qa); });
  std::thread tb([&] { got_b = engine.EstimateBatch(qb); });
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, ra);
  EXPECT_EQ(got_b, rb);
}

TEST(ServingEngineTest, AsyncSubmitWaitReturnsPerQueryResults) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);

  // Tiny max_batch forces several micro-batches; a long max_wait exercises
  // the size trigger, and destruction drains whatever is left.
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 4;
  sopt.max_wait_us = 50 * 1000;
  const std::vector<Query> queries = MakeQueries(t, 30);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);

  serve::ServingEngine engine(est, sopt);
  std::vector<serve::ServingEngine::Future> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) futures.push_back(engine.Submit(q));
  // Wait out of submission order: results must be tied to the query, not to
  // dispatch position.
  for (size_t i = futures.size(); i-- > 0;) {
    EXPECT_EQ(futures[i].Wait(), reference[i]) << "query " << i;
  }
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GE(stats.micro_batches, queries.size() / 4);  // max_batch == 4
  EXPECT_LE(stats.largest_micro_batch, 4);
}

// Cross-request fusion A/B: fused and unfused dispatch must return bitwise
// identical per-request results (kernel batch invariance — fusion changes
// throughput, never answers), and only the fused engine may count fused
// groups.
TEST(ServingEngineTest, FusionIsBitwiseInvariantAndCounted) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  const std::vector<Query> queries = MakeQueries(t, 24);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);

  for (const bool fuse : {true, false}) {
    serve::ServingOptions sopt;
    sopt.num_workers = 2;
    sopt.max_batch = 8;
    sopt.max_wait_us = 50 * 1000;
    sopt.fuse_requests = fuse;
    serve::ServingEngine engine(est, sopt);
    std::vector<serve::ServingEngine::Future> futures;
    futures.reserve(queries.size());
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
    for (size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].Wait(), reference[i]) << "fuse=" << fuse << " query " << i;
    }
    const serve::ServingStats stats = engine.stats();
    if (fuse) {
      // 24 concurrent submissions into max_batch=8 micro-batches: at least
      // one dispatch group must have coalesced >= 2 requests.
      EXPECT_GT(stats.fused_requests, 0u);
      EXPECT_GE(stats.fusion_batch_p50, 2.0);
    } else {
      EXPECT_EQ(stats.fused_requests, 0u) << "unfused arm must not coalesce";
      EXPECT_EQ(stats.fusion_batch_p50, 0.0);
    }
  }
}

TEST(ServingEngineTest, DestructorDrainsPendingFutures) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  const std::vector<Query> queries = MakeQueries(t, 9);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);

  std::vector<serve::ServingEngine::Future> futures;
  {
    serve::ServingOptions sopt;
    sopt.num_workers = 2;
    sopt.max_batch = 64;          // never reached by 9 queries
    sopt.max_wait_us = 10 * 1000 * 1000;  // nor the deadline: dtor must drain
    serve::ServingEngine engine(est, sopt);
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].Ready()) << "future " << i << " not drained";
    EXPECT_EQ(futures[i].Wait(), reference[i]);
  }
}

TEST(ServingEngineTest, DestructorDrainRacesDeadlineExpiry) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  const std::vector<Query> queries = MakeQueries(t, 24);

  // Deadlines land mid-teardown: some entries expire while the destructor
  // drains, some are still live. Every future must complete either way —
  // expired ones flagged, live ones with a real estimate — and nothing may
  // hang or crash regardless of which side of the race each entry lands on.
  for (int round = 0; round < 5; ++round) {
    std::vector<serve::ServingEngine::Future> futures;
    {
      serve::ServingOptions sopt;
      sopt.num_workers = 2;
      sopt.max_batch = 64;                 // size trigger never fires
      sopt.max_wait_us = 10 * 1000 * 1000; // dtor does the dispatch
      serve::ServingEngine engine(est, sopt);
      for (size_t i = 0; i < queries.size(); ++i) {
        // Mix of already-expired, racing (~dtor latency), and generous.
        const int64_t deadline = i % 3 == 0 ? 1 : (i % 3 == 1 ? 300 : 10 * 1000 * 1000);
        futures.push_back(engine.Submit(queries[i], deadline));
      }
    }
    const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
    for (size_t i = 0; i < futures.size(); ++i) {
      ASSERT_TRUE(futures[i].Ready()) << "round " << round << " future " << i;
      const serve::Estimate e = futures[i].Result();
      if (!e.deadline_expired) {
        EXPECT_EQ(e.selectivity, reference[i]) << "round " << round << " query " << i;
      }
    }
  }
}

TEST(ServingEngineTest, DestructorDrainsShedAndQueuedEntriesTogether) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  const std::vector<Query> queries = MakeQueries(t, 12);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);

  std::vector<serve::ServingEngine::Future> futures;
  uint64_t shed = 0;
  {
    serve::ServingOptions sopt;
    sopt.num_workers = 2;
    sopt.max_queue = 3;                  // most submissions shed immediately
    sopt.max_batch = 64;
    sopt.max_wait_us = 10 * 1000 * 1000;
    serve::ServingEngine engine(est, sopt);
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
    shed = engine.stats().shed;
  }
  EXPECT_GE(shed, queries.size() - 3);
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].Ready()) << "future " << i;
    const serve::Estimate e = futures[i].Result();
    if (e.shed) {
      EXPECT_TRUE(e.degraded());  // no fallback attached: flagged, sel 0.0
    } else {
      EXPECT_EQ(e.selectivity, reference[i]) << "query " << i;
    }
  }
}

// The cache unit test: a MaskedLinear forward with gradients disabled must
// serve cached W o M, and an optimizer step must invalidate it so the next
// no-grad forward matches the tracked (uncached) path bitwise.
TEST(MaskedWeightCacheTest, InvalidatedByOptimizerStep) {
  Rng rng(5);
  tensor::Tensor mask = tensor::Tensor::Zeros({6, 4});
  for (int64_t i = 0; i < mask.numel(); ++i) mask.data()[i] = (i % 3 == 0) ? 0.0f : 1.0f;
  nn::MaskedLinear layer(6, 4, mask, rng);
  tensor::Tensor x = tensor::Tensor::Zeros({2, 6});
  for (int64_t i = 0; i < x.numel(); ++i) x.data()[i] = 0.1f * static_cast<float>(i % 7) - 0.3f;

  auto no_grad_forward = [&] {
    tensor::NoGradScope scope;
    return layer.Forward(x).Clone();
  };
  auto tracked_forward = [&] { return layer.Forward(x).Clone(); };

  // Populate the cache, then check cached == tracked bitwise.
  const tensor::Tensor before_cached = no_grad_forward();
  const tensor::Tensor before_tracked = tracked_forward();
  ASSERT_EQ(before_cached.value_vector(), before_tracked.value_vector());

  // One SGD step with a synthetic gradient changes W (and bumps the global
  // parameter version).
  {
    tensor::Sgd sgd({layer.parameters()}, /*lr=*/0.1f);
    for (const tensor::Tensor& p : layer.parameters()) {
      tensor::Tensor param = p;  // shared handle; grads live on the impl
      float* g = param.grad_data();
      for (int64_t i = 0; i < param.numel(); ++i) g[i] = 1.0f;
    }
    sgd.Step();
  }

  const tensor::Tensor after_cached = no_grad_forward();
  const tensor::Tensor after_tracked = tracked_forward();
  EXPECT_NE(after_cached.value_vector(), before_cached.value_vector())
      << "cache served stale weights after an optimizer step";
  EXPECT_EQ(after_cached.value_vector(), after_tracked.value_vector())
      << "cached inference path diverged from the tracked reference";
}

// End-to-end: estimate -> fine-tune -> estimate must reflect the new
// weights, and the post-finetune estimates must be identical to what a
// cache-cold copy of the model (checkpoint round-trip) computes.
TEST(MaskedWeightCacheTest, EstimatesReflectFineTunedWeights) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  const std::vector<Query> queries = MakeQueries(t, 24);

  const std::vector<double> before = model.EstimateSelectivityBatch(queries);

  // A couple of training epochs move every layer's weights.
  core::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 128;
  core::DuetTrainer(model, topt).Train();

  const std::vector<double> after = model.EstimateSelectivityBatch(queries);
  EXPECT_NE(after, before) << "estimates unchanged after training: stale cache?";

  // Cache-cold reference: round-trip the weights into a fresh model whose
  // caches were never populated with the old weights.
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    model.Save(w);
  }
  core::DuetModel fresh(t, opt);
  {
    BinaryReader r(buf);
    fresh.Load(r);
  }
  const std::vector<double> cold = fresh.EstimateSelectivityBatch(queries);
  ASSERT_EQ(cold.size(), after.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], cold[i]) << "query " << i;
  }
}

// Serving through the engine after a fine-tuning round sees the new
// weights (the ISSUE's estimate -> finetune -> estimate flow, sharded).
TEST(MaskedWeightCacheTest, ServingSeesFineTunedWeights) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.min_shard = 4;
  serve::ServingEngine engine(est, sopt);

  query::WorkloadSpec spec;
  spec.num_queries = 40;
  spec.seed = 13;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  std::vector<Query> queries;
  for (const auto& lq : wl) queries.push_back(lq.query);

  const std::vector<double> before = engine.EstimateBatch(queries);

  core::FineTuneOptions fopt;
  fopt.qerror_threshold = 1.01;  // collect (almost) everything at this scale
  fopt.max_queries = 32;
  fopt.epochs = 1;
  // Serving is quiesced here: no estimates in flight during the tuning step.
  const core::FineTuneReport report = core::FineTune(model, wl, fopt);
  ASSERT_FALSE(report.collected.empty()) << "nothing collected: test premise broken";

  const std::vector<double> after = engine.EstimateBatch(queries);
  EXPECT_NE(after, before) << "sharded estimates unchanged after fine-tuning";
  // And the sharded result still equals the single-thread batch path.
  EXPECT_EQ(after, est.EstimateSelectivityBatch(queries));
}

}  // namespace
}  // namespace duet
