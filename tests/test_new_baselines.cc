// Tests for the extension baselines: LW-XGB / LW-NN (lightweight
// query-driven models, paper ref [11]), the Chow-Liu tree PGM (ref [40]),
// and RobustMSCN's query masking (ref [45]).
#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/lw/lw_models.h"
#include "baselines/mscn/mscn_model.h"
#include "baselines/pgm/chow_liu.h"
#include "data/generator.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet {
namespace {

using baselines::ChowLiuEstimator;
using baselines::ChowLiuOptions;
using baselines::LwFeaturizer;
using baselines::LwNnEstimator;
using baselines::LwXgbEstimator;

/// A two-column table with perfect dependence (col b == col a).
data::Table PerfectlyCorrelatedTable(int64_t rows, int32_t ndv) {
  Rng rng(3);
  std::vector<int32_t> codes(static_cast<size_t>(rows));
  std::vector<double> distinct;
  for (int32_t v = 0; v < ndv; ++v) distinct.push_back(v);
  for (int64_t r = 0; r < rows; ++r) {
    codes[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(ndv)));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", codes, distinct));
  cols.push_back(data::Column::FromCodes("b", codes, distinct));
  return data::Table("corr", std::move(cols));
}

/// A two-column table with independent uniform columns.
data::Table IndependentTable(int64_t rows, int32_t ndv, uint64_t seed = 4) {
  Rng rng(seed);
  std::vector<double> distinct;
  for (int32_t v = 0; v < ndv; ++v) distinct.push_back(v);
  std::vector<int32_t> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    a[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(ndv)));
    b[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(ndv)));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(a), distinct));
  cols.push_back(data::Column::FromCodes("b", std::move(b), distinct));
  return data::Table("indep", std::move(cols));
}

query::Query EqQuery(int col_a, double va, int col_b, double vb) {
  query::Query q;
  q.predicates.push_back({col_a, query::PredOp::kEq, va});
  q.predicates.push_back({col_b, query::PredOp::kEq, vb});
  return q;
}

// ---------------------------------------------------------------------------
// LW featurization
// ---------------------------------------------------------------------------

TEST(LwFeaturizerTest, WidthAndWildcardEncoding) {
  data::Table t = IndependentTable(100, 10);
  LwFeaturizer f(t);
  EXPECT_EQ(f.width(), 6);
  query::Query q;  // no predicates
  std::vector<float> row(6, -1.0f);
  f.Encode(q, row.data());
  for (int c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(row[3 * c + 0], 0.0f);  // lo
    EXPECT_FLOAT_EQ(row[3 * c + 1], 1.0f);  // hi
    EXPECT_FLOAT_EQ(row[3 * c + 2], 0.0f);  // unconstrained
  }
}

TEST(LwFeaturizerTest, RangePredicateNormalizedBounds) {
  data::Table t = IndependentTable(100, 10);
  LwFeaturizer f(t);
  query::Query q;
  q.predicates.push_back({0, query::PredOp::kGe, 5.0});
  std::vector<float> row(6, -1.0f);
  f.Encode(q, row.data());
  EXPECT_FLOAT_EQ(row[0], 0.5f);  // lo = code 5 of 10
  EXPECT_FLOAT_EQ(row[1], 1.0f);
  EXPECT_FLOAT_EQ(row[2], 1.0f);
}

TEST(LwLogSelectivityTest, KnownValues) {
  EXPECT_FLOAT_EQ(baselines::LwLogSelectivity(1024, 1024), 0.0f);
  EXPECT_FLOAT_EQ(baselines::LwLogSelectivity(512, 1024), -1.0f);
  // Zero cardinality is floored at one tuple.
  EXPECT_FLOAT_EQ(baselines::LwLogSelectivity(0, 1024), -10.0f);
}

// ---------------------------------------------------------------------------
// LW-XGB / LW-NN end-to-end
// ---------------------------------------------------------------------------

class LwEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = data::CensusLike(3000, 42);
    query::WorkloadSpec spec;
    spec.num_queries = 400;
    spec.seed = 42;
    spec.gamma_num_predicates = true;
    train_ = query::WorkloadGenerator(table_, spec).Generate();
    spec.seed = 43;
    in_q_ = query::WorkloadGenerator(table_, spec).Generate();
  }

  data::Table table_;
  query::Workload train_, in_q_;
};

TEST_F(LwEndToEndTest, XgbLearnsInWorkloadQueries) {
  baselines::LwXgbOptions opt;
  opt.gbdt.num_trees = 60;
  LwXgbEstimator est(table_, opt);
  est.Train(train_);
  const auto errs = query::EvaluateQErrors(est, in_q_, table_.num_rows());
  std::vector<double> sorted = errs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_LT(median, 4.0) << "LW-XGB should fit in-workload queries";
  EXPECT_GT(est.SizeMB(), 0.0);
}

TEST_F(LwEndToEndTest, NnLossDecreasesAndEstimatesBounded) {
  baselines::LwNnOptions opt;
  opt.epochs = 15;
  LwNnEstimator est(table_, opt);
  const std::vector<double> mse = est.Train(train_);
  ASSERT_GE(mse.size(), 2u);
  EXPECT_LT(mse.back(), mse.front());
  for (const auto& lq : in_q_) {
    const double s = est.EstimateSelectivity(lq.query);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(LwEndToEndTest, QueryDrivenModelsSufferWorkloadDrift) {
  // The paper's Problem (5): regression estimators degrade when the test
  // workload departs from the training distribution. Train with a bounded
  // column and compare In-Q vs Rand-Q medians.
  query::WorkloadSpec bounded;
  bounded.num_queries = 400;
  bounded.seed = 42;
  bounded.gamma_num_predicates = true;
  bounded.bounded_column = table_.LargestNdvColumn();
  const query::Workload train = query::WorkloadGenerator(table_, bounded).Generate();
  bounded.seed = 43;
  const query::Workload in_q = query::WorkloadGenerator(table_, bounded).Generate();
  query::WorkloadSpec rand_spec;
  rand_spec.num_queries = 400;
  rand_spec.seed = 1234;
  const query::Workload rand_q = query::WorkloadGenerator(table_, rand_spec).Generate();

  baselines::LwXgbOptions opt;
  opt.gbdt.num_trees = 60;
  LwXgbEstimator est(table_, opt);
  est.Train(train);

  auto median_err = [&](const query::Workload& wl) {
    auto errs = query::EvaluateQErrors(est, wl, table_.num_rows());
    std::sort(errs.begin(), errs.end());
    return errs[errs.size() / 2];
  };
  EXPECT_GT(median_err(rand_q), median_err(in_q));
}

// ---------------------------------------------------------------------------
// Chow-Liu PGM
// ---------------------------------------------------------------------------

TEST(ChowLiuTest, IndependentColumnsHaveNearZeroMi) {
  data::Table t = IndependentTable(8000, 8);
  ChowLiuEstimator est(t);
  EXPECT_LT(est.EdgeMutualInformation(0, 1), 0.02);
}

TEST(ChowLiuTest, IndependentColumnsEstimateNearProduct) {
  data::Table t = IndependentTable(8000, 8);
  ChowLiuEstimator est(t);
  const query::Query q = EqQuery(0, 3.0, 1, 5.0);
  const double sel = est.EstimateSelectivity(q);
  EXPECT_NEAR(sel, 1.0 / 64.0, 0.01);
}

TEST(ChowLiuTest, CapturesPerfectDependence) {
  data::Table t = PerfectlyCorrelatedTable(5000, 8);
  ChowLiuEstimator est(t);
  // P(a=3, b=3) = P(a=3) ~ 1/8 — independence would square it to 1/64.
  const double consistent = est.EstimateSelectivity(EqQuery(0, 3.0, 1, 3.0));
  EXPECT_NEAR(consistent, 1.0 / 8.0, 0.03);
  // Contradictory pair (a=3, b=4) is impossible; smoothing allows a sliver.
  const double contradictory = est.EstimateSelectivity(EqQuery(0, 3.0, 1, 4.0));
  EXPECT_LT(contradictory, 0.01);
}

TEST(ChowLiuTest, TreeEdgeConnectsDependentColumns) {
  // Three columns: a and b identical, c independent. The MI-maximizing tree
  // must place the a-b edge.
  Rng rng(5);
  const int64_t rows = 4000;
  std::vector<double> distinct;
  for (int v = 0; v < 6; ++v) distinct.push_back(v);
  std::vector<int32_t> ab(static_cast<size_t>(rows)), c(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    ab[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(6));
    c[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(6));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", ab, distinct));
  cols.push_back(data::Column::FromCodes("b", ab, distinct));
  cols.push_back(data::Column::FromCodes("c", std::move(c), distinct));
  data::Table t("chain", std::move(cols));

  ChowLiuEstimator est(t);
  // Column 1 (b) must hang off column 0 (a) — their MI dominates.
  EXPECT_EQ(est.parent(1), 0);
  EXPECT_GT(est.EdgeMutualInformation(0, 1), 10.0 * est.EdgeMutualInformation(0, 2));
}

TEST(ChowLiuTest, EmptyRangeGivesZeroFullRangeGivesOne) {
  data::Table t = IndependentTable(1000, 10);
  ChowLiuEstimator est(t);
  query::Query empty;
  empty.predicates.push_back({0, query::PredOp::kGt, 20.0});  // beyond the domain
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(empty), 0.0);
  query::Query full;  // no predicates
  EXPECT_NEAR(est.EstimateSelectivity(full), 1.0, 1e-9);
}

TEST(ChowLiuTest, BucketizedLargeNdvColumnStillRangeAccurate) {
  // ndv 500 >> max_buckets 32: range evidence uses exact per-bucket overlap,
  // so a plain range query on a single uniform column stays accurate.
  Rng rng(6);
  const int64_t rows = 20000;
  const int32_t ndv = 500;
  std::vector<double> distinct;
  for (int32_t v = 0; v < ndv; ++v) distinct.push_back(v);
  std::vector<int32_t> a(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    a[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(ndv)));
  }
  std::vector<int32_t> b = a;  // second column so the tree has an edge
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(a), distinct));
  cols.push_back(data::Column::FromCodes("b", std::move(b), distinct));
  data::Table t("bigndv", std::move(cols));

  ChowLiuOptions opt;
  opt.max_buckets = 32;
  ChowLiuEstimator est(t, opt);
  query::Query q;
  q.predicates.push_back({0, query::PredOp::kLt, 125.0});  // ~25% selectivity
  EXPECT_NEAR(est.EstimateSelectivity(q), 0.25, 0.02);
}

TEST(ChowLiuTest, MatchesBruteForceOnTinyTable) {
  data::Table t = IndependentTable(400, 4, /*seed=*/9);
  ChowLiuOptions opt;
  opt.laplace_alpha = 1e-6;  // near-ML parameters for tightness
  ChowLiuEstimator est(t, opt);
  query::ExactEvaluator exact(t);
  for (int32_t va = 0; va < 4; ++va) {
    for (int32_t vb = 0; vb < 4; ++vb) {
      const query::Query q = EqQuery(0, va, 1, vb);
      const double truth =
          static_cast<double>(exact.Count(q)) / static_cast<double>(t.num_rows());
      EXPECT_NEAR(est.EstimateSelectivity(q), truth, 0.01)
          << "a=" << va << " b=" << vb;
    }
  }
}

// ---------------------------------------------------------------------------
// RobustMSCN query masking
// ---------------------------------------------------------------------------

TEST(RobustMscnTest, TrainsAndEstimatesInBounds) {
  data::Table t = data::CensusLike(2000, 42);
  query::WorkloadSpec spec;
  spec.num_queries = 200;
  spec.seed = 42;
  spec.gamma_num_predicates = true;
  const query::Workload train = query::WorkloadGenerator(t, spec).Generate();

  baselines::MscnOptions opt;
  opt.epochs = 10;
  opt.mask_prob = 0.2;
  opt.bitmap_size = 200;
  baselines::MscnModel robust(t, opt);
  EXPECT_EQ(robust.name(), "RobustMSCN");
  const auto hist = robust.Train(train);
  ASSERT_GE(hist.size(), 2u);
  EXPECT_LT(hist.back(), hist.front());
  for (size_t i = 0; i < 50; ++i) {
    const double s = robust.EstimateSelectivity(train[i].query);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(RobustMscnTest, PlainMscnKeepsName) {
  data::Table t = data::CensusLike(500, 42);
  baselines::MscnOptions opt;
  opt.bitmap_size = 100;
  baselines::MscnModel plain(t, opt);
  EXPECT_EQ(plain.name(), "MSCN");
}

}  // namespace
}  // namespace duet
