// Unit + property tests for the query substrate: predicate semantics, the
// exact evaluator against brute force, workload generation invariants, and
// the Q-error metric.
#include <cmath>
#include <set>

#include "common/rng.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/estimator.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::query {
namespace {

data::Table TinyTable() {
  // col a: values 10,20,30 ; col b: values 1,2
  data::Column a = data::Column::FromValues("a", {10, 20, 30, 10, 20, 30});
  data::Column b = data::Column::FromValues("b", {1, 1, 1, 2, 2, 2});
  return data::Table("tiny", {a, b});
}

struct OpCase {
  PredOp op;
  double value;
  int32_t lo;
  int32_t hi;
};

class RangeForPredicateTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(RangeForPredicateTest, CodeRangeMatches) {
  const data::Table t = TinyTable();
  const OpCase& c = GetParam();
  const CodeRange r = RangeForPredicate(t.column(0), c.op, c.value);
  EXPECT_EQ(r.lo, c.lo);
  EXPECT_EQ(r.hi, c.hi);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RangeForPredicateTest,
    ::testing::Values(OpCase{PredOp::kEq, 20, 1, 2},      // = existing value
                      OpCase{PredOp::kEq, 25, 0, 0},      // = missing value -> empty
                      OpCase{PredOp::kGt, 10, 1, 3},      // > 10 -> {20,30}
                      OpCase{PredOp::kGt, 15, 1, 3},      // between values
                      OpCase{PredOp::kGt, 30, 3, 3},      // empty
                      OpCase{PredOp::kGe, 20, 1, 3},      // >= 20
                      OpCase{PredOp::kGe, 31, 3, 3},      // empty
                      OpCase{PredOp::kLt, 20, 0, 1},      // < 20 -> {10}
                      OpCase{PredOp::kLt, 10, 0, 0},      // empty
                      OpCase{PredOp::kLe, 20, 0, 2},      // <= 20
                      OpCase{PredOp::kLe, 5, 0, 0}));     // empty

TEST(QueryTest, IntersectRanges) {
  const CodeRange r = IntersectRanges({0, 5}, {3, 9});
  EXPECT_EQ(r.lo, 3);
  EXPECT_EQ(r.hi, 5);
  EXPECT_TRUE(IntersectRanges({0, 2}, {3, 4}).empty());
}

TEST(QueryTest, PerColumnRangesIntersectsMultiPredicates) {
  const data::Table t = TinyTable();
  Query q;
  q.predicates.push_back({0, PredOp::kGe, 20});
  q.predicates.push_back({0, PredOp::kLe, 20});
  q.predicates.push_back({1, PredOp::kEq, 2});
  EXPECT_TRUE(q.HasMultiPredicateColumn());
  EXPECT_EQ(q.NumConstrainedColumns(), 2);
  const auto ranges = q.PerColumnRanges(t);
  EXPECT_EQ(ranges[0].lo, 1);
  EXPECT_EQ(ranges[0].hi, 2);
  EXPECT_EQ(ranges[1].lo, 1);
  EXPECT_EQ(ranges[1].hi, 2);
}

TEST(EvaluatorTest, CountsTinyTable) {
  const data::Table t = TinyTable();
  ExactEvaluator ev(t);
  Query q;
  q.predicates.push_back({0, PredOp::kGe, 20});  // 4 rows
  EXPECT_EQ(ev.Count(q), 4u);
  q.predicates.push_back({1, PredOp::kEq, 2});  // rows (20,2),(30,2)
  EXPECT_EQ(ev.Count(q), 2u);
  Query empty_q;
  empty_q.predicates.push_back({0, PredOp::kEq, 25});
  EXPECT_EQ(ev.Count(empty_q), 0u);
  EXPECT_EQ(ev.Count(Query{}), 6u);  // no predicates -> all rows
}

/// Brute-force reference: re-evaluates predicates directly on raw values.
uint64_t BruteForceCount(const data::Table& t, const Query& q) {
  uint64_t count = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    bool ok = true;
    for (const Predicate& p : q.predicates) {
      const double v = t.column(p.col).Value(t.code(r, p.col));
      switch (p.op) {
        case PredOp::kEq: ok = v == p.value; break;
        case PredOp::kGt: ok = v > p.value; break;
        case PredOp::kLt: ok = v < p.value; break;
        case PredOp::kGe: ok = v >= p.value; break;
        case PredOp::kLe: ok = v <= p.value; break;
      }
      if (!ok) break;
    }
    count += ok ? 1 : 0;
  }
  return count;
}

class EvaluatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorPropertyTest, MatchesBruteForceOnRandomQueries) {
  const data::Table t = data::CensusLike(1500, 11);
  ExactEvaluator ev(t);
  WorkloadSpec spec;
  spec.num_queries = 40;
  spec.seed = GetParam();
  spec.two_sided_prob = 0.3;  // exercise multi-predicate columns too
  WorkloadGenerator gen(t, spec);
  Rng rng(GetParam());
  for (int i = 0; i < spec.num_queries; ++i) {
    const Query q = gen.GenerateQuery(rng);
    EXPECT_EQ(ev.Count(q), BruteForceCount(t, q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(EvaluatorTest, BatchMatchesSingle) {
  const data::Table t = data::CensusLike(800, 3);
  ExactEvaluator ev(t);
  WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 99;
  WorkloadGenerator gen(t, spec);
  Rng rng(99);
  std::vector<Query> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(gen.GenerateQuery(rng));
  const auto batch = ev.CountBatch(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], ev.Count(queries[i]));
  }
}

TEST(WorkloadTest, AnchoredQueriesAreNonEmpty) {
  const data::Table t = data::CensusLike(1000, 5);
  WorkloadSpec spec;
  spec.num_queries = 200;
  spec.seed = 7;
  WorkloadGenerator gen(t, spec);
  const Workload wl = gen.Generate();
  ASSERT_EQ(wl.size(), 200u);
  for (const LabeledQuery& lq : wl) {
    // The anchor tuple satisfies every predicate, so cardinality >= 1.
    EXPECT_GE(lq.cardinality, 1u);
    EXPECT_GE(lq.query.predicates.size(), 1u);
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  const data::Table t = data::CensusLike(500, 5);
  WorkloadSpec spec;
  spec.num_queries = 20;
  spec.seed = 13;
  const Workload a = WorkloadGenerator(t, spec).Generate();
  const Workload b = WorkloadGenerator(t, spec).Generate();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cardinality, b[i].cardinality);
    ASSERT_EQ(a[i].query.predicates.size(), b[i].query.predicates.size());
    for (size_t p = 0; p < a[i].query.predicates.size(); ++p) {
      EXPECT_EQ(a[i].query.predicates[p].col, b[i].query.predicates[p].col);
      EXPECT_EQ(static_cast<int>(a[i].query.predicates[p].op),
                static_cast<int>(b[i].query.predicates[p].op));
      EXPECT_DOUBLE_EQ(a[i].query.predicates[p].value, b[i].query.predicates[p].value);
    }
  }
}

TEST(WorkloadTest, BoundedColumnOnlyUsesSubsetValues) {
  const data::Table t = data::CensusLike(2000, 21);
  WorkloadSpec spec;
  spec.num_queries = 300;
  spec.seed = 42;
  spec.bounded_column = t.LargestNdvColumn();
  spec.bounded_fraction = 0.05;
  WorkloadGenerator gen(t, spec);
  const std::set<double> allowed(gen.bounded_values().begin(), gen.bounded_values().end());
  EXPECT_FALSE(allowed.empty());
  EXPECT_LT(static_cast<int>(allowed.size()), t.column(spec.bounded_column).ndv());
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const Query q = gen.GenerateQuery(rng);
    for (const Predicate& p : q.predicates) {
      if (p.col == spec.bounded_column) {
        EXPECT_TRUE(allowed.count(p.value) > 0) << "predicate uses out-of-subset value";
      }
    }
  }
}

TEST(WorkloadTest, GammaPredicateCountsAreSkewed) {
  const data::Table t = data::KddLike(500, 30, 3);
  WorkloadSpec uniform_spec;
  uniform_spec.num_queries = 400;
  uniform_spec.seed = 5;
  WorkloadSpec gamma_spec = uniform_spec;
  gamma_spec.gamma_num_predicates = true;
  Rng rng_u(5), rng_g(5);
  WorkloadGenerator gu(t, uniform_spec), gg(t, gamma_spec);
  double mean_u = 0.0, mean_g = 0.0;
  for (int i = 0; i < 400; ++i) {
    mean_u += static_cast<double>(gu.GenerateQuery(rng_u).predicates.size());
    mean_g += static_cast<double>(gg.GenerateQuery(rng_g).predicates.size());
  }
  mean_u /= 400;
  mean_g /= 400;
  // Uniform over [1,30] has mean ~15.5; gamma(2, 1.2)+1 has mean ~3.4.
  EXPECT_GT(mean_u, 10.0);
  EXPECT_LT(mean_g, 8.0);
}

TEST(WorkloadTest, MaxColumnsRestriction) {
  const data::Table t = data::KddLike(300, 20, 2);
  WorkloadSpec spec;
  spec.num_queries = 100;
  spec.seed = 8;
  spec.max_columns = 5;
  WorkloadGenerator gen(t, spec);
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    for (const Predicate& p : gen.GenerateQuery(rng).predicates) {
      EXPECT_LT(p.col, 5);
    }
  }
}

TEST(WorkloadTest, TwoSidedRangesContainAnchor) {
  const data::Table t = data::CensusLike(500, 6);
  WorkloadSpec spec;
  spec.num_queries = 150;
  spec.seed = 44;
  spec.two_sided_prob = 1.0;
  WorkloadGenerator gen(t, spec);
  const Workload wl = gen.Generate();
  bool saw_multi = false;
  for (const LabeledQuery& lq : wl) {
    EXPECT_GE(lq.cardinality, 1u);  // anchor still satisfies
    saw_multi |= lq.query.HasMultiPredicateColumn();
  }
  EXPECT_TRUE(saw_multi);
}

TEST(QErrorTest, Definition) {
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(5, 5), 1.0);
  // Floors both sides at 1.
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.2, 4), 4.0);
}

class ConstantEstimator : public CardinalityEstimator {
 public:
  explicit ConstantEstimator(double sel) : sel_(sel) {}
  double EstimateSelectivity(const Query&) override { return sel_; }
  std::string name() const override { return "Const"; }

 private:
  double sel_;
};

TEST(QErrorTest, EvaluateQErrorsUsesCardinalityFloor) {
  const data::Table t = TinyTable();
  Workload wl;
  Query q;
  q.predicates.push_back({0, PredOp::kGe, 20});
  wl.push_back({q, 4});
  ConstantEstimator est(0.0);  // estimates 0 -> floored to 1 tuple
  const auto errs = EvaluateQErrors(est, wl, t.num_rows());
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_DOUBLE_EQ(errs[0], 4.0);
}

// Regression: an untrained or diverged net can emit NaN, negative, or > 1
// selectivities; EstimateCardinality must clamp them into [0, 1] before
// flooring instead of propagating garbage into Q-errors.
TEST(QErrorTest, EstimateCardinalityClampsBadSelectivities) {
  Query q;
  q.predicates.push_back({0, PredOp::kGe, 20});
  const int64_t rows = 100;

  EXPECT_DOUBLE_EQ(ConstantEstimator(std::nan("")).EstimateCardinality(q, rows), 1.0);
  EXPECT_DOUBLE_EQ(ConstantEstimator(-0.5).EstimateCardinality(q, rows), 1.0);
  EXPECT_DOUBLE_EQ(ConstantEstimator(7.5).EstimateCardinality(q, rows), 100.0);
  EXPECT_DOUBLE_EQ(ConstantEstimator(0.25).EstimateCardinality(q, rows), 25.0);

  // The batched path applies the same clamp.
  ConstantEstimator bad(std::nan(""));
  const auto cards = bad.EstimateCardinalityBatch({q, q}, rows);
  ASSERT_EQ(cards.size(), 2u);
  EXPECT_DOUBLE_EQ(cards[0], 1.0);
  EXPECT_DOUBLE_EQ(cards[1], 1.0);

  // And a NaN-emitting estimator yields finite Q-errors end to end.
  Workload wl;
  wl.push_back({q, 4});
  const auto errs = EvaluateQErrors(bad, wl, rows);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_DOUBLE_EQ(errs[0], 4.0);
}

// The base-class batch fallback must agree with the scalar path.
TEST(EstimatorBatchTest, DefaultBatchMatchesLoop) {
  Query q1;
  q1.predicates.push_back({0, PredOp::kGe, 20});
  Query q2;
  ConstantEstimator est(0.125);
  const auto sels = est.EstimateSelectivityBatch({q1, q2});
  ASSERT_EQ(sels.size(), 2u);
  EXPECT_DOUBLE_EQ(sels[0], est.EstimateSelectivity(q1));
  EXPECT_DOUBLE_EQ(sels[1], est.EstimateSelectivity(q2));
}

}  // namespace
}  // namespace duet::query
