// Packed-weight backend parity suite (tensor/packed_weights.h).
//
// The backend contract under test:
//  * kDenseF32 is bitwise-identical to the pre-packing inference path,
//  * kCsrF32 is bitwise-identical to dense (k-ascending accumulation, only
//    exact zeros skipped) at every batch size,
//  * kInt8 is accuracy-bounded per layer (|err_j| <= 0.5 * scale_j *
//    sum|x|) and end-to-end (median q-error within 1% of fp32 on the
//    seeded synthetic workload),
//  * every backend obeys the packed-cache coherence rules (optimizer step,
//    checkpoint load, ParameterMutationGuard) and the batch-invariance
//    contract the serving engine shards under.
#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "baselines/naru/naru_model.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "nn/layers.h"
#include "nn/made.h"
#include "query/workload.h"
#include "serve/serving_engine.h"
#include "tensor/optimizer.h"
#include "tensor/packed_weights.h"
#include "tensor/tensor.h"

namespace duet {
namespace {

using query::Query;
using tensor::Tensor;
using tensor::WeightBackend;

data::Table SmallTable() { return data::CensusLike(600, 11); }

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

/// A ~50%-sparse mask patterned like a MADE connectivity block.
Tensor CheckeredMask(int64_t in, int64_t out) {
  Tensor mask = Tensor::Zeros({in, out});
  float* m = mask.data();
  for (int64_t i = 0; i < in * out; ++i) m[i] = ((i / 3 + i % 7) % 2 == 0) ? 1.0f : 0.0f;
  return mask;
}

Tensor RandomInput(int64_t b, int64_t d, uint64_t seed, float zero_prob = 0.3f) {
  Rng rng(seed);
  Tensor x = Tensor::Zeros({b, d});
  float* p = x.data();
  for (int64_t i = 0; i < b * d; ++i) {
    // Mix in exact zeros: Duet inputs are one-hot-sparse and both GEMV fast
    // paths key on them.
    p[i] = rng.UniformFloat() < zero_prob ? 0.0f : (rng.UniformFloat() * 2.0f - 1.0f);
  }
  return x;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

// ----- kernel-level tests --------------------------------------------------

TEST(PackWeightsTest, CsrLayoutMatchesDenseNonzeros) {
  Tensor w = Tensor::FromVector({3, 4}, {1.0f, 0.0f, 2.0f, 0.0f,    //
                                         0.0f, 0.0f, 0.0f, 0.0f,    //
                                         -3.0f, 4.0f, 0.0f, -0.0f});
  const auto packed = tensor::PackWeights(w, WeightBackend::kCsrF32);
  // Row 0 holds runs {0,len 1} and {2,len 1}; row 1 is empty; row 2 is one
  // run {0,len 2} (its trailing -0.0f is dropped along with exact zeros).
  EXPECT_EQ(packed->row_ptr, (std::vector<int32_t>{0, 2, 2, 3}));
  EXPECT_EQ(packed->val_ptr, (std::vector<int32_t>{0, 2, 2, 4}));
  EXPECT_EQ(packed->run_start16, (std::vector<uint16_t>{0, 2, 0}));  // narrow: out <= 65535
  EXPECT_EQ(packed->run_len16, (std::vector<uint16_t>{1, 1, 2}));
  EXPECT_TRUE(packed->run_start32.empty());
  EXPECT_EQ(packed->values, (std::vector<float>{1.0f, 2.0f, -3.0f, 4.0f}));
  EXPECT_EQ(packed->nnz(), 4);
  EXPECT_EQ(packed->bytes(),
            8u * sizeof(int32_t) + 6u * sizeof(uint16_t) + 4u * sizeof(float));
}

TEST(PackWeightsTest, Int8QuantizesPerOutputChannel) {
  Tensor w = Tensor::FromVector({2, 3}, {127.0f, -0.5f, 0.0f,  //
                                         -254.0f, 1.0f, 0.0f});
  const auto packed = tensor::PackWeights(w, WeightBackend::kInt8);
  ASSERT_EQ(packed->scales.size(), 3u);
  EXPECT_FLOAT_EQ(packed->scales[0], 2.0f);           // max|col0| = 254
  EXPECT_FLOAT_EQ(packed->scales[1], 1.0f / 127.0f);  // max|col1| = 1
  EXPECT_FLOAT_EQ(packed->scales[2], 0.0f);           // all-zero channel
  const std::vector<int8_t> expected = {64, -64, 0, -127, 127, 0};
  EXPECT_EQ(packed->quantized, expected);
  EXPECT_EQ(packed->bytes(), 6u * sizeof(int8_t) + 3u * sizeof(float));
}

TEST(PackedGemvTest, CsrBitwiseEqualsDense) {
  Rng rng(7);
  const int64_t in = 37, out = 29;
  Tensor w = Tensor::Zeros({in, out});
  for (int64_t i = 0; i < in * out; ++i) {
    w.data()[i] = (i % 2 == 0) ? 0.0f : (rng.UniformFloat() * 2.0f - 1.0f);
  }
  const Tensor x = RandomInput(1, in, 11);
  const auto dense = tensor::PackWeights(w, WeightBackend::kDenseF32);
  const auto csr = tensor::PackWeights(w, WeightBackend::kCsrF32);
  std::vector<float> yd(static_cast<size_t>(out), 0.0f), yc(static_cast<size_t>(out), 0.0f);
  tensor::PackedGemv(*dense, x.data(), yd.data());
  tensor::PackedGemv(*csr, x.data(), yc.data());
  EXPECT_EQ(yd, yc);  // bitwise: only exact zeros may be skipped
}

// ----- parameterized backend suite -----------------------------------------

class BackendTest : public ::testing::TestWithParam<WeightBackend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(WeightBackend::kDenseF32, WeightBackend::kCsrF32,
                                           WeightBackend::kInt8),
                         [](const ::testing::TestParamInfo<WeightBackend>& info) {
                           return tensor::WeightBackendName(info.param);
                         });

/// Exact backends (dense, CSR) must match the tracked reference bitwise;
/// int8 must stay inside the per-channel quantization bound
/// |err_j| <= 0.5 * scale_j * sum_k |x_k| (+ tiny fp slack).
void ExpectLayerParity(const Tensor& got, const Tensor& reference, WeightBackend backend,
                       const Tensor& x, const Tensor& effective_w) {
  ASSERT_EQ(got.shape(), reference.shape());
  if (backend != WeightBackend::kInt8) {
    EXPECT_EQ(got.value_vector(), reference.value_vector());
    return;
  }
  const int64_t b = got.dim(0), out = got.dim(1), in = x.dim(1);
  std::vector<float> scale(static_cast<size_t>(out), 0.0f);
  for (int64_t k = 0; k < in; ++k) {
    for (int64_t j = 0; j < out; ++j) {
      scale[static_cast<size_t>(j)] =
          std::max(scale[static_cast<size_t>(j)], std::fabs(effective_w.data()[k * out + j]));
    }
  }
  for (int64_t r = 0; r < b; ++r) {
    float abs_x = 0.0f;
    for (int64_t k = 0; k < in; ++k) abs_x += std::fabs(x.data()[r * in + k]);
    for (int64_t j = 0; j < out; ++j) {
      const float atol =
          0.5f * (scale[static_cast<size_t>(j)] / 127.0f) * abs_x * 1.001f + 1e-5f;
      EXPECT_NEAR(got.value_vector()[static_cast<size_t>(r * out + j)],
                  reference.value_vector()[static_cast<size_t>(r * out + j)], atol)
          << "row " << r << " channel " << j;
    }
  }
}

TEST_P(BackendTest, MaskedLinearMatchesTrackedReference) {
  const WeightBackend backend = GetParam();
  for (uint64_t seed : {3u, 4u, 5u}) {
    Rng rng(seed);
    const int64_t in = 40 + static_cast<int64_t>(seed), out = 23 + static_cast<int64_t>(seed);
    nn::MaskedLinear layer(in, out, CheckeredMask(in, out), rng);
    layer.SetInferenceBackend(backend);
    for (int64_t b : {1, 5}) {
      const Tensor x = RandomInput(b, in, seed * 101);
      const Tensor reference = layer.Forward(x).Clone();  // tracked fp32 path
      Tensor got;
      {
        tensor::NoGradScope no_grad;
        got = layer.Forward(x).Clone();
      }
      const Tensor wm = tensor::Mul(layer.weight(), layer.mask());
      ExpectLayerParity(got, reference, backend, x, wm);
    }
  }
}

TEST_P(BackendTest, LinearMatchesTrackedReference) {
  const WeightBackend backend = GetParam();
  Rng rng(9);
  nn::Linear layer(31, 17, rng);
  layer.SetInferenceBackend(backend);
  const Tensor x = RandomInput(4, 31, 77);
  const Tensor reference = layer.Forward(x).Clone();
  Tensor got;
  {
    tensor::NoGradScope no_grad;
    got = layer.Forward(x).Clone();
  }
  ExpectLayerParity(got, reference, backend, x, layer.weight());
}

/// Random MADE configs: dense and CSR agree bitwise end-to-end; int8 stays
/// finite and close (compounding per-layer bounds are checked above).
TEST_P(BackendTest, MadeForwardParityOnRandomConfigs) {
  const WeightBackend backend = GetParam();
  struct Config {
    std::vector<int64_t> hidden;
    bool residual;
    uint64_t seed;
  };
  const std::vector<Config> configs = {
      {{32, 48}, false, 21}, {{64}, false, 22}, {{40, 40}, true, 23}};
  for (const Config& cfg : configs) {
    nn::MadeOptions opt;
    opt.input_widths = {5, 9, 4, 7};
    opt.output_widths = {6, 11, 3, 8};
    opt.hidden_sizes = cfg.hidden;
    opt.residual = cfg.residual;
    Rng rng(cfg.seed);
    nn::Made made(opt, rng);
    const Tensor x = RandomInput(6, made.input_dim(), cfg.seed * 7, /*zero_prob=*/0.5f);
    // Reference: the dense inference path (the pre-refactor behavior).
    made.SetInferenceBackend(WeightBackend::kDenseF32);
    Tensor reference, got;
    {
      tensor::NoGradScope no_grad;
      reference = made.Forward(x).Clone();
    }
    made.SetInferenceBackend(backend);
    {
      tensor::NoGradScope no_grad;
      got = made.Forward(x).Clone();
    }
    ASSERT_EQ(got.shape(), reference.shape());
    if (backend != WeightBackend::kInt8) {
      EXPECT_EQ(got.value_vector(), reference.value_vector())
          << "residual=" << cfg.residual << " seed=" << cfg.seed;
    } else {
      for (int64_t i = 0; i < got.numel(); ++i) {
        EXPECT_NEAR(got.value_vector()[static_cast<size_t>(i)],
                    reference.value_vector()[static_cast<size_t>(i)], 0.35f)
            << "logit " << i;
      }
    }
  }
}

/// The serving contract: per-row results are independent of how queries are
/// grouped into batches — for every backend, including int8 (its kernels
/// accumulate k-ascending per row too).
TEST_P(BackendTest, EstimatesAreBatchSizeInvariant) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  model.SetInferenceBackend(GetParam());
  const std::vector<Query> queries = MakeQueries(t, 30);

  const std::vector<double> whole = model.EstimateSelectivityBatch(queries);
  std::vector<double> chunked;
  for (size_t begin = 0; begin < queries.size(); begin += 7) {
    const size_t end = std::min(queries.size(), begin + 7);
    const std::vector<Query> chunk(queries.begin() + static_cast<int64_t>(begin),
                                   queries.begin() + static_cast<int64_t>(end));
    const std::vector<double> part = model.EstimateSelectivityBatch(chunk);
    chunked.insert(chunked.end(), part.begin(), part.end());
  }
  EXPECT_EQ(whole, chunked);
  // And the scalar path agrees with batch 1 of the batch path.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(model.EstimateSelectivity(queries[i]), whole[i]) << "query " << i;
  }
}

/// Cache invalidation (the test_serve masked-weight cache suite, rerun per
/// backend): an optimizer step must repack, and the repacked forward must
/// match a cache-cold layer bitwise.
TEST_P(BackendTest, PackedCacheInvalidatedByOptimizerStep) {
  const WeightBackend backend = GetParam();
  Rng rng(5);
  nn::MaskedLinear layer(6, 4, CheckeredMask(6, 4), rng);
  layer.SetInferenceBackend(backend);
  const Tensor x = RandomInput(2, 6, 55);

  auto no_grad_forward = [&] {
    tensor::NoGradScope scope;
    return layer.Forward(x).Clone();
  };

  const Tensor before = no_grad_forward();
  {
    tensor::Sgd sgd({layer.parameters()}, /*lr=*/0.1f);
    for (const Tensor& p : layer.parameters()) {
      Tensor param = p;  // shared handle; grads live on the impl
      float* g = param.grad_data();
      for (int64_t i = 0; i < param.numel(); ++i) g[i] = 1.0f;
    }
    sgd.Step();
  }
  const Tensor after = no_grad_forward();
  EXPECT_NE(after.value_vector(), before.value_vector())
      << "cache served stale packed weights after an optimizer step";

  // Cache-cold reference: a fresh layer with identical weights (checkpoint
  // round-trip) must produce the identical packed forward.
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    layer.Save(w);
  }
  Rng rng2(6);
  nn::MaskedLinear fresh(6, 4, CheckeredMask(6, 4), rng2);
  fresh.SetInferenceBackend(backend);
  {
    BinaryReader r(buf);
    fresh.Load(r);
  }
  tensor::NoGradScope scope;
  EXPECT_EQ(fresh.Forward(x).value_vector(), after.value_vector());
}

/// Checkpoint round-trip through a full model: post-load estimates must be
/// identical to a cache-cold model's (stale packs must not survive Load).
TEST_P(BackendTest, PackedCacheInvalidatedByCheckpointLoad) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  model.SetInferenceBackend(GetParam());
  const std::vector<Query> queries = MakeQueries(t, 12);

  const std::vector<double> before = model.EstimateSelectivityBatch(queries);

  core::TrainOptions topt;
  topt.epochs = 1;
  topt.batch_size = 128;
  core::DuetTrainer(model, topt).Train();
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    model.Save(w);
  }
  const std::vector<double> after = model.EstimateSelectivityBatch(queries);
  EXPECT_NE(after, before) << "estimates unchanged after training: stale pack?";

  core::DuetModel fresh(t, opt);
  fresh.SetInferenceBackend(GetParam());
  {
    BinaryReader r(buf);
    fresh.Load(r);
  }
  EXPECT_EQ(fresh.EstimateSelectivityBatch(queries), after);
}

/// Sharded serving per backend: the engine applies its configured backend
/// and stays bitwise-equal to the single-thread batch path (which, for
/// int8, runs the same int8 kernels — invariance, not fp32 equality).
TEST_P(BackendTest, ServingEngineShardsBitwiseUnderBackend) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  serve::ServingOptions sopt;
  sopt.num_workers = 4;
  sopt.min_shard = 4;
  sopt.backend = GetParam();
  serve::ServingEngine engine(est, sopt);
  const std::vector<Query> queries = MakeQueries(t, 33);

  const std::vector<double> sharded = engine.EstimateBatch(queries);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
  EXPECT_EQ(sharded, reference);

  const serve::ServingStats stats = engine.stats();
  EXPECT_GT(stats.packed_weight_bytes, 0u)
      << "packed caches unpopulated after serving traffic";
}

// ----- memory observability ------------------------------------------------

TEST(PackedCacheBytesTest, BackendFootprintsAreOrdered) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  const std::vector<Query> queries = MakeQueries(t, 4);

  EXPECT_EQ(model.CachedBytes(), 0u) << "no forward yet: cache must be empty";

  auto bytes_under = [&](WeightBackend b) {
    model.SetInferenceBackend(b);
    model.EstimateSelectivityBatch(queries);  // populate lazily
    return model.CachedBytes();
  };
  const uint64_t dense = bytes_under(WeightBackend::kDenseF32);
  const uint64_t csr = bytes_under(WeightBackend::kCsrF32);
  const uint64_t int8 = bytes_under(WeightBackend::kInt8);

  // Dense caches a full W o M copy per masked layer (4 bytes/weight; the
  // PR-2 "silent doubling"). MADE masks are ~50% zeros, so CSR's 8 bytes
  // per nonzero lands near dense, and int8 is ~4x smaller than dense.
  EXPECT_GT(dense, 0u);
  EXPECT_LT(csr, dense);
  EXPECT_LT(int8, dense / 3);
  EXPECT_GT(model.SizeMB(), 0.0);
}

/// Every Made-backed estimator must forward backend selection and report
/// its packed cache — not inherit the silent no-op defaults (a regression
/// here means ServingOptions::backend is ignored and packed_weight_bytes
/// reads 0 for that estimator).
TEST(PackedCacheBytesTest, NaruEstimatorForwardsBackendAndReportsBytes) {
  const data::Table t = data::CensusLike(200, 5);
  baselines::NaruOptions nopt;
  nopt.hidden_sizes = {16, 16};
  baselines::NaruModel model(t, nopt);
  baselines::NaruEstimator est(model);
  const std::vector<Query> queries = MakeQueries(t, 2);

  est.SetInferenceBackend(WeightBackend::kInt8);
  est.EstimateSelectivityBatch(queries);
  EXPECT_GT(est.PackedWeightBytes(), 0u);
  EXPECT_EQ(est.PackedWeightBytes(), model.made().CachedBytes());
  // int8 packs are ~4x smaller than the fp32 parameters they shadow.
  EXPECT_LT(static_cast<double>(est.PackedWeightBytes()),
            model.made().NumParams() * sizeof(float) / 2.0);
}

TEST(PackedCacheBytesTest, MaskedLinearCachedBytesMatchesBackend) {
  Rng rng(5);
  const int64_t in = 64, out = 32;
  nn::MaskedLinear layer(in, out, CheckeredMask(in, out), rng);
  const Tensor x = RandomInput(1, in, 3);
  EXPECT_EQ(layer.CachedBytes(), 0u);

  tensor::NoGradScope no_grad;
  layer.Forward(x);
  EXPECT_EQ(layer.CachedBytes(), static_cast<uint64_t>(in * out) * sizeof(float));

  layer.SetInferenceBackend(WeightBackend::kInt8);
  layer.Forward(x);  // repack on demand
  EXPECT_EQ(layer.CachedBytes(),
            static_cast<uint64_t>(in * out) * sizeof(int8_t) +
                static_cast<uint64_t>(out) * sizeof(float));
}

TEST(PackedCacheBytesTest, LinearDropsStalePackWhenReturnedToDense) {
  Rng rng(6);
  nn::Linear layer(24, 12, rng);
  const Tensor x = RandomInput(1, 24, 9);
  tensor::NoGradScope no_grad;

  layer.SetInferenceBackend(WeightBackend::kInt8);
  layer.Forward(x);
  EXPECT_GT(layer.CachedBytes(), 0u);

  // Dense inference multiplies by W directly; the int8 pack must not stay
  // allocated (and counted) behind a path that will never read it.
  layer.SetInferenceBackend(WeightBackend::kDenseF32);
  EXPECT_EQ(layer.CachedBytes(), 0u);
  layer.Forward(x);
  EXPECT_EQ(layer.CachedBytes(), 0u);
}

// ----- end-to-end accuracy guard -------------------------------------------

/// int8 must track fp32 closely on the seeded synthetic workload: median
/// q-error within 1% (CSR is bitwise so its guard is exact equality).
TEST(BackendAccuracyTest, Int8MedianQErrorWithinOnePercentOfFp32) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 128;
  core::DuetTrainer(model, topt).Train();

  query::WorkloadSpec spec;
  spec.num_queries = 80;
  spec.seed = 97;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  std::vector<Query> queries;
  for (const auto& lq : wl) queries.push_back(lq.query);
  const int64_t rows = t.num_rows();

  auto qerrors_under = [&](WeightBackend b) {
    model.SetInferenceBackend(b);
    const std::vector<double> sels = model.EstimateSelectivityBatch(queries);
    std::vector<double> errs;
    errs.reserve(sels.size());
    for (size_t i = 0; i < sels.size(); ++i) {
      const double est = std::max(1.0, sels[i] * static_cast<double>(rows));
      errs.push_back(query::QError(est, static_cast<double>(wl[i].cardinality)));
    }
    return errs;
  };
  const double median_fp32 = Median(qerrors_under(WeightBackend::kDenseF32));
  const double median_csr = Median(qerrors_under(WeightBackend::kCsrF32));
  const double median_int8 = Median(qerrors_under(WeightBackend::kInt8));

  EXPECT_EQ(median_csr, median_fp32) << "CSR is a bitwise backend";
  EXPECT_LE(std::fabs(median_int8 - median_fp32), 0.01 * median_fp32)
      << "int8 median " << median_int8 << " vs fp32 " << median_fp32;
}

// ----- ParameterMutationGuard ----------------------------------------------

TEST(ParameterMutationGuardTest, BumpsVersionOnScopeExit) {
  const uint64_t before = tensor::ParameterVersion();
  {
    tensor::ParameterMutationGuard guard;
    EXPECT_EQ(tensor::ParameterVersion(), before) << "guard must bump on exit, not entry";
  }
  EXPECT_EQ(tensor::ParameterVersion(), before + 1);
}

TEST(ParameterMutationGuardTest, RawDataMutationUnderGuardInvalidatesPack) {
  Rng rng(8);
  nn::MaskedLinear layer(8, 6, CheckeredMask(8, 6), rng);
  layer.SetInferenceBackend(WeightBackend::kCsrF32);
  const Tensor x = RandomInput(1, 8, 21);

  auto no_grad_forward = [&] {
    tensor::NoGradScope scope;
    return layer.Forward(x).Clone();
  };
  const Tensor before = no_grad_forward();
  {
    // The footgun this guard fixes: mutating W through data() used to
    // require remembering a manual BumpParameterVersion() call.
    tensor::ParameterMutationGuard mutation;
    Tensor w = layer.parameters()[0];
    for (int64_t i = 0; i < w.numel(); ++i) w.data()[i] += 0.25f;
  }
  const Tensor after = no_grad_forward();
  EXPECT_NE(after.value_vector(), before.value_vector())
      << "packed cache survived a guarded raw-data() mutation";
}

}  // namespace
}  // namespace duet
