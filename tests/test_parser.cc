// WHERE-clause parser tests: grammar coverage, DNF structure, schema
// resolution, and exhaustive error reporting (user input must never abort).
#include <string>
#include <vector>

#include "core/disjunction.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/parser.h"

namespace duet::query {
namespace {

data::Table ThreeColumnTable() {
  std::vector<double> dict = {0, 1, 2, 3, 4, 5, 6, 7};
  auto codes = [](std::initializer_list<int32_t> v) { return std::vector<int32_t>(v); };
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("age", codes({0, 1, 2, 3, 4, 5, 6, 7}), dict));
  cols.push_back(data::Column::FromCodes("income", codes({7, 6, 5, 4, 3, 2, 1, 0}), dict));
  cols.push_back(data::Column::FromCodes("zip_code", codes({0, 0, 1, 1, 2, 2, 3, 3}), dict));
  return data::Table("people", std::move(cols));
}

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : table_(ThreeColumnTable()) {}

  ParsedWhere Parse(const std::string& text) {
    ParsedWhere out;
    std::string error;
    EXPECT_TRUE(ParseWhere(text, table_, &out, &error)) << error;
    return out;
  }

  std::string ParseError(const std::string& text) {
    ParsedWhere out;
    std::string error;
    EXPECT_FALSE(ParseWhere(text, table_, &out, &error)) << text;
    return error;
  }

  data::Table table_;
};

TEST_F(ParserTest, SinglePredicate) {
  const ParsedWhere w = Parse("age >= 3");
  ASSERT_TRUE(w.is_conjunction());
  ASSERT_EQ(w.clauses[0].predicates.size(), 1u);
  EXPECT_EQ(w.clauses[0].predicates[0].col, 0);
  EXPECT_EQ(w.clauses[0].predicates[0].op, PredOp::kGe);
  EXPECT_DOUBLE_EQ(w.clauses[0].predicates[0].value, 3.0);
}

TEST_F(ParserTest, AllOperators) {
  const struct {
    const char* text;
    PredOp op;
  } cases[] = {{"age = 1", PredOp::kEq},  {"age == 1", PredOp::kEq},
               {"age < 1", PredOp::kLt},  {"age > 1", PredOp::kGt},
               {"age <= 1", PredOp::kLe}, {"age >= 1", PredOp::kGe}};
  for (const auto& c : cases) {
    const ParsedWhere w = Parse(c.text);
    EXPECT_EQ(w.clauses[0].predicates[0].op, c.op) << c.text;
  }
}

TEST_F(ParserTest, ConjunctionKeepsOneClause) {
  const ParsedWhere w = Parse("age >= 2 AND income < 5 AND zip_code = 1");
  ASSERT_TRUE(w.is_conjunction());
  EXPECT_EQ(w.clauses[0].predicates.size(), 3u);
  EXPECT_EQ(w.clauses[0].predicates[1].col, 1);
  EXPECT_EQ(w.clauses[0].predicates[2].col, 2);
}

TEST_F(ParserTest, OrSplitsClausesAndBindsLooserThanAnd) {
  const ParsedWhere w = Parse("age >= 6 OR income <= 1 AND zip_code = 0");
  ASSERT_EQ(w.clauses.size(), 2u);
  EXPECT_EQ(w.clauses[0].predicates.size(), 1u);  // age >= 6
  EXPECT_EQ(w.clauses[1].predicates.size(), 2u);  // income <= 1 AND zip = 0
}

TEST_F(ParserTest, KeywordsCaseInsensitive) {
  const ParsedWhere w = Parse("age >= 1 and income < 7 Or zip_code = 2");
  EXPECT_EQ(w.clauses.size(), 2u);
}

TEST_F(ParserTest, NumbersWithSignsDecimalsExponents) {
  const ParsedWhere w = Parse("age >= -1.5 AND income < 2.5e1");
  EXPECT_DOUBLE_EQ(w.clauses[0].predicates[0].value, -1.5);
  EXPECT_DOUBLE_EQ(w.clauses[0].predicates[1].value, 25.0);
}

TEST_F(ParserTest, TwoSidedRangeOnOneColumn) {
  const ParsedWhere w = Parse("age >= 2 AND age <= 5");
  ASSERT_TRUE(w.is_conjunction());
  EXPECT_TRUE(w.clauses[0].HasMultiPredicateColumn());
  const auto ranges = w.clauses[0].PerColumnRanges(table_);
  EXPECT_EQ(ranges[0].lo, 2);
  EXPECT_EQ(ranges[0].hi, 6);
}

TEST_F(ParserTest, ParsedQueryMatchesExactEvaluation) {
  // End-to-end: the parsed DNF evaluated by inclusion-exclusion over the
  // exact evaluator equals a hand-counted result.
  const ParsedWhere w = Parse("age < 2 OR income = 7");
  // age < 2 -> rows 0,1; income = 7 -> row 0; union = rows {0, 1}.
  class Exact : public CardinalityEstimator {
   public:
    explicit Exact(const data::Table& t) : table_(t), eval_(t) {}
    double EstimateSelectivity(const Query& q) override {
      return static_cast<double>(eval_.Count(q)) / static_cast<double>(table_.num_rows());
    }
    std::string name() const override { return "exact"; }

   private:
    const data::Table& table_;
    ExactEvaluator eval_;
  } exact(table_);
  const double sel = core::EstimateDisjunction(exact, w.clauses);
  EXPECT_DOUBLE_EQ(sel, 2.0 / 8.0);
}

// --- error reporting: every malformed input returns false + a message ---

TEST_F(ParserTest, ErrorUnknownColumn) {
  EXPECT_NE(ParseError("salary > 3").find("unknown column 'salary'"), std::string::npos);
}

TEST_F(ParserTest, ErrorMissingOperator) {
  EXPECT_NE(ParseError("age 3").find("expected an operator"), std::string::npos);
}

TEST_F(ParserTest, ErrorMissingValue) {
  EXPECT_NE(ParseError("age >=").find("expected a numeric constant"), std::string::npos);
}

TEST_F(ParserTest, ErrorDanglingConnective) {
  EXPECT_NE(ParseError("age >= 1 AND").find("dangling"), std::string::npos);
}

TEST_F(ParserTest, ErrorEmptyInput) {
  EXPECT_NE(ParseError("").find("empty expression"), std::string::npos);
  EXPECT_NE(ParseError("   ").find("empty expression"), std::string::npos);
}

TEST_F(ParserTest, ErrorUnsupportedNotEquals) {
  EXPECT_NE(ParseError("age != 3").find("not supported"), std::string::npos);
}

TEST_F(ParserTest, ErrorGarbageCharacter) {
  EXPECT_NE(ParseError("age >= 3 ; drop").find("unexpected character"), std::string::npos);
}

TEST_F(ParserTest, ErrorMissingConnective) {
  EXPECT_NE(ParseError("age >= 3 income < 2").find("expected AND/OR"), std::string::npos);
}

TEST_F(ParserTest, ErrorReportsPosition) {
  const std::string err = ParseError("age >= 3 AND bogus < 1");
  EXPECT_NE(err.find("position 13"), std::string::npos) << err;
}

TEST_F(ParserTest, OutUntouchedOnFailure) {
  ParsedWhere out;
  out.clauses.resize(3);
  std::string error;
  EXPECT_FALSE(ParseWhere("nope", table_, &out, &error));
  EXPECT_EQ(out.clauses.size(), 3u) << "failed parse must not clobber *out";
}

}  // namespace
}  // namespace duet::query
