// Plan-cost suite (`ctest -L optimizer`): the provider-driven join-order
// planner end to end against the serving stack (docs/optimizer.md).
//
// Properties pinned here:
//  * the level-batched DP over the oracle provider finds the brute-force
//    optimal left-deep order on random star schemas, and its P-error is
//    EXACTLY 1.0 (not approximately — the oracle provider serves the same
//    bitwise numbers OptimalPlan() runs on);
//  * chosen plans are a pure function of the provider's cardinalities, so
//    the serving engine's bitwise invariants (shard count, fused vs unfused
//    dispatch, forced SIMD tier, sequential vs batched fetching) make the
//    chosen plan bitwise-identical across every engine configuration;
//  * a remote planner (net::RpcClient against a zoo-mode NetServer) plans
//    bitwise-identically to the in-process provider;
//  * resilience: a breaker-tripped engine or an expired deadline degrades
//    the plan search to flagged fallback estimates — the planner still
//    completes with a valid order and a finite P-error, never a crash;
//  * zero-cardinality answers (a filter matching nothing) clamp cleanly.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "baselines/traditional/independence.h"
#include "common/rng.h"
#include "core/duet_model.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "optimizer/card_provider.h"
#include "optimizer/planner.h"
#include "query/query.h"
#include "serve/fault_injector.h"
#include "serve/model_zoo.h"
#include "serve/serving_engine.h"
#include "tensor/packed_weights.h"
#include "tensor/simd_dispatch.h"

namespace duet {
namespace {

using optimizer::CardinalityProvider;
using optimizer::ComposedProviderOptions;
using optimizer::EstimatorCardinalityProvider;
using optimizer::ExactCardinalityProvider;
using optimizer::JoinKeyStats;
using optimizer::JoinOrderPlanner;
using optimizer::JoinPlan;
using optimizer::PlanSearchResult;
using optimizer::RemoteCardinalityProvider;
using optimizer::ServingCardinalityProvider;
using optimizer::StarJoinQuery;
using query::PredOp;
using query::Query;

/// Table with a shared-domain key column (col 0) and a value column (col 1).
data::Table KeyValueTable(const std::string& name, const std::vector<int32_t>& keys,
                          const std::vector<int32_t>& values, int32_t key_ndv,
                          int32_t val_ndv) {
  std::vector<double> key_dict, val_dict;
  for (int32_t v = 0; v < key_ndv; ++v) key_dict.push_back(v);
  for (int32_t v = 0; v < val_ndv; ++v) val_dict.push_back(v);
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("key", keys, key_dict));
  cols.push_back(data::Column::FromCodes("val", values, val_dict));
  return data::Table(name, std::move(cols));
}

data::Table RandomTable(const std::string& name, int64_t rows, int32_t key_ndv,
                        int32_t val_ndv, Rng& rng) {
  std::vector<int32_t> keys(static_cast<size_t>(rows)), vals(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    keys[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(key_ndv)));
    vals[static_cast<size_t>(i)] =
        static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(val_ndv)));
  }
  return KeyValueTable(name, keys, vals, key_ndv, val_ndv);
}

/// Random per-table filter on the value column: none / equality / >= range.
Query RandomFilter(int32_t val_ndv, Rng& rng) {
  Query q;
  const uint64_t kind = rng.UniformInt(3);
  if (kind == 1) {
    q.predicates.push_back(
        {1, PredOp::kEq, static_cast<double>(rng.UniformInt(static_cast<uint64_t>(val_ndv)))});
  } else if (kind == 2) {
    q.predicates.push_back(
        {1, PredOp::kGe, static_cast<double>(rng.UniformInt(static_cast<uint64_t>(val_ndv)))});
  }
  return q;
}

std::string TempPath(const std::string& name) {
  return "/tmp/duet_plancost_" + std::to_string(::getpid()) + "_" + name + ".duet";
}

core::DuetModelOptions TinyModelOptions(uint64_t seed) {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {12, 12};
  opt.residual = true;
  opt.seed = seed;
  return opt;
}

/// Serving bed: three star tables of very different sizes, one frozen
/// artifact per table registered in a zoo under "tbl-<i>". Estimation
/// accuracy is irrelevant here — determinism and degradation flow are what
/// these tests pin — so the models are untrained (frozen at init).
struct PlanBed {
  explicit PlanBed(const std::string& tag) {
    Rng rng(17);
    tables.push_back(RandomTable("big", 600, 24, 6, rng));
    tables.push_back(RandomTable("mid", 240, 24, 6, rng));
    tables.push_back(RandomTable("small", 60, 24, 6, rng));
    for (size_t i = 0; i < tables.size(); ++i) {
      keys.push_back("tbl-" + std::to_string(i));
      paths.push_back(TempPath(tag + "_" + std::to_string(i)));
      core::DuetModel model(tables[i], TinyModelOptions(100 + i));
      model.SetInferenceBackend(tensor::WeightBackend::kCsrF32);
      model.SetPlanEnabled(true);
      model.EstimateSelectivityBatch({Query{}});  // compile the plan pre-write
      const artifact::ArtifactStatus st =
          artifact::WriteArtifact(paths[i], model, tensor::WeightBackend::kCsrF32);
      EXPECT_TRUE(st.ok) << st.error;
    }
  }
  ~PlanBed() {
    for (const std::string& p : paths) ::unlink(p.c_str());
  }

  void RegisterAll(serve::ModelZoo& zoo) const {
    for (size_t i = 0; i < keys.size(); ++i) zoo.Register(keys[i], paths[i]);
  }

  StarJoinQuery MakeStar(uint64_t seed) const {
    Rng rng(seed);
    StarJoinQuery star;
    for (const data::Table& t : tables) star.tables.push_back(&t);
    for (size_t i = 0; i < tables.size(); ++i) star.filters.push_back(RandomFilter(6, rng));
    star.join_col = 0;
    return star;
  }

  std::vector<data::Table> tables;
  std::vector<std::string> keys;
  std::vector<std::string> paths;
};

class PlanCostTest : public ::testing::Test {
 protected:
  void SetUp() override { serve::FaultInjector::DisarmAll(); }
  void TearDown() override { serve::FaultInjector::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// DP vs brute force + exact oracle
// ---------------------------------------------------------------------------

TEST_F(PlanCostTest, OracleDpMatchesBruteForceOnRandomStars) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const int k = 3 + static_cast<int>(rng.UniformInt(2));  // 3 or 4 tables
    std::vector<data::Table> tables;
    tables.reserve(static_cast<size_t>(k));
    for (int t = 0; t < k; ++t) {
      const int64_t rows = 40 + static_cast<int64_t>(rng.UniformInt(400));
      tables.push_back(RandomTable("t" + std::to_string(t), rows, 16, 5, rng));
    }
    StarJoinQuery star;
    for (const data::Table& t : tables) star.tables.push_back(&t);
    for (int t = 0; t < k; ++t) star.filters.push_back(RandomFilter(5, rng));
    star.join_col = 0;

    JoinOrderPlanner planner(star);
    ExactCardinalityProvider oracle(planner.exact());
    const PlanSearchResult res = planner.Plan(oracle);
    ASSERT_EQ(static_cast<int>(res.plan.order.size()), k);
    EXPECT_EQ(res.levels, k);
    EXPECT_EQ(res.degraded_estimates, 0u);

    // Brute force every left-deep permutation.
    std::vector<int> order(static_cast<size_t>(k));
    for (int t = 0; t < k; ++t) order[static_cast<size_t>(t)] = t;
    double brute = std::numeric_limits<double>::infinity();
    do {
      brute = std::min(brute, planner.TrueCOut(order));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_DOUBLE_EQ(res.plan.true_cost, brute) << "seed " << seed;

    // Oracle numbers == OptimalPlan numbers, so P-error is 1.0 EXACTLY.
    EXPECT_EQ(planner.PlanCostRatio(res.plan), 1.0) << "seed " << seed;
  }
}

TEST_F(PlanCostTest, EmptyFilterYieldsZeroCostPlanNotACrash) {
  Rng rng(5);
  std::vector<data::Table> tables;
  for (int t = 0; t < 3; ++t) {
    tables.push_back(RandomTable("t" + std::to_string(t), 120, 12, 4, rng));
  }
  StarJoinQuery star;
  for (const data::Table& t : tables) star.tables.push_back(&t);
  star.filters.assign(3, Query{});
  // Contradictory conjunction on table 1: val == 0 AND val == 1 selects
  // nothing, so every subset containing it has exact cardinality 0.
  star.filters[1].predicates.push_back({1, PredOp::kEq, 0.0});
  star.filters[1].predicates.push_back({1, PredOp::kEq, 1.0});
  star.join_col = 0;

  JoinOrderPlanner planner(star);
  ExactCardinalityProvider oracle(planner.exact());
  const PlanSearchResult res = planner.Plan(oracle);
  ASSERT_EQ(res.plan.order.size(), 3u);
  EXPECT_EQ(planner.PlanCostRatio(res.plan), 1.0);  // 0/0 guarded: (0+1)/(0+1)
  EXPECT_TRUE(std::isfinite(res.plan.true_cost));
}

// ---------------------------------------------------------------------------
// Bitwise determinism across serving configurations
// ---------------------------------------------------------------------------

TEST_F(PlanCostTest, ChosenPlanBitwiseIdenticalAcrossEngineConfigs) {
  PlanBed bed("det");
  const StarJoinQuery star = bed.MakeStar(7);
  JoinOrderPlanner planner(star);
  const JoinKeyStats stats(star.tables, star.join_col);

  const auto plan_with = [&](serve::ServingOptions sopt, ComposedProviderOptions popt) {
    serve::ModelZoo zoo;
    bed.RegisterAll(zoo);
    serve::ServingEngine engine(zoo, sopt);
    ServingCardinalityProvider provider(engine, bed.keys, stats, popt);
    return planner.Plan(provider);
  };

  serve::ServingOptions base_opts;
  base_opts.num_workers = 1;
  const PlanSearchResult baseline = plan_with(base_opts, {});
  ASSERT_EQ(baseline.plan.order.size(), 3u);
  EXPECT_EQ(baseline.degraded_estimates, 0u);

  // Shard count, fusion, sequential fetching and the unmemoized fan-out
  // must not move the plan by a single bit.
  {
    serve::ServingOptions opts;
    opts.num_workers = 4;
    const PlanSearchResult res = plan_with(opts, {});
    EXPECT_EQ(res.plan.order, baseline.plan.order);
    EXPECT_EQ(res.plan.estimated_cost, baseline.plan.estimated_cost);
    EXPECT_EQ(res.plan.true_cost, baseline.plan.true_cost);
  }
  {
    serve::ServingOptions opts;
    opts.num_workers = 1;
    opts.fuse_requests = false;
    const PlanSearchResult res = plan_with(opts, {});
    EXPECT_EQ(res.plan.order, baseline.plan.order);
    EXPECT_EQ(res.plan.estimated_cost, baseline.plan.estimated_cost);
  }
  {
    ComposedProviderOptions popt;
    popt.sequential = true;
    const PlanSearchResult res = plan_with(base_opts, popt);
    EXPECT_EQ(res.plan.order, baseline.plan.order);
    EXPECT_EQ(res.plan.estimated_cost, baseline.plan.estimated_cost);
  }
  {
    ComposedProviderOptions popt;
    popt.memoize = false;  // the raw per-subset fan-out
    const PlanSearchResult res = plan_with(base_opts, popt);
    EXPECT_GT(res.subset_requests, baseline.subset_requests - 1);
    EXPECT_EQ(res.plan.order, baseline.plan.order);
    EXPECT_EQ(res.plan.estimated_cost, baseline.plan.estimated_cost);
  }
}

TEST_F(PlanCostTest, ChosenPlanBitwiseIdenticalAcrossSimdTiers) {
  PlanBed bed("simd");
  const StarJoinQuery star = bed.MakeStar(9);
  JoinOrderPlanner planner(star);
  const JoinKeyStats stats(star.tables, star.join_col);

  const auto plan_once = [&]() {
    serve::ModelZoo zoo;
    bed.RegisterAll(zoo);
    serve::ServingOptions sopt;
    sopt.num_workers = 1;
    serve::ServingEngine engine(zoo, sopt);
    ServingCardinalityProvider provider(engine, bed.keys, stats);
    return planner.Plan(provider);
  };

  const std::string original = tensor::simd::ActiveIsaName();
  ASSERT_TRUE(tensor::simd::ForceIsa("scalar"));
  const PlanSearchResult scalar_res = plan_once();
  for (const char* tier : {"avx2", "avx512"}) {
    if (!tensor::simd::ForceIsa(tier)) continue;  // tier not supported here
    const PlanSearchResult res = plan_once();
    EXPECT_EQ(res.plan.order, scalar_res.plan.order) << tier;
    EXPECT_EQ(res.plan.estimated_cost, scalar_res.plan.estimated_cost) << tier;
  }
  EXPECT_TRUE(tensor::simd::ForceIsa(original));
}

// ---------------------------------------------------------------------------
// Remote planning over DuetRpc
// ---------------------------------------------------------------------------

TEST_F(PlanCostTest, RemotePlannerMatchesInProcessBitwise) {
  PlanBed bed("remote");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;
  serve::ServingEngine engine(zoo, sopt);
  net::NetServer server(engine);
  const net::WireStatus started = server.Start();
  ASSERT_TRUE(started.ok) << started.error;
  net::RpcClient client;
  const net::WireStatus connected = client.Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok) << connected.error;

  const StarJoinQuery star = bed.MakeStar(11);
  JoinOrderPlanner planner(star);
  const JoinKeyStats stats(star.tables, star.join_col);

  ServingCardinalityProvider local(engine, bed.keys, stats);
  RemoteCardinalityProvider remote(client, bed.keys, stats);
  const PlanSearchResult local_res = planner.Plan(local);
  const PlanSearchResult remote_res = planner.Plan(remote);

  EXPECT_EQ(remote_res.degraded_estimates, 0u);
  EXPECT_EQ(remote_res.plan.order, local_res.plan.order);
  EXPECT_EQ(remote_res.plan.estimated_cost, local_res.plan.estimated_cost);
  EXPECT_EQ(remote_res.plan.true_cost, local_res.plan.true_cost);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Degradation: breaker trips and expired deadlines
// ---------------------------------------------------------------------------

TEST_F(PlanCostTest, BreakerTrippedEngineDegradesPlanSearchNotCrashes) {
  if (!serve::FaultInjector::Enabled()) GTEST_SKIP() << "fault injection compiled out";
  PlanBed bed("fault");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;
  sopt.breaker_threshold = 2;
  serve::ServingEngine engine(zoo, sopt);
  baselines::IndependenceEstimator fallback(bed.tables[0]);
  engine.AttachFallback(&fallback);

  serve::FaultInjector::Arm(serve::FaultPoint::kNeuralForward, 1000000);
  const StarJoinQuery star = bed.MakeStar(13);
  JoinOrderPlanner planner(star);
  ServingCardinalityProvider provider(engine, bed.keys,
                                      JoinKeyStats(star.tables, star.join_col));
  const PlanSearchResult res = planner.Plan(provider);
  serve::FaultInjector::DisarmAll();

  // The planner completes on flagged fallback estimates: valid order,
  // every estimate degraded, finite P-error.
  ASSERT_EQ(res.plan.order.size(), 3u);
  EXPECT_GT(res.degraded_estimates, 0u);
  EXPECT_EQ(res.degraded_estimates, res.subset_requests);
  const double ratio = planner.PlanCostRatio(res.plan);
  EXPECT_TRUE(std::isfinite(ratio));
  EXPECT_GE(ratio, 1.0);
  EXPECT_GT(engine.stats().fallback_served, 0u);
}

TEST_F(PlanCostTest, ExpiredDeadlinesDegradeEveryEstimateButPlanCompletes) {
  PlanBed bed("deadline");
  serve::ModelZoo zoo;
  bed.RegisterAll(zoo);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;
  sopt.max_wait_us = 20000;  // scheduler waits far longer than the deadline
  serve::ServingEngine engine(zoo, sopt);

  ComposedProviderOptions popt;
  popt.deadline_us = 1;
  const StarJoinQuery star = bed.MakeStar(15);
  JoinOrderPlanner planner(star);
  ServingCardinalityProvider provider(engine, bed.keys,
                                      JoinKeyStats(star.tables, star.join_col), popt);
  const PlanSearchResult res = planner.Plan(provider);

  ASSERT_EQ(res.plan.order.size(), 3u);
  EXPECT_EQ(res.degraded_estimates, res.subset_requests);
  EXPECT_TRUE(std::isfinite(planner.PlanCostRatio(res.plan)));
  EXPECT_GT(engine.stats().deadline_missed, 0u);
}

// ---------------------------------------------------------------------------
// Classical provider sanity
// ---------------------------------------------------------------------------

TEST_F(PlanCostTest, ClassicalProviderPlansWithoutServingStack) {
  PlanBed bed("classical");
  const StarJoinQuery star = bed.MakeStar(19);
  JoinOrderPlanner planner(star);

  std::vector<std::unique_ptr<baselines::IndependenceEstimator>> owned;
  std::vector<query::CardinalityEstimator*> ests;
  for (const data::Table& t : bed.tables) {
    owned.push_back(std::make_unique<baselines::IndependenceEstimator>(t));
    ests.push_back(owned.back().get());
  }
  EstimatorCardinalityProvider provider(ests, JoinKeyStats(star.tables, star.join_col));
  const PlanSearchResult res = planner.Plan(provider);
  ASSERT_EQ(res.plan.order.size(), 3u);
  EXPECT_EQ(res.degraded_estimates, 0u);
  const double ratio = planner.PlanCostRatio(res.plan);
  EXPECT_TRUE(std::isfinite(ratio));
  EXPECT_GE(ratio, 1.0);
}

}  // namespace
}  // namespace duet
