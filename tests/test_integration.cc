// Integration tests: end-to-end flows across modules — train estimators on
// one substrate and compare them through the common interface, verify the
// paper's qualitative claims at test scale (determinism vs sampling
// variance, hybrid benefit, drift immunity shape), and exercise the
// checkpoint + re-estimate loop a deployment would use.
#include <cmath>
#include <memory>
#include <sstream>

#include "baselines/mscn/mscn_model.h"
#include "baselines/naru/naru_model.h"
#include "baselines/spn/spn.h"
#include "baselines/traditional/independence.h"
#include "baselines/traditional/mhist.h"
#include "baselines/traditional/sampling.h"
#include "baselines/uae/uae_model.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/estimator.h"
#include "query/workload.h"

namespace duet {
namespace {

using query::PredOp;
using query::Query;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new data::Table(data::CensusLike(2500, 31));
    query::WorkloadSpec train_spec;
    train_spec.num_queries = 300;
    train_spec.seed = 42;
    train_spec.gamma_num_predicates = true;
    train_wl_ = new query::Workload(query::WorkloadGenerator(*table_, train_spec).Generate());
    query::WorkloadSpec test_spec;
    test_spec.num_queries = 120;
    test_spec.seed = 1234;
    test_wl_ = new query::Workload(query::WorkloadGenerator(*table_, test_spec).Generate());

    core::DuetModelOptions mopt;
    mopt.hidden_sizes = {64, 64};
    mopt.residual = true;
    duet_ = new core::DuetModel(*table_, mopt);
    core::TrainOptions topt;
    topt.epochs = 10;
    topt.batch_size = 256;
    topt.train_workload = train_wl_;
    core::DuetTrainer(*duet_, topt).Train();

    baselines::NaruOptions nopt;
    nopt.hidden_sizes = {64, 64};
    nopt.residual = true;
    nopt.num_samples = 64;
    naru_ = new baselines::NaruModel(*table_, nopt);
    core::TrainOptions ntopt;
    ntopt.epochs = 10;
    ntopt.batch_size = 256;
    baselines::NaruTrainer(*naru_, ntopt).Train();
  }

  static data::Table* table_;
  static query::Workload* train_wl_;
  static query::Workload* test_wl_;
  static core::DuetModel* duet_;
  static baselines::NaruModel* naru_;
};

data::Table* PipelineTest::table_ = nullptr;
query::Workload* PipelineTest::train_wl_ = nullptr;
query::Workload* PipelineTest::test_wl_ = nullptr;
core::DuetModel* PipelineTest::duet_ = nullptr;
baselines::NaruModel* PipelineTest::naru_ = nullptr;

TEST_F(PipelineTest, TrainedDuetIsAccurate) {
  core::DuetEstimator est(*duet_);
  const auto errs = query::EvaluateQErrors(est, *test_wl_, table_->num_rows());
  EXPECT_LT(Percentile(errs, 50), 3.0);
  EXPECT_LT(Percentile(errs, 99), 60.0);
}

TEST_F(PipelineTest, TrainedNaruIsAccurate) {
  baselines::NaruEstimator est(*naru_);
  const auto errs = query::EvaluateQErrors(est, *test_wl_, table_->num_rows());
  EXPECT_LT(Percentile(errs, 50), 3.0);
}

TEST_F(PipelineTest, DuetIsDeterministicNaruIsNot) {
  // Paper Problem 4 at test scale: repeat every test query twice.
  core::DuetEstimator duet_est(*duet_);
  bool naru_varies = false;
  for (const auto& lq : *test_wl_) {
    const double a = duet_est.EstimateSelectivity(lq.query);
    const double b = duet_est.EstimateSelectivity(lq.query);
    ASSERT_EQ(a, b) << "Duet must be bit-deterministic";
    if (lq.query.NumConstrainedColumns() >= 2) {
      const double na = naru_->EstimateSelectivitySeeded(lq.query, 1);
      const double nb = naru_->EstimateSelectivitySeeded(lq.query, 2);
      naru_varies |= na != nb;
    }
  }
  EXPECT_TRUE(naru_varies);
}

TEST_F(PipelineTest, DuetSingleForwardIsCheaperThanProgressiveSampling) {
  core::DuetEstimator duet_est(*duet_);
  baselines::NaruEstimator naru_est(*naru_);
  Timer timer;
  for (const auto& lq : *test_wl_) duet_est.EstimateSelectivity(lq.query);
  const double duet_s = timer.Seconds();
  timer.Reset();
  for (const auto& lq : *test_wl_) naru_est.EstimateSelectivity(lq.query);
  const double naru_s = timer.Seconds();
  EXPECT_LT(duet_s, naru_s);
}

TEST_F(PipelineTest, CheckpointRoundTripThroughEstimatorInterface) {
  std::stringstream buf;
  BinaryWriter w(buf);
  duet_->Save(w);
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  mopt.residual = true;
  mopt.seed = 12345;
  core::DuetModel restored(*table_, mopt);
  BinaryReader r(buf);
  restored.Load(r);
  std::unique_ptr<query::CardinalityEstimator> a =
      std::make_unique<core::DuetEstimator>(*duet_);
  std::unique_ptr<query::CardinalityEstimator> b =
      std::make_unique<core::DuetEstimator>(restored);
  for (size_t i = 0; i < 20; ++i) {
    const Query& q = (*test_wl_)[i].query;
    EXPECT_DOUBLE_EQ(a->EstimateSelectivity(q), b->EstimateSelectivity(q));
  }
}

TEST_F(PipelineTest, AllEstimatorsSatisfyInterfaceContract) {
  std::vector<std::unique_ptr<query::CardinalityEstimator>> all;
  all.push_back(std::make_unique<baselines::SamplingEstimator>(*table_, 0.05));
  all.push_back(std::make_unique<baselines::IndependenceEstimator>(*table_));
  all.push_back(std::make_unique<baselines::MHistEstimator>(*table_, 128));
  all.push_back(std::make_unique<baselines::SpnEstimator>(*table_));
  all.push_back(std::make_unique<core::DuetEstimator>(*duet_));
  all.push_back(std::make_unique<baselines::NaruEstimator>(*naru_));
  for (auto& est : all) {
    EXPECT_FALSE(est->name().empty());
    for (size_t i = 0; i < 10; ++i) {
      const double sel = est->EstimateSelectivity((*test_wl_)[i].query);
      EXPECT_TRUE(std::isfinite(sel)) << est->name();
      EXPECT_GE(sel, 0.0) << est->name();
      EXPECT_LE(sel, 1.0 + 1e-6) << est->name();
    }
    // Unconstrained query: every estimator must say "everything".
    EXPECT_NEAR(est->EstimateSelectivity(Query{}), 1.0, 1e-5) << est->name();
  }
}

TEST(HybridBenefitTest, HybridBeatsDataOnlyOnInWorkloadQueries) {
  // Train DuetD and hybrid Duet with the same budget on a harder table;
  // hybrid must not be worse on in-workload queries (paper Table II trend).
  data::Table t = data::DmvLike(6000, 33);
  query::WorkloadSpec train_spec;
  train_spec.num_queries = 400;
  train_spec.seed = 42;
  train_spec.gamma_num_predicates = true;
  const query::Workload train_wl = query::WorkloadGenerator(t, train_spec).Generate();
  query::WorkloadSpec in_spec = train_spec;
  in_spec.seed = 43;
  in_spec.num_queries = 120;
  const query::Workload in_q = query::WorkloadGenerator(t, in_spec).Generate();

  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 32, 64};
  core::DuetModel duetd(t, mopt);
  core::DuetModel duet(t, mopt);
  core::TrainOptions topt;
  topt.epochs = 6;
  topt.batch_size = 256;
  core::DuetTrainer(duetd, topt).Train();
  core::TrainOptions hopt = topt;
  hopt.train_workload = &train_wl;
  core::DuetTrainer(duet, hopt).Train();

  core::DuetEstimator destd(duetd, "DuetD");
  core::DuetEstimator dest(duet, "Duet");
  const auto errd = query::EvaluateQErrors(destd, in_q, t.num_rows());
  const auto errh = query::EvaluateQErrors(dest, in_q, t.num_rows());
  // Allow slack: at this scale hybrid should be at least comparable.
  EXPECT_LT(Percentile(errh, 75), Percentile(errd, 75) * 1.35);
}

TEST(MemoryScalingTest, UaeHybridNeedsOrdersOfMagnitudeMoreThanDuet) {
  // Problem 3 quantified: UAE's retained-activation estimate at paper-scale
  // sampling dwarfs Duet's single-pass training batch.
  data::Table t = data::KddLike(800, 60, 35);
  baselines::UaeOptions uopt;
  uopt.naru.hidden_sizes = {64, 64};
  uopt.train_samples = 2000;
  baselines::UaeModel uae(t, uopt);
  const double uae_mb = uae.EstimatedTrainMemoryMB(2048);
  // Duet's comparable footprint: one batch of activations, no sample paths.
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  core::DuetModel duet(t, mopt);
  const double duet_mb = static_cast<double>(
                             2048 * (duet.encoder().total_width() + 2 * duet.backbone().output_dim())) *
                         4.0 / (1024.0 * 1024.0);
  EXPECT_GT(uae_mb, 100.0 * duet_mb);
}

TEST(StabilityTest, DuetVarianceIsZeroAcrossRepeatedEstimates) {
  data::Table t = data::CensusLike(800, 36);
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {32};
  core::DuetModel model(t, mopt);
  Query q;
  q.predicates.push_back({1, PredOp::kGe, t.column(1).Value(2)});
  q.predicates.push_back({8, PredOp::kLe, t.column(8).Value(10)});
  const double first = model.EstimateSelectivity(q);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(model.EstimateSelectivity(q), first);
  }
}

}  // namespace
}  // namespace duet
