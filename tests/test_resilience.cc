// Resilience suite (`ctest -L resilience`): every fault class in
// docs/resilience.md §6 — queue overflow, expired deadlines, neural forward
// failures (allocation, weight-pack, plan-compile), corrupt checkpoints,
// failed publishes, divergent fine-tune rounds — must produce a flagged
// degraded answer or a clean error, never a crash, hang, or silently wrong
// result. Faults are forced through serve::FaultInjector; every test disarms
// all points on entry and exit so a failed assertion cannot poison the next
// test. Runs under ASan/UBSan in CI like the rest of the suite.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "baselines/traditional/independence.h"
#include "core/checkpoint.h"
#include "core/duet_model.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/workload.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/serving_engine.h"
#include "serve/update_worker.h"

namespace duet {
namespace {

using query::Query;
using serve::FaultInjector;
using serve::FaultPoint;

data::Table SmallTable() { return data::CensusLike(600, 11); }

core::DuetModelOptions SmallModelOptions() {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {24, 24};
  opt.residual = true;
  return opt;
}

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FaultInjector::Enabled()) {
      GTEST_SKIP() << "built with -DDUET_FAULT_INJECTION=OFF";
    }
    FaultInjector::DisarmAll();
  }
  void TearDown() override { FaultInjector::DisarmAll(); }
};

// ---- admission control: queue overflow sheds, flagged, never blocks ----

TEST_F(ResilienceTest, BoundedQueueShedsWithFlaggedFallbackAnswer) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  baselines::IndependenceEstimator fallback(t);

  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_queue = 2;
  sopt.max_batch = 64;                  // size trigger never fires
  sopt.max_wait_us = 200 * 1000;        // scheduler holds the queued entries
  serve::ServingEngine engine(est, sopt);
  engine.AttachFallback(&fallback);

  const std::vector<Query> queries = MakeQueries(t, 8);
  std::vector<serve::ServingEngine::Future> futures;
  for (const Query& q : queries) futures.push_back(engine.Submit(q));

  // The queue held at most 2; everything beyond was shed with an immediate
  // fallback answer (Ready() before any dispatch could have happened).
  int shed = 0;
  for (auto& f : futures) {
    const serve::Estimate e = f.Result();
    if (e.shed) {
      ++shed;
      EXPECT_TRUE(e.fallback);
      EXPECT_TRUE(e.degraded());
    }
  }
  EXPECT_GE(shed, static_cast<int>(queries.size()) - 2);
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(shed));
  EXPECT_GE(stats.fallback_served, static_cast<uint64_t>(shed));
  EXPECT_LE(stats.queue_high_water, 2);
  // Shed answers come from the attached classical estimator, not a stub.
  const serve::Estimate last = futures.back().Result();
  ASSERT_TRUE(last.shed);
  EXPECT_EQ(last.selectivity, fallback.EstimateSelectivity(queries.back()));
}

TEST_F(ResilienceTest, ShedWithoutFallbackStillCompletesFlagged) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;
  sopt.max_queue = 1;
  sopt.max_batch = 64;
  sopt.max_wait_us = 200 * 1000;
  serve::ServingEngine engine(est, sopt);  // no fallback attached

  auto first = engine.Submit(MakeQueries(t, 1)[0]);
  auto second = engine.Submit(MakeQueries(t, 1, 32)[0]);
  const serve::Estimate e = second.Result();
  EXPECT_TRUE(e.shed);
  EXPECT_EQ(e.selectivity, 0.0);  // documented no-fallback answer
  first.Wait();                   // drains cleanly
}

// ---- deadlines: expired work dropped before dispatch, flagged ----

TEST_F(ResilienceTest, ExpiredDeadlineServedByFallbackAndFlagged) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  baselines::IndependenceEstimator fallback(t);

  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 64;            // only the wait trigger dispatches
  sopt.max_wait_us = 30 * 1000;   // 30 ms: far beyond the 1 us deadlines
  serve::ServingEngine engine(est, sopt);
  engine.AttachFallback(&fallback);

  const std::vector<Query> queries = MakeQueries(t, 6);
  std::vector<serve::ServingEngine::Future> futures;
  for (const Query& q : queries) {
    futures.push_back(engine.Submit(q, /*deadline_us=*/1));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const serve::Estimate e = futures[i].Result();
    EXPECT_TRUE(e.deadline_expired) << "query " << i;
    EXPECT_TRUE(e.fallback) << "query " << i;
    EXPECT_EQ(e.selectivity, fallback.EstimateSelectivity(queries[i]));
  }
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.deadline_missed, queries.size());
  EXPECT_GE(stats.fallback_served, queries.size());
}

TEST_F(ResilienceTest, GenerousDeadlineIsNotDropped) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 4;
  sopt.max_wait_us = 1000;
  serve::ServingEngine engine(est, sopt);

  const std::vector<Query> queries = MakeQueries(t, 8);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
  std::vector<serve::ServingEngine::Future> futures;
  for (const Query& q : queries) {
    futures.push_back(engine.Submit(q, /*deadline_us=*/10 * 1000 * 1000));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const serve::Estimate e = futures[i].Result();
    EXPECT_FALSE(e.degraded()) << "query " << i;
    EXPECT_EQ(e.selectivity, reference[i]);
  }
  EXPECT_EQ(engine.stats().deadline_missed, 0u);
}

TEST_F(ResilienceTest, SyncLateResultIsFlaggedButStillAnswered) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  serve::ServingEngine engine(est, {});

  const std::vector<Query> queries = MakeQueries(t, 12);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
  // 1 us budget: the batch cannot finish in time, so every result is
  // flagged late — but the answers are still the real neural estimates.
  const std::vector<serve::Estimate> results =
      engine.EstimateBatchEx(queries, /*deadline_us=*/1);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].deadline_expired);
    EXPECT_FALSE(results[i].fallback);
    EXPECT_EQ(results[i].selectivity, reference[i]);
  }
  EXPECT_EQ(engine.stats().deadline_missed, queries.size());
}

// ---- neural forward failures degrade to the fallback, flagged ----

TEST_F(ResilienceTest, NeuralForwardFailureDegradesToFallback) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  baselines::IndependenceEstimator fallback(t);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;  // single shard: the whole batch degrades together
  serve::ServingEngine engine(est, sopt);
  engine.AttachFallback(&fallback);

  const std::vector<Query> queries = MakeQueries(t, 5);
  FaultInjector::Arm(FaultPoint::kNeuralForward, 1);
  const std::vector<serve::Estimate> degraded = engine.EstimateBatchEx(queries);
  EXPECT_EQ(FaultInjector::fired(FaultPoint::kNeuralForward), 1u);
  for (size_t i = 0; i < degraded.size(); ++i) {
    EXPECT_TRUE(degraded[i].fallback) << "query " << i;
    EXPECT_EQ(degraded[i].selectivity, fallback.EstimateSelectivity(queries[i]));
  }
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.neural_failures, 1u);
  EXPECT_EQ(stats.fallback_served, queries.size());

  // The budget is spent: the next call is served neurally again.
  const std::vector<serve::Estimate> healthy = engine.EstimateBatchEx(queries);
  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
  for (size_t i = 0; i < healthy.size(); ++i) {
    EXPECT_FALSE(healthy[i].fallback);
    EXPECT_EQ(healthy[i].selectivity, reference[i]);
  }
}

// Infrastructure faults below the estimator (allocation, weight packing,
// plan compilation) surface inside the neural forward; each must degrade
// the dispatch, not crash the process.
TEST_F(ResilienceTest, InfrastructureFaultsDegradeNotCrash) {
  const data::Table t = SmallTable();
  baselines::IndependenceEstimator fallback(t);
  const std::vector<Query> queries = MakeQueries(t, 4);
  for (const FaultPoint point :
       {FaultPoint::kAllocation, FaultPoint::kPackWeights, FaultPoint::kPlanCompile}) {
    // Fresh model per point so packs/plans recompile lazily and actually
    // cross the armed fault site.
    core::DuetModel model(t, SmallModelOptions());
    core::DuetEstimator est(model);
    serve::ServingOptions sopt;
    sopt.num_workers = 1;
    serve::ServingEngine engine(est, sopt);
    engine.AttachFallback(&fallback);

    FaultInjector::Arm(point, 1);
    const std::vector<serve::Estimate> results = engine.EstimateBatchEx(queries);
    EXPECT_EQ(FaultInjector::fired(point), 1u)
        << "fault point " << static_cast<int>(point) << " never crossed";
    for (const serve::Estimate& e : results) {
      EXPECT_TRUE(e.fallback) << "fault point " << static_cast<int>(point);
    }
    FaultInjector::Disarm(point);
    // Recovery: estimates match the clean single-thread path afterwards.
    const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
    const std::vector<serve::Estimate> after = engine.EstimateBatchEx(queries);
    for (size_t i = 0; i < after.size(); ++i) {
      EXPECT_FALSE(after[i].fallback);
      EXPECT_EQ(after[i].selectivity, reference[i]);
    }
  }
}

// ---- circuit breaker: trips to fallback-only, probes its way back ----

TEST_F(ResilienceTest, BreakerTripsOpenAndProbesClosed) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  baselines::IndependenceEstimator fallback(t);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;
  sopt.breaker_threshold = 2;
  sopt.breaker_cooldown_us = 1;  // probe immediately in this test
  serve::ServingEngine engine(est, sopt);
  engine.AttachFallback(&fallback);

  const std::vector<Query> queries = MakeQueries(t, 3);
  // Two consecutive failed dispatches trip the breaker...
  FaultInjector::Arm(FaultPoint::kNeuralForward, 2);
  engine.EstimateBatchEx(queries);
  engine.EstimateBatchEx(queries);
  serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_state, 1u);  // open

  // ...the cooldown elapses, the next dispatch is the elected probe (the
  // injected budget is spent, so it succeeds) and the breaker closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const std::vector<serve::Estimate> probe = engine.EstimateBatchEx(queries);
  for (const serve::Estimate& e : probe) EXPECT_FALSE(e.fallback);
  stats = engine.stats();
  EXPECT_EQ(stats.breaker_state, 0u);  // closed again
  EXPECT_EQ(stats.breaker_trips, 1u);

  const std::vector<double> reference = est.EstimateSelectivityBatch(queries);
  const std::vector<serve::Estimate> healthy = engine.EstimateBatchEx(queries);
  for (size_t i = 0; i < healthy.size(); ++i) {
    EXPECT_EQ(healthy[i].selectivity, reference[i]);
  }
}

TEST_F(ResilienceTest, OpenBreakerServesFallbackWithoutNeuralAttempts) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  core::DuetEstimator est(model);
  baselines::IndependenceEstimator fallback(t);
  serve::ServingOptions sopt;
  sopt.num_workers = 1;
  sopt.breaker_threshold = 1;
  sopt.breaker_cooldown_us = 60 * 1000 * 1000;  // never elapses in-test
  serve::ServingEngine engine(est, sopt);
  engine.AttachFallback(&fallback);

  const std::vector<Query> queries = MakeQueries(t, 3);
  FaultInjector::Arm(FaultPoint::kNeuralForward, 1);
  engine.EstimateBatchEx(queries);  // trips open
  ASSERT_EQ(engine.stats().breaker_state, 1u);

  const uint64_t shards_open = engine.stats().shards;
  const std::vector<serve::Estimate> results = engine.EstimateBatchEx(queries);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].fallback);
    EXPECT_EQ(results[i].selectivity, fallback.EstimateSelectivity(queries[i]));
  }
  // No shard ever ran: the open breaker short-circuits before the pool.
  EXPECT_EQ(engine.stats().shards, shards_open);
}

// ---- corrupt checkpoints: clean error, model untouched ----

TEST_F(ResilienceTest, TornCheckpointWriteIsRejectedCleanly) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  const std::string path = ::testing::TempDir() + "/duet_resilience_torn.bin";

  FaultInjector::Arm(FaultPoint::kCheckpointWrite, 1);
  core::SaveModuleFile(path, "duet", model);  // writes a torn (truncated) file
  EXPECT_EQ(FaultInjector::fired(FaultPoint::kCheckpointWrite), 1u);

  core::DuetModel reloaded(t, SmallModelOptions());
  const std::vector<Query> probe = MakeQueries(t, 10);
  const std::vector<double> before = reloaded.EstimateSelectivityBatch(probe);
  const core::CheckpointStatus st = core::TryLoadModuleFile(path, "duet", &reloaded);
  EXPECT_FALSE(st.ok);
  EXPECT_NE(st.error.find(path), std::string::npos);
  // The failed load never touched the destination model.
  EXPECT_EQ(reloaded.EstimateSelectivityBatch(probe), before);
  std::remove(path.c_str());
}

// ---- failed publishes: retried with backoff, then abandoned safely ----

TEST_F(ResilienceTest, PublishFailureIsRetriedUntilSuccess) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const uint64_t id_before = registry.Current()->id();

  query::WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 78;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 32;
  wopt.update.finetune.qerror_threshold = 1.5;
  wopt.update.finetune.epochs = 2;
  wopt.publish_retries = 3;
  wopt.backoff_initial_us = 10;  // keep the test fast
  wopt.backoff_max_us = 100;
  serve::UpdateWorker worker(registry, wopt);
  for (const auto& lq : wl) {
    worker.AddFeedback(lq.query, static_cast<double>(lq.cardinality));
  }

  // First two attempts fail, the third succeeds within the retry budget.
  FaultInjector::Arm(FaultPoint::kPublish, 2);
  ASSERT_TRUE(worker.RunOnce());
  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_EQ(stats.publish_failures, 2u);
  EXPECT_EQ(stats.published, 1u);
  EXPECT_EQ(stats.publish_abandoned, 0u);
  EXPECT_GT(registry.Current()->id(), id_before);
}

TEST_F(ResilienceTest, PublishAbandonedAfterRetryBudgetKeepsOldSnapshot) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const uint64_t id_before = registry.Current()->id();
  const std::vector<Query> probe = MakeQueries(t, 10);
  const std::vector<double> before =
      registry.Current()->estimator().EstimateSelectivityBatch(probe);

  query::WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 79;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 32;
  wopt.update.finetune.qerror_threshold = 1.5;
  wopt.update.finetune.epochs = 2;
  wopt.publish_retries = 2;
  wopt.backoff_initial_us = 10;
  wopt.backoff_max_us = 100;
  serve::UpdateWorker worker(registry, wopt);
  for (const auto& lq : wl) {
    worker.AddFeedback(lq.query, static_cast<double>(lq.cardinality));
  }

  // Every attempt (1 + 2 retries) fails: the candidate is abandoned and the
  // registry keeps serving the previous snapshot.
  FaultInjector::Arm(FaultPoint::kPublish, 100);
  ASSERT_TRUE(worker.RunOnce());
  FaultInjector::Disarm(FaultPoint::kPublish);
  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_EQ(stats.publish_failures, 3u);  // 1 attempt + 2 retries
  EXPECT_EQ(stats.published, 0u);
  EXPECT_EQ(stats.publish_abandoned, 1u);
  EXPECT_EQ(registry.Current()->id(), id_before);
  EXPECT_EQ(registry.Current()->estimator().EstimateSelectivityBatch(probe), before);
}

// ---- divergent fine-tune rounds: gated, rolled back, quarantined ----

TEST_F(ResilienceTest, DivergentFineTuneIsRolledBackAndQuarantined) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const uint64_t id_before = registry.Current()->id();
  const std::vector<Query> probe = MakeQueries(t, 10);
  const std::vector<double> before =
      registry.Current()->estimator().EstimateSelectivityBatch(probe);

  query::WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 80;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 32;
  wopt.update.finetune.qerror_threshold = 1.5;
  wopt.update.finetune.epochs = 1;
  serve::UpdateWorker worker(registry, wopt);
  for (const auto& lq : wl) {
    worker.AddFeedback(lq.query, static_cast<double>(lq.cardinality));
  }

  FaultInjector::Arm(FaultPoint::kFineTuneDiverge, 1);
  ASSERT_TRUE(worker.RunOnce());
  EXPECT_EQ(FaultInjector::fired(FaultPoint::kFineTuneDiverge), 1u);

  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_EQ(stats.published, 0u);
  EXPECT_EQ(stats.rolled_back, 1u);
  EXPECT_EQ(stats.quarantined_rounds, 1u);
  EXPECT_EQ(stats.feedback_quarantined, static_cast<uint64_t>(wl.size()));
  EXPECT_EQ(worker.quarantined_feedback(), static_cast<int64_t>(wl.size()));
  // The poisoned round's pairs are out of the live buffer but inspectable.
  const query::Workload quarantined = worker.DrainQuarantine();
  EXPECT_EQ(quarantined.size(), wl.size());
  EXPECT_EQ(worker.quarantined_feedback(), 0);
  EXPECT_EQ(worker.pending_feedback(), 0);
  // The NaN candidate never reached serving.
  EXPECT_EQ(registry.Current()->id(), id_before);
  EXPECT_EQ(registry.Current()->estimator().EstimateSelectivityBatch(probe), before);
}

// ---- end-to-end: registry-mode engine stays up across injected faults ----

TEST_F(ResilienceTest, RegistryEngineSurvivesFaultStorm) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  baselines::IndependenceEstimator fallback(t);
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 4;
  sopt.max_wait_us = 1000;
  sopt.breaker_threshold = 3;
  sopt.breaker_cooldown_us = 1000;
  serve::ServingEngine engine(registry, sopt);
  engine.AttachFallback(&fallback);

  const std::vector<Query> queries = MakeQueries(t, 40);
  // Sprinkle failures across the storm; every future must still complete
  // with either a real or a flagged fallback answer.
  FaultInjector::Arm(FaultPoint::kNeuralForward, 4, /*skip=*/2);
  std::vector<serve::ServingEngine::Future> futures;
  for (const Query& q : queries) futures.push_back(engine.Submit(q));
  size_t degraded = 0;
  for (auto& f : futures) {
    const serve::Estimate e = f.Result();
    if (e.degraded()) ++degraded;
  }
  EXPECT_GE(degraded, 1u);
  const serve::ServingStats stats = engine.stats();
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_GE(stats.neural_failures, 1u);
  EXPECT_GE(stats.fallback_served, degraded);
}

}  // namespace
}  // namespace duet
