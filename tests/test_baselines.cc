// Tests for every baseline estimator: traditional (Sampling / Indep /
// MHist), Naru progressive sampling (exactness on single columns,
// unbiasedness across seeds, instability vs Duet's determinism), UAE
// (differentiable sampler, OOM memory model), MSCN (training improves
// accuracy, drift sensitivity), and the DeepDB-style SPN (normalization,
// structure, single-column exactness).
#include <cmath>

#include "baselines/mscn/mscn_model.h"
#include "baselines/naru/naru_model.h"
#include "baselines/spn/spn.h"
#include "baselines/traditional/independence.h"
#include "baselines/traditional/mhist.h"
#include "baselines/traditional/sampling.h"
#include "baselines/uae/uae_model.h"
#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::baselines {
namespace {

using query::PredOp;
using query::Query;

data::Table SmallTable(int64_t rows = 1000, uint64_t seed = 5) {
  return data::CensusLike(rows, seed);
}

// ---------- traditional ----------

TEST(SamplingTest, FullSampleIsExact) {
  data::Table t = SmallTable(400, 1);
  SamplingEstimator est(t, /*fraction=*/1.0);
  query::ExactEvaluator ev(t);
  query::WorkloadSpec spec;
  spec.num_queries = 50;
  spec.seed = 2;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Query q = gen.GenerateQuery(rng);
    const double est_card = est.EstimateSelectivity(q) * static_cast<double>(t.num_rows());
    EXPECT_NEAR(est_card, static_cast<double>(ev.Count(q)), 0.5);
  }
}

TEST(SamplingTest, PartialSampleApproximates) {
  data::Table t = SmallTable(5000, 3);
  SamplingEstimator est(t, 0.2);
  EXPECT_EQ(est.sample_size(), 1000);
  Query q;  // unconstrained
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(q), 1.0);
}

TEST(IndependenceTest, ExactOnSingleColumnQueries) {
  data::Table t = SmallTable(800, 4);
  IndependenceEstimator est(t);
  query::ExactEvaluator ev(t);
  for (int c = 0; c < t.num_columns(); c += 3) {
    Query q;
    q.predicates.push_back({c, PredOp::kLe, t.column(c).Value(t.column(c).ndv() / 2)});
    const double sel = est.EstimateSelectivity(q);
    EXPECT_NEAR(sel * static_cast<double>(t.num_rows()),
                static_cast<double>(ev.Count(q)), 0.5);
  }
}

TEST(IndependenceTest, MultiColumnIsProductOfMarginals) {
  // Perfectly correlated pair: AVI must underestimate the joint.
  data::Column a = data::Column::FromValues("a", {1, 1, 2, 2});
  data::Column b = data::Column::FromValues("b", {1, 1, 2, 2});
  data::Table t("t", {a, b});
  IndependenceEstimator est(t);
  Query q;
  q.predicates.push_back({0, PredOp::kEq, 1});
  q.predicates.push_back({1, PredOp::kEq, 1});
  EXPECT_NEAR(est.EstimateSelectivity(q), 0.25, 1e-9);  // true sel is 0.5
}

TEST(MHistTest, SingleBucketDegradesToUniform) {
  data::Table t = SmallTable(500, 6);
  MHistEstimator est(t, 1);
  EXPECT_EQ(est.num_buckets(), 1);
  Query q;
  EXPECT_NEAR(est.EstimateSelectivity(q), 1.0, 1e-9);
}

TEST(MHistTest, MoreBucketsImproveAccuracy) {
  data::Table t = SmallTable(3000, 7);
  query::WorkloadSpec spec;
  spec.num_queries = 100;
  spec.seed = 8;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  MHistEstimator coarse(t, 4);
  MHistEstimator fine(t, 512);
  const auto err_coarse = query::EvaluateQErrors(coarse, wl, t.num_rows());
  const auto err_fine = query::EvaluateQErrors(fine, wl, t.num_rows());
  EXPECT_LT(Mean(err_fine), Mean(err_coarse));
}

TEST(MHistTest, BucketsPartitionRows) {
  data::Table t = SmallTable(2000, 9);
  MHistEstimator est(t, 64);
  // Unconstrained query must see every row exactly once.
  EXPECT_NEAR(est.EstimateSelectivity(Query{}), 1.0, 1e-9);
}

// ---------- Naru ----------

core::TrainOptions QuickTrain(int epochs, int64_t bs = 128) {
  core::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = bs;
  return topt;
}

TEST(NaruTest, DataLossDecreases) {
  data::Table t = SmallTable(800, 11);
  NaruOptions nopt;
  nopt.hidden_sizes = {32, 32};
  NaruModel model(t, nopt);
  NaruTrainer trainer(model, QuickTrain(6));
  const auto history = trainer.Train();
  EXPECT_LT(history.back().data_loss, history.front().data_loss);
}

TEST(NaruTest, UnconstrainedQueryIsOne) {
  data::Table t = SmallTable(300, 12);
  NaruOptions nopt;
  nopt.hidden_sizes = {16};
  NaruModel model(t, nopt);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(Query{}, rng), 1.0);
}

TEST(NaruTest, EmptyRangeIsZero) {
  data::Table t = SmallTable(300, 12);
  NaruOptions nopt;
  nopt.hidden_sizes = {16};
  NaruModel model(t, nopt);
  Query q;
  q.predicates.push_back({0, PredOp::kLt, t.column(0).Value(0)});
  Rng rng(1);
  EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q, rng), 0.0);
}

TEST(NaruTest, SingleColumnQueryNeedsNoSamplingVariance) {
  // With only the first AR column constrained, the masked mass comes from
  // the unconditional head, so every seed gives the same estimate.
  data::Table t = SmallTable(500, 13);
  NaruOptions nopt;
  nopt.hidden_sizes = {32};
  nopt.num_samples = 50;
  NaruModel model(t, nopt);
  Query q;
  q.predicates.push_back({0, PredOp::kLe, t.column(0).Value(t.column(0).ndv() / 2)});
  const double a = model.EstimateSelectivitySeeded(q, 1);
  const double b = model.EstimateSelectivitySeeded(q, 2);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(NaruTest, ProgressiveSamplingIsUnstableAcrossSeeds) {
  // Paper Problem 4: multi-column range queries give seed-dependent results.
  data::Table t = SmallTable(1500, 14);
  NaruOptions nopt;
  nopt.hidden_sizes = {32, 32};
  nopt.num_samples = 8;  // few samples -> visible variance
  NaruModel model(t, nopt);
  NaruTrainer trainer(model, QuickTrain(2));
  trainer.Train();
  Query q;
  q.predicates.push_back({3, PredOp::kGe, t.column(3).Value(1)});
  q.predicates.push_back({9, PredOp::kLe, t.column(9).Value(t.column(9).ndv() / 2)});
  q.predicates.push_back({10, PredOp::kGe, t.column(10).Value(1)});
  bool varies = false;
  const double first = model.EstimateSelectivitySeeded(q, 100);
  for (uint64_t seed = 101; seed < 110 && !varies; ++seed) {
    varies = model.EstimateSelectivitySeeded(q, seed) != first;
  }
  EXPECT_TRUE(varies) << "progressive sampling should be seed-dependent";
}

TEST(NaruTest, MoreSamplesReduceVariance) {
  data::Table t = SmallTable(1500, 15);
  NaruOptions few;
  few.hidden_sizes = {32, 32};
  few.num_samples = 4;
  NaruOptions many = few;
  many.num_samples = 256;
  NaruModel model_few(t, few);
  NaruModel model_many(t, many);
  // Copy weights so both models are identical apart from sample count.
  std::stringstream buf;
  BinaryWriter w(buf);
  model_few.Save(w);
  BinaryReader r(buf);
  model_many.Load(r);

  Query q;
  q.predicates.push_back({2, PredOp::kGe, t.column(2).Value(1)});
  q.predicates.push_back({7, PredOp::kLe, t.column(7).Value(t.column(7).ndv() / 2)});
  auto variance = [&](const NaruModel& m) {
    std::vector<double> vals;
    for (uint64_t s = 0; s < 12; ++s) vals.push_back(m.EstimateSelectivitySeeded(q, 50 + s));
    const double mean = Mean(vals);
    double var = 0.0;
    for (double v : vals) var += (v - mean) * (v - mean);
    return var / static_cast<double>(vals.size());
  };
  EXPECT_LE(variance(model_many), variance(model_few));
}

TEST(NaruTest, ProgressiveSamplingApproachesLargeSampleMean) {
  // Unbiasedness check: the mean over many small-sample runs converges to
  // the single large-sample estimate.
  data::Table t = SmallTable(1200, 16);
  NaruOptions nopt;
  nopt.hidden_sizes = {32, 32};
  nopt.num_samples = 16;
  NaruModel model(t, nopt);
  NaruTrainer trainer(model, QuickTrain(3));
  trainer.Train();
  Query q;
  q.predicates.push_back({4, PredOp::kGe, t.column(4).Value(1)});
  q.predicates.push_back({8, PredOp::kLe, t.column(8).Value(t.column(8).ndv() / 2)});

  double small_mean = 0.0;
  const int reps = 60;
  for (int i = 0; i < reps; ++i) {
    small_mean += model.EstimateSelectivitySeeded(q, 1000 + static_cast<uint64_t>(i));
  }
  small_mean /= reps;

  NaruOptions big = nopt;
  big.num_samples = 2000;
  NaruModel big_model(t, big);
  std::stringstream buf;
  BinaryWriter w(buf);
  model.Save(w);
  BinaryReader r(buf);
  big_model.Load(r);
  const double big_est = big_model.EstimateSelectivitySeeded(q, 7);
  EXPECT_NEAR(small_mean, big_est, std::max(0.25 * big_est, 0.02));
}

// ---------- UAE ----------

TEST(UaeTest, DifferentiableSelectivityMatchesMagnitude) {
  data::Table t = SmallTable(600, 17);
  UaeOptions uopt;
  uopt.naru.hidden_sizes = {32, 32};
  uopt.train_samples = 32;
  UaeModel uae(t, uopt);
  Query q;
  q.predicates.push_back({1, PredOp::kLe, t.column(1).Value(t.column(1).ndv() / 2)});
  Rng rng(3);
  tensor::Tensor sel = uae.SelectivityBatchDifferentiable({q}, rng);
  ASSERT_EQ(sel.numel(), 1);
  Rng rng2(4);
  const double hard = uae.naru().EstimateSelectivity(q, rng2);
  // Soft (Gumbel) and hard sampling agree within Monte-Carlo slack.
  EXPECT_NEAR(static_cast<double>(sel.data()[0]), hard, std::max(0.5 * hard, 0.05));
}

TEST(UaeTest, GradientFlowsThroughGumbelSampling) {
  data::Table t = SmallTable(400, 18);
  UaeOptions uopt;
  uopt.naru.hidden_sizes = {16};
  uopt.train_samples = 4;
  UaeModel uae(t, uopt);
  Query q;
  q.predicates.push_back({2, PredOp::kGe, t.column(2).Value(1)});
  q.predicates.push_back({6, PredOp::kLe, t.column(6).Value(1)});
  Rng rng(5);
  tensor::Tensor sel = uae.SelectivityBatchDifferentiable({q}, rng);
  tensor::Tensor loss = tensor::SumAll(sel);
  loss.Backward();
  bool any = false;
  for (const auto& p : uae.naru().parameters()) {
    for (float g : p.grad_vector()) any |= g != 0.0f;
  }
  EXPECT_TRUE(any) << "query loss must reach the autoregressive weights";
}

TEST(UaeTest, MemoryModelScalesWithSamplesAndColumns) {
  data::Table census = SmallTable(500, 19);
  data::Table kdd = data::KddLike(500, 60, 19);
  UaeOptions uopt;
  uopt.naru.hidden_sizes = {32, 32};
  uopt.train_samples = 100;
  UaeModel small(census, uopt);
  UaeModel big(kdd, uopt);
  EXPECT_GT(big.EstimatedTrainMemoryMB(256), small.EstimatedTrainMemoryMB(256));
  EXPECT_GT(small.EstimatedTrainMemoryMB(512), small.EstimatedTrainMemoryMB(256));
}

TEST(UaeTest, OomIsReportedNotExecuted) {
  data::Table t = data::KddLike(600, 50, 20);
  query::WorkloadSpec wspec;
  wspec.num_queries = 50;
  wspec.seed = 42;
  const query::Workload wl = query::WorkloadGenerator(t, wspec).Generate();
  UaeOptions uopt;
  uopt.naru.hidden_sizes = {64, 64};
  uopt.train_samples = 2000;     // paper-scale sampling
  uopt.memory_budget_mb = 1024;  // modest accelerator
  UaeModel uae(t, uopt);
  core::TrainOptions topt = QuickTrain(1, 256);
  topt.train_workload = &wl;
  UaeTrainer trainer(uae, topt);
  const auto history = trainer.Train();
  EXPECT_TRUE(trainer.oom());
}

TEST(UaeTest, HybridTrainingRunsWithinBudget) {
  data::Table t = SmallTable(400, 21);
  query::WorkloadSpec wspec;
  wspec.num_queries = 40;
  wspec.seed = 42;
  const query::Workload wl = query::WorkloadGenerator(t, wspec).Generate();
  UaeOptions uopt;
  uopt.naru.hidden_sizes = {16};
  uopt.train_samples = 4;
  UaeModel uae(t, uopt);
  core::TrainOptions topt = QuickTrain(1, 100);
  topt.train_workload = &wl;
  UaeTrainer trainer(uae, topt);
  const auto history = trainer.Train();
  ASSERT_FALSE(trainer.oom());
  ASSERT_EQ(history.size(), 1u);
  EXPECT_GT(history[0].query_loss, 0.0);
  EXPECT_TRUE(std::isfinite(history[0].query_loss));
}

// ---------- MSCN ----------

TEST(MscnTest, TrainingReducesLossAndError) {
  data::Table t = SmallTable(1500, 22);
  query::WorkloadSpec wspec;
  wspec.num_queries = 400;
  wspec.seed = 42;
  wspec.gamma_num_predicates = true;
  const query::Workload train = query::WorkloadGenerator(t, wspec).Generate();
  MscnOptions mopt;
  mopt.epochs = 30;
  mopt.bitmap_size = 200;
  MscnModel model(t, mopt);

  // Error of the untrained net on the training distribution...
  const auto before = query::EvaluateQErrors(model, train, t.num_rows());
  const auto losses = model.Train(train);
  EXPECT_LT(losses.back(), losses.front());
  const auto after = query::EvaluateQErrors(model, train, t.num_rows());
  EXPECT_LT(Percentile(after, 50), Percentile(before, 50));
  EXPECT_LT(Percentile(after, 50), 5.0);
}

TEST(MscnTest, SuffersUnderWorkloadDrift) {
  // Train on a bounded, gamma-skewed workload; evaluate on Rand-Q: the
  // in-workload error must be visibly better than the drifted error
  // (paper Problem 5). A data-driven method would not show this gap.
  data::Table t = SmallTable(2000, 23);
  query::WorkloadSpec train_spec;
  train_spec.num_queries = 500;
  train_spec.seed = 42;
  train_spec.gamma_num_predicates = true;
  train_spec.bounded_column = t.LargestNdvColumn();
  const query::Workload train = query::WorkloadGenerator(t, train_spec).Generate();

  query::WorkloadSpec in_spec = train_spec;
  in_spec.seed = 42;
  in_spec.num_queries = 150;
  const query::Workload in_q = query::WorkloadGenerator(t, in_spec).Generate();
  query::WorkloadSpec rand_spec;
  rand_spec.num_queries = 150;
  rand_spec.seed = 1234;
  const query::Workload rand_q = query::WorkloadGenerator(t, rand_spec).Generate();

  MscnOptions mopt;
  mopt.epochs = 30;
  mopt.bitmap_size = 200;
  MscnModel model(t, mopt);
  model.Train(train);
  const auto in_err = query::EvaluateQErrors(model, in_q, t.num_rows());
  const auto rand_err = query::EvaluateQErrors(model, rand_q, t.num_rows());
  EXPECT_GT(Percentile(rand_err, 95), Percentile(in_err, 95));
}

// ---------- SPN ----------

TEST(SpnTest, UnconstrainedQueryIsOne) {
  data::Table t = SmallTable(1000, 24);
  SpnEstimator spn(t);
  EXPECT_NEAR(spn.EstimateSelectivity(Query{}), 1.0, 1e-6);
}

TEST(SpnTest, SingleColumnQueriesAreNearExact) {
  data::Table t = SmallTable(2000, 25);
  SpnEstimator spn(t);
  query::ExactEvaluator ev(t);
  for (int c = 0; c < t.num_columns(); c += 4) {
    Query q;
    q.predicates.push_back({c, PredOp::kLe, t.column(c).Value(t.column(c).ndv() / 3)});
    const double est = spn.EstimateSelectivity(q) * static_cast<double>(t.num_rows());
    const double truth = static_cast<double>(ev.Count(q));
    EXPECT_NEAR(est, truth, std::max(1.0, 0.02 * static_cast<double>(t.num_rows())));
  }
}

TEST(SpnTest, IndependentColumnsYieldProductNode) {
  data::SyntheticSpec spec;
  spec.name = "indep";
  spec.rows = 4000;
  spec.seed = 26;
  spec.num_latent = 2;
  for (int i = 0; i < 4; ++i) {
    data::ColumnSpec cs;
    cs.ndv = 20;
    cs.zipf_s = 0.8;
    cs.correlation = 0.0;  // fully independent columns
    cs.latent = i % 2;
    spec.columns.push_back(cs);
  }
  data::Table t = data::GenerateSynthetic(spec);
  SpnEstimator spn(t);
  const auto counts = spn.CountNodes();
  EXPECT_GT(counts.product, 0);
}

TEST(SpnTest, BeatsIndependenceOnCorrelatedData) {
  data::SyntheticSpec spec;
  spec.name = "corr";
  spec.rows = 6000;
  spec.seed = 27;
  spec.num_latent = 1;
  spec.latent_cardinality = 10;
  for (int i = 0; i < 2; ++i) {
    data::ColumnSpec cs;
    cs.ndv = 10;
    cs.zipf_s = 0.4;
    cs.correlation = 0.95;
    cs.latent = 0;
    spec.columns.push_back(cs);
  }
  data::Table t = data::GenerateSynthetic(spec);
  SpnEstimator spn(t);
  IndependenceEstimator indep(t);
  query::ExactEvaluator ev(t);
  Rng rng(1234);
  query::Workload wl;
  for (int i = 0; i < 100; ++i) {
    const int64_t row = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(t.num_rows())));
    Query q;
    q.predicates.push_back({0, PredOp::kEq, t.column(0).Value(t.code(row, 0))});
    q.predicates.push_back({1, PredOp::kEq, t.column(1).Value(t.code(row, 1))});
    wl.push_back({q, ev.Count(q)});
  }
  const auto spn_err = query::EvaluateQErrors(spn, wl, t.num_rows());
  const auto indep_err = query::EvaluateQErrors(indep, wl, t.num_rows());
  EXPECT_LT(Percentile(spn_err, 75), Percentile(indep_err, 75));
}

TEST(SpnTest, SizeAndNodeCountsReported) {
  data::Table t = SmallTable(1500, 28);
  SpnEstimator spn(t);
  EXPECT_GT(spn.SizeMB(), 0.0);
  const auto counts = spn.CountNodes();
  EXPECT_GT(counts.leaf, 0);
}

}  // namespace
}  // namespace duet::baselines
