// Cross-estimator contract tests: every CardinalityEstimator in the
// repository — traditional, query-driven, data-driven, hybrid, PGM — must
// satisfy the same basic properties (bounded selectivity, determinism,
// zero on contradictory predicates), and the substrate must behave on
// degenerate tables (single row, single column, constant columns).
// Parameterized over the estimator factory so each property runs against
// the whole zoo.
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/lw/lw_models.h"
#include "baselines/mscn/mscn_model.h"
#include "baselines/pgm/chow_liu.h"
#include "baselines/spn/spn.h"
#include "baselines/traditional/independence.h"
#include "baselines/traditional/mhist.h"
#include "baselines/traditional/sampling.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet {
namespace {

/// Shared fixture data: one small table + workloads, built once.
struct Shared {
  data::Table table;
  query::Workload train;
  std::vector<query::Query> probes;

  static const Shared& Get() {
    static Shared* shared = [] {
      auto* s = new Shared();
      s->table = data::CensusLike(1500, 42);
      query::WorkloadSpec spec;
      spec.num_queries = 150;
      spec.seed = 42;
      spec.gamma_num_predicates = true;
      s->train = query::WorkloadGenerator(s->table, spec).Generate();
      spec.seed = 7;
      spec.num_queries = 40;
      for (const auto& lq : query::WorkloadGenerator(s->table, spec).Generate()) {
        s->probes.push_back(lq.query);
      }
      return s;
    }();
    return *shared;
  }
};

/// Factory: builds (and trains, where applicable) one estimator kind.
struct EstimatorSpec {
  std::string name;
  /// 2 = wildcard query must estimate exactly 1; 1 = approximately 1
  /// (learned joint models); 0 = only bounded (pure regressors like MSCN,
  /// which rarely see empty queries in training).
  int wildcard_strictness;
  std::function<std::unique_ptr<query::CardinalityEstimator>()> make;
};

std::vector<EstimatorSpec> AllEstimators() {
  const Shared& s = Shared::Get();
  std::vector<EstimatorSpec> specs;
  specs.push_back({"Sampling", 2, [&s] {
                     return std::make_unique<baselines::SamplingEstimator>(s.table, 0.05);
                   }});
  specs.push_back({"Indep", 2, [&s] {
                     return std::make_unique<baselines::IndependenceEstimator>(s.table);
                   }});
  specs.push_back({"MHist", 2, [&s] {
                     return std::make_unique<baselines::MHistEstimator>(s.table, 256);
                   }});
  specs.push_back({"PGM", 1, [&s] {
                     return std::make_unique<baselines::ChowLiuEstimator>(s.table);
                   }});
  specs.push_back({"DeepDB", 1, [&s] {
                     return std::make_unique<baselines::SpnEstimator>(s.table);
                   }});
  specs.push_back({"LW-XGB", 0, [&s] {
                     baselines::LwXgbOptions opt;
                     opt.gbdt.num_trees = 20;
                     auto est = std::make_unique<baselines::LwXgbEstimator>(s.table, opt);
                     est->Train(s.train);
                     return est;
                   }});
  specs.push_back({"LW-NN", 0, [&s] {
                     baselines::LwNnOptions opt;
                     opt.epochs = 5;
                     auto est = std::make_unique<baselines::LwNnEstimator>(s.table, opt);
                     est->Train(s.train);
                     return est;
                   }});
  specs.push_back({"MSCN", 0, [&s] {
                     baselines::MscnOptions opt;
                     opt.epochs = 5;
                     opt.bitmap_size = 100;
                     auto est = std::make_unique<baselines::MscnModel>(s.table, opt);
                     est->Train(s.train);
                     return est;
                   }});
  specs.push_back({"DuetD", 2, [&s] {
                     core::DuetModelOptions mopt;
                     mopt.hidden_sizes = {32, 32};
                     mopt.residual = true;
                     auto model = std::make_unique<core::DuetModel>(s.table, mopt);
                     core::TrainOptions topt;
                     topt.epochs = 1;
                     topt.batch_size = 256;
                     core::DuetTrainer(*model, topt).Train();
                     // The estimator keeps the model alive via a shared_ptr
                     // custom deleter trick: wrap both in one object.
                     struct Owner : query::CardinalityEstimator {
                       std::unique_ptr<core::DuetModel> model;
                       std::unique_ptr<core::DuetEstimator> est;
                       double EstimateSelectivity(const query::Query& q) override {
                         return est->EstimateSelectivity(q);
                       }
                       std::string name() const override { return est->name(); }
                       double SizeMB() const override { return est->SizeMB(); }
                     };
                     auto owner = std::make_unique<Owner>();
                     owner->model = std::move(model);
                     owner->est = std::make_unique<core::DuetEstimator>(*owner->model);
                     return std::unique_ptr<query::CardinalityEstimator>(std::move(owner));
                   }});
  return specs;
}

class EstimatorContractTest : public ::testing::TestWithParam<size_t> {
 protected:
  static void SetUpTestSuite() {
    if (specs_ == nullptr) specs_ = new std::vector<EstimatorSpec>(AllEstimators());
    if (instances_ == nullptr) {
      instances_ =
          new std::vector<std::unique_ptr<query::CardinalityEstimator>>(specs_->size());
    }
  }

  query::CardinalityEstimator& estimator() {
    auto& slot = (*instances_)[GetParam()];
    if (!slot) slot = (*specs_)[GetParam()].make();
    return *slot;
  }
  const EstimatorSpec& spec() const { return (*specs_)[GetParam()]; }

  static std::vector<EstimatorSpec>* specs_;
  static std::vector<std::unique_ptr<query::CardinalityEstimator>>* instances_;
};

std::vector<EstimatorSpec>* EstimatorContractTest::specs_ = nullptr;
std::vector<std::unique_ptr<query::CardinalityEstimator>>* EstimatorContractTest::instances_ =
    nullptr;

TEST_P(EstimatorContractTest, SelectivityBounded) {
  auto& est = estimator();
  for (const query::Query& q : Shared::Get().probes) {
    const double s = est.EstimateSelectivity(q);
    EXPECT_GE(s, 0.0) << est.name();
    EXPECT_LE(s, 1.0) << est.name();
    EXPECT_FALSE(std::isnan(s)) << est.name();
  }
}

TEST_P(EstimatorContractTest, Deterministic) {
  auto& est = estimator();
  for (const query::Query& q : Shared::Get().probes) {
    EXPECT_DOUBLE_EQ(est.EstimateSelectivity(q), est.EstimateSelectivity(q))
        << est.name() << " must give deterministic results (paper Problem 4)";
  }
}

TEST_P(EstimatorContractTest, WildcardQueryNearOne) {
  auto& est = estimator();
  query::Query q;  // no predicates: selects everything
  const double s = est.EstimateSelectivity(q);
  EXPECT_LE(s, 1.0) << est.name();
  switch (spec().wildcard_strictness) {
    case 2: EXPECT_DOUBLE_EQ(s, 1.0) << est.name(); break;
    case 1: EXPECT_GT(s, 0.2) << est.name(); break;
    default: EXPECT_GE(s, 0.0) << est.name(); break;
  }
}

TEST_P(EstimatorContractTest, CardinalityFlooredAtOneTuple) {
  auto& est = estimator();
  const Shared& s = Shared::Get();
  for (const query::Query& q : s.probes) {
    EXPECT_GE(est.EstimateCardinality(q, s.table.num_rows()), 1.0) << est.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllEstimators, EstimatorContractTest, ::testing::Range<size_t>(0, 9),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           static const auto specs = AllEstimators();
                           std::string n = specs[info.param].name;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Exact evaluator reference properties
// ---------------------------------------------------------------------------

TEST(ExactPropertyTest, WideningARangeNeverShrinksCardinality) {
  const Shared& s = Shared::Get();
  query::ExactEvaluator exact(s.table);
  const data::Column& col = s.table.column(2);
  uint64_t prev = 0;
  for (int32_t code = col.ndv() - 1; code >= 0; --code) {
    query::Query q;
    q.predicates.push_back({2, query::PredOp::kGe, col.Value(code)});
    const uint64_t card = exact.Count(q);
    EXPECT_GE(card, prev);
    prev = card;
  }
}

TEST(ExactPropertyTest, ConjunctionNeverExceedsEitherSide) {
  const Shared& s = Shared::Get();
  query::ExactEvaluator exact(s.table);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const int col_a = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(s.table.num_columns())));
    int col_b = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(s.table.num_columns())));
    if (col_b == col_a) col_b = (col_b + 1) % s.table.num_columns();
    query::Query qa, qb, qab;
    const data::Column& ca = s.table.column(col_a);
    const data::Column& cb = s.table.column(col_b);
    const double va = ca.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(ca.ndv()))));
    const double vb = cb.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(cb.ndv()))));
    qa.predicates.push_back({col_a, query::PredOp::kLe, va});
    qb.predicates.push_back({col_b, query::PredOp::kGe, vb});
    qab.predicates = {qa.predicates[0], qb.predicates[0]};
    const uint64_t a = exact.Count(qa), b = exact.Count(qb), ab = exact.Count(qab);
    EXPECT_LE(ab, a);
    EXPECT_LE(ab, b);
  }
}

// ---------------------------------------------------------------------------
// Degenerate tables
// ---------------------------------------------------------------------------

data::Table TinyTable(int64_t rows, int32_t ndv) {
  std::vector<double> dict;
  for (int32_t v = 0; v < ndv; ++v) dict.push_back(v * 2.5);
  std::vector<int32_t> a(static_cast<size_t>(rows)), b(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    a[static_cast<size_t>(r)] = static_cast<int32_t>(r % ndv);
    b[static_cast<size_t>(r)] = static_cast<int32_t>((r / 2) % ndv);
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(a), dict));
  cols.push_back(data::Column::FromCodes("b", std::move(b), dict));
  return data::Table("tiny", std::move(cols));
}

TEST(DegenerateTableTest, SingleRowTableTrainsAndEstimates) {
  data::Table t = TinyTable(1, 1);
  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {8};
  core::DuetModel model(t, mopt);
  core::TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 4;
  core::DuetTrainer(model, topt).Train();
  query::Query q;
  q.predicates.push_back({0, query::PredOp::kEq, 0.0});
  const double s = model.EstimateSelectivity(q);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(DegenerateTableTest, ConstantColumnHandledByAllTraditional) {
  data::Table t = TinyTable(64, 1);  // both columns constant
  baselines::IndependenceEstimator indep(t);
  baselines::SamplingEstimator sampling(t, 0.5);
  baselines::MHistEstimator mhist(t, 16);
  query::Query hit, miss;
  hit.predicates.push_back({0, query::PredOp::kEq, 0.0});
  miss.predicates.push_back({0, query::PredOp::kGt, 0.0});
  for (query::CardinalityEstimator* est :
       std::initializer_list<query::CardinalityEstimator*>{&indep, &sampling, &mhist}) {
    EXPECT_NEAR(est->EstimateSelectivity(hit), 1.0, 1e-9) << est->name();
    EXPECT_NEAR(est->EstimateSelectivity(miss), 0.0, 1e-9) << est->name();
  }
}

TEST(DegenerateTableTest, ChowLiuOnTwoRowTable) {
  data::Table t = TinyTable(2, 2);
  baselines::ChowLiuEstimator est(t);
  query::Query q;
  q.predicates.push_back({0, query::PredOp::kEq, 0.0});
  const double s = est.EstimateSelectivity(q);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(DegenerateTableTest, SamplerDegradesInfeasibleOpsToWildcards) {
  // On a constant column, > and < can never be satisfied by the anchor;
  // every such draw must become a wildcard, never an invalid predicate.
  data::Table t = TinyTable(32, 1);
  core::SamplerOptions opt;
  opt.expand = 4;
  opt.wildcard_prob = 0.0;
  opt.parallel = false;
  core::VirtualTupleSampler sampler(t, opt);
  std::vector<int64_t> anchors(32);
  for (int64_t i = 0; i < 32; ++i) anchors[static_cast<size_t>(i)] = i;
  const core::VirtualBatch batch = sampler.Sample(anchors, 3);
  for (int64_t r = 0; r < batch.batch; ++r) {
    for (int c = 0; c < batch.num_columns; ++c) {
      const int8_t op = batch.op_at(r, c);
      if (op < 0) continue;
      // Any surviving predicate must be satisfiable: on a 1-NDV column only
      // =, >=, <= are.
      EXPECT_NE(static_cast<query::PredOp>(op), query::PredOp::kGt);
      EXPECT_NE(static_cast<query::PredOp>(op), query::PredOp::kLt);
      EXPECT_EQ(batch.code_at(r, c), 0);
    }
  }
}

TEST(DegenerateTableTest, WorkloadGeneratorOnTinyDomain) {
  data::Table t = TinyTable(8, 2);
  query::WorkloadSpec spec;
  spec.num_queries = 50;
  spec.seed = 3;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  query::ExactEvaluator exact(t);
  for (const query::LabeledQuery& lq : wl) {
    EXPECT_EQ(exact.Count(lq.query), lq.cardinality);
    EXPECT_GE(lq.cardinality, 1u) << "anchored generation guarantees >= 1 match";
  }
}

}  // namespace
}  // namespace duet
