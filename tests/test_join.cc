// Tests for join support: EquiJoin correctness against a nested-loop
// reference, outer-join semantics, and the NeuroCard-style end-to-end flow
// (train Duet on the materialized join, estimate join-query cardinalities).
#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/join.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::data {
namespace {

using query::PredOp;
using query::Query;

/// A dimension table (unique keys) and a fact table with a foreign key into
/// it, plus payload columns on both sides.
struct StarPair {
  Table dim;
  Table fact;
};

StarPair MakeStar(int64_t dim_rows, int64_t fact_rows, uint64_t seed) {
  Rng rng(seed);
  // dim: key 0..dim_rows-1, payload correlated with key parity.
  std::vector<double> dkey, dpayload;
  for (int64_t i = 0; i < dim_rows; ++i) {
    dkey.push_back(static_cast<double>(i));
    dpayload.push_back(static_cast<double>((i % 7) * 10));
  }
  Table dim("dim", {Column::FromValues("key", dkey), Column::FromValues("payload", dpayload)});
  // fact: fk skewed toward low keys, measure correlated with fk.
  ZipfDistribution fk_dist(static_cast<uint32_t>(dim_rows), 1.1);
  std::vector<double> fk, measure;
  for (int64_t i = 0; i < fact_rows; ++i) {
    const uint32_t k = fk_dist.Sample(rng);
    fk.push_back(static_cast<double>(k));
    measure.push_back(static_cast<double>((k % 5) + static_cast<double>(rng.UniformInt(3))));
  }
  Table fact("fact",
             {Column::FromValues("fk", fk), Column::FromValues("measure", measure)});
  return {std::move(dim), std::move(fact)};
}

/// Nested-loop reference join size.
int64_t ReferenceJoinSize(const Table& l, int lk, const Table& r, int rk) {
  int64_t n = 0;
  for (int64_t i = 0; i < l.num_rows(); ++i) {
    const double lv = l.column(lk).Value(l.code(i, lk));
    for (int64_t j = 0; j < r.num_rows(); ++j) {
      if (r.column(rk).Value(r.code(j, rk)) == lv) ++n;
    }
  }
  return n;
}

TEST(JoinTest, InnerJoinSizeMatchesNestedLoop) {
  StarPair star = MakeStar(20, 150, 1);
  EXPECT_EQ(EquiJoinSize(star.fact, 0, star.dim, 0),
            ReferenceJoinSize(star.fact, 0, star.dim, 0));
}

TEST(JoinTest, FkJoinPreservesFactRowCount) {
  // Every fact row matches exactly one dim row -> |join| == |fact|.
  StarPair star = MakeStar(30, 400, 2);
  EXPECT_EQ(EquiJoinSize(star.fact, 0, star.dim, 0), star.fact.num_rows());
  Table joined = EquiJoin(star.fact, 0, star.dim, 0, "j");
  EXPECT_EQ(joined.num_rows(), star.fact.num_rows());
  // fact(2 cols) + dim(2 cols) - shared key = 3 columns.
  EXPECT_EQ(joined.num_columns(), 3);
  EXPECT_EQ(joined.column(0).name(), "l_fk");
  EXPECT_EQ(joined.column(2).name(), "r_payload");
}

TEST(JoinTest, JoinedRowsCarryMatchingValues) {
  StarPair star = MakeStar(15, 100, 3);
  Table joined = EquiJoin(star.fact, 0, star.dim, 0, "j");
  // r_payload must equal the dim payload of the row's l_fk key.
  for (int64_t r = 0; r < joined.num_rows(); ++r) {
    const double fk = joined.column(0).Value(joined.code(r, 0));
    const double payload = joined.column(2).Value(joined.code(r, 2));
    EXPECT_DOUBLE_EQ(payload, static_cast<double>((static_cast<int64_t>(fk) % 7) * 10));
  }
}

TEST(JoinTest, LeftOuterKeepsUnmatchedRows) {
  // dim covers keys 0..9 only; facts reference 0..19.
  std::vector<double> dkey;
  for (int64_t i = 0; i < 10; ++i) dkey.push_back(static_cast<double>(i));
  Table dim("dim", {Column::FromValues("key", dkey)});
  std::vector<double> fk;
  for (int64_t i = 0; i < 20; ++i) fk.push_back(static_cast<double>(i));
  Table fact("fact", {Column::FromValues("fk", fk)});
  EXPECT_EQ(EquiJoinSize(fact, 0, dim, 0, JoinKind::kInner), 10);
  EXPECT_EQ(EquiJoinSize(fact, 0, dim, 0, JoinKind::kLeftOuter), 20);
  Table joined = EquiJoin(fact, 0, dim, 0, "j", JoinKind::kLeftOuter);
  EXPECT_EQ(joined.num_rows(), 20);
}

TEST(JoinTest, ManyToManyMultiplies) {
  // 3 left rows with value 1, 2 right rows with value 1 -> 6 pairs.
  Table l("l", {Column::FromValues("k", {1, 1, 1, 2})});
  Table r("r", {Column::FromValues("k", {1, 1, 3})});
  EXPECT_EQ(EquiJoinSize(l, 0, r, 0), 6);
}

TEST(JoinTest, DuetEstimatesJoinQueriesOnMaterializedJoin) {
  // NeuroCard-style end-to-end: train Duet on the materialized FK join and
  // estimate join queries with predicates on both sides.
  StarPair star = MakeStar(25, 3000, 4);
  Table joined = EquiJoin(star.fact, 0, star.dim, 0, "fact_join_dim");

  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  core::DuetModel model(joined, mopt);
  core::TrainOptions topt;
  topt.epochs = 12;
  topt.batch_size = 256;
  core::DuetTrainer(model, topt).Train();

  // Join queries: predicate on the fact measure AND on the dim payload.
  query::ExactEvaluator ev(joined);
  core::DuetEstimator est(model);
  std::vector<double> errors;
  Rng rng(1234);
  for (int i = 0; i < 40; ++i) {
    const int64_t row = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(joined.num_rows())));
    Query q;
    q.predicates.push_back(
        {1, PredOp::kLe, joined.column(1).Value(joined.code(row, 1))});  // l_measure
    q.predicates.push_back(
        {2, PredOp::kEq, joined.column(2).Value(joined.code(row, 2))});  // r_payload
    const double est_card = est.EstimateCardinality(q, joined.num_rows());
    errors.push_back(query::QError(est_card, static_cast<double>(ev.Count(q))));
  }
  EXPECT_LT(Percentile(errors, 50), 2.5);
  EXPECT_LT(Percentile(errors, 90), 12.0);
}

}  // namespace
}  // namespace duet::data
