// Tests for join support: EquiJoin correctness against a nested-loop
// reference, outer-join semantics, the NeuroCard-style end-to-end flow
// (train Duet on the materialized join, estimate join-query cardinalities),
// and the property battery calibrating the optimizer's join-factor
// correction against materialized joins (docs/optimizer.md §3).
#include <cmath>

#include "baselines/traditional/independence.h"
#include "common/stats.h"
#include "core/duet_model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/join.h"
#include "gtest/gtest.h"
#include "optimizer/card_provider.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::data {
namespace {

using query::PredOp;
using query::Query;

/// A dimension table (unique keys) and a fact table with a foreign key into
/// it, plus payload columns on both sides.
struct StarPair {
  Table dim;
  Table fact;
};

StarPair MakeStar(int64_t dim_rows, int64_t fact_rows, uint64_t seed) {
  Rng rng(seed);
  // dim: key 0..dim_rows-1, payload correlated with key parity.
  std::vector<double> dkey, dpayload;
  for (int64_t i = 0; i < dim_rows; ++i) {
    dkey.push_back(static_cast<double>(i));
    dpayload.push_back(static_cast<double>((i % 7) * 10));
  }
  Table dim("dim", {Column::FromValues("key", dkey), Column::FromValues("payload", dpayload)});
  // fact: fk skewed toward low keys, measure correlated with fk.
  ZipfDistribution fk_dist(static_cast<uint32_t>(dim_rows), 1.1);
  std::vector<double> fk, measure;
  for (int64_t i = 0; i < fact_rows; ++i) {
    const uint32_t k = fk_dist.Sample(rng);
    fk.push_back(static_cast<double>(k));
    measure.push_back(static_cast<double>((k % 5) + static_cast<double>(rng.UniformInt(3))));
  }
  Table fact("fact",
             {Column::FromValues("fk", fk), Column::FromValues("measure", measure)});
  return {std::move(dim), std::move(fact)};
}

/// Nested-loop reference join size.
int64_t ReferenceJoinSize(const Table& l, int lk, const Table& r, int rk) {
  int64_t n = 0;
  for (int64_t i = 0; i < l.num_rows(); ++i) {
    const double lv = l.column(lk).Value(l.code(i, lk));
    for (int64_t j = 0; j < r.num_rows(); ++j) {
      if (r.column(rk).Value(r.code(j, rk)) == lv) ++n;
    }
  }
  return n;
}

TEST(JoinTest, InnerJoinSizeMatchesNestedLoop) {
  StarPair star = MakeStar(20, 150, 1);
  EXPECT_EQ(EquiJoinSize(star.fact, 0, star.dim, 0),
            ReferenceJoinSize(star.fact, 0, star.dim, 0));
}

TEST(JoinTest, FkJoinPreservesFactRowCount) {
  // Every fact row matches exactly one dim row -> |join| == |fact|.
  StarPair star = MakeStar(30, 400, 2);
  EXPECT_EQ(EquiJoinSize(star.fact, 0, star.dim, 0), star.fact.num_rows());
  Table joined = EquiJoin(star.fact, 0, star.dim, 0, "j");
  EXPECT_EQ(joined.num_rows(), star.fact.num_rows());
  // fact(2 cols) + dim(2 cols) - shared key = 3 columns.
  EXPECT_EQ(joined.num_columns(), 3);
  EXPECT_EQ(joined.column(0).name(), "l_fk");
  EXPECT_EQ(joined.column(2).name(), "r_payload");
}

TEST(JoinTest, JoinedRowsCarryMatchingValues) {
  StarPair star = MakeStar(15, 100, 3);
  Table joined = EquiJoin(star.fact, 0, star.dim, 0, "j");
  // r_payload must equal the dim payload of the row's l_fk key.
  for (int64_t r = 0; r < joined.num_rows(); ++r) {
    const double fk = joined.column(0).Value(joined.code(r, 0));
    const double payload = joined.column(2).Value(joined.code(r, 2));
    EXPECT_DOUBLE_EQ(payload, static_cast<double>((static_cast<int64_t>(fk) % 7) * 10));
  }
}

TEST(JoinTest, LeftOuterKeepsUnmatchedRows) {
  // dim covers keys 0..9 only; facts reference 0..19.
  std::vector<double> dkey;
  for (int64_t i = 0; i < 10; ++i) dkey.push_back(static_cast<double>(i));
  Table dim("dim", {Column::FromValues("key", dkey)});
  std::vector<double> fk;
  for (int64_t i = 0; i < 20; ++i) fk.push_back(static_cast<double>(i));
  Table fact("fact", {Column::FromValues("fk", fk)});
  EXPECT_EQ(EquiJoinSize(fact, 0, dim, 0, JoinKind::kInner), 10);
  EXPECT_EQ(EquiJoinSize(fact, 0, dim, 0, JoinKind::kLeftOuter), 20);
  Table joined = EquiJoin(fact, 0, dim, 0, "j", JoinKind::kLeftOuter);
  EXPECT_EQ(joined.num_rows(), 20);
}

TEST(JoinTest, ManyToManyMultiplies) {
  // 3 left rows with value 1, 2 right rows with value 1 -> 6 pairs.
  Table l("l", {Column::FromValues("k", {1, 1, 1, 2})});
  Table r("r", {Column::FromValues("k", {1, 1, 3})});
  EXPECT_EQ(EquiJoinSize(l, 0, r, 0), 6);
}

TEST(JoinTest, DuetEstimatesJoinQueriesOnMaterializedJoin) {
  // NeuroCard-style end-to-end: train Duet on the materialized FK join and
  // estimate join queries with predicates on both sides.
  StarPair star = MakeStar(25, 3000, 4);
  Table joined = EquiJoin(star.fact, 0, star.dim, 0, "fact_join_dim");

  core::DuetModelOptions mopt;
  mopt.hidden_sizes = {64, 64};
  core::DuetModel model(joined, mopt);
  core::TrainOptions topt;
  topt.epochs = 12;
  topt.batch_size = 256;
  core::DuetTrainer(model, topt).Train();

  // Join queries: predicate on the fact measure AND on the dim payload.
  query::ExactEvaluator ev(joined);
  core::DuetEstimator est(model);
  std::vector<double> errors;
  Rng rng(1234);
  for (int i = 0; i < 40; ++i) {
    const int64_t row = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(joined.num_rows())));
    Query q;
    q.predicates.push_back(
        {1, PredOp::kLe, joined.column(1).Value(joined.code(row, 1))});  // l_measure
    q.predicates.push_back(
        {2, PredOp::kEq, joined.column(2).Value(joined.code(row, 2))});  // r_payload
    const double est_card = est.EstimateCardinality(q, joined.num_rows());
    errors.push_back(query::QError(est_card, static_cast<double>(ev.Count(q))));
  }
  EXPECT_LT(Percentile(errors, 50), 2.5);
  EXPECT_LT(Percentile(errors, 90), 12.0);
}

// ---------------------------------------------------------------------------
// Property battery: EquiJoinSize vs materialized joins, join-factor
// calibration, and the empty-result regression
// ---------------------------------------------------------------------------

/// Random single-key table: `rows` keys drawn from a `universe`-value
/// distribution shifted by `offset` (a large offset makes the key sets
/// disjoint), plus a payload column. zipf_theta 0 = uniform keys.
Table RandomKeyTable(const std::string& name, int64_t rows, uint64_t seed,
                     uint32_t universe, double zipf_theta, int64_t offset) {
  Rng rng(seed);
  std::vector<double> keys, payload;
  keys.reserve(static_cast<size_t>(rows));
  payload.reserve(static_cast<size_t>(rows));
  ZipfDistribution zipf(universe, zipf_theta > 0.0 ? zipf_theta : 1.0);
  for (int64_t i = 0; i < rows; ++i) {
    const uint64_t k = zipf_theta > 0.0 ? zipf.Sample(rng) : rng.UniformInt(universe);
    keys.push_back(static_cast<double>(offset + static_cast<int64_t>(k)));
    payload.push_back(static_cast<double>(rng.UniformInt(5)));
  }
  return Table(name, {Column::FromValues("k", keys), Column::FromValues("p", payload)});
}

TEST(JoinPropertyTest, SizeMatchesMaterializedOnRandomDistributions) {
  // Randomized FK-ish (full overlap), partial-overlap and disjoint key
  // distributions, uniform and Zipf-skewed, both join kinds: the cheap
  // size pre-check must equal the materialized row count every time.
  struct Case {
    uint64_t seed;
    uint32_t left_universe, right_universe;
    double left_zipf, right_zipf;
    int64_t right_offset;
  };
  const std::vector<Case> cases = {
      {11, 30, 30, 0.0, 0.0, 0},    // uniform, full overlap
      {12, 30, 30, 1.2, 0.0, 0},    // skewed left
      {13, 40, 40, 1.1, 1.3, 20},   // skewed both, partial overlap
      {14, 25, 25, 0.0, 0.0, 100},  // disjoint keys (empty inner join)
      {15, 8, 60, 0.0, 1.5, 0},     // narrow left into wide skewed right
  };
  for (const Case& c : cases) {
    const Table left = RandomKeyTable("l", 180, c.seed, c.left_universe, c.left_zipf, 0);
    const Table right = RandomKeyTable("r", 140, c.seed + 1000, c.right_universe,
                                       c.right_zipf, c.right_offset);
    // Nested-loop reference, per kind: sum of per-left-row match counts,
    // plus one null-padded row per unmatched left row for the outer join.
    const auto reference = [&](JoinKind kind) {
      int64_t n = 0;
      for (int64_t i = 0; i < left.num_rows(); ++i) {
        const double lv = left.column(0).Value(left.code(i, 0));
        int64_t matches = 0;
        for (int64_t j = 0; j < right.num_rows(); ++j) {
          if (right.column(0).Value(right.code(j, 0)) == lv) ++matches;
        }
        n += matches;
        if (matches == 0 && kind == JoinKind::kLeftOuter) ++n;
      }
      return n;
    };
    for (const JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter}) {
      const int64_t predicted = EquiJoinSize(left, 0, right, 0, kind);
      EXPECT_EQ(predicted, reference(kind));
      const Table joined = EquiJoin(left, 0, right, 0, "j", kind);
      EXPECT_EQ(joined.num_rows(), predicted)
          << "seed " << c.seed << " kind " << static_cast<int>(kind);
    }
  }
}

TEST(JoinPropertyTest, InnerRowsAreSubsetOfLeftOuterRows) {
  for (uint64_t seed = 21; seed < 27; ++seed) {
    const Table left = RandomKeyTable("l", 160, seed, 35, 1.1, 0);
    const Table right = RandomKeyTable("r", 120, seed + 500, 35, 0.0, 10);
    const int64_t inner = EquiJoinSize(left, 0, right, 0, JoinKind::kInner);
    const int64_t outer = EquiJoinSize(left, 0, right, 0, JoinKind::kLeftOuter);
    EXPECT_LE(inner, outer);
    // The outer join adds exactly one null-padded row per unmatched left row.
    int64_t unmatched = 0;
    const Column& lk = left.column(0);
    const Column& rk = right.column(0);
    for (int64_t r = 0; r < left.num_rows(); ++r) {
      const double v = lk.Value(lk.code(r));
      int64_t occurrences = 0;
      for (int64_t rr = 0; rr < right.num_rows(); ++rr) {
        if (rk.Value(rk.code(rr)) == v) ++occurrences;
      }
      if (occurrences == 0) ++unmatched;
    }
    EXPECT_EQ(outer - inner, unmatched);
  }
}

TEST(JoinPropertyTest, JoinFactorCorrectionMatchesEquiJoinSize) {
  // The optimizer's join-factor correction (optimizer::JoinKeyStats) must
  // be EXACTLY EquiJoinSize on two-table subsets — arbitrary (non-aligned)
  // dictionaries, skew, partial overlap.
  for (uint64_t seed = 41; seed < 47; ++seed) {
    const Table left = RandomKeyTable("l", 200, seed, 30, 1.2, 0);
    const Table right = RandomKeyTable("r", 90, seed + 77, 45, 0.0, 12);
    const optimizer::JoinKeyStats stats({&left, &right}, 0);
    EXPECT_EQ(stats.UnfilteredJoinSize(0b11),
              static_cast<double>(EquiJoinSize(left, 0, right, 0)));
    EXPECT_EQ(stats.UnfilteredJoinSize(0b01), static_cast<double>(left.num_rows()));
    EXPECT_EQ(stats.UnfilteredJoinSize(0b10), static_cast<double>(right.num_rows()));
  }
}

TEST(JoinPropertyTest, JoinFactorCorrectionExactOnForeignKeyJoins) {
  // FK join: every fact row matches exactly one dimension row, so the
  // unfiltered join factor IS the fact row count — the composition
  // card(S) = sel * J(S) is exact, not an estimate, with no filters.
  StarPair star = MakeStar(30, 500, 7);
  const optimizer::JoinKeyStats stats({&star.fact, &star.dim}, 0);
  EXPECT_EQ(stats.UnfilteredJoinSize(0b11), static_cast<double>(star.fact.num_rows()));
  EXPECT_EQ(stats.UnfilteredJoinSize(0b11),
            static_cast<double>(EquiJoinSize(star.fact, 0, star.dim, 0)));
}

TEST(JoinTest, EmptyJoinResultIsValidZeroRowTable) {
  // Regression: EquiJoin used to DUET_CHECK-abort on an empty result. A
  // join matching nothing must come back as a zero-row table with the full
  // output schema and non-empty dictionaries.
  Table l("l", {Column::FromValues("k", {1, 2, 3}), Column::FromValues("v", {7, 8, 9})});
  Table r("r", {Column::FromValues("k", {10, 11}), Column::FromValues("w", {4, 5})});
  EXPECT_EQ(EquiJoinSize(l, 0, r, 0), 0);
  Table joined = EquiJoin(l, 0, r, 0, "j");
  EXPECT_EQ(joined.num_rows(), 0);
  EXPECT_EQ(joined.num_columns(), 3);
  EXPECT_EQ(joined.column(0).name(), "l_k");
  EXPECT_EQ(joined.column(1).name(), "l_v");
  EXPECT_EQ(joined.column(2).name(), "r_w");
  for (int c = 0; c < joined.num_columns(); ++c) EXPECT_GT(joined.column(c).ndv(), 0);

  // An estimator fed the zero-row intermediate clamps instead of crashing:
  // finite selectivity, cardinality floored at the 1-tuple convention.
  baselines::IndependenceEstimator est(joined);
  Query q;
  q.predicates.push_back({1, PredOp::kEq, 7.0});
  const double sel = est.EstimateSelectivity(q);
  EXPECT_TRUE(std::isfinite(sel));
  EXPECT_GE(sel, 0.0);
  EXPECT_EQ(est.EstimateCardinality(q, joined.num_rows()), 1.0);
}

}  // namespace
}  // namespace duet::data
