// Compiled inference-plan suite (nn/inference_plan.h): permutation parity,
// plan-cache coherence, backend-switch atomicity, and the fp16 backend.
//
// The contract under test (`ctest -L plan`):
//  * compiled-plan forwards with dense and CSR packs are BITWISE-equal to
//    the uncompiled layer-by-layer path for random MADE / ResMADE / MLP
//    configs — the degree-sorted output permutation changes the storage
//    layout and the skipped zeros, never a single accumulation order;
//  * int8 and f16 plans stay within their documented error bounds (f16:
//    relative weight error <= 2^-11 feeding an otherwise-exact forward);
//  * the plan cache obeys the packed-weights invalidation rules (parameter
//    version bumps and backend switches recompile, hits are counted);
//  * a backend switch racing concurrent forwards can never produce a torn
//    view: every planned forward matches exactly one backend's reference;
//  * FloatToHalf/HalfToFloat implement IEEE binary16 round-to-nearest-even.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/duet_model.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "nn/inference_plan.h"
#include "nn/layers.h"
#include "nn/made.h"
#include "query/workload.h"
#include "serve/serving_engine.h"
#include "tensor/packed_weights.h"
#include "tensor/tensor.h"

namespace duet {
namespace {

using nn::Made;
using nn::MadeOptions;
using tensor::Tensor;
using tensor::WeightBackend;

Tensor RandomInput(int64_t b, int64_t d, uint64_t seed, float zero_prob = 0.3f) {
  Rng rng(seed);
  Tensor x = Tensor::Zeros({b, d});
  float* p = x.data();
  for (int64_t i = 0; i < b * d; ++i) {
    // Exact zeros matter: every packed kernel keys on one-hot input sparsity.
    p[i] = rng.UniformFloat() < zero_prob ? 0.0f : (rng.UniformFloat() * 2.0f - 1.0f);
  }
  return x;
}

/// Uncompiled reference: plan execution disabled, dense per-layer path.
std::vector<float> UncompiledForward(const Made& made, const Tensor& x) {
  made.SetPlanEnabled(false);
  made.SetInferenceBackend(WeightBackend::kDenseF32);
  tensor::NoGradScope no_grad;
  Tensor y = made.Forward(x);
  made.SetPlanEnabled(true);
  return y.value_vector();
}

std::vector<float> PlannedForward(const Made& made, const Tensor& x, WeightBackend backend) {
  made.SetPlanEnabled(true);
  made.SetInferenceBackend(backend);
  tensor::NoGradScope no_grad;
  Tensor y = made.Forward(x);
  return y.value_vector();
}

struct PlanCase {
  const char* name;
  bool residual;
  std::vector<int64_t> hidden;
};

class PlanParityTest : public ::testing::TestWithParam<PlanCase> {};

/// Random column-blocked configs: uneven block widths exercise multi-run
/// masks, heterogeneous hidden sizes exercise per-layer permutations.
MadeOptions RandomMadeOptions(const PlanCase& c, uint64_t seed) {
  Rng rng(seed);
  MadeOptions opt;
  const int cols = 3 + static_cast<int>(rng.UniformFloat() * 3.0f);  // 3..5
  for (int i = 0; i < cols; ++i) {
    opt.input_widths.push_back(2 + static_cast<int64_t>(rng.UniformFloat() * 5.0f));
    opt.output_widths.push_back(2 + static_cast<int64_t>(rng.UniformFloat() * 5.0f));
  }
  opt.hidden_sizes = c.hidden;
  opt.residual = c.residual;
  return opt;
}

TEST_P(PlanParityTest, DenseAndCsrPlansAreBitwiseEqualToUncompiled) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(100 + seed);
    Made made(RandomMadeOptions(GetParam(), seed), rng);
    for (int64_t batch : {1, 7, 64}) {
      const Tensor x = RandomInput(batch, made.input_dim(), 17 * seed + batch);
      const std::vector<float> reference = UncompiledForward(made, x);
      // Bitwise: the permuted packs accumulate every output element in the
      // same k-ascending order as the unpermuted kernels and the gathering
      // epilogue applies the identical bias/activation expressions.
      EXPECT_EQ(PlannedForward(made, x, WeightBackend::kDenseF32), reference)
          << GetParam().name << " dense plan diverged (seed " << seed << ", batch "
          << batch << ")";
      EXPECT_EQ(PlannedForward(made, x, WeightBackend::kCsrF32), reference)
          << GetParam().name << " csr plan diverged (seed " << seed << ", batch "
          << batch << ")";
    }
  }
}

TEST_P(PlanParityTest, F16AndInt8PlansAreAccuracyBounded) {
  Rng rng(7);
  Made made(RandomMadeOptions(GetParam(), 2), rng);
  const Tensor x = RandomInput(9, made.input_dim(), 23);
  const std::vector<float> reference = UncompiledForward(made, x);
  const std::vector<float> f16 = PlannedForward(made, x, WeightBackend::kF16);
  const std::vector<float> int8 = PlannedForward(made, x, WeightBackend::kInt8);
  ASSERT_EQ(f16.size(), reference.size());
  ASSERT_EQ(int8.size(), reference.size());
  double max_abs = 0.0;
  for (float v : reference) max_abs = std::max(max_abs, std::fabs(static_cast<double>(v)));
  for (size_t i = 0; i < reference.size(); ++i) {
    // f16 perturbs each weight by <= 2^-11 relative; through a handful of
    // layers the logit error stays far below 1% of the logit scale.
    EXPECT_NEAR(f16[i], reference[i], 0.01 * std::max(1.0, max_abs))
        << "f16 logit " << i;
    // int8 is the coarser format; generous end-to-end envelope.
    EXPECT_NEAR(int8[i], reference[i], 0.15 * std::max(1.0, max_abs))
        << "int8 logit " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, PlanParityTest,
    ::testing::Values(PlanCase{"PlainSmall", false, {32, 32}},
                      PlanCase{"PlainHetero", false, {48, 24, 40}},
                      PlanCase{"PlainDeep", false, {24, 24, 24, 24}},
                      PlanCase{"Res2x32", true, {32, 32}},
                      PlanCase{"Res3x24", true, {24, 24, 24}}),
    [](const ::testing::TestParamInfo<PlanCase>& info) { return info.param.name; });

// ----- permutation structure ----------------------------------------------

TEST(DegreeSortPermutationTest, SortsColumnsByDescendingNonzeroCount) {
  // Columns with 3, 1, 2, 3 nonzeros -> stable descending: 0, 3, 2, 1.
  Tensor w = Tensor::FromVector({3, 4}, {1.0f, 0.0f, 1.0f, 1.0f,  //
                                         1.0f, 0.0f, 0.0f, 1.0f,  //
                                         1.0f, 1.0f, 1.0f, 1.0f});
  const std::vector<int32_t> perm = tensor::DegreeSortPermutation(w);
  ASSERT_EQ(perm.size(), 4u);
  EXPECT_EQ(perm[0], 0);
  EXPECT_EQ(perm[1], 3);
  EXPECT_EQ(perm[2], 2);
  EXPECT_EQ(perm[3], 1);
}

TEST(DegreeSortPermutationTest, IdentityReturnsEmpty) {
  Tensor w = Tensor::FromVector({2, 3}, {1.0f, 1.0f, 0.0f,  //
                                         1.0f, 0.0f, 0.0f});
  EXPECT_TRUE(tensor::DegreeSortPermutation(w).empty());
}

TEST(PermutedPackTest, MadeMaskRowsDegenerateToSingleCsrRuns) {
  // A real MADE hidden mask: cycling degrees produce multiple runs per row
  // unpermuted; degree-sorted they must collapse to at most one run.
  const std::vector<int32_t> in_deg = nn::MadeInputDegrees({3, 3, 3, 3});
  const std::vector<int32_t> hid = nn::MadeHiddenDegrees(24, 4);
  Tensor mask = nn::BuildMadeMask(in_deg, hid, /*strict=*/false);
  // Use the mask itself as the weight (all allowed entries nonzero).
  const std::vector<int32_t> perm = tensor::DegreeSortPermutation(mask);
  ASSERT_FALSE(perm.empty());
  auto packed = tensor::PackWeights(mask, WeightBackend::kCsrF32, &perm);
  ASSERT_TRUE(packed->permuted());
  for (int64_t k = 0; k < packed->in; ++k) {
    const int32_t runs = packed->row_ptr[static_cast<size_t>(k) + 1] -
                         packed->row_ptr[static_cast<size_t>(k)];
    EXPECT_LE(runs, 1) << "row " << k << " not a single run after permutation";
  }
  // Unpermuted, the cycling-degree mask needs strictly more runs in total.
  auto unpermuted = tensor::PackWeights(mask, WeightBackend::kCsrF32);
  EXPECT_GT(unpermuted->row_ptr.back(), packed->row_ptr.back());
}

TEST(PermutedPackTest, DensePrefixLengthsCoverExactlyTheNonzeros) {
  Rng rng(3);
  const std::vector<int32_t> in_deg = nn::MadeInputDegrees({2, 4, 3});
  const std::vector<int32_t> hid = nn::MadeHiddenDegrees(17, 3);
  Tensor mask = nn::BuildMadeMask(in_deg, hid, /*strict=*/false);
  Tensor w = Tensor::Zeros({mask.dim(0), mask.dim(1)});
  for (int64_t i = 0; i < w.numel(); ++i) {
    w.data()[i] = mask.data()[i] * (rng.UniformFloat() + 0.5f);
  }
  const std::vector<int32_t> perm = tensor::DegreeSortPermutation(w);
  ASSERT_FALSE(perm.empty());
  auto packed = tensor::PackWeights(w, WeightBackend::kDenseF32, &perm);
  ASSERT_FALSE(packed->row_len16.empty());
  const float* dense = packed->dense.data();
  for (int64_t k = 0; k < packed->in; ++k) {
    const int64_t len = packed->row_len16[static_cast<size_t>(k)];
    for (int64_t p = len; p < packed->out; ++p) {
      EXPECT_EQ(dense[k * packed->out + p], 0.0f)
          << "nonzero beyond prefix at row " << k << " col " << p;
    }
    if (len > 0) EXPECT_NE(dense[k * packed->out + len - 1], 0.0f);
  }
}

// ----- plan cache coherence ------------------------------------------------

TEST(PlanCacheTest, CompilesOnceThenHits) {
  Rng rng(5);
  MadeOptions opt;
  opt.input_widths = {3, 4};
  opt.output_widths = {3, 4};
  opt.hidden_sizes = {16, 16};
  Made made(opt, rng);
  const Tensor x = RandomInput(2, made.input_dim(), 9);
  tensor::NoGradScope no_grad;
  made.Forward(x);
  const nn::PlanTelemetry after_first = made.PlanInfo();
  EXPECT_EQ(after_first.compiles, 1u);
  made.Forward(x);
  made.Forward(x);
  const nn::PlanTelemetry after_three = made.PlanInfo();
  EXPECT_EQ(after_three.compiles, 1u) << "steady-state forwards must not recompile";
  EXPECT_EQ(after_three.cache_hits, after_first.cache_hits + 2);
  EXPECT_GT(made.PlanBytes(), 0u);
  EXPECT_GE(made.CachedBytes(), made.PlanBytes());
}

TEST(PlanCacheTest, ParameterVersionBumpRecompiles) {
  Rng rng(6);
  MadeOptions opt;
  opt.input_widths = {3, 3};
  opt.output_widths = {3, 3};
  opt.hidden_sizes = {12};
  Made made(opt, rng);
  const Tensor x = RandomInput(1, made.input_dim(), 11);
  tensor::NoGradScope no_grad;
  const std::vector<float> before = made.Forward(x).value_vector();
  {
    tensor::ParameterMutationGuard guard;
    tensor::Tensor w0 = made.parameters()[0];  // shared handle, same storage
    w0.data()[0] += 1.0f;
  }
  const std::vector<float> after = made.Forward(x).value_vector();
  EXPECT_EQ(made.PlanInfo().compiles, 2u) << "version bump must recompile the plan";
  EXPECT_NE(before, after) << "stale plan served after parameter mutation";
}

TEST(PlanCacheTest, BackendSwitchRecompiles) {
  Rng rng(8);
  MadeOptions opt;
  opt.input_widths = {4, 2};
  opt.output_widths = {2, 4};
  opt.hidden_sizes = {10, 10};
  Made made(opt, rng);
  const Tensor x = RandomInput(1, made.input_dim(), 13);
  tensor::NoGradScope no_grad;
  made.Forward(x);
  made.SetInferenceBackend(WeightBackend::kCsrF32);
  made.Forward(x);
  EXPECT_EQ(made.PlanInfo().compiles, 2u);
  made.SetInferenceBackend(WeightBackend::kDenseF32);
  made.Forward(x);
  EXPECT_EQ(made.PlanInfo().compiles, 3u);
}

TEST(PlanCacheTest, DisablingPlansReclaimsTheProgram) {
  Rng rng(14);
  MadeOptions opt;
  opt.input_widths = {3, 3};
  opt.output_widths = {3, 3};
  opt.hidden_sizes = {12};
  Made made(opt, rng);
  const Tensor x = RandomInput(1, made.input_dim(), 19);
  tensor::NoGradScope no_grad;
  made.Forward(x);
  EXPECT_GT(made.PlanBytes(), 0u);
  made.SetPlanEnabled(false);
  EXPECT_EQ(made.PlanBytes(), 0u) << "a disabled plan must not stay allocated";
  // Uncompiled non-dense traffic populates the per-layer packed caches...
  made.SetInferenceBackend(WeightBackend::kCsrF32);
  made.Forward(x);
  EXPECT_EQ(made.PlanBytes(), 0u);
  EXPECT_GT(made.CachedBytes(), 0u);
  // ...which the plan path never reads: re-enabling must reclaim them too,
  // or CachedBytes double-counts stale layer packs on top of the plan.
  made.SetPlanEnabled(true);
  EXPECT_EQ(made.CachedBytes(), 0u) << "stale per-layer packs retained under plans";
  made.Forward(x);
  EXPECT_GT(made.PlanBytes(), 0u);
  EXPECT_EQ(made.CachedBytes(), made.PlanBytes());
  EXPECT_EQ(made.PlanInfo().compiles, 2u);
}

TEST(PlanCacheTest, TrainingForwardsBypassThePlan) {
  Rng rng(9);
  MadeOptions opt;
  opt.input_widths = {3, 3};
  opt.output_widths = {3, 3};
  opt.hidden_sizes = {8};
  Made made(opt, rng);
  const Tensor x = RandomInput(2, made.input_dim(), 15);
  Tensor y = made.Forward(x);  // gradients enabled: must stay on the graph path
  EXPECT_EQ(made.PlanInfo().compiles, 0u);
  EXPECT_EQ(made.PlanBytes(), 0u);
  EXPECT_TRUE(static_cast<bool>(y.impl()->backward) || !y.impl()->parents.empty());
}

// ----- backend-switch atomicity (the SetInferenceBackend race guard) -------

TEST(PlanBackendSwitchTest, ConcurrentSwitchNeverYieldsTornForwards) {
  // Hammer no-grad forwards from worker threads while the main thread flips
  // the backend. Planned forwards resolve their backend exactly once per
  // forward (one atomically published program), so every observed output
  // must equal one of the per-backend references — a mixed or torn result
  // fails. This is the enforcement test for the SetInferenceBackend /
  // Forward publication contract.
  Rng rng(12);
  MadeOptions opt;
  opt.input_widths = {3, 4, 2};
  opt.output_widths = {4, 3, 2};
  opt.hidden_sizes = {24, 24};
  opt.residual = true;
  Made made(opt, rng);
  const Tensor x = RandomInput(2, made.input_dim(), 21);

  const std::vector<WeightBackend> backends = {WeightBackend::kDenseF32,
                                               WeightBackend::kCsrF32, WeightBackend::kInt8,
                                               WeightBackend::kF16};
  std::vector<std::vector<float>> refs;
  for (WeightBackend b : backends) refs.push_back(PlannedForward(made, x, b));
  // dense and csr are bitwise-equal; int8/f16 must differ from dense here so
  // the membership check below can actually detect cross-backend mixing.
  ASSERT_EQ(refs[0], refs[1]);
  ASSERT_NE(refs[0], refs[2]);
  ASSERT_NE(refs[0], refs[3]);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      tensor::NoGradScope no_grad;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<float> y = made.Forward(x).value_vector();
        bool match = false;
        for (const auto& ref : refs) match |= (y == ref);
        if (!match) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    made.SetInferenceBackend(backends[static_cast<size_t>(round) % backends.size()]);
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(torn.load(), 0) << "a forward observed a torn/mixed backend view";
}

// ----- fp16 conversion ----------------------------------------------------

TEST(HalfFloatTest, RoundTripsExactHalfValues) {
  const float exact[] = {0.0f,   -0.0f, 1.0f,     -1.0f,   0.5f,    65504.0f,
                         -2.75f, 0.125f, 1024.0f, -0.0625f, 6.103515625e-05f};
  for (float v : exact) {
    EXPECT_EQ(tensor::HalfToFloat(tensor::FloatToHalf(v)), v) << "value " << v;
  }
}

TEST(HalfFloatTest, RoundsToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10):
  // round-to-even picks 1.0. 1 + 3*2^-11 sits between 1+2^-10 and 1+2^-9...
  // even mantissa again: 1 + 2^-9? No: nearest-even of an exact tie picks
  // the even mantissa, i.e. 1 + 2^-10 rounds up to 1 + 2*2^-10.
  EXPECT_EQ(tensor::HalfToFloat(tensor::FloatToHalf(1.0f + 0.00048828125f)), 1.0f);
  EXPECT_EQ(tensor::HalfToFloat(tensor::FloatToHalf(1.0f + 3.0f * 0.00048828125f)),
            1.0f + 2.0f * 0.0009765625f);
}

TEST(HalfFloatTest, SaturatesAndPreservesSpecials) {
  EXPECT_EQ(tensor::FloatToHalf(1e6f), 0x7c00);                 // +inf
  EXPECT_EQ(tensor::FloatToHalf(-1e6f), 0xfc00);                // -inf
  EXPECT_EQ(tensor::FloatToHalf(65520.0f), 0x7c00);             // rounds up to inf
  EXPECT_EQ(tensor::HalfToFloat(0x7c00), HUGE_VALF);            // inf decodes
  EXPECT_TRUE(std::isnan(tensor::HalfToFloat(tensor::FloatToHalf(NAN))));
  // Subnormals survive the round trip.
  const float sub = 5.960464477539063e-08f;  // 2^-24, min half subnormal
  EXPECT_EQ(tensor::HalfToFloat(tensor::FloatToHalf(sub)), sub);
  EXPECT_EQ(tensor::FloatToHalf(1e-9f), 0);  // below half of min subnormal
}

TEST(HalfFloatTest, RelativeErrorBoundHoldsForNormals) {
  Rng rng(33);
  for (int i = 0; i < 2000; ++i) {
    const float v = (rng.UniformFloat() * 2.0f - 1.0f) * 100.0f;
    if (std::fabs(v) < 1e-3f) continue;
    const float d = tensor::HalfToFloat(tensor::FloatToHalf(v));
    EXPECT_LE(std::fabs(d - v), std::fabs(v) * (1.0f / 2048.0f) + 1e-12f)
        << "value " << v;
  }
}

// ----- end-to-end: f16 through the estimator and serving engine ------------

TEST(F16BackendTest, MedianQErrorWithinOnePercentOfDense) {
  const data::Table t = data::CensusLike(500, 19);
  core::DuetModelOptions opt;
  opt.hidden_sizes = {48, 48};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  query::WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 77;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  std::vector<query::Query> queries;
  for (const auto& lq : wl) queries.push_back(lq.query);

  auto median_qerr = [&](WeightBackend b) {
    model.SetInferenceBackend(b);
    const std::vector<double> est_cards =
        est.EstimateCardinalityBatch(queries, t.num_rows());
    std::vector<double> errs;
    for (size_t i = 0; i < wl.size(); ++i) {
      errs.push_back(query::QError(est_cards[i], static_cast<double>(wl[i].cardinality)));
    }
    std::sort(errs.begin(), errs.end());
    return errs[errs.size() / 2];
  };
  const double dense = median_qerr(WeightBackend::kDenseF32);
  const double f16 = median_qerr(WeightBackend::kF16);
  EXPECT_NEAR(f16, dense, 0.01 * dense) << "f16 median q-error drifted >1% from fp32";
}

TEST(PlanServingTest, EngineTogglePlansMatchesUncompiledBitwise) {
  const data::Table t = data::CensusLike(400, 23);
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.residual = true;
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  query::WorkloadSpec spec;
  spec.seed = 41;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(41);
  std::vector<query::Query> queries;
  for (int i = 0; i < 40; ++i) queries.push_back(gen.GenerateQuery(rng));

  std::vector<double> with_plans, without_plans;
  {
    serve::ServingOptions sopt;
    sopt.num_workers = 2;
    sopt.compile_plans = true;
    serve::ServingEngine engine(est, sopt);
    with_plans = engine.EstimateBatch(queries);
    const serve::ServingStats stats = engine.stats();
    EXPECT_GT(stats.plan_cache_hits, 0u);
    EXPECT_GT(stats.plan_compile_micros, 0u);
    EXPECT_GT(stats.plan_bytes, 0u);
    EXPECT_GE(stats.packed_weight_bytes, stats.plan_bytes);
  }
  // The hit counter is cumulative on the model, so with plans off it must
  // simply stop growing.
  const uint64_t hits_after_planned = est.PlanCacheHits();
  {
    serve::ServingOptions sopt;
    sopt.num_workers = 2;
    sopt.compile_plans = false;
    serve::ServingEngine engine(est, sopt);
    without_plans = engine.EstimateBatch(queries);
    EXPECT_EQ(engine.stats().plan_cache_hits, hits_after_planned);
  }
  EXPECT_EQ(with_plans, without_plans)
      << "planned serving must be bitwise-equal to the uncompiled path";
}

}  // namespace
}  // namespace duet
