// Online-update subsystem: immutable model snapshots must give every
// dispatched batch bitwise snapshot isolation under concurrent publish
// churn (no quiesce anywhere); pinned caches must ignore version bumps
// from other models' training; a poisoned fine-tune batch must fail the
// validation gate and roll back; and snapshot churn must not leak — the
// refcounted live set collapses to the current snapshot once traffic
// drains. Runs under ASan in CI like the rest of the suite.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/duet_model.h"
#include "core/finetune.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/workload.h"
#include "serve/model_registry.h"
#include "serve/serving_engine.h"
#include "serve/update_worker.h"
#include "tensor/tensor.h"

namespace duet {
namespace {

using query::Query;

data::Table SmallTable() { return data::CensusLike(600, 11); }

core::DuetModelOptions SmallModelOptions() {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {24, 24};
  opt.residual = true;
  return opt;
}

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

/// Deterministically nudges every parameter so two perturbed clones (and
/// their estimates) differ; holds the mutation guard the contract demands.
void PerturbParameters(core::DuetModel& model, int salt) {
  tensor::ParameterMutationGuard mutation;
  for (const tensor::Tensor& p : model.parameters()) {
    tensor::Tensor t = p;  // shared handle
    float* d = t.data();
    for (int64_t i = 0; i < t.numel(); ++i) {
      d[i] += 0.01f * static_cast<float>(salt) *
              std::sin(static_cast<float>(i % 17) + static_cast<float>(salt));
    }
  }
}

TEST(ModelRegistryTest, PublishSwapsCurrentAndStampsIncrease) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const auto first = registry.Current();
  ASSERT_NE(first, nullptr);
  EXPECT_NE(first->id(), 0u);
  EXPECT_EQ(registry.stats().published, 1u);
  EXPECT_EQ(registry.stats().current_id, first->id());

  auto clone = registry.CloneCurrent();
  PerturbParameters(*clone, 3);
  const auto second = registry.Publish(std::move(clone));
  EXPECT_GT(second->id(), first->id());
  EXPECT_EQ(registry.Current().get(), second.get());
  EXPECT_EQ(registry.stats().published, 2u);
  // The superseded snapshot is still alive here only because `first` holds
  // it.
  EXPECT_EQ(registry.AliveSnapshots(), 2u);
}

TEST(ModelRegistryTest, CloneIsBitwiseIdenticalButIndependent) {
  const data::Table t = SmallTable();
  core::DuetModel model(t, SmallModelOptions());
  const std::vector<Query> queries = MakeQueries(t, 24);
  const std::vector<double> original = model.EstimateSelectivityBatch(queries);

  auto clone = core::CloneModel(model);
  EXPECT_EQ(clone->EstimateSelectivityBatch(queries), original);

  // Training the clone must not disturb the original's estimates.
  PerturbParameters(*clone, 7);
  EXPECT_NE(clone->EstimateSelectivityBatch(queries), original);
  EXPECT_EQ(model.EstimateSelectivityBatch(queries), original);
}

// The multi-version cache rule: a frozen snapshot's pinned pack/plan caches
// ignore the global version bumps another model's training emits — no
// recompiles, no repacks, bitwise-stable estimates.
TEST(LiveUpdateTest, PinnedCachesIgnoreForeignParameterBumps) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const auto snap = registry.Current();
  const std::vector<Query> queries = MakeQueries(t, 20);

  const std::vector<double> before = snap->estimator().EstimateSelectivityBatch(queries);
  const uint64_t compiles_before = snap->model().PlanInfo().compiles;
  const uint64_t bytes_before = snap->model().CachedBytes();
  ASSERT_GE(compiles_before, 1u);  // prewarm compiled the plan
  ASSERT_GT(bytes_before, 0u);

  // Foreign mutations: direct bumps plus a real training run on a separate
  // model (every optimizer step bumps the global counter).
  tensor::BumpParameterVersion();
  core::DuetModel other(t, SmallModelOptions());
  core::TrainOptions topt;
  topt.epochs = 1;
  topt.batch_size = 128;
  core::DuetTrainer(other, topt).Train();
  tensor::BumpParameterVersion();

  EXPECT_EQ(snap->estimator().EstimateSelectivityBatch(queries), before);
  EXPECT_EQ(snap->model().PlanInfo().compiles, compiles_before)
      << "pinned plan cache recompiled on a foreign version bump";
  EXPECT_EQ(snap->model().CachedBytes(), bytes_before);
}

// Same rule on the per-layer packed path (plans off, CSR backend): the
// pinned PackedWeightsCache slots keep serving the frozen packs.
TEST(LiveUpdateTest, PinnedPerLayerPacksIgnoreForeignBumpsWithPlansOff) {
  const data::Table t = SmallTable();
  serve::RegistryOptions ropt;
  ropt.backend = tensor::WeightBackend::kCsrF32;
  ropt.compile_plans = false;
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()), ropt);
  const auto snap = registry.Current();
  const std::vector<Query> queries = MakeQueries(t, 20);

  const std::vector<double> before = snap->estimator().EstimateSelectivityBatch(queries);
  const uint64_t bytes_before = snap->model().CachedBytes();
  ASSERT_GT(bytes_before, 0u);
  EXPECT_EQ(snap->model().PlanBytes(), 0u);

  tensor::BumpParameterVersion();
  EXPECT_EQ(snap->estimator().EstimateSelectivityBatch(queries), before);
  EXPECT_EQ(snap->model().CachedBytes(), bytes_before);
}

TEST(LiveUpdateTest, HotSwapServesNewSnapshotWithoutQuiesce) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.min_shard = 4;
  serve::ServingEngine engine(registry, sopt);
  const std::vector<Query> queries = MakeQueries(t, 30);

  uint64_t id_before = 0;
  const std::vector<double> before = engine.EstimateBatch(queries, &id_before);
  EXPECT_EQ(id_before, registry.Current()->id());
  // Sharded registry-mode serving still equals the single-thread path.
  EXPECT_EQ(before, registry.Current()->estimator().EstimateSelectivityBatch(queries));

  auto clone = registry.CloneCurrent();
  PerturbParameters(*clone, 5);
  registry.Publish(std::move(clone));

  uint64_t id_after = 0;
  const std::vector<double> after = engine.EstimateBatch(queries, &id_after);
  EXPECT_GT(id_after, id_before);
  EXPECT_NE(after, before) << "dispatch after publish still served the old snapshot";
  EXPECT_EQ(after, registry.Current()->estimator().EstimateSelectivityBatch(queries));
  EXPECT_GE(engine.stats().snapshot_swaps, 1u);
}

// The tentpole invariant: under repeated concurrent publishes, every batch
// a client dispatches is bitwise equal to what the snapshot it started on
// would produce single-threaded — no torn batches, no mixing, no locks.
TEST(LiveUpdateTest, SnapshotIsolationUnderConcurrentPublishChurn) {
  const data::Table t = SmallTable();
  const std::vector<Query> queries = MakeQueries(t, 48);
  constexpr int kPublishes = 6;

  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));

  // Pre-build every future snapshot's model and its single-thread reference
  // so serving threads can verify against ground truth computed outside the
  // race.
  std::vector<std::unique_ptr<core::DuetModel>> models;
  std::vector<std::vector<double>> refs;  // refs[i] for models[i]
  for (int i = 0; i < kPublishes; ++i) {
    auto m = registry.CloneCurrent();
    PerturbParameters(*m, i + 1);
    refs.push_back(m->EstimateSelectivityBatch(queries));
    models.push_back(std::move(m));
  }

  // id -> reference index; the initial snapshot gets its own reference.
  std::mutex map_mu;
  std::map<uint64_t, int> id_to_ref;
  const int kInitialRef = kPublishes;
  refs.push_back(registry.Current()->estimator().EstimateSelectivityBatch(queries));
  id_to_ref[registry.Current()->id()] = kInitialRef;

  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.min_shard = 8;
  serve::ServingEngine engine(registry, sopt);

  std::atomic<bool> failed{false};
  auto serve_loop = [&] {
    for (int iter = 0; iter < 40 && !failed.load(); ++iter) {
      uint64_t id = 0;
      const std::vector<double> got = engine.EstimateBatch(queries, &id);
      int ref_index = -1;
      // The publisher records the id right after Publish returns; a reader
      // can observe the snapshot a moment earlier, so wait for the entry.
      for (int spin = 0; spin < 10000 && ref_index < 0; ++spin) {
        {
          std::lock_guard<std::mutex> lock(map_mu);
          auto it = id_to_ref.find(id);
          if (it != id_to_ref.end()) ref_index = it->second;
        }
        if (ref_index < 0) std::this_thread::yield();
      }
      ASSERT_GE(ref_index, 0) << "snapshot id " << id << " never registered";
      const std::vector<double>& expected = refs[static_cast<size_t>(ref_index)];
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] != expected[i]) {
          failed.store(true);
          FAIL() << "batch started on snapshot " << id << " diverged at query " << i
                 << ": got " << got[i] << " want " << expected[i];
        }
      }
    }
  };

  std::thread client_a(serve_loop);
  std::thread client_b(serve_loop);
  for (int i = 0; i < kPublishes; ++i) {
    const auto snap = registry.Publish(std::move(models[static_cast<size_t>(i)]));
    {
      std::lock_guard<std::mutex> lock(map_mu);
      id_to_ref[snap->id()] = i;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  client_a.join();
  client_b.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(registry.stats().published, static_cast<uint64_t>(kPublishes) + 1);
}

// Async micro-batched traffic during churn: every Future's value must match
// one published snapshot's reference for that query (one snapshot per
// micro-batch; no torn values).
TEST(LiveUpdateTest, AsyncSubmitDuringChurnMatchesSomeSnapshot) {
  const data::Table t = SmallTable();
  const std::vector<Query> queries = MakeQueries(t, 32);
  constexpr int kPublishes = 4;

  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  std::vector<std::unique_ptr<core::DuetModel>> models;
  std::vector<std::vector<double>> refs;
  refs.push_back(registry.Current()->estimator().EstimateSelectivityBatch(queries));
  for (int i = 0; i < kPublishes; ++i) {
    auto m = registry.CloneCurrent();
    PerturbParameters(*m, 11 + i);
    refs.push_back(m->EstimateSelectivityBatch(queries));
    models.push_back(std::move(m));
  }

  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  sopt.max_batch = 8;
  sopt.max_wait_us = 100;
  serve::ServingEngine engine(registry, sopt);

  std::vector<serve::ServingEngine::Future> futures;
  std::thread publisher([&] {
    for (auto& m : models) {
      registry.Publish(std::move(m));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int round = 0; round < 6; ++round) {
    for (const Query& q : queries) futures.push_back(engine.Submit(q));
  }
  publisher.join();
  for (size_t f = 0; f < futures.size(); ++f) {
    const double got = futures[f].Wait();
    const size_t qi = f % queries.size();
    bool matches_some_snapshot = false;
    for (const auto& ref : refs) {
      if (got == ref[qi]) {
        matches_some_snapshot = true;
        break;
      }
    }
    EXPECT_TRUE(matches_some_snapshot)
        << "future " << f << " returned " << got
        << ", which no published snapshot would produce for query " << qi;
  }
}

// Gate test: feedback whose tuning slice is poisoned (labels claim every
// query matches the whole table) but whose holdout slice is honest must be
// rolled back — the candidate regresses on data it never trained on — and
// serving must keep the old snapshot, bitwise.
TEST(LiveUpdateTest, RollbackOnPoisonedFineTuneBatch) {
  const data::Table t = SmallTable();
  auto model = std::make_unique<core::DuetModel>(t, SmallModelOptions());
  {  // A briefly trained model so the baseline holdout error is sane.
    core::TrainOptions topt;
    topt.epochs = 2;
    topt.batch_size = 128;
    core::DuetTrainer(*model, topt).Train();
  }
  serve::ModelRegistry registry(std::move(model));
  const uint64_t id_before = registry.Current()->id();
  const std::vector<Query> probe = MakeQueries(t, 20);
  const std::vector<double> before =
      registry.Current()->estimator().EstimateSelectivityBatch(probe);

  query::WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 77;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 32;
  wopt.holdout_every = 4;
  wopt.update.max_regression = 1.05;
  wopt.update.finetune.qerror_threshold = 1.01;  // collect every poisoned pair
  wopt.update.finetune.epochs = 4;
  wopt.update.finetune.learning_rate = 1e-2f;  // hard poison push
  wopt.update.finetune.lambda = 4.0f;
  serve::UpdateWorker worker(registry, wopt);

  // Every 4th pair (the holdout split) keeps its true label; the tuning
  // pairs lie: "this query matched every row".
  for (size_t i = 0; i < wl.size(); ++i) {
    const bool is_holdout = i % 4 == 3;
    worker.AddFeedback(wl[i].query,
                       is_holdout ? static_cast<double>(wl[i].cardinality)
                                  : static_cast<double>(t.num_rows()));
  }
  ASSERT_TRUE(worker.RunOnce());

  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.published, 0u);
  EXPECT_EQ(stats.rolled_back, 1u)
      << "holdout before=" << stats.last_holdout_before
      << " after=" << stats.last_holdout_after;
  EXPECT_GT(stats.last_holdout_after,
            stats.last_holdout_before * wopt.update.max_regression);
  // The poisoned candidate never reached serving.
  EXPECT_EQ(registry.Current()->id(), id_before);
  EXPECT_EQ(registry.Current()->estimator().EstimateSelectivityBatch(probe), before);
}

// Honest feedback on an untrained model must clear the gate and hot-swap a
// better snapshot in.
TEST(LiveUpdateTest, WorkerPublishesWhenFeedbackImproves) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const uint64_t id_before = registry.Current()->id();

  query::WorkloadSpec spec;
  spec.num_queries = 64;
  spec.seed = 78;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 32;
  wopt.update.finetune.qerror_threshold = 1.5;
  wopt.update.finetune.epochs = 2;
  serve::UpdateWorker worker(registry, wopt);
  for (const auto& lq : wl) {
    worker.AddFeedback(lq.query, static_cast<double>(lq.cardinality));
  }
  ASSERT_TRUE(worker.RunOnce());

  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_EQ(stats.published, 1u) << "holdout before=" << stats.last_holdout_before
                                 << " after=" << stats.last_holdout_after;
  EXPECT_LE(stats.last_holdout_after,
            stats.last_holdout_before * wopt.update.max_regression);
  EXPECT_GT(registry.Current()->id(), id_before);
  // Clone accounting: a publishing round peaks at candidate + publish clone
  // — exactly 2x the model's parameter bytes with the direct-copy
  // CloneModel (the old serialize/deserialize path added a transient
  // serialized image on top).
  const uint64_t model_bytes =
      static_cast<uint64_t>(registry.Current()->model().NumParams()) * sizeof(float);
  EXPECT_EQ(stats.clone_peak_bytes, 2 * model_bytes);
}

// Arena warm-up (RegistryOptions::prewarm_arena_batch): Publish's prewarm
// also runs one batch-shaped pass, so the first post-swap batch served from
// the publisher's thread draws every activation buffer from the warmed
// thread-local InferenceArena pools instead of heap-allocating. The arena
// is thread-local, so the assertion runs on the publishing thread (worker
// threads warm their own pools on first traffic).
TEST(LiveUpdateTest, PrewarmPopulatesPublisherArenaForFirstPostSwapBatch) {
  const data::Table t = SmallTable();
  serve::RegistryOptions ropt;
  ropt.prewarm_arena_batch = 16;
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()), ropt);
  const std::vector<Query> queries = MakeQueries(t, 16);

  auto clone = registry.CloneCurrent();
  PerturbParameters(*clone, 5);
  tensor::InferenceArena::Clear();  // cold pools: prove Publish rewarms them
  const auto snap = registry.Publish(std::move(clone));
  tensor::InferenceArena::ResetStats();
  snap->estimator().EstimateSelectivityBatch(queries);
  const tensor::InferenceArena::Stats stats = tensor::InferenceArena::stats();
  EXPECT_EQ(stats.fresh_allocs, 0u)
      << "first post-swap batch on the publisher thread paid allocation";
  EXPECT_GT(stats.reuses, 0u);
  tensor::InferenceArena::Clear();
}

TEST(LiveUpdateTest, OverflowedFeedbackIsDroppedOldestFirstAndCounted) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));

  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 8;
  wopt.max_buffer = 8;  // tiny cap: everything past 8 evicts the oldest
  serve::UpdateWorker worker(registry, wopt);

  query::WorkloadSpec spec;
  spec.num_queries = 12;
  spec.seed = 91;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  for (const auto& lq : wl) {
    worker.AddFeedback(lq.query, static_cast<double>(lq.cardinality));
  }

  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_EQ(stats.feedback_received, 12u);
  EXPECT_EQ(stats.feedback_dropped, 4u);  // 12 submitted into an 8-slot buffer
  EXPECT_EQ(worker.pending_feedback(), 8);
}

TEST(LiveUpdateTest, EngineRoutesObservedFeedbackToWorker) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 1000;  // never triggers a round here
  serve::UpdateWorker worker(registry, wopt);
  serve::ServingEngine engine(registry, {});
  engine.AttachUpdateWorker(&worker);

  const std::vector<Query> queries = MakeQueries(t, 10);
  engine.EstimateBatch(queries);
  for (const Query& q : queries) engine.ReportObserved(q, 42.0);

  EXPECT_EQ(worker.pending_feedback(), 10);
  EXPECT_EQ(worker.stats().feedback_received, 10u);
  EXPECT_EQ(engine.stats().feedback_reported, 10u);

  // Detached: feedback falls through to the estimator hook (a no-op for
  // Duet) instead of the buffer.
  engine.AttachUpdateWorker(nullptr);
  engine.ReportObserved(queries[0], 42.0);
  EXPECT_EQ(worker.pending_feedback(), 10);
  EXPECT_EQ(engine.stats().feedback_reported, 11u);
}

// Churn must not leak snapshots: once traffic drains and external handles
// drop, only the current snapshot survives (the refcount IS the liveness
// rule).
TEST(LiveUpdateTest, NoLeakedSnapshotsAfterChurn) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  const std::vector<Query> queries = MakeQueries(t, 24);
  constexpr int kPublishes = 8;

  {
    serve::ServingOptions sopt;
    sopt.num_workers = 2;
    sopt.min_shard = 8;
    serve::ServingEngine engine(registry, sopt);
    std::thread client([&] {
      for (int i = 0; i < 60; ++i) engine.EstimateBatch(queries);
    });
    for (int i = 0; i < kPublishes; ++i) {
      auto clone = registry.CloneCurrent();
      PerturbParameters(*clone, 20 + i);
      registry.Publish(std::move(clone));  // returned handle dropped at once
    }
    client.join();
  }  // engine destruction drains every in-flight pin

  EXPECT_EQ(registry.AliveSnapshots(), 1u)
      << "superseded snapshots still referenced after traffic drained";
  EXPECT_EQ(registry.stats().published, static_cast<uint64_t>(kPublishes) + 1);
  EXPECT_EQ(registry.stats().current_id, registry.Current()->id());
}

// Background-thread mode: the worker adapts from streamed feedback while
// the engine keeps serving; at least one snapshot must be published and the
// engine must observe the swap.
TEST(LiveUpdateTest, BackgroundWorkerAdaptsUnderLiveTraffic) {
  const data::Table t = SmallTable();
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(t, SmallModelOptions()));
  serve::UpdateWorkerOptions wopt;
  wopt.min_feedback = 48;
  wopt.update.finetune.qerror_threshold = 1.5;
  wopt.update.finetune.epochs = 1;
  wopt.update.max_regression = 10.0;  // adaptation liveness, not quality,
                                      // is under test here
  serve::UpdateWorker worker(registry, wopt);
  worker.Start();
  serve::ServingOptions sopt;
  sopt.num_workers = 2;
  serve::ServingEngine engine(registry, sopt);
  engine.AttachUpdateWorker(&worker);

  query::WorkloadSpec spec;
  spec.num_queries = 48;
  spec.seed = 79;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  std::vector<Query> queries;
  for (const auto& lq : wl) queries.push_back(lq.query);

  // Serve + report until the background worker publishes (bounded wait).
  bool published = false;
  for (int round = 0; round < 200 && !published; ++round) {
    engine.EstimateBatch(queries);
    for (const auto& lq : wl) {
      engine.ReportObserved(lq.query, static_cast<double>(lq.cardinality));
    }
    published = worker.stats().published + worker.stats().rolled_back +
                    worker.stats().skipped >
                0;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  worker.Stop();
  const serve::UpdateWorkerStats stats = worker.stats();
  EXPECT_GE(stats.rounds, 1u) << "background worker never ran a round";
  // Serving stayed live throughout; if a publish happened, new dispatches
  // see the new snapshot.
  if (stats.published > 0) {
    uint64_t id = 0;
    engine.EstimateBatch(queries, &id);
    EXPECT_EQ(id, registry.Current()->id());
  }
}

}  // namespace
}  // namespace duet
