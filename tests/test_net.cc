// Network front-end suite (`ctest -L net`): the DuetRpc v1 wire protocol,
// the epoll server, and snapshot replication (docs/networking.md).
//
// The properties pinned here:
//  * loopback wire serving is BITWISE identical to in-process
//    EstimateBatch — the socket, the frame codec and the ring buffers add
//    no numeric surface, and the async micro-batcher they feed is batch
//    invariant by the kernel contract (docs/architecture.md §2);
//  * the corruption battery: truncated, bit-flipped, oversized and
//    wrong-version frames are each cleanly rejected — the offending
//    connection is dropped, counted as a protocol error, and the server,
//    its other connections and the engine keep serving untouched;
//  * resilience semantics survive the wire: deadlines arrive flagged
//    deadline_expired, budget overflows arrive flagged shed + fallback,
//    and service recovers immediately after;
//  * replication ships the primary's current snapshot to a replica that
//    serves bitwise-equal estimates; a torn or corrupted transfer leaves
//    the replica serving its OLD snapshot (fault-injection tested).
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/traditional/independence.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/duet_model.h"
#include "data/generator.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/ring_buffer.h"
#include "net/server.h"
#include "net/wire.h"
#include "query/query.h"
#include "query/workload.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/model_zoo.h"
#include "serve/serving_engine.h"

namespace duet {
namespace {

using net::FrameHeader;
using net::FrameType;
using net::NetServer;
using net::NetServerOptions;
using net::RingBuffer;
using net::RpcClient;
using net::WireStatus;
using query::Query;

data::Table SmallTable() { return data::CensusLike(300, 13); }

core::DuetModelOptions SmallModelOptions(uint64_t seed) {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {12, 12};
  opt.residual = true;
  opt.seed = seed;
  return opt;
}

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

std::string TempPath(const std::string& name) {
  return "/tmp/duet_net_test_" + std::to_string(::getpid()) + "_" + name + ".duet";
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { serve::FaultInjector::DisarmAll(); }
  void TearDown() override { serve::FaultInjector::DisarmAll(); }
};

/// Fixed-estimator serving bed: one tiny model behind an engine with the
/// classical fallback attached, served by a NetServer on an ephemeral
/// loopback port.
struct ServeBed {
  explicit ServeBed(serve::ServingOptions serving = {}, NetServerOptions net = {})
      : table(SmallTable()),
        model(table, SmallModelOptions(7)),
        estimator(model),
        fallback(table),
        engine(estimator, serving),
        server(engine, std::move(net)) {
    engine.AttachFallback(&fallback);
    const WireStatus st = server.Start();
    EXPECT_TRUE(st.ok) << st.error;
  }
  ~ServeBed() { server.Stop(); }

  RpcClient Connect() {
    RpcClient client;
    const WireStatus st = client.Connect("127.0.0.1", server.port());
    EXPECT_TRUE(st.ok) << st.error;
    return client;
  }

  data::Table table;
  core::DuetModel model;
  core::DuetEstimator estimator;
  baselines::IndependenceEstimator fallback;
  serve::ServingEngine engine;
  NetServer server;
};

// ---------------------------------------------------------------------------
// Ring buffer + frame codec unit coverage
// ---------------------------------------------------------------------------

TEST(NetRingBuffer, WrapAroundAndCopyOut) {
  RingBuffer ring;
  std::string pattern;
  for (int i = 0; i < 300; ++i) pattern.push_back(static_cast<char>(i * 7));
  // Force many wraps with interleaved append/consume.
  size_t produced = 0, consumed = 0;
  std::string drained;
  while (consumed < 10000) {
    ring.Append(pattern.data(), pattern.size());
    produced += pattern.size();
    while (ring.size() > 128) {
      char buf[97];
      const size_t n = std::min(sizeof buf, ring.size() - 128);
      ring.CopyOut(0, n, buf);
      drained.append(buf, n);
      ring.Consume(n);
      consumed += n;
    }
  }
  // Everything drained must be the repeated pattern, in order.
  for (size_t i = 0; i < drained.size(); ++i) {
    ASSERT_EQ(drained[i], pattern[i % pattern.size()]) << "at " << i;
  }
  EXPECT_EQ(produced - consumed, ring.size());
}

TEST(NetRingBuffer, SpansCoverEverything) {
  RingBuffer ring;
  ring.Append("0123456789", 10);
  ring.Consume(7);  // head advanced: next append wraps
  ring.EnsureSpace(1);
  const size_t cap = ring.capacity();
  std::string big(cap - ring.size(), 'x');
  ring.Append(big.data(), big.size());  // fills to capacity, wrapping
  net::RingSpan spans[2];
  const int n = ring.ReadSpans(spans);
  size_t total = 0;
  for (int s = 0; s < n; ++s) total += spans[s].len;
  EXPECT_EQ(total, ring.size());
  EXPECT_EQ(ring.free_space(), 0u);
  EXPECT_EQ(ring.WriteSpans(spans), 0);
}

TEST(NetWire, FrameAndPayloadRoundTrip) {
  net::EstimateRequest request;
  request.model_key = "census";
  request.deadline_us = 1234;
  const data::Table table = SmallTable();
  request.queries = MakeQueries(table, 5);

  std::string payload;
  net::EncodeEstimateRequest(request, &payload);
  std::string frame;
  net::AppendFrame(&frame, FrameType::kEstimateRequest, 42,
                   static_cast<uint32_t>(request.queries.size()), payload.data(),
                   payload.size());
  ASSERT_EQ(frame.size(), net::kFrameHeaderBytes + payload.size());

  FrameHeader header;
  WireStatus st = net::ParseFrameHeader(frame.data(), 1u << 20, &header);
  ASSERT_TRUE(st.ok) << st.error;
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.count, request.queries.size());
  st = net::VerifyPayload(header, frame.data() + net::kFrameHeaderBytes, payload.size());
  ASSERT_TRUE(st.ok) << st.error;

  net::EstimateRequest decoded;
  st = net::DecodeEstimateRequest(frame.data() + net::kFrameHeaderBytes, payload.size(),
                                  header.count, &decoded);
  ASSERT_TRUE(st.ok) << st.error;
  EXPECT_EQ(decoded.model_key, request.model_key);
  EXPECT_EQ(decoded.deadline_us, request.deadline_us);
  ASSERT_EQ(decoded.queries.size(), request.queries.size());
  for (size_t i = 0; i < decoded.queries.size(); ++i) {
    ASSERT_EQ(decoded.queries[i].predicates.size(), request.queries[i].predicates.size());
    for (size_t p = 0; p < decoded.queries[i].predicates.size(); ++p) {
      EXPECT_EQ(decoded.queries[i].predicates[p].col, request.queries[i].predicates[p].col);
      EXPECT_EQ(decoded.queries[i].predicates[p].op, request.queries[i].predicates[p].op);
      EXPECT_EQ(decoded.queries[i].predicates[p].value, request.queries[i].predicates[p].value);
    }
  }
}

TEST(NetWire, HeaderRejectsEveryCorruption) {
  std::string frame;
  const char payload[] = "abcdef";
  net::AppendFrame(&frame, FrameType::kEstimateRequest, 1, 1, payload, sizeof payload);
  FrameHeader header;
  ASSERT_TRUE(net::ParseFrameHeader(frame.data(), 1u << 20, &header).ok);

  std::string bad = frame;          // bad magic
  bad[0] = static_cast<char>(bad[0] ^ 0x5a);
  EXPECT_FALSE(net::ParseFrameHeader(bad.data(), 1u << 20, &header).ok);

  bad = frame;                      // flipped bit deep in the header
  bad[18] = static_cast<char>(bad[18] ^ 0x01);
  EXPECT_FALSE(net::ParseFrameHeader(bad.data(), 1u << 20, &header).ok);

  // Oversized: a frame whose declared payload exceeds the cap is rejected
  // even with valid checksums.
  std::string big_payload(4096, 'x');
  bad.clear();
  net::AppendFrame(&bad, FrameType::kEstimateRequest, 1, 1, big_payload.data(),
                   big_payload.size());
  EXPECT_FALSE(net::ParseFrameHeader(bad.data(), 1024, &header).ok);

  // Payload corruption is caught by the payload checksum.
  bad = frame;
  bad[net::kFrameHeaderBytes + 2] = static_cast<char>(bad[net::kFrameHeaderBytes + 2] ^ 0x80);
  ASSERT_TRUE(net::ParseFrameHeader(bad.data(), 1u << 20, &header).ok);
  EXPECT_FALSE(
      net::VerifyPayload(header, bad.data() + net::kFrameHeaderBytes, sizeof payload).ok);
}

// ---------------------------------------------------------------------------
// Loopback serving
// ---------------------------------------------------------------------------

TEST_F(NetTest, LoopbackBitwiseEqualsInProcess) {
  ServeBed bed;
  const std::vector<Query> queries = MakeQueries(bed.table, 64);
  const std::vector<double> reference = bed.engine.EstimateBatch(queries);

  RpcClient client = bed.Connect();
  std::vector<serve::Estimate> wire;
  const WireStatus st = client.EstimateBatch("", queries, 0, &wire);
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_EQ(wire.size(), reference.size());
  for (size_t i = 0; i < wire.size(); ++i) {
    EXPECT_EQ(wire[i].selectivity, reference[i]) << "query " << i;  // bitwise
    EXPECT_FALSE(wire[i].degraded()) << "query " << i;
  }

  const net::NetStats stats = bed.server.stats();
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.batched_frames, 1u);  // one frame, 64 queries: wire batching
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.estimate.requests, 1u);
  EXPECT_GT(stats.estimate.p50_us, 0.0);
}

TEST_F(NetTest, WireBatchingFeedsMicroBatchFusion) {
  serve::ServingOptions serving;
  serving.max_batch = 64;
  serving.max_wait_us = 5000;
  ServeBed bed(serving);
  const std::vector<Query> queries = MakeQueries(bed.table, 64);
  const std::vector<double> reference = bed.engine.EstimateBatch(queries);

  RpcClient client = bed.Connect();
  std::vector<serve::Estimate> wire;
  ASSERT_TRUE(client.EstimateBatch("", queries, 0, &wire).ok);
  for (size_t i = 0; i < wire.size(); ++i) EXPECT_EQ(wire[i].selectivity, reference[i]);

  // The 64 queries of the single wire frame reached the engine as async
  // submissions and were coalesced by cross-request fusion — wire-level
  // batching composes with the micro-batcher instead of bypassing it.
  const serve::ServingStats es = bed.engine.stats();
  EXPECT_GE(es.fused_requests, 2u);
}

TEST_F(NetTest, ConcurrentClientsAllBitwiseCorrect) {
  ServeBed bed;
  const std::vector<Query> queries = MakeQueries(bed.table, 32);
  const std::vector<double> reference = bed.engine.EstimateBatch(queries);

  constexpr int kClients = 4;
  constexpr int kRounds = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      RpcClient client;
      if (!client.Connect("127.0.0.1", bed.server.port()).ok) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRounds; ++r) {
        std::vector<serve::Estimate> wire;
        if (!client.EstimateBatch("", queries, 0, &wire).ok ||
            wire.size() != reference.size()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t i = 0; i < wire.size(); ++i) {
          if (wire[i].selectivity != reference[i]) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const net::NetStats stats = bed.server.stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kClients) * kRounds * queries.size());
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---------------------------------------------------------------------------
// Corruption battery: every malformed frame drops ONLY its connection.
// ---------------------------------------------------------------------------

/// Builds a frame with full control over the header fields, recomputing
/// both checksums unless told to corrupt them — so each test isolates
/// exactly one validation rule.
std::string RawFrame(uint32_t magic, uint16_t version, uint16_t type, uint32_t payload_len,
                     const std::string& payload, bool valid_header_checksum = true) {
  std::string out;
  auto put = [&out](const void* p, size_t n) { out.append(static_cast<const char*>(p), n); };
  put(&magic, 4);
  put(&version, 2);
  put(&type, 2);
  const uint64_t request_id = 9;
  put(&request_id, 8);
  put(&payload_len, 4);
  const uint32_t count = 1;
  put(&count, 4);
  const uint64_t payload_checksum = Fnv1a64(payload.data(), payload.size());
  put(&payload_checksum, 8);
  uint64_t header_checksum = Fnv1a64(out.data(), net::kFrameHeaderBytes - 8);
  if (!valid_header_checksum) header_checksum ^= 0xdeadbeef;
  put(&header_checksum, 8);
  out += payload;
  return out;
}

TEST_F(NetTest, CorruptionBatteryDropsOnlyTheOffender) {
  ServeBed bed;
  const std::vector<Query> queries = MakeQueries(bed.table, 8);
  const std::vector<double> reference = bed.engine.EstimateBatch(queries);

  // A healthy long-lived connection that must survive every attack below.
  RpcClient survivor = bed.Connect();

  net::EstimateRequest request;
  request.queries = queries;
  std::string payload;
  net::EncodeEstimateRequest(request, &payload);
  const uint16_t req_type = static_cast<uint16_t>(FrameType::kEstimateRequest);

  struct Attack {
    const char* name;
    std::string bytes;
  };
  std::string flipped_payload = payload;
  flipped_payload[3] = static_cast<char>(flipped_payload[3] ^ 0x10);
  std::vector<Attack> attacks = {
      {"bad magic", RawFrame(0x41414141, net::kRpcVersion, req_type,
                             static_cast<uint32_t>(payload.size()), payload)},
      {"wrong version", RawFrame(net::kRpcMagic, 99, req_type,
                                 static_cast<uint32_t>(payload.size()), payload)},
      {"bad header checksum", RawFrame(net::kRpcMagic, net::kRpcVersion, req_type,
                                       static_cast<uint32_t>(payload.size()), payload, false)},
      {"oversized payload_len", RawFrame(net::kRpcMagic, net::kRpcVersion, req_type,
                                         64u << 20, "")},
      {"bit-flipped payload", RawFrame(net::kRpcMagic, net::kRpcVersion, req_type,
                                       static_cast<uint32_t>(payload.size()), flipped_payload)},
      {"unknown frame type", RawFrame(net::kRpcMagic, net::kRpcVersion, 200,
                                      static_cast<uint32_t>(payload.size()), payload)},
  };
  // The bit-flipped payload must keep the ORIGINAL payload checksum (the
  // flip happened "on the wire"), so rebuild that frame with the original
  // payload's checksum over the flipped bytes.
  // RawFrame computed the checksum over flipped bytes — overwrite it.
  {
    std::string& frame = attacks[4].bytes;
    const uint64_t original_checksum = Fnv1a64(payload.data(), payload.size());
    std::memcpy(frame.data() + 24, &original_checksum, 8);
    uint64_t header_checksum = Fnv1a64(frame.data(), net::kFrameHeaderBytes - 8);
    std::memcpy(frame.data() + 32, &header_checksum, 8);
  }

  uint64_t expected_errors = 0;
  for (const Attack& attack : attacks) {
    SCOPED_TRACE(attack.name);
    RpcClient attacker = bed.Connect();
    ASSERT_TRUE(attacker.SendRaw(attack.bytes.data(), attack.bytes.size()).ok);
    // The server must DROP the attacker...
    EXPECT_TRUE(attacker.WaitForClose()) << "server did not drop the connection";
    ++expected_errors;
    // ...while the survivor connection keeps serving bitwise-correct
    // estimates and the server accepts fresh clients.
    std::vector<serve::Estimate> wire;
    ASSERT_TRUE(survivor.EstimateBatch("", queries, 0, &wire).ok);
    for (size_t i = 0; i < wire.size(); ++i) EXPECT_EQ(wire[i].selectivity, reference[i]);
  }

  // Truncated frame: a header promising more payload than ever arrives,
  // then EOF. Not a checksum failure — just a clean close, state intact.
  {
    std::string frame = RawFrame(net::kRpcMagic, net::kRpcVersion, req_type,
                                 static_cast<uint32_t>(payload.size()), payload);
    RpcClient attacker = bed.Connect();
    ASSERT_TRUE(attacker.SendRaw(frame.data(), frame.size() - 7).ok);
    attacker.Close();
    std::vector<serve::Estimate> wire;
    ASSERT_TRUE(survivor.EstimateBatch("", queries, 0, &wire).ok);
    for (size_t i = 0; i < wire.size(); ++i) EXPECT_EQ(wire[i].selectivity, reference[i]);
  }

  const net::NetStats stats = bed.server.stats();
  EXPECT_EQ(stats.protocol_errors, expected_errors);
  EXPECT_EQ(stats.connections_dropped, expected_errors);
}

// ---------------------------------------------------------------------------
// Resilience semantics over the wire
// ---------------------------------------------------------------------------

TEST_F(NetTest, DeadlineExpiresOverTheWire) {
  serve::ServingOptions serving;
  serving.max_batch = 1024;     // never dispatch on count...
  serving.max_wait_us = 20000;  // ...and wait far longer than the deadline
  ServeBed bed(serving);
  const std::vector<Query> queries = MakeQueries(bed.table, 4);

  RpcClient client = bed.Connect();
  std::vector<serve::Estimate> wire;
  const WireStatus st = client.EstimateBatch("", queries, /*deadline_us=*/1, &wire);
  ASSERT_TRUE(st.ok) << st.error;
  ASSERT_EQ(wire.size(), queries.size());
  for (const serve::Estimate& e : wire) {
    EXPECT_TRUE(e.deadline_expired);
    EXPECT_TRUE(e.fallback);
  }
}

TEST_F(NetTest, BudgetOverflowShedsWholeFrameAndRecovers) {
  NetServerOptions net_options;
  net_options.max_connection_inflight = 32;
  ServeBed bed({}, net_options);
  const std::vector<Query> queries = MakeQueries(bed.table, 64);
  const std::vector<double> reference = bed.engine.EstimateBatch(queries);

  RpcClient client = bed.Connect();
  // 64 queries > the 32-query budget: the whole frame is shed through the
  // engine's fallback path, flagged on the wire.
  std::vector<serve::Estimate> wire;
  ASSERT_TRUE(client.EstimateBatch("", queries, 0, &wire).ok);
  ASSERT_EQ(wire.size(), queries.size());
  for (const serve::Estimate& e : wire) {
    EXPECT_TRUE(e.shed);
    EXPECT_TRUE(e.fallback);
  }
  EXPECT_EQ(bed.server.stats().sheds, queries.size());

  // Within budget, the same connection immediately serves normally again.
  const std::vector<Query> small(queries.begin(), queries.begin() + 16);
  ASSERT_TRUE(client.EstimateBatch("", small, 0, &wire).ok);
  ASSERT_EQ(wire.size(), small.size());
  for (size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(wire[i].shed);
    EXPECT_EQ(wire[i].selectivity, reference[i]);
  }
}

TEST_F(NetTest, KeyRoutingMismatchIsACleanErrorNotADrop) {
  ServeBed bed;  // fixed-estimator engine: not keyed
  const std::vector<Query> queries = MakeQueries(bed.table, 4);
  RpcClient client = bed.Connect();
  std::vector<serve::Estimate> wire;
  const WireStatus st = client.EstimateBatch("some-model", queries, 0, &wire);
  EXPECT_FALSE(st.ok);  // clean kError response...
  ASSERT_TRUE(client.EstimateBatch("", queries, 0, &wire).ok);  // ...connection intact
  EXPECT_EQ(bed.server.stats().protocol_errors, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot replication
// ---------------------------------------------------------------------------

/// Primary/replica bed: a registry-mode primary serving + publishing, a
/// zoo-mode replica, and the artifact paths wired for replication.
struct ReplicationBed {
  ReplicationBed()
      : table(SmallTable()),
        queries(MakeQueries(table, 32)),
        registry(std::make_unique<core::DuetModel>(table, SmallModelOptions(11))),
        primary_engine(registry),
        primary_server(primary_engine),
        replica_path(TempPath("replica")),
        replica_engine(zoo) {
    primary_server.AttachSnapshotSource(&registry);
    const WireStatus st = primary_server.Start();
    EXPECT_TRUE(st.ok) << st.error;
  }
  ~ReplicationBed() {
    primary_server.Stop();
    ::unlink(replica_path.c_str());
    ::unlink((replica_path + ".fetch").c_str());
  }

  RpcClient Connect() {
    RpcClient client;
    const WireStatus st = client.Connect("127.0.0.1", primary_server.port());
    EXPECT_TRUE(st.ok) << st.error;
    return client;
  }

  data::Table table;
  std::vector<Query> queries;
  serve::ModelRegistry registry;
  serve::ServingEngine primary_engine;
  NetServer primary_server;
  std::string replica_path;
  serve::ModelZoo zoo;
  serve::ServingEngine replica_engine;
};

TEST_F(NetTest, ReplicationServesBitwiseEqualEstimates) {
  ReplicationBed bed;
  RpcClient client = bed.Connect();
  const WireStatus st =
      net::ReplicateSnapshot(client, bed.zoo, "census", bed.replica_path);
  ASSERT_TRUE(st.ok) << st.error;

  const std::vector<double> primary = bed.primary_engine.EstimateBatch(bed.queries);
  const std::vector<double> replica = bed.replica_engine.EstimateBatch("census", bed.queries);
  ASSERT_EQ(primary.size(), replica.size());
  for (size_t i = 0; i < primary.size(); ++i) {
    EXPECT_EQ(primary[i], replica[i]) << "query " << i;  // bitwise
  }
  const net::NetStats stats = bed.primary_server.stats();
  EXPECT_EQ(stats.snapshot_streams, 1u);
  EXPECT_GT(stats.snapshot_bytes_sent, 0u);
  EXPECT_EQ(stats.snapshot_stream_failures, 0u);
}

TEST_F(NetTest, RepublishThenReplicateTracksThePrimary) {
  ReplicationBed bed;
  RpcClient client = bed.Connect();
  ASSERT_TRUE(net::ReplicateSnapshot(client, bed.zoo, "census", bed.replica_path).ok);
  const std::vector<double> v0 = bed.replica_engine.EstimateBatch("census", bed.queries);

  // Primary publishes a DIFFERENT model (fresh seed): its estimates move.
  bed.registry.Publish(std::make_unique<core::DuetModel>(bed.table, SmallModelOptions(23)));
  const std::vector<double> primary_v1 = bed.primary_engine.EstimateBatch(bed.queries);
  ASSERT_NE(primary_v1, v0);

  // Re-replicate: the replica hot-swaps onto the new snapshot.
  ASSERT_TRUE(net::ReplicateSnapshot(client, bed.zoo, "census", bed.replica_path).ok);
  const std::vector<double> replica_v1 = bed.replica_engine.EstimateBatch("census", bed.queries);
  for (size_t i = 0; i < replica_v1.size(); ++i) {
    EXPECT_EQ(replica_v1[i], primary_v1[i]) << "query " << i;
  }
  EXPECT_EQ(bed.primary_server.stats().snapshot_streams, 2u);
}

TEST_F(NetTest, TornTransferLeavesReplicaOnOldSnapshot) {
  ReplicationBed bed;
  RpcClient client = bed.Connect();
  ASSERT_TRUE(net::ReplicateSnapshot(client, bed.zoo, "census", bed.replica_path).ok);
  const std::vector<double> v0 = bed.replica_engine.EstimateBatch("census", bed.queries);

  bed.registry.Publish(std::make_unique<core::DuetModel>(bed.table, SmallModelOptions(23)));

  // Tear the next stream mid-transfer (skip 1: let the first chunk out,
  // then fail): the primary aborts the connection before the end frame.
  serve::FaultInjector::Arm(serve::FaultPoint::kNetSnapshotStream, 1, /*skip=*/1);
  const WireStatus torn =
      net::ReplicateSnapshot(client, bed.zoo, "census", bed.replica_path);
  EXPECT_FALSE(torn.ok);
  EXPECT_EQ(bed.primary_server.stats().snapshot_stream_failures, 1u);

  // The replica still serves its OLD snapshot, bitwise.
  const std::vector<double> after = bed.replica_engine.EstimateBatch("census", bed.queries);
  EXPECT_EQ(after, v0);

  // Recovery: a fresh connection replicates the new snapshot cleanly.
  serve::FaultInjector::DisarmAll();
  RpcClient retry = bed.Connect();
  ASSERT_TRUE(net::ReplicateSnapshot(retry, bed.zoo, "census", bed.replica_path).ok);
  const std::vector<double> replica_v1 = bed.replica_engine.EstimateBatch("census", bed.queries);
  const std::vector<double> primary_v1 = bed.primary_engine.EstimateBatch(bed.queries);
  EXPECT_EQ(replica_v1, primary_v1);
}

TEST_F(NetTest, CorruptedFetchIsRejectedBeforeInstall) {
  ReplicationBed bed;
  RpcClient client = bed.Connect();
  ASSERT_TRUE(net::ReplicateSnapshot(client, bed.zoo, "census", bed.replica_path).ok);
  const std::vector<double> v0 = bed.replica_engine.EstimateBatch("census", bed.queries);

  // Fetch a fresh copy, then corrupt it on disk before installing — the
  // artifact's own checksums must reject it and the zoo stays untouched.
  const std::string fetched = bed.replica_path + ".fetch";
  ASSERT_TRUE(client.FetchSnapshot(fetched).ok);
  {
    std::fstream f(fetched, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(200);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(200);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  const WireStatus st = net::InstallSnapshot(bed.zoo, "census", fetched, bed.replica_path);
  EXPECT_FALSE(st.ok);
  EXPECT_EQ(bed.replica_engine.EstimateBatch("census", bed.queries), v0);
}

TEST_F(NetTest, SnapshotRequestWithoutSourceIsACleanError) {
  ServeBed bed;  // no AttachSnapshotSource
  RpcClient client = bed.Connect();
  const WireStatus st = client.FetchSnapshot(TempPath("nosource"));
  EXPECT_FALSE(st.ok);
  // Connection stays usable.
  std::vector<serve::Estimate> wire;
  const std::vector<Query> queries = MakeQueries(bed.table, 4);
  EXPECT_TRUE(client.EstimateBatch("", queries, 0, &wire).ok);
}

}  // namespace
}  // namespace duet
