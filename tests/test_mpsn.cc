// Tests for the MPSN multi-predicate extension: batch merging, the three
// embedder variants, the merged (block-diagonal) acceleration, estimation
// semantics on two-sided queries, and trainer smoke coverage.
#include <cmath>

#include "common/stats.h"
#include "core/mpsn.h"
#include "core/mpsn_model.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::core {
namespace {

using query::PredOp;
using query::Query;

data::Table SmallTable(int64_t rows = 800, uint64_t seed = 3) {
  return data::CensusLike(rows, seed);
}

DuetMpsnOptions SmallOptions(MpsnKind kind, bool merged = true) {
  DuetMpsnOptions opt;
  opt.base.hidden_sizes = {32, 32};
  opt.mpsn.kind = kind;
  opt.mpsn.hidden = 16;
  opt.mpsn.embed_dim = 8;
  opt.mpsn.max_preds = 2;
  opt.mpsn.merged = merged;
  return opt;
}

TEST(MultiPredBatchTest, MergesDrawsWithSharedAnchors) {
  data::Table t = SmallTable();
  SamplerOptions sopt;
  sopt.expand = 1;
  sopt.wildcard_prob = 0.3;
  VirtualTupleSampler sampler(t, sopt);
  std::vector<int64_t> anchors = {1, 2, 3, 4};
  std::vector<VirtualBatch> draws = {sampler.Sample(anchors, 1), sampler.Sample(anchors, 2)};
  const MultiPredBatch mb = MultiPredBatch::FromVirtualBatches(draws);
  EXPECT_EQ(mb.batch, 4);
  EXPECT_EQ(mb.max_preds, 2);
  EXPECT_EQ(mb.labels, draws[0].labels);
  for (int64_t r = 0; r < mb.batch; ++r) {
    for (int c = 0; c < mb.num_columns; ++c) {
      EXPECT_EQ(mb.codes[mb.SlotIndex(r, c, 0)], draws[0].code_at(r, c));
      EXPECT_EQ(mb.codes[mb.SlotIndex(r, c, 1)], draws[1].code_at(r, c));
    }
  }
}

TEST(MultiPredBatchTest, MismatchedAnchorsDie) {
  data::Table t = SmallTable();
  VirtualTupleSampler sampler(t, SamplerOptions{});
  std::vector<VirtualBatch> draws = {sampler.Sample({0, 1}, 1), sampler.Sample({2, 3}, 2)};
  EXPECT_DEATH(MultiPredBatch::FromVirtualBatches(draws), "share anchors");
}

struct KindCase {
  const char* name;
  MpsnKind kind;
  bool merged;
};

class MpsnKindTest : public ::testing::TestWithParam<KindCase> {};

TEST_P(MpsnKindTest, EmbedShapeAndFiniteness) {
  data::Table t = SmallTable();
  DuetMpsnOptions opt = SmallOptions(GetParam().kind, GetParam().merged);
  DuetMpsnModel model(t, opt);
  query::WorkloadSpec spec;
  spec.num_queries = 8;
  spec.seed = 4;
  spec.two_sided_prob = 0.5;
  query::WorkloadGenerator gen(t, spec);
  Rng rng(4);
  std::vector<Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(gen.GenerateQuery(rng));
  const MultiPredBatch mb = model.EncodeQueries(queries);
  tensor::Tensor emb = model.embedder().Embed(mb, model.encoder());
  EXPECT_EQ(emb.dim(0), 8);
  EXPECT_EQ(emb.dim(1), t.num_columns() * opt.mpsn.embed_dim);
  for (int64_t i = 0; i < emb.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(emb.data()[i]));
  }
}

TEST_P(MpsnKindTest, SelectivityIsInUnitIntervalAndDeterministic) {
  data::Table t = SmallTable();
  DuetMpsnModel model(t, SmallOptions(GetParam().kind, GetParam().merged));
  Query q;
  q.predicates.push_back({2, PredOp::kGe, t.column(2).Value(0)});
  q.predicates.push_back({2, PredOp::kLe, t.column(2).Value(t.column(2).ndv() - 1)});
  q.predicates.push_back({5, PredOp::kEq, t.column(5).Value(1)});
  const double a = model.EstimateSelectivity(q);
  const double b = model.EstimateSelectivity(q);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, MpsnKindTest,
    ::testing::Values(KindCase{"MlpMerged", MpsnKind::kMlp, true},
                      KindCase{"MlpPerColumn", MpsnKind::kMlp, false},
                      KindCase{"Recursive", MpsnKind::kRecursive, true},
                      KindCase{"Rnn", MpsnKind::kRnn, true}),
    [](const ::testing::TestParamInfo<KindCase>& info) { return info.param.name; });

TEST(MpsnModelTest, WildcardColumnsGiveZeroEmbedding) {
  // With no predicates at all, every column embedding is a zero vector for
  // the sum-style MLP embedder (empty sum).
  data::Table t = SmallTable();
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  const MultiPredBatch mb = model.EncodeQueries({Query{}});
  tensor::Tensor emb = model.embedder().Embed(mb, model.encoder());
  for (int64_t i = 0; i < emb.numel(); ++i) EXPECT_FLOAT_EQ(emb.data()[i], 0.0f);
}

TEST(MpsnModelTest, NoPredicateQueryEstimatesFullSelectivity) {
  data::Table t = SmallTable();
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  EXPECT_NEAR(model.EstimateSelectivity(Query{}), 1.0, 1e-5);
}

TEST(MpsnModelTest, TooManyPredicatesDie) {
  data::Table t = SmallTable();
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  Query q;
  q.predicates.push_back({0, PredOp::kGe, t.column(0).Value(0)});
  q.predicates.push_back({0, PredOp::kLe, t.column(0).Value(1)});
  q.predicates.push_back({0, PredOp::kEq, t.column(0).Value(0)});
  EXPECT_DEATH(model.EncodeQueries({q}), "max_preds");
}

TEST(MpsnModelTest, ContradictoryRangeGivesZero) {
  data::Table t = SmallTable();
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  Query q;
  q.predicates.push_back({0, PredOp::kGe, t.column(0).Value(t.column(0).ndv() - 1)});
  q.predicates.push_back({0, PredOp::kLe, t.column(0).Value(0)});
  if (t.column(0).ndv() > 1) {
    EXPECT_DOUBLE_EQ(model.EstimateSelectivity(q), 0.0);
  }
}

TEST(MpsnTrainerTest, LossDecreasesOnTwoSidedWorkload) {
  data::Table t = SmallTable(600, 6);
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  TrainOptions topt;
  topt.epochs = 6;
  topt.batch_size = 128;
  topt.expand = 2;
  MpsnTrainer trainer(model, topt);
  const auto history = trainer.Train();
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().data_loss, history.front().data_loss);
}

TEST(MpsnTrainerTest, HybridWithTwoSidedQueriesRuns) {
  data::Table t = SmallTable(500, 7);
  query::WorkloadSpec wspec;
  wspec.num_queries = 100;
  wspec.seed = 42;
  wspec.two_sided_prob = 0.5;
  const query::Workload wl = query::WorkloadGenerator(t, wspec).Generate();
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  TrainOptions topt;
  topt.epochs = 2;
  topt.batch_size = 64;
  topt.train_workload = &wl;
  MpsnTrainer trainer(model, topt);
  const auto history = trainer.Train();
  for (const auto& e : history) {
    EXPECT_TRUE(std::isfinite(e.query_loss));
    EXPECT_GT(e.query_loss, 0.0);
  }
}

TEST(MpsnTrainerTest, TrainedModelEstimatesTwoSidedRangesSanely) {
  data::Table t = SmallTable(900, 8);
  DuetMpsnModel model(t, SmallOptions(MpsnKind::kMlp));
  TrainOptions topt;
  topt.epochs = 10;
  topt.batch_size = 128;
  MpsnTrainer trainer(model, topt);
  trainer.Train();

  query::WorkloadSpec wspec;
  wspec.num_queries = 60;
  wspec.seed = 1234;
  wspec.two_sided_prob = 0.7;
  const query::Workload wl = query::WorkloadGenerator(t, wspec).Generate();
  DuetMpsnEstimator est(model);
  const auto errs = query::EvaluateQErrors(est, wl, t.num_rows());
  EXPECT_LT(duet::Percentile(errs, 50), 6.0);
}

}  // namespace
}  // namespace duet::core
