// Unit and property tests for the gradient-boosted regression trees
// (src/ml/gbdt), the substrate of the LW-XGB baseline.
#include <cmath>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/gbdt.h"

namespace duet::ml {
namespace {

Matrix MakeMatrix(int64_t rows, int64_t cols, const std::vector<float>& data) {
  Matrix m;
  m.rows = rows;
  m.cols = cols;
  m.data = data;
  return m;
}

/// 1-D regression dataset y = fn(x) for x uniform in [0, 1].
template <typename Fn>
void MakeDataset(int64_t n, uint64_t seed, Fn fn, Matrix* x, std::vector<float>* y) {
  Rng rng(seed);
  x->rows = n;
  x->cols = 1;
  x->data.resize(static_cast<size_t>(n));
  y->resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float v = rng.UniformFloat();
    x->data[static_cast<size_t>(i)] = v;
    (*y)[static_cast<size_t>(i)] = fn(v);
  }
}

TEST(GbdtTest, ConstantTargetIsBaseScore) {
  Matrix x = MakeMatrix(8, 1, {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f});
  std::vector<float> y(8, 3.25f);
  GbdtOptions opt;
  opt.num_trees = 5;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  for (int64_t r = 0; r < 8; ++r) EXPECT_NEAR(g.Predict(x.row(r)), 3.25f, 1e-4);
}

TEST(GbdtTest, LearnsStepFunction) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(400, 7, [](float v) { return v > 0.5f ? 1.0f : 0.0f; }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 40;
  opt.max_depth = 2;
  opt.learning_rate = 0.3f;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  float lo = 0.25f, hi = 0.75f;
  EXPECT_NEAR(g.Predict(&lo), 0.0f, 0.05f);
  EXPECT_NEAR(g.Predict(&hi), 1.0f, 0.05f);
}

TEST(GbdtTest, TrainRmseMonotonicallyImproves) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(300, 8, [](float v) { return v * v; }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 30;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  const auto& hist = g.train_rmse_history();
  ASSERT_GE(hist.size(), 2u);
  for (size_t i = 1; i < hist.size(); ++i) {
    EXPECT_LE(hist[i], hist[i - 1] + 1e-9) << "round " << i;
  }
}

TEST(GbdtTest, QuadraticBeatsMeanBaseline) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(500, 9, [](float v) { return v * v; }, &x, &y);
  double mean = 0.0;
  for (float v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double baseline_se = 0.0;
  for (float v : y) baseline_se += (v - mean) * (v - mean);
  const double baseline_rmse = std::sqrt(baseline_se / static_cast<double>(y.size()));

  GbdtOptions opt;
  opt.num_trees = 50;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  EXPECT_LT(g.train_rmse_history().back(), 0.1 * baseline_rmse);
}

TEST(GbdtTest, MinSamplesLeafBlocksAllSplits) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(50, 10, [](float v) { return v; }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 3;
  opt.min_samples_leaf = 50;  // no split can satisfy both children
  GbdtRegressor g(opt);
  g.Fit(x, y);
  // Every prediction equals the base score: no structure was learnable.
  const float p0 = g.Predict(x.row(0));
  for (int64_t r = 1; r < x.rows; ++r) EXPECT_FLOAT_EQ(g.Predict(x.row(r)), p0);
}

TEST(GbdtTest, DeterministicAcrossRuns) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(200, 11, [](float v) { return std::sin(6.28f * v); }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 20;
  opt.feature_fraction = 1.0;
  GbdtRegressor a(opt), b(opt);
  a.Fit(x, y);
  b.Fit(x, y);
  for (int64_t r = 0; r < x.rows; ++r) {
    EXPECT_FLOAT_EQ(a.Predict(x.row(r)), b.Predict(x.row(r)));
  }
}

TEST(GbdtTest, EarlyStoppingTruncatesEnsemble) {
  // A target learnable in a handful of trees: the RMSE flatlines and early
  // stopping should halt well before the full budget.
  Matrix x;
  std::vector<float> y;
  MakeDataset(300, 12, [](float v) { return v > 0.3f ? 2.0f : -1.0f; }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 200;
  opt.learning_rate = 0.5f;
  opt.early_stopping_rounds = 5;
  opt.early_stopping_tol = 1e-6;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  EXPECT_LT(g.num_trees(), 200);
}

TEST(GbdtTest, FeatureGainConcentratesOnInformativeFeature) {
  // Feature 0 is noise, feature 1 drives the target.
  Rng rng(13);
  const int64_t n = 400;
  Matrix x;
  x.rows = n;
  x.cols = 2;
  x.data.resize(static_cast<size_t>(2 * n));
  std::vector<float> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    x.data[static_cast<size_t>(2 * i)] = rng.UniformFloat();
    const float v = rng.UniformFloat();
    x.data[static_cast<size_t>(2 * i + 1)] = v;
    y[static_cast<size_t>(i)] = 3.0f * v;
  }
  GbdtOptions opt;
  opt.num_trees = 20;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  EXPECT_GT(g.feature_gain()[1], 10.0 * (g.feature_gain()[0] + 1e-12));
}

TEST(GbdtTest, LearnsXorInteractionWithDepth2) {
  // XOR of two thresholds needs depth >= 2: single-feature splits are
  // useless in isolation but their composition is exact.
  Rng rng(14);
  const int64_t n = 800;
  Matrix x;
  x.rows = n;
  x.cols = 2;
  x.data.resize(static_cast<size_t>(2 * n));
  std::vector<float> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float a = rng.UniformFloat(), b = rng.UniformFloat();
    x.data[static_cast<size_t>(2 * i)] = a;
    x.data[static_cast<size_t>(2 * i + 1)] = b;
    y[static_cast<size_t>(i)] = ((a > 0.5f) != (b > 0.5f)) ? 1.0f : 0.0f;
  }
  GbdtOptions opt;
  opt.num_trees = 60;
  opt.max_depth = 3;
  opt.learning_rate = 0.3f;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  EXPECT_LT(g.train_rmse_history().back(), 0.1);
}

TEST(GbdtTest, SaveLoadRoundTrip) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(200, 15, [](float v) { return v * (1.0f - v); }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 15;
  GbdtRegressor g(opt);
  g.Fit(x, y);

  std::stringstream buf;
  BinaryWriter w(buf);
  g.Save(w);
  GbdtRegressor loaded;
  BinaryReader r(buf);
  loaded.Load(r);

  EXPECT_EQ(loaded.num_trees(), g.num_trees());
  EXPECT_EQ(loaded.num_features(), g.num_features());
  for (int64_t i = 0; i < x.rows; ++i) {
    EXPECT_FLOAT_EQ(loaded.Predict(x.row(i)), g.Predict(x.row(i)));
  }
}

TEST(GbdtTest, PredictBatchMatchesSingle) {
  Matrix x;
  std::vector<float> y;
  MakeDataset(100, 16, [](float v) { return 2.0f * v - 1.0f; }, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 10;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  const std::vector<float> batch = g.PredictBatch(x);
  for (int64_t i = 0; i < x.rows; ++i) {
    EXPECT_FLOAT_EQ(batch[static_cast<size_t>(i)], g.Predict(x.row(i)));
  }
}

TEST(GbdtTest, FeatureSubsamplingStillLearns) {
  Rng rng(17);
  const int64_t n = 400;
  Matrix x;
  x.rows = n;
  x.cols = 4;
  x.data.resize(static_cast<size_t>(4 * n));
  std::vector<float> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) {
      const float v = rng.UniformFloat();
      x.data[static_cast<size_t>(4 * i + c)] = v;
      sum += v;
    }
    y[static_cast<size_t>(i)] = sum;
  }
  GbdtOptions opt;
  opt.num_trees = 60;
  opt.feature_fraction = 0.5;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  EXPECT_LT(g.train_rmse_history().back(), 0.4 * g.train_rmse_history().front());
}

/// Parameterized sweep: boosting must improve over the stump baseline for a
/// family of target shapes and depths.
class GbdtShapeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GbdtShapeTest, ImprovesOverFirstRound) {
  const int shape = std::get<0>(GetParam());
  const int depth = std::get<1>(GetParam());
  Matrix x;
  std::vector<float> y;
  auto fn = [shape](float v) -> float {
    switch (shape) {
      case 0: return v;
      case 1: return v * v;
      case 2: return std::sin(6.28318f * v);
      default: return v > 0.5f ? 1.0f : -1.0f;
    }
  };
  MakeDataset(300, 100 + static_cast<uint64_t>(shape), fn, &x, &y);
  GbdtOptions opt;
  opt.num_trees = 40;
  opt.max_depth = depth;
  GbdtRegressor g(opt);
  g.Fit(x, y);
  EXPECT_LT(g.train_rmse_history().back(), g.train_rmse_history().front());
}

INSTANTIATE_TEST_SUITE_P(Shapes, GbdtShapeTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(1, 3, 6)));

}  // namespace
}  // namespace duet::ml
