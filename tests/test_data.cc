// Unit tests for the data substrate: dictionary encoding, tables, the
// synthetic generators, CSV import/export.
#include <sstream>

#include "data/csv.h"
#include "data/generator.h"
#include "gtest/gtest.h"

namespace duet::data {
namespace {

TEST(ColumnTest, DictionaryIsSortedAndCodesRoundTrip) {
  Column col = Column::FromValues("c", {3.0, 1.0, 2.0, 3.0, 1.0});
  EXPECT_EQ(col.ndv(), 3);
  EXPECT_EQ(col.num_rows(), 5);
  EXPECT_DOUBLE_EQ(col.Value(0), 1.0);
  EXPECT_DOUBLE_EQ(col.Value(2), 3.0);
  // Row values survive encode->decode.
  const double original[] = {3.0, 1.0, 2.0, 3.0, 1.0};
  for (int64_t r = 0; r < 5; ++r) EXPECT_DOUBLE_EQ(col.Value(col.code(r)), original[r]);
}

TEST(ColumnTest, BoundsAndCodeOf) {
  Column col = Column::FromValues("c", {10.0, 20.0, 30.0});
  EXPECT_EQ(col.LowerBound(15.0), 1);
  EXPECT_EQ(col.LowerBound(20.0), 1);
  EXPECT_EQ(col.UpperBound(20.0), 2);
  EXPECT_EQ(col.LowerBound(35.0), 3);
  EXPECT_EQ(col.CodeOf(20.0), 1);
  EXPECT_EQ(col.CodeOf(25.0), -1);
}

TEST(ColumnTest, FromCodesValidates) {
  EXPECT_DEATH(Column::FromCodes("c", {0, 1}, {2.0, 1.0}), "increasing");
  EXPECT_DEATH(Column::FromCodes("c", {5}, {1.0, 2.0}), "CHECK");
}

TEST(TableTest, RejectsRaggedColumns) {
  Column a = Column::FromValues("a", {1.0, 2.0});
  Column b = Column::FromValues("b", {1.0});
  EXPECT_DEATH(Table("t", {a, b}), "ragged");
}

TEST(TableTest, NdvsAndLargestColumn) {
  Column a = Column::FromValues("a", {1.0, 2.0, 2.0});
  Column b = Column::FromValues("b", {1.0, 2.0, 3.0});
  Table t("t", {a, b});
  EXPECT_EQ(t.ColumnNdvs(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(t.LargestNdvColumn(), 1);
}

TEST(GeneratorTest, DeterministicInSeed) {
  Table a = CensusLike(500, 7);
  Table b = CensusLike(500, 7);
  Table c = CensusLike(500, 8);
  ASSERT_EQ(a.num_rows(), 500);
  for (int col = 0; col < a.num_columns(); ++col) {
    EXPECT_EQ(a.column(col).codes(), b.column(col).codes());
  }
  bool any_diff = false;
  for (int col = 0; col < a.num_columns(); ++col) {
    any_diff |= a.column(col).codes() != c.column(col).codes();
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, CensusProfile) {
  Table t = CensusLike(5000, 42);
  EXPECT_EQ(t.num_columns(), 14);
  EXPECT_EQ(t.num_rows(), 5000);
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_GE(t.column(c).ndv(), 2);
    EXPECT_LE(t.column(c).ndv(), 123);
  }
}

TEST(GeneratorTest, KddProfileIsHighDimensional) {
  Table t = KddLike(2000, 100, 42);
  EXPECT_EQ(t.num_columns(), 100);
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_GE(t.column(c).ndv(), 2);
    EXPECT_LE(t.column(c).ndv(), 57);
  }
}

TEST(GeneratorTest, DmvProfileHasLargeNdvColumn) {
  Table t = DmvLike(20000, 42);
  EXPECT_EQ(t.num_columns(), 11);
  EXPECT_GE(t.column(t.LargestNdvColumn()).ndv(), 150);
}

TEST(GeneratorTest, LatentFactorsInduceCorrelation) {
  // Two columns driven by the same latent factor with high correlation
  // should have strongly dependent codes: the most common pair should be
  // far more frequent than independence predicts.
  SyntheticSpec spec;
  spec.name = "corr";
  spec.rows = 8000;
  spec.num_latent = 1;
  spec.latent_cardinality = 16;
  spec.latent_zipf_s = 1.0;
  spec.seed = 3;
  for (int i = 0; i < 2; ++i) {
    ColumnSpec cs;
    cs.ndv = 16;
    cs.zipf_s = 0.5;
    cs.correlation = 0.95;
    cs.latent = 0;
    spec.columns.push_back(cs);
  }
  Table t = GenerateSynthetic(spec);
  // chi-square-flavoured dependence check on the contingency table.
  const int na = t.column(0).ndv(), nb = t.column(1).ndv();
  std::vector<double> joint(static_cast<size_t>(na * nb), 0.0);
  std::vector<double> pa(static_cast<size_t>(na), 0.0), pb(static_cast<size_t>(nb), 0.0);
  const double inv = 1.0 / static_cast<double>(t.num_rows());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    joint[static_cast<size_t>(t.code(r, 0) * nb + t.code(r, 1))] += inv;
    pa[static_cast<size_t>(t.code(r, 0))] += inv;
    pb[static_cast<size_t>(t.code(r, 1))] += inv;
  }
  double max_ratio = 0.0;
  for (int a = 0; a < na; ++a) {
    for (int b = 0; b < nb; ++b) {
      const double expected = pa[static_cast<size_t>(a)] * pb[static_cast<size_t>(b)];
      const double observed = joint[static_cast<size_t>(a * nb + b)];
      if (expected > 1e-4) max_ratio = std::max(max_ratio, observed / expected);
    }
  }
  EXPECT_GT(max_ratio, 3.0);  // strong positive association somewhere
}

TEST(GeneratorTest, ZipfSkewShowsInMarginals) {
  SyntheticSpec spec;
  spec.name = "skew";
  spec.rows = 10000;
  spec.seed = 4;
  ColumnSpec cs;
  cs.ndv = 50;
  cs.zipf_s = 1.5;
  cs.correlation = 0.0;
  spec.columns.push_back(cs);
  Table t = GenerateSynthetic(spec);
  std::vector<int64_t> counts(static_cast<size_t>(t.column(0).ndv()), 0);
  for (int64_t r = 0; r < t.num_rows(); ++r) counts[static_cast<size_t>(t.code(r, 0))]++;
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts[0], 5 * counts[10]);  // heavy head
}

TEST(CsvTest, RoundTripNumeric) {
  std::stringstream in("a,b\n1,2.5\n3,2.5\n1,4.5\n");
  Table t = LoadCsv(in, "t");
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.column(0).ndv(), 2);
  EXPECT_EQ(t.column(1).ndv(), 2);
  EXPECT_EQ(t.column(0).name(), "a");
  std::stringstream out;
  SaveCsv(t, out);
  std::stringstream in2(out.str());
  Table t2 = LoadCsv(in2, "t2");
  for (int c = 0; c < t.num_columns(); ++c) {
    EXPECT_EQ(t.column(c).codes(), t2.column(c).codes());
  }
}

TEST(CsvTest, StringColumnsBecomeLexicographicCodes) {
  std::stringstream in("name,x\nbob,1\nalice,2\ncarol,1\n");
  Table t = LoadCsv(in, "t");
  EXPECT_EQ(t.column(0).ndv(), 3);
  // alice < bob < carol lexicographically -> codes 0,1,2 in that order.
  EXPECT_EQ(t.code(0, 0), 1);  // bob
  EXPECT_EQ(t.code(1, 0), 0);  // alice
  EXPECT_EQ(t.code(2, 0), 2);  // carol
}

TEST(CsvTest, RaggedRowDies) {
  std::stringstream in("a,b\n1,2\n3\n");
  EXPECT_DEATH(LoadCsv(in, "t"), "ragged");
}

TEST(CsvTest, QuotedCommaStaysInCell) {
  std::stringstream in("a,b\n\"x,y\",1\nz,2\n");
  Table t = LoadCsv(in, "t");
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.column(0).ndv(), 2);
}

}  // namespace
}  // namespace duet::data

// ---------------------------------------------------------------------------
// Binary table cache (data/table_io)
// ---------------------------------------------------------------------------

#include <cstdio>
#include <fstream>

#include "data/table_io.h"

namespace duet::data {
namespace {

TEST(TableIoTest, RoundTripPreservesEverything) {
  Table original = CensusLike(700, 42);
  const std::string path = ::testing::TempDir() + "/duet_table_cache.bin";
  SaveTableFile(path, original);
  Table loaded = LoadTableFile(path);

  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.num_columns(), original.num_columns());
  ASSERT_EQ(loaded.num_rows(), original.num_rows());
  for (int c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(loaded.column(c).name(), original.column(c).name());
    ASSERT_EQ(loaded.column(c).ndv(), original.column(c).ndv());
    for (int32_t v = 0; v < original.column(c).ndv(); ++v) {
      EXPECT_DOUBLE_EQ(loaded.column(c).Value(v), original.column(c).Value(v));
    }
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      ASSERT_EQ(loaded.column(c).code(r), original.column(c).code(r));
    }
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, GarbageFileFailsLoudly) {
  const std::string path = ::testing::TempDir() + "/duet_table_garbage.bin";
  std::ofstream(path) << "not a table";
  EXPECT_DEATH(LoadTableFile(path), "not a duet table cache");
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileFailsLoudly) {
  EXPECT_DEATH(LoadTableFile("/nonexistent/table.bin"), "cannot open table cache");
}

}  // namespace
}  // namespace duet::data
