// Batch-first estimator API: EstimateSelectivityBatch must agree with the
// per-query path for every neural estimator (Duet, MPSN, Naru, UAE), and the
// Duet batched forward must hit the inference arena's zero-allocation steady
// state.
#include <cmath>
#include <vector>

#include "baselines/naru/naru_model.h"
#include "baselines/uae/uae_model.h"
#include "core/duet_model.h"
#include "core/mpsn_model.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/estimator.h"
#include "query/workload.h"
#include "tensor/tensor.h"

namespace duet {
namespace {

using query::Query;

data::Table SmallTable() { return data::CensusLike(800, 5); }

/// A mixed query set: generated queries plus the edge cases (wildcard-only
/// and contradictory) that short-circuit before the forward pass.
std::vector<Query> TestQueries(const data::Table& table, int n, double two_sided_prob) {
  query::WorkloadSpec spec;
  spec.seed = 77;
  spec.two_sided_prob = two_sided_prob;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(77);
  std::vector<Query> queries;
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  queries.push_back(Query{});  // all-wildcard: selectivity 1
  Query contradiction;
  contradiction.predicates.push_back({0, query::PredOp::kLt, -1e9});
  queries.push_back(contradiction);  // empty range: selectivity 0
  return queries;
}

void ExpectBatchMatchesLoop(query::CardinalityEstimator& est,
                            const std::vector<Query>& queries) {
  const std::vector<double> batched = est.EstimateSelectivityBatch(queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const double loop = est.EstimateSelectivity(queries[i]);
    EXPECT_NEAR(batched[i], loop, 1e-6 * std::max(1.0, std::fabs(loop)))
        << est.name() << " query " << i;
  }
}

TEST(BatchApiTest, DuetBatchMatchesLoop) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);
  ExpectBatchMatchesLoop(est, TestQueries(t, 24, 0.0));
}

TEST(BatchApiTest, MpsnBatchMatchesLoop) {
  const data::Table t = SmallTable();
  core::DuetMpsnOptions opt;
  opt.base.hidden_sizes = {32, 32};
  opt.mpsn.max_preds = 2;
  core::DuetMpsnModel model(t, opt);
  core::DuetMpsnEstimator est(model);
  ExpectBatchMatchesLoop(est, TestQueries(t, 16, 0.5));
}

TEST(BatchApiTest, NaruBatchMatchesLoop) {
  const data::Table t = SmallTable();
  baselines::NaruOptions opt;
  opt.hidden_sizes = {32, 32};
  opt.num_samples = 24;
  baselines::NaruModel model(t, opt);
  baselines::NaruEstimator est(model);
  ExpectBatchMatchesLoop(est, TestQueries(t, 12, 0.0));
}

TEST(BatchApiTest, UaeBatchMatchesLoop) {
  const data::Table t = SmallTable();
  baselines::UaeOptions opt;
  opt.naru.hidden_sizes = {32, 32};
  opt.naru.num_samples = 24;
  baselines::UaeModel model(t, opt);
  baselines::UaeEstimator est(model);
  ExpectBatchMatchesLoop(est, TestQueries(t, 12, 0.0));
}

TEST(BatchApiTest, DuetSteadyStateBatchedForwardAllocatesNothing) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  const std::vector<Query> queries = TestQueries(t, 30, 0.0);

  tensor::InferenceArena::Clear();
  model.EstimateSelectivityBatch(queries);  // warm-up populates the arena
  tensor::InferenceArena::ResetStats();
  for (int pass = 0; pass < 3; ++pass) model.EstimateSelectivityBatch(queries);
  const tensor::InferenceArena::Stats stats = tensor::InferenceArena::stats();
  EXPECT_EQ(stats.fresh_allocs, 0u)
      << "steady-state batched forward must not allocate activation buffers";
  EXPECT_GT(stats.reuses, 0u);
  tensor::InferenceArena::Clear();
}

TEST(BatchApiTest, EvaluateQErrorsMatchesPerQueryPath) {
  const data::Table t = SmallTable();
  core::DuetModelOptions opt;
  opt.hidden_sizes = {32, 32};
  core::DuetModel model(t, opt);
  core::DuetEstimator est(model);

  query::WorkloadSpec spec;
  spec.num_queries = 20;
  spec.seed = 9;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();
  const auto batched = query::EvaluateQErrors(est, wl, t.num_rows());
  ASSERT_EQ(batched.size(), wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    const double card = est.EstimateCardinality(wl[i].query, t.num_rows());
    const double expected = query::QError(card, static_cast<double>(wl[i].cardinality));
    EXPECT_NEAR(batched[i], expected, 1e-9) << "query " << i;
  }
}

}  // namespace
}  // namespace duet
