// Tests for the paper-mentioned extensions implemented beyond the core
// reproduction: importance-weighted operator sampling (Sec. IV-C's query
// time-locality remark) and disjunction estimation by inclusion-exclusion
// (Sec. III's supported-queries remark).
#include <cmath>

#include "common/stats.h"
#include "core/disjunction.h"
#include "core/duet_model.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/evaluator.h"
#include "query/workload.h"

namespace duet::core {
namespace {

using query::PredOp;
using query::Query;

// ---------- importance-weighted operator sampling ----------

TEST(OpWeightsTest, DerivedFromWorkloadFrequencies) {
  query::Workload wl;
  Query q;
  q.predicates.push_back({0, PredOp::kEq, 1.0});
  q.predicates.push_back({1, PredOp::kEq, 1.0});
  q.predicates.push_back({2, PredOp::kLe, 1.0});
  wl.push_back({q, 1});
  const auto weights = OpWeightsFromWorkload(wl, /*smoothing=*/0.0);
  ASSERT_EQ(weights.size(), static_cast<size_t>(query::kNumPredOps));
  EXPECT_NEAR(weights[static_cast<size_t>(PredOp::kEq)], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(weights[static_cast<size_t>(PredOp::kLe)], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(weights[static_cast<size_t>(PredOp::kGt)], 0.0, 1e-9);
}

TEST(OpWeightsTest, SmoothingKeepsAllOpsAlive) {
  query::Workload wl;
  Query q;
  q.predicates.push_back({0, PredOp::kEq, 1.0});
  wl.push_back({q, 1});
  const auto weights = OpWeightsFromWorkload(wl, 0.1);
  for (double w : weights) EXPECT_GT(w, 0.0);
}

TEST(ImportanceSamplerTest, SkewsSliceAllocationTowardHeavyOps) {
  data::Table t = data::CensusLike(1200, 8);
  SamplerOptions opt;
  opt.expand = 1;
  opt.wildcard_prob = 0.0;
  // Heavily favour equality predicates.
  opt.op_weights = {0.8, 0.05, 0.05, 0.05, 0.05};
  VirtualTupleSampler sampler(t, opt);
  std::vector<int64_t> anchors;
  for (int64_t i = 0; i < 600; ++i) anchors.push_back(i);
  const VirtualBatch vb = sampler.Sample(anchors, 4);
  int eq = 0, total = 0;
  for (int64_t r = 0; r < vb.batch; ++r) {
    for (int c = 0; c < vb.num_columns; ++c) {
      const int8_t op = vb.op_at(r, c);
      if (op < 0) continue;
      ++total;
      eq += op == static_cast<int8_t>(PredOp::kEq) ? 1 : 0;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(eq) / total, 0.6);
}

TEST(ImportanceSamplerTest, PredicatesStillSatisfiedByAnchors) {
  data::Table t = data::CensusLike(600, 9);
  SamplerOptions opt;
  opt.op_weights = {0.1, 0.4, 0.1, 0.3, 0.1};
  opt.expand = 2;
  VirtualTupleSampler sampler(t, opt);
  std::vector<int64_t> anchors = {3, 14, 159, 265};
  const VirtualBatch vb = sampler.Sample(anchors, 5);
  for (int64_t r = 0; r < vb.batch; ++r) {
    for (int c = 0; c < vb.num_columns; ++c) {
      const int8_t op = vb.op_at(r, c);
      if (op < 0) continue;
      const int32_t anchor = vb.label_at(r, c);
      const int32_t code = vb.code_at(r, c);
      bool ok = false;
      switch (static_cast<PredOp>(op)) {
        case PredOp::kEq: ok = anchor == code; break;
        case PredOp::kGt: ok = anchor > code; break;
        case PredOp::kLt: ok = anchor < code; break;
        case PredOp::kGe: ok = anchor >= code; break;
        case PredOp::kLe: ok = anchor <= code; break;
      }
      EXPECT_TRUE(ok);
    }
  }
}

TEST(ImportanceSamplerTest, TrainingWithWorkloadGuidedOpsConverges) {
  data::Table t = data::CensusLike(1000, 10);
  query::WorkloadSpec spec;
  spec.num_queries = 100;
  spec.seed = 42;
  const query::Workload wl = query::WorkloadGenerator(t, spec).Generate();

  DuetModelOptions mopt;
  mopt.hidden_sizes = {32, 32};
  DuetModel model(t, mopt);
  // Hand-rolled loop with an importance-configured sampler.
  SamplerOptions sopt;
  sopt.op_weights = OpWeightsFromWorkload(wl);
  VirtualTupleSampler sampler(t, sopt);
  tensor::Adam adam(model.parameters(), 2e-3f);
  Rng rng(1);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 40; ++step) {
    std::vector<int64_t> anchors;
    for (int i = 0; i < 128; ++i) {
      anchors.push_back(static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(t.num_rows()))));
    }
    adam.ZeroGrad();
    tensor::Tensor loss = model.DataLoss(sampler.Sample(anchors, rng()));
    loss.Backward();
    adam.Step();
    if (step == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first);
}

// ---------- disjunction ----------

TEST(DisjunctionTest, IntersectClausesConcatenatesPredicates) {
  Query a, b;
  a.predicates.push_back({0, PredOp::kGe, 1.0});
  b.predicates.push_back({0, PredOp::kLe, 5.0});
  b.predicates.push_back({2, PredOp::kEq, 3.0});
  const Query both = IntersectClauses({&a, &b});
  EXPECT_EQ(both.predicates.size(), 3u);
}

/// Exact evaluator wrapped as a CardinalityEstimator: isolates the
/// inclusion-exclusion logic from model error.
class ExactEstimator : public query::CardinalityEstimator {
 public:
  explicit ExactEstimator(const data::Table& t) : table_(t), ev_(t) {}
  double EstimateSelectivity(const Query& q) override {
    return static_cast<double>(ev_.Count(q)) / static_cast<double>(table_.num_rows());
  }
  std::string name() const override { return "Exact"; }

 private:
  const data::Table& table_;
  query::ExactEvaluator ev_;
};

TEST(DisjunctionTest, InclusionExclusionIsExactWithExactTerms) {
  data::Table t = data::CensusLike(1500, 11);
  ExactEstimator exact(t);
  query::ExactEvaluator ev(t);
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    // Two or three random anchored clauses.
    query::WorkloadSpec spec;
    spec.num_queries = 3;
    spec.seed = 100 + static_cast<uint64_t>(trial);
    query::WorkloadGenerator gen(t, spec);
    Rng qrng(200 + static_cast<uint64_t>(trial));
    std::vector<Query> clauses;
    const int k = 2 + (trial % 2);
    for (int i = 0; i < k; ++i) clauses.push_back(gen.GenerateQuery(qrng));

    const double est = EstimateDisjunction(exact, clauses);
    // Ground truth: count rows satisfying any clause.
    uint64_t truth = 0;
    const auto r0 = clauses[0].PerColumnRanges(t);
    std::vector<std::vector<query::CodeRange>> ranges;
    for (const Query& c : clauses) ranges.push_back(c.PerColumnRanges(t));
    for (int64_t row = 0; row < t.num_rows(); ++row) {
      bool any = false;
      for (size_t c = 0; c < clauses.size() && !any; ++c) {
        bool all = true;
        for (int col = 0; col < t.num_columns(); ++col) {
          const int32_t code = t.code(row, col);
          const query::CodeRange& cr = ranges[c][static_cast<size_t>(col)];
          if (code < cr.lo || code >= cr.hi) {
            all = false;
            break;
          }
        }
        any = all;
      }
      truth += any ? 1 : 0;
    }
    EXPECT_NEAR(est * static_cast<double>(t.num_rows()), static_cast<double>(truth), 0.5)
        << "trial " << trial;
  }
}

TEST(DisjunctionTest, WorksWithTrainedDuet) {
  data::Table t = data::CensusLike(1200, 12);
  DuetModelOptions mopt;
  mopt.hidden_sizes = {32, 32};
  DuetModel model(t, mopt);
  TrainOptions topt;
  topt.epochs = 6;
  topt.batch_size = 128;
  DuetTrainer(model, topt).Train();
  DuetEstimator est(model);

  Query a, b;
  a.predicates.push_back({0, PredOp::kLe, t.column(0).Value(t.column(0).ndv() / 3)});
  b.predicates.push_back({1, PredOp::kGe, t.column(1).Value(2 * t.column(1).ndv() / 3)});
  const double sel = EstimateDisjunction(est, {a, b});
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
  // The disjunction is at least as selective as either clause (monotone),
  // up to model noise on the intersection term.
  const double sa = est.EstimateSelectivity(a);
  const double sb = est.EstimateSelectivity(b);
  EXPECT_GT(sel, std::max(sa, sb) - 0.25);
}

TEST(DisjunctionTest, SingleClauseDegenerates) {
  data::Table t = data::CensusLike(400, 13);
  ExactEstimator exact(t);
  Query a;
  a.predicates.push_back({0, PredOp::kGe, t.column(0).Value(1)});
  EXPECT_DOUBLE_EQ(EstimateDisjunction(exact, {a}), exact.EstimateSelectivity(a));
}

}  // namespace
}  // namespace duet::core
