// Tests for the optimizer substrate: access-path selection and the
// System-R style left-deep star-join DP, including the property the whole
// repository motivates — an exact cardinality oracle yields the optimal
// plan, and estimator error degrades plan quality monotonically in the
// constructed counterexample.
#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/traditional/independence.h"
#include "common/rng.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "optimizer/planner.h"
#include "query/evaluator.h"

namespace duet::optimizer {
namespace {

/// An exact-oracle estimator (scans the table).
class OracleEstimator : public query::CardinalityEstimator {
 public:
  explicit OracleEstimator(const data::Table& t) : table_(t), exact_(t) {}
  double EstimateSelectivity(const query::Query& q) override {
    return static_cast<double>(exact_.Count(q)) / static_cast<double>(table_.num_rows());
  }
  std::string name() const override { return "Oracle"; }

 private:
  const data::Table& table_;
  query::ExactEvaluator exact_;
};

/// An estimator that always reports a fixed selectivity.
class ConstantEstimator : public query::CardinalityEstimator {
 public:
  explicit ConstantEstimator(double sel) : sel_(sel) {}
  double EstimateSelectivity(const query::Query&) override { return sel_; }
  std::string name() const override { return "Constant"; }

 private:
  double sel_;
};

/// Table with a key column (col 0) and a value column (col 1).
data::Table KeyValueTable(const std::string& name, const std::vector<int32_t>& keys,
                          const std::vector<int32_t>& values, int32_t key_ndv,
                          int32_t val_ndv) {
  std::vector<double> key_dict, val_dict;
  for (int32_t v = 0; v < key_ndv; ++v) key_dict.push_back(v);
  for (int32_t v = 0; v < val_ndv; ++v) val_dict.push_back(v);
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("key", keys, key_dict));
  cols.push_back(data::Column::FromCodes("val", values, val_dict));
  return data::Table(name, std::move(cols));
}

// ---------------------------------------------------------------------------
// Access paths
// ---------------------------------------------------------------------------

class AccessPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 1000 rows; col 1 uniform over 10 values.
    Rng rng(3);
    std::vector<int32_t> keys(1000), vals(1000);
    for (int64_t i = 0; i < 1000; ++i) {
      keys[static_cast<size_t>(i)] = static_cast<int32_t>(rng.UniformInt(100));
      vals[static_cast<size_t>(i)] = static_cast<int32_t>(rng.UniformInt(10));
    }
    table_ = KeyValueTable("t", keys, vals, 100, 10);
  }

  data::Table table_;
};

TEST_F(AccessPathTest, SelectiveEqualityPrefersIndex) {
  AccessPathSelector sel(table_, {1});
  OracleEstimator oracle(table_);
  query::Query q;
  q.predicates.push_back({1, query::PredOp::kEq, 3.0});  // ~10% selectivity
  const AccessPath path = sel.Choose(q, oracle);
  // index: 10 + 0.1*1000*4 = 410 < seqscan 1000.
  EXPECT_FALSE(path.is_seq_scan());
  EXPECT_EQ(path.index_col, 1);
}

TEST_F(AccessPathTest, WidePredicatePrefersSeqScan) {
  AccessPathSelector sel(table_, {1});
  OracleEstimator oracle(table_);
  query::Query q;
  q.predicates.push_back({1, query::PredOp::kGe, 1.0});  // ~90% selectivity
  const AccessPath path = sel.Choose(q, oracle);
  // index: 10 + 0.9*1000*4 = 3610 > seqscan 1000.
  EXPECT_TRUE(path.is_seq_scan());
}

TEST_F(AccessPathTest, UnderestimateFlipsToWrongIndexPlan) {
  AccessPathSelector sel(table_, {1});
  query::Query q;
  q.predicates.push_back({1, query::PredOp::kGe, 1.0});  // truly ~90%
  // An estimator that wrongly claims 1% selectivity chooses the index...
  ConstantEstimator liar(0.01);
  const AccessPath chosen = sel.Choose(q, liar);
  EXPECT_FALSE(chosen.is_seq_scan());
  // ...and pays dearly under the true selectivity.
  const AccessPath optimal = sel.OptimalPath(q);
  EXPECT_TRUE(optimal.is_seq_scan());
  EXPECT_GT(sel.TrueCost(q, chosen), 3.0 * sel.TrueCost(q, optimal));
}

TEST_F(AccessPathTest, NoUsableIndexFallsBackToSeqScan) {
  AccessPathSelector sel(table_, {1});
  OracleEstimator oracle(table_);
  query::Query q;
  q.predicates.push_back({0, query::PredOp::kEq, 5.0});  // predicate on col 0 only
  EXPECT_TRUE(sel.Choose(q, oracle).is_seq_scan());
}

TEST_F(AccessPathTest, MemoizedTrueSelectivityBitIdenticalToNaiveScan) {
  // TrueCost / OptimalPath answer true selectivities from per-column
  // cumulative code histograms (O(1) per call) instead of rescanning the
  // table. The hit counts are integers and the final division is the same
  // expression, so the result must be BITWISE identical to the naive scan
  // this test replicates — including empty and contradictory ranges.
  AccessPathSelector sel(table_, {0, 1});
  const CostModel cost;  // the selector's defaults
  Rng rng(99);
  const query::PredOp ops[] = {query::PredOp::kEq, query::PredOp::kGt, query::PredOp::kLt,
                               query::PredOp::kGe, query::PredOp::kLe};
  for (int i = 0; i < 200; ++i) {
    query::Query q;
    const int num_preds = 1 + static_cast<int>(rng.UniformInt(3));
    for (int p = 0; p < num_preds; ++p) {
      const int col = static_cast<int>(rng.UniformInt(2));
      const data::Column& column = table_.column(col);
      const double value =
          column.Value(static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(column.ndv()))));
      q.predicates.push_back({col, ops[rng.UniformInt(5)], value});
    }
    const std::vector<query::CodeRange> ranges = q.PerColumnRanges(table_);
    for (int col = 0; col < 2; ++col) {
      // The pre-memoization row scan, verbatim.
      const query::CodeRange& r = ranges[static_cast<size_t>(col)];
      double naive = 0.0;
      if (!r.empty()) {
        const data::Column& column = table_.column(col);
        int64_t hits = 0;
        for (int64_t row = 0; row < table_.num_rows(); ++row) {
          const int32_t code = column.code(row);
          if (code >= r.lo && code < r.hi) ++hits;
        }
        naive = static_cast<double>(hits) / static_cast<double>(table_.num_rows());
      }
      AccessPath path;
      path.index_col = col;
      const double expected =
          cost.index_lookup + naive * static_cast<double>(table_.num_rows()) * cost.index_tuple;
      EXPECT_EQ(sel.TrueCost(q, path), expected);  // bitwise, not approx
    }
  }
}

// ---------------------------------------------------------------------------
// Star-join ordering
// ---------------------------------------------------------------------------

/// Three tables over a 20-value key with very different filtered sizes.
class StarJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    auto fill = [&](int64_t rows, int32_t val_ndv) {
      std::vector<int32_t> keys(static_cast<size_t>(rows)),
          vals(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        keys[static_cast<size_t>(i)] = static_cast<int32_t>(rng.UniformInt(20));
        vals[static_cast<size_t>(i)] = static_cast<int32_t>(rng.UniformInt(
            static_cast<uint64_t>(val_ndv)));
      }
      return std::pair(keys, vals);
    };
    auto [ka, va] = fill(2000, 4);
    auto [kb, vb] = fill(400, 4);
    auto [kc, vc] = fill(50, 4);
    a_ = KeyValueTable("a", ka, va, 20, 4);
    b_ = KeyValueTable("b", kb, vb, 20, 4);
    c_ = KeyValueTable("c", kc, vc, 20, 4);
    spec_.tables = {&a_, &b_, &c_};
    spec_.filters = {query::Query{}, query::Query{}, query::Query{}};
    spec_.join_col = 0;
  }

  data::Table a_, b_, c_;
  StarJoinQuery spec_;
};

TEST_F(StarJoinTest, OracleEstimatorMatchesOptimalPlanCost) {
  StarJoinPlanner planner(spec_);
  OracleEstimator ea(a_), eb(b_), ec(c_);
  const JoinPlan plan = planner.PlanWithEstimators({&ea, &eb, &ec});
  // Uniform keys: the estimate formula is near-exact, so the chosen order's
  // true cost must essentially match the optimal.
  EXPECT_LT(planner.PlanCostRatio(plan), 1.05);
}

TEST_F(StarJoinTest, OptimalPlanJoinsSmallTablesFirst) {
  StarJoinPlanner planner(spec_);
  const JoinPlan plan = planner.OptimalPlan();
  // With no filters and uniform keys, smallest-first minimizes C_out:
  // c (50) then b (400) then a (2000).
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_EQ(plan.order[0], 2);
  EXPECT_EQ(plan.order[1], 1);
  EXPECT_EQ(plan.order[2], 0);
}

TEST_F(StarJoinTest, DpMatchesBruteForceEnumeration) {
  StarJoinPlanner planner(spec_);
  const JoinPlan best = planner.OptimalPlan();
  std::vector<int> order = {0, 1, 2};
  double brute_best = 1e300;
  std::sort(order.begin(), order.end());
  do {
    brute_best = std::min(brute_best, planner.TrueCOut(order));
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_DOUBLE_EQ(best.true_cost, brute_best);
}

TEST_F(StarJoinTest, MisestimateCausesSuboptimalOrder) {
  StarJoinPlanner planner(spec_);
  // Estimators that wildly overestimate the small table and underestimate
  // the big one invert the order preference.
  ConstantEstimator big_says_tiny(1e-4);   // a (2000 rows) "selects almost nothing"
  ConstantEstimator small_says_huge(1.0);  // c (50 rows) "selects everything"
  OracleEstimator eb(b_);
  const JoinPlan bad = planner.PlanWithEstimators({&big_says_tiny, &eb, &small_says_huge});
  EXPECT_GT(planner.PlanCostRatio(bad), 1.0);
  // The optimal plan defers the big table `a` to the very end; the misled
  // plan pulls it into the first join pair ("a is tiny", says the liar).
  const auto pos = [](const JoinPlan& p, int t) {
    return std::find(p.order.begin(), p.order.end(), t) - p.order.begin();
  };
  EXPECT_EQ(pos(planner.OptimalPlan(), 0), 2);
  EXPECT_LT(pos(bad, 0), 2);
}

TEST_F(StarJoinTest, FiltersShrinkTrueCost) {
  StarJoinPlanner unfiltered(spec_);
  StarJoinQuery filtered = spec_;
  filtered.filters[0].predicates.push_back({1, query::PredOp::kEq, 2.0});
  StarJoinPlanner planner(filtered);
  EXPECT_LT(planner.OptimalPlan().true_cost, unfiltered.OptimalPlan().true_cost);
}

TEST_F(StarJoinTest, TrueCOutHandComputedTinyExample) {
  // Two tables, two keys: A = {k0 x2, k1 x1}, B = {k0 x1, k1 x3}.
  data::Table a = KeyValueTable("a", {0, 0, 1}, {0, 0, 0}, 2, 1);
  data::Table b = KeyValueTable("b", {0, 1, 1, 1}, {0, 0, 0, 0}, 2, 1);
  StarJoinQuery spec;
  spec.tables = {&a, &b};
  spec.filters = {query::Query{}, query::Query{}};
  StarJoinPlanner planner(spec);
  // |A join B| = 2*1 + 1*3 = 5, the only intermediate for K=2.
  EXPECT_DOUBLE_EQ(planner.TrueCOut({0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(planner.TrueCOut({1, 0}), 5.0);
}

}  // namespace
}  // namespace duet::optimizer
