// Numeric gradient checking helper for the autograd engine tests.
#ifndef DUET_TESTS_GRADCHECK_H_
#define DUET_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace duet::testing {

/// Checks d(scalar fn)/d(input) against central finite differences for every
/// element of `input`. `fn` must rebuild the graph from the current input
/// values and return a scalar tensor. Tolerances are float32-appropriate.
inline void ExpectGradMatchesNumeric(tensor::Tensor input,
                                     const std::function<tensor::Tensor()>& fn,
                                     float eps = 1e-2f, float rtol = 6e-2f,
                                     float atol = 2e-2f) {
  // Analytic gradient.
  tensor::Tensor loss = fn();
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();
  std::vector<float> analytic = input.grad_vector();
  ASSERT_EQ(analytic.size(), static_cast<size_t>(input.numel()));

  for (int64_t i = 0; i < input.numel(); ++i) {
    const float saved = input.data()[i];
    input.data()[i] = saved + eps;
    const double up = static_cast<double>(fn().item());
    input.data()[i] = saved - eps;
    const double down = static_cast<double>(fn().item());
    input.data()[i] = saved;
    const double numeric = (up - down) / (2.0 * static_cast<double>(eps));
    const double got = static_cast<double>(analytic[static_cast<size_t>(i)]);
    const double tol = atol + rtol * std::abs(numeric);
    EXPECT_NEAR(got, numeric, tol) << "element " << i;
  }
}

}  // namespace duet::testing

#endif  // DUET_TESTS_GRADCHECK_H_
