// Unit tests for layers and the MADE/ResMADE mask machinery, including the
// autoregressive-property check (output block i must be numerically
// invariant to any perturbation of input blocks >= i).
#include <cmath>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "gradcheck.h"
#include "gtest/gtest.h"
#include "nn/layers.h"
#include "nn/made.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace duet::nn {
namespace {

using duet::testing::ExpectGradMatchesNumeric;
using tensor::Tensor;

TEST(LinearTest, ShapesAndDeterministicInit) {
  Rng rng1(42), rng2(42);
  Linear a(4, 3, rng1), b(4, 3, rng2);
  for (int64_t i = 0; i < a.weight().numel(); ++i) {
    EXPECT_FLOAT_EQ(a.weight().data()[i], b.weight().data()[i]);
  }
  Tensor x = Tensor::Full({2, 4}, 1.0f);
  Tensor y = a.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(LinearTest, GradientFlowsToParams) {
  Rng rng(1);
  Linear l(3, 2, rng);
  Tensor x = Tensor::Full({4, 3}, 0.5f);
  Tensor loss = tensor::MeanAll(tensor::Mul(l.Forward(x), l.Forward(x)));
  loss.Backward();
  EXPECT_FALSE(l.weight().grad_vector().empty());
  bool any_nonzero = false;
  for (float g : l.weight().grad_vector()) any_nonzero |= g != 0.0f;
  EXPECT_TRUE(any_nonzero);
}

TEST(MaskedLinearTest, MaskZeroesConnections) {
  Rng rng(2);
  // Mask out every connection from input 0.
  Tensor mask = Tensor::Full({2, 3}, 1.0f);
  for (int64_t c = 0; c < 3; ++c) mask.data()[0 * 3 + c] = 0.0f;
  MaskedLinear l(2, 3, mask, rng);
  Tensor x1 = Tensor::FromVector({1, 2}, {0.0f, 1.0f});
  Tensor x2 = Tensor::FromVector({1, 2}, {100.0f, 1.0f});
  Tensor y1 = l.Forward(x1);
  Tensor y2 = l.Forward(x2);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(MlpTest, ForwardShapeAndGrad) {
  Rng rng(3);
  Mlp mlp({4, 8, 2}, rng);
  Tensor x = Tensor::Full({3, 4}, 0.3f);
  Tensor y = mlp.Forward(x);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_EQ(mlp.parameters().size(), 4u);  // 2 layers x (W, b)
}

TEST(EmbeddingTest, RowsComeFromTable) {
  Rng rng(4);
  Embedding emb(5, 3, rng);
  Tensor y = emb.Forward({4, 1});
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(y.data()[c], emb.weight().data()[4 * 3 + c]);
  }
}

TEST(LstmTest, StateShapesAndChange) {
  Rng rng(5);
  LstmCell cell(4, 6, rng);
  auto s0 = cell.InitialState(2);
  Tensor x = Tensor::Full({2, 4}, 1.0f);
  auto s1 = cell.Forward(x, s0);
  EXPECT_EQ(s1.h.dim(1), 6);
  bool changed = false;
  for (int64_t i = 0; i < s1.h.numel(); ++i) changed |= s1.h.data()[i] != 0.0f;
  EXPECT_TRUE(changed);
}

TEST(LstmTest, GradientsReachWeights) {
  Rng rng(6);
  LstmCell cell(3, 4, rng);
  auto s = cell.InitialState(2);
  Tensor x = Tensor::Full({2, 3}, 0.7f);
  auto s1 = cell.Forward(x, s);
  auto s2 = cell.Forward(x, s1);
  Tensor loss = tensor::SumAll(s2.h);
  loss.Backward();
  bool any = false;
  for (const auto& p : cell.parameters()) {
    for (float g : p.grad_vector()) any |= g != 0.0f;
  }
  EXPECT_TRUE(any);
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(7);
  Mlp a({3, 5, 2}, rng);
  Mlp b({3, 5, 2}, rng);  // different init (rng advanced)
  std::stringstream buf;
  BinaryWriter w(buf);
  a.Save(w);
  BinaryReader r(buf);
  b.Load(r);
  Tensor x = Tensor::Full({2, 3}, 0.4f);
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(ModuleTest, NumParamsAndSize) {
  Rng rng(8);
  Linear l(10, 10, rng);
  EXPECT_EQ(l.NumParams(), 110);
  EXPECT_NEAR(l.SizeMB(), 110.0 * 4 / (1024 * 1024), 1e-9);
}

// ---------- MADE machinery ----------

TEST(MadeMaskTest, DegreeHelpers) {
  auto in = MadeInputDegrees({2, 3, 1});
  ASSERT_EQ(in.size(), 6u);
  EXPECT_EQ(in[0], 1);
  EXPECT_EQ(in[1], 1);
  EXPECT_EQ(in[2], 2);
  EXPECT_EQ(in[5], 3);
  auto hid = MadeHiddenDegrees(5, 3);
  for (int32_t d : hid) {
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 2);
  }
}

TEST(MadeMaskTest, StrictAndNonStrictRules) {
  Tensor loose = BuildMadeMask({1, 2}, {1, 2}, /*strict=*/false);
  // out_deg >= in_deg
  EXPECT_FLOAT_EQ(loose.data()[0 * 2 + 0], 1.0f);  // 1>=1
  EXPECT_FLOAT_EQ(loose.data()[1 * 2 + 0], 0.0f);  // 1>=2 fails
  Tensor strict = BuildMadeMask({1, 2}, {1, 2}, /*strict=*/true);
  EXPECT_FLOAT_EQ(strict.data()[0 * 2 + 0], 0.0f);  // 1>1 fails
  EXPECT_FLOAT_EQ(strict.data()[0 * 2 + 1], 1.0f);  // 2>1
}

struct MadeCase {
  const char* name;
  bool residual;
  std::vector<int64_t> hidden;
};

class MadeAutoregressiveTest : public ::testing::TestWithParam<MadeCase> {};

TEST_P(MadeAutoregressiveTest, OutputBlockIgnoresLaterInputs) {
  Rng rng(9);
  MadeOptions opt;
  opt.input_widths = {3, 5, 2, 4};
  opt.output_widths = {4, 6, 3, 5};
  opt.hidden_sizes = GetParam().hidden;
  opt.residual = GetParam().residual;
  Made made(opt, rng);

  Rng data_rng(10);
  Tensor x = Tensor::Zeros({1, made.input_dim()});
  for (int64_t i = 0; i < x.numel(); ++i) x.data()[i] = data_rng.UniformFloat();
  Tensor y0 = made.Forward(x);

  const auto& in_blocks = made.input_blocks();
  const auto& out_blocks = made.output_blocks();
  for (int target = 0; target < made.num_columns(); ++target) {
    // Perturb all input blocks >= target; outputs < ... block `target` must
    // depend only on blocks < target, so it must not move.
    Tensor xp = x.Clone();
    for (int c = target; c < made.num_columns(); ++c) {
      for (int64_t j = 0; j < in_blocks[static_cast<size_t>(c)].len; ++j) {
        xp.data()[in_blocks[static_cast<size_t>(c)].offset + j] += 7.5f;
      }
    }
    Tensor y1 = made.Forward(xp);
    const tensor::BlockSpec& ob = out_blocks[static_cast<size_t>(target)];
    for (int64_t j = 0; j < ob.len; ++j) {
      EXPECT_FLOAT_EQ(y0.data()[ob.offset + j], y1.data()[ob.offset + j])
          << "output block " << target << " element " << j;
    }
  }
}

TEST_P(MadeAutoregressiveTest, EarlierInputsDoAffectLaterOutputs) {
  Rng rng(11);
  MadeOptions opt;
  opt.input_widths = {3, 5, 2, 4};
  opt.output_widths = {4, 6, 3, 5};
  opt.hidden_sizes = GetParam().hidden;
  opt.residual = GetParam().residual;
  Made made(opt, rng);

  Tensor x = Tensor::Zeros({1, made.input_dim()});
  Tensor y0 = made.Forward(x);
  Tensor xp = x.Clone();
  for (int64_t j = 0; j < made.input_blocks()[0].len; ++j) xp.data()[j] = 3.0f;
  Tensor y1 = made.Forward(xp);
  // Expressiveness: the last output block should move when column 0 changes.
  const tensor::BlockSpec& ob = made.output_blocks().back();
  bool moved = false;
  for (int64_t j = 0; j < ob.len; ++j) {
    moved |= y0.data()[ob.offset + j] != y1.data()[ob.offset + j];
  }
  EXPECT_TRUE(moved);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, MadeAutoregressiveTest,
    ::testing::Values(MadeCase{"PlainSmall", false, {32, 32}},
                      MadeCase{"PlainHetero", false, {48, 24, 48}},
                      MadeCase{"Res2x32", true, {32, 32}},
                      MadeCase{"Res3x16", true, {16, 16, 16}}),
    [](const ::testing::TestParamInfo<MadeCase>& info) { return info.param.name; });

TEST(MadeTest, SingleColumnIsInputIndependent) {
  Rng rng(12);
  MadeOptions opt;
  opt.input_widths = {4};
  opt.output_widths = {6};
  opt.hidden_sizes = {16};
  Made made(opt, rng);
  Tensor a = Tensor::Full({1, 4}, 0.0f);
  Tensor b = Tensor::Full({1, 4}, 9.0f);
  Tensor ya = made.Forward(a);
  Tensor yb = made.Forward(b);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(MadeTest, LearnsConditionalDistribution) {
  // Two binary columns with P(c1 = c0) = 1: after training, the model must
  // put nearly all block-1 mass on the value matching the block-0 input.
  Rng rng(13);
  MadeOptions opt;
  opt.input_widths = {2, 2};  // one-hot inputs
  opt.output_widths = {2, 2};
  opt.hidden_sizes = {32, 32};
  Made made(opt, rng);
  tensor::Adam adam(made.parameters(), 5e-2f);
  const std::vector<tensor::BlockSpec> blocks = made.output_blocks();

  Rng data_rng(14);
  for (int step = 0; step < 300; ++step) {
    const int64_t bs = 32;
    Tensor x = Tensor::Zeros({bs, 4});
    std::vector<int32_t> targets(static_cast<size_t>(bs * 2));
    for (int64_t r = 0; r < bs; ++r) {
      const int32_t v = static_cast<int32_t>(data_rng.UniformInt(2));
      x.data()[r * 4 + v] = 1.0f;      // block 0 input
      x.data()[r * 4 + 2 + v] = 1.0f;  // block 1 input (ignored by block 1's head)
      targets[static_cast<size_t>(r * 2 + 0)] = v;
      targets[static_cast<size_t>(r * 2 + 1)] = v;
    }
    adam.ZeroGrad();
    Tensor loss = tensor::NllLossBlocks(tensor::LogSoftmaxBlocks(made.Forward(x), blocks),
                                        blocks, targets);
    loss.Backward();
    adam.Step();
  }
  // Check P(c1 | c0=1) concentrates on 1.
  Tensor x = Tensor::Zeros({1, 4});
  x.data()[1] = 1.0f;
  Tensor probs = tensor::SoftmaxBlocks(made.Forward(x), blocks);
  EXPECT_GT(probs.data()[2 + 1], 0.9f);
}

}  // namespace
}  // namespace duet::nn
