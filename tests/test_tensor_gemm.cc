// Tiled-GEMM correctness: the register-blocked MatMul / MatMulBiasAct
// kernels must match the scalar triple-loop reference (forward and backward)
// on ragged shapes, NoGradScope must be bitwise transparent, and the
// inference arena must reach a zero-allocation steady state.
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "nn/made.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::tensor {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, Rng& rng, bool requires_grad) {
  Tensor t = Tensor::Zeros(std::move(shape), requires_grad);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = rng.UniformFloat() * 2.0f - 1.0f;
  }
  return t;
}

/// Asserts |a - b| <= tol * max(1, |b|) elementwise.
void ExpectAllClose(const std::vector<float>& a, const std::vector<float>& b, float tol,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const float scale = std::max(1.0f, std::fabs(b[i]));
    ASSERT_NEAR(a[i], b[i], tol * scale) << what << " at index " << i;
  }
}

/// Guard restoring the kernel selection on scope exit.
struct ScalarKernelGuard {
  explicit ScalarKernelGuard(bool use) { SetUseScalarKernels(use); }
  ~ScalarKernelGuard() { SetUseScalarKernels(false); }
};

constexpr int64_t kShapes[] = {1, 3, 17, 64, 129};

TEST(TiledGemm, ForwardAndBackwardMatchScalarReferenceOnRaggedShapes) {
  Rng rng(11);
  for (int64_t b : kShapes) {
    for (int64_t k : kShapes) {
      for (int64_t o : kShapes) {
        const Tensor a0 = RandomTensor({b, k}, rng, false);
        const Tensor w0 = RandomTensor({k, o}, rng, false);

        auto run = [&](bool scalar) {
          ScalarKernelGuard guard(scalar);
          Tensor a = a0.Clone();
          Tensor w = w0.Clone();
          a.impl()->requires_grad = true;
          w.impl()->requires_grad = true;
          Tensor out = MatMul(a, w);
          SumAll(out).Backward();
          return std::make_tuple(out.value_vector(), a.grad_vector(), w.grad_vector());
        };
        const auto [out_t, ga_t, gw_t] = run(false);
        const auto [out_s, ga_s, gw_s] = run(true);
        ExpectAllClose(out_t, out_s, 1e-5f, "forward");
        ExpectAllClose(ga_t, ga_s, 1e-5f, "dA");
        ExpectAllClose(gw_t, gw_s, 1e-5f, "dW");
      }
    }
  }
}

TEST(TiledGemm, FusedBiasActMatchesComposedOps) {
  Rng rng(23);
  const Activation acts[] = {Activation::kNone, Activation::kRelu, Activation::kSigmoid,
                             Activation::kTanh};
  for (Activation act : acts) {
    for (int64_t b : {1, 5, 64}) {
      for (int64_t o : {3, 17, 129}) {
        const int64_t k = 33;
        const Tensor a0 = RandomTensor({b, k}, rng, false);
        const Tensor w0 = RandomTensor({k, o}, rng, false);
        const Tensor bias0 = RandomTensor({o}, rng, false);

        auto run = [&](bool fused) {
          Tensor a = a0.Clone();
          Tensor w = w0.Clone();
          Tensor bias = bias0.Clone();
          a.impl()->requires_grad = true;
          w.impl()->requires_grad = true;
          bias.impl()->requires_grad = true;
          Tensor out;
          if (fused) {
            out = MatMulBiasAct(a, w, bias, act);
          } else {
            out = AddBias(MatMul(a, w), bias);
            switch (act) {
              case Activation::kNone: break;
              case Activation::kRelu: out = Relu(out); break;
              case Activation::kSigmoid: out = Sigmoid(out); break;
              case Activation::kTanh: out = Tanh(out); break;
            }
          }
          SumAll(out).Backward();
          return std::make_tuple(out.value_vector(), a.grad_vector(), w.grad_vector(),
                                 bias.grad_vector());
        };
        const auto [out_f, ga_f, gw_f, gb_f] = run(true);
        const auto [out_c, ga_c, gw_c, gb_c] = run(false);
        ExpectAllClose(out_f, out_c, 1e-5f, "fused forward");
        ExpectAllClose(ga_f, ga_c, 1e-5f, "fused dA");
        ExpectAllClose(gw_f, gw_c, 1e-5f, "fused dW");
        ExpectAllClose(gb_f, gb_c, 1e-5f, "fused db");
      }
    }
  }
}

TEST(TiledGemm, RowResultsIndependentOfBatchSize) {
  // A query batched with 63 others must see the exact logits it gets alone;
  // this is the invariant the batch-first estimator API relies on.
  Rng rng(31);
  const int64_t k = 57, o = 43;
  const Tensor w = RandomTensor({k, o}, rng, false);
  const Tensor big = RandomTensor({64, k}, rng, false);
  const Tensor out_big = MatMul(big, w);
  for (int64_t r : {int64_t{0}, int64_t{13}, int64_t{63}}) {
    Tensor row = Tensor::Zeros({1, k});
    std::copy(big.data() + r * k, big.data() + (r + 1) * k, row.data());
    const Tensor out_row = MatMul(row, w);
    for (int64_t c = 0; c < o; ++c) {
      ASSERT_EQ(out_row.data()[c], out_big.data()[r * o + c]) << "row " << r << " col " << c;
    }
  }
}

nn::MadeOptions SmallMadeOptions() {
  nn::MadeOptions opt;
  opt.input_widths = {7, 5, 9};
  opt.output_widths = {4, 6, 3};
  opt.hidden_sizes = {32, 32};
  return opt;
}

TEST(NoGradScopeTest, LogitsBitwiseIdenticalToTrackedMode) {
  Rng rng(101);
  const nn::Made made(SmallMadeOptions(), rng);
  const Tensor x = RandomTensor({5, 21}, rng, false);

  const Tensor tracked = made.Forward(x);
  ASSERT_TRUE(NoGradGuard::GradEnabled());

  NoGradScope scope;
  const Tensor inferred = made.Forward(x);
  EXPECT_FALSE(NoGradGuard::GradEnabled());
  ASSERT_EQ(tracked.numel(), inferred.numel());
  for (int64_t i = 0; i < tracked.numel(); ++i) {
    EXPECT_EQ(tracked.data()[i], inferred.data()[i]) << "logit " << i;
  }
  // Inference mode builds no graph: the result has no parents or backward.
  EXPECT_TRUE(inferred.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(inferred.impl()->backward));
}

TEST(NoGradScopeTest, ArenaReachesZeroAllocSteadyState) {
  Rng rng(103);
  const nn::Made made(SmallMadeOptions(), rng);
  const Tensor x = RandomTensor({8, 21}, rng, false);

  InferenceArena::Clear();
  {
    NoGradScope scope;
    made.Forward(x);  // warm-up populates the free lists
  }
  InferenceArena::ResetStats();
  {
    NoGradScope scope;
    for (int pass = 0; pass < 3; ++pass) made.Forward(x);
  }
  const InferenceArena::Stats stats = InferenceArena::stats();
  EXPECT_EQ(stats.fresh_allocs, 0u) << "steady-state forward must not heap-allocate";
  EXPECT_GT(stats.reuses, 0u);
  InferenceArena::Clear();
}

TEST(NoGradScopeTest, PooledBuffersDoNotAliasLiveTensors) {
  // Two forwards whose intermediates die at different times must never share
  // a live buffer; values of the first result stay intact after the second.
  NoGradScope scope;
  Tensor a = Tensor::Full({4, 4}, 2.0f);
  Tensor b = Tensor::Full({4, 4}, 3.0f);
  Tensor first = Mul(a, b);  // 6s, kept alive
  const std::vector<float> snapshot = first.value_vector();
  for (int i = 0; i < 4; ++i) {
    Tensor scratch = Mul(a, a);  // dies each iteration, recycles its buffer
    ASSERT_EQ(scratch.data()[0], 4.0f);
  }
  EXPECT_EQ(first.value_vector(), snapshot);
}

}  // namespace
}  // namespace duet::tensor
