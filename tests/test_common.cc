// Unit tests for the common substrate: PRNG + distributions, thread pool,
// stats, serialization, flags.
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace duet {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(2);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) seen[static_cast<size_t>(rng.UniformInt(5))]++;
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShapeScale) {
  Rng rng(6);
  const double shape = 2.0, scale = 1.5;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gamma(shape, scale);
    EXPECT_GT(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / n, shape * scale, 0.05);
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(0.5, 2.0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(8);
  auto perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (uint32_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RngTest, SplitGivesIndependentStream) {
  Rng a(9);
  Rng b = a.Split();
  EXPECT_NE(a(), b());
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(50, 1.1);
  double total = 0.0;
  for (uint32_t i = 0; i < 50; ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  ZipfDistribution z(20, 1.2);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(10));
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-9);
}

TEST(ZipfTest, SampleFrequenciesFollowPmf) {
  Rng rng(10);
  ZipfDistribution z(8, 1.0);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, z.Pmf(i), 0.01);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; }, true, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedCoversRangeOnce) {
  std::atomic<int64_t> total{0};
  ParallelForChunked(
      0, 12345, [&](int64_t lo, int64_t hi) { total += hi - lo; }, true, 7);
  EXPECT_EQ(total.load(), 12345);
}

TEST(ThreadPoolTest, SerialFallback) {
  int64_t sum = 0;  // no atomics needed: serial path
  ParallelFor(0, 100, [&](int64_t i) { sum += i; }, /*parallel=*/false);
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  std::atomic<int64_t> total{0};
  ParallelFor(
      0, 8,
      [&](int64_t) {
        ParallelFor(0, 100, [&](int64_t) { total++; }, true, 1);
      },
      true, 1);
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, EscapedSubmitExceptionDoesNotKillWorkers) {
  // A raw Submit task that throws must not terminate the process or wedge
  // the pool: the worker swallows it, bumps the counter, and keeps serving.
  ThreadPool pool(2);
  const uint64_t before = pool.escaped_exceptions();
  for (int i = 0; i < 4; ++i) {
    pool.Submit([] { throw std::runtime_error("task failed"); });
  }
  pool.Wait();
  EXPECT_EQ(pool.escaped_exceptions(), before + 4);
  // The pool is still fully operational afterwards.
  std::atomic<int64_t> sum{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&, i] { sum += i; });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 4950);
  EXPECT_EQ(pool.escaped_exceptions(), before + 4);
}

TEST(ThreadPoolTest, ParallelForChunkedRethrowsOnCaller) {
  // Exceptions from chunk bodies must surface on the calling thread (first
  // one wins), after all chunks have finished — not via std::terminate.
  std::atomic<int64_t> executed{0};
  bool caught = false;
  try {
    ParallelForChunked(
        0, 1000,
        [&](int64_t lo, int64_t hi) {
          executed += hi - lo;
          if (lo == 0) throw std::runtime_error("chunk exploded");
        },
        /*parallel=*/true, /*grain=*/100);
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "chunk exploded");
  }
  EXPECT_TRUE(caught);
  // The pool survives for subsequent clean runs.
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 100, [&](int64_t i) { sum += i; }, true, 1);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ParallelForChunkedSerialPathAlsoThrows) {
  EXPECT_THROW(ParallelForChunked(
                   0, 10, [](int64_t, int64_t) { throw std::logic_error("serial"); },
                   /*parallel=*/false),
               std::logic_error);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
}

TEST(StatsTest, SummaryFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const ErrorSummary s = ErrorSummary::FromValues(v);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(SerializeTest, RoundTripAllTypes) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.WriteU32(7);
  w.WriteU64(1ULL << 40);
  w.WriteI64(-42);
  w.WriteF32(1.5f);
  w.WriteF64(2.25);
  w.WriteString("hello");
  w.WriteF32Vector({1.0f, 2.0f});
  w.WriteI64Vector({-1, 2, -3});
  w.WriteU32Vector({9, 8});
  BinaryReader r(buf);
  EXPECT_EQ(r.ReadU32(), 7u);
  EXPECT_EQ(r.ReadU64(), 1ULL << 40);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_FLOAT_EQ(r.ReadF32(), 1.5f);
  EXPECT_DOUBLE_EQ(r.ReadF64(), 2.25);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadF32Vector(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(r.ReadI64Vector(), (std::vector<int64_t>{-1, 2, -3}));
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{9, 8}));
}

TEST(SerializeTest, TruncatedStreamDies) {
  std::stringstream buf;
  BinaryWriter w(buf);
  w.WriteU32(1);
  BinaryReader r(buf);
  r.ReadU32();
  EXPECT_DEATH(r.ReadU64(), "truncated");
}

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog", "--rows=100", "--lr=0.5", "--verbose", "--name=abc",
                        "--flag=false"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rows", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.5);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("flag", true));
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_EQ(flags.GetInt("missing", -7), -7);
  EXPECT_TRUE(flags.Has("rows"));
  EXPECT_FALSE(flags.Has("nope"));
}

}  // namespace
}  // namespace duet

// ---------------------------------------------------------------------------
// Global pool resizing (thread-scaling ablation support)
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SetGlobalThreadsResizesAndStillRuns) {
  duet::ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(duet::ThreadPool::Global().num_threads(), 2u);
  std::atomic<int64_t> sum{0};
  duet::ParallelFor(0, 1000, [&](int64_t i) { sum += i; }, true, 1);
  EXPECT_EQ(sum.load(), 499500);
  duet::ThreadPool::SetGlobalThreads(0);  // restore hardware default
  EXPECT_GE(duet::ThreadPool::Global().num_threads(), 1u);
}
