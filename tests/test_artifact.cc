// Artifact format battery (`ctest -L zoo`): the mmap-able snapshot
// artifact (artifact/artifact.h) must (a) round-trip a frozen model with
// bitwise-identical estimates and zero repacks, (b) reject every corrupted
// input — truncations at all section boundaries, single-bit flips, wrong
// magic/version/kind, oversized section lengths, zero-length files, torn
// writes — with a clean ArtifactStatus, never a crash or abort, and (c)
// stay byte-stable against the committed golden files under tests/golden/
// (load golden -> resave reproduces it bit for bit, and regenerating the
// recipe model reproduces it too). Failed loads must leave the out-param
// and any ModelZoo registry state untouched. Runs under ASan/UBSan in CI.
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/format.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "core/duet_model.h"
#include "data/generator.h"
#include "data/table.h"
#include "gtest/gtest.h"
#include "query/query.h"
#include "query/workload.h"
#include "serve/fault_injector.h"
#include "serve/model_registry.h"
#include "serve/model_zoo.h"
#include "tensor/packed_weights.h"

namespace duet {
namespace {

using artifact::ArtifactLoadOptions;
using artifact::ArtifactStatus;
using artifact::LoadArtifact;
using artifact::WriteArtifact;
using query::Query;

data::Table SmallTable() { return data::CensusLike(400, 17); }

core::DuetModelOptions SmallModelOptions() {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {16, 16};
  opt.residual = true;
  return opt;
}

std::vector<Query> MakeQueries(const data::Table& table, int n, uint64_t seed = 31) {
  query::WorkloadSpec spec;
  spec.seed = seed;
  query::WorkloadGenerator gen(table, spec);
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) queries.push_back(gen.GenerateQuery(rng));
  return queries;
}

std::string TempPath(const std::string& name) {
  return "/tmp/duet_artifact_" + std::to_string(::getpid()) + "_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  ASSERT_TRUE(out.good());
}

std::shared_ptr<const artifact::ArtifactModel> LoadOk(const std::string& path) {
  std::shared_ptr<const artifact::ArtifactModel> model;
  const ArtifactStatus st = LoadArtifact(path, ArtifactLoadOptions{}, &model);
  EXPECT_TRUE(st.ok) << st.error;
  EXPECT_NE(model, nullptr);
  return model;
}

// ---- round trip: bitwise identity, zero repacks, all four backends ----

class ArtifactRoundTripTest : public ::testing::TestWithParam<tensor::WeightBackend> {};

TEST_P(ArtifactRoundTripTest, BitwiseIdenticalEstimatesZeroRepacks) {
  const tensor::WeightBackend backend = GetParam();
  const data::Table table = SmallTable();
  core::DuetModel model(table, SmallModelOptions());
  model.SetInferenceBackend(backend);
  model.SetPlanEnabled(true);

  const std::vector<Query> queries = MakeQueries(table, 96);
  const std::vector<double> expected = model.EstimateSelectivityBatch(queries);

  const std::string path = TempPath("roundtrip.duet");
  const ArtifactStatus wst = WriteArtifact(path, model, backend);
  ASSERT_TRUE(wst.ok) << wst.error;

  // Zero-repack contract: loading and serving from the artifact must never
  // call tensor::PackWeights — every weight array is a view into the map.
  const uint64_t packs_before = tensor::PackWeightsCalls();
  const std::shared_ptr<const artifact::ArtifactModel> loaded = LoadOk(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->backend(), backend);
  EXPECT_EQ(loaded->source_rows(), static_cast<uint64_t>(table.num_rows()));
  EXPECT_NE(loaded->fingerprint(), 0u);
  EXPECT_EQ(loaded->table().num_columns(), table.num_columns());
  EXPECT_EQ(loaded->table().num_rows(), 0) << "artifact tables are schema-only";
  EXPECT_GT(loaded->plan().bytes(), 0u);
  EXPECT_GT(loaded->mapped_bytes(), 0u);

  const std::vector<double> actual = loaded->EstimateSelectivityBatch(queries);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i << " drifted after reload";
  }
  // Scalar path too (separate code path: no chunking, single-row encode).
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(loaded->EstimateSelectivity(queries[i]), model.EstimateSelectivity(queries[i]));
  }
  // The estimator adapter serving dispatches use.
  const std::vector<double> via_adapter = loaded->estimator().EstimateSelectivityBatch(queries);
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(via_adapter[i], expected[i]);

  EXPECT_EQ(tensor::PackWeightsCalls(), packs_before)
      << "artifact load/serve repacked weights";
  ::unlink(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ArtifactRoundTripTest,
                         ::testing::Values(tensor::WeightBackend::kDenseF32,
                                           tensor::WeightBackend::kCsrF32,
                                           tensor::WeightBackend::kInt8,
                                           tensor::WeightBackend::kF16,
                                           tensor::WeightBackend::kInt4),
                         [](const ::testing::TestParamInfo<tensor::WeightBackend>& info) {
                           switch (info.param) {
                             case tensor::WeightBackend::kDenseF32: return "dense";
                             case tensor::WeightBackend::kCsrF32: return "csr";
                             case tensor::WeightBackend::kInt8: return "int8";
                             case tensor::WeightBackend::kF16: return "f16";
                             case tensor::WeightBackend::kInt4: return "int4";
                           }
                           return "unknown";
                         });

// ---- publish-path serialization: registry -> artifact -> same bits ----

TEST(ArtifactTest, RegistrySaveCurrentArtifactServesRegistryBits) {
  const data::Table table = SmallTable();
  serve::RegistryOptions ropt;
  ropt.backend = tensor::WeightBackend::kCsrF32;
  serve::ModelRegistry registry(
      std::make_unique<core::DuetModel>(table, SmallModelOptions()), ropt);

  const std::vector<Query> queries = MakeQueries(table, 64, 77);
  const std::vector<double> expected =
      registry.Current()->estimator().EstimateSelectivityBatch(queries);

  const std::string path = TempPath("registry.duet");
  const ArtifactStatus st = registry.SaveCurrentArtifact(path);
  ASSERT_TRUE(st.ok) << st.error;
  const std::shared_ptr<const artifact::ArtifactModel> loaded = LoadOk(path);
  ASSERT_NE(loaded, nullptr);
  const std::vector<double> actual = loaded->EstimateSelectivityBatch(queries);
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(actual[i], expected[i]);
  ::unlink(path.c_str());
}

// ---- corruption battery ------------------------------------------------

/// Fixture holding one good artifact's bytes plus its parsed section index
/// and baseline estimates, so every corruption case can mutate a copy and
/// (when a mutation is harmless, e.g. in alignment padding) prove the
/// loaded model still serves the exact baseline bits.
class ArtifactCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = SmallTable();
    model_ = std::make_unique<core::DuetModel>(table_, SmallModelOptions());
    model_->SetInferenceBackend(tensor::WeightBackend::kCsrF32);
    model_->SetPlanEnabled(true);
    queries_ = MakeQueries(table_, 24);
    baseline_ = model_->EstimateSelectivityBatch(queries_);
    good_path_ = TempPath("corrupt_good.duet");
    const ArtifactStatus st =
        WriteArtifact(good_path_, *model_, tensor::WeightBackend::kCsrF32);
    ASSERT_TRUE(st.ok) << st.error;
    bytes_ = ReadFileBytes(good_path_);
    ASSERT_FALSE(bytes_.empty());
    const ArtifactStatus ist = artifact::IndexArtifact(
        bytes_.data(), bytes_.size(), artifact::kDuetArtifactKind, true, &index_);
    ASSERT_TRUE(ist.ok) << ist.error;
    ASSERT_GE(index_.sections.size(), 3u);  // meta + plan + >= 1 pack
    // A pre-loaded sentinel: failed loads must leave *out untouched.
    sentinel_ = LoadOk(good_path_);
    ASSERT_NE(sentinel_, nullptr);
    scratch_path_ = TempPath("corrupt_case.duet");
  }

  void TearDown() override {
    ::unlink(good_path_.c_str());
    ::unlink(scratch_path_.c_str());
  }

  /// Writes `mutated` to the scratch path and asserts LoadArtifact fails
  /// cleanly, leaving the out-param untouched.
  void ExpectRejected(const std::string& mutated, const std::string& what) {
    WriteFileBytes(scratch_path_, mutated);
    std::shared_ptr<const artifact::ArtifactModel> out = sentinel_;
    const ArtifactStatus st = LoadArtifact(scratch_path_, ArtifactLoadOptions{}, &out);
    EXPECT_FALSE(st.ok) << what << ": corrupted artifact loaded successfully";
    EXPECT_FALSE(st.error.empty()) << what;
    EXPECT_EQ(out, sentinel_) << what << ": failed load touched the out-param";
  }

  /// Header layout constants (format.cc Finish): the fixed prefix the
  /// checksum-patching cases below poke at.
  uint64_t HeaderBytes() const {
    return 4 + 4 + (8 + std::strlen(artifact::kDuetArtifactKind)) + 8 + 8 + 4 + 4 + 8 + 8 + 8;
  }
  uint64_t TableOffset() const {
    return (HeaderBytes() + artifact::kArtifactAlign - 1) & ~(artifact::kArtifactAlign - 1);
  }
  uint64_t TableBytes() const { return index_.sections.size() * artifact::kSectionEntryBytes; }

  /// Recomputes the table checksum and header checksum after a deliberate
  /// table mutation, so the mutated entry (not a checksum mismatch) is what
  /// the loader has to catch.
  void ResealChecksums(std::string* bytes) const {
    const uint64_t table_checksum =
        Fnv1a64(bytes->data() + TableOffset(), static_cast<size_t>(TableBytes()));
    const uint64_t checksum_field = HeaderBytes() - 16;  // table checksum slot
    std::memcpy(&(*bytes)[checksum_field], &table_checksum, 8);
    const uint64_t header_checksum = Fnv1a64(bytes->data(), static_cast<size_t>(HeaderBytes() - 8));
    std::memcpy(&(*bytes)[HeaderBytes() - 8], &header_checksum, 8);
  }

  data::Table table_;
  std::unique_ptr<core::DuetModel> model_;
  std::vector<Query> queries_;
  std::vector<double> baseline_;
  std::string good_path_;
  std::string scratch_path_;
  std::string bytes_;
  artifact::ArtifactIndex index_;
  std::shared_ptr<const artifact::ArtifactModel> sentinel_;
};

TEST_F(ArtifactCorruptionTest, ZeroLengthAndSubHeaderFilesRejected) {
  ExpectRejected(std::string(), "zero-length file");
  ExpectRejected(std::string("D", 1), "one-byte file");
  ExpectRejected(bytes_.substr(0, 7), "sub-magic prefix");
  ExpectRejected(bytes_.substr(0, HeaderBytes() - 1), "header minus one byte");
}

TEST_F(ArtifactCorruptionTest, WrongMagicVersionKindRejected) {
  {
    std::string m = bytes_;
    m[0] = 'X';
    ExpectRejected(m, "bad magic");
  }
  {
    std::string m = bytes_;
    const uint32_t bad_version = 999;
    std::memcpy(&m[4], &bad_version, 4);
    ExpectRejected(m, "unsupported version");
  }
  {
    // A structurally valid container of the wrong kind: framing passes, the
    // model loader must still refuse it.
    artifact::ArtifactFileWriter writer;
    writer.AddSection(artifact::SectionKind::kMeta, 0, "not a duet model");
    const ArtifactStatus st = writer.Finish(scratch_path_, "duet-other", 42);
    ASSERT_TRUE(st.ok) << st.error;
    std::shared_ptr<const artifact::ArtifactModel> out = sentinel_;
    const ArtifactStatus lst = LoadArtifact(scratch_path_, ArtifactLoadOptions{}, &out);
    EXPECT_FALSE(lst.ok);
    EXPECT_NE(lst.error.find("kind"), std::string::npos) << lst.error;
    EXPECT_EQ(out, sentinel_);
  }
}

TEST_F(ArtifactCorruptionTest, TruncationAtEverySectionBoundaryRejected) {
  std::set<uint64_t> lengths = {0, 1, 8, HeaderBytes() - 1, HeaderBytes(), TableOffset(),
                                TableOffset() + TableBytes(), bytes_.size() - 1};
  for (const artifact::SectionEntry& sec : index_.sections) {
    lengths.insert(sec.offset);           // cut exactly at the section start
    lengths.insert(sec.offset + 1);       // one byte into the payload
    lengths.insert(sec.offset + sec.size);  // cut at the payload end
    if (sec.size > 1) lengths.insert(sec.offset + sec.size - 1);
  }
  for (const uint64_t len : lengths) {
    if (len >= bytes_.size()) continue;
    ExpectRejected(bytes_.substr(0, static_cast<size_t>(len)),
                   "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST_F(ArtifactCorruptionTest, SingleBitFlipsDetectedOrProvablyHarmless) {
  // Flip one bit at a time: exhaustively over the header and the section
  // table, strided through the payloads. Every flip must either be rejected
  // cleanly or — when it lands in bytes no checksum covers (alignment
  // padding) — leave the loaded model serving the exact baseline bits.
  std::vector<uint64_t> positions;
  for (uint64_t i = 0; i < HeaderBytes(); ++i) positions.push_back(i);
  for (uint64_t i = TableOffset(); i < TableOffset() + TableBytes(); i += 3) positions.push_back(i);
  for (uint64_t i = TableOffset() + TableBytes(); i < bytes_.size(); i += 251) positions.push_back(i);
  positions.push_back(bytes_.size() - 1);

  int detected = 0, harmless = 0;
  for (const uint64_t pos : positions) {
    std::string m = bytes_;
    m[static_cast<size_t>(pos)] =
        static_cast<char>(m[static_cast<size_t>(pos)] ^ (1 << (pos % 8)));
    WriteFileBytes(scratch_path_, m);
    std::shared_ptr<const artifact::ArtifactModel> out;
    const ArtifactStatus st = LoadArtifact(scratch_path_, ArtifactLoadOptions{}, &out);
    if (!st.ok) {
      EXPECT_EQ(out, nullptr) << "failed load touched the out-param (byte " << pos << ")";
      ++detected;
      continue;
    }
    ASSERT_NE(out, nullptr);
    const std::vector<double> got = out->EstimateSelectivityBatch(queries_);
    for (size_t q = 0; q < baseline_.size(); ++q) {
      ASSERT_EQ(got[q], baseline_[q])
          << "bit flip at byte " << pos << " silently changed estimates";
    }
    ++harmless;
  }
  // The container is mostly sealed bytes: the battery must actually have
  // exercised the reject paths, and every header byte flip must be caught
  // (the header has no padding inside the checksummed prefix).
  EXPECT_GT(detected, static_cast<int>(HeaderBytes()) / 2);
  SCOPED_TRACE("detected=" + std::to_string(detected) + " harmless=" + std::to_string(harmless));
}

TEST_F(ArtifactCorruptionTest, OversizedSectionLengthRejected) {
  // Without resealing, the flip is caught by the table checksum.
  {
    std::string m = bytes_;
    const uint64_t entry0_size_at = TableOffset() + 16;
    uint64_t size = 0;
    std::memcpy(&size, &m[entry0_size_at], 8);
    size += uint64_t{1} << 20;
    std::memcpy(&m[entry0_size_at], &size, 8);
    ExpectRejected(m, "oversized section, stale checksums");
  }
  // With table + header checksums resealed, the bounds check itself must
  // reject the oversized length (and the wrap-around variant).
  for (const uint64_t inflation : {uint64_t{1} << 20, ~uint64_t{0} / 2}) {
    std::string m = bytes_;
    const uint64_t entry0_size_at = TableOffset() + 16;
    uint64_t size = 0;
    std::memcpy(&size, &m[entry0_size_at], 8);
    size += inflation;
    std::memcpy(&m[entry0_size_at], &size, 8);
    ResealChecksums(&m);
    ExpectRejected(m, "oversized section, resealed checksums");
  }
  // Overlap: aim section 1 back at section 0's offset (monotonicity check).
  {
    std::string m = bytes_;
    const uint64_t entry1_offset_at = TableOffset() + artifact::kSectionEntryBytes + 8;
    const uint64_t overlap = index_.sections[0].offset;
    std::memcpy(&m[entry1_offset_at], &overlap, 8);
    ResealChecksums(&m);
    ExpectRejected(m, "overlapping sections");
  }
}

TEST_F(ArtifactCorruptionTest, TornWriteRejectedAndZooStaysUntouched) {
  if (!serve::FaultInjector::Enabled()) {
    GTEST_SKIP() << "built with -DDUET_FAULT_INJECTION=OFF";
  }
  serve::FaultInjector::DisarmAll();
  const std::string path = TempPath("torn.duet");
  serve::FaultInjector::Arm(serve::FaultPoint::kCheckpointWrite, 1);
  const ArtifactStatus wst = WriteArtifact(path, *model_, tensor::WeightBackend::kCsrF32);
  serve::FaultInjector::DisarmAll();
  ASSERT_TRUE(wst.ok) << wst.error;  // the torn write itself "succeeds"
  EXPECT_LT(ReadFileBytes(path).size(), bytes_.size());

  // The zoo must reject the torn artifact without mutating registry state...
  serve::ModelZoo zoo;
  zoo.Register("torn", path);
  serve::ZooPin pin;
  const ArtifactStatus ast = zoo.TryAcquire("torn", &pin);
  EXPECT_FALSE(ast.ok);
  EXPECT_EQ(pin, nullptr);
  EXPECT_EQ(zoo.ResidentModels(), 0u);
  EXPECT_EQ(zoo.ResidentBytes(), 0u);
  EXPECT_EQ(zoo.stats().loads, 0u);

  // ...and recover transparently once a good artifact lands at the path.
  const ArtifactStatus rewrite = WriteArtifact(path, *model_, tensor::WeightBackend::kCsrF32);
  ASSERT_TRUE(rewrite.ok) << rewrite.error;
  const ArtifactStatus ok = zoo.TryAcquire("torn", &pin);
  ASSERT_TRUE(ok.ok) << ok.error;
  ASSERT_NE(pin, nullptr);
  const std::vector<double> got = pin->model().EstimateSelectivityBatch(queries_);
  for (size_t q = 0; q < baseline_.size(); ++q) EXPECT_EQ(got[q], baseline_[q]);
  pin.reset();
  ::unlink(path.c_str());
}

// ---- golden files: format stability ------------------------------------

/// The golden recipe: a fully hand-specified table (no generator in the
/// loop) and a tiny fixed-seed model, so the serialized bytes depend only
/// on the format and the deterministic init/compile paths. Changing ANY of
/// them is a format break and must be a conscious, versioned decision.
data::Table GoldenTable() {
  std::vector<data::Column> columns;
  columns.push_back(data::Column::FromCodes(
      "alpha", {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}, {1.0, 2.0, 3.0, 5.0}));
  columns.push_back(data::Column::FromCodes(
      "beta", {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 1}, {-2.0, -1.0, 0.0, 1.0, 2.0}));
  columns.push_back(data::Column::FromCodes(
      "gamma", {0, 1, 0, 1, 0, 1, 0, 1, 2, 2, 2, 2}, {10.0, 20.0, 30.0}));
  return data::Table("golden", std::move(columns));
}

core::DuetModelOptions GoldenModelOptions() {
  core::DuetModelOptions opt;
  opt.hidden_sizes = {8, 8};
  opt.residual = false;
  opt.seed = 1234;
  return opt;
}

std::string GoldenPath(const std::string& name) {
  return std::string(DUET_SOURCE_DIR) + "/tests/golden/" + name;
}

void CheckGoldenStability(tensor::WeightBackend backend, const std::string& golden_name) {
  const data::Table table = GoldenTable();
  core::DuetModel model(table, GoldenModelOptions());
  model.SetInferenceBackend(backend);
  model.SetPlanEnabled(true);

  const std::string fresh_path = TempPath("golden_fresh.duet");
  const ArtifactStatus wst = WriteArtifact(fresh_path, model, backend);
  ASSERT_TRUE(wst.ok) << wst.error;
  const std::string fresh = ReadFileBytes(fresh_path);
  ::unlink(fresh_path.c_str());

  const std::string golden_path = GoldenPath(golden_name);
  if (std::getenv("DUET_REGEN_GOLDEN") != nullptr) {
    WriteFileBytes(golden_path, fresh);
  }
  const std::string golden = ReadFileBytes(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path
                               << " (regenerate with DUET_REGEN_GOLDEN=1)";

  // Writer stability: today's writer reproduces the committed bytes.
  ASSERT_EQ(fresh.size(), golden.size()) << "artifact size drifted vs " << golden_name;
  EXPECT_EQ(fresh, golden) << "serialized bytes drifted vs " << golden_name;

  // Loader + round-trip stability: the golden file loads, and resaving the
  // loaded artifact reproduces it bit for bit.
  const std::shared_ptr<const artifact::ArtifactModel> loaded = LoadOk(golden_path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->backend(), backend);
  EXPECT_EQ(loaded->source_rows(), 12u);
  const std::string resaved_path = TempPath("golden_resave.duet");
  const ArtifactStatus rst = artifact::ResaveArtifact(resaved_path, *loaded);
  ASSERT_TRUE(rst.ok) << rst.error;
  EXPECT_EQ(ReadFileBytes(resaved_path), golden) << "resave drifted vs " << golden_name;
  ::unlink(resaved_path.c_str());

  // And the loaded model still serves the in-memory model's exact bits.
  const std::vector<Query> queries = MakeQueries(table, 16, 5);
  const std::vector<double> expected = model.EstimateSelectivityBatch(queries);
  const std::vector<double> actual = loaded->EstimateSelectivityBatch(queries);
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(actual[i], expected[i]);
}

TEST(ArtifactGoldenTest, DenseFormatStable) {
  CheckGoldenStability(tensor::WeightBackend::kDenseF32, "artifact_dense_v1.duet");
}

TEST(ArtifactGoldenTest, CsrFormatStable) {
  CheckGoldenStability(tensor::WeightBackend::kCsrF32, "artifact_csr_v1.duet");
}

}  // namespace
}  // namespace duet
