// Tests for the Sec. IV-C importance-sampling extension of the virtual
// tuple sampler and the Sec. IV-A long-tail fine-tuning flow.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/duet_model.h"
#include "core/finetune.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "gtest/gtest.h"
#include "query/estimator.h"
#include "query/workload.h"

namespace duet::core {
namespace {

query::Workload SingleValueHistory(int col, double value, query::PredOp op,
                                   int copies) {
  query::Workload wl;
  for (int i = 0; i < copies; ++i) {
    query::LabeledQuery lq;
    lq.query.predicates.push_back({col, op, value});
    lq.cardinality = 1;
    wl.push_back(lq);
  }
  return wl;
}

TEST(ValueWeightsTest, CountsPredicateValuesPerColumn) {
  data::Table t = data::CensusLike(500, 42);
  query::Workload history = SingleValueHistory(0, 1.0, query::PredOp::kEq, 10);
  const auto weights = ValueWeightsFromWorkload(t, history, /*smoothing=*/0.5);
  ASSERT_EQ(weights.size(), static_cast<size_t>(t.num_columns()));
  const data::Column& col = t.column(0);
  const int32_t code = std::clamp(col.LowerBound(1.0), 0, col.ndv() - 1);
  // The referenced code accumulated all 10 hits; every other code has only
  // the smoothing mass.
  EXPECT_DOUBLE_EQ(weights[0][static_cast<size_t>(code)], 10.5);
  for (int32_t v = 0; v < col.ndv(); ++v) {
    if (v != code) {
      EXPECT_DOUBLE_EQ(weights[0][static_cast<size_t>(v)], 0.5);
    }
  }
}

TEST(ValueWeightsTest, SamplerSkewsTowardHistoricalValues) {
  // One uniform column with 16 values; history hits only value 3. With <=
  // predicates anchored at high codes, the feasible range usually contains
  // code 3, and the importance sampler should pick it far more often than
  // 1/16 of the time.
  const int32_t ndv = 16;
  const int64_t rows = 2000;
  Rng rng(7);
  std::vector<double> distinct;
  for (int32_t v = 0; v < ndv; ++v) distinct.push_back(v);
  std::vector<int32_t> codes(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    codes[static_cast<size_t>(r)] = static_cast<int32_t>(rng.UniformInt(ndv));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(codes), distinct));
  data::Table t("one", std::move(cols));

  SamplerOptions opt;
  opt.expand = 1;
  opt.wildcard_prob = 0.0;
  opt.parallel = false;
  opt.value_weights = {std::vector<double>(static_cast<size_t>(ndv), 0.01)};
  opt.value_weights[0][3] = 100.0;
  VirtualTupleSampler sampler(t, opt);

  std::vector<int64_t> anchors(256);
  std::iota(anchors.begin(), anchors.end(), 0);
  const VirtualBatch batch = sampler.Sample(anchors, 123);
  int64_t hits = 0, preds = 0;
  for (int64_t r = 0; r < batch.batch; ++r) {
    if (batch.op_at(r, 0) < 0) continue;
    ++preds;
    if (batch.code_at(r, 0) == 3) ++hits;
  }
  ASSERT_GT(preds, 100);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(preds), 0.4)
      << "importance sampling should concentrate on the historical value";
}

TEST(ValueWeightsTest, SampledPredicatesStillSatisfiedByAnchor) {
  // Importance sampling must preserve Algorithm 1's invariant: the anchor
  // tuple satisfies every sampled predicate.
  data::Table t = data::CensusLike(800, 42);
  query::WorkloadSpec wspec;
  wspec.num_queries = 60;
  wspec.seed = 21;
  const query::Workload history = query::WorkloadGenerator(t, wspec).Generate();

  SamplerOptions opt;
  opt.expand = 2;
  opt.wildcard_prob = 0.2;
  opt.parallel = false;
  opt.op_weights = OpWeightsFromWorkload(history);
  opt.value_weights = ValueWeightsFromWorkload(t, history);
  VirtualTupleSampler sampler(t, opt);

  std::vector<int64_t> anchors(128);
  std::iota(anchors.begin(), anchors.end(), 17);
  const VirtualBatch batch = sampler.Sample(anchors, 9);
  for (int64_t r = 0; r < batch.batch; ++r) {
    for (int c = 0; c < batch.num_columns; ++c) {
      const int8_t op = batch.op_at(r, c);
      if (op < 0) continue;
      const int32_t code = batch.code_at(r, c);
      const int32_t anchor = batch.label_at(r, c);
      switch (static_cast<query::PredOp>(op)) {
        case query::PredOp::kEq: EXPECT_EQ(anchor, code); break;
        case query::PredOp::kGt: EXPECT_GT(anchor, code); break;
        case query::PredOp::kLt: EXPECT_LT(anchor, code); break;
        case query::PredOp::kGe: EXPECT_GE(anchor, code); break;
        case query::PredOp::kLe: EXPECT_LE(anchor, code); break;
      }
    }
  }
}

TEST(ValueWeightsTest, RejectsWrongShapes) {
  data::Table t = data::CensusLike(200, 42);
  SamplerOptions opt;
  opt.value_weights = {{1.0, 2.0}};  // wrong column count
  EXPECT_DEATH(VirtualTupleSampler(t, opt), "");
}

// ---------------------------------------------------------------------------
// Fine-tuning
// ---------------------------------------------------------------------------

class FineTuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = data::CensusLike(2000, 42);
    query::WorkloadSpec spec;
    spec.num_queries = 200;
    spec.seed = 1234;
    served_ = query::WorkloadGenerator(table_, spec).Generate();
  }

  /// A lightly trained model (tail not yet converged).
  DuetModel MakeModel(int epochs) {
    DuetModelOptions mopt;
    mopt.hidden_sizes = {64, 64};
    mopt.residual = true;
    DuetModel model(table_, mopt);
    TrainOptions topt;
    topt.epochs = epochs;
    topt.batch_size = 128;
    topt.lambda = 0.0f;
    DuetTrainer(model, topt).Train();
    return model;
  }

  data::Table table_;
  query::Workload served_;
};

TEST_F(FineTuneTest, CollectRespectsThresholdAndOrdering) {
  DuetModel model = MakeModel(2);
  FineTuneOptions opt;
  opt.qerror_threshold = 2.0;
  const query::Workload collected = CollectHighErrorQueries(model, served_, opt);
  const int64_t rows = table_.num_rows();
  double prev = 1e300;
  for (const query::LabeledQuery& lq : collected) {
    const double est =
        std::max(1.0, model.EstimateSelectivity(lq.query) * static_cast<double>(rows));
    const double err = query::QError(est, static_cast<double>(lq.cardinality));
    EXPECT_GT(err, opt.qerror_threshold);
    EXPECT_LE(err, prev + 1e-9) << "collected queries must be worst-first";
    prev = err;
  }
}

TEST_F(FineTuneTest, CollectCapsAtMaxQueries) {
  DuetModel model = MakeModel(1);
  FineTuneOptions opt;
  opt.qerror_threshold = 1.01;  // nearly everything qualifies
  opt.max_queries = 7;
  const query::Workload collected = CollectHighErrorQueries(model, served_, opt);
  EXPECT_LE(collected.size(), 7u);
  EXPECT_GT(collected.size(), 0u);
}

TEST_F(FineTuneTest, ImprovesCollectedTail) {
  DuetModel model = MakeModel(2);
  FineTuneOptions opt;
  opt.qerror_threshold = 2.5;
  opt.epochs = 4;
  const FineTuneReport report = FineTune(model, served_, opt);
  ASSERT_FALSE(report.collected.empty());
  EXPECT_LT(report.after_mean, report.before_mean);
  EXPECT_LE(report.after_max, report.before_max * 1.05);
}

TEST_F(FineTuneTest, NoOpWhenModelAlreadyAccurate) {
  DuetModel model = MakeModel(2);
  FineTuneOptions opt;
  opt.qerror_threshold = 1e9;  // nothing qualifies
  const FineTuneReport report = FineTune(model, served_, opt);
  EXPECT_TRUE(report.collected.empty());
  EXPECT_TRUE(report.epochs.empty());
}

}  // namespace
}  // namespace duet::core
