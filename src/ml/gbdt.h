// Gradient-boosted regression trees (histogram-based), the engine behind
// the LW-XGB baseline.
//
// The paper's introduction cites LW-XGB / LW-NN (Dutt et al., "Selectivity
// Estimation for Range Predicates using Lightweight Models", VLDB 2019) as
// the representative lightweight query-driven estimators. LW-XGB boosts
// regression trees on per-column range features to predict log-selectivity.
// This is a from-scratch reproduction of the needed subset of XGBoost:
// squared-error boosting with shrinkage, quantile-binned histogram splits,
// L2 leaf regularization, feature subsampling and early stopping.
//
// Everything is deterministic in GbdtOptions::seed.
#ifndef DUET_ML_GBDT_H_
#define DUET_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"

namespace duet::ml {

/// Dense row-major feature matrix.
struct Matrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<float> data;  // rows * cols

  float at(int64_t r, int64_t c) const {
    return data[static_cast<size_t>(r * cols + c)];
  }
  /// Pointer to the first feature of row r.
  const float* row(int64_t r) const { return data.data() + r * cols; }
};

/// Boosting configuration (defaults follow common XGBoost practice).
struct GbdtOptions {
  int num_trees = 100;
  int max_depth = 6;
  float learning_rate = 0.1f;
  /// Minimum number of training rows in a leaf.
  int64_t min_samples_leaf = 4;
  /// Number of quantile histogram bins per feature.
  int num_bins = 32;
  /// Fraction of features considered at each split (1 = all).
  double feature_fraction = 1.0;
  /// L2 regularization on leaf values (XGBoost's lambda).
  float l2_reg = 1.0f;
  /// Stop adding trees once the training RMSE improvement over the last
  /// `early_stopping_rounds` trees falls below `early_stopping_tol`
  /// (0 rounds disables).
  int early_stopping_rounds = 0;
  double early_stopping_tol = 1e-7;
  uint64_t seed = 42;
};

/// A single regression tree stored as flat arrays (negative child index
/// marks a leaf; leaf payloads live in `values`).
struct Tree {
  struct Node {
    int feature = -1;       // split feature; -1 for leaf
    float threshold = 0.0f; // go left if x[feature] <= threshold
    int left = -1;          // child indices; leaves use value_index
    int right = -1;
    int value_index = -1;   // into values for leaves
  };
  std::vector<Node> nodes;
  std::vector<float> values;

  float Predict(const float* row) const;
  int num_leaves() const { return static_cast<int>(values.size()); }
};

/// Gradient-boosted regression ensemble with squared loss.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(GbdtOptions options = {});

  /// Fits on x (rows x cols) with targets y (size rows). Retraining resets
  /// the ensemble.
  void Fit(const Matrix& x, const std::vector<float>& y);

  /// Prediction for one feature row (x must have num_features() floats).
  float Predict(const float* row) const;

  /// Batch prediction.
  std::vector<float> PredictBatch(const Matrix& x) const;

  /// Training RMSE after each boosting round (for convergence tests).
  const std::vector<double>& train_rmse_history() const { return rmse_history_; }

  int num_trees() const { return static_cast<int>(trees_.size()); }
  int64_t num_features() const { return num_features_; }
  const GbdtOptions& options() const { return options_; }

  /// Total split-gain credited to each feature (a simple importance score).
  const std::vector<double>& feature_gain() const { return feature_gain_; }

  /// Serialized size in MiB (paper Table II reports model sizes).
  double SizeMB() const;

  void Save(BinaryWriter& w) const;
  void Load(BinaryReader& r);

 private:
  GbdtOptions options_;
  int64_t num_features_ = 0;
  float base_score_ = 0.0f;
  std::vector<Tree> trees_;
  std::vector<double> rmse_history_;
  std::vector<double> feature_gain_;
};

}  // namespace duet::ml

#endif  // DUET_ML_GBDT_H_
