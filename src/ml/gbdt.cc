#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace duet::ml {

namespace {

/// Per-feature quantile bin edges computed once from the training matrix.
/// Bin b holds values in (edges[b-1], edges[b]]; the split threshold between
/// bins b and b+1 is edges[b].
struct BinPlan {
  std::vector<std::vector<float>> edges;  // per feature, ascending, size <= num_bins-1
  std::vector<std::vector<uint16_t>> codes;  // per feature, per row bin index

  int NumBins(int64_t f) const {
    return static_cast<int>(edges[static_cast<size_t>(f)].size()) + 1;
  }
};

BinPlan BuildBins(const Matrix& x, int num_bins) {
  BinPlan plan;
  plan.edges.resize(static_cast<size_t>(x.cols));
  plan.codes.resize(static_cast<size_t>(x.cols));
  std::vector<float> vals(static_cast<size_t>(x.rows));
  for (int64_t f = 0; f < x.cols; ++f) {
    for (int64_t r = 0; r < x.rows; ++r) vals[static_cast<size_t>(r)] = x.at(r, f);
    std::vector<float> sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<float>& e = plan.edges[static_cast<size_t>(f)];
    if (static_cast<int>(sorted.size()) <= num_bins) {
      // Few distinct values: one bin per value, split between neighbours.
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        e.push_back(0.5f * (sorted[i] + sorted[i + 1]));
      }
    } else {
      for (int b = 1; b < num_bins; ++b) {
        const size_t idx = sorted.size() * static_cast<size_t>(b) / static_cast<size_t>(num_bins);
        const float edge = sorted[std::min(idx, sorted.size() - 1)];
        if (e.empty() || edge > e.back()) e.push_back(edge);
      }
    }
    // Encode rows.
    std::vector<uint16_t>& codes = plan.codes[static_cast<size_t>(f)];
    codes.resize(static_cast<size_t>(x.rows));
    for (int64_t r = 0; r < x.rows; ++r) {
      const float v = x.at(r, f);
      const auto it = std::lower_bound(e.begin(), e.end(), v);
      codes[static_cast<size_t>(r)] = static_cast<uint16_t>(it - e.begin());
    }
  }
  return plan;
}

/// Gain of a candidate child under XGBoost's squared-loss criterion.
double LeafGain(double sum_g, double count, float l2) {
  return sum_g * sum_g / (count + static_cast<double>(l2));
}

struct SplitDecision {
  int feature = -1;
  int bin = -1;  // split between bin and bin+1 (threshold = edges[bin])
  double gain = 0.0;
};

}  // namespace

float Tree::Predict(const float* row) const {
  DUET_CHECK(!nodes.empty());
  int idx = 0;
  while (nodes[static_cast<size_t>(idx)].feature >= 0) {
    const Node& nd = nodes[static_cast<size_t>(idx)];
    idx = row[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return values[static_cast<size_t>(nodes[static_cast<size_t>(idx)].value_index)];
}

GbdtRegressor::GbdtRegressor(GbdtOptions options) : options_(options) {
  DUET_CHECK_GT(options_.num_trees, 0);
  DUET_CHECK_GT(options_.max_depth, 0);
  DUET_CHECK_GE(options_.num_bins, 2);
  DUET_CHECK_GT(options_.feature_fraction, 0.0);
  DUET_CHECK_LE(options_.feature_fraction, 1.0);
}

void GbdtRegressor::Fit(const Matrix& x, const std::vector<float>& y) {
  DUET_CHECK_EQ(static_cast<int64_t>(y.size()), x.rows);
  DUET_CHECK_GT(x.rows, 0);
  trees_.clear();
  rmse_history_.clear();
  num_features_ = x.cols;
  feature_gain_.assign(static_cast<size_t>(x.cols), 0.0);

  // Base score = target mean (one-leaf "tree zero").
  double mean = 0.0;
  for (float v : y) mean += v;
  base_score_ = static_cast<float>(mean / static_cast<double>(x.rows));

  const BinPlan bins = BuildBins(x, options_.num_bins);
  Rng rng(options_.seed);

  std::vector<float> pred(y.size(), base_score_);
  std::vector<float> residual(y.size());
  // Node assignment of every row while growing one tree.
  std::vector<int> row_node(y.size());

  const int64_t feat_per_split = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(options_.feature_fraction *
                                           static_cast<double>(x.cols))));

  for (int t = 0; t < options_.num_trees; ++t) {
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];

    Tree tree;
    tree.nodes.push_back({});
    std::fill(row_node.begin(), row_node.end(), 0);
    // Frontier of expandable nodes at the current depth.
    std::vector<int> frontier = {0};

    for (int depth = 0; depth < options_.max_depth && !frontier.empty(); ++depth) {
      // Histograms: per frontier node, per candidate feature, per bin.
      std::vector<int64_t> feats(static_cast<size_t>(x.cols));
      std::iota(feats.begin(), feats.end(), 0);
      if (feat_per_split < x.cols) {
        for (int64_t i = 0; i < feat_per_split; ++i) {
          const int64_t j =
              i + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(x.cols - i)));
          std::swap(feats[static_cast<size_t>(i)], feats[static_cast<size_t>(j)]);
        }
        feats.resize(static_cast<size_t>(feat_per_split));
      }

      // node -> index into the frontier (or -1).
      std::vector<int> node_slot(tree.nodes.size(), -1);
      for (size_t s = 0; s < frontier.size(); ++s) node_slot[static_cast<size_t>(frontier[s])] = static_cast<int>(s);

      const size_t num_slots = frontier.size();
      std::vector<double> node_sum(num_slots, 0.0);
      std::vector<int64_t> node_count(num_slots, 0);
      for (int64_t r = 0; r < x.rows; ++r) {
        const int slot = node_slot[static_cast<size_t>(row_node[static_cast<size_t>(r)])];
        if (slot < 0) continue;
        node_sum[static_cast<size_t>(slot)] += residual[static_cast<size_t>(r)];
        node_count[static_cast<size_t>(slot)]++;
      }

      std::vector<SplitDecision> best(num_slots);
      for (int64_t f : feats) {
        const int nb = bins.NumBins(f);
        if (nb < 2) continue;
        // Per-slot histograms over this feature.
        std::vector<double> hist_sum(num_slots * static_cast<size_t>(nb), 0.0);
        std::vector<int64_t> hist_cnt(num_slots * static_cast<size_t>(nb), 0);
        const std::vector<uint16_t>& codes = bins.codes[static_cast<size_t>(f)];
        for (int64_t r = 0; r < x.rows; ++r) {
          const int slot = node_slot[static_cast<size_t>(row_node[static_cast<size_t>(r)])];
          if (slot < 0) continue;
          const size_t cell = static_cast<size_t>(slot) * static_cast<size_t>(nb) + codes[static_cast<size_t>(r)];
          hist_sum[cell] += residual[static_cast<size_t>(r)];
          hist_cnt[cell]++;
        }
        for (size_t s = 0; s < num_slots; ++s) {
          const double total_gain_base =
              LeafGain(node_sum[s], static_cast<double>(node_count[s]), options_.l2_reg);
          double left_sum = 0.0;
          int64_t left_cnt = 0;
          for (int b = 0; b + 1 < nb; ++b) {
            const size_t cell = s * static_cast<size_t>(nb) + static_cast<size_t>(b);
            left_sum += hist_sum[cell];
            left_cnt += hist_cnt[cell];
            const int64_t right_cnt = node_count[s] - left_cnt;
            if (left_cnt < options_.min_samples_leaf || right_cnt < options_.min_samples_leaf) {
              continue;
            }
            const double right_sum = node_sum[s] - left_sum;
            const double gain = LeafGain(left_sum, static_cast<double>(left_cnt), options_.l2_reg) +
                                LeafGain(right_sum, static_cast<double>(right_cnt), options_.l2_reg) -
                                total_gain_base;
            if (gain > best[s].gain + 1e-12) {
              best[s] = {static_cast<int>(f), b, gain};
            }
          }
        }
      }

      // Apply the chosen splits; collect the next frontier.
      std::vector<int> next_frontier;
      for (size_t s = 0; s < num_slots; ++s) {
        const SplitDecision& d = best[s];
        if (d.feature < 0) continue;  // stays a leaf
        const int node_idx = frontier[s];
        const int left = static_cast<int>(tree.nodes.size());
        tree.nodes.push_back({});
        const int right = static_cast<int>(tree.nodes.size());
        tree.nodes.push_back({});
        Tree::Node& nd = tree.nodes[static_cast<size_t>(node_idx)];
        nd.feature = d.feature;
        nd.threshold = bins.edges[static_cast<size_t>(d.feature)][static_cast<size_t>(d.bin)];
        nd.left = left;
        nd.right = right;
        feature_gain_[static_cast<size_t>(d.feature)] += d.gain;
        next_frontier.push_back(left);
        next_frontier.push_back(right);
      }

      if (next_frontier.empty()) break;
      // Reassign rows to children.
      for (int64_t r = 0; r < x.rows; ++r) {
        int& node = row_node[static_cast<size_t>(r)];
        const Tree::Node& nd = tree.nodes[static_cast<size_t>(node)];
        if (nd.feature < 0) continue;
        node = x.at(r, nd.feature) <= nd.threshold ? nd.left : nd.right;
      }
      frontier = std::move(next_frontier);
    }

    // Leaf values: shrunken regularized mean of residuals per leaf.
    std::vector<double> leaf_sum(tree.nodes.size(), 0.0);
    std::vector<int64_t> leaf_cnt(tree.nodes.size(), 0);
    for (int64_t r = 0; r < x.rows; ++r) {
      // Rows in split nodes still need routing to the final leaves (the last
      // frontier may have been split in the final depth iteration).
      int node = row_node[static_cast<size_t>(r)];
      while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
        const Tree::Node& nd = tree.nodes[static_cast<size_t>(node)];
        node = x.at(r, nd.feature) <= nd.threshold ? nd.left : nd.right;
      }
      row_node[static_cast<size_t>(r)] = node;
      leaf_sum[static_cast<size_t>(node)] += residual[static_cast<size_t>(r)];
      leaf_cnt[static_cast<size_t>(node)]++;
    }
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      Tree::Node& nd = tree.nodes[i];
      if (nd.feature >= 0) continue;
      nd.value_index = static_cast<int>(tree.values.size());
      const double denom = static_cast<double>(leaf_cnt[i]) + static_cast<double>(options_.l2_reg);
      const double v = denom > 0.0 ? leaf_sum[i] / denom : 0.0;
      tree.values.push_back(options_.learning_rate * static_cast<float>(v));
    }

    // Update predictions and track RMSE.
    double se = 0.0;
    for (int64_t r = 0; r < x.rows; ++r) {
      pred[static_cast<size_t>(r)] += tree.values[static_cast<size_t>(
          tree.nodes[static_cast<size_t>(row_node[static_cast<size_t>(r)])].value_index)];
      const double e = static_cast<double>(y[static_cast<size_t>(r)]) -
                       static_cast<double>(pred[static_cast<size_t>(r)]);
      se += e * e;
    }
    trees_.push_back(std::move(tree));
    rmse_history_.push_back(std::sqrt(se / static_cast<double>(x.rows)));

    if (options_.early_stopping_rounds > 0 &&
        static_cast<int>(rmse_history_.size()) > options_.early_stopping_rounds) {
      const double before =
          rmse_history_[rmse_history_.size() - 1 - static_cast<size_t>(options_.early_stopping_rounds)];
      if (before - rmse_history_.back() < options_.early_stopping_tol) break;
    }
  }
}

float GbdtRegressor::Predict(const float* row) const {
  double acc = base_score_;
  for (const Tree& t : trees_) acc += t.Predict(row);
  return static_cast<float>(acc);
}

std::vector<float> GbdtRegressor::PredictBatch(const Matrix& x) const {
  DUET_CHECK_EQ(x.cols, num_features_);
  std::vector<float> out(static_cast<size_t>(x.rows));
  for (int64_t r = 0; r < x.rows; ++r) out[static_cast<size_t>(r)] = Predict(x.row(r));
  return out;
}

double GbdtRegressor::SizeMB() const {
  size_t bytes = 0;
  for (const Tree& t : trees_) {
    bytes += t.nodes.size() * sizeof(Tree::Node) + t.values.size() * sizeof(float);
  }
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

void GbdtRegressor::Save(BinaryWriter& w) const {
  w.WriteU32(0x47424454);  // "GBDT"
  w.WriteI64(num_features_);
  w.WriteF32(base_score_);
  w.WriteU64(trees_.size());
  for (const Tree& t : trees_) {
    w.WriteU64(t.nodes.size());
    for (const Tree::Node& nd : t.nodes) {
      w.WriteI64(nd.feature);
      w.WriteF32(nd.threshold);
      w.WriteI64(nd.left);
      w.WriteI64(nd.right);
      w.WriteI64(nd.value_index);
    }
    w.WriteF32Vector(t.values);
  }
}

void GbdtRegressor::Load(BinaryReader& r) {
  const uint32_t magic = r.ReadU32();
  DUET_CHECK_EQ(magic, 0x47424454u) << "not a GBDT checkpoint";
  num_features_ = r.ReadI64();
  base_score_ = r.ReadF32();
  trees_.assign(r.ReadU64(), Tree{});
  for (Tree& t : trees_) {
    t.nodes.assign(r.ReadU64(), Tree::Node{});
    for (Tree::Node& nd : t.nodes) {
      nd.feature = static_cast<int>(r.ReadI64());
      nd.threshold = r.ReadF32();
      nd.left = static_cast<int>(r.ReadI64());
      nd.right = static_cast<int>(r.ReadI64());
      nd.value_index = static_cast<int>(r.ReadI64());
    }
    t.values = r.ReadF32Vector();
  }
}

}  // namespace duet::ml
