// Snapshot-artifact container format: the on-disk framing shared by the
// writer and the mmap loader (artifact/artifact.h holds the model-level
// schema; this header only knows about bytes).
//
// An artifact is one file that a frozen model snapshot loads from by
// mapping + pointer-fixup — no parse, no repack (the model-zoo cold-start
// path, docs/model_zoo.md). The container extends the checkpoint-v2
// magic/version/FNV-1a scheme (core/checkpoint.cc) from "one sealed
// payload" to "a section table of independently sealed payloads", because
// the loader needs random access: the tiny meta/plan sections are parsed
// eagerly while the large pack sections are only ever *pointed into*.
//
// Layout (all integers little-endian, offsets absolute):
//
//   header        magic, version, kind string, fingerprint, file_size,
//                 section_count, table offset, table checksum, and a
//                 header checksum over every preceding header byte
//   section table section_count x SectionEntry (32 bytes each), 64-aligned
//   sections      each 64-byte aligned; byte ranges never overlap
//
// Integrity story (what the corruption battery in tests/test_artifact.cc
// pins down): a flip in the header fails the header checksum; a flip in
// the table fails the table checksum; a flip in a section payload fails
// that section's checksum; truncation fails the stored file_size; an
// oversized/overlapping section entry fails the bounds check; wrong
// magic/version/kind fail their explicit comparisons; a zero-length or
// sub-header file is rejected before any field is trusted. Every failure
// is a clean ArtifactStatus — the loader never aborts on untrusted bytes
// (the TryLoadModuleFile rule, lifted to sections).
#ifndef DUET_ARTIFACT_FORMAT_H_
#define DUET_ARTIFACT_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace duet::artifact {

/// "Dart" — distinct from the checkpoint magic so a checkpoint handed to
/// the artifact loader (or vice versa) fails on the first four bytes.
inline constexpr uint32_t kArtifactMagic = 0x74726144;
inline constexpr uint32_t kArtifactVersion = 1;
/// Kind string for Duet direct-mode model artifacts.
inline constexpr const char* kDuetArtifactKind = "duet-direct";

/// Section boundaries (and every packed array inside a pack section) are
/// aligned to this, so mmap-ed arrays satisfy any scalar alignment and
/// stay cacheline-clean under UBSan.
inline constexpr uint64_t kArtifactAlign = 64;

/// Section payload type. A file carries exactly one kMeta and one kPlan
/// plus one kPack per linear op, but the container itself only requires
/// kinds it knows about (unknown kinds are a clean error, not a skip —
/// format evolution bumps the version).
enum class SectionKind : uint32_t {
  kMeta = 1,  ///< table schema + encoding options (streamed, parsed eagerly)
  kPlan = 2,  ///< compiled-program structure + biases (streamed, parsed eagerly)
  kPack = 3,  ///< one PackedWeights blob (raw, pointed into — never parsed)
};

/// One section-table row. Fixed 32-byte wire layout.
struct SectionEntry {
  uint32_t kind = 0;
  uint32_t flags = 0;  ///< kPack: the op's pack index; others: 0
  uint64_t offset = 0;  ///< absolute, kArtifactAlign-aligned
  uint64_t size = 0;    ///< payload bytes (before alignment padding)
  uint64_t checksum = 0;  ///< FNV-1a over the payload bytes
};
inline constexpr uint64_t kSectionEntryBytes = 32;

/// Clean-error result of artifact operations (the CheckpointStatus shape;
/// kept separate so serve/ need not depend on core/checkpoint.h).
struct ArtifactStatus {
  bool ok = true;
  std::string error;

  static ArtifactStatus Ok() { return {}; }
  static ArtifactStatus Fail(std::string message) { return {false, std::move(message)}; }
};

/// Read-only mmap of one artifact file. Movable, not copyable; unmaps on
/// destruction. A default-constructed instance is empty (data() == nullptr).
class MappedArtifact {
 public:
  MappedArtifact() = default;
  ~MappedArtifact();
  MappedArtifact(MappedArtifact&& other) noexcept;
  MappedArtifact& operator=(MappedArtifact&& other) noexcept;
  MappedArtifact(const MappedArtifact&) = delete;
  MappedArtifact& operator=(const MappedArtifact&) = delete;

  /// Maps `path` read-only (PROT_READ, MAP_PRIVATE). Zero-length and
  /// unopenable files are clean errors; on failure *this stays empty.
  ArtifactStatus Map(const std::string& path);

  const char* data() const { return data_; }
  uint64_t size() const { return size_; }

 private:
  void Reset();
  char* data_ = nullptr;
  uint64_t size_ = 0;
};

/// Parsed container view: validated header fields plus the section table.
/// Entries point into the mapped bytes the caller still owns.
struct ArtifactIndex {
  std::string kind;
  uint64_t fingerprint = 0;
  std::vector<SectionEntry> sections;
};

/// Validates the container framing of `data[0..size)` against
/// `expected_kind` and fills `out`: magic/version/kind checks, header and
/// table checksums, stored-vs-actual file size, per-entry bounds and
/// alignment, and (verify_payloads) every section's payload checksum.
/// With verify_payloads == false only kPack payload checksums are skipped —
/// streamed sections (meta/plan) are always verified, because they are fed
/// to an aborting reader and must be proven intact first.
ArtifactStatus IndexArtifact(const char* data, uint64_t size, const std::string& expected_kind,
                             bool verify_payloads, ArtifactIndex* out);

/// Writer-side accumulator: sections are appended in memory and sealed into
/// one file by Finish. Layout is fully deterministic (same sections in, same
/// bytes out) — the golden-file round-trip tests depend on that.
class ArtifactFileWriter {
 public:
  /// Appends a section; payload bytes are copied. Returns the section index.
  size_t AddSection(SectionKind kind, uint32_t flags, std::string payload);

  /// Content identity of the staged sections: an FNV-1a mix over every
  /// section's kind, flags and payload checksum. WriteArtifact folds this
  /// into the stored fingerprint so artifacts with different weight bytes
  /// get different snapshot ids (the zoo's swap detection keys on it),
  /// while structurally identical re-saves reproduce the same id.
  uint64_t ContentFingerprint() const;

  /// Assembles header + table + sections and writes the file. Arms the
  /// kCheckpointWrite fault point (a torn write leaves a prefix on disk the
  /// loader must reject cleanly). Returns a clean error on I/O failure.
  ArtifactStatus Finish(const std::string& path, const std::string& kind,
                        uint64_t fingerprint) const;

 private:
  struct Staged {
    SectionKind kind;
    uint32_t flags;
    std::string payload;
  };
  std::vector<Staged> staged_;
};

}  // namespace duet::artifact

#endif  // DUET_ARTIFACT_FORMAT_H_
