// Model-level snapshot artifacts: write a frozen DuetModel as one
// mmap-able file; load it back as an ArtifactModel that serves
// bitwise-identical estimates with zero parse/repack cost.
//
// The container framing (header, section table, checksums) lives in
// artifact/format.h. This layer defines what the sections hold for a
// direct-mode Duet model ("duet-direct"):
//
//   kMeta  table schema (column names + dictionaries), source row count,
//          encoding options — everything needed to rebuild the input
//          encoder and predicate-translation tables without the data rows
//   kPlan  the compiled InferencePlan program: backend, dims, slab layout,
//          and the op list (each linear op references its pack section by
//          index and inlines its bias — biases are tiny and the gathering
//          epilogue reads them in original column order)
//   kPack  one PackedWeights blob per linear op: a raw, 64-aligned array
//          layout the loader points PackedArray views at directly
//
// Zero-repack contract: LoadArtifact never calls PackWeights and never
// copies a weight array — every pack field is a view into the mapping
// (tensor::PackWeightsCalls() stays flat across loads; the zoo bench
// asserts it). Bitwise contract: the loaded plan re-executes the exact
// program the writer compiled (same ops, same slab layout, same kernel
// bytes), and the estimate paths replicate DuetModel's estimation code —
// including the shared core::MaskedLogSelectivity tail — so a loaded
// artifact's estimates equal the in-memory snapshot's bit for bit.
#ifndef DUET_ARTIFACT_ARTIFACT_H_
#define DUET_ARTIFACT_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "artifact/format.h"
#include "core/duet_model.h"
#include "core/encoding.h"
#include "data/table.h"
#include "nn/inference_plan.h"
#include "query/estimator.h"
#include "query/query.h"
#include "tensor/packed_weights.h"

namespace duet::artifact {

class ArtifactModel;

/// Loader knobs.
struct ArtifactLoadOptions {
  /// Verify every pack section's FNV-1a payload checksum at load (one
  /// streaming pass over the mapped bytes). Off skips only the pack
  /// payloads — header, table, meta and plan are always verified.
  bool verify_checksums = true;
};

/// Serializes `model` (its compiled plan under `backend`, plus schema and
/// encoding metadata) to `path`. The model must use the MADE backbone (the
/// Transformer has no compiled-plan form yet — clean error, nothing
/// written). Any I/O failure is a clean error; the kCheckpointWrite fault
/// point injects torn writes.
ArtifactStatus WriteArtifact(const std::string& path, const core::DuetModel& model,
                             tensor::WeightBackend backend);

/// Re-serializes an already-loaded artifact. Byte-for-byte identical to the
/// file `model` was loaded from (the writer's layout is deterministic and
/// every stored field round-trips losslessly) — the golden-file
/// format-stability tests pin this.
ArtifactStatus ResaveArtifact(const std::string& path, const ArtifactModel& model);

/// Maps and validates the artifact at `path`. On success *out owns the
/// mapping; on any failure *out is untouched (the zoo's registry state
/// never observes a half-loaded model).
ArtifactStatus LoadArtifact(const std::string& path, const ArtifactLoadOptions& options,
                            std::shared_ptr<const ArtifactModel>* out);

/// A model snapshot served directly from a mapped artifact file: schema-only
/// table (dictionaries, no rows), rebuilt input encoder, and the compiled
/// plan pointing into the mapping. Immutable and const-thread-safe like a
/// frozen DuetModel; shared as shared_ptr<const ArtifactModel> (the
/// refcount keeps the mapping alive for in-flight batches, exactly the
/// ModelSnapshot liveness rule).
class ArtifactModel {
 public:
  /// Algorithm 3 for one query; bitwise-equal to the source model's
  /// DuetModel::EstimateSelectivity under its published plan.
  double EstimateSelectivity(const query::Query& query) const;

  /// Batched estimation; mirrors DuetModel::EstimateSelectivityBatch
  /// (same chunking, same parallel thresholds, same per-row tail).
  std::vector<double> EstimateSelectivityBatch(const std::vector<query::Query>& queries) const;

  /// The estimator adapter serving dispatches run on (const-thread-safe;
  /// non-const return mirrors the CardinalityEstimator interface).
  query::CardinalityEstimator& estimator() const { return *estimator_; }

  const data::Table& table() const { return table_; }
  /// Rows in the source table the model was trained on (the schema-only
  /// table() reports 0 rows; cardinality math needs this one).
  uint64_t source_rows() const { return source_rows_; }
  const core::EncodingOptions& encoding() const { return encoding_; }
  uint64_t fingerprint() const { return fingerprint_; }
  tensor::WeightBackend backend() const { return backend_; }
  const nn::InferencePlan& plan() const { return *plan_; }
  /// Bytes of the underlying file mapping (the zoo's eviction cost).
  uint64_t mapped_bytes() const { return map_.size(); }

 private:
  friend ArtifactStatus LoadArtifact(const std::string&, const ArtifactLoadOptions&,
                                     std::shared_ptr<const ArtifactModel>*);

  ArtifactModel(MappedArtifact map, data::Table table, core::EncodingOptions encoding);

  MappedArtifact map_;
  data::Table table_;
  core::EncodingOptions encoding_;
  core::DuetInputEncoder encoder_;
  std::vector<tensor::BlockSpec> out_blocks_;
  std::shared_ptr<const nn::InferencePlan> plan_;
  uint64_t source_rows_ = 0;
  uint64_t fingerprint_ = 0;
  tensor::WeightBackend backend_ = tensor::WeightBackend::kDenseF32;
  std::unique_ptr<query::CardinalityEstimator> estimator_;
};

/// CardinalityEstimator adapter over a loaded artifact (the DuetEstimator
/// shape; backend/plan reconfiguration is a no-op — artifacts are frozen
/// at write time).
class ArtifactEstimator : public query::CardinalityEstimator {
 public:
  explicit ArtifactEstimator(const ArtifactModel& model) : model_(model) {}

  double EstimateSelectivity(const query::Query& query) override {
    return model_.EstimateSelectivity(query);
  }
  std::vector<double> EstimateSelectivityBatch(
      const std::vector<query::Query>& queries) override {
    return model_.EstimateSelectivityBatch(queries);
  }
  uint64_t PackedWeightBytes() const override { return model_.plan().bytes(); }
  uint64_t PlanBytes() const override { return model_.plan().bytes(); }
  std::string name() const override { return "DuetArtifact"; }
  double SizeMB() const override {
    return static_cast<double>(model_.mapped_bytes()) / (1024.0 * 1024.0);
  }

 private:
  const ArtifactModel& model_;
};

}  // namespace duet::artifact

#endif  // DUET_ARTIFACT_ARTIFACT_H_
