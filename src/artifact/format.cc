#include "artifact/format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/serialize.h"
#include "serve/fault_injector.h"

namespace duet::artifact {

namespace {

uint64_t AlignUp(uint64_t n) { return (n + kArtifactAlign - 1) & ~(kArtifactAlign - 1); }

}  // namespace

MappedArtifact::~MappedArtifact() { Reset(); }

MappedArtifact::MappedArtifact(MappedArtifact&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedArtifact& MappedArtifact::operator=(MappedArtifact&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedArtifact::Reset() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<size_t>(size_));
    data_ = nullptr;
    size_ = 0;
  }
}

ArtifactStatus MappedArtifact::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ArtifactStatus::Fail("cannot open artifact: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ArtifactStatus::Fail("cannot stat artifact: " + path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return ArtifactStatus::Fail("artifact is empty: " + path);
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map == MAP_FAILED) return ArtifactStatus::Fail("cannot mmap artifact: " + path);
  Reset();
  data_ = static_cast<char*>(map);
  size_ = static_cast<uint64_t>(st.st_size);
  return ArtifactStatus::Ok();
}

ArtifactStatus IndexArtifact(const char* data, uint64_t size, const std::string& expected_kind,
                             bool verify_payloads, ArtifactIndex* out) {
  if (out == nullptr) return ArtifactStatus::Fail("null index passed to IndexArtifact");
  ByteCursor c(data, static_cast<size_t>(size));
  uint32_t magic = 0;
  if (!c.ReadU32(&magic)) return ArtifactStatus::Fail("truncated artifact header");
  if (magic != kArtifactMagic) return ArtifactStatus::Fail("not a duet artifact (bad magic)");
  uint32_t version = 0;
  if (!c.ReadU32(&version)) return ArtifactStatus::Fail("truncated artifact header");
  if (version != kArtifactVersion) {
    return ArtifactStatus::Fail("unsupported artifact version " + std::to_string(version));
  }
  std::string kind;
  if (!c.ReadString(&kind)) return ArtifactStatus::Fail("truncated artifact header");
  if (kind != expected_kind) {
    return ArtifactStatus::Fail("artifact holds kind '" + kind + "', expected '" +
                                expected_kind + "'");
  }
  uint64_t fingerprint = 0, file_size = 0, table_offset = 0, table_checksum = 0;
  uint32_t section_count = 0, reserved = 0;
  if (!c.ReadU64(&fingerprint) || !c.ReadU64(&file_size) || !c.ReadU32(&section_count) ||
      !c.ReadU32(&reserved) || !c.ReadU64(&table_offset) || !c.ReadU64(&table_checksum)) {
    return ArtifactStatus::Fail("truncated artifact header");
  }
  // The header checksum covers every header byte before itself, so any flip
  // in the fields just read (including the sizes the rest of this function
  // trusts) is caught here, before they steer further parsing.
  const size_t checksummed = c.Offset();
  uint64_t header_checksum = 0;
  if (!c.ReadU64(&header_checksum)) return ArtifactStatus::Fail("truncated artifact header");
  if (Fnv1a64(data, checksummed) != header_checksum) {
    return ArtifactStatus::Fail("artifact header checksum mismatch");
  }
  if (file_size != size) {
    return ArtifactStatus::Fail("artifact truncated: header claims " +
                                std::to_string(file_size) + " bytes, file has " +
                                std::to_string(size));
  }
  const uint64_t table_bytes = static_cast<uint64_t>(section_count) * kSectionEntryBytes;
  if (table_offset % kArtifactAlign != 0 || table_offset < c.Offset() ||
      table_offset > size || table_bytes > size - table_offset) {
    return ArtifactStatus::Fail("artifact section table out of bounds");
  }
  if (Fnv1a64(data + table_offset, static_cast<size_t>(table_bytes)) != table_checksum) {
    return ArtifactStatus::Fail("artifact section table checksum mismatch");
  }

  out->kind = kind;
  out->fingerprint = fingerprint;
  out->sections.clear();
  out->sections.reserve(section_count);
  uint64_t prev_end = table_offset + table_bytes;
  for (uint32_t i = 0; i < section_count; ++i) {
    ByteCursor e(data + table_offset + i * kSectionEntryBytes,
                 static_cast<size_t>(kSectionEntryBytes));
    SectionEntry entry;
    e.ReadU32(&entry.kind);
    e.ReadU32(&entry.flags);
    e.ReadU64(&entry.offset);
    e.ReadU64(&entry.size);
    e.ReadU64(&entry.checksum);
    if (entry.kind != static_cast<uint32_t>(SectionKind::kMeta) &&
        entry.kind != static_cast<uint32_t>(SectionKind::kPlan) &&
        entry.kind != static_cast<uint32_t>(SectionKind::kPack)) {
      return ArtifactStatus::Fail("artifact section " + std::to_string(i) +
                                  " has unknown kind " + std::to_string(entry.kind));
    }
    // Bounds: the payload must lie inside the file, after the table, and
    // after the previous section (sections are written in table order, so
    // monotonicity also rules out overlaps). An oversized `size` fails the
    // subtraction-form check even when offset + size would wrap.
    if (entry.offset % kArtifactAlign != 0 || entry.offset < prev_end ||
        entry.offset > size || entry.size > size - entry.offset) {
      return ArtifactStatus::Fail("artifact section " + std::to_string(i) +
                                  " out of bounds (offset " + std::to_string(entry.offset) +
                                  ", size " + std::to_string(entry.size) + ")");
    }
    prev_end = entry.offset + entry.size;
    const bool streamed = entry.kind != static_cast<uint32_t>(SectionKind::kPack);
    if ((verify_payloads || streamed) &&
        Fnv1a64(data + entry.offset, static_cast<size_t>(entry.size)) != entry.checksum) {
      return ArtifactStatus::Fail("artifact section " + std::to_string(i) +
                                  " payload checksum mismatch");
    }
    out->sections.push_back(entry);
  }
  return ArtifactStatus::Ok();
}

size_t ArtifactFileWriter::AddSection(SectionKind kind, uint32_t flags, std::string payload) {
  staged_.push_back(Staged{kind, flags, std::move(payload)});
  return staged_.size() - 1;
}

uint64_t ArtifactFileWriter::ContentFingerprint() const {
  uint64_t h = kFnv1a64Basis;
  for (const Staged& s : staged_) {
    h = Fnv1a64Mix(h, static_cast<uint64_t>(s.kind));
    h = Fnv1a64Mix(h, s.flags);
    h = Fnv1a64Mix(h, Fnv1a64(s.payload.data(), s.payload.size()));
  }
  return h;
}

ArtifactStatus ArtifactFileWriter::Finish(const std::string& path, const std::string& kind,
                                          uint64_t fingerprint) const {
  // Fixed header length: magic + version + kind string + fingerprint +
  // file_size + section_count + reserved + table_offset + table_checksum +
  // header_checksum.
  const uint64_t header_bytes = 4 + 4 + (8 + kind.size()) + 8 + 8 + 4 + 4 + 8 + 8 + 8;
  const uint64_t table_offset = AlignUp(header_bytes);
  const uint64_t table_bytes = staged_.size() * kSectionEntryBytes;

  // Lay sections out in table order, each aligned.
  std::vector<uint64_t> offsets(staged_.size());
  uint64_t cursor = table_offset + table_bytes;
  for (size_t i = 0; i < staged_.size(); ++i) {
    cursor = AlignUp(cursor);
    offsets[i] = cursor;
    cursor += staged_[i].payload.size();
  }
  const uint64_t file_size = cursor;

  std::string table(static_cast<size_t>(table_bytes), '\0');
  {
    std::ostringstream tbuf;
    BinaryWriter tw(tbuf);
    for (size_t i = 0; i < staged_.size(); ++i) {
      tw.WriteU32(static_cast<uint32_t>(staged_[i].kind));
      tw.WriteU32(staged_[i].flags);
      tw.WriteU64(offsets[i]);
      tw.WriteU64(staged_[i].payload.size());
      tw.WriteU64(Fnv1a64(staged_[i].payload.data(), staged_[i].payload.size()));
    }
    table = tbuf.str();
  }

  std::ostringstream hbuf;
  {
    BinaryWriter w(hbuf);
    w.WriteU32(kArtifactMagic);
    w.WriteU32(kArtifactVersion);
    w.WriteString(kind);
    w.WriteU64(fingerprint);
    w.WriteU64(file_size);
    w.WriteU32(static_cast<uint32_t>(staged_.size()));
    w.WriteU32(0);  // reserved
    w.WriteU64(table_offset);
    w.WriteU64(Fnv1a64(table.data(), table.size()));
  }
  std::string header = hbuf.str();
  const uint64_t header_checksum = Fnv1a64(header.data(), header.size());
  header.append(reinterpret_cast<const char*>(&header_checksum), sizeof(header_checksum));

  std::string content;
  content.reserve(static_cast<size_t>(file_size));
  content.append(header);
  content.resize(static_cast<size_t>(table_offset), '\0');  // pad to table
  content.append(table);
  for (size_t i = 0; i < staged_.size(); ++i) {
    content.resize(static_cast<size_t>(offsets[i]), '\0');  // alignment padding
    content.append(staged_[i].payload);
  }

  // Fault point shared with checkpoints: a torn write (crash / disk full
  // mid-flush) leaves a prefix on disk; the stored file_size makes the
  // loader reject it cleanly.
  if (serve::FaultInjector::ShouldFail(serve::FaultPoint::kCheckpointWrite)) {
    content.resize(content.size() - content.size() / 3);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return ArtifactStatus::Fail("cannot open artifact for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out.good()) return ArtifactStatus::Fail("short write on artifact: " + path);
  return ArtifactStatus::Ok();
}

}  // namespace duet::artifact
