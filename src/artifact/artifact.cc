#include "artifact/artifact.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "data/column.h"

namespace duet::artifact {

using tensor::PackedArray;
using tensor::PackedWeights;
using tensor::Tensor;

namespace {

/// Mirrors the chunk bound in core/duet_model.cc (chunking never changes
/// results — rows are batch-size invariant — but the paths are kept
/// structurally identical anyway).
constexpr int64_t kMaxQueriesPerForward = 4096;

/// Pack-section fixed layout: 32-byte header (backend, reserved, in, out,
/// reserved) + kNumPackArrays (count, offset) directory entries, offsets
/// payload-relative and kArtifactAlign-aligned. The array order is the
/// canonical serialization order — stable across writers, pinned by the
/// golden files. 15 -> 17 with the int4 backend (nibbles + group_scales
/// appended); the directory grew, so the goldens were regenerated with it
/// (tests/golden/, DUET_REGEN_GOLDEN=1).
constexpr int kNumPackArrays = 17;
constexpr uint64_t kPackHeaderBytes = 32;
constexpr uint64_t kPackDirectoryBytes = kNumPackArrays * 16;

uint64_t AlignUp(uint64_t n) { return (n + kArtifactAlign - 1) & ~(kArtifactAlign - 1); }

/// Writer-side view of one pack array: element pointer + count + width.
struct PackArrayRef {
  const void* data = nullptr;
  uint64_t count = 0;
  uint64_t elem_bytes = 0;
};

/// The canonical array list for one pack (order matters — see above).
std::vector<PackArrayRef> PackArrays(const PackedWeights& w) {
  const uint64_t dense_count =
      w.backend == tensor::WeightBackend::kDenseF32
          ? static_cast<uint64_t>(w.in) * static_cast<uint64_t>(w.out)
          : 0;
  return {
      {dense_count > 0 ? w.dense_data() : nullptr, dense_count, sizeof(float)},
      {w.row_ptr.data(), w.row_ptr.size(), sizeof(int32_t)},
      {w.val_ptr.data(), w.val_ptr.size(), sizeof(int32_t)},
      {w.run_start16.data(), w.run_start16.size(), sizeof(uint16_t)},
      {w.run_len16.data(), w.run_len16.size(), sizeof(uint16_t)},
      {w.run_start32.data(), w.run_start32.size(), sizeof(int32_t)},
      {w.run_len32.data(), w.run_len32.size(), sizeof(int32_t)},
      {w.values.data(), w.values.size(), sizeof(float)},
      {w.quantized.data(), w.quantized.size(), sizeof(int8_t)},
      {w.scales.data(), w.scales.size(), sizeof(float)},
      {w.half.data(), w.half.size(), sizeof(uint16_t)},
      {w.unperm16.data(), w.unperm16.size(), sizeof(uint16_t)},
      {w.unperm32.data(), w.unperm32.size(), sizeof(int32_t)},
      {w.row_len16.data(), w.row_len16.size(), sizeof(uint16_t)},
      {w.row_len32.data(), w.row_len32.size(), sizeof(int32_t)},
      {w.nibbles.data(), w.nibbles.size(), sizeof(uint8_t)},
      {w.group_scales.data(), w.group_scales.size(), sizeof(float)},
  };
}

std::string SerializePackSection(const PackedWeights& w) {
  const std::vector<PackArrayRef> arrays = PackArrays(w);
  // Lay out the arrays first so the directory can be written in one pass.
  std::vector<uint64_t> offsets(arrays.size(), 0);
  uint64_t cursor = AlignUp(kPackHeaderBytes + kPackDirectoryBytes);
  for (size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].count == 0) continue;
    cursor = AlignUp(cursor);
    offsets[i] = cursor;
    cursor += arrays[i].count * arrays[i].elem_bytes;
  }

  std::ostringstream head;
  {
    BinaryWriter hw(head);
    hw.WriteU32(static_cast<uint32_t>(w.backend));
    hw.WriteU32(0);
    hw.WriteU64(static_cast<uint64_t>(w.in));
    hw.WriteU64(static_cast<uint64_t>(w.out));
    hw.WriteU64(0);
    for (size_t i = 0; i < arrays.size(); ++i) {
      hw.WriteU64(arrays[i].count);
      hw.WriteU64(offsets[i]);
    }
  }
  std::string payload = head.str();
  payload.reserve(static_cast<size_t>(cursor));
  for (size_t i = 0; i < arrays.size(); ++i) {
    if (arrays[i].count == 0) continue;
    payload.resize(static_cast<size_t>(offsets[i]), '\0');  // alignment padding
    payload.append(static_cast<const char*>(arrays[i].data),
                   static_cast<size_t>(arrays[i].count * arrays[i].elem_bytes));
  }
  return payload;
}

/// Everything the writer needs, independent of whether the source is a live
/// DuetModel or an already-loaded ArtifactModel — both serialize through
/// this one function, which is what makes the golden round-trip bit-exact.
struct WriteParts {
  std::string table_name;
  uint64_t source_rows = 0;
  std::vector<std::pair<std::string, std::vector<double>>> columns;
  core::EncodingOptions encoding;
  tensor::WeightBackend backend = tensor::WeightBackend::kDenseF32;
  const nn::InferencePlan* plan = nullptr;
  uint64_t fingerprint = 0;
  /// False (WriteArtifact): `fingerprint` is the structural base and the
  /// section content hash is folded in, so different weight bytes get
  /// different snapshot ids. True (ResaveArtifact): `fingerprint` is the
  /// already-final stored value — re-deriving it would break the
  /// byte-for-byte resave guarantee the golden tests pin.
  bool fingerprint_is_final = false;
};

ArtifactStatus SerializeParts(const WriteParts& p, const std::string& path) {
  ArtifactFileWriter writer;

  std::ostringstream meta;
  {
    BinaryWriter mw(meta);
    mw.WriteString(p.table_name);
    mw.WriteU64(p.source_rows);
    mw.WriteU32(static_cast<uint32_t>(p.columns.size()));
    for (const auto& [name, distinct] : p.columns) {
      mw.WriteString(name);
      mw.WriteU64(distinct.size());
      for (double v : distinct) mw.WriteF64(v);
    }
    mw.WriteU32(static_cast<uint32_t>(p.encoding.one_hot_max_ndv));
    mw.WriteU32(static_cast<uint32_t>(p.encoding.large_encoding));
    mw.WriteI64(p.encoding.embedding_dim);
    mw.WriteU64(p.encoding.seed);
    mw.WriteU32(static_cast<uint32_t>(p.backend));
  }
  writer.AddSection(SectionKind::kMeta, 0, meta.str());

  std::ostringstream plan_buf;
  uint32_t pack_index = 0;
  {
    BinaryWriter pw(plan_buf);
    pw.WriteU32(static_cast<uint32_t>(p.plan->backend()));
    pw.WriteI64(p.plan->input_dim());
    pw.WriteI64(p.plan->output_dim());
    pw.WriteU32(static_cast<uint32_t>(p.plan->num_slabs()));
    pw.WriteI64(p.plan->slab_width());
    pw.WriteU32(static_cast<uint32_t>(p.plan->ops().size()));
    for (const nn::PackedOp& op : p.plan->ops()) {
      pw.WriteU32(static_cast<uint32_t>(op.kind));
      pw.WriteI64(op.src);
      pw.WriteI64(op.src2);
      pw.WriteI64(op.dst);
      pw.WriteI64(op.in);
      pw.WriteI64(op.out);
      pw.WriteU32(static_cast<uint32_t>(op.act));
      if (op.kind == nn::PackedOp::Kind::kLinear) {
        pw.WriteI64(static_cast<int64_t>(pack_index++));
        std::vector<float> bias(op.bias.data(), op.bias.data() + op.bias.numel());
        pw.WriteF32Vector(bias);
      } else {
        pw.WriteI64(-1);
      }
    }
  }
  writer.AddSection(SectionKind::kPlan, 0, plan_buf.str());

  uint32_t idx = 0;
  for (const nn::PackedOp& op : p.plan->ops()) {
    if (op.kind != nn::PackedOp::Kind::kLinear) continue;
    writer.AddSection(SectionKind::kPack, idx++, SerializePackSection(*op.weights));
  }

  const uint64_t fingerprint =
      p.fingerprint_is_final ? p.fingerprint
                             : Fnv1a64Mix(writer.ContentFingerprint(), p.fingerprint);
  return writer.Finish(path, kDuetArtifactKind, fingerprint);
}

/// Loader-side pack assembly: points PackedArray views at the mapped
/// section and validates the structure the kernels rely on, so a
/// checksummed-but-inconsistent file degrades to a clean error instead of
/// an out-of-bounds sweep.
ArtifactStatus BuildPack(const char* base, const SectionEntry& sec,
                         std::shared_ptr<PackedWeights>* out) {
  if (sec.size < kPackHeaderBytes + kPackDirectoryBytes) {
    return ArtifactStatus::Fail("pack section too small");
  }
  const char* pay = base + sec.offset;
  ByteCursor c(pay, static_cast<size_t>(sec.size));
  uint32_t backend_raw = 0, reserved32 = 0;
  uint64_t in = 0, outw = 0, reserved64 = 0;
  c.ReadU32(&backend_raw);
  c.ReadU32(&reserved32);
  c.ReadU64(&in);
  c.ReadU64(&outw);
  c.ReadU64(&reserved64);
  (void)reserved32;
  (void)reserved64;
  if (backend_raw > static_cast<uint32_t>(tensor::WeightBackend::kInt4)) {
    return ArtifactStatus::Fail("pack section has unknown backend");
  }
  if (in == 0 || outw == 0 || in > (1ull << 32) || outw > (1ull << 32)) {
    return ArtifactStatus::Fail("pack section has implausible dimensions");
  }
  uint64_t counts[kNumPackArrays];
  uint64_t offsets[kNumPackArrays];
  for (int i = 0; i < kNumPackArrays; ++i) {
    c.ReadU64(&counts[i]);
    c.ReadU64(&offsets[i]);
  }
  static constexpr uint64_t kElemBytes[kNumPackArrays] = {4, 4, 4, 2, 2, 4, 4, 4, 1,
                                                          4, 2, 2, 4, 2, 4, 1, 4};
  for (int i = 0; i < kNumPackArrays; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t bytes = counts[i] * kElemBytes[i];
    if (offsets[i] % kArtifactAlign != 0 ||
        offsets[i] < kPackHeaderBytes + kPackDirectoryBytes || offsets[i] > sec.size ||
        bytes > sec.size - offsets[i]) {
      return ArtifactStatus::Fail("pack array out of bounds");
    }
  }
  auto view = [&](int i, auto* tag) {
    using T = std::remove_pointer_t<decltype(tag)>;
    return counts[i] == 0
               ? PackedArray<T>()
               : PackedArray<T>::View(reinterpret_cast<const T*>(pay + offsets[i]),
                                      static_cast<size_t>(counts[i]));
  };

  auto w = std::make_shared<PackedWeights>();
  w->backend = static_cast<tensor::WeightBackend>(backend_raw);
  w->in = static_cast<int64_t>(in);
  w->out = static_cast<int64_t>(outw);
  w->dense_view = view(0, static_cast<float*>(nullptr));
  w->row_ptr = view(1, static_cast<int32_t*>(nullptr));
  w->val_ptr = view(2, static_cast<int32_t*>(nullptr));
  w->run_start16 = view(3, static_cast<uint16_t*>(nullptr));
  w->run_len16 = view(4, static_cast<uint16_t*>(nullptr));
  w->run_start32 = view(5, static_cast<int32_t*>(nullptr));
  w->run_len32 = view(6, static_cast<int32_t*>(nullptr));
  w->values = view(7, static_cast<float*>(nullptr));
  w->quantized = view(8, static_cast<int8_t*>(nullptr));
  w->scales = view(9, static_cast<float*>(nullptr));
  w->half = view(10, static_cast<uint16_t*>(nullptr));
  w->unperm16 = view(11, static_cast<uint16_t*>(nullptr));
  w->unperm32 = view(12, static_cast<int32_t*>(nullptr));
  w->row_len16 = view(13, static_cast<uint16_t*>(nullptr));
  w->row_len32 = view(14, static_cast<int32_t*>(nullptr));
  w->nibbles = view(15, static_cast<uint8_t*>(nullptr));
  w->group_scales = view(16, static_cast<float*>(nullptr));

  // Structural validation against the kernel contracts (a single pass, far
  // cheaper than the checksums already computed over the same bytes).
  const PackedWeights& v = *w;  // const access: PackedArray views only read
  const int64_t win = v.in, wout = v.out;
  auto fail = [](const char* msg) { return ArtifactStatus::Fail(msg); };
  if (!v.unperm16.empty() && !v.unperm32.empty()) return fail("pack has both unperm widths");
  if (!v.unperm16.empty() && static_cast<int64_t>(v.unperm16.size()) != wout) {
    return fail("pack unperm16 size mismatch");
  }
  if (!v.unperm32.empty() && static_cast<int64_t>(v.unperm32.size()) != wout) {
    return fail("pack unperm32 size mismatch");
  }
  for (uint16_t u : v.unperm16) {
    if (u >= wout) return fail("pack unperm16 entry out of range");
  }
  for (int32_t u : v.unperm32) {
    if (u < 0 || u >= wout) return fail("pack unperm32 entry out of range");
  }
  if (!v.row_len16.empty() && static_cast<int64_t>(v.row_len16.size()) != win) {
    return fail("pack row_len16 size mismatch");
  }
  if (!v.row_len32.empty() && static_cast<int64_t>(v.row_len32.size()) != win) {
    return fail("pack row_len32 size mismatch");
  }
  for (uint16_t l : v.row_len16) {
    if (l > wout) return fail("pack row_len16 entry out of range");
  }
  for (int32_t l : v.row_len32) {
    if (l < 0 || l > wout) return fail("pack row_len32 entry out of range");
  }
  switch (v.backend) {
    case tensor::WeightBackend::kDenseF32:
      if (static_cast<int64_t>(v.dense_view.size()) != win * wout) {
        return fail("dense pack payload size mismatch");
      }
      break;
    case tensor::WeightBackend::kCsrF32: {
      if (static_cast<int64_t>(v.row_ptr.size()) != win + 1 ||
          static_cast<int64_t>(v.val_ptr.size()) != win + 1) {
        return fail("csr pack row/val pointer size mismatch");
      }
      const bool narrow = !v.run_start16.empty() || v.run_start32.empty();
      const int64_t runs = narrow ? static_cast<int64_t>(v.run_start16.size())
                                  : static_cast<int64_t>(v.run_start32.size());
      const int64_t lens = narrow ? static_cast<int64_t>(v.run_len16.size())
                                  : static_cast<int64_t>(v.run_len32.size());
      if (runs != lens) return fail("csr pack run arrays disagree");
      if (v.row_ptr[0] != 0 || v.val_ptr[0] != 0) return fail("csr pack pointers not zero-based");
      if (v.row_ptr.back() != runs) return fail("csr pack row_ptr end mismatch");
      if (v.val_ptr.back() != static_cast<int32_t>(v.values.size())) {
        return fail("csr pack val_ptr end mismatch");
      }
      int64_t value_cursor = 0;
      for (int64_t k = 0; k < win; ++k) {
        const int32_t r0 = v.row_ptr[static_cast<size_t>(k)];
        const int32_t r1 = v.row_ptr[static_cast<size_t>(k) + 1];
        if (r0 > r1 || r1 > runs) return fail("csr pack row_ptr not monotone");
        if (v.val_ptr[static_cast<size_t>(k)] != value_cursor) {
          return fail("csr pack val_ptr inconsistent");
        }
        for (int32_t r = r0; r < r1; ++r) {
          const int64_t start = narrow ? v.run_start16[static_cast<size_t>(r)]
                                       : v.run_start32[static_cast<size_t>(r)];
          const int64_t len = narrow ? v.run_len16[static_cast<size_t>(r)]
                                     : v.run_len32[static_cast<size_t>(r)];
          if (start < 0 || len < 0 || start + len > wout) return fail("csr pack run out of range");
          value_cursor += len;
        }
      }
      if (value_cursor != static_cast<int64_t>(v.values.size())) {
        return fail("csr pack value count mismatch");
      }
      break;
    }
    case tensor::WeightBackend::kInt8:
      if (static_cast<int64_t>(v.quantized.size()) != win * wout ||
          static_cast<int64_t>(v.scales.size()) != wout) {
        return fail("int8 pack payload size mismatch");
      }
      break;
    case tensor::WeightBackend::kF16:
      if (static_cast<int64_t>(v.half.size()) != win * wout) {
        return fail("f16 pack payload size mismatch");
      }
      break;
    case tensor::WeightBackend::kInt4: {
      const int64_t groups =
          (win + tensor::kInt4GroupSize - 1) / tensor::kInt4GroupSize;
      if (static_cast<int64_t>(v.nibbles.size()) != win * ((wout + 1) / 2) ||
          static_cast<int64_t>(v.group_scales.size()) != groups * wout) {
        return fail("int4 pack payload size mismatch");
      }
      break;
    }
  }
  *out = std::move(w);
  return ArtifactStatus::Ok();
}

}  // namespace

ArtifactStatus WriteArtifact(const std::string& path, const core::DuetModel& model,
                             tensor::WeightBackend backend) {
  const std::shared_ptr<const nn::InferencePlan> plan = model.backbone().Compile(backend);
  if (plan == nullptr) {
    return ArtifactStatus::Fail(
        "model backbone has no compiled-plan form (Transformer backbones cannot be "
        "serialized as artifacts yet)");
  }
  WriteParts parts;
  const data::Table& table = model.table();
  parts.table_name = table.name();
  parts.source_rows = static_cast<uint64_t>(table.num_rows());
  parts.columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    parts.columns.emplace_back(table.column(c).name(), table.column(c).distinct());
  }
  parts.encoding = model.options().encoding;
  parts.backend = backend;
  parts.plan = plan.get();
  parts.fingerprint = core::ModuleFingerprint(model);
  return SerializeParts(parts, path);
}

ArtifactStatus ResaveArtifact(const std::string& path, const ArtifactModel& model) {
  WriteParts parts;
  const data::Table& table = model.table();
  parts.table_name = table.name();
  parts.source_rows = model.source_rows();
  parts.columns.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    parts.columns.emplace_back(table.column(c).name(), table.column(c).distinct());
  }
  parts.encoding = model.encoding();
  parts.backend = model.backend();
  parts.plan = &model.plan();
  parts.fingerprint = model.fingerprint();
  parts.fingerprint_is_final = true;
  return SerializeParts(parts, path);
}

ArtifactStatus LoadArtifact(const std::string& path, const ArtifactLoadOptions& options,
                            std::shared_ptr<const ArtifactModel>* out) {
  if (out == nullptr) return ArtifactStatus::Fail("null output passed to LoadArtifact");
  MappedArtifact map;
  ArtifactStatus st = map.Map(path);
  if (!st.ok) return st;
  ArtifactIndex index;
  st = IndexArtifact(map.data(), map.size(), kDuetArtifactKind, options.verify_checksums,
                     &index);
  if (!st.ok) {
    st.error += " (" + path + ")";
    return st;
  }

  const SectionEntry* meta_sec = nullptr;
  const SectionEntry* plan_sec = nullptr;
  std::vector<const SectionEntry*> pack_secs;
  for (const SectionEntry& s : index.sections) {
    switch (static_cast<SectionKind>(s.kind)) {
      case SectionKind::kMeta:
        if (meta_sec != nullptr) return ArtifactStatus::Fail("duplicate meta section: " + path);
        meta_sec = &s;
        break;
      case SectionKind::kPlan:
        if (plan_sec != nullptr) return ArtifactStatus::Fail("duplicate plan section: " + path);
        plan_sec = &s;
        break;
      case SectionKind::kPack:
        pack_secs.push_back(&s);
        break;
    }
  }
  if (meta_sec == nullptr || plan_sec == nullptr) {
    return ArtifactStatus::Fail("artifact missing meta or plan section: " + path);
  }
  // Pack sections are referenced by index (entry.flags); require the table
  // order to already be 0..n-1 — the writer emits them that way.
  for (size_t i = 0; i < pack_secs.size(); ++i) {
    if (pack_secs[i]->flags != i) {
      return ArtifactStatus::Fail("pack sections out of order: " + path);
    }
  }

  // Meta: checksummed above (streamed sections are always verified), so the
  // aborting BinaryReader can only see exactly what the writer produced.
  std::string table_name;
  uint64_t source_rows = 0;
  std::vector<data::Column> columns;
  core::EncodingOptions encoding;
  tensor::WeightBackend backend;
  {
    std::istringstream in(std::string(map.data() + meta_sec->offset,
                                      static_cast<size_t>(meta_sec->size)));
    BinaryReader r(in);
    table_name = r.ReadString();
    source_rows = r.ReadU64();
    const uint32_t num_columns = r.ReadU32();
    if (num_columns == 0 || num_columns > (1u << 20)) {
      return ArtifactStatus::Fail("artifact meta has implausible column count: " + path);
    }
    columns.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      std::string name = r.ReadString();
      const uint64_t ndv = r.ReadU64();
      if (ndv == 0 || ndv > (1ull << 31)) {
        return ArtifactStatus::Fail("artifact meta column has implausible NDV: " + path);
      }
      std::vector<double> distinct(static_cast<size_t>(ndv));
      for (uint64_t i = 0; i < ndv; ++i) distinct[static_cast<size_t>(i)] = r.ReadF64();
      columns.push_back(data::Column::FromCodes(std::move(name), {}, std::move(distinct)));
    }
    encoding.one_hot_max_ndv = static_cast<int32_t>(r.ReadU32());
    encoding.large_encoding = static_cast<core::ValueEncoding>(r.ReadU32());
    encoding.embedding_dim = r.ReadI64();
    encoding.seed = r.ReadU64();
    backend = static_cast<tensor::WeightBackend>(r.ReadU32());
    if (backend > tensor::WeightBackend::kInt4) {
      return ArtifactStatus::Fail("artifact meta has unknown backend: " + path);
    }
  }

  // Plan program (also pre-checksummed).
  std::vector<nn::PackedOp> ops;
  int num_slabs = 0;
  int64_t slab_width = 0, input_dim = 0, output_dim = 0;
  {
    std::istringstream in(std::string(map.data() + plan_sec->offset,
                                      static_cast<size_t>(plan_sec->size)));
    BinaryReader r(in);
    const auto plan_backend = static_cast<tensor::WeightBackend>(r.ReadU32());
    if (plan_backend != backend) {
      return ArtifactStatus::Fail("artifact plan/meta backend mismatch: " + path);
    }
    input_dim = r.ReadI64();
    output_dim = r.ReadI64();
    num_slabs = static_cast<int>(r.ReadU32());
    slab_width = r.ReadI64();
    const uint32_t num_ops = r.ReadU32();
    if (input_dim <= 0 || output_dim <= 0 || num_slabs < 0 || num_slabs > (1 << 16) ||
        slab_width < 0 || num_ops == 0 || num_ops > (1u << 20)) {
      return ArtifactStatus::Fail("artifact plan header implausible: " + path);
    }
    ops.reserve(num_ops);
    size_t next_pack = 0;
    for (uint32_t i = 0; i < num_ops; ++i) {
      nn::PackedOp op;
      const uint32_t kind_raw = r.ReadU32();
      if (kind_raw > static_cast<uint32_t>(nn::PackedOp::Kind::kAdd)) {
        return ArtifactStatus::Fail("artifact plan op has unknown kind: " + path);
      }
      op.kind = static_cast<nn::PackedOp::Kind>(kind_raw);
      op.src = static_cast<int>(r.ReadI64());
      op.src2 = static_cast<int>(r.ReadI64());
      op.dst = static_cast<int>(r.ReadI64());
      op.in = r.ReadI64();
      op.out = r.ReadI64();
      const uint32_t act_raw = r.ReadU32();
      if (act_raw > static_cast<uint32_t>(tensor::Activation::kTanh)) {
        return ArtifactStatus::Fail("artifact plan op has unknown activation: " + path);
      }
      op.act = static_cast<tensor::Activation>(act_raw);
      const int64_t pack_index = r.ReadI64();
      // Slab-id validation mirrors InferencePlan::FromParts, as clean errors.
      const auto slab_ok = [num_slabs](int id) {
        return id >= nn::InferencePlan::kOutputSlab && id < num_slabs;
      };
      if (!slab_ok(op.src) || !slab_ok(op.dst) ||
          (op.kind == nn::PackedOp::Kind::kAdd && !slab_ok(op.src2))) {
        return ArtifactStatus::Fail("artifact plan op references invalid slab: " + path);
      }
      // Widths mirror the FromParts CHECKs exactly so a structurally bad
      // (but checksum-valid) file fails here cleanly instead of aborting.
      if (op.in <= 0 || op.out <= 0 ||
          op.in > (op.src == nn::InferencePlan::kInputSlab ? input_dim : slab_width) ||
          op.out > std::max(output_dim, slab_width)) {
        return ArtifactStatus::Fail("artifact plan op width out of range: " + path);
      }
      if (op.kind == nn::PackedOp::Kind::kLinear) {
        if (pack_index != static_cast<int64_t>(next_pack)) {
          return ArtifactStatus::Fail("artifact plan pack indices out of order: " + path);
        }
        if (next_pack >= pack_secs.size()) {
          return ArtifactStatus::Fail("artifact plan references missing pack section: " + path);
        }
        std::shared_ptr<PackedWeights> pack;
        const ArtifactStatus ps = BuildPack(map.data(), *pack_secs[next_pack], &pack);
        if (!ps.ok) return ArtifactStatus::Fail(ps.error + " (pack " +
                                                std::to_string(next_pack) + ", " + path + ")");
        if (pack->backend != backend || pack->in != op.in || pack->out != op.out) {
          return ArtifactStatus::Fail("artifact pack/op shape mismatch: " + path);
        }
        std::vector<float> bias = r.ReadF32Vector();
        if (static_cast<int64_t>(bias.size()) != op.out) {
          return ArtifactStatus::Fail("artifact plan op bias size mismatch: " + path);
        }
        op.bias = Tensor::FromVector({op.out}, std::move(bias));
        op.weights = std::move(pack);
        op.weights_shared = false;
        ++next_pack;
      } else if (pack_index != -1) {
        return ArtifactStatus::Fail("artifact plan non-linear op carries a pack: " + path);
      }
      ops.push_back(std::move(op));
    }
    if (next_pack != pack_secs.size()) {
      return ArtifactStatus::Fail("artifact has unreferenced pack sections: " + path);
    }
  }

  data::Table table(table_name, std::move(columns));
  auto model = std::shared_ptr<ArtifactModel>(
      new ArtifactModel(std::move(map), std::move(table), encoding));
  if (model->encoder_.total_width() != input_dim) {
    return ArtifactStatus::Fail("artifact encoder width disagrees with plan input: " + path);
  }
  int64_t blocks_width = 0;
  for (const tensor::BlockSpec& b : model->out_blocks_) blocks_width += b.len;
  if (blocks_width != output_dim) {
    return ArtifactStatus::Fail("artifact output blocks disagree with plan output: " + path);
  }
  model->plan_ = nn::InferencePlan::FromParts(std::move(ops), num_slabs, slab_width,
                                              input_dim, output_dim, backend);
  model->source_rows_ = source_rows;
  model->fingerprint_ = index.fingerprint;
  model->backend_ = backend;
  model->estimator_ = std::make_unique<ArtifactEstimator>(*model);
  *out = std::move(model);
  return ArtifactStatus::Ok();
}

ArtifactModel::ArtifactModel(MappedArtifact map, data::Table table,
                             core::EncodingOptions encoding)
    : map_(std::move(map)),
      table_(std::move(table)),
      encoding_(encoding),
      encoder_(table_, encoding_) {
  int64_t offset = 0;
  out_blocks_.reserve(static_cast<size_t>(table_.num_columns()));
  for (int c = 0; c < table_.num_columns(); ++c) {
    const int64_t ndv = table_.column(c).ndv();
    out_blocks_.push_back({offset, ndv});
    offset += ndv;
  }
}

double ArtifactModel::EstimateSelectivity(const query::Query& query) const {
  // Structurally the same three phases as DuetModel::EstimateSelectivity,
  // minus the phase timers; the plan executes the identical program.
  tensor::NoGradScope no_grad;
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({1, d});
  encoder_.EncodeQueryRow(table_, query, x.data());
  const std::vector<query::CodeRange> ranges = query.PerColumnRanges(table_);
  for (const query::CodeRange& r : ranges) {
    if (r.empty()) return 0.0;  // contradictory predicates select nothing
  }
  const Tensor logits = plan_->Execute(x);
  double log_sel = 0.0;
  core::MaskedLogSelectivity(logits.data(), out_blocks_, ranges, table_.num_columns(),
                             &log_sel);
  return std::exp(log_sel);
}

std::vector<double> ArtifactModel::EstimateSelectivityBatch(
    const std::vector<query::Query>& queries) const {
  tensor::NoGradScope no_grad;
  if (queries.empty()) return {};
  const int64_t total = static_cast<int64_t>(queries.size());
  const int64_t d = encoder_.total_width();
  const int64_t out_dim = plan_->output_dim();
  const int num_columns = table_.num_columns();
  std::vector<double> sels(static_cast<size_t>(total));

  for (int64_t begin = 0; begin < total; begin += kMaxQueriesPerForward) {
    const int64_t b = std::min(kMaxQueriesPerForward, total - begin);
    const query::Query* chunk = queries.data() + begin;

    Tensor x = Tensor::Zeros({b, d});
    std::vector<std::vector<query::CodeRange>> all_ranges(static_cast<size_t>(b));
    ParallelForChunked(
        0, b,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            encoder_.EncodeQueryRow(table_, chunk[r], x.data() + r * d);
            all_ranges[static_cast<size_t>(r)] = chunk[r].PerColumnRanges(table_);
          }
        },
        /*parallel=*/b >= 64, /*grain=*/16);

    const Tensor logits = plan_->Execute(x);

    const float* logit_base = logits.data();
    double* sel_base = sels.data() + begin;
    ParallelForChunked(
        0, b,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            double log_sel = 0.0;
            const bool ok = core::MaskedLogSelectivity(logit_base + r * out_dim, out_blocks_,
                                                       all_ranges[static_cast<size_t>(r)],
                                                       num_columns, &log_sel);
            sel_base[r] = ok ? std::exp(log_sel) : 0.0;
          }
        },
        /*parallel=*/b >= 64, /*grain=*/16);
  }
  return sels;
}

}  // namespace duet::artifact
