#include "core/encoding.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace duet::core {

int64_t BinaryWidth(int32_t ndv) {
  DUET_CHECK_GT(ndv, 0);
  int64_t bits = 1;
  while ((int64_t{1} << bits) < ndv) ++bits;
  return bits;
}

ColumnValueEncoder::ColumnValueEncoder(const data::Table& table,
                                       const EncodingOptions& options) {
  Rng rng(options.seed);
  for (int c = 0; c < table.num_columns(); ++c) {
    const int32_t ndv = table.column(c).ndv();
    ndvs_.push_back(ndv);
    ValueEncoding kind =
        ndv <= options.one_hot_max_ndv ? ValueEncoding::kOneHot : options.large_encoding;
    kinds_.push_back(kind);
    switch (kind) {
      case ValueEncoding::kOneHot:
        widths_.push_back(ndv);
        codebooks_.emplace_back();
        break;
      case ValueEncoding::kBinary:
        widths_.push_back(BinaryWidth(ndv));
        codebooks_.emplace_back();
        break;
      case ValueEncoding::kEmbedding: {
        widths_.push_back(options.embedding_dim);
        std::vector<float> book(static_cast<size_t>(ndv * options.embedding_dim));
        for (auto& v : book) v = static_cast<float>(rng.Gaussian()) * 0.5f;
        codebooks_.push_back(std::move(book));
        break;
      }
    }
  }
}

void ColumnValueEncoder::EncodeValue(int col, int32_t code, float* dst) const {
  const size_t ci = static_cast<size_t>(col);
  DUET_CHECK_GE(code, 0);
  DUET_CHECK_LT(code, ndvs_[ci]);
  switch (kinds_[ci]) {
    case ValueEncoding::kOneHot:
      dst[code] = 1.0f;
      break;
    case ValueEncoding::kBinary: {
      const int64_t w = widths_[ci];
      for (int64_t b = 0; b < w; ++b) {
        dst[b] = static_cast<float>((static_cast<uint32_t>(code) >> b) & 1u);
      }
      break;
    }
    case ValueEncoding::kEmbedding: {
      const int64_t w = widths_[ci];
      const float* row = codebooks_[ci].data() + static_cast<int64_t>(code) * w;
      for (int64_t b = 0; b < w; ++b) dst[b] = row[b];
      break;
    }
  }
}

tensor::Tensor ColumnValueEncoder::CodeMatrix(int col) const {
  const size_t ci = static_cast<size_t>(col);
  const int32_t ndv = ndvs_[ci];
  const int64_t w = widths_[ci];
  tensor::Tensor m = tensor::Tensor::Zeros({ndv, w});
  float* p = m.data();
  for (int32_t c = 0; c < ndv; ++c) EncodeValue(col, c, p + static_cast<int64_t>(c) * w);
  return m;
}

DuetInputEncoder::DuetInputEncoder(const data::Table& table, const EncodingOptions& options)
    : values_(table, options) {
  for (int c = 0; c < table.num_columns(); ++c) {
    offsets_.push_back(total_width_);
    total_width_ += block_width(c);
  }
}

int64_t DuetInputEncoder::block_width(int col) const {
  return values_.value_width(col) + query::kNumPredOps;
}

std::vector<int64_t> DuetInputEncoder::BlockWidths() const {
  std::vector<int64_t> widths;
  for (int c = 0; c < values_.num_columns(); ++c) widths.push_back(block_width(c));
  return widths;
}

void DuetInputEncoder::EncodePredicate(int col, query::PredOp op, int32_t code,
                                       float* dst) const {
  values_.EncodeValue(col, code, dst);
  dst[values_.value_width(col) + static_cast<int32_t>(op)] = 1.0f;
}

void DuetInputEncoder::EncodeWildcard(int /*col*/, float* /*dst*/) const {
  // All-zero block: no op bit set <=> no predicate (paper Sec. IV-C).
}

void DuetInputEncoder::EncodeQueryRow(const data::Table& table, const query::Query& query,
                                      float* dst) const {
  std::vector<int> count(static_cast<size_t>(table.num_columns()), 0);
  for (const query::Predicate& p : query.predicates) count[static_cast<size_t>(p.col)]++;
  std::vector<bool> done(static_cast<size_t>(table.num_columns()), false);
  std::vector<query::CodeRange> ranges;  // lazily computed for condensation
  for (const query::Predicate& p : query.predicates) {
    const size_t ci = static_cast<size_t>(p.col);
    if (done[ci]) continue;
    done[ci] = true;
    const data::Column& col = table.column(p.col);
    if (count[ci] == 1) {
      // The predicate value maps to its boundary code; exact containment is
      // enforced by the zero-out mask, the input only conditions the net.
      int32_t code = std::clamp(col.LowerBound(p.value), 0, col.ndv() - 1);
      EncodePredicate(p.col, p.op, code, dst + block_offset(p.col));
      continue;
    }
    if (ranges.empty()) ranges = query.PerColumnRanges(table);
    const query::CodeRange& r = ranges[ci];
    if (r.empty()) continue;  // estimator returns 0 before the forward pass
    const int32_t lo = std::clamp(r.lo, 0, col.ndv() - 1);
    const query::PredOp op = r.size() == 1 ? query::PredOp::kEq : query::PredOp::kGe;
    EncodePredicate(p.col, op, lo, dst + block_offset(p.col));
  }
}

void DuetInputEncoder::EncodeQueryBatch(const data::Table& table,
                                        const std::vector<query::Query>& queries,
                                        float* dst) const {
  const int64_t b = static_cast<int64_t>(queries.size());
  const int64_t d = total_width_;
  ParallelForChunked(
      0, b,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          EncodeQueryRow(table, queries[static_cast<size_t>(r)], dst + r * d);
        }
      },
      /*parallel=*/b >= 64, /*grain=*/16);
}

NaruInputEncoder::NaruInputEncoder(const data::Table& table, const EncodingOptions& options)
    : values_(table, options) {
  for (int c = 0; c < table.num_columns(); ++c) {
    offsets_.push_back(total_width_);
    total_width_ += block_width(c);
  }
}

int64_t NaruInputEncoder::block_width(int col) const {
  return 1 + values_.value_width(col);
}

std::vector<int64_t> NaruInputEncoder::BlockWidths() const {
  std::vector<int64_t> widths;
  for (int c = 0; c < values_.num_columns(); ++c) widths.push_back(block_width(c));
  return widths;
}

void NaruInputEncoder::EncodeValue(int col, int32_t code, float* dst) const {
  dst[0] = 1.0f;  // present flag (wildcard-skipping marker)
  values_.EncodeValue(col, code, dst + 1);
}

tensor::Tensor NaruInputEncoder::BlockCodeMatrix(int col) const {
  const int32_t ndv = values_.ndv(col);
  const int64_t w = block_width(col);
  tensor::Tensor m = tensor::Tensor::Zeros({ndv, w});
  float* p = m.data();
  for (int32_t c = 0; c < ndv; ++c) EncodeValue(col, c, p + static_cast<int64_t>(c) * w);
  return m;
}

}  // namespace duet::core
