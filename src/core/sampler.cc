#include "core/sampler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace duet::core {

std::vector<double> OpWeightsFromWorkload(const query::Workload& workload, double smoothing) {
  std::vector<double> weights(query::kNumPredOps, smoothing);
  for (const query::LabeledQuery& lq : workload) {
    for (const query::Predicate& p : lq.query.predicates) {
      weights[static_cast<size_t>(p.op)] += 1.0;
    }
  }
  double total = 0.0;
  for (double w : weights) total += w;
  for (double& w : weights) w /= total;
  return weights;
}

std::vector<std::vector<double>> ValueWeightsFromWorkload(const data::Table& table,
                                                           const query::Workload& workload,
                                                           double smoothing) {
  std::vector<std::vector<double>> weights(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    weights[static_cast<size_t>(c)].assign(
        static_cast<size_t>(table.column(c).ndv()), smoothing);
  }
  for (const query::LabeledQuery& lq : workload) {
    for (const query::Predicate& p : lq.query.predicates) {
      const data::Column& col = table.column(p.col);
      const int32_t code = std::clamp(col.LowerBound(p.value), 0, col.ndv() - 1);
      weights[static_cast<size_t>(p.col)][static_cast<size_t>(code)] += 1.0;
    }
  }
  return weights;
}

VirtualTupleSampler::VirtualTupleSampler(const data::Table& table, SamplerOptions options)
    : table_(table), options_(std::move(options)) {
  DUET_CHECK_GE(options_.expand, 1);
  DUET_CHECK_GE(options_.wildcard_prob, 0.0);
  DUET_CHECK_LT(options_.wildcard_prob, 1.0);
  if (!options_.op_weights.empty()) {
    DUET_CHECK_EQ(options_.op_weights.size(), static_cast<size_t>(query::kNumPredOps));
    double total = 0.0;
    for (double w : options_.op_weights) {
      DUET_CHECK_GE(w, 0.0);
      total += w;
    }
    DUET_CHECK_GT(total, 0.0);
  }
  if (!options_.value_weights.empty()) {
    DUET_CHECK_EQ(options_.value_weights.size(), static_cast<size_t>(table.num_columns()));
    value_prefix_.resize(options_.value_weights.size());
    for (size_t c = 0; c < options_.value_weights.size(); ++c) {
      const std::vector<double>& w = options_.value_weights[c];
      DUET_CHECK_EQ(w.size(), static_cast<size_t>(table.column(static_cast<int>(c)).ndv()));
      std::vector<double>& prefix = value_prefix_[c];
      prefix.resize(w.size());
      double acc = 0.0;
      for (size_t v = 0; v < w.size(); ++v) {
        DUET_CHECK_GE(w[v], 0.0);
        acc += w[v];
        prefix[v] = acc;
      }
      DUET_CHECK_GT(acc, 0.0) << "column " << c << " has zero total value weight";
    }
  }
}

int32_t VirtualTupleSampler::DrawCode(int col, int32_t lo, int32_t hi, Rng& rng) const {
  if (value_prefix_.empty()) {
    return lo + static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }
  const std::vector<double>& prefix = value_prefix_[static_cast<size_t>(col)];
  const double below = lo > 0 ? prefix[static_cast<size_t>(lo - 1)] : 0.0;
  const double mass = prefix[static_cast<size_t>(hi)] - below;
  if (mass <= 0.0) {
    return lo + static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }
  const double u = below + rng.UniformDouble() * mass;
  const auto it = std::lower_bound(prefix.begin() + lo, prefix.begin() + hi + 1, u);
  return static_cast<int32_t>(it - prefix.begin());
}

VirtualBatch VirtualTupleSampler::Sample(const std::vector<int64_t>& anchor_rows,
                                         uint64_t seed) const {
  DUET_CHECK(!anchor_rows.empty());
  const int64_t bs = static_cast<int64_t>(anchor_rows.size());
  const int64_t expanded = bs * options_.expand;
  const int n = table_.num_columns();

  VirtualBatch out;
  out.batch = expanded;
  out.num_columns = n;
  out.pred_codes.assign(static_cast<size_t>(expanded * n), -1);
  out.pred_ops.assign(static_cast<size_t>(expanded * n), -1);
  out.labels.resize(static_cast<size_t>(expanded * n));

  // Labels: anchor codes, replicated mu times (replica-major layout).
  for (int64_t j = 0; j < options_.expand; ++j) {
    for (int64_t t = 0; t < bs; ++t) {
      const int64_t r = j * bs + t;
      for (int c = 0; c < n; ++c) {
        out.labels[static_cast<size_t>(r * n + c)] =
            table_.code(anchor_rows[static_cast<size_t>(t)], c);
      }
    }
  }

  // Each column samples independently with a derived seed (thread-safe and
  // deterministic regardless of scheduling).
  ParallelFor(
      0, n,
      [&](int64_t col) {
        SampleColumn(anchor_rows, static_cast<int>(col),
                     seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(col + 1)), &out);
      },
      options_.parallel && n > 1, /*grain=*/1);
  return out;
}

void VirtualTupleSampler::SampleColumn(const std::vector<int64_t>& anchor_rows, int col,
                                       uint64_t seed, VirtualBatch* out) const {
  Rng rng(seed);
  const int64_t bs = static_cast<int64_t>(anchor_rows.size());
  const int n = out->num_columns;
  const int32_t ndv = table_.column(col).ndv();
  constexpr int kOps = query::kNumPredOps;

  for (int64_t j = 0; j < options_.expand; ++j) {
    // Fresh operator-to-slice assignment per replica ("randomly assign
    // predicates for slices without repetition", Algorithm 1 line 7). With
    // importance weights, slice sizes are proportional to each operator's
    // historical frequency instead of equal fifths.
    const std::vector<uint32_t> op_perm = rng.Permutation(kOps);
    int64_t boundaries[kOps + 1];
    boundaries[0] = 0;
    if (options_.op_weights.empty()) {
      for (int k = 1; k <= kOps; ++k) boundaries[k] = k * bs / kOps;
    } else {
      double total = 0.0;
      for (double w : options_.op_weights) total += w;
      double cum = 0.0;
      for (int k = 1; k <= kOps; ++k) {
        cum += options_.op_weights[op_perm[static_cast<size_t>(k - 1)]];
        boundaries[k] = static_cast<int64_t>(cum / total * static_cast<double>(bs) + 0.5);
      }
      boundaries[kOps] = bs;
    }
    for (int64_t t = 0; t < bs; ++t) {
      const int64_t r = j * bs + t;
      const size_t idx = static_cast<size_t>(r * n + col);
      if (options_.wildcard_prob > 0.0 && rng.Bernoulli(options_.wildcard_prob)) {
        continue;  // wildcard slot: code/op stay -1
      }
      int slice = kOps - 1;
      for (int k = 0; k < kOps; ++k) {
        if (t < boundaries[k + 1]) {
          slice = k;
          break;
        }
      }
      const auto op = static_cast<query::PredOp>(op_perm[static_cast<size_t>(slice)]);
      const int32_t anchor = out->labels[idx];
      int32_t lo = 0, hi = -1;  // inclusive code bounds for the predicate value
      switch (op) {
        case query::PredOp::kEq:
          lo = hi = anchor;
          break;
        case query::PredOp::kGt:  // col > v, anchor satisfies iff v < anchor
          lo = 0;
          hi = anchor - 1;
          break;
        case query::PredOp::kLt:  // col < v, anchor satisfies iff v > anchor
          lo = anchor + 1;
          hi = ndv - 1;
          break;
        case query::PredOp::kGe:  // col >= v, v <= anchor
          lo = 0;
          hi = anchor;
          break;
        case query::PredOp::kLe:  // col <= v, v >= anchor
          lo = anchor;
          hi = ndv - 1;
          break;
      }
      if (lo > hi) continue;  // infeasible range -> wildcard (mask bookkeeping)
      const int32_t code = DrawCode(col, lo, hi, rng);
      out->pred_codes[idx] = code;
      out->pred_ops[idx] = static_cast<int8_t>(op);
    }
  }
}

}  // namespace duet::core
