#include "core/checkpoint.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/serialize.h"
#include "serve/fault_injector.h"
#include "tensor/tensor.h"

namespace duet::core {

namespace {

constexpr uint32_t kMagic = 0x44554554;  // "DUET"
// v1 had no payload size/checksum; a torn write produced a file that
// aborted the loader mid-stream. v2 seals the payload so corruption is a
// readable error instead.
constexpr uint32_t kVersion = 2;

CheckpointStatus Fail(std::string message) {
  CheckpointStatus st;
  st.ok = false;
  st.error = std::move(message);
  return st;
}

}  // namespace

uint64_t ModuleFingerprint(const nn::Module& module) {
  uint64_t h = kFnv1a64Basis;
  h = Fnv1a64Mix(h, static_cast<uint64_t>(module.parameters().size()));
  for (const tensor::Tensor& p : module.parameters()) {
    h = Fnv1a64Mix(h, static_cast<uint64_t>(p.ndim()));
    for (int64_t d : p.shape()) h = Fnv1a64Mix(h, static_cast<uint64_t>(d));
  }
  return h;
}

void SaveModuleFile(const std::string& path, const std::string& kind,
                    const nn::Module& module) {
  // Serialize the payload to memory first: the header carries its size and
  // checksum, and a crash mid-save can then at worst produce a file the
  // loader rejects cleanly (never one it half-applies).
  std::ostringstream payload_buf;
  {
    BinaryWriter pw(payload_buf);
    module.Save(pw);
  }
  const std::string payload = payload_buf.str();

  std::ostringstream file_buf;
  {
    BinaryWriter w(file_buf);
    w.WriteU32(kMagic);
    w.WriteU32(kVersion);
    w.WriteString(kind);
    w.WriteU64(ModuleFingerprint(module));
    w.WriteU64(static_cast<uint64_t>(payload.size()));
    w.WriteU64(Fnv1a64(payload.data(), payload.size()));
    file_buf.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  std::string content = file_buf.str();

  // Fault point: a torn write (process killed / disk full mid-flush) leaves
  // a prefix of the file on disk. The loader must reject it cleanly.
  if (serve::FaultInjector::ShouldFail(serve::FaultPoint::kCheckpointWrite)) {
    content.resize(content.size() - content.size() / 3);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DUET_CHECK(out.good()) << "cannot open checkpoint for writing: " << path;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  DUET_CHECK(out.good()) << "short write on checkpoint: " << path;
}

CheckpointStatus TryLoadModuleFile(const std::string& path, const std::string& kind,
                                   nn::Module* module) {
  if (module == nullptr) return Fail("null module passed to TryLoadModuleFile");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Fail("cannot open checkpoint: " + path);
  std::ostringstream raw;
  raw << in.rdbuf();
  if (in.bad()) return Fail("cannot open checkpoint: " + path);
  const std::string bytes = raw.str();

  ByteCursor c(bytes.data(), bytes.size());
  uint32_t magic = 0;
  if (!c.ReadU32(&magic)) return Fail("truncated checkpoint header: " + path);
  if (magic != kMagic) return Fail("not a duet checkpoint: " + path);
  uint32_t version = 0;
  if (!c.ReadU32(&version)) return Fail("truncated checkpoint header: " + path);
  if (version != kVersion) return Fail("unsupported checkpoint version in " + path);
  std::string file_kind;
  if (!c.ReadString(&file_kind)) return Fail("truncated checkpoint header: " + path);
  if (file_kind != kind) {
    return Fail("checkpoint holds a '" + file_kind + "' model, expected '" + kind +
                "': " + path);
  }
  uint64_t fingerprint = 0;
  uint64_t payload_size = 0;
  uint64_t payload_checksum = 0;
  if (!c.ReadU64(&fingerprint) || !c.ReadU64(&payload_size) ||
      !c.ReadU64(&payload_checksum)) {
    return Fail("truncated checkpoint header: " + path);
  }
  if (fingerprint != ModuleFingerprint(*module)) {
    return Fail("architecture fingerprint mismatch for " + path +
                " (the checkpoint was produced by a differently shaped model)");
  }
  if (c.Remaining() != payload_size) {
    return Fail("truncated checkpoint payload in " + path);
  }
  // Verify integrity BEFORE any byte reaches the module: a failed load must
  // leave the previous weights serving.
  if (Fnv1a64(c.Here(), static_cast<size_t>(payload_size)) != payload_checksum) {
    return Fail("checkpoint payload checksum mismatch in " + path);
  }

  // The payload passed the checksum, so it is byte-identical to what
  // Module::Save wrote for this fingerprint; Load cannot fail structurally.
  // A restore rewrites parameter storage through raw data() pointers; the
  // RAII guard bumps tensor::ParameterVersion() when this scope exits so
  // packed-weight caches can never serve pre-restore packs (Module::Load
  // guards its own scope too — the counter is monotone, an extra bump is
  // free).
  tensor::ParameterMutationGuard mutation;
  std::istringstream payload_stream(
      std::string(c.Here(), static_cast<size_t>(payload_size)));
  BinaryReader r(payload_stream);
  module->Load(r);
  CheckpointStatus st;
  st.ok = true;
  return st;
}

void LoadModuleFile(const std::string& path, const std::string& kind, nn::Module* module) {
  DUET_CHECK(module != nullptr);
  const CheckpointStatus st = TryLoadModuleFile(path, kind, module);
  DUET_CHECK(st.ok) << st.error;
}

}  // namespace duet::core
