#include "core/checkpoint.h"

#include <fstream>

#include "common/logging.h"
#include "common/serialize.h"

namespace duet::core {

namespace {

constexpr uint32_t kMagic = 0x44554554;  // "DUET"
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  // Mix each byte of v into the running FNV-1a state.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t ModuleFingerprint(const nn::Module& module) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1a(h, static_cast<uint64_t>(module.parameters().size()));
  for (const tensor::Tensor& p : module.parameters()) {
    h = Fnv1a(h, static_cast<uint64_t>(p.ndim()));
    for (int64_t d : p.shape()) h = Fnv1a(h, static_cast<uint64_t>(d));
  }
  return h;
}

void SaveModuleFile(const std::string& path, const std::string& kind,
                    const nn::Module& module) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DUET_CHECK(out.good()) << "cannot open checkpoint for writing: " << path;
  BinaryWriter w(out);
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteString(kind);
  w.WriteU64(ModuleFingerprint(module));
  module.Save(w);
  out.flush();
  DUET_CHECK(out.good()) << "short write on checkpoint: " << path;
}

void LoadModuleFile(const std::string& path, const std::string& kind, nn::Module* module) {
  DUET_CHECK(module != nullptr);
  // A checkpoint restore rewrites parameter storage through raw data()
  // pointers; the RAII guard bumps tensor::ParameterVersion() when this
  // scope exits so packed-weight caches can never serve pre-restore packs
  // (Module::Load guards its own scope too — the counter is monotone, an
  // extra bump is free).
  tensor::ParameterMutationGuard mutation;
  std::ifstream in(path, std::ios::binary);
  DUET_CHECK(in.good()) << "cannot open checkpoint: " << path;
  BinaryReader r(in);
  const uint32_t magic = r.ReadU32();
  DUET_CHECK_EQ(magic, kMagic) << "not a duet checkpoint: " << path;
  const uint32_t version = r.ReadU32();
  DUET_CHECK_EQ(version, kVersion) << "unsupported checkpoint version in " << path;
  const std::string file_kind = r.ReadString();
  DUET_CHECK(file_kind == kind) << "checkpoint holds a '" << file_kind
                                << "' model, expected '" << kind << "': " << path;
  const uint64_t fingerprint = r.ReadU64();
  DUET_CHECK_EQ(fingerprint, ModuleFingerprint(*module))
      << "architecture fingerprint mismatch for " << path
      << " (the checkpoint was produced by a differently shaped model)";
  module->Load(r);
}

}  // namespace duet::core
