#include "core/disjunction.h"

#include <algorithm>

#include "common/logging.h"

namespace duet::core {

query::Query IntersectClauses(const std::vector<const query::Query*>& clauses) {
  query::Query out;
  for (const query::Query* clause : clauses) {
    for (const query::Predicate& p : clause->predicates) {
      out.predicates.push_back(p);
    }
  }
  return out;
}

double EstimateDisjunction(query::CardinalityEstimator& estimator,
                           const std::vector<query::Query>& clauses) {
  DUET_CHECK_GE(clauses.size(), 1u);
  DUET_CHECK_LE(clauses.size(), 20u) << "inclusion-exclusion is exponential in clauses";
  const size_t k = clauses.size();
  double total = 0.0;
  // Subsets are enumerated by bitmask; parity gives the sign.
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    std::vector<const query::Query*> subset;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(&clauses[i]);
    }
    const query::Query intersection = IntersectClauses(subset);
    const double sel = estimator.EstimateSelectivity(intersection);
    total += (subset.size() % 2 == 1 ? 1.0 : -1.0) * sel;
  }
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace duet::core
