#include "core/disjunction.h"

#include <algorithm>

#include "common/logging.h"

namespace duet::core {

query::Query IntersectClauses(const std::vector<const query::Query*>& clauses) {
  query::Query out;
  for (const query::Query* clause : clauses) {
    for (const query::Predicate& p : clause->predicates) {
      out.predicates.push_back(p);
    }
  }
  return out;
}

double EstimateDisjunction(query::CardinalityEstimator& estimator,
                           const std::vector<query::Query>& clauses) {
  DUET_CHECK_GE(clauses.size(), 1u);
  DUET_CHECK_LE(clauses.size(), 20u) << "inclusion-exclusion is exponential in clauses";
  const size_t k = clauses.size();
  // The intersection terms are independent conjunctions, so they go through
  // the batch-first API (one forward pass per chunk for a neural estimator)
  // instead of a per-term scalar loop; the batch contract guarantees
  // value-for-value agreement with the scalar path. Enumeration is chunked
  // so a 20-clause disjunction (2^20 - 1 terms) never materializes the full
  // term list at once.
  constexpr uint32_t kTermsPerBatch = 4096;
  std::vector<query::Query> terms;
  std::vector<double> signs;
  terms.reserve(std::min<size_t>((size_t{1} << k) - 1, kTermsPerBatch));
  signs.reserve(terms.capacity());
  double total = 0.0;
  const auto flush = [&] {
    const std::vector<double> sels = estimator.EstimateSelectivityBatch(terms);
    for (size_t i = 0; i < sels.size(); ++i) total += signs[i] * sels[i];
    terms.clear();
    signs.clear();
  };
  // Subsets are enumerated by bitmask; parity gives the sign.
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    std::vector<const query::Query*> subset;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(&clauses[i]);
    }
    terms.push_back(IntersectClauses(subset));
    signs.push_back(subset.size() % 2 == 1 ? 1.0 : -1.0);
    if (terms.size() == kTermsPerBatch) flush();
  }
  if (!terms.empty()) flush();
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace duet::core
