// Versioned, checksummed model checkpoints on disk.
//
// A deployed estimator (paper Sec. IV-D: "such a mechanism allows users to
// fine-tune the model based on history query workloads after it is
// deployed") needs durable model state. Checkpoints carry a magic tag, a
// format version, a model-kind string, an architecture fingerprint (hashed
// parameter shapes), and — since format v2 — the payload size and an FNV-1a
// checksum over the serialized parameters. Loading a stale, truncated or
// bit-flipped file fails loudly with a readable message instead of silently
// corrupting weights, and the checksum is verified *before* any byte
// touches the destination module, so a failed load leaves the model exactly
// as it was (resilience.md §4 covers the crash-safety contract).
#ifndef DUET_CORE_CHECKPOINT_H_
#define DUET_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "nn/module.h"

namespace duet::core {

/// Hash of a module's parameter shapes (FNV-1a over count, ndim, dims).
/// Two modules share a fingerprint iff their parameter layouts agree.
uint64_t ModuleFingerprint(const nn::Module& module);

/// Outcome of a non-aborting checkpoint load. On failure `error` holds a
/// readable reason and the destination module is guaranteed untouched.
struct CheckpointStatus {
  bool ok = false;
  std::string error;

  explicit operator bool() const { return ok; }
};

/// Writes `module`'s parameters to `path` under a validated header.
/// `kind` names the model class (e.g. "duet", "naru", "mscn").
void SaveModuleFile(const std::string& path, const std::string& kind,
                    const nn::Module& module);

/// Loads parameters saved by SaveModuleFile into an already-constructed
/// module of the same architecture. Returns a failure status — never
/// aborts, never partially applies — if the file is missing, truncated,
/// corrupt, the wrong kind, an unsupported version, or fingerprint-
/// mismatched. The payload checksum is verified before the module is
/// modified, so `*module` keeps serving its previous weights on any error.
CheckpointStatus TryLoadModuleFile(const std::string& path, const std::string& kind,
                                   nn::Module* module);

/// Aborting wrapper over TryLoadModuleFile for tools and tests that treat a
/// bad checkpoint as a fatal configuration error.
void LoadModuleFile(const std::string& path, const std::string& kind, nn::Module* module);

}  // namespace duet::core

#endif  // DUET_CORE_CHECKPOINT_H_
