// Versioned model checkpoints on disk.
//
// A deployed estimator (paper Sec. IV-D: "such a mechanism allows users to
// fine-tune the model based on history query workloads after it is
// deployed") needs durable model state. Checkpoints carry a magic tag, a
// format version, a model-kind string and an architecture fingerprint
// (hashed parameter shapes), so loading a stale or mismatched file fails
// loudly with a readable message instead of silently corrupting weights.
#ifndef DUET_CORE_CHECKPOINT_H_
#define DUET_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "nn/module.h"

namespace duet::core {

/// Hash of a module's parameter shapes (FNV-1a over count, ndim, dims).
/// Two modules share a fingerprint iff their parameter layouts agree.
uint64_t ModuleFingerprint(const nn::Module& module);

/// Writes `module`'s parameters to `path` under a validated header.
/// `kind` names the model class (e.g. "duet", "naru", "mscn").
void SaveModuleFile(const std::string& path, const std::string& kind,
                    const nn::Module& module);

/// Loads parameters saved by SaveModuleFile into an already-constructed
/// module of the same architecture. Aborts with a readable message if the
/// file is missing/corrupt, the kind differs, or the fingerprint mismatches.
void LoadModuleFile(const std::string& path, const std::string& kind, nn::Module* module);

}  // namespace duet::core

#endif  // DUET_CORE_CHECKPOINT_H_
