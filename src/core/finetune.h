// Long-tail fine-tuning (paper Sec. IV-A): "for queries with large
// estimation errors during actual use, we can collect them and perform
// targeted fine-tuning of the model to improve the long-tail distribution
// problem."
//
// The flow mirrors a deployed estimator: a served workload is scored, the
// worst-estimated queries are collected, and the model is fine-tuned with
// the hybrid loss on exactly those queries — with the collected workload
// also guiding the virtual-table importance sampler so the unsupervised
// term concentrates on the same region. Because Duet's estimator is fully
// differentiable, this needs no sampling machinery (unlike Naru/UAE).
#ifndef DUET_CORE_FINETUNE_H_
#define DUET_CORE_FINETUNE_H_

#include <cstdint>
#include <vector>

#include "core/duet_model.h"
#include "core/trainer.h"
#include "query/query.h"

namespace duet::core {

/// Fine-tuning knobs.
struct FineTuneOptions {
  /// Queries whose Q-error exceeds this are collected.
  double qerror_threshold = 5.0;
  /// At most this many worst queries are kept (worst-first).
  int max_queries = 256;
  /// Fine-tuning epochs over the collected set.
  int epochs = 3;
  int64_t batch_size = 256;
  /// Lower than training LR: targeted correction, not re-training.
  float learning_rate = 5e-4f;
  /// Query-loss weight; higher than the training default because the
  /// collected set is exactly the region the model must fix.
  float lambda = 0.5f;
  /// Virtual-table sampling knobs for the replayed unsupervised term (kept
  /// on so the model does not forget the data distribution).
  int expand = 4;
  double wildcard_prob = 0.3;
  /// Caps the anchor tuples each fine-tune epoch visits (0 = whole table;
  /// see TrainOptions::max_rows_per_epoch). Online update rounds set this
  /// so a background fine-tune's cost does not scale with the table.
  int64_t max_anchor_rows = 0;
  /// Guide the sampler with the collected queries' operator / value
  /// distributions (Sec. IV-C locality refinement).
  bool use_importance_sampling = true;
  uint64_t seed = 99;
};

/// Outcome of one fine-tuning round.
struct FineTuneReport {
  /// The collected high-error queries (with their true cardinalities).
  query::Workload collected;
  /// Mean / max Q-error on the collected set before and after tuning.
  double before_mean = 0.0;
  double before_max = 0.0;
  double after_mean = 0.0;
  double after_max = 0.0;
  /// Telemetry of the fine-tuning epochs.
  std::vector<EpochStats> epochs;
};

/// Scores `served` with the model and returns the worst-estimated queries
/// (Q-error > threshold, worst-first, capped at max_queries).
query::Workload CollectHighErrorQueries(const DuetModel& model, const query::Workload& served,
                                        const FineTuneOptions& options);

/// One collect + fine-tune round. If no query exceeds the threshold the
/// model is untouched and the report's `collected` is empty.
FineTuneReport FineTune(DuetModel& model, const query::Workload& served,
                        const FineTuneOptions& options = {});

/// Deep copy for online updates: a fresh DuetModel over the same table with
/// the same architecture options and bitwise-identical parameters (direct
/// tensor-to-tensor copy via Module::CopyParametersFrom — no serialized
/// image is materialized, so the round's transient peak is one extra model,
/// not two) but cold, unpinned inference caches. Safe to call concurrently
/// with estimation on `model` (it only reads the parameter values); the
/// clone is mutable and trainable even when `model` is a frozen snapshot.
std::unique_ptr<DuetModel> CloneModel(const DuetModel& model);

/// Median Q-error of `model` over a labeled workload (one batched forward);
/// 0 for an empty workload. The robust validation metric the online-update
/// gate compares.
double MedianQError(const DuetModel& model, const query::Workload& workload);

/// Knobs for one clone-and-tune online update round.
struct OnlineUpdateOptions {
  /// Inner fine-tuning round (collection threshold, epochs, LR, lambda...).
  FineTuneOptions finetune;
  /// Validation gate: the candidate is accepted iff its holdout median
  /// Q-error is finite and <= before * max_regression. 1.0 demands
  /// no regression at all; a small slack (e.g. 1.05) tolerates noise on
  /// tiny holdouts.
  double max_regression = 1.05;
};

/// Outcome of CloneAndFineTune. `model` always carries the tuned candidate
/// (even when rejected, for inspection); `accepted` is the publish/rollback
/// verdict of the validation gate.
struct OnlineUpdateResult {
  std::unique_ptr<DuetModel> model;
  bool accepted = false;
  /// Candidate's holdout median Q-error before / after tuning.
  double holdout_before = 0.0;
  double holdout_after = 0.0;
  /// Inner fine-tune telemetry (`collected` empty = nothing exceeded the
  /// threshold; the candidate is then identical to the base and rejected).
  FineTuneReport report;
};

/// The online-update entry point (serve::UpdateWorker's core): clones
/// `base`, fine-tunes the clone on `feedback` (observed (query, true
/// cardinality) pairs from served traffic), and validates on `holdout` —
/// pairs NOT trained on, so a poisoned or unrepresentative feedback batch
/// that degrades the model fails the gate and is rolled back instead of
/// published. `base` is never mutated and may be a frozen serving snapshot;
/// the returned candidate is mutable and unfrozen (the publisher freezes
/// it).
OnlineUpdateResult CloneAndFineTune(const DuetModel& base, const query::Workload& feedback,
                                    const query::Workload& holdout,
                                    const OnlineUpdateOptions& options = {});

}  // namespace duet::core

#endif  // DUET_CORE_FINETUNE_H_
