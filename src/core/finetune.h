// Long-tail fine-tuning (paper Sec. IV-A): "for queries with large
// estimation errors during actual use, we can collect them and perform
// targeted fine-tuning of the model to improve the long-tail distribution
// problem."
//
// The flow mirrors a deployed estimator: a served workload is scored, the
// worst-estimated queries are collected, and the model is fine-tuned with
// the hybrid loss on exactly those queries — with the collected workload
// also guiding the virtual-table importance sampler so the unsupervised
// term concentrates on the same region. Because Duet's estimator is fully
// differentiable, this needs no sampling machinery (unlike Naru/UAE).
#ifndef DUET_CORE_FINETUNE_H_
#define DUET_CORE_FINETUNE_H_

#include <cstdint>
#include <vector>

#include "core/duet_model.h"
#include "core/trainer.h"
#include "query/query.h"

namespace duet::core {

/// Fine-tuning knobs.
struct FineTuneOptions {
  /// Queries whose Q-error exceeds this are collected.
  double qerror_threshold = 5.0;
  /// At most this many worst queries are kept (worst-first).
  int max_queries = 256;
  /// Fine-tuning epochs over the collected set.
  int epochs = 3;
  int64_t batch_size = 256;
  /// Lower than training LR: targeted correction, not re-training.
  float learning_rate = 5e-4f;
  /// Query-loss weight; higher than the training default because the
  /// collected set is exactly the region the model must fix.
  float lambda = 0.5f;
  /// Virtual-table sampling knobs for the replayed unsupervised term (kept
  /// on so the model does not forget the data distribution).
  int expand = 4;
  double wildcard_prob = 0.3;
  /// Guide the sampler with the collected queries' operator / value
  /// distributions (Sec. IV-C locality refinement).
  bool use_importance_sampling = true;
  uint64_t seed = 99;
};

/// Outcome of one fine-tuning round.
struct FineTuneReport {
  /// The collected high-error queries (with their true cardinalities).
  query::Workload collected;
  /// Mean / max Q-error on the collected set before and after tuning.
  double before_mean = 0.0;
  double before_max = 0.0;
  double after_mean = 0.0;
  double after_max = 0.0;
  /// Telemetry of the fine-tuning epochs.
  std::vector<EpochStats> epochs;
};

/// Scores `served` with the model and returns the worst-estimated queries
/// (Q-error > threshold, worst-first, capped at max_queries).
query::Workload CollectHighErrorQueries(const DuetModel& model, const query::Workload& served,
                                        const FineTuneOptions& options);

/// One collect + fine-tune round. If no query exceeds the threshold the
/// model is untouched and the report's `collected` is empty.
FineTuneReport FineTune(DuetModel& model, const query::Workload& served,
                        const FineTuneOptions& options = {});

}  // namespace duet::core

#endif  // DUET_CORE_FINETUNE_H_
