// Input encodings for the autoregressive models (paper Sec. IV-C
// "Encoding" and Sec. V-A4).
//
// Duet encodes each column's predicate as [value_encoding | op_one_hot(5)];
// a column without a predicate keeps an all-zero op vector (the wildcard
// marker — any real predicate has exactly one op bit set, so zeros are
// unambiguous). Naru/UAE encode each column's *value* as
// [present_flag | value_encoding]; the flag plays the role of Naru's
// learnable MASK token for wildcard skipping.
//
// Value encodings: one-hot for small domains, binary bits for large ones
// (Naru's default), or a fixed random codebook ("embedding"; documented
// substitution — the codebook is frozen rather than trained so the hot
// input-assembly path stays a raw buffer fill).
#ifndef DUET_CORE_ENCODING_H_
#define DUET_CORE_ENCODING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "query/query.h"
#include "tensor/tensor.h"

namespace duet::core {

/// Per-column value encoding strategy.
enum class ValueEncoding : int32_t {
  kOneHot = 0,
  kBinary = 1,
  kEmbedding = 2,
};

/// Encoding policy knobs.
struct EncodingOptions {
  /// Columns with NDV <= this use one-hot; larger use `large_encoding`.
  int32_t one_hot_max_ndv = 64;
  ValueEncoding large_encoding = ValueEncoding::kBinary;
  /// Width of the fixed random codebook when kEmbedding is selected.
  int64_t embedding_dim = 16;
  /// Seed for the fixed codebooks.
  uint64_t seed = 7;
};

/// Encoder for one table; owns per-column layout and codebooks.
class ColumnValueEncoder {
 public:
  ColumnValueEncoder(const data::Table& table, const EncodingOptions& options);

  /// Width of column `col`'s value encoding.
  int64_t value_width(int col) const { return widths_[static_cast<size_t>(col)]; }

  /// Writes the value encoding of `code` into dst[0..value_width(col)).
  void EncodeValue(int col, int32_t code, float* dst) const;

  /// Constant matrix [ndv, value_width] whose row c is EncodeValue(col, c).
  /// Used by UAE's differentiable (soft one-hot) input assembly.
  tensor::Tensor CodeMatrix(int col) const;

  ValueEncoding encoding_kind(int col) const { return kinds_[static_cast<size_t>(col)]; }
  int32_t ndv(int col) const { return ndvs_[static_cast<size_t>(col)]; }
  int num_columns() const { return static_cast<int>(widths_.size()); }

 private:
  std::vector<ValueEncoding> kinds_;
  std::vector<int64_t> widths_;
  std::vector<int32_t> ndvs_;
  /// Flattened fixed codebooks for kEmbedding columns (empty otherwise).
  std::vector<std::vector<float>> codebooks_;
};

/// Duet's per-column predicate block: [value | op one-hot]; all zeros on the
/// op side marks a wildcard.
class DuetInputEncoder {
 public:
  DuetInputEncoder(const data::Table& table, const EncodingOptions& options);

  /// Input block width of column `col` (value_width + kNumPredOps).
  int64_t block_width(int col) const;
  /// Per-column block widths (feeds nn::MadeOptions::input_widths).
  std::vector<int64_t> BlockWidths() const;
  /// Total input width.
  int64_t total_width() const { return total_width_; }
  /// Offset of column `col`'s block.
  int64_t block_offset(int col) const { return offsets_[static_cast<size_t>(col)]; }

  /// Encodes one predicate (op, value code) into dst (block_width floats,
  /// pre-zeroed by the caller).
  void EncodePredicate(int col, query::PredOp op, int32_t code, float* dst) const;

  /// Wildcard: leaves dst all zeros (explicit for readability).
  void EncodeWildcard(int col, float* dst) const;

  /// Encodes a whole query into one pre-zeroed input row of total_width()
  /// floats. Single predicates encode directly; a column carrying several
  /// predicates is condensed to one representative predicate over the
  /// intersected code range — the input only *conditions* the network, exact
  /// containment is always enforced by the zero-out mask.
  void EncodeQueryRow(const data::Table& table, const query::Query& query, float* dst) const;

  /// Batched EncodeQueryRow: fills `dst` as a row-major [queries.size(),
  /// total_width()] buffer (pre-zeroed), parallelized over queries.
  void EncodeQueryBatch(const data::Table& table, const std::vector<query::Query>& queries,
                        float* dst) const;

  const ColumnValueEncoder& values() const { return values_; }

 private:
  ColumnValueEncoder values_;
  std::vector<int64_t> offsets_;
  int64_t total_width_ = 0;
};

/// Naru/UAE per-column value block: [present | value]; wildcard = all zeros.
class NaruInputEncoder {
 public:
  NaruInputEncoder(const data::Table& table, const EncodingOptions& options);

  int64_t block_width(int col) const;
  std::vector<int64_t> BlockWidths() const;
  int64_t total_width() const { return total_width_; }
  int64_t block_offset(int col) const { return offsets_[static_cast<size_t>(col)]; }

  /// Encodes a concrete value code into dst (pre-zeroed).
  void EncodeValue(int col, int32_t code, float* dst) const;

  /// Constant matrix [ndv, block_width] with row c = EncodeValue(col, c);
  /// soft one-hot weights against it build differentiable inputs (UAE).
  tensor::Tensor BlockCodeMatrix(int col) const;

  const ColumnValueEncoder& values() const { return values_; }

 private:
  ColumnValueEncoder values_;
  std::vector<int64_t> offsets_;
  int64_t total_width_ = 0;
};

/// Number of bits needed to encode codes in [0, ndv).
int64_t BinaryWidth(int32_t ndv);

}  // namespace duet::core

#endif  // DUET_CORE_ENCODING_H_
