// MPSN: Multiple Predicates Supporting Networks (paper Sec. IV-F).
//
// When a column can carry several predicates, Duet embeds the variable-
// length list of (op, value) pairs of each column into a fixed-width vector
// that becomes the column's MADE input block. Three candidate embedders are
// reproduced (paper Table I):
//   * MLP & vector sum  - order-invariant, cheapest; the paper's default;
//   * Recursive network - out_j = MLP([enc_j | out_{j-1}]);
//   * RNN (LSTM)        - per-step FC outputs summed.
// The MLP variant additionally ships the paper's "merged" acceleration: all
// per-column MLPs execute as one block-diagonal fused layer per slot
// (tensor::BlockDiagMatMul) instead of N separate calls.
#ifndef DUET_CORE_MPSN_H_
#define DUET_CORE_MPSN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/encoding.h"
#include "core/sampler.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace duet::core {

/// MPSN architecture selector.
enum class MpsnKind : int32_t {
  kMlp = 0,
  kRecursive = 1,
  kRnn = 2,
};

const char* MpsnKindName(MpsnKind kind);

/// MPSN knobs (paper: 2 hidden layers of 64 units, per-column networks).
struct MpsnOptions {
  MpsnKind kind = MpsnKind::kMlp;
  int64_t hidden = 64;
  /// Width of the per-column embedding (the MADE input block width).
  int64_t embed_dim = 32;
  /// Maximum number of predicates per column (slot count).
  int max_preds = 2;
  /// MLP only: fused block-diagonal execution of all column MLPs.
  bool merged = true;
};

/// A batch of multi-predicate virtual tuples / queries.
/// Layout: [batch, column, slot]; code/op == -1 marks an absent slot.
struct MultiPredBatch {
  int64_t batch = 0;
  int num_columns = 0;
  int max_preds = 0;
  std::vector<int32_t> codes;
  std::vector<int8_t> ops;
  std::vector<int32_t> labels;  // [batch, column]; empty at inference

  size_t SlotIndex(int64_t row, int col, int slot) const {
    return static_cast<size_t>((row * num_columns + col) * max_preds + slot);
  }

  /// Merges `slots` independent single-predicate draws into one
  /// multi-predicate batch (each draw is satisfied by the same anchors, so
  /// their conjunction is too).
  static MultiPredBatch FromVirtualBatches(const std::vector<VirtualBatch>& draws);
};

/// Interface: embed each column's predicate list into a fixed vector.
class MpsnEmbedder : public nn::Module {
 public:
  ~MpsnEmbedder() override = default;

  /// Returns [batch, num_columns * embed_dim].
  virtual tensor::Tensor Embed(const MultiPredBatch& batch,
                               const DuetInputEncoder& encoder) const = 0;

  virtual MpsnKind kind() const = 0;
};

/// Factory; `encoder` defines per-column predicate encoding widths.
std::unique_ptr<MpsnEmbedder> MakeMpsnEmbedder(const MpsnOptions& options,
                                               const DuetInputEncoder& encoder, Rng& rng);

}  // namespace duet::core

#endif  // DUET_CORE_MPSN_H_
