#include "core/mpsn_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "tensor/ops.h"

namespace duet::core {

using tensor::Tensor;

namespace {
constexpr float kSelEps = 1e-12f;
/// Queries per batched inference forward; bounds peak activation memory.
constexpr size_t kMaxQueriesPerForward = 4096;
}  // namespace

DuetMpsnModel::DuetMpsnModel(const data::Table& table, DuetMpsnOptions options)
    : table_(table), options_(std::move(options)), encoder_(table, options_.base.encoding) {
  Rng rng(options_.base.seed);
  embedder_ = MakeMpsnEmbedder(options_.mpsn, encoder_, rng);
  nn::MadeOptions made_opt;
  made_opt.input_widths.assign(static_cast<size_t>(table.num_columns()),
                               options_.mpsn.embed_dim);
  made_opt.output_widths = table.ColumnNdvs();
  made_opt.hidden_sizes = options_.base.hidden_sizes;
  made_opt.residual = options_.base.residual;
  made_ = std::make_unique<nn::Made>(made_opt, rng);
  RegisterChild(*embedder_);
  RegisterChild(*made_);
}

MultiPredBatch DuetMpsnModel::EncodeQueries(const std::vector<query::Query>& queries) const {
  MultiPredBatch batch;
  batch.batch = static_cast<int64_t>(queries.size());
  batch.num_columns = table_.num_columns();
  batch.max_preds = options_.mpsn.max_preds;
  batch.codes.assign(
      static_cast<size_t>(batch.batch * batch.num_columns * batch.max_preds), -1);
  batch.ops.assign(static_cast<size_t>(batch.batch * batch.num_columns * batch.max_preds), -1);
  for (int64_t r = 0; r < batch.batch; ++r) {
    std::vector<int> used(static_cast<size_t>(batch.num_columns), 0);
    for (const query::Predicate& p : queries[static_cast<size_t>(r)].predicates) {
      const int slot = used[static_cast<size_t>(p.col)]++;
      DUET_CHECK_LT(slot, batch.max_preds)
          << "query exceeds MPSN max_preds on column " << p.col;
      const data::Column& col = table_.column(p.col);
      int32_t code = std::clamp(col.LowerBound(p.value), 0, col.ndv() - 1);
      const size_t idx = batch.SlotIndex(r, p.col, slot);
      batch.codes[idx] = code;
      batch.ops[idx] = static_cast<int8_t>(p.op);
    }
  }
  return batch;
}

Tensor DuetMpsnModel::DataLoss(const MultiPredBatch& batch) const {
  const Tensor emb = embedder_->Embed(batch, encoder_);
  const Tensor logits = made_->Forward(emb);
  const Tensor logp = tensor::LogSoftmaxBlocks(logits, made_->output_blocks());
  return tensor::NllLossBlocks(logp, made_->output_blocks(), batch.labels);
}

Tensor DuetMpsnModel::SelectivityBatch(const std::vector<query::Query>& queries) const {
  std::vector<std::vector<query::CodeRange>> all_ranges;
  all_ranges.reserve(queries.size());
  for (const query::Query& q : queries) all_ranges.push_back(q.PerColumnRanges(table_));
  return SelectivityBatchFromRanges(queries, all_ranges);
}

Tensor DuetMpsnModel::SelectivityBatchFromRanges(
    const std::vector<query::Query>& queries,
    const std::vector<std::vector<query::CodeRange>>& all_ranges) const {
  DUET_CHECK(!queries.empty());
  const MultiPredBatch batch = EncodeQueries(queries);
  const Tensor emb = embedder_->Embed(batch, encoder_);
  const Tensor logits = made_->Forward(emb);
  const Tensor probs = tensor::SoftmaxBlocks(logits, made_->output_blocks());
  const int64_t out_dim = made_->output_dim();
  Tensor mask = Tensor::Zeros({batch.batch, out_dim});
  const auto& blocks = made_->output_blocks();
  for (int64_t r = 0; r < batch.batch; ++r) {
    const auto& ranges = all_ranges[static_cast<size_t>(r)];
    float* row = mask.data() + r * out_dim;
    for (int c = 0; c < table_.num_columns(); ++c) {
      const query::CodeRange& cr = ranges[static_cast<size_t>(c)];
      float* block = row + blocks[static_cast<size_t>(c)].offset;
      for (int32_t j = cr.lo; j < cr.hi; ++j) block[j] = 1.0f;
    }
  }
  const Tensor factors = tensor::MaskedSumBlocks(probs, mask, blocks);
  const Tensor logf = tensor::Log(tensor::ClampMin(factors, kSelEps));
  return tensor::Exp(tensor::SumCols(logf));
}

double DuetMpsnModel::EstimateSelectivity(const query::Query& query) const {
  tensor::NoGradScope no_grad;
  const auto ranges = query.PerColumnRanges(table_);
  for (const query::CodeRange& r : ranges) {
    if (r.empty()) return 0.0;
  }
  const Tensor sel = SelectivityBatch({query});
  return static_cast<double>(sel.data()[0]);
}

std::vector<double> DuetMpsnModel::EstimateSelectivityBatch(
    const std::vector<query::Query>& queries) const {
  tensor::NoGradScope no_grad;
  if (queries.empty()) return {};
  std::vector<double> sels(queries.size());
  for (size_t begin = 0; begin < queries.size(); begin += kMaxQueriesPerForward) {
    const size_t end = std::min(queries.size(), begin + kMaxQueriesPerForward);
    const std::vector<query::Query> chunk(queries.begin() + static_cast<int64_t>(begin),
                                          queries.begin() + static_cast<int64_t>(end));
    std::vector<std::vector<query::CodeRange>> all_ranges;
    all_ranges.reserve(chunk.size());
    for (const query::Query& q : chunk) all_ranges.push_back(q.PerColumnRanges(table_));
    const Tensor sel = SelectivityBatchFromRanges(chunk, all_ranges);
    const float* sp = sel.data();
    for (size_t r = 0; r < chunk.size(); ++r) {
      // Contradictory queries short-circuit to exactly 0 on the scalar path
      // (before the forward pass); mirror that here.
      bool empty = false;
      for (const query::CodeRange& cr : all_ranges[r]) empty = empty || cr.empty();
      sels[begin + r] = empty ? 0.0 : static_cast<double>(sp[r]);
    }
  }
  return sels;
}

MpsnTrainer::MpsnTrainer(DuetMpsnModel& model, TrainOptions options)
    : model_(model),
      options_(options),
      sampler_(model.table(),
               SamplerOptions{options.expand, options.wildcard_prob,
                              options.parallel_sampler, /*op_weights=*/{},
                              /*value_weights=*/{}}),
      optimizer_(model.parameters(), options.learning_rate),
      rng_(options.seed) {}

EpochStats MpsnTrainer::TrainEpoch(int epoch_index) {
  const data::Table& table = model_.table();
  const int64_t rows = table.num_rows();
  const int64_t bs = std::min<int64_t>(options_.batch_size, rows);
  const bool hybrid = options_.train_workload != nullptr && options_.lambda > 0.0f;
  const int slots = model_.options().mpsn.max_preds;

  Timer timer;
  std::vector<uint32_t> perm = rng_.Permutation(static_cast<uint32_t>(rows));
  EpochStats stats;
  stats.epoch = epoch_index;
  int64_t steps = 0, tuples = 0;

  for (int64_t begin = 0; begin + bs <= rows; begin += bs) {
    std::vector<int64_t> anchors(static_cast<size_t>(bs));
    for (int64_t i = 0; i < bs; ++i) {
      anchors[static_cast<size_t>(i)] = perm[static_cast<size_t>(begin + i)];
    }
    std::vector<VirtualBatch> draws;
    draws.reserve(static_cast<size_t>(slots));
    for (int s = 0; s < slots; ++s) draws.push_back(sampler_.Sample(anchors, rng_()));
    const MultiPredBatch mb = MultiPredBatch::FromVirtualBatches(draws);

    optimizer_.ZeroGrad();
    Tensor data_loss = model_.DataLoss(mb);
    Tensor loss = data_loss;
    double step_query_loss = 0.0;
    if (hybrid) {
      const query::Workload& wl = *options_.train_workload;
      const size_t take = std::min<size_t>(static_cast<size_t>(bs), wl.size());
      std::vector<query::Query> queries;
      std::vector<float> actual(take);
      for (size_t i = 0; i < take; ++i) {
        const query::LabeledQuery& lq = wl[(workload_cursor_ + i) % wl.size()];
        queries.push_back(lq.query);
        actual[i] = std::max<float>(1.0f, static_cast<float>(lq.cardinality));
      }
      workload_cursor_ = (workload_cursor_ + take) % wl.size();
      Tensor sel = model_.SelectivityBatch(queries);
      Tensor est =
          tensor::ClampMin(tensor::MulScalar(sel, static_cast<float>(rows)), 1.0f);
      Tensor act = Tensor::FromVector({static_cast<int64_t>(take)},
                                      std::vector<float>(actual.begin(), actual.end()));
      std::vector<float> cond(take);
      for (size_t i = 0; i < take; ++i) cond[i] = est.data()[i] > actual[i] ? 1.0f : 0.0f;
      Tensor qerr = tensor::Select(cond, tensor::Div(est, act), tensor::Div(act, est));
      Tensor lquery = tensor::MeanAll(
          tensor::MulScalar(tensor::Log(tensor::AddScalar(qerr, 1.0f)), 1.4426950409f));
      step_query_loss = static_cast<double>(lquery.item());
      loss = tensor::Add(data_loss, tensor::MulScalar(lquery, options_.lambda));
    }
    loss.Backward();
    optimizer_.Step();
    stats.data_loss += static_cast<double>(data_loss.item());
    stats.query_loss += step_query_loss;
    ++steps;
    tuples += bs;
  }
  if (steps > 0) {
    stats.data_loss /= static_cast<double>(steps);
    stats.query_loss /= static_cast<double>(steps);
  }
  stats.seconds = timer.Seconds();
  stats.tuples_per_second =
      stats.seconds > 0.0 ? static_cast<double>(tuples) / stats.seconds : 0.0;
  return stats;
}

std::vector<EpochStats> MpsnTrainer::Train(
    const std::function<void(const EpochStats&)>& on_epoch) {
  std::vector<EpochStats> history;
  for (int e = 0; e < options_.epochs; ++e) {
    history.push_back(TrainEpoch(e));
    if (on_epoch) on_epoch(history.back());
  }
  return history;
}

}  // namespace duet::core
