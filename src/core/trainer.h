// Algorithm 2: hybrid training of Duet.
//
// Each SGD step draws a batch of anchor tuples, samples virtual predicate
// tuples (Algorithm 1), and minimizes
//     L = L_data + lambda * log2(QError + 1)
// where L_data is cross-entropy against the anchor labels and the query
// term runs the differentiable Algorithm 3 estimator on training-workload
// queries (paper Sec. IV-D: the log2 mapping tames the huge early Q-error
// so L_query converges at the same rate as L_data, Fig. 3). With
// lambda == 0 or no workload the trainer degrades to DuetD (data-only).
#ifndef DUET_CORE_TRAINER_H_
#define DUET_CORE_TRAINER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/duet_model.h"
#include "core/sampler.h"
#include "query/query.h"
#include "tensor/optimizer.h"

namespace duet::core {

/// Training knobs (paper defaults).
struct TrainOptions {
  int epochs = 20;
  int64_t batch_size = 512;
  float learning_rate = 2e-3f;
  /// Expand coefficient mu for Algorithm 1.
  int expand = 4;
  /// Wildcard probability during virtual-tuple sampling.
  double wildcard_prob = 0.3;
  /// Trade-off coefficient lambda; the hyper-parameter study (Fig. 5)
  /// selects 0.1.
  float lambda = 0.1f;
  /// Hybrid training workload (nullptr -> DuetD, data-driven only).
  const query::Workload* train_workload = nullptr;
  /// Historical workload guiding importance sampling of predicate operators
  /// and values (paper Sec. IV-C's query-locality refinement). nullptr keeps
  /// the paper's worst-case uniform sampling.
  const query::Workload* importance_workload = nullptr;
  /// Map Q-error through log2(q+1) (Duet's loss). Setting this false
  /// reproduces UAE-style unmapped Q-error for the Fig. 3 comparison.
  bool map_query_loss = true;
  /// Caps the anchor tuples one epoch visits (0 = the whole table). Anchors
  /// are still drawn from a permutation of all rows, so the subsample is
  /// unbiased. Full training wants 0; online fine-tuning rounds
  /// (core/finetune.h max_anchor_rows) cap it so a background update's cost
  /// is bounded by the knob, not the table size.
  int64_t max_rows_per_epoch = 0;
  uint64_t seed = 3407;
  bool parallel_sampler = true;
};

/// Per-epoch training telemetry.
struct EpochStats {
  int epoch = 0;
  double data_loss = 0.0;
  double query_loss = 0.0;   // mapped (as optimized)
  double raw_qerror = 0.0;   // mean raw Q-error of the training queries seen
  double seconds = 0.0;
  double tuples_per_second = 0.0;
};

/// Runs Algorithm 2 over a DuetModel.
class DuetTrainer {
 public:
  DuetTrainer(DuetModel& model, TrainOptions options);

  /// Trains for options.epochs; `on_epoch` (optional) observes telemetry
  /// after every epoch (used by the convergence benches, Fig. 8/9).
  std::vector<EpochStats> Train(const std::function<void(const EpochStats&)>& on_epoch = {});

  /// Runs one epoch (exposed for fine-tuning flows, Sec. IV-A: collecting
  /// badly estimated queries and fine-tuning on them).
  EpochStats TrainEpoch(int epoch_index);

  const TrainOptions& options() const { return options_; }

 private:
  DuetModel& model_;
  TrainOptions options_;
  VirtualTupleSampler sampler_;
  tensor::Adam optimizer_;
  Rng rng_;
  size_t workload_cursor_ = 0;
};

}  // namespace duet::core

#endif  // DUET_CORE_TRAINER_H_
