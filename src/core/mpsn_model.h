// Duet with MPSN input blocks: supports multiple predicates per column
// (paper Sec. IV-F). Each column's predicate list is embedded by an
// MpsnEmbedder into a fixed-width block; the MADE network and Algorithm 3
// estimation tail are identical to the direct-mode model.
#ifndef DUET_CORE_MPSN_MODEL_H_
#define DUET_CORE_MPSN_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/duet_model.h"
#include "core/mpsn.h"
#include "core/trainer.h"
#include "nn/made.h"
#include "query/estimator.h"
#include "tensor/optimizer.h"

namespace duet::core {

/// Options: base architecture + MPSN knobs.
struct DuetMpsnOptions {
  DuetModelOptions base;
  MpsnOptions mpsn;
};

/// Multi-predicate Duet model.
class DuetMpsnModel : public nn::Module {
 public:
  DuetMpsnModel(const data::Table& table, DuetMpsnOptions options);

  /// Converts queries into slot form. Checks every column carries at most
  /// mpsn.max_preds predicates.
  MultiPredBatch EncodeQueries(const std::vector<query::Query>& queries) const;

  /// Cross-entropy against anchor labels (training).
  tensor::Tensor DataLoss(const MultiPredBatch& batch) const;

  /// Differentiable batched Algorithm 3.
  tensor::Tensor SelectivityBatch(const std::vector<query::Query>& queries) const;

  /// Deterministic single-query estimation.
  double EstimateSelectivity(const query::Query& query) const;

  /// Batched inference: one embed + forward pass for all queries; matches
  /// the per-query path exactly (rows are batch-size independent).
  std::vector<double> EstimateSelectivityBatch(const std::vector<query::Query>& queries) const;

  const data::Table& table() const { return table_; }
  const DuetInputEncoder& encoder() const { return encoder_; }
  const MpsnEmbedder& embedder() const { return *embedder_; }
  const nn::Made& made() const { return *made_; }
  const DuetMpsnOptions& options() const { return options_; }

  /// Packed-weight backend for the no-grad MADE forwards (the MPSN
  /// embedder's merged per-column layers are raw tensors, untouched by
  /// backend selection); see tensor/packed_weights.h.
  void SetInferenceBackend(tensor::WeightBackend backend) const override {
    made_->SetInferenceBackend(backend);
  }
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const override {
    made_->FreezeInferenceCaches(stamp);
  }
  uint64_t CachedBytes() const override { return made_->CachedBytes(); }
  void SetPlanEnabled(bool enabled) const override { made_->SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return made_->PlanBytes(); }
  nn::PlanTelemetry PlanInfo() const override { return made_->PlanInfo(); }

 private:
  /// SelectivityBatch body with the per-query ranges already derived (they
  /// feed the zero-out mask); lets callers that also need the ranges avoid
  /// deriving them twice.
  tensor::Tensor SelectivityBatchFromRanges(
      const std::vector<query::Query>& queries,
      const std::vector<std::vector<query::CodeRange>>& all_ranges) const;

  const data::Table& table_;
  DuetMpsnOptions options_;
  DuetInputEncoder encoder_;
  std::unique_ptr<MpsnEmbedder> embedder_;
  std::unique_ptr<nn::Made> made_;
};

/// Trainer for the MPSN model: per step it draws `max_preds` independent
/// Algorithm 1 batches over the same anchors, so the per-column predicate
/// count is naturally variable, then optimizes the same hybrid loss as
/// DuetTrainer.
class MpsnTrainer {
 public:
  MpsnTrainer(DuetMpsnModel& model, TrainOptions options);

  std::vector<EpochStats> Train(const std::function<void(const EpochStats&)>& on_epoch = {});
  EpochStats TrainEpoch(int epoch_index);

 private:
  DuetMpsnModel& model_;
  TrainOptions options_;
  VirtualTupleSampler sampler_;
  tensor::Adam optimizer_;
  Rng rng_;
  size_t workload_cursor_ = 0;
};

/// CardinalityEstimator adapter.
class DuetMpsnEstimator : public query::CardinalityEstimator {
 public:
  DuetMpsnEstimator(const DuetMpsnModel& model, std::string name = "Duet-MPSN")
      : model_(model), name_(std::move(name)) {}

  double EstimateSelectivity(const query::Query& query) override {
    return model_.EstimateSelectivity(query);
  }
  std::vector<double> EstimateSelectivityBatch(
      const std::vector<query::Query>& queries) override {
    return model_.EstimateSelectivityBatch(queries);
  }
  void SetInferenceBackend(tensor::WeightBackend backend) override {
    model_.SetInferenceBackend(backend);
  }
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) override {
    model_.FreezeInferenceCaches(stamp);
  }
  uint64_t PackedWeightBytes() const override { return model_.CachedBytes(); }
  void SetPlanEnabled(bool enabled) override { model_.SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return model_.PlanBytes(); }
  uint64_t PlanCompileMicros() const override { return model_.PlanInfo().compile_micros; }
  uint64_t PlanCacheHits() const override { return model_.PlanInfo().cache_hits; }
  std::string name() const override { return name_; }
  double SizeMB() const override { return model_.SizeMB(); }

 private:
  const DuetMpsnModel& model_;
  std::string name_;
};

}  // namespace duet::core

#endif  // DUET_CORE_MPSN_MODEL_H_
