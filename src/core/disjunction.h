// Disjunction support (paper Sec. III: "its estimation can be performed by
// converting disjunction into conjunction").
//
// A disjunction of conjunctive clauses (DNF) is estimated with
// inclusion-exclusion: every intersection of clauses is itself a
// conjunction (per-column code-range intersection), so each term is one
// ordinary Duet estimate. Exponential in the number of clauses — intended
// for the small disjunction counts query optimizers actually see.
#ifndef DUET_CORE_DISJUNCTION_H_
#define DUET_CORE_DISJUNCTION_H_

#include <vector>

#include "query/estimator.h"
#include "query/query.h"

namespace duet::core {

/// Conjunction of the predicates of several clauses (their AND).
query::Query IntersectClauses(const std::vector<const query::Query*>& clauses);

/// Selectivity of `clause_1 OR ... OR clause_k` via inclusion-exclusion
/// against any conjunctive estimator. Requires 1 <= k <= 20. All 2^k - 1
/// intersection terms are estimated through one
/// EstimateSelectivityBatch call (a single forward pass for the neural
/// estimators), not a per-term scalar loop.
double EstimateDisjunction(query::CardinalityEstimator& estimator,
                           const std::vector<query::Query>& clauses);

}  // namespace duet::core

#endif  // DUET_CORE_DISJUNCTION_H_
