#include "core/mpsn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tensor/ops.h"

namespace duet::core {

using tensor::Tensor;

const char* MpsnKindName(MpsnKind kind) {
  switch (kind) {
    case MpsnKind::kMlp:
      return "MLP";
    case MpsnKind::kRecursive:
      return "REC";
    case MpsnKind::kRnn:
      return "RNN";
  }
  return "?";
}

MultiPredBatch MultiPredBatch::FromVirtualBatches(const std::vector<VirtualBatch>& draws) {
  DUET_CHECK(!draws.empty());
  MultiPredBatch out;
  out.batch = draws[0].batch;
  out.num_columns = draws[0].num_columns;
  out.max_preds = static_cast<int>(draws.size());
  out.codes.assign(static_cast<size_t>(out.batch * out.num_columns * out.max_preds), -1);
  out.ops.assign(static_cast<size_t>(out.batch * out.num_columns * out.max_preds), -1);
  out.labels = draws[0].labels;
  for (int s = 0; s < out.max_preds; ++s) {
    const VirtualBatch& vb = draws[static_cast<size_t>(s)];
    DUET_CHECK_EQ(vb.batch, out.batch);
    DUET_CHECK_EQ(vb.num_columns, out.num_columns);
    DUET_CHECK(vb.labels == out.labels) << "draws must share anchors";
    for (int64_t r = 0; r < out.batch; ++r) {
      for (int c = 0; c < out.num_columns; ++c) {
        const size_t idx = out.SlotIndex(r, c, s);
        out.codes[idx] = vb.code_at(r, c);
        out.ops[idx] = vb.op_at(r, c);
      }
    }
  }
  return out;
}

namespace {

/// Common slot-encoding helpers shared by the embedders.
///
/// Per-column slot input: the column's predicate encoding, zero for absent
/// slots. Padded layout (width = max over columns) is used by the merged
/// path so all blocks share one in-dimension.
struct SlotEncoding {
  Tensor padded;                  // [B, N * pad_width] (merged path)
  std::vector<Tensor> per_col;    // [B, enc_w(c)] per column (per-column paths)
  std::vector<float> presence;    // [B * N], 1 if slot present
};

int64_t MaxEncWidth(const DuetInputEncoder& enc) {
  int64_t w = 0;
  for (int c = 0; c < enc.values().num_columns(); ++c) w = std::max(w, enc.block_width(c));
  return w;
}

SlotEncoding EncodeSlot(const MultiPredBatch& batch, const DuetInputEncoder& enc, int slot,
                        bool build_padded, bool build_per_col) {
  const int64_t b = batch.batch;
  const int n = batch.num_columns;
  const int64_t pad = MaxEncWidth(enc);
  SlotEncoding out;
  out.presence.assign(static_cast<size_t>(b * n), 0.0f);
  if (build_padded) out.padded = Tensor::Zeros({b, static_cast<int64_t>(n) * pad});
  if (build_per_col) {
    out.per_col.reserve(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) out.per_col.push_back(Tensor::Zeros({b, enc.block_width(c)}));
  }
  for (int64_t r = 0; r < b; ++r) {
    for (int c = 0; c < n; ++c) {
      const size_t idx = batch.SlotIndex(r, c, slot);
      const int8_t op = batch.ops[idx];
      if (op < 0) continue;
      out.presence[static_cast<size_t>(r * n + c)] = 1.0f;
      if (build_padded) {
        enc.EncodePredicate(c, static_cast<query::PredOp>(op), batch.codes[idx],
                            out.padded.data() + r * n * pad + c * pad);
      }
      if (build_per_col) {
        enc.EncodePredicate(c, static_cast<query::PredOp>(op), batch.codes[idx],
                            out.per_col[static_cast<size_t>(c)].data() +
                                r * enc.block_width(c));
      }
    }
  }
  return out;
}

/// Expands a [B*N] presence vector into a [B, N*E] constant mask tensor.
Tensor ExpandPresence(const std::vector<float>& presence, int64_t b, int n, int64_t e) {
  Tensor m = Tensor::Zeros({b, static_cast<int64_t>(n) * e});
  float* p = m.data();
  for (int64_t r = 0; r < b; ++r) {
    for (int c = 0; c < n; ++c) {
      if (presence[static_cast<size_t>(r * n + c)] == 0.0f) continue;
      float* dst = p + r * n * e + c * e;
      for (int64_t j = 0; j < e; ++j) dst[j] = 1.0f;
    }
  }
  return m;
}

/// Per-column presence mask [B, E] for column c.
Tensor ColumnPresence(const std::vector<float>& presence, int64_t b, int n, int c, int64_t e) {
  Tensor m = Tensor::Zeros({b, e});
  float* p = m.data();
  for (int64_t r = 0; r < b; ++r) {
    if (presence[static_cast<size_t>(r * n + c)] == 0.0f) continue;
    for (int64_t j = 0; j < e; ++j) p[r * e + j] = 1.0f;
  }
  return m;
}

/// Packed parameter helper for the merged MLP: one [N, in, out] weight and
/// one [N*out] bias per layer, executed with BlockDiagMatMul.
struct PackedLayer {
  Tensor w;  // [N * in * out] viewed as [N, in, out]
  Tensor b;  // [N * out]
  int64_t in = 0;
  int64_t out = 0;
};

PackedLayer MakePackedLayer(int n, int64_t in, int64_t out, Rng& rng) {
  PackedLayer l;
  l.in = in;
  l.out = out;
  const float bound = 1.0f / std::sqrt(static_cast<float>(in));
  l.w = Tensor::Zeros({static_cast<int64_t>(n), in, out});
  l.b = Tensor::Zeros({static_cast<int64_t>(n) * out});
  for (int64_t i = 0; i < l.w.numel(); ++i) {
    l.w.data()[i] = (rng.UniformFloat() * 2.0f - 1.0f) * bound;
  }
  for (int64_t i = 0; i < l.b.numel(); ++i) {
    l.b.data()[i] = (rng.UniformFloat() * 2.0f - 1.0f) * bound;
  }
  return l;
}

/// MLP & vector-sum embedder, merged (block-diagonal fused) execution.
class MlpMergedEmbedder final : public MpsnEmbedder {
 public:
  MlpMergedEmbedder(const MpsnOptions& opt, const DuetInputEncoder& enc, Rng& rng)
      : opt_(opt), n_(enc.values().num_columns()), pad_(MaxEncWidth(enc)) {
    l1_ = MakePackedLayer(n_, pad_, opt.hidden, rng);
    l2_ = MakePackedLayer(n_, opt.hidden, opt.hidden, rng);
    l3_ = MakePackedLayer(n_, opt.hidden, opt.embed_dim, rng);
    for (PackedLayer* l : {&l1_, &l2_, &l3_}) {
      l->w = RegisterParam(l->w);
      l->b = RegisterParam(l->b);
    }
  }

  Tensor Embed(const MultiPredBatch& batch, const DuetInputEncoder& enc) const override {
    using namespace tensor;  // NOLINT
    const int64_t b = batch.batch;
    Tensor acc = Tensor::Zeros({b, static_cast<int64_t>(n_) * opt_.embed_dim});
    for (int s = 0; s < batch.max_preds; ++s) {
      SlotEncoding se = EncodeSlot(batch, enc, s, /*padded=*/true, /*per_col=*/false);
      Tensor h = AddBias(BlockDiagMatMul(se.padded, l1_.w, n_, l1_.in, l1_.out), l1_.b);
      h = Relu(h);
      h = AddBias(BlockDiagMatMul(h, l2_.w, n_, l2_.in, l2_.out), l2_.b);
      h = Relu(h);
      h = AddBias(BlockDiagMatMul(h, l3_.w, n_, l3_.in, l3_.out), l3_.b);
      acc = Add(acc, Mul(h, ExpandPresence(se.presence, b, n_, opt_.embed_dim)));
    }
    return acc;
  }

  MpsnKind kind() const override { return MpsnKind::kMlp; }

 private:
  MpsnOptions opt_;
  int n_;
  int64_t pad_;
  PackedLayer l1_, l2_, l3_;
};

/// MLP & vector-sum embedder, independent per-column networks (the
/// non-merged baseline for the acceleration ablation).
class MlpPerColumnEmbedder final : public MpsnEmbedder {
 public:
  MlpPerColumnEmbedder(const MpsnOptions& opt, const DuetInputEncoder& enc, Rng& rng)
      : opt_(opt), n_(enc.values().num_columns()) {
    for (int c = 0; c < n_; ++c) {
      mlps_.emplace_back(
          std::vector<int64_t>{enc.block_width(c), opt.hidden, opt.hidden, opt.embed_dim}, rng);
    }
    for (auto& m : mlps_) RegisterChild(m);
  }

  Tensor Embed(const MultiPredBatch& batch, const DuetInputEncoder& enc) const override {
    using namespace tensor;  // NOLINT
    const int64_t b = batch.batch;
    std::vector<Tensor> cols;
    std::vector<Tensor> acc(static_cast<size_t>(n_));
    for (int c = 0; c < n_; ++c) acc[static_cast<size_t>(c)] = Tensor::Zeros({b, opt_.embed_dim});
    for (int s = 0; s < batch.max_preds; ++s) {
      SlotEncoding se = EncodeSlot(batch, enc, s, /*padded=*/false, /*per_col=*/true);
      for (int c = 0; c < n_; ++c) {
        Tensor y = mlps_[static_cast<size_t>(c)].Forward(se.per_col[static_cast<size_t>(c)]);
        acc[static_cast<size_t>(c)] = Add(
            acc[static_cast<size_t>(c)],
            Mul(y, ColumnPresence(se.presence, b, n_, c, opt_.embed_dim)));
      }
    }
    for (int c = 0; c < n_; ++c) cols.push_back(acc[static_cast<size_t>(c)]);
    return ConcatCols(cols);
  }

  MpsnKind kind() const override { return MpsnKind::kMlp; }

 private:
  MpsnOptions opt_;
  int n_;
  std::vector<nn::Mlp> mlps_;
};

/// Recursive embedder: out_j = MLP([enc_j | out_{j-1}]); absent slots keep
/// the previous state.
class RecursiveEmbedder final : public MpsnEmbedder {
 public:
  RecursiveEmbedder(const MpsnOptions& opt, const DuetInputEncoder& enc, Rng& rng)
      : opt_(opt), n_(enc.values().num_columns()) {
    for (int c = 0; c < n_; ++c) {
      mlps_.emplace_back(std::vector<int64_t>{enc.block_width(c) + opt.embed_dim, opt.hidden,
                                              opt.hidden, opt.embed_dim},
                         rng);
    }
    for (auto& m : mlps_) RegisterChild(m);
  }

  Tensor Embed(const MultiPredBatch& batch, const DuetInputEncoder& enc) const override {
    using namespace tensor;  // NOLINT
    const int64_t b = batch.batch;
    std::vector<Tensor> state(static_cast<size_t>(n_));
    for (int c = 0; c < n_; ++c) {
      state[static_cast<size_t>(c)] = Tensor::Zeros({b, opt_.embed_dim});
    }
    for (int s = 0; s < batch.max_preds; ++s) {
      SlotEncoding se = EncodeSlot(batch, enc, s, /*padded=*/false, /*per_col=*/true);
      for (int c = 0; c < n_; ++c) {
        Tensor input = ConcatCols({se.per_col[static_cast<size_t>(c)],
                                   state[static_cast<size_t>(c)]});
        Tensor y = mlps_[static_cast<size_t>(c)].Forward(input);
        Tensor presence = ColumnPresence(se.presence, b, n_, c, opt_.embed_dim);
        // state <- presence ? y : state
        state[static_cast<size_t>(c)] =
            Add(Mul(y, presence),
                Mul(state[static_cast<size_t>(c)],
                    tensor::AddScalar(tensor::MulScalar(presence, -1.0f), 1.0f)));
      }
    }
    return ConcatCols(state);
  }

  MpsnKind kind() const override { return MpsnKind::kRecursive; }

 private:
  MpsnOptions opt_;
  int n_;
  std::vector<nn::Mlp> mlps_;
};

/// LSTM embedder: per-column 2-layer LSTM; each step's hidden state goes
/// through a shared-per-column FC layer and the outputs are summed.
class RnnEmbedder final : public MpsnEmbedder {
 public:
  RnnEmbedder(const MpsnOptions& opt, const DuetInputEncoder& enc, Rng& rng)
      : opt_(opt), n_(enc.values().num_columns()) {
    for (int c = 0; c < n_; ++c) {
      cells1_.emplace_back(enc.block_width(c), opt.hidden, rng);
      cells2_.emplace_back(opt.hidden, opt.hidden, rng);
      fcs_.emplace_back(opt.hidden, opt.embed_dim, rng);
    }
    for (auto& m : cells1_) RegisterChild(m);
    for (auto& m : cells2_) RegisterChild(m);
    for (auto& m : fcs_) RegisterChild(m);
  }

  Tensor Embed(const MultiPredBatch& batch, const DuetInputEncoder& enc) const override {
    using namespace tensor;  // NOLINT
    const int64_t b = batch.batch;
    std::vector<Tensor> acc(static_cast<size_t>(n_));
    std::vector<nn::LstmCell::State> s1(static_cast<size_t>(n_)), s2(static_cast<size_t>(n_));
    for (int c = 0; c < n_; ++c) {
      acc[static_cast<size_t>(c)] = Tensor::Zeros({b, opt_.embed_dim});
      s1[static_cast<size_t>(c)] = cells1_[static_cast<size_t>(c)].InitialState(b);
      s2[static_cast<size_t>(c)] = cells2_[static_cast<size_t>(c)].InitialState(b);
    }
    for (int s = 0; s < batch.max_preds; ++s) {
      SlotEncoding se = EncodeSlot(batch, enc, s, /*padded=*/false, /*per_col=*/true);
      for (int c = 0; c < n_; ++c) {
        s1[static_cast<size_t>(c)] = cells1_[static_cast<size_t>(c)].Forward(
            se.per_col[static_cast<size_t>(c)], s1[static_cast<size_t>(c)]);
        s2[static_cast<size_t>(c)] = cells2_[static_cast<size_t>(c)].Forward(
            s1[static_cast<size_t>(c)].h, s2[static_cast<size_t>(c)]);
        Tensor y = fcs_[static_cast<size_t>(c)].Forward(s2[static_cast<size_t>(c)].h);
        acc[static_cast<size_t>(c)] =
            Add(acc[static_cast<size_t>(c)],
                Mul(y, ColumnPresence(se.presence, b, n_, c, opt_.embed_dim)));
      }
    }
    return ConcatCols(acc);
  }

  MpsnKind kind() const override { return MpsnKind::kRnn; }

 private:
  MpsnOptions opt_;
  int n_;
  std::vector<nn::LstmCell> cells1_;
  std::vector<nn::LstmCell> cells2_;
  std::vector<nn::Linear> fcs_;
};

}  // namespace

std::unique_ptr<MpsnEmbedder> MakeMpsnEmbedder(const MpsnOptions& options,
                                               const DuetInputEncoder& encoder, Rng& rng) {
  switch (options.kind) {
    case MpsnKind::kMlp:
      if (options.merged) return std::make_unique<MlpMergedEmbedder>(options, encoder, rng);
      return std::make_unique<MlpPerColumnEmbedder>(options, encoder, rng);
    case MpsnKind::kRecursive:
      return std::make_unique<RecursiveEmbedder>(options, encoder, rng);
    case MpsnKind::kRnn:
      return std::make_unique<RnnEmbedder>(options, encoder, rng);
  }
  return nullptr;
}

}  // namespace duet::core
