// Algorithm 1: Parallel Vectorized Sampling of virtual tuples.
//
// Duet does not learn from table tuples directly. For each anchor tuple x
// drawn by SGD it generates a virtual tuple x' of predicates that x
// satisfies: each column gets a random operator (slices of the batch are
// assigned distinct operators without repetition, mirroring the paper's
// slice trick that avoids per-row indexing costs) and a predicate value
// drawn uniformly from the satisfying code range. Anchor rows whose range
// is infeasible for the assigned operator (e.g. `>` on the minimum value)
// degrade to wildcards, exactly like the mask bookkeeping in the paper.
// The batch is replicated `mu` times with independent predicate draws
// (expand coefficient, Sec. IV-C), and columns are sampled in parallel.
#ifndef DUET_CORE_SAMPLER_H_
#define DUET_CORE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/table.h"
#include "query/query.h"

namespace duet::core {

/// One sampled batch of virtual tuples. Layout is row-major [batch, column];
/// code/op == -1 marks a wildcard slot.
struct VirtualBatch {
  int64_t batch = 0;
  int num_columns = 0;
  std::vector<int32_t> pred_codes;  // predicate value codes, -1 = wildcard
  std::vector<int8_t> pred_ops;     // PredOp index, -1 = wildcard
  std::vector<int32_t> labels;      // anchor tuple codes (training target)

  int32_t code_at(int64_t row, int col) const {
    return pred_codes[static_cast<size_t>(row * num_columns + col)];
  }
  int8_t op_at(int64_t row, int col) const {
    return pred_ops[static_cast<size_t>(row * num_columns + col)];
  }
  int32_t label_at(int64_t row, int col) const {
    return labels[static_cast<size_t>(row * num_columns + col)];
  }
};

/// Sampler configuration.
struct SamplerOptions {
  /// Expand coefficient mu: each anchor tuple is replicated this many times
  /// with independent predicate draws (paper default 4).
  int expand = 4;
  /// Probability that a column is wildcarded instead of receiving a
  /// predicate (Naru-style wildcard skipping so inference-time unconstrained
  /// columns are in-distribution).
  double wildcard_prob = 0.3;
  /// Parallelize across columns (paper: one thread per column).
  bool parallel = true;
  /// Importance sampling of predicate operators (paper Sec. IV-C: "in
  /// real-world scenarios with strong query time locality, it's possible to
  /// use the historical queries' distributions to guide the sampling").
  /// Empty = uniform (the paper's worst-case default); otherwise
  /// kNumPredOps weights controlling how much of each batch slice is
  /// assigned to each operator.
  std::vector<double> op_weights;
  /// Importance sampling of predicate *values* (same Sec. IV-C locality
  /// note): per column, one weight per distinct-value code. Predicate
  /// values are then drawn from the historical value distribution restricted
  /// to the anchor-feasible range instead of uniformly. Empty = uniform.
  std::vector<std::vector<double>> value_weights;
};

/// Derives smoothed per-column predicate-value weights from a historical
/// workload (every code gets `smoothing` mass so no value starves).
std::vector<std::vector<double>> ValueWeightsFromWorkload(const data::Table& table,
                                                          const query::Workload& workload,
                                                          double smoothing = 0.25);

/// Derives operator importance weights from a historical workload (the
/// relative frequency of each operator, smoothed so no operator starves).
std::vector<double> OpWeightsFromWorkload(const query::Workload& workload,
                                          double smoothing = 0.05);

/// Vectorized per-column sampler over one table.
class VirtualTupleSampler {
 public:
  VirtualTupleSampler(const data::Table& table, SamplerOptions options);

  /// Samples a virtual batch for the given anchor rows. Deterministic in
  /// `seed` (per-column child seeds are derived from it).
  VirtualBatch Sample(const std::vector<int64_t>& anchor_rows, uint64_t seed) const;

  const SamplerOptions& options() const { return options_; }

 private:
  void SampleColumn(const std::vector<int64_t>& anchor_rows, int col, uint64_t seed,
                    VirtualBatch* out) const;

  /// Draws a code in [lo, hi] from the column's importance distribution
  /// (prefix-sum inversion), or uniformly when no weights are configured.
  int32_t DrawCode(int col, int32_t lo, int32_t hi, Rng& rng) const;

  const data::Table& table_;
  SamplerOptions options_;
  /// Per-column inclusive prefix sums of value_weights (empty = uniform).
  std::vector<std::vector<double>> value_prefix_;
};

}  // namespace duet::core

#endif  // DUET_CORE_SAMPLER_H_
