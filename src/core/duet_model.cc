#include "core/duet_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace duet::core {

using tensor::Tensor;

namespace {
/// Selectivity factors are floored at this value before the log-space
/// product so hybrid-training gradients stay finite.
constexpr float kSelEps = 1e-12f;

/// Queries per batched forward pass; bounds peak activation memory when a
/// caller (e.g. EvaluateQErrors) hands over a whole workload. Chunking never
/// changes results — rows are batch-size independent.
constexpr int64_t kMaxQueriesPerForward = 4096;

}  // namespace

// Algorithm 3 tail for one query row; see the declaration in duet_model.h
// for the contract (exported so artifact-loaded models reuse the exact
// same loop and stay bitwise-equal to the in-memory estimator).
bool MaskedLogSelectivity(const float* logits_row, const std::vector<tensor::BlockSpec>& blocks,
                          const std::vector<query::CodeRange>& ranges, int num_columns,
                          double* log_sel_out) {
  double log_sel = 0.0;
  for (int c = 0; c < num_columns; ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    if (r.empty()) return false;
    const tensor::BlockSpec& blk = blocks[static_cast<size_t>(c)];
    if (r.lo == 0 && r.hi == static_cast<int32_t>(blk.len)) continue;  // wildcard: factor 1
    const float* ls = logits_row + blk.offset;
    float mx = ls[0];
    for (int64_t j = 1; j < blk.len; ++j) mx = std::max(mx, ls[j]);
    double denom = 0.0, num = 0.0;
    for (int64_t j = 0; j < blk.len; ++j) {
      const double e = std::exp(static_cast<double>(ls[j] - mx));
      denom += e;
      if (j >= r.lo && j < r.hi) num += e;
    }
    log_sel += std::log(std::max(num / denom, static_cast<double>(kSelEps)));
  }
  *log_sel_out = log_sel;
  return true;
}

DuetModel::DuetModel(const data::Table& table, DuetModelOptions options)
    : table_(table), options_(std::move(options)), encoder_(table, options_.encoding) {
  Rng rng(options_.seed);
  if (options_.backbone == DuetBackbone::kTransformer) {
    nn::TransformerOptions t_opt;
    t_opt.input_widths = encoder_.BlockWidths();
    t_opt.output_widths = table.ColumnNdvs();
    t_opt.config = options_.transformer;
    net_ = std::make_unique<nn::BlockTransformer>(std::move(t_opt), rng);
  } else {
    nn::MadeOptions made_opt;
    made_opt.input_widths = encoder_.BlockWidths();
    made_opt.output_widths = table.ColumnNdvs();
    made_opt.hidden_sizes = options_.hidden_sizes;
    made_opt.residual = options_.residual;
    net_ = std::make_unique<nn::Made>(made_opt, rng);
  }
  RegisterChild(*net_);
}

Tensor DuetModel::EncodeVirtualBatch(const VirtualBatch& batch) const {
  DUET_CHECK_EQ(batch.num_columns, table_.num_columns());
  const int64_t b = batch.batch;
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({b, d});
  float* xp = x.data();
  for (int64_t r = 0; r < b; ++r) {
    float* row = xp + r * d;
    for (int c = 0; c < batch.num_columns; ++c) {
      const int8_t op = batch.op_at(r, c);
      if (op < 0) continue;  // wildcard block stays zero
      encoder_.EncodePredicate(c, static_cast<query::PredOp>(op), batch.code_at(r, c),
                               row + encoder_.block_offset(c));
    }
  }
  return x;
}

Tensor DuetModel::ForwardLogits(const Tensor& x) const { return net_->Forward(x); }

Tensor DuetModel::DataLoss(const VirtualBatch& batch) const {
  const Tensor x = EncodeVirtualBatch(batch);
  const Tensor logits = ForwardLogits(x);
  const Tensor logp = tensor::LogSoftmaxBlocks(logits, net_->output_blocks());
  return tensor::NllLossBlocks(logp, net_->output_blocks(), batch.labels);
}


void DuetModel::FillMaskRow(const std::vector<query::CodeRange>& ranges, float* dst) const {
  const auto& blocks = net_->output_blocks();
  for (int c = 0; c < table_.num_columns(); ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    float* block = dst + blocks[static_cast<size_t>(c)].offset;
    for (int32_t j = r.lo; j < r.hi; ++j) block[j] = 1.0f;
  }
}

Tensor DuetModel::SelectivityBatch(const std::vector<query::Query>& queries) const {
  DUET_CHECK(!queries.empty());
  const int64_t b = static_cast<int64_t>(queries.size());
  const int64_t d = encoder_.total_width();
  const int64_t out_dim = net_->output_dim();
  Tensor x = Tensor::Zeros({b, d});
  Tensor mask = Tensor::Zeros({b, out_dim});
  encoder_.EncodeQueryBatch(table_, queries, x.data());
  for (int64_t r = 0; r < b; ++r) {
    const query::Query& q = queries[static_cast<size_t>(r)];
    FillMaskRow(q.PerColumnRanges(table_), mask.data() + r * out_dim);
  }
  const Tensor logits = ForwardLogits(x);
  const Tensor probs = tensor::SoftmaxBlocks(logits, net_->output_blocks());
  const Tensor factors = tensor::MaskedSumBlocks(probs, mask, net_->output_blocks());
  // Product over columns in log space (numerically safe for 100 columns).
  const Tensor logf = tensor::Log(tensor::ClampMin(factors, kSelEps));
  return tensor::Exp(tensor::SumCols(logf));
}

double DuetModel::EstimateSelectivity(const query::Query& query) const {
  tensor::NoGradScope no_grad;
  Timer timer;

  // Phase 1: encode.
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({1, d});
  encoder_.EncodeQueryRow(table_, query, x.data());
  const std::vector<query::CodeRange> ranges = query.PerColumnRanges(table_);
  for (const query::CodeRange& r : ranges) {
    if (r.empty()) return 0.0;  // contradictory predicates select nothing
  }
  AddPhaseTime(&PhaseTimes::encode_ms, timer.Millis());

  // Phase 2: one forward pass.
  timer.Reset();
  const Tensor logits = ForwardLogits(x);
  AddPhaseTime(&PhaseTimes::forward_ms, timer.Millis());

  // Phase 3: per-block softmax restricted to the mask (Algorithm 3 lines
  // 3-4), done with raw loops - no tensors needed for a single row.
  timer.Reset();
  double log_sel = 0.0;
  MaskedLogSelectivity(logits.data(), net_->output_blocks(), ranges, table_.num_columns(),
                       &log_sel);
  AddPhaseTime(&PhaseTimes::post_ms, timer.Millis());
  return std::exp(log_sel);
}

std::vector<double> DuetModel::EstimateSelectivityBatch(
    const std::vector<query::Query>& queries) const {
  tensor::NoGradScope no_grad;
  if (queries.empty()) return {};
  const int64_t total = static_cast<int64_t>(queries.size());
  const int64_t d = encoder_.total_width();
  const auto& blocks = net_->output_blocks();
  const int64_t out_dim = net_->output_dim();
  const int num_columns = table_.num_columns();
  std::vector<double> sels(static_cast<size_t>(total));

  for (int64_t begin = 0; begin < total; begin += kMaxQueriesPerForward) {
    const int64_t b = std::min(kMaxQueriesPerForward, total - begin);
    const query::Query* chunk = queries.data() + begin;

    Timer timer;
    Tensor x = Tensor::Zeros({b, d});
    std::vector<std::vector<query::CodeRange>> all_ranges(static_cast<size_t>(b));
    ParallelForChunked(
        0, b,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            encoder_.EncodeQueryRow(table_, chunk[r], x.data() + r * d);
            all_ranges[static_cast<size_t>(r)] = chunk[r].PerColumnRanges(table_);
          }
        },
        /*parallel=*/b >= 64, /*grain=*/16);
    AddPhaseTime(&PhaseTimes::encode_ms, timer.Millis());

    timer.Reset();
    const Tensor logits = ForwardLogits(x);
    AddPhaseTime(&PhaseTimes::forward_ms, timer.Millis());

    timer.Reset();
    const float* logit_base = logits.data();
    double* sel_base = sels.data() + begin;
    // Per-row masked softmax + log-space product; rows are independent, so
    // this parallelizes without affecting per-query numerics.
    ParallelForChunked(
        0, b,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            double log_sel = 0.0;
            const bool ok =
                MaskedLogSelectivity(logit_base + r * out_dim, blocks,
                                     all_ranges[static_cast<size_t>(r)], num_columns,
                                     &log_sel);
            sel_base[r] = ok ? std::exp(log_sel) : 0.0;
          }
        },
        /*parallel=*/b >= 64, /*grain=*/16);
    AddPhaseTime(&PhaseTimes::post_ms, timer.Millis());
  }
  return sels;
}

}  // namespace duet::core
