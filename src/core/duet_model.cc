#include "core/duet_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"

namespace duet::core {

using tensor::Tensor;

namespace {
/// Selectivity factors are floored at this value before the log-space
/// product so hybrid-training gradients stay finite.
constexpr float kSelEps = 1e-12f;
}  // namespace

DuetModel::DuetModel(const data::Table& table, DuetModelOptions options)
    : table_(table), options_(std::move(options)), encoder_(table, options_.encoding) {
  Rng rng(options_.seed);
  if (options_.backbone == DuetBackbone::kTransformer) {
    nn::TransformerOptions t_opt;
    t_opt.input_widths = encoder_.BlockWidths();
    t_opt.output_widths = table.ColumnNdvs();
    t_opt.config = options_.transformer;
    net_ = std::make_unique<nn::BlockTransformer>(std::move(t_opt), rng);
  } else {
    nn::MadeOptions made_opt;
    made_opt.input_widths = encoder_.BlockWidths();
    made_opt.output_widths = table.ColumnNdvs();
    made_opt.hidden_sizes = options_.hidden_sizes;
    made_opt.residual = options_.residual;
    net_ = std::make_unique<nn::Made>(made_opt, rng);
  }
  RegisterChild(*net_);
}

Tensor DuetModel::EncodeVirtualBatch(const VirtualBatch& batch) const {
  DUET_CHECK_EQ(batch.num_columns, table_.num_columns());
  const int64_t b = batch.batch;
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({b, d});
  float* xp = x.data();
  for (int64_t r = 0; r < b; ++r) {
    float* row = xp + r * d;
    for (int c = 0; c < batch.num_columns; ++c) {
      const int8_t op = batch.op_at(r, c);
      if (op < 0) continue;  // wildcard block stays zero
      encoder_.EncodePredicate(c, static_cast<query::PredOp>(op), batch.code_at(r, c),
                               row + encoder_.block_offset(c));
    }
  }
  return x;
}

Tensor DuetModel::ForwardLogits(const Tensor& x) const { return net_->Forward(x); }

Tensor DuetModel::DataLoss(const VirtualBatch& batch) const {
  const Tensor x = EncodeVirtualBatch(batch);
  const Tensor logits = ForwardLogits(x);
  const Tensor logp = tensor::LogSoftmaxBlocks(logits, net_->output_blocks());
  return tensor::NllLossBlocks(logp, net_->output_blocks(), batch.labels);
}

void DuetModel::EncodeQueryRow(const query::Query& query, float* dst) const {
  // Group predicates per column. Single predicates encode directly; a
  // column with several predicates (e.g. a closed interval, or clause
  // intersections from disjunction support) is condensed to one
  // representative predicate over the intersected code range — the input
  // only *conditions* the network, exact containment is always enforced by
  // the zero-out mask. The MPSN model (core/mpsn_model.h) embeds the full
  // predicate list instead.
  std::vector<int> count(static_cast<size_t>(table_.num_columns()), 0);
  for (const query::Predicate& p : query.predicates) count[static_cast<size_t>(p.col)]++;
  std::vector<bool> done(static_cast<size_t>(table_.num_columns()), false);
  std::vector<query::CodeRange> ranges;  // lazily computed for condensation
  for (const query::Predicate& p : query.predicates) {
    const size_t ci = static_cast<size_t>(p.col);
    if (done[ci]) continue;
    done[ci] = true;
    const data::Column& col = table_.column(p.col);
    if (count[ci] == 1) {
      // The predicate value maps to its boundary code; exact containment is
      // enforced by the zero-out mask, the input only conditions the net.
      int32_t code = std::clamp(col.LowerBound(p.value), 0, col.ndv() - 1);
      encoder_.EncodePredicate(p.col, p.op, code, dst + encoder_.block_offset(p.col));
      continue;
    }
    if (ranges.empty()) ranges = query.PerColumnRanges(table_);
    const query::CodeRange& r = ranges[ci];
    if (r.empty()) continue;  // estimator returns 0 before the forward pass
    const int32_t lo = std::clamp(r.lo, 0, col.ndv() - 1);
    const query::PredOp op = r.size() == 1 ? query::PredOp::kEq : query::PredOp::kGe;
    encoder_.EncodePredicate(p.col, op, lo, dst + encoder_.block_offset(p.col));
  }
}

void DuetModel::FillMaskRow(const std::vector<query::CodeRange>& ranges, float* dst) const {
  const auto& blocks = net_->output_blocks();
  for (int c = 0; c < table_.num_columns(); ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    float* block = dst + blocks[static_cast<size_t>(c)].offset;
    for (int32_t j = r.lo; j < r.hi; ++j) block[j] = 1.0f;
  }
}

Tensor DuetModel::SelectivityBatch(const std::vector<query::Query>& queries) const {
  DUET_CHECK(!queries.empty());
  const int64_t b = static_cast<int64_t>(queries.size());
  const int64_t d = encoder_.total_width();
  const int64_t out_dim = net_->output_dim();
  Tensor x = Tensor::Zeros({b, d});
  Tensor mask = Tensor::Zeros({b, out_dim});
  for (int64_t r = 0; r < b; ++r) {
    const query::Query& q = queries[static_cast<size_t>(r)];
    EncodeQueryRow(q, x.data() + r * d);
    FillMaskRow(q.PerColumnRanges(table_), mask.data() + r * out_dim);
  }
  const Tensor logits = ForwardLogits(x);
  const Tensor probs = tensor::SoftmaxBlocks(logits, net_->output_blocks());
  const Tensor factors = tensor::MaskedSumBlocks(probs, mask, net_->output_blocks());
  // Product over columns in log space (numerically safe for 100 columns).
  const Tensor logf = tensor::Log(tensor::ClampMin(factors, kSelEps));
  return tensor::Exp(tensor::SumCols(logf));
}

double DuetModel::EstimateSelectivity(const query::Query& query) const {
  tensor::NoGradGuard no_grad;
  Timer timer;

  // Phase 1: encode.
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({1, d});
  EncodeQueryRow(query, x.data());
  const std::vector<query::CodeRange> ranges = query.PerColumnRanges(table_);
  for (const query::CodeRange& r : ranges) {
    if (r.empty()) return 0.0;  // contradictory predicates select nothing
  }
  phase_times_.encode_ms += timer.Millis();

  // Phase 2: one forward pass.
  timer.Reset();
  const Tensor logits = ForwardLogits(x);
  phase_times_.forward_ms += timer.Millis();

  // Phase 3: per-block softmax restricted to the mask (Algorithm 3 lines
  // 3-4), done with raw loops - no tensors needed for a single row.
  timer.Reset();
  const float* lp = logits.data();
  const auto& blocks = net_->output_blocks();
  double log_sel = 0.0;
  for (int c = 0; c < table_.num_columns(); ++c) {
    const query::CodeRange& r = ranges[static_cast<size_t>(c)];
    const tensor::BlockSpec& blk = blocks[static_cast<size_t>(c)];
    if (r.lo == 0 && r.hi == static_cast<int32_t>(blk.len)) continue;  // wildcard: factor 1
    const float* ls = lp + blk.offset;
    float mx = ls[0];
    for (int64_t j = 1; j < blk.len; ++j) mx = std::max(mx, ls[j]);
    double denom = 0.0, num = 0.0;
    for (int64_t j = 0; j < blk.len; ++j) {
      const double e = std::exp(static_cast<double>(ls[j] - mx));
      denom += e;
      if (j >= r.lo && j < r.hi) num += e;
    }
    const double factor = std::max(num / denom, static_cast<double>(kSelEps));
    log_sel += std::log(factor);
  }
  phase_times_.post_ms += timer.Millis();
  return std::exp(log_sel);
}

std::vector<double> DuetModel::EstimateSelectivityBatch(
    const std::vector<query::Query>& queries) const {
  tensor::NoGradGuard no_grad;
  if (queries.empty()) return {};
  const int64_t b = static_cast<int64_t>(queries.size());
  const int64_t d = encoder_.total_width();
  Tensor x = Tensor::Zeros({b, d});
  std::vector<std::vector<query::CodeRange>> all_ranges(static_cast<size_t>(b));
  for (int64_t r = 0; r < b; ++r) {
    EncodeQueryRow(queries[static_cast<size_t>(r)], x.data() + r * d);
    all_ranges[static_cast<size_t>(r)] = queries[static_cast<size_t>(r)].PerColumnRanges(table_);
  }
  const Tensor logits = ForwardLogits(x);
  const auto& blocks = net_->output_blocks();
  const int64_t out_dim = net_->output_dim();
  std::vector<double> sels(static_cast<size_t>(b));
  for (int64_t r = 0; r < b; ++r) {
    const float* lp = logits.data() + r * out_dim;
    double log_sel = 0.0;
    bool empty = false;
    for (int c = 0; c < table_.num_columns() && !empty; ++c) {
      const query::CodeRange& cr = all_ranges[static_cast<size_t>(r)][static_cast<size_t>(c)];
      const tensor::BlockSpec& blk = blocks[static_cast<size_t>(c)];
      if (cr.empty()) {
        empty = true;
        break;
      }
      if (cr.lo == 0 && cr.hi == static_cast<int32_t>(blk.len)) continue;
      const float* ls = lp + blk.offset;
      float mx = ls[0];
      for (int64_t j = 1; j < blk.len; ++j) mx = std::max(mx, ls[j]);
      double denom = 0.0, num = 0.0;
      for (int64_t j = 0; j < blk.len; ++j) {
        const double e = std::exp(static_cast<double>(ls[j] - mx));
        denom += e;
        if (j >= cr.lo && j < cr.hi) num += e;
      }
      log_sel += std::log(std::max(num / denom, static_cast<double>(kSelEps)));
    }
    sels[static_cast<size_t>(r)] = empty ? 0.0 : std::exp(log_sel);
  }
  return sels;
}

}  // namespace duet::core
