#include "core/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"

namespace duet::core {

using tensor::Tensor;

namespace {

SamplerOptions MakeSamplerOptions(const TrainOptions& opt, const data::Table& table) {
  SamplerOptions s;
  s.expand = opt.expand;
  s.wildcard_prob = opt.wildcard_prob;
  s.parallel = opt.parallel_sampler;
  if (opt.importance_workload != nullptr) {
    s.op_weights = OpWeightsFromWorkload(*opt.importance_workload);
    s.value_weights = ValueWeightsFromWorkload(table, *opt.importance_workload);
  }
  return s;
}

}  // namespace

DuetTrainer::DuetTrainer(DuetModel& model, TrainOptions options)
    : model_(model),
      options_(options),
      sampler_(model.table(), MakeSamplerOptions(options, model.table())),
      optimizer_(model.parameters(), options.learning_rate),
      rng_(options.seed) {
  DUET_CHECK_GT(options_.batch_size, 0);
  if (options_.train_workload != nullptr) {
    DUET_CHECK(!options_.train_workload->empty());
  }
}

EpochStats DuetTrainer::TrainEpoch(int epoch_index) {
  const data::Table& table = model_.table();
  const int64_t rows = table.num_rows();
  // Anchor budget for this epoch: the whole table unless capped (online
  // fine-tuning rounds bound their cost this way); the permutation below
  // still spans all rows, so a capped epoch sees an unbiased subsample.
  const int64_t rows_used = options_.max_rows_per_epoch > 0
                                ? std::min<int64_t>(rows, options_.max_rows_per_epoch)
                                : rows;
  const int64_t bs = std::min<int64_t>(options_.batch_size, rows_used);
  const bool hybrid = options_.train_workload != nullptr && options_.lambda > 0.0f;

  Timer timer;
  std::vector<uint32_t> perm = rng_.Permutation(static_cast<uint32_t>(rows));
  EpochStats stats;
  stats.epoch = epoch_index;
  int64_t steps = 0;
  int64_t tuples = 0;
  double raw_q_sum = 0.0;
  int64_t raw_q_count = 0;

  for (int64_t begin = 0; begin + bs <= rows_used; begin += bs) {
    std::vector<int64_t> anchors(static_cast<size_t>(bs));
    for (int64_t i = 0; i < bs; ++i) {
      anchors[static_cast<size_t>(i)] = perm[static_cast<size_t>(begin + i)];
    }
    const VirtualBatch vb = sampler_.Sample(anchors, rng_());

    optimizer_.ZeroGrad();
    Tensor data_loss = model_.DataLoss(vb);
    Tensor loss = data_loss;

    double step_query_loss = 0.0;
    if (hybrid) {
      // Collect bs queries from the training workload, cycling (Alg. 2 L4).
      const query::Workload& wl = *options_.train_workload;
      const size_t take = std::min<size_t>(static_cast<size_t>(bs), wl.size());
      std::vector<query::Query> queries;
      std::vector<float> actual(take);
      queries.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        const query::LabeledQuery& lq = wl[(workload_cursor_ + i) % wl.size()];
        queries.push_back(lq.query);
        actual[i] = std::max<float>(1.0f, static_cast<float>(lq.cardinality));
      }
      workload_cursor_ = (workload_cursor_ + take) % wl.size();

      Tensor sel = model_.SelectivityBatch(queries);  // [take]
      Tensor est =
          tensor::ClampMin(tensor::MulScalar(sel, static_cast<float>(table.num_rows())), 1.0f);
      Tensor act = Tensor::FromVector({static_cast<int64_t>(take)},
                                      std::vector<float>(actual.begin(), actual.end()));
      // QError = max(est, act) / min(est, act), branch chosen per element
      // from the already-computed forward values (gradient is exact a.e.).
      std::vector<float> cond(take);
      for (size_t i = 0; i < take; ++i) {
        cond[i] = est.data()[i] > actual[i] ? 1.0f : 0.0f;
      }
      Tensor qerr = tensor::Select(cond, tensor::Div(est, act), tensor::Div(act, est));
      for (size_t i = 0; i < take; ++i) {
        raw_q_sum += static_cast<double>(qerr.data()[i]);
      }
      raw_q_count += static_cast<int64_t>(take);

      Tensor lquery;
      if (options_.map_query_loss) {
        // log2(q + 1): bounded gradients, same convergence order as L_data.
        lquery = tensor::MeanAll(
            tensor::MulScalar(tensor::Log(tensor::AddScalar(qerr, 1.0f)), 1.4426950409f));
      } else {
        lquery = tensor::MeanAll(qerr);  // UAE-style raw Q-error
      }
      step_query_loss = static_cast<double>(lquery.item());
      loss = tensor::Add(data_loss, tensor::MulScalar(lquery, options_.lambda));
    }

    loss.Backward();
    optimizer_.Step();

    stats.data_loss += static_cast<double>(data_loss.item());
    stats.query_loss += step_query_loss;
    ++steps;
    tuples += bs;
  }

  if (steps > 0) {
    stats.data_loss /= static_cast<double>(steps);
    stats.query_loss /= static_cast<double>(steps);
  }
  stats.raw_qerror = raw_q_count > 0 ? raw_q_sum / static_cast<double>(raw_q_count) : 0.0;
  stats.seconds = timer.Seconds();
  stats.tuples_per_second =
      stats.seconds > 0.0 ? static_cast<double>(tuples) / stats.seconds : 0.0;
  return stats;
}

std::vector<EpochStats> DuetTrainer::Train(
    const std::function<void(const EpochStats&)>& on_epoch) {
  std::vector<EpochStats> history;
  history.reserve(static_cast<size_t>(options_.epochs));
  for (int e = 0; e < options_.epochs; ++e) {
    history.push_back(TrainEpoch(e));
    if (on_epoch) on_epoch(history.back());
  }
  return history;
}

}  // namespace duet::core
