// The Duet model: a predicate-conditioned autoregressive network
// (paper Sec. IV) plus the sampling-free estimator (Algorithm 3).
//
// The MADE network consumes one predicate block per column
// ([value_enc | op one-hot], all zeros for wildcards) and emits one logit
// block per column over that column's distinct values. Selectivity of a
// query is the product over columns of the predicate-mask-weighted softmax
// mass of each block — a single forward pass, no sampling, deterministic,
// and differentiable end to end (which is what enables hybrid training).
//
// This class covers the paper's main configuration: at most one predicate
// per column ("direct mode"). Multi-predicate support via MPSN lives in
// core/mpsn_model.h.
#ifndef DUET_CORE_DUET_MODEL_H_
#define DUET_CORE_DUET_MODEL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/encoding.h"
#include "core/sampler.h"
#include "nn/backbone.h"
#include "nn/made.h"
#include "nn/module.h"
#include "nn/transformer.h"
#include "query/estimator.h"
#include "query/query.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::core {

/// Which autoregressive network carries the model (paper Sec. V-A4: MADE is
/// evaluated; a Transformer is anticipated as the higher-capacity variant).
enum class DuetBackbone : int32_t {
  kMade = 0,
  kTransformer = 1,
};

/// Architecture knobs (defaults follow the paper's Sec. V-A4 choices).
struct DuetModelOptions {
  /// MADE hidden sizes; the paper uses {512,256,512,128,1024} for DMV and
  /// 2x128 ResMADE for Kddcup98/Census.
  std::vector<int64_t> hidden_sizes = {256, 256};
  /// Use ResMADE residual blocks instead of a plain masked MLP.
  bool residual = false;
  /// Backbone selection; kMade reproduces the paper's evaluation.
  DuetBackbone backbone = DuetBackbone::kMade;
  /// Transformer architecture (used only when backbone == kTransformer).
  nn::TransformerConfig transformer;
  EncodingOptions encoding;
  uint64_t seed = 1;
};

/// Per-phase estimation cost accumulators (Fig. 6 / Fig. 7 breakdowns).
struct PhaseTimes {
  double encode_ms = 0.0;
  double forward_ms = 0.0;
  double post_ms = 0.0;  // softmax + zero-out mask + product
  double total_ms() const { return encode_ms + forward_ms + post_ms; }
  void Clear() { encode_ms = forward_ms = post_ms = 0.0; }
};

/// Algorithm 3 tail for one query row: per constrained block, the masked
/// softmax mass of that query's code range, accumulated as a log-space
/// product. Shared by the scalar and batched inference paths — and by
/// artifact-loaded models (artifact/artifact.h) — because the batch API
/// contract and the artifact bitwise-identity contract both require every
/// estimator to run exactly this loop; there is deliberately only one copy.
/// Returns false for a contradictory query (some range empty).
bool MaskedLogSelectivity(const float* logits_row, const std::vector<tensor::BlockSpec>& blocks,
                          const std::vector<query::CodeRange>& ranges, int num_columns,
                          double* log_sel_out);

/// Duet model (direct mode).
class DuetModel : public nn::Module {
 public:
  DuetModel(const data::Table& table, DuetModelOptions options);

  // ----- training-side API (differentiable) -----

  /// Encodes a sampled virtual batch into the network input (constants).
  tensor::Tensor EncodeVirtualBatch(const VirtualBatch& batch) const;

  /// Raw logits for an encoded input.
  tensor::Tensor ForwardLogits(const tensor::Tensor& x) const;

  /// Cross-entropy L_data for a virtual batch (mean over rows of the summed
  /// per-column NLL of the anchor labels).
  tensor::Tensor DataLoss(const VirtualBatch& batch) const;

  /// Differentiable selectivity for a batch of queries: one forward pass,
  /// then per-column masked sums and a log-space product (Algorithm 3 with
  /// gradients). Queries must have at most one predicate per column.
  tensor::Tensor SelectivityBatch(const std::vector<query::Query>& queries) const;

  // ----- inference-side API (no autograd) -----
  //
  // Thread-safety: both estimation entry points below are safe to call
  // concurrently from multiple threads while THIS instance's parameters are
  // unchanging (the encoder is stateless, activations live in per-thread
  // inference arenas, and the masked-weight cache publishes under its own
  // lock). The PhaseTimes accumulators are guarded by an internal mutex.
  // Training-side methods and optimizer steps must NOT run concurrently
  // with estimation *on the same instance* — online updates instead train
  // a clone (core::CloneModel) and publish it as an immutable snapshot
  // while the served instance keeps estimating (serve/model_registry.h);
  // training a different instance concurrently is safe, and a frozen
  // instance's pinned caches ignore the version bumps it causes.

  /// Algorithm 3 for a single query; deterministic. Returns selectivity in
  /// [0, 1]; queries with an empty predicate range return exactly 0.
  double EstimateSelectivity(const query::Query& query) const;

  /// Batched inference (the GPU-batching stand-in used by throughput
  /// benches): one forward pass for all queries.
  std::vector<double> EstimateSelectivityBatch(const std::vector<query::Query>& queries) const;

  // ----- inference configuration -----

  /// Selects the packed-weight backend used by all masked layers on the
  /// no-grad estimation paths (tensor/packed_weights.h): kDenseF32 keeps
  /// today's bitwise-exact behavior, kCsrF32 streams only nonzero masked
  /// weights (also bitwise-exact), kInt8 quarters weight traffic at bounded
  /// accuracy cost, kF16 halves it at a much tighter bound. Layers repack
  /// (and the plan recompiles) lazily on the next forward. Const because
  /// only inference caches are reconfigured — but configure before sharing
  /// the model with serving threads: a switch racing in-flight estimates is
  /// memory-safe yet a racing forward may serve either backend (see
  /// nn/layers.h; published snapshots are configured once at publish time).
  void SetInferenceBackend(tensor::WeightBackend backend) const override {
    net_->SetInferenceBackend(backend);
  }

  /// Declares the parameters permanently frozen and pins the backbone's
  /// pack/plan caches to `stamp` (snapshot publication; see nn/module.h).
  /// After this call the model must never be trained again.
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) const override {
    net_->FreezeInferenceCaches(stamp);
  }

  /// Bytes currently held by the packed-weight caches including the
  /// compiled plan (0 until the first no-grad forward populates them).
  uint64_t CachedBytes() const override { return net_->CachedBytes(); }

  /// Compiled-plan controls/observability, forwarded to the backbone (the
  /// MADE backbone compiles plans; the Transformer falls back to the
  /// uncompiled path and reports zeros).
  void SetPlanEnabled(bool enabled) const override { net_->SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return net_->PlanBytes(); }
  nn::PlanTelemetry PlanInfo() const override { return net_->PlanInfo(); }

  // ----- introspection -----

  const data::Table& table() const { return table_; }
  /// Architecture the model was built with (what core::CloneModel replays).
  const DuetModelOptions& options() const { return options_; }
  const DuetInputEncoder& encoder() const { return encoder_; }
  /// The autoregressive network (MADE or BlockTransformer).
  const nn::Backbone& backbone() const { return *net_; }
  /// Profiling accumulators. Read/Clear only while no estimation is in
  /// flight; accumulation itself is internally locked so concurrent sharded
  /// estimation stays race-free.
  PhaseTimes& phase_times() const { return phase_times_; }

 private:
  /// Builds the zero-out mask row (out_dim floats) from per-column ranges.
  void FillMaskRow(const std::vector<query::CodeRange>& ranges, float* dst) const;

  /// Locked accumulation into one PhaseTimes field.
  void AddPhaseTime(double PhaseTimes::*field, double ms) const {
    std::lock_guard<std::mutex> lock(*phase_mu_);
    phase_times_.*field += ms;
  }

  const data::Table& table_;
  DuetModelOptions options_;
  DuetInputEncoder encoder_;
  std::unique_ptr<nn::Backbone> net_;
  // Profiling accumulators; guarded so concurrent sharded estimation (the
  // serving engine) does not race on them. The mutex is heap-held so the
  // model stays movable (tests return models by value).
  mutable std::unique_ptr<std::mutex> phase_mu_ = std::make_unique<std::mutex>();
  mutable PhaseTimes phase_times_;
};

/// CardinalityEstimator adapter over a trained DuetModel.
class DuetEstimator : public query::CardinalityEstimator {
 public:
  DuetEstimator(const DuetModel& model, std::string name = "Duet")
      : model_(model), name_(std::move(name)) {}

  double EstimateSelectivity(const query::Query& query) override {
    return model_.EstimateSelectivity(query);
  }
  std::vector<double> EstimateSelectivityBatch(
      const std::vector<query::Query>& queries) override {
    return model_.EstimateSelectivityBatch(queries);
  }
  void SetInferenceBackend(tensor::WeightBackend backend) override {
    model_.SetInferenceBackend(backend);
  }
  void FreezeInferenceCaches(const tensor::SnapshotStamp& stamp) override {
    model_.FreezeInferenceCaches(stamp);
  }
  uint64_t PackedWeightBytes() const override { return model_.CachedBytes(); }
  void SetPlanEnabled(bool enabled) override { model_.SetPlanEnabled(enabled); }
  uint64_t PlanBytes() const override { return model_.PlanBytes(); }
  uint64_t PlanCompileMicros() const override { return model_.PlanInfo().compile_micros; }
  uint64_t PlanCacheHits() const override { return model_.PlanInfo().cache_hits; }
  std::string name() const override { return name_; }
  double SizeMB() const override { return model_.SizeMB(); }

 private:
  const DuetModel& model_;
  std::string name_;
};

}  // namespace duet::core

#endif  // DUET_CORE_DUET_MODEL_H_
