#include "core/finetune.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "query/estimator.h"
#include "serve/fault_injector.h"

namespace duet::core {

namespace {

/// Mean and max Q-error of the model over a workload.
std::pair<double, double> Score(const DuetModel& model, const query::Workload& workload) {
  double sum = 0.0, mx = 0.0;
  const int64_t rows = model.table().num_rows();
  for (const query::LabeledQuery& lq : workload) {
    const double est = std::max(1.0, model.EstimateSelectivity(lq.query) *
                                         static_cast<double>(rows));
    const double err = query::QError(est, static_cast<double>(lq.cardinality));
    sum += err;
    mx = std::max(mx, err);
  }
  return {workload.empty() ? 0.0 : sum / static_cast<double>(workload.size()), mx};
}

}  // namespace

query::Workload CollectHighErrorQueries(const DuetModel& model, const query::Workload& served,
                                        const FineTuneOptions& options) {
  DUET_CHECK_GT(options.qerror_threshold, 1.0);
  DUET_CHECK_GT(options.max_queries, 0);
  const int64_t rows = model.table().num_rows();
  std::vector<std::pair<double, size_t>> errors;  // (qerror, index)
  for (size_t i = 0; i < served.size(); ++i) {
    const double est = std::max(1.0, model.EstimateSelectivity(served[i].query) *
                                         static_cast<double>(rows));
    const double err = query::QError(est, static_cast<double>(served[i].cardinality));
    if (err > options.qerror_threshold) errors.emplace_back(err, i);
  }
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (static_cast<int>(errors.size()) > options.max_queries) {
    errors.resize(static_cast<size_t>(options.max_queries));
  }
  query::Workload collected;
  collected.reserve(errors.size());
  for (const auto& [err, idx] : errors) collected.push_back(served[idx]);
  return collected;
}

FineTuneReport FineTune(DuetModel& model, const query::Workload& served,
                        const FineTuneOptions& options) {
  FineTuneReport report;
  report.collected = CollectHighErrorQueries(model, served, options);
  if (report.collected.empty()) return report;

  std::tie(report.before_mean, report.before_max) = Score(model, report.collected);

  // The whole fine-tuning round mutates model parameters; the RAII guard
  // bumps tensor::ParameterVersion() when it ends (even on an early abort),
  // so post-tune estimation can never serve packs of the pre-tune weights —
  // without relying on every inner code path remembering the ad-hoc bump.
  tensor::ParameterMutationGuard mutation;

  TrainOptions topt;
  topt.epochs = options.epochs;
  topt.batch_size = options.batch_size;
  topt.learning_rate = options.learning_rate;
  topt.lambda = options.lambda;
  topt.expand = options.expand;
  topt.wildcard_prob = options.wildcard_prob;
  topt.max_rows_per_epoch = options.max_anchor_rows;
  topt.train_workload = &report.collected;
  if (options.use_importance_sampling) topt.importance_workload = &report.collected;
  topt.seed = options.seed;
  DuetTrainer trainer(model, topt);
  report.epochs = trainer.Train();

  std::tie(report.after_mean, report.after_max) = Score(model, report.collected);
  return report;
}

std::unique_ptr<DuetModel> CloneModel(const DuetModel& model) {
  auto clone = std::make_unique<DuetModel>(model.table(), model.options());
  // Direct tensor-to-tensor copy (Module::CopyParametersFrom): bitwise what
  // the old Save/Load round-trip produced, without materializing a
  // serialized image of the model — a clone transiently costs one model of
  // fresh memory, not two, which is what bounds an update round's peak at
  // zoo scale (UpdateWorkerStats::clone_peak_bytes). CopyParametersFrom
  // bumps the version counter, which the clone's cold caches key on — the
  // source's caches are untouched, and a pinned source ignores the bump
  // entirely.
  clone->CopyParametersFrom(model);
  return clone;
}

double MedianQError(const DuetModel& model, const query::Workload& workload) {
  if (workload.empty()) return 0.0;
  std::vector<query::Query> queries;
  queries.reserve(workload.size());
  for (const query::LabeledQuery& lq : workload) queries.push_back(lq.query);
  const std::vector<double> sels = model.EstimateSelectivityBatch(queries);
  const double rows = static_cast<double>(model.table().num_rows());
  std::vector<double> qerrs;
  qerrs.reserve(sels.size());
  for (size_t i = 0; i < sels.size(); ++i) {
    // A NaN/inf estimate means the model diverged; ClampSelectivity would
    // quietly map it to 0 (q-error == actual), which can look *good* on
    // low-cardinality holdouts. Score it as infinitely wrong instead so the
    // acceptance gate can never publish a divergent candidate.
    if (!std::isfinite(sels[i])) {
      qerrs.push_back(std::numeric_limits<double>::infinity());
      continue;
    }
    const double est =
        std::max(1.0, query::CardinalityEstimator::ClampSelectivity(sels[i]) * rows);
    qerrs.push_back(query::QError(est, static_cast<double>(workload[i].cardinality)));
  }
  std::sort(qerrs.begin(), qerrs.end());
  return qerrs[qerrs.size() / 2];
}

OnlineUpdateResult CloneAndFineTune(const DuetModel& base, const query::Workload& feedback,
                                    const query::Workload& holdout,
                                    const OnlineUpdateOptions& options) {
  DUET_CHECK_GE(options.max_regression, 1.0);
  OnlineUpdateResult result;
  result.model = CloneModel(base);
  result.holdout_before = MedianQError(*result.model, holdout);
  result.report = FineTune(*result.model, feedback, options.finetune);
  // Fault point: a divergent fine-tune round (bad feedback, too-hot learning
  // rate) drives the candidate's weights to NaN. The holdout gate below must
  // catch it and roll back — the poisoned candidate can never publish.
  if (serve::FaultInjector::ShouldFail(serve::FaultPoint::kFineTuneDiverge)) {
    tensor::ParameterMutationGuard mutation;
    for (const tensor::Tensor& p : result.model->parameters()) {
      tensor::Tensor param = p;  // shared handle onto the same storage
      float* data = param.data();
      for (int64_t i = 0; i < param.numel(); ++i) {
        data[i] = std::numeric_limits<float>::quiet_NaN();
      }
    }
  }
  result.holdout_after = MedianQError(*result.model, holdout);
  // The gate validates on pairs the tuning never saw: a fine-tune that only
  // memorized a poisoned/unrepresentative feedback batch regresses here and
  // is rolled back. An empty collection means the clone equals the base —
  // nothing worth publishing either.
  result.accepted = !result.report.collected.empty() && !holdout.empty() &&
                    std::isfinite(result.holdout_after) &&
                    result.holdout_after <= result.holdout_before * options.max_regression;
  return result;
}

}  // namespace duet::core
