// First-order optimizers over parameter tensors (Adam and SGD).
//
// The paper trains MADE/ResMADE models with Adam; SGD is kept for tests and
// ablations.
#ifndef DUET_TENSOR_OPTIMIZER_H_
#define DUET_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace duet::tensor {

/// Common optimizer interface: call ZeroGrad(), build loss, loss.Backward(),
/// then Step().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  /// Clears gradients of all managed parameters.
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Adam (Kingma & Ba) with optional weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace duet::tensor

#endif  // DUET_TENSOR_OPTIMIZER_H_
