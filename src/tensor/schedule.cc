#include "tensor/schedule.h"

#include <cmath>

#include "common/logging.h"

namespace duet::tensor {

StepDecayLr::StepDecayLr(float base_lr, int64_t step_size, float gamma)
    : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {
  DUET_CHECK_GT(step_size, 0);
}

float StepDecayLr::LrAt(int64_t step) const {
  const int64_t k = step / step_size_;
  return base_lr_ * std::pow(gamma_, static_cast<float>(k));
}

WarmupCosineLr::WarmupCosineLr(float base_lr, int64_t warmup_steps, int64_t total_steps,
                               float min_lr)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      min_lr_(min_lr) {
  DUET_CHECK_GE(warmup_steps, 0);
  DUET_CHECK_GT(total_steps, warmup_steps);
}

float WarmupCosineLr::LrAt(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return min_lr_;
  const double progress = static_cast<double>(step - warmup_steps_) /
                          static_cast<double>(total_steps_ - warmup_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(progress * 3.14159265358979323846));
  return static_cast<float>(min_lr_ + (base_lr_ - min_lr_) * cosine);
}

double ClipGradNorm(const std::vector<Tensor>& params, double max_norm) {
  DUET_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (const Tensor& p : params) {
    if (!p.defined()) continue;
    const std::vector<float>& g = p.grad_vector();
    for (float v : g) sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const Tensor& p : params) {
      if (!p.defined()) continue;
      // Tensor is a shared handle; a copy aliases the same storage.
      Tensor alias = p;
      float* g = alias.grad_data();
      const int64_t n = p.numel();
      for (int64_t i = 0; i < n; ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace duet::tensor
