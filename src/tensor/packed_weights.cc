#include "tensor/packed_weights.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "serve/fault_injector.h"
#include "tensor/simd_dispatch.h"

namespace duet::tensor {

namespace {

/// Process-wide PackWeights invocation count; see PackWeightsCalls().
std::atomic<uint64_t> g_pack_calls{0};

/// Same work threshold as the dense GEMM: parallelize only when the dense
/// equivalent would (CSR does strictly less work, so this is conservative).
inline bool PackedParallel(int64_t m, int64_t k, int64_t n) {
  return m * k * n > (1 << 18);
}

/// CSR row sweep for one input row of `a`: for k ascending, add
/// av * W[k, :]'s nonzero runs into the output row with contiguous SIMD
/// inner loops. Per output element the nonzero terms arrive k-ascending —
/// the same order as the dense kernels — and the skipped terms are exact
/// zeros, so this is bitwise-equal to the dense accumulation (a skipped
/// +-0.0f term never changes a finite accumulator that is never -0.0).
/// Templated over the run-bound width. For permuted packs the output row is
/// in PACKED column space (typically one run per row); the epilogue gathers.
template <typename Idx>
inline void CsrRowAccumT(const simd::KernelTable& kt, const PackedWeights& w,
                         const Idx* run_start, const Idx* run_len, const float* arow,
                         float* crow) {
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;  // input sparsity: one-hot / wildcard zeros
    const float* vals = w.values.data() + w.val_ptr[static_cast<size_t>(k)];
    const int32_t r0 = w.row_ptr[static_cast<size_t>(k)];
    const int32_t r1 = w.row_ptr[static_cast<size_t>(k) + 1];
    for (int32_t r = r0; r < r1; ++r) {
      const int64_t len = run_len[r];
      kt.axpy_f32(av, vals, crow + run_start[r], len);
      vals += len;
    }
  }
}

inline void CsrRowAccum(const simd::KernelTable& kt, const PackedWeights& w,
                        const float* arow, float* crow) {
  if (w.run_start32.empty()) {
    CsrRowAccumT(kt, w, w.run_start16.data(), w.run_len16.data(), arow, crow);
  } else {
    CsrRowAccumT(kt, w, w.run_start32.data(), w.run_len32.data(), arow, crow);
  }
}

/// Per-row nonzero prefix length in packed column space: permuted packs stop
/// each row sweep here and skip the structural-zero tail; identity packs
/// sweep the full width.
inline int64_t RowPrefixLen(const PackedWeights& w, int64_t k) {
  if (!w.row_len16.empty()) return w.row_len16[static_cast<size_t>(k)];
  if (!w.row_len32.empty()) return w.row_len32[static_cast<size_t>(k)];
  return w.out;
}

/// Dense fp32 row sweep with the prefix skip (permuted packs) — the same
/// k-ascending zero-skip accumulation as the dense GEMV fast path, so the
/// gathered result is bitwise-equal to the unpermuted kernels.
inline void DenseRowAccum(const simd::KernelTable& kt, const PackedWeights& w,
                          const float* arow, float* crow) {
  const float* wp = w.dense_data();
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;
    kt.axpy_f32(av, wp + k * w.out, crow, RowPrefixLen(w, k));
  }
}

/// Int8 row sweep for one input row: fp32 accumulation of av * q[k, :]. The
/// dequantization scale is applied once per output in the epilogue, not per
/// term, so the accumulator stays a plain fp32 dot product.
inline void Int8RowAccum(const simd::KernelTable& kt, const PackedWeights& w,
                         const float* arow, float* crow) {
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;
    kt.axpy_i8(av, w.quantized.data() + k * w.out, crow, RowPrefixLen(w, k));
  }
}

/// binary16 row sweep: decode-on-load (the half->float widening IS the
/// dequantization), fp32 accumulation, same prefix skip as dense. The
/// decode form (VCVTPH2PS on the vector tiers vs. the branchless software
/// widening) is chosen by the dispatch table at runtime; both are exact, so
/// the result is bitwise-identical across tiers (simd_dispatch.h).
inline void F16RowAccum(const simd::KernelTable& kt, const PackedWeights& w,
                        const float* arow, float* crow) {
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;
    kt.axpy_f16(av, w.half.data() + k * w.out, crow, RowPrefixLen(w, k));
  }
}

/// Int4 row sweep: nibble decode + per-group dequant fused into the sweep
/// (the scale varies along k, so it cannot wait for the epilogue), fp32
/// accumulation, same prefix skip as dense. Row k's scale row is the
/// group-major slice group_scales[(k / kInt4GroupSize) * out ..].
inline void Int4RowAccum(const simd::KernelTable& kt, const PackedWeights& w,
                         const float* arow, float* crow) {
  const int64_t row_bytes = (w.out + 1) / 2;
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;
    const uint8_t* nrow = w.nibbles.data() + k * row_bytes;
    const float* gs = w.group_scales.data() + (k / kInt4GroupSize) * w.out;
    kt.axpy_i4(av, nrow, gs, crow, RowPrefixLen(w, k));
  }
}

/// Packed-space row accumulation for every non-dense-identity layout.
inline void PackedRowAccum(const simd::KernelTable& kt, const PackedWeights& w,
                           const float* arow, float* crow) {
  switch (w.backend) {
    case WeightBackend::kDenseF32:
      DenseRowAccum(kt, w, arow, crow);
      break;
    case WeightBackend::kCsrF32:
      CsrRowAccum(kt, w, arow, crow);
      break;
    case WeightBackend::kInt8:
      Int8RowAccum(kt, w, arow, crow);
      break;
    case WeightBackend::kF16:
      F16RowAccum(kt, w, arow, crow);
      break;
    case WeightBackend::kInt4:
      Int4RowAccum(kt, w, arow, crow);
      break;
  }
}

/// Fused bias + activation epilogue over [B, O] rows in place (identity
/// layout); the expressions match RawBiasAct / MatMulBiasAct's epilogue
/// exactly so the CSR path stays bitwise-equal to dense. `scales` (int8
/// only) folds the per-channel dequantization into the same pass:
/// y = act(acc * scale + bias).
void BiasActEpilogue(float* c, int64_t b, int64_t o, const float* bias, const float* scales,
                     Activation act, bool parallel) {
  if (scales == nullptr) {
    RawBiasAct(c, bias, b, o, act, parallel);
    return;
  }
  ParallelForChunked(
      0, b,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          float* crow = c + r * o;
#pragma omp simd
          for (int64_t j = 0; j < o; ++j) crow[j] = crow[j] * scales[j] + bias[j];
          switch (act) {
            case Activation::kNone:
              break;
            case Activation::kRelu:
#pragma omp simd
              for (int64_t j = 0; j < o; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
              break;
            case Activation::kSigmoid:
              for (int64_t j = 0; j < o; ++j) crow[j] = 1.0f / (1.0f + std::exp(-crow[j]));
              break;
            case Activation::kTanh:
              for (int64_t j = 0; j < o; ++j) crow[j] = std::tanh(crow[j]);
              break;
          }
        }
      },
      parallel, /*grain=*/8);
}

/// Gather for one row of a permuted pack: pure data movement from packed
/// positions back to ORIGINAL column order (dst[j] = acc[unperm[j]]).
/// Scale/bias/activation are NOT applied here — the caller runs the same
/// shared epilogue as the identity layout afterwards, so there is exactly
/// one bias+activation implementation in the tree and the permuted path is
/// bitwise-equal to the identity path by construction.
inline void GatherRow(const PackedWeights& w, const float* acc, float* dst) {
  if (!w.unperm16.empty()) {
    const uint16_t* unperm = w.unperm16.data();
    for (int64_t j = 0; j < w.out; ++j) dst[j] = acc[unperm[j]];
  } else {
    const int32_t* unperm = w.unperm32.data();
    for (int64_t j = 0; j < w.out; ++j) dst[j] = acc[unperm[j]];
  }
}

}  // namespace

const char* WeightBackendName(WeightBackend backend) {
  switch (backend) {
    case WeightBackend::kDenseF32: return "dense";
    case WeightBackend::kCsrF32: return "csr";
    case WeightBackend::kInt8: return "int8";
    case WeightBackend::kF16: return "f16";
    case WeightBackend::kInt4: return "int4";
  }
  return "unknown";
}

bool ParseWeightBackend(const std::string& name, WeightBackend* out) {
  if (name == "dense") { *out = WeightBackend::kDenseF32; return true; }
  if (name == "csr") { *out = WeightBackend::kCsrF32; return true; }
  if (name == "int8") { *out = WeightBackend::kInt8; return true; }
  if (name == "f16") { *out = WeightBackend::kF16; return true; }
  if (name == "int4") { *out = WeightBackend::kInt4; return true; }
  return false;
}

uint16_t FloatToHalf(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  const uint32_t mag = x & 0x7fffffffu;
  if (mag >= 0x7f800000u) {  // inf / NaN (quiet NaN payload collapses)
    return static_cast<uint16_t>(sign | 0x7c00u | (mag > 0x7f800000u ? 0x200u : 0u));
  }
  if (mag >= 0x47800000u) return static_cast<uint16_t>(sign | 0x7c00u);  // overflow -> inf
  const int32_t exp = static_cast<int32_t>(mag >> 23);
  uint32_t man = mag & 0x7fffffu;
  if (exp < 113) {
    // Subnormal half (or zero): values at or below 2^-25 round to zero
    // (round-to-nearest-even at the halfway point 2^-25 itself).
    if (mag <= 0x33000000u) return sign;
    man |= 0x800000u;  // make the implicit bit explicit
    const int32_t shift = (113 - exp) + 13;
    uint32_t half_man = man >> shift;
    const uint32_t rem = man & ((1u << shift) - 1u);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_man & 1u))) ++half_man;
    return static_cast<uint16_t>(sign | half_man);
  }
  // Normal: round the 13 dropped mantissa bits to nearest-even; a mantissa
  // carry correctly bumps the exponent (up to inf for values >= 65520).
  uint32_t out = static_cast<uint32_t>((exp - 112) << 10) | (man >> 13);
  const uint32_t rem = man & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<uint16_t>(sign | out);
}

uint64_t PackedWeights::bytes() const {
  uint64_t total = (unperm16.size() + row_len16.size()) * sizeof(uint16_t) +
                   (unperm32.size() + row_len32.size()) * sizeof(int32_t);
  switch (backend) {
    case WeightBackend::kDenseF32:
      total += static_cast<uint64_t>(in) * static_cast<uint64_t>(out) * sizeof(float);
      break;
    case WeightBackend::kCsrF32:
      total += (row_ptr.size() + val_ptr.size()) * sizeof(int32_t) +
               (run_start16.size() + run_len16.size()) * sizeof(uint16_t) +
               (run_start32.size() + run_len32.size()) * sizeof(int32_t) +
               values.size() * sizeof(float);
      break;
    case WeightBackend::kInt8:
      total += quantized.size() * sizeof(int8_t) + scales.size() * sizeof(float);
      break;
    case WeightBackend::kF16:
      total += half.size() * sizeof(uint16_t);
      break;
    case WeightBackend::kInt4:
      total += nibbles.size() * sizeof(uint8_t) + group_scales.size() * sizeof(float);
      break;
  }
  return total;
}

int64_t PackedWeights::nnz() const {
  if (backend == WeightBackend::kCsrF32) return static_cast<int64_t>(values.size());
  return in * out;
}

std::vector<int32_t> DegreeSortPermutation(const Tensor& w) {
  DUET_CHECK_EQ(w.ndim(), 2);
  const int64_t in = w.dim(0), out = w.dim(1);
  const float* wp = w.data();
  std::vector<int64_t> count(static_cast<size_t>(out), 0);
  for (int64_t k = 0; k < in; ++k) {
    const float* row = wp + k * out;
    for (int64_t j = 0; j < out; ++j) count[static_cast<size_t>(j)] += row[j] != 0.0f;
  }
  std::vector<int32_t> perm(static_cast<size_t>(out));
  std::iota(perm.begin(), perm.end(), 0);
  // Descending nonzero count == descending MADE out-degree (hidden rule
  // out_deg >= in_deg admits more rows at higher degree; strict rule is
  // monotone the same way), so every row's allowed columns become a prefix.
  // Stable: equal-degree columns keep their original relative order.
  std::stable_sort(perm.begin(), perm.end(), [&](int32_t a, int32_t b) {
    return count[static_cast<size_t>(a)] > count[static_cast<size_t>(b)];
  });
  bool identity = true;
  for (int64_t j = 0; j < out; ++j) identity &= perm[static_cast<size_t>(j)] == j;
  if (identity) return {};
  return perm;
}

uint64_t PackWeightsCalls() { return g_pack_calls.load(std::memory_order_relaxed); }

std::shared_ptr<const PackedWeights> PackWeights(const Tensor& w, WeightBackend backend,
                                                 const std::vector<int32_t>* perm) {
  DUET_CHECK_EQ(w.ndim(), 2);
  g_pack_calls.fetch_add(1, std::memory_order_relaxed);
  // Fault point: repacking runs lazily on the first forward under a new
  // backend/version — a failure here surfaces mid-estimate and must degrade
  // that dispatch, not take the process down.
  serve::FaultInjector::MaybeThrow(serve::FaultPoint::kPackWeights,
                                   "injected weight-pack failure");
  auto packed = std::make_shared<PackedWeights>();
  packed->backend = backend;
  packed->in = w.dim(0);
  packed->out = w.dim(1);
  const int64_t in = packed->in, out = packed->out;
  const float* wp = w.data();
  const bool narrow = out <= 65535;

  if (perm != nullptr && perm->empty()) perm = nullptr;  // identity shortcut
  // Permuted view accessor: packed column p holds original column perm[p].
  auto at = [&](int64_t k, int64_t p) -> float {
    const int64_t j = perm ? (*perm)[static_cast<size_t>(p)] : p;
    return wp[k * out + j];
  };
  if (perm != nullptr) {
    DUET_CHECK_EQ(static_cast<int64_t>(perm->size()), out);
    if (narrow) {
      packed->unperm16.assign(static_cast<size_t>(out), 0);
      for (int64_t p = 0; p < out; ++p) {
        packed->unperm16[static_cast<size_t>((*perm)[static_cast<size_t>(p)])] =
            static_cast<uint16_t>(p);
      }
    } else {
      packed->unperm32.assign(static_cast<size_t>(out), 0);
      for (int64_t p = 0; p < out; ++p) {
        packed->unperm32[static_cast<size_t>((*perm)[static_cast<size_t>(p)])] =
            static_cast<int32_t>(p);
      }
    }
    if (backend != WeightBackend::kCsrF32) {
      // Per-row nonzero prefix length: the row sweeps stop here. (CSR rows
      // carry their own run bounds instead.)
      if (narrow) packed->row_len16.reserve(static_cast<size_t>(in));
      else packed->row_len32.reserve(static_cast<size_t>(in));
      for (int64_t k = 0; k < in; ++k) {
        int64_t len = out;
        while (len > 0 && at(k, len - 1) == 0.0f) --len;
        if (narrow) packed->row_len16.push_back(static_cast<uint16_t>(len));
        else packed->row_len32.push_back(static_cast<int32_t>(len));
      }
    }
  }

  switch (backend) {
    case WeightBackend::kDenseF32:
      if (perm == nullptr) {
        // Shares the input handle: the caller hands over an immutable,
        // non-pooled materialization (layers pass a fresh W o M copy), so no
        // second dense buffer is allocated.
        packed->dense = w;
      } else {
        std::vector<float> pw(static_cast<size_t>(in * out));
        for (int64_t k = 0; k < in; ++k) {
          for (int64_t p = 0; p < out; ++p) pw[static_cast<size_t>(k * out + p)] = at(k, p);
        }
        packed->dense = Tensor::FromVector({in, out}, std::move(pw));
      }
      break;

    case WeightBackend::kCsrF32: {
      packed->row_ptr.reserve(static_cast<size_t>(in) + 1);
      packed->val_ptr.reserve(static_cast<size_t>(in) + 1);
      packed->row_ptr.push_back(0);
      packed->val_ptr.push_back(0);
      for (int64_t k = 0; k < in; ++k) {
        int64_t j = 0;
        while (j < out) {
          // -0.0f == 0.0f, so masked-out entries (w * 0.0f may be -0.0f for
          // negative w) are dropped along with exact zeros.
          if (at(k, j) == 0.0f) {
            ++j;
            continue;
          }
          const int64_t start = j;
          while (j < out && at(k, j) != 0.0f) {
            packed->values.push_back(at(k, j));
            ++j;
          }
          if (narrow) {
            packed->run_start16.push_back(static_cast<uint16_t>(start));
            packed->run_len16.push_back(static_cast<uint16_t>(j - start));
          } else {
            packed->run_start32.push_back(static_cast<int32_t>(start));
            packed->run_len32.push_back(static_cast<int32_t>(j - start));
          }
        }
        packed->row_ptr.push_back(static_cast<int32_t>(
            narrow ? packed->run_start16.size() : packed->run_start32.size()));
        packed->val_ptr.push_back(static_cast<int32_t>(packed->values.size()));
      }
      break;
    }

    case WeightBackend::kInt8: {
      // Scales stay in ORIGINAL column order (the gathering epilogue indexes
      // them by original j); only the quantized payload is permuted.
      packed->scales.assign(static_cast<size_t>(out), 0.0f);
      for (int64_t k = 0; k < in; ++k) {
        const float* row = wp + k * out;
        for (int64_t j = 0; j < out; ++j) {
          packed->scales[static_cast<size_t>(j)] =
              std::max(packed->scales[static_cast<size_t>(j)], std::fabs(row[j]));
        }
      }
      std::vector<float> inv(static_cast<size_t>(out), 0.0f);
      for (int64_t j = 0; j < out; ++j) {
        float& s = packed->scales[static_cast<size_t>(j)];
        s /= 127.0f;  // symmetric: q in [-127, 127], 0.0 maps to q == 0
        if (s > 0.0f) inv[static_cast<size_t>(j)] = 1.0f / s;
      }
      packed->quantized.resize(static_cast<size_t>(in * out));
      for (int64_t k = 0; k < in; ++k) {
        int8_t* qrow = packed->quantized.data() + k * out;
        for (int64_t p = 0; p < out; ++p) {
          const int64_t j = perm ? (*perm)[static_cast<size_t>(p)] : p;
          const float q = std::nearbyint(wp[k * out + j] * inv[static_cast<size_t>(j)]);
          qrow[p] = static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
        }
      }
      break;
    }

    case WeightBackend::kF16: {
      packed->half.resize(static_cast<size_t>(in * out));
      for (int64_t k = 0; k < in; ++k) {
        uint16_t* hrow = packed->half.data() + k * out;
        for (int64_t p = 0; p < out; ++p) hrow[p] = FloatToHalf(at(k, p));
      }
      break;
    }

    case WeightBackend::kInt4: {
      // Group-of-kInt4GroupSize scales along k, PACKED column order (the
      // sweep consumes them pre-gather): s[g][p] = max_{k in g} |W[k,p]| / 7.
      const int64_t groups = (in + kInt4GroupSize - 1) / kInt4GroupSize;
      packed->group_scales.assign(static_cast<size_t>(groups * out), 0.0f);
      for (int64_t k = 0; k < in; ++k) {
        float* gs = packed->group_scales.data() + (k / kInt4GroupSize) * out;
        for (int64_t p = 0; p < out; ++p) {
          gs[p] = std::max(gs[p], std::fabs(at(k, p)));
        }
      }
      std::vector<float> inv(static_cast<size_t>(groups * out), 0.0f);
      for (int64_t i = 0; i < groups * out; ++i) {
        float& s = packed->group_scales[static_cast<size_t>(i)];
        s /= 7.0f;  // symmetric: q in [-7, 7], 0.0 maps to q == 0
        if (s > 0.0f) inv[static_cast<size_t>(i)] = 1.0f / s;
      }
      const int64_t row_bytes = (out + 1) / 2;
      packed->nibbles.assign(static_cast<size_t>(in * row_bytes), 0);
      for (int64_t k = 0; k < in; ++k) {
        uint8_t* nrow = packed->nibbles.data() + k * row_bytes;
        const float* ginv = inv.data() + (k / kInt4GroupSize) * out;
        for (int64_t p = 0; p < out; ++p) {
          const float q = std::nearbyint(at(k, p) * ginv[static_cast<size_t>(p)]);
          const int32_t qi = static_cast<int32_t>(std::clamp(q, -7.0f, 7.0f));
          nrow[p >> 1] |= static_cast<uint8_t>((qi & 0xF) << ((p & 1) * 4));
        }
      }
      break;
    }
  }
  return packed;
}

void PackedGemv(const PackedWeights& w, const float* x, float* y) {
  PackedRowAccum(simd::Kernels(), w, x, y);
}

void PackedLinearForward(const PackedWeights& w, const float* x, int64_t batch,
                         const float* bias, Activation act, float* out) {
  DUET_CHECK(!NoGradGuard::GradEnabled())
      << "PackedLinearForward is inference-only (no autograd graph)";
  if (w.backend == WeightBackend::kDenseF32 && !w.permuted()) {
    // Identical code path to the unpacked layer (tiled GEMM / zero-skip
    // GEMV + fused epilogue), so dense packing is bitwise-invisible.
    RawMatMulBiasAct(x, w.dense_data(), bias, batch, w.in, w.out, act, out);
    return;
  }
  const bool parallel = PackedParallel(batch, w.in, w.out);
  const simd::KernelTable& kt = simd::Kernels();
  if (!w.permuted()) {
    // Row-parallel sweep: rows are independent and each output element
    // still accumulates k-ascending, so neither the thread count nor the
    // batch size changes any per-row result (the batch-invariance contract
    // holds for every backend).
    std::fill(out, out + batch * w.out, 0.0f);
    ParallelForChunked(
        0, batch,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            PackedRowAccum(kt, w, x + r * w.in, out + r * w.out);
          }
        },
        parallel, /*grain=*/8);
    BiasActEpilogue(out, batch, w.out, bias,
                    w.backend == WeightBackend::kInt8 ? w.scales.data() : nullptr, act,
                    parallel);
    return;
  }
  // Permuted pack: accumulate each row into a per-thread packed-space
  // scratch (CSR rows are single runs, dense/int8/f16 rows stop at their
  // nonzero prefix), gather back into the original column order, then run
  // the SAME shared epilogue as the identity layout over the gathered rows.
  // Per output element the k-accumulation order is unchanged and the
  // epilogue is literally the same code, so exact backends stay
  // bitwise-equal to the identity layout.
  ParallelForChunked(
      0, batch,
      [&](int64_t lo, int64_t hi) {
        thread_local std::vector<float> acc;
        if (static_cast<int64_t>(acc.size()) < w.out) {
          acc.resize(static_cast<size_t>(w.out));
        }
        for (int64_t r = lo; r < hi; ++r) {
          std::fill(acc.begin(), acc.begin() + w.out, 0.0f);
          PackedRowAccum(kt, w, x + r * w.in, acc.data());
          GatherRow(w, acc.data(), out + r * w.out);
        }
      },
      parallel, /*grain=*/8);
  BiasActEpilogue(out, batch, w.out, bias,
                  w.backend == WeightBackend::kInt8 ? w.scales.data() : nullptr, act,
                  parallel);
}

Tensor PackedMatMulBiasAct(const Tensor& a, const PackedWeights& w, const Tensor& bias,
                           Activation act) {
  DUET_CHECK(!NoGradGuard::GradEnabled())
      << "PackedMatMulBiasAct is inference-only (no autograd graph)";
  DUET_CHECK_EQ(a.ndim(), 2);
  DUET_CHECK_EQ(a.dim(1), w.in);
  DUET_CHECK_EQ(bias.ndim(), 1);
  DUET_CHECK_EQ(bias.dim(0), w.out);
  const int64_t b = a.dim(0);
  Tensor out = Tensor::Zeros({b, w.out});
  PackedLinearForward(w, a.data(), b, bias.data(), act, out.data());
  return out;
}

}  // namespace duet::tensor
