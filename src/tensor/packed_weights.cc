#include "tensor/packed_weights.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace duet::tensor {

namespace {

/// Same work threshold as the dense GEMM: parallelize only when the dense
/// equivalent would (CSR does strictly less work, so this is conservative).
inline bool PackedParallel(int64_t m, int64_t k, int64_t n) {
  return m * k * n > (1 << 18);
}

/// CSR row sweep for one input row of `a`: for k ascending, add
/// av * W[k, :]'s nonzero runs into the output row with contiguous SIMD
/// inner loops. Per output element the nonzero terms arrive k-ascending —
/// the same order as the dense kernels — and the skipped terms are exact
/// zeros, so this is bitwise-equal to the dense accumulation (a skipped
/// +-0.0f term never changes a finite accumulator that is never -0.0).
/// Templated over the run-bound width.
template <typename Idx>
inline void CsrRowAccumT(const PackedWeights& w, const Idx* run_start, const Idx* run_len,
                         const float* arow, float* crow) {
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;  // input sparsity: one-hot / wildcard zeros
    const float* vals = w.values.data() + w.val_ptr[static_cast<size_t>(k)];
    const int32_t r0 = w.row_ptr[static_cast<size_t>(k)];
    const int32_t r1 = w.row_ptr[static_cast<size_t>(k) + 1];
    for (int32_t r = r0; r < r1; ++r) {
      float* dst = crow + run_start[r];
      const int64_t len = run_len[r];
#pragma omp simd
      for (int64_t i = 0; i < len; ++i) dst[i] += av * vals[i];
      vals += len;
    }
  }
}

inline void CsrRowAccum(const PackedWeights& w, const float* arow, float* crow) {
  if (w.run_start32.empty()) {
    CsrRowAccumT(w, w.run_start16.data(), w.run_len16.data(), arow, crow);
  } else {
    CsrRowAccumT(w, w.run_start32.data(), w.run_len32.data(), arow, crow);
  }
}

/// Int8 row sweep for one input row: fp32 accumulation of av * q[k, :]. The
/// dequantization scale is applied once per output in the epilogue, not per
/// term, so the accumulator stays a plain fp32 dot product.
inline void Int8RowAccum(const PackedWeights& w, const float* arow, float* crow) {
  for (int64_t k = 0; k < w.in; ++k) {
    const float av = arow[k];
    if (av == 0.0f) continue;
    const int8_t* qrow = w.quantized.data() + k * w.out;
#pragma omp simd
    for (int64_t j = 0; j < w.out; ++j) crow[j] += av * static_cast<float>(qrow[j]);
  }
}

/// Fused bias + activation epilogue over [B, O] rows; the expressions match
/// MatMulBiasAct's epilogue exactly so the CSR path stays bitwise-equal to
/// dense. `scales` (int8 only) folds the per-channel dequantization into the
/// same pass: y = act(acc * scale + bias).
void BiasActEpilogue(float* c, int64_t b, int64_t o, const float* bias, const float* scales,
                     Activation act, bool parallel) {
  ParallelForChunked(
      0, b,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          float* crow = c + r * o;
          if (scales != nullptr) {
#pragma omp simd
            for (int64_t j = 0; j < o; ++j) crow[j] = crow[j] * scales[j] + bias[j];
          } else {
#pragma omp simd
            for (int64_t j = 0; j < o; ++j) crow[j] += bias[j];
          }
          switch (act) {
            case Activation::kNone:
              break;
            case Activation::kRelu:
#pragma omp simd
              for (int64_t j = 0; j < o; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
              break;
            case Activation::kSigmoid:
              for (int64_t j = 0; j < o; ++j) crow[j] = 1.0f / (1.0f + std::exp(-crow[j]));
              break;
            case Activation::kTanh:
              for (int64_t j = 0; j < o; ++j) crow[j] = std::tanh(crow[j]);
              break;
          }
        }
      },
      parallel, /*grain=*/8);
}

}  // namespace

const char* WeightBackendName(WeightBackend backend) {
  switch (backend) {
    case WeightBackend::kDenseF32: return "dense";
    case WeightBackend::kCsrF32: return "csr";
    case WeightBackend::kInt8: return "int8";
  }
  return "unknown";
}

bool ParseWeightBackend(const std::string& name, WeightBackend* out) {
  if (name == "dense") { *out = WeightBackend::kDenseF32; return true; }
  if (name == "csr") { *out = WeightBackend::kCsrF32; return true; }
  if (name == "int8") { *out = WeightBackend::kInt8; return true; }
  return false;
}

uint64_t PackedWeights::bytes() const {
  switch (backend) {
    case WeightBackend::kDenseF32:
      return static_cast<uint64_t>(in) * static_cast<uint64_t>(out) * sizeof(float);
    case WeightBackend::kCsrF32:
      return (row_ptr.size() + val_ptr.size()) * sizeof(int32_t) +
             (run_start16.size() + run_len16.size()) * sizeof(uint16_t) +
             (run_start32.size() + run_len32.size()) * sizeof(int32_t) +
             values.size() * sizeof(float);
    case WeightBackend::kInt8:
      return quantized.size() * sizeof(int8_t) + scales.size() * sizeof(float);
  }
  return 0;
}

int64_t PackedWeights::nnz() const {
  if (backend == WeightBackend::kCsrF32) return static_cast<int64_t>(values.size());
  return in * out;
}

std::shared_ptr<const PackedWeights> PackWeights(const Tensor& w, WeightBackend backend) {
  DUET_CHECK_EQ(w.ndim(), 2);
  auto packed = std::make_shared<PackedWeights>();
  packed->backend = backend;
  packed->in = w.dim(0);
  packed->out = w.dim(1);
  const float* wp = w.data();

  switch (backend) {
    case WeightBackend::kDenseF32:
      // Shares the input handle: the caller hands over an immutable,
      // non-pooled materialization (layers pass a fresh W o M copy), so no
      // second dense buffer is allocated.
      packed->dense = w;
      break;

    case WeightBackend::kCsrF32: {
      const bool narrow = packed->out <= 65535;
      packed->row_ptr.reserve(static_cast<size_t>(packed->in) + 1);
      packed->val_ptr.reserve(static_cast<size_t>(packed->in) + 1);
      packed->row_ptr.push_back(0);
      packed->val_ptr.push_back(0);
      for (int64_t k = 0; k < packed->in; ++k) {
        const float* row = wp + k * packed->out;
        int64_t j = 0;
        while (j < packed->out) {
          // -0.0f == 0.0f, so masked-out entries (w * 0.0f may be -0.0f for
          // negative w) are dropped along with exact zeros.
          if (row[j] == 0.0f) {
            ++j;
            continue;
          }
          const int64_t start = j;
          while (j < packed->out && row[j] != 0.0f) {
            packed->values.push_back(row[j]);
            ++j;
          }
          if (narrow) {
            packed->run_start16.push_back(static_cast<uint16_t>(start));
            packed->run_len16.push_back(static_cast<uint16_t>(j - start));
          } else {
            packed->run_start32.push_back(static_cast<int32_t>(start));
            packed->run_len32.push_back(static_cast<int32_t>(j - start));
          }
        }
        packed->row_ptr.push_back(static_cast<int32_t>(
            narrow ? packed->run_start16.size() : packed->run_start32.size()));
        packed->val_ptr.push_back(static_cast<int32_t>(packed->values.size()));
      }
      break;
    }

    case WeightBackend::kInt8: {
      packed->scales.assign(static_cast<size_t>(packed->out), 0.0f);
      for (int64_t k = 0; k < packed->in; ++k) {
        const float* row = wp + k * packed->out;
        for (int64_t j = 0; j < packed->out; ++j) {
          packed->scales[static_cast<size_t>(j)] =
              std::max(packed->scales[static_cast<size_t>(j)], std::fabs(row[j]));
        }
      }
      std::vector<float> inv(static_cast<size_t>(packed->out), 0.0f);
      for (int64_t j = 0; j < packed->out; ++j) {
        float& s = packed->scales[static_cast<size_t>(j)];
        s /= 127.0f;  // symmetric: q in [-127, 127], 0.0 maps to q == 0
        if (s > 0.0f) inv[static_cast<size_t>(j)] = 1.0f / s;
      }
      packed->quantized.resize(static_cast<size_t>(packed->in * packed->out));
      for (int64_t k = 0; k < packed->in; ++k) {
        const float* row = wp + k * packed->out;
        int8_t* qrow = packed->quantized.data() + k * packed->out;
        for (int64_t j = 0; j < packed->out; ++j) {
          const float q = std::nearbyint(row[j] * inv[static_cast<size_t>(j)]);
          qrow[j] = static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
        }
      }
      break;
    }
  }
  return packed;
}

void PackedGemv(const PackedWeights& w, const float* x, float* y) {
  switch (w.backend) {
    case WeightBackend::kDenseF32: {
      // Same k-ascending zero-skip loop as the dense GEMV fast path.
      const float* wp = w.dense.data();
      for (int64_t k = 0; k < w.in; ++k) {
        const float av = x[k];
        if (av == 0.0f) continue;
        const float* wrow = wp + k * w.out;
#pragma omp simd
        for (int64_t j = 0; j < w.out; ++j) y[j] += av * wrow[j];
      }
      break;
    }
    case WeightBackend::kCsrF32:
      CsrRowAccum(w, x, y);
      break;
    case WeightBackend::kInt8:
      Int8RowAccum(w, x, y);
      break;
  }
}

Tensor PackedMatMulBiasAct(const Tensor& a, const PackedWeights& w, const Tensor& bias,
                           Activation act) {
  DUET_CHECK(!NoGradGuard::GradEnabled())
      << "PackedMatMulBiasAct is inference-only (no autograd graph)";
  DUET_CHECK_EQ(a.ndim(), 2);
  DUET_CHECK_EQ(a.dim(1), w.in);
  DUET_CHECK_EQ(bias.ndim(), 1);
  DUET_CHECK_EQ(bias.dim(0), w.out);

  if (w.backend == WeightBackend::kDenseF32) {
    // Identical code path to the unpacked layer (tiled GEMM / zero-skip
    // GEMV + fused epilogue), so dense packing is bitwise-invisible.
    return MatMulBiasAct(a, w.dense, bias, act);
  }

  const int64_t b = a.dim(0);
  Tensor out = Tensor::Zeros({b, w.out});
  const float* ap = a.data();
  float* cp = out.data();
  const bool parallel = PackedParallel(b, w.in, w.out);
  if (b == 1) {
    PackedGemv(w, ap, cp);
  } else {
    // Row-parallel sweep: rows are independent and each output element
    // still accumulates k-ascending, so neither the thread count nor the
    // batch size changes any per-row result (the batch-invariance contract
    // holds for every backend).
    ParallelForChunked(
        0, b,
        [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float* arow = ap + r * w.in;
            float* crow = cp + r * w.out;
            if (w.backend == WeightBackend::kCsrF32) {
              CsrRowAccum(w, arow, crow);
            } else {
              Int8RowAccum(w, arow, crow);
            }
          }
        },
        parallel, /*grain=*/8);
  }
  BiasActEpilogue(cp, b, w.out, bias.data(),
                  w.backend == WeightBackend::kInt8 ? w.scales.data() : nullptr, act,
                  parallel);
  return out;
}

}  // namespace duet::tensor
