// Baseline-ISA compilation of the shared SIMD kernel bodies. "Scalar" means
// "the target's default ISA": plain x86-64 SSE2, or NEON on aarch64 (NEON is
// the armv8-a baseline, which is why there is no separate NEON tier — this
// TU already auto-vectorizes to it). Compiled with -ffp-contract=off like
// every tier (CMakeLists.txt) so the arithmetic stays mul+add everywhere.
#if defined(__x86_64__) || defined(__i386__)
// Needed when a -march=native build makes __F16C__ visible here too (the
// .inc then takes its F16C fast path even in the "scalar" tier — still
// bitwise-identical, see AxpyF16).
#include <immintrin.h>
#endif

#include <cstdint>

#include "tensor/packed_weights.h"  // HalfToFloat
#include "tensor/simd_dispatch.h"

#define DUET_SIMD_TIER_NS scalar_tier
#include "tensor/simd_kernels.inc"
#undef DUET_SIMD_TIER_NS

namespace duet::tensor::simd {
const KernelTable* ScalarTable() { return &scalar_tier::kTable; }
}  // namespace duet::tensor::simd
