#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "serve/fault_injector.h"

namespace duet::tensor {

namespace {

thread_local bool t_grad_enabled = true;

/// Per-thread inference arena: free lists keyed by exact buffer size. Shapes
/// repeat across batched forward calls, so exact-size buckets reach a 100%
/// hit rate after one warm-up pass. Total pooled bytes are capped so a
/// long-running server that sees many distinct shapes cannot accumulate
/// unbounded per-thread memory; buffers past the cap are simply freed.
constexpr size_t kMaxPooledBytes = size_t{256} << 20;  // 256 MiB per thread

struct ArenaState {
  bool active = false;
  size_t pooled_bytes = 0;
  std::unordered_map<size_t, std::vector<std::vector<float>>> pool;
  InferenceArena::Stats stats;
};
thread_local ArenaState t_arena;

}  // namespace

namespace {
// Starts at 1 so a zero-initialized cache stamp is always stale.
std::atomic<uint64_t> g_parameter_version{1};
}  // namespace

uint64_t ParameterVersion() { return g_parameter_version.load(std::memory_order_acquire); }
void BumpParameterVersion() { g_parameter_version.fetch_add(1, std::memory_order_acq_rel); }

namespace {
// Starts at 1 so id 0 can mean "not a snapshot" in cache slots.
std::atomic<uint64_t> g_next_snapshot_id{1};
}  // namespace

SnapshotStamp AcquireSnapshotStamp() {
  SnapshotStamp stamp;
  stamp.id = g_next_snapshot_id.fetch_add(1, std::memory_order_acq_rel);
  stamp.parameter_version = ParameterVersion();
  return stamp;
}

NoGradGuard::NoGradGuard() : prev_(t_grad_enabled) { t_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { t_grad_enabled = prev_; }
bool NoGradGuard::GradEnabled() { return t_grad_enabled; }

NoGradScope::NoGradScope() : prev_active_(t_arena.active) { t_arena.active = true; }
NoGradScope::~NoGradScope() { t_arena.active = prev_active_; }

bool InferenceArena::Active() { return t_arena.active; }
InferenceArena::Stats InferenceArena::stats() { return t_arena.stats; }
void InferenceArena::ResetStats() { t_arena.stats = Stats{}; }
void InferenceArena::Clear() {
  t_arena.pool.clear();
  t_arena.pooled_bytes = 0;
}

std::vector<float> InferenceArena::Acquire(size_t n) {
  // Fault point: buffer acquisition is where a real allocation failure
  // (std::bad_alloc) would surface on the inference path; the serving
  // layer must degrade the affected shard, not crash.
  serve::FaultInjector::MaybeThrow(serve::FaultPoint::kAllocation,
                                   "injected arena allocation failure");
  auto it = t_arena.pool.find(n);
  if (it != t_arena.pool.end() && !it->second.empty()) {
    std::vector<float> buf = std::move(it->second.back());
    it->second.pop_back();
    t_arena.pooled_bytes -= n * sizeof(float);
    ++t_arena.stats.reuses;
    return buf;
  }
  ++t_arena.stats.fresh_allocs;
  return std::vector<float>(n);
}

void InferenceArena::Release(std::vector<float>&& buf) {
  const size_t bytes = buf.size() * sizeof(float);
  if (t_arena.pooled_bytes + bytes > kMaxPooledBytes) return;  // drop: cap reached
  t_arena.pooled_bytes += bytes;
  ++t_arena.stats.returns;
  t_arena.pool[buf.size()].push_back(std::move(buf));
}

TensorImpl::~TensorImpl() {
  if (pooled) InferenceArena::Release(std::move(value));
}

void TensorImpl::AllocValue(size_t n, float fill) {
  if (InferenceArena::Active() && !requires_grad) {
    value = InferenceArena::Acquire(n);
    pooled = true;
    std::fill(value.begin(), value.end(), fill);
    return;
  }
  value.assign(n, fill);
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float fill, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  int64_t n = 1;
  for (int64_t d : impl->shape) {
    DUET_CHECK_GE(d, 0);
    n *= d;
  }
  impl->requires_grad = requires_grad;
  impl->AllocValue(static_cast<size_t>(n), fill);
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, std::vector<float> data,
                          bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  int64_t n = 1;
  for (int64_t d : impl->shape) n *= d;
  DUET_CHECK_EQ(static_cast<size_t>(n), data.size());
  impl->value = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float v, bool requires_grad) {
  return FromVector({1}, {v}, requires_grad);
}

const std::vector<int64_t>& Tensor::shape() const {
  DUET_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int64_t Tensor::dim(int i) const {
  DUET_CHECK(impl_ != nullptr);
  DUET_CHECK_GE(i, 0);
  DUET_CHECK_LT(static_cast<size_t>(i), impl_->shape.size());
  return impl_->shape[static_cast<size_t>(i)];
}

int Tensor::ndim() const {
  DUET_CHECK(impl_ != nullptr);
  return static_cast<int>(impl_->shape.size());
}

int64_t Tensor::numel() const {
  DUET_CHECK(impl_ != nullptr);
  return impl_->numel();
}

bool Tensor::requires_grad() const {
  DUET_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

float* Tensor::data() {
  DUET_CHECK(impl_ != nullptr);
  return impl_->value.data();
}

const float* Tensor::data() const {
  DUET_CHECK(impl_ != nullptr);
  return impl_->value.data();
}

float* Tensor::grad_data() {
  DUET_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad.data();
}

const std::vector<float>& Tensor::grad_vector() const {
  DUET_CHECK(impl_ != nullptr);
  return impl_->grad;
}

const std::vector<float>& Tensor::value_vector() const {
  DUET_CHECK(impl_ != nullptr);
  return impl_->value;
}

float Tensor::item() const {
  DUET_CHECK(impl_ != nullptr);
  DUET_CHECK_EQ(impl_->numel(), 1);
  return impl_->value[0];
}

void Tensor::ZeroGrad() {
  DUET_CHECK(impl_ != nullptr);
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

void Tensor::Backward() {
  DUET_CHECK(impl_ != nullptr);
  // Iterative post-order DFS to get a topological order of the graph.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      TensorImpl* parent = top.node->parents[top.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  // Fresh gradient buffers for the whole graph, then seed the root with 1s.
  for (TensorImpl* node : order) {
    node->grad.assign(node->value.size(), 0.0f);
  }
  std::fill(impl_->grad.begin(), impl_->grad.end(), 1.0f);
  // Reverse topological order: root last in `order`.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward();
  }
}

Tensor Tensor::Clone() const {
  DUET_CHECK(impl_ != nullptr);
  return FromVector(impl_->shape, impl_->value, false);
}

Tensor Tensor::Detach() const {
  DUET_CHECK(impl_ != nullptr);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->value = impl_->value;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

std::string Tensor::DebugString() const {
  if (!defined()) return "Tensor[undefined]";
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i > 0) os << "x";
    os << impl_->shape[i];
  }
  os << "]";
  return os.str();
}

}  // namespace duet::tensor
