// Pluggable packed-weight backends for the inference-side weight path.
//
// Batch-1 estimation is pure weight traffic: every masked GEMV streams a
// dense fp32 `W o M` whose entries are ~50% structural zeros (the MADE
// connectivity masks). PackedWeights is an immutable, inference-only packed
// form of a layer's effective weight that lets layers trade that traffic
// against numeric fidelity:
//
//  * kDenseF32 — the dense [in, out] fp32 matrix, dispatched through the
//    exact same tiled GEMM / zero-skip GEMV as the unpacked path, so it is
//    bitwise identical to pre-packing behavior.
//  * kCsrF32  — compressed sparse rows over the masked zeros. Only nonzero
//    weights are stored and streamed. Per output element the nonzero terms
//    accumulate in the same k-ascending order as the dense kernels and the
//    skipped terms are exact zeros, so CSR results are bitwise equal to
//    dense (see the -0.0 note on the kernels in ops.cc).
//  * kInt8    — per-output-channel symmetric int8 quantization (scale_j =
//    max_k |W[k,j]| / 127) with fp32 accumulation and a fused
//    dequantize+bias+activation epilogue. 4x less weight traffic;
//    accuracy-bounded rather than exact: |y_q - y| <= 0.5 * scale_j *
//    sum_k |x_k| per output channel.
//  * kF16     — IEEE binary16 weights decoded on load with fp32
//    accumulation (the dequantization IS the half->float widening, fused
//    into the inner loop). 2x less weight traffic; accuracy-bounded with a
//    relative weight error <= 2^-11 per entry (round-to-nearest-even), far
//    tighter than int8's per-channel bound.
//  * kInt4    — per-group symmetric int4 quantization: the k dimension is
//    cut into groups of kInt4GroupSize (32) input rows, and each
//    (group, output-column) pair carries its own fp32 scale
//    s[g][j] = max_{k in g} |W[k,j]| / 7, with weights nibble-packed two
//    per byte (signed values in [-7, 7]). Accumulation is fp32 and the
//    per-group dequantization is fused into the row sweep itself (the
//    scale varies along k, so unlike int8 it cannot be deferred to the
//    per-output epilogue). ~8x less weight payload than fp32 and ~0.625x
//    the total int8 footprint (0.5x payload + group scales, which add
//    out * 4 bytes per 32 input rows); accuracy-bounded per output by
//    |y_q - y| <= 0.5 * sum_k |x_k| * s[g(k), j] — the per-group max
//    tracks local weight magnitude, which is why int4's bound in practice
//    lands near int8's despite half the bits.
//
// Degree-sorted output permutation (compiled-plan packs): a pack may carry
// an output-column permutation chosen so that every MADE-masked row's
// allowed columns become one contiguous stretch in packed space (columns
// stably sorted by descending column nonzero count == descending MADE
// degree). The kernels then accumulate into packed positions — CSR rows
// degenerate to a single (start,len) run, dense/int8/f16 rows stop at a
// per-row nonzero prefix length and skip the structural-zero tail — and the
// fused epilogue gathers results back into the ORIGINAL column order while
// applying scale/bias/activation. Activations therefore stay in the
// original layout between layers and per-output accumulation order is
// unchanged, so permuted dense/CSR packs remain bitwise-identical to the
// unpacked path (see docs/architecture.md §5 for why the permutation must
// NOT be composed into the next layer's pack: reordering the k-sum would
// break bitwise equality).
//
// PackedWeights values are immutable after PackWeights returns and hold no
// autograd state; they are safe to share across threads and to outlive any
// NoGradScope (all storage is plain heap, never the inference arena).
// Layers cache one per parameter version (see nn/layers.h for the
// coherence/publication rules); compiled plans (nn/inference_plan.h) build
// their own permuted packs under the same invalidation rules.
#ifndef DUET_TENSOR_PACKED_WEIGHTS_H_
#define DUET_TENSOR_PACKED_WEIGHTS_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::tensor {

/// Inference weight-storage backend selection.
enum class WeightBackend : int32_t {
  kDenseF32 = 0,  ///< dense fp32 (bitwise-identical to the unpacked path)
  kCsrF32 = 1,    ///< sparse fp32 rows (bitwise-identical, zeros skipped)
  kInt8 = 2,      ///< per-output-channel symmetric int8 (accuracy-bounded)
  kF16 = 3,       ///< IEEE binary16 weights, fp32 accumulate (accuracy-bounded)
  kInt4 = 4,      ///< per-group symmetric int4 nibbles (accuracy-bounded)
};

/// Input rows (k) per int4 quantization group. 32 balances scale overhead
/// (one fp32 per output column per group) against bound tightness; it is
/// baked into the artifact pack encoding, so changing it is a format break.
inline constexpr int64_t kInt4GroupSize = 32;

/// Human-readable backend name ("dense" / "csr" / "int8" / "f16" / "int4"),
/// for bench output.
const char* WeightBackendName(WeightBackend backend);

/// Parses "dense" / "csr" / "int8" / "f16" / "int4" (returns false on
/// anything else).
bool ParseWeightBackend(const std::string& name, WeightBackend* out);

/// fp32 -> IEEE binary16 with round-to-nearest-even; overflow saturates to
/// +-inf, NaN payloads collapse to a quiet NaN. Exposed for tests.
uint16_t FloatToHalf(float f);

/// IEEE binary16 -> fp32 (exact: every half value is representable).
/// Hot-loop decode for the kF16 kernels, so it lives in the header, and
/// branch-free (one select) so the row sweeps stay vectorizable: the
/// exponent is rebias-by-multiply for normals/inf/NaN and
/// reconstruct-by-subtraction for subnormals/zero — the standard
/// fixup-free fp16 widening.
inline float HalfToFloat(uint16_t h) {
  const uint32_t w = static_cast<uint32_t>(h) << 16;
  const uint32_t sign = w & 0x80000000u;
  const uint32_t two_w = w + w;

  // Normal / inf / NaN: shift exponent+mantissa into place with a 3-bit
  // headroom, then scale by 2^-112 to undo the bias shift (saturated
  // exponents overflow to inf / keep NaN payloads).
  const uint32_t exp_offset = 0xE0u << 23;
  uint32_t nbits = (two_w >> 4) + exp_offset;
  float normalized;
  std::memcpy(&normalized, &nbits, sizeof(normalized));
  normalized *= 0x1.0p-112f;

  // Subnormal / zero: park the 10 mantissa bits under 0.5f's exponent and
  // subtract the implicit bit.
  const uint32_t magic_mask = 126u << 23;
  uint32_t dbits = (two_w >> 17) | magic_mask;
  float denormalized;
  std::memcpy(&denormalized, &dbits, sizeof(denormalized));
  denormalized -= 0.5f;

  const uint32_t denormalized_cutoff = 1u << 27;
  uint32_t nres, dres;
  std::memcpy(&nres, &normalized, sizeof(nres));
  std::memcpy(&dres, &denormalized, sizeof(dres));
  const uint32_t bits = sign | (two_w < denormalized_cutoff ? dres : nres);
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Storage for one packed-weight array: either an owned vector (PackWeights
/// builds these) or a non-owning view into externally-owned bytes (mmap-ed
/// snapshot artifacts, artifact/artifact.h — the map outlives the pack via
/// the owning ArtifactModel). Views make zero-copy loads possible: the
/// kernels read through data()/size() and never care which mode they got.
/// Default copy/move are correct in both modes: owned copies re-point at
/// their own vector (view_ stays null), view copies share the external
/// pointer.
template <typename T>
class PackedArray {
 public:
  PackedArray() = default;

  /// Non-owning view over `n` elements of externally-owned storage. The
  /// caller guarantees the storage outlives every copy of the view.
  static PackedArray View(const T* data, size_t n) {
    PackedArray a;
    a.view_ = data;
    a.view_size_ = n;
    return a;
  }

  const T* data() const { return view_ != nullptr ? view_ : vec_.data(); }
  size_t size() const { return view_ != nullptr ? view_size_ : vec_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// Mutators build the owned vector (packing only; never called on views).
  T* data() { return vec_.data(); }
  void reserve(size_t n) { vec_.reserve(n); }
  void resize(size_t n) { vec_.resize(n); }
  void assign(size_t n, const T& v) { vec_.assign(n, v); }
  void push_back(const T& v) { vec_.push_back(v); }
  T& operator[](size_t i) { return vec_[i]; }

  bool operator==(const std::vector<T>& v) const {
    return size() == v.size() && std::memcmp(data(), v.data(), size() * sizeof(T)) == 0;
  }

 private:
  std::vector<T> vec_;
  const T* view_ = nullptr;
  size_t view_size_ = 0;
};

/// One layer's effective weight, packed for inference. Immutable; produced
/// by PackWeights and consumed by PackedLinearForward / PackedGemv.
struct PackedWeights {
  WeightBackend backend = WeightBackend::kDenseF32;
  int64_t in = 0;
  int64_t out = 0;

  /// kDenseF32: the dense [in, out] matrix (no grad, non-pooled storage).
  /// Permuted packs hold a fresh column-permuted copy; unpermuted packs
  /// share the caller's handle. Artifact-loaded packs leave `dense` empty
  /// and view the mapped file through `dense_view` instead — kernels go
  /// through dense_data(), which prefers the view.
  Tensor dense;
  PackedArray<float> dense_view;

  const float* dense_data() const {
    return dense_view.empty() ? dense.data() : dense_view.data();
  }

  /// kCsrF32: rows are the in-dimension k; row k holds its nonzeros as
  /// maximal contiguous column *runs* (start, len) plus the run values in
  /// column order. Run compression instead of per-element column indices
  /// because MADE masks are periodic in the output degree: every row's
  /// allowed columns form a handful of contiguous stretches (the strict
  /// output layer is a single suffix run per row), so the sparse kernel
  /// keeps dense contiguous SIMD inner loops — a per-element index gather
  /// would forfeit vectorization and lose to dense outright. Under the
  /// degree-sorted permutation every row degenerates to exactly one run.
  /// Run bounds are 16-bit whenever out <= 65535 (every in-tree layer); the
  /// *32 pair is the fallback for very wide layers. Exactly one pair is
  /// populated.
  PackedArray<int32_t> row_ptr;      ///< size in+1: run range of row k
  PackedArray<int32_t> val_ptr;      ///< size in+1: value offset of row k
  PackedArray<uint16_t> run_start16;  ///< per run: first column
  PackedArray<uint16_t> run_len16;    ///< per run: contiguous nonzero count
  PackedArray<int32_t> run_start32;   ///< wide-layer fallback
  PackedArray<int32_t> run_len32;     ///< wide-layer fallback
  PackedArray<float> values;          ///< size nnz, row-major column order

  /// kInt8: row-major [in, out] quantized weights (packed column order when
  /// permuted) and per-ORIGINAL-output-channel dequantization scales
  /// (scale 0 for all-zero channels) — the epilogue gathers before scaling,
  /// so scales never need permuting.
  PackedArray<int8_t> quantized;
  PackedArray<float> scales;  ///< size out, original column order

  /// kF16: row-major [in, out] binary16 weights (packed column order when
  /// permuted).
  PackedArray<uint16_t> half;

  /// kInt4: row-major nibble-packed weights, two packed columns per byte —
  /// row k occupies (out + 1) / 2 bytes, byte b of a row holds packed
  /// column 2b in its LOW nibble and 2b+1 in its HIGH nibble (odd `out`
  /// leaves the final high nibble zero). Values are signed [-7, 7] stored
  /// as two's-complement low nibbles (decode: (x ^ 8) - 8). Column order is
  /// PACKED when permuted, like the other payloads.
  PackedArray<uint8_t> nibbles;
  /// kInt4: per-(group, packed-column) dequant scales, group-major —
  /// scale of input row k, packed column p is group_scales[(k /
  /// kInt4GroupSize) * out + p]. PACKED column order (unlike int8's
  /// original-order `scales`): the scale is consumed inside the row sweep
  /// before the epilogue's gather, so it must live in the same layout as
  /// the accumulators.
  PackedArray<float> group_scales;

  /// Degree-sorted output permutation metadata (empty = identity layout).
  /// unperm maps an ORIGINAL output column j to its packed position; the
  /// fused epilogue reads acc[unperm[j]] so downstream activations stay in
  /// the original layout. 16-bit whenever out <= 65535, else the *32
  /// fallback; exactly one is populated for permuted packs.
  PackedArray<uint16_t> unperm16;
  PackedArray<int32_t> unperm32;
  /// Dense/int8/f16 permuted packs: nonzero prefix length of each input row
  /// in packed column space — the kernels stop here and skip the
  /// structural-zero tail. Same 16/32 split as unperm.
  PackedArray<uint16_t> row_len16;
  PackedArray<int32_t> row_len32;

  bool permuted() const { return !unperm16.empty() || !unperm32.empty(); }

  /// Packed footprint in bytes (weight payload + indexing/scale/permutation
  /// metadata; excludes bias, which the layer owns either way). Callers that
  /// share an existing tensor handle into an unpermuted dense pack (compiled
  /// plans over plain Linear layers) account for that themselves — see
  /// nn::InferencePlan::bytes().
  uint64_t bytes() const;

  /// Nonzero count (CSR only; in*out otherwise).
  int64_t nnz() const;
};

/// Packs a dense [in, out] fp32 weight (already masked — i.e. the effective
/// weight the layer multiplies by) into the chosen backend. The input tensor
/// is only read; for kDenseF32 the returned pack shares its handle.
///
/// `perm` (optional) applies a degree-sorted output permutation: packed
/// column p holds original column perm[p] (perm must be a permutation of
/// [0, out)). See the header comment for the layout contract; pass nullptr
/// for the identity layout. A permuted dense pack owns a fresh copy.
std::shared_ptr<const PackedWeights> PackWeights(const Tensor& w, WeightBackend backend,
                                                 const std::vector<int32_t>* perm = nullptr);

/// Process-wide count of PackWeights invocations. The zoo bench asserts this
/// stays flat while serving from mmap-ed artifacts (repack count == 0): an
/// artifact load must wire views into the map, never re-pack.
uint64_t PackWeightsCalls();

/// Derives the degree-sorted output permutation for a masked effective
/// weight: columns stably sorted by descending nonzero count (== descending
/// MADE out-degree for connectivity masks, which makes every row's allowed
/// set a prefix in packed space). Returns an empty vector when the sort is
/// the identity (callers then skip the permutation and its epilogue gather).
std::vector<int32_t> DegreeSortPermutation(const Tensor& w);

/// Fused packed dense layer: act(a x W_packed + bias) for a:[B,I], bias:[O].
/// Inference-only — must run with gradient tracking disabled (the packed
/// form has no autograd graph). kDenseF32 dispatches to the standard tiled
/// GEMM / zero-skip GEMV (bitwise-identical to MatMulBiasAct on the dense
/// matrix); kCsrF32 runs the sparse kernels (bitwise-identical, see header
/// comment); kInt8/kF16/kInt4 accumulate in fp32 and fuse
/// dequant+bias+activation (int4's per-group scale inside the sweep, int8's
/// per-channel scale in the epilogue).
Tensor PackedMatMulBiasAct(const Tensor& a, const PackedWeights& w, const Tensor& bias,
                           Activation act);

/// Raw-buffer fused forward: out[b, w.out] = act(x[b, w.in] x W + bias) for
/// x:[batch, w.in] row-major, overwriting out[batch * w.out]. This is the
/// execution kernel behind both PackedMatMulBiasAct and the compiled
/// inference plans (nn/inference_plan.h): no Tensor temporaries, no
/// virtual dispatch, row-parallel over the pool above the same work
/// threshold as the dense GEMM. Inference-only.
void PackedLinearForward(const PackedWeights& w, const float* x, int64_t batch,
                         const float* bias, Activation act, float* out);

/// Single-row packed kernel: y[0..out) += x[0..in) x W_packed, with x rows
/// skipped at x[k] == 0 (Duet inputs are one-hot-sparse). No bias, no
/// activation, no int8 channel dequantization — the caller applies the
/// epilogue. (kF16 decode and kInt4 per-group dequant ARE applied: they are
/// part of the sweep itself.) For permuted packs y is in PACKED column
/// space (the forward
/// gathers before its epilogue). This is exactly one row of
/// PackedLinearForward's sweep (same accumulation code); exposed separately
/// for kernel tests.
void PackedGemv(const PackedWeights& w, const float* x, float* y);

}  // namespace duet::tensor

#endif  // DUET_TENSOR_PACKED_WEIGHTS_H_
