// Pluggable packed-weight backends for the inference-side weight path.
//
// Batch-1 estimation is pure weight traffic: every masked GEMV streams a
// dense fp32 `W o M` whose entries are ~50% structural zeros (the MADE
// connectivity masks). PackedWeights is an immutable, inference-only packed
// form of a layer's effective weight that lets layers trade that traffic
// against numeric fidelity:
//
//  * kDenseF32 — the dense [in, out] fp32 matrix, dispatched through the
//    exact same tiled GEMM / zero-skip GEMV as the unpacked path, so it is
//    bitwise identical to pre-packing behavior.
//  * kCsrF32  — compressed sparse rows over the masked zeros. Only nonzero
//    weights are stored and streamed. Per output element the nonzero terms
//    accumulate in the same k-ascending order as the dense kernels and the
//    skipped terms are exact zeros, so CSR results are bitwise equal to
//    dense (see the -0.0 note on the kernels in ops.cc).
//  * kInt8    — per-output-channel symmetric int8 quantization (scale_j =
//    max_k |W[k,j]| / 127) with fp32 accumulation and a fused
//    dequantize+bias+activation epilogue. 4x less weight traffic;
//    accuracy-bounded rather than exact: |y_q - y| <= 0.5 * scale_j *
//    sum_k |x_k| per output channel.
//
// PackedWeights values are immutable after PackWeights returns and hold no
// autograd state; they are safe to share across threads and to outlive any
// NoGradScope (all storage is plain heap, never the inference arena).
// Layers cache one per parameter version (see nn/layers.h for the
// coherence/publication rules).
#ifndef DUET_TENSOR_PACKED_WEIGHTS_H_
#define DUET_TENSOR_PACKED_WEIGHTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace duet::tensor {

/// Inference weight-storage backend selection.
enum class WeightBackend : int32_t {
  kDenseF32 = 0,  ///< dense fp32 (bitwise-identical to the unpacked path)
  kCsrF32 = 1,    ///< sparse fp32 rows (bitwise-identical, zeros skipped)
  kInt8 = 2,      ///< per-output-channel symmetric int8 (accuracy-bounded)
};

/// Human-readable backend name ("dense" / "csr" / "int8"), for bench output.
const char* WeightBackendName(WeightBackend backend);

/// Parses "dense" / "csr" / "int8" (returns false on anything else).
bool ParseWeightBackend(const std::string& name, WeightBackend* out);

/// One layer's effective weight, packed for inference. Immutable; produced
/// by PackWeights and consumed by PackedMatMulBiasAct / PackedGemv.
struct PackedWeights {
  WeightBackend backend = WeightBackend::kDenseF32;
  int64_t in = 0;
  int64_t out = 0;

  /// kDenseF32: the dense [in, out] matrix (no grad, non-pooled storage).
  Tensor dense;

  /// kCsrF32: rows are the in-dimension k; row k holds its nonzeros as
  /// maximal contiguous column *runs* (start, len) plus the run values in
  /// column order. Run compression instead of per-element column indices
  /// because MADE masks are periodic in the output degree: every row's
  /// allowed columns form a handful of contiguous stretches (the strict
  /// output layer is a single suffix run per row), so the sparse kernel
  /// keeps dense contiguous SIMD inner loops — a per-element index gather
  /// would forfeit vectorization and lose to dense outright. Run bounds are
  /// 16-bit whenever out <= 65535 (every in-tree layer); the *32 pair is
  /// the fallback for very wide layers. Exactly one pair is populated.
  std::vector<int32_t> row_ptr;      ///< size in+1: run range of row k
  std::vector<int32_t> val_ptr;      ///< size in+1: value offset of row k
  std::vector<uint16_t> run_start16;  ///< per run: first column
  std::vector<uint16_t> run_len16;    ///< per run: contiguous nonzero count
  std::vector<int32_t> run_start32;   ///< wide-layer fallback
  std::vector<int32_t> run_len32;     ///< wide-layer fallback
  std::vector<float> values;          ///< size nnz, row-major column order

  /// kInt8: row-major [in, out] quantized weights and per-output-channel
  /// dequantization scales (scale 0 for all-zero channels).
  std::vector<int8_t> quantized;
  std::vector<float> scales;  ///< size out

  /// Packed footprint in bytes (weight payload + indexing/scale metadata;
  /// excludes bias, which the layer owns either way).
  uint64_t bytes() const;

  /// Nonzero count (CSR only; in*out otherwise).
  int64_t nnz() const;
};

/// Packs a dense [in, out] fp32 weight (already masked — i.e. the effective
/// weight the layer multiplies by) into the chosen backend. The input tensor
/// is only read; for kDenseF32 the returned pack shares its handle.
std::shared_ptr<const PackedWeights> PackWeights(const Tensor& w, WeightBackend backend);

/// Fused packed dense layer: act(a x W_packed + bias) for a:[B,I], bias:[O].
/// Inference-only — must run with gradient tracking disabled (the packed
/// form has no autograd graph). kDenseF32 dispatches to the standard tiled
/// GEMM / zero-skip GEMV (bitwise-identical to MatMulBiasAct on the dense
/// matrix); kCsrF32 runs the sparse kernels (bitwise-identical, see header
/// comment); kInt8 accumulates in fp32 and fuses dequant+bias+activation.
Tensor PackedMatMulBiasAct(const Tensor& a, const PackedWeights& w, const Tensor& bias,
                           Activation act);

/// Single-row packed kernel: y[0..out) += x[0..in) x W_packed, with x rows
/// skipped at x[k] == 0 (Duet inputs are one-hot-sparse). No bias, no
/// activation, no dequantization for kInt8 — the caller applies the fused
/// epilogue. Exposed for kernel tests; PackedMatMulBiasAct uses it for M=1.
void PackedGemv(const PackedWeights& w, const float* x, float* y);

}  // namespace duet::tensor

#endif  // DUET_TENSOR_PACKED_WEIGHTS_H_
