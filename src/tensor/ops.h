// Differentiable operations over Tensor.
//
// The set is exactly what the reproduced models need: dense affine layers
// (MADE / MLP / LSTM), per-column-block softmax heads, the masked-sum +
// product selectivity estimator of Duet (Algorithm 3), embedding lookups,
// and the scalar machinery for the hybrid Q-error loss. Every op records a
// backward closure unless gradients are globally disabled (NoGradGuard) and
// no input requires a gradient.
#ifndef DUET_TENSOR_OPS_H_
#define DUET_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace duet::tensor {

/// Half-open column range `[offset, offset+len)` inside a feature vector;
/// models describe their per-column output heads with these.
struct BlockSpec {
  int64_t offset = 0;
  int64_t len = 0;
};

/// C = A x W for A:[B,I], W:[I,O]. Runs the register-blocked, cache-tiled
/// SIMD kernel (2-D parallel split over row/column blocks); per-row results
/// are bitwise independent of the batch size, which is what makes batched
/// and per-query estimation agree exactly.
Tensor MatMul(const Tensor& a, const Tensor& w);

/// x + b broadcast over rows; x:[B,O], b:[O].
Tensor AddBias(const Tensor& x, const Tensor& b);

/// Epilogue activation fused into MatMulBiasAct's output pass.
enum class Activation : int32_t {
  kNone = 0,
  kRelu = 1,
  kSigmoid = 2,
  kTanh = 3,
};

/// Fused dense layer: act(a x w + bias) computed with the tiled GEMM and a
/// single cache-hot epilogue pass instead of three separate ops (and three
/// activation buffers). a:[B,I], w:[I,O], bias:[O].
Tensor MatMulBiasAct(const Tensor& a, const Tensor& w, const Tensor& bias, Activation act);

/// Raw-buffer fused dense layer for the no-autograd execution layer (packed
/// weights / compiled inference plans): overwrites out[m*n] with
/// act(a x w + bias), running the exact same GEMM + epilogue code as
/// MatMulBiasAct — bitwise-identical, no Tensor temporaries, no graph.
void RawMatMulBiasAct(const float* a, const float* w, const float* bias, int64_t m,
                      int64_t k, int64_t n, Activation act, float* out);

/// Raw-buffer fused bias+activation epilogue over c:[b, o] rows in place —
/// the same single pass MatMulBiasAct fuses after its GEMM. Exposed so the
/// packed/compiled-plan kernels share one epilogue implementation.
void RawBiasAct(float* c, const float* bias, int64_t b, int64_t o, Activation act,
                bool parallel);

/// Routes MatMul / MatMulBiasAct through the original scalar triple-loop
/// kernels (forward and backward). Correctness reference for the tiled GEMM
/// tests; never enabled on hot paths.
void SetUseScalarKernels(bool use);
bool UseScalarKernels();

/// Elementwise ops over equal shapes.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// Scalar broadcast ops.
Tensor AddScalar(const Tensor& x, float c);
Tensor MulScalar(const Tensor& x, float c);

/// Elementwise nonlinearities / transforms.
Tensor Relu(const Tensor& x);
Tensor Sigmoid(const Tensor& x);
Tensor Tanh(const Tensor& x);
Tensor Exp(const Tensor& x);
Tensor Log(const Tensor& x);
/// max(x, c); gradient flows only through the unclamped side.
Tensor ClampMin(const Tensor& x, float c);

/// Concatenation along the feature (last) dimension; all inputs [B, *].
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenation along the batch dimension; all inputs [*, H].
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Column slice [start, start+len) of x:[B,D].
Tensor SliceCols(const Tensor& x, int64_t start, int64_t len);

/// Embedding lookup: weight:[V,E], idx (row per output) -> [B,E].
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int32_t>& idx);

/// Row-wise softmax over each block independently; x:[B,D].
Tensor SoftmaxBlocks(const Tensor& x, const std::vector<BlockSpec>& blocks);

/// Row-wise log-softmax over each block independently.
Tensor LogSoftmaxBlocks(const Tensor& x, const std::vector<BlockSpec>& blocks);

/// Full-row softmax (single block).
Tensor Softmax(const Tensor& x);

/// Mean over batch of the summed per-block negative log-likelihood:
///   (1/B) * sum_b sum_n -logp[b, blocks[n].offset + targets[b*N+n]].
/// This is the L_data cross-entropy of both Duet and Naru.
Tensor NllLossBlocks(const Tensor& logp, const std::vector<BlockSpec>& blocks,
                     const std::vector<int32_t>& targets);

/// out[b,n] = sum_{j in block n} p[b,j]*mask[b,j]; `mask` is a constant
/// tensor (no gradient). This is Algorithm 3's "zero-out" step.
Tensor MaskedSumBlocks(const Tensor& p, const Tensor& mask,
                       const std::vector<BlockSpec>& blocks);

/// Row-sum: [B,N] -> [B].
Tensor SumCols(const Tensor& x);

/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& x);

/// Sum of all elements -> scalar.
Tensor SumAll(const Tensor& x);

/// Elementwise select on a constant condition: cond[i] != 0 ? a[i] : b[i].
Tensor Select(const std::vector<float>& cond, const Tensor& a, const Tensor& b);

/// Segment mean pooling for set models (MSCN): x:[B*S,H] -> [B,H], where
/// element (b,s) participates iff mask[b*S+s] != 0; empty segments yield 0.
Tensor MeanPoolSegments(const Tensor& x, const std::vector<float>& mask, int64_t batch,
                        int64_t set_size);

/// Same data, new shape (sizes must agree). Copying op; identity gradient.
Tensor Reshape(const Tensor& x, std::vector<int64_t> shape);

/// Block-diagonal matrix multiply: x:[B, N*in], w:[N, in, out] ->
/// [B, N*out], where output block k = x_block_k x w[k]. This is Duet's
/// "merged MPSN" acceleration (Sec. IV-F): N per-column MLP layers execute
/// as one fused operation instead of N kernel calls, with identical math.
Tensor BlockDiagMatMul(const Tensor& x, const Tensor& w, int64_t num_blocks, int64_t in,
                       int64_t out);

}  // namespace duet::tensor

#endif  // DUET_TENSOR_OPS_H_
