// Learning-rate schedules and gradient clipping.
//
// The reproduction's training loops (Duet, Naru, UAE, MSCN, LW-NN and the
// Transformer-backbone ablation) share these utilities: schedules map a step
// counter to a learning rate (applied via Optimizer::set_lr), and
// ClipGradNorm bounds the global gradient norm, which is what keeps the
// unmapped-Q-error comparison of Fig. 3 trainable at all.
#ifndef DUET_TENSOR_SCHEDULE_H_
#define DUET_TENSOR_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace duet::tensor {

/// Maps a 0-based step index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  /// Learning rate to use for step `step`.
  virtual float LrAt(int64_t step) const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LrAt(int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Multiplies the base rate by `gamma` every `step_size` steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base_lr, int64_t step_size, float gamma);
  float LrAt(int64_t step) const override;

 private:
  float base_lr_;
  int64_t step_size_;
  float gamma_;
};

/// Linear warmup for `warmup_steps`, then cosine decay to `min_lr` at
/// `total_steps` (and `min_lr` beyond).
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float base_lr, int64_t warmup_steps, int64_t total_steps,
                 float min_lr = 0.0f);
  float LrAt(int64_t step) const override;

 private:
  float base_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
  float min_lr_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm (callers can log or assert on it).
double ClipGradNorm(const std::vector<Tensor>& params, double max_norm);

}  // namespace duet::tensor

#endif  // DUET_TENSOR_SCHEDULE_H_
