// Runtime SIMD dispatch for the inference inner loops.
//
// Every kernel in ops.cc / packed_weights.cc bottoms out in a handful of
// per-row primitive sweeps (axpy over fp32 / int8 / f16 / int4 weight rows,
// plus the 4x16 GEMM micro-tile). Historically those loops were compiled
// once at the translation unit's baseline ISA: a portable build
// (`DUET_NATIVE_ARCH=OFF`, the CI/default configuration) ran them at
// SSE2-width scalar speed, and only a `-march=native` build saw AVX2/AVX-512
// — so one portable binary could not serve at native speed.
//
// This header fixes that with a classic function-pointer dispatch table.
// The SAME kernel source (simd_kernels.inc) is compiled three times into
// per-tier translation units:
//
//   simd_kernels_scalar.cc   baseline ISA (x86-64 SSE2 / aarch64 NEON —
//                            NEON is the armv8 baseline, so the "scalar"
//                            tier auto-vectorizes to NEON there; no
//                            separate tier is needed)
//   simd_kernels_avx2.cc     -mavx2 -mf16c      (x86 only)
//   simd_kernels_avx512.cc   -mavx512f/bw/vl -mf16c (x86 only)
//
// and the CPU is probed ONCE (CPUID via __builtin_cpu_supports) the first
// time Kernels() is called; every kernel then reads its inner loops through
// the selected table.
//
// Bitwise contract — the load-bearing property of this design: all tiers
// execute IDENTICAL per-element arithmetic. The shared source uses plain
// multiply-then-add (never fused multiply-add), every tier TU is compiled
// with -ffp-contract=off so the compiler cannot contract those into FMAs,
// and none of the sweeps contains a cross-lane reduction (each output
// element's k-terms accumulate sequentially, k-ascending, exactly as the
// repo's batch-invariance contract requires). Wider registers change how
// many output elements progress per instruction, never the value any one
// element sees — so every tier is bitwise-identical to the scalar tier for
// every backend, and all of the repo's bitwise guarantees (dense==csr,
// permuted==identity, batch invariance) hold within AND across tiers. The
// f16 decode is exact in both forms (VCVTPH2PS and the branchless software
// widening both produce the unique fp32 value of each half), so it keeps
// the same property. `ctest -L simd` enforces all of this per tier.
//
// Test hooks: the DUET_FORCE_ISA environment variable ("scalar" / "avx2" /
// "avx512" / "neon") clamps the startup selection to a tier the CPU
// actually supports (forcing an unsupported tier falls back to the best
// supported one, so a forced-avx512 run on an AVX2 host degrades safely).
// ForceIsa() does the same switch in-process so one test binary can compare
// tiers directly.
#ifndef DUET_TENSOR_SIMD_DISPATCH_H_
#define DUET_TENSOR_SIMD_DISPATCH_H_

#include <cstdint>
#include <string>

namespace duet::tensor::simd {

/// Instruction-set tiers, best-last. On aarch64 only kScalar exists (the
/// baseline already includes NEON); on x86 the vector tiers additionally
/// require F16C so the f16 decode can use VCVTPH2PS.
enum class IsaTier : int32_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Per-tier inner-loop table. All pointers are non-null in every table.
///
/// The axpy family is the packed row sweep's inner loop: accumulate
/// `av * row[j]` into c[0..n) with backend-specific weight decoding. The
/// decode is fused into the sweep (int8 widen, f16 half->float, int4
/// nibble unpack + per-group scale); accumulation is always fp32.
struct KernelTable {
  /// c[j] += av * w[j]
  void (*axpy_f32)(float av, const float* w, float* c, int64_t n);
  /// c[j] += av * (float)q[j]  (int8 dequant scale applied in the epilogue)
  void (*axpy_i8)(float av, const int8_t* q, float* c, int64_t n);
  /// c[j] += av * HalfToFloat(h[j])
  void (*axpy_f16)(float av, const uint16_t* h, float* c, int64_t n);
  /// c[j] += av * ((float)nib(j) * gs[j]) where nib(j) is the signed int4
  /// unpacked from packed_weights.h's nibble layout (byte j/2, low nibble
  /// for even j) and gs is the per-group scale row for this k (PACKED
  /// column order). int4 dequant is in-kernel: the per-group scale cannot
  /// be deferred to the per-output epilogue.
  void (*axpy_i4)(float av, const uint8_t* nib, const float* gs, float* c, int64_t n);
  /// Full 4x16 register-blocked GEMM micro-tile over one k panel:
  /// C[0..4,0..16) += A_panel x B_panel, k-ascending, with the all-zero
  /// quad skip (see ops.cc GemmTiled).
  void (*micro4x16)(const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
                    int64_t ldc, int64_t kc);
};

/// The active table. First call probes the CPU (honoring DUET_FORCE_ISA)
/// and caches the selection; later calls are one atomic load. Thread-safe.
const KernelTable& Kernels();

/// Tier behind Kernels() right now.
IsaTier ActiveIsa();

/// "scalar" / "avx2" / "avx512" — for bench/test JSON output. On aarch64
/// the scalar tier reports "neon" (NEON is the baseline ISA there).
const char* ActiveIsaName();

/// In-process tier switch for the parity tests: selects `name` if the CPU
/// supports it and returns true, otherwise leaves the selection unchanged
/// and returns false. Accepts the same names as DUET_FORCE_ISA. Not for
/// production use — switching tiers mid-request is safe (all tiers are
/// bitwise-identical) but pointless.
bool ForceIsa(const std::string& name);

/// Best tier this CPU supports (what Kernels() picks absent overrides).
IsaTier DetectIsa();

}  // namespace duet::tensor::simd

#endif  // DUET_TENSOR_SIMD_DISPATCH_H_
