// Differentiable operations for block-causal self-attention.
//
// The paper (Sec. V-A4) anticipates running Duet on a Transformer backbone
// ("it is reasonable to expect that Duet can achieve much higher speed and
// scalability improvement on Transformer since its cost is higher for a
// single forward pass"). These ops are the minimal attention vocabulary
// needed by nn::BlockTransformer: layer normalization, GELU, head
// splitting/merging, batched score/attend contractions, and a causal
// row-softmax. Everything operates on the engine's 2-D [rows, features]
// layout: a batch of token sequences [B, N, D] is stored as [B*N, D] with
// token t of batch b at row b*N + t.
#ifndef DUET_TENSOR_ATTENTION_OPS_H_
#define DUET_TENSOR_ATTENTION_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace duet::tensor {

/// Row-wise layer normalization: y = gamma * (x - mean) / sqrt(var + eps) +
/// beta, statistics taken over the feature (last) dimension of x:[R,C];
/// gamma/beta:[C].
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// GELU activation (tanh approximation, as used by GPT-style blocks).
Tensor Gelu(const Tensor& x);

/// Splits attention heads: x:[B*N, H*Dh] -> [B*H*N, Dh], where the output
/// row of (batch b, head h, token t) is (b*H + h)*N + t. Pure permutation.
Tensor SplitHeads(const Tensor& x, int64_t batch, int64_t n, int64_t heads);

/// Inverse of SplitHeads: x:[B*H*N, Dh] -> [B*N, H*Dh].
Tensor MergeHeads(const Tensor& x, int64_t batch, int64_t n, int64_t heads);

/// Batched attention scores: q,k:[B*N, D] -> [B*N, N] with
///   out[b*N + i, j] = scale * dot(q[b*N + i], k[b*N + j]).
Tensor BatchedScores(const Tensor& q, const Tensor& k, int64_t batch, int64_t n,
                     float scale);

/// Causal row softmax for scores:[B*N, N]: row r (token t = r mod N) is a
/// softmax over columns [0, t]; columns > t are exactly 0. This is the
/// strictly-lower-triangular-plus-diagonal mask of a decoder block.
Tensor CausalSoftmaxRows(const Tensor& scores, int64_t n);

/// Batched value aggregation: attn:[B*N, N], v:[B*N, D] -> [B*N, D] with
///   out[b*N + i] = sum_j attn[b*N + i, j] * v[b*N + j].
Tensor BatchedAttend(const Tensor& attn, const Tensor& v, int64_t batch, int64_t n);

/// Adds a per-token row table (positional embeddings): x:[B*N, D],
/// table:[N, D] -> out[r] = x[r] + table[r mod N].
Tensor AddRowBroadcast(const Tensor& x, const Tensor& table);

}  // namespace duet::tensor

#endif  // DUET_TENSOR_ATTENTION_OPS_H_
