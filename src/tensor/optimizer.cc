#include "tensor/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace duet::tensor {

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Adam::Step() {
  // Bumps ParameterVersion() on scope exit — i.e. after the weights moved —
  // so a concurrent cache rebuild can never stamp half-updated weights with
  // the new version (served models are never stepped in place: online
  // updates step a clone and publish it as a frozen snapshot).
  ParameterMutationGuard mutation;
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad_vector().empty()) continue;  // never touched by backward
    float* w = p.data();
    const float* g = p.grad_vector().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float gj = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * gj;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * gj * gj;
      const float mh = m[j] / bc1;
      const float vh = v[j] / bc2;
      w[j] -= lr_ * mh / (std::sqrt(vh) + eps_);
    }
  }
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Sgd::Step() {
  ParameterMutationGuard mutation;  // bumps ParameterVersion() on scope exit
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad_vector().empty()) continue;
    float* w = p.data();
    const float* g = p.grad_vector().data();
    float* vel = velocity_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      w[j] -= lr_ * vel[j];
    }
  }
}

}  // namespace duet::tensor
