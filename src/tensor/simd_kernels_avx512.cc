// AVX-512 compilation of the shared SIMD kernel bodies (x86 only; this TU
// is empty elsewhere). Compiled with -mavx512f -mavx512bw -mavx512vl -mf16c
// -ffp-contract=off (CMakeLists.txt): 16-wide fp32 lanes; the contract flag
// keeps the arithmetic mul+add so results stay bitwise-identical to the
// scalar tier. Only run when the CPUID probe in simd_dispatch.cc confirms
// AVX512F/BW/VL and F16C at runtime.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstdint>

#include "tensor/packed_weights.h"  // HalfToFloat
#include "tensor/simd_dispatch.h"

#define DUET_SIMD_TIER_NS avx512_tier
#include "tensor/simd_kernels.inc"
#undef DUET_SIMD_TIER_NS

namespace duet::tensor::simd {
const KernelTable* Avx512Table() { return &avx512_tier::kTable; }
}  // namespace duet::tensor::simd

#endif  // x86
