#include "tensor/attention_ops.h"

#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace duet::tensor {

namespace {

using Impl = std::shared_ptr<TensorImpl>;

bool TrackGrad(std::initializer_list<const Tensor*> inputs) {
  if (!NoGradGuard::GradEnabled()) return false;
  for (const Tensor* t : inputs) {
    if (t->defined() && t->requires_grad()) return true;
  }
  return false;
}

Tensor MakeResult(std::vector<int64_t> shape, bool track, std::vector<Impl> parents) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->value.assign(static_cast<size_t>(impl->numel()), 0.0f);
  impl->requires_grad = track;
  if (track) impl->parents = std::move(parents);
  return Tensor(std::move(impl));
}

}  // namespace

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps) {
  DUET_CHECK_EQ(x.ndim(), 2);
  const int64_t rows = x.dim(0), cols = x.dim(1);
  DUET_CHECK_EQ(gamma.numel(), cols);
  DUET_CHECK_EQ(beta.numel(), cols);
  const bool track = TrackGrad({&x, &gamma, &beta});
  Tensor out = MakeResult({rows, cols}, track, {x.impl(), gamma.impl(), beta.impl()});
  // Cached per-row statistics shared with the backward closure.
  auto mean = std::make_shared<std::vector<float>>(static_cast<size_t>(rows));
  auto inv_std = std::make_shared<std::vector<float>>(static_cast<size_t>(rows));
  const float* xp = x.data();
  const float* gp = gamma.data();
  const float* bp = beta.data();
  float* op = out.data();
  ParallelForChunked(
      0, rows,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* xrow = xp + r * cols;
          float mu = 0.0f;
          for (int64_t c = 0; c < cols; ++c) mu += xrow[c];
          mu /= static_cast<float>(cols);
          float var = 0.0f;
          for (int64_t c = 0; c < cols; ++c) {
            const float d = xrow[c] - mu;
            var += d * d;
          }
          var /= static_cast<float>(cols);
          const float istd = 1.0f / std::sqrt(var + eps);
          (*mean)[static_cast<size_t>(r)] = mu;
          (*inv_std)[static_cast<size_t>(r)] = istd;
          float* orow = op + r * cols;
          for (int64_t c = 0; c < cols; ++c) {
            orow[c] = gp[c] * (xrow[c] - mu) * istd + bp[c];
          }
        }
      },
      rows * cols > (1 << 16), 16);
  if (track) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* gi = gamma.impl().get();
    TensorImpl* bi = beta.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, gi, bi, oi, rows, cols, mean, inv_std]() {
      xi->EnsureGrad();
      gi->EnsureGrad();
      bi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* xv = xi->value.data();
      const float* gv = gi->value.data();
      float* gx = xi->grad.data();
      float* gg = gi->grad.data();
      float* gb = bi->grad.data();
      for (int64_t r = 0; r < rows; ++r) {
        const float mu = (*mean)[static_cast<size_t>(r)];
        const float istd = (*inv_std)[static_cast<size_t>(r)];
        const float* grow = g + r * cols;
        const float* xrow = xv + r * cols;
        float* gxrow = gx + r * cols;
        // dxhat = g * gamma; reduce the two row sums the jacobian needs.
        float sum_dxhat = 0.0f;
        float sum_dxhat_xhat = 0.0f;
        for (int64_t c = 0; c < cols; ++c) {
          const float xhat = (xrow[c] - mu) * istd;
          const float dxhat = grow[c] * gv[c];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += dxhat * xhat;
          gg[c] += grow[c] * xhat;
          gb[c] += grow[c];
        }
        const float inv_n = 1.0f / static_cast<float>(cols);
        for (int64_t c = 0; c < cols; ++c) {
          const float xhat = (xrow[c] - mu) * istd;
          const float dxhat = grow[c] * gv[c];
          gxrow[c] += istd * (dxhat - inv_n * sum_dxhat - inv_n * xhat * sum_dxhat_xhat);
        }
      }
    };
  }
  return out;
}

Tensor Gelu(const Tensor& x) {
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult(x.shape(), track, {x.impl()});
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  constexpr float kA = 0.044715f;
  const float* xp = x.data();
  float* op = out.data();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float v = xp[i];
    const float t = std::tanh(kC * (v + kA * v * v * v));
    op[i] = 0.5f * v * (1.0f + t);
  }
  if (track) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, n]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* xv = xi->value.data();
      float* gx = xi->grad.data();
      for (int64_t i = 0; i < n; ++i) {
        const float v = xv[i];
        const float u = kC * (v + kA * v * v * v);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * kA * v * v);
        gx[i] += g[i] * (0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du);
      }
    };
  }
  return out;
}

Tensor SplitHeads(const Tensor& x, int64_t batch, int64_t n, int64_t heads) {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(0), batch * n);
  const int64_t d = x.dim(1);
  DUET_CHECK_EQ(d % heads, 0);
  const int64_t dh = d / heads;
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({batch * heads * n, dh}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      for (int64_t t = 0; t < n; ++t) {
        const float* src = xp + (b * n + t) * d + h * dh;
        float* dst = op + ((b * heads + h) * n + t) * dh;
        for (int64_t c = 0; c < dh; ++c) dst[c] = src[c];
      }
    }
  }
  if (track) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, batch, n, heads, d, dh]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < heads; ++h) {
          for (int64_t t = 0; t < n; ++t) {
            const float* src = g + ((b * heads + h) * n + t) * dh;
            float* dst = gx + (b * n + t) * d + h * dh;
            for (int64_t c = 0; c < dh; ++c) dst[c] += src[c];
          }
        }
      }
    };
  }
  return out;
}

Tensor MergeHeads(const Tensor& x, int64_t batch, int64_t n, int64_t heads) {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(0), batch * heads * n);
  const int64_t dh = x.dim(1);
  const int64_t d = dh * heads;
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({batch * n, d}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t h = 0; h < heads; ++h) {
      for (int64_t t = 0; t < n; ++t) {
        const float* src = xp + ((b * heads + h) * n + t) * dh;
        float* dst = op + (b * n + t) * d + h * dh;
        for (int64_t c = 0; c < dh; ++c) dst[c] = src[c];
      }
    }
  }
  if (track) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, batch, n, heads, d, dh]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t h = 0; h < heads; ++h) {
          for (int64_t t = 0; t < n; ++t) {
            const float* src = g + (b * n + t) * d + h * dh;
            float* dst = gx + ((b * heads + h) * n + t) * dh;
            for (int64_t c = 0; c < dh; ++c) dst[c] += src[c];
          }
        }
      }
    };
  }
  return out;
}

Tensor BatchedScores(const Tensor& q, const Tensor& k, int64_t batch, int64_t n,
                     float scale) {
  DUET_CHECK_EQ(q.ndim(), 2);
  DUET_CHECK_EQ(k.ndim(), 2);
  DUET_CHECK_EQ(q.dim(0), batch * n);
  DUET_CHECK_EQ(k.dim(0), batch * n);
  const int64_t d = q.dim(1);
  DUET_CHECK_EQ(d, k.dim(1));
  const bool track = TrackGrad({&q, &k});
  Tensor out = MakeResult({batch * n, n}, track, {q.impl(), k.impl()});
  const float* qp = q.data();
  const float* kp = k.data();
  float* op = out.data();
  ParallelForChunked(
      0, batch,
      [&](int64_t lo, int64_t hi) {
        for (int64_t b = lo; b < hi; ++b) {
          const float* qb = qp + b * n * d;
          const float* kb = kp + b * n * d;
          float* ob = op + b * n * n;
          for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              float acc = 0.0f;
              const float* qi = qb + i * d;
              const float* kj = kb + j * d;
              for (int64_t c = 0; c < d; ++c) acc += qi[c] * kj[c];
              ob[i * n + j] = scale * acc;
            }
          }
        }
      },
      batch * n * n * d > (1 << 17), 1);
  if (track) {
    TensorImpl* qi_ = q.impl().get();
    TensorImpl* ki_ = k.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [qi_, ki_, oi, batch, n, d, scale]() {
      qi_->EnsureGrad();
      ki_->EnsureGrad();
      const float* g = oi->grad.data();
      const float* qv = qi_->value.data();
      const float* kv = ki_->value.data();
      float* gq = qi_->grad.data();
      float* gk = ki_->grad.data();
      for (int64_t b = 0; b < batch; ++b) {
        const float* gb = g + b * n * n;
        const float* qb = qv + b * n * d;
        const float* kb = kv + b * n * d;
        float* gqb = gq + b * n * d;
        float* gkb = gk + b * n * d;
        for (int64_t i = 0; i < n; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            const float gij = scale * gb[i * n + j];
            if (gij == 0.0f) continue;
            const float* kj = kb + j * d;
            const float* qi = qb + i * d;
            float* gqi = gqb + i * d;
            float* gkj = gkb + j * d;
            for (int64_t c = 0; c < d; ++c) {
              gqi[c] += gij * kj[c];
              gkj[c] += gij * qi[c];
            }
          }
        }
      }
    };
  }
  return out;
}

Tensor CausalSoftmaxRows(const Tensor& scores, int64_t n) {
  DUET_CHECK_EQ(scores.ndim(), 2);
  DUET_CHECK_EQ(scores.dim(1), n);
  const int64_t rows = scores.dim(0);
  DUET_CHECK_EQ(rows % n, 0);
  const bool track = TrackGrad({&scores});
  Tensor out = MakeResult({rows, n}, track, {scores.impl()});
  const float* sp = scores.data();
  float* op = out.data();
  ParallelForChunked(
      0, rows,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const int64_t t = r % n;  // token index -> attend columns [0, t]
          const float* srow = sp + r * n;
          float* orow = op + r * n;
          float mx = srow[0];
          for (int64_t j = 1; j <= t; ++j) mx = std::max(mx, srow[j]);
          float z = 0.0f;
          for (int64_t j = 0; j <= t; ++j) {
            const float e = std::exp(srow[j] - mx);
            orow[j] = e;
            z += e;
          }
          const float inv = 1.0f / z;
          for (int64_t j = 0; j <= t; ++j) orow[j] *= inv;
          for (int64_t j = t + 1; j < n; ++j) orow[j] = 0.0f;
        }
      },
      rows * n > (1 << 16), 16);
  if (track) {
    TensorImpl* si = scores.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [si, oi, rows, n]() {
      si->EnsureGrad();
      const float* g = oi->grad.data();
      const float* y = oi->value.data();
      float* gs = si->grad.data();
      for (int64_t r = 0; r < rows; ++r) {
        const int64_t t = r % n;
        const float* grow = g + r * n;
        const float* yrow = y + r * n;
        float* gsrow = gs + r * n;
        float dot = 0.0f;
        for (int64_t j = 0; j <= t; ++j) dot += grow[j] * yrow[j];
        for (int64_t j = 0; j <= t; ++j) gsrow[j] += yrow[j] * (grow[j] - dot);
      }
    };
  }
  return out;
}

Tensor BatchedAttend(const Tensor& attn, const Tensor& v, int64_t batch, int64_t n) {
  DUET_CHECK_EQ(attn.ndim(), 2);
  DUET_CHECK_EQ(v.ndim(), 2);
  DUET_CHECK_EQ(attn.dim(0), batch * n);
  DUET_CHECK_EQ(attn.dim(1), n);
  DUET_CHECK_EQ(v.dim(0), batch * n);
  const int64_t d = v.dim(1);
  const bool track = TrackGrad({&attn, &v});
  Tensor out = MakeResult({batch * n, d}, track, {attn.impl(), v.impl()});
  const float* ap = attn.data();
  const float* vp = v.data();
  float* op = out.data();
  ParallelForChunked(
      0, batch,
      [&](int64_t lo, int64_t hi) {
        for (int64_t b = lo; b < hi; ++b) {
          const float* ab = ap + b * n * n;
          const float* vb = vp + b * n * d;
          float* ob = op + b * n * d;
          for (int64_t i = 0; i < n; ++i) {
            float* orow = ob + i * d;
            for (int64_t j = 0; j < n; ++j) {
              const float w = ab[i * n + j];
              if (w == 0.0f) continue;
              const float* vrow = vb + j * d;
              for (int64_t c = 0; c < d; ++c) orow[c] += w * vrow[c];
            }
          }
        }
      },
      batch * n * n * d > (1 << 17), 1);
  if (track) {
    TensorImpl* ai = attn.impl().get();
    TensorImpl* vi = v.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [ai, vi, oi, batch, n, d]() {
      ai->EnsureGrad();
      vi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* av = ai->value.data();
      const float* vv = vi->value.data();
      float* ga = ai->grad.data();
      float* gv = vi->grad.data();
      for (int64_t b = 0; b < batch; ++b) {
        const float* gb = g + b * n * d;
        const float* ab = av + b * n * n;
        const float* vb = vv + b * n * d;
        float* gab = ga + b * n * n;
        float* gvb = gv + b * n * d;
        for (int64_t i = 0; i < n; ++i) {
          const float* grow = gb + i * d;
          for (int64_t j = 0; j < n; ++j) {
            const float* vrow = vb + j * d;
            float acc = 0.0f;
            for (int64_t c = 0; c < d; ++c) acc += grow[c] * vrow[c];
            gab[i * n + j] += acc;
            const float w = ab[i * n + j];
            if (w == 0.0f) continue;
            float* gvrow = gvb + j * d;
            for (int64_t c = 0; c < d; ++c) gvrow[c] += w * grow[c];
          }
        }
      }
    };
  }
  return out;
}

Tensor AddRowBroadcast(const Tensor& x, const Tensor& table) {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(table.ndim(), 2);
  const int64_t rows = x.dim(0), d = x.dim(1);
  const int64_t n = table.dim(0);
  DUET_CHECK_EQ(d, table.dim(1));
  DUET_CHECK_EQ(rows % n, 0);
  const bool track = TrackGrad({&x, &table});
  Tensor out = MakeResult({rows, d}, track, {x.impl(), table.impl()});
  const float* xp = x.data();
  const float* tp = table.data();
  float* op = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* trow = tp + (r % n) * d;
    const float* xrow = xp + r * d;
    float* orow = op + r * d;
    for (int64_t c = 0; c < d; ++c) orow[c] = xrow[c] + trow[c];
  }
  if (track) {
    TensorImpl* xi = x.impl().get();
    TensorImpl* ti = table.impl().get();
    TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, ti, oi, rows, n, d]() {
      xi->EnsureGrad();
      ti->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      float* gt = ti->grad.data();
      for (int64_t r = 0; r < rows; ++r) {
        float* gtrow = gt + (r % n) * d;
        const float* grow = g + r * d;
        float* gxrow = gx + r * d;
        for (int64_t c = 0; c < d; ++c) {
          gxrow[c] += grow[c];
          gtrow[c] += grow[c];
        }
      }
    };
  }
  return out;
}

}  // namespace duet::tensor
