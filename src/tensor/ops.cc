#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "tensor/simd_dispatch.h"

namespace duet::tensor {

namespace {

using Impl = std::shared_ptr<TensorImpl>;

bool TrackGrad(std::initializer_list<const Tensor*> inputs) {
  if (!NoGradGuard::GradEnabled()) return false;
  for (const Tensor* t : inputs) {
    if (t->defined() && t->requires_grad()) return true;
  }
  return false;
}

Tensor MakeResult(std::vector<int64_t> shape, bool track,
                  std::vector<Impl> parents) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->requires_grad = track;
  impl->AllocValue(static_cast<size_t>(impl->numel()), 0.0f);
  if (track) impl->parents = std::move(parents);
  return Tensor(std::move(impl));
}

/// Row count for a [B, D] style tensor (1-D tensors are treated as B=1).
int64_t Rows(const Tensor& t) { return t.ndim() == 1 ? 1 : t.dim(0); }
int64_t Cols(const Tensor& t) { return t.ndim() == 1 ? t.dim(0) : t.dim(1); }

// ----- GEMM kernels --------------------------------------------------------
//
// C += A x B with A:[M,K], B:[K,N], C:[M,N], all dense row-major. The tiled
// kernel splits C into kMc x kNc task blocks (2-D parallel split), walks K in
// kKc panels so the B panel and C block stay cache-resident, and bottoms out
// in a 4x16 register-blocked micro-kernel. For every C element the
// accumulation order is k-ascending regardless of tile placement, so results
// do not depend on the batch size or thread count.

std::atomic<bool> g_use_scalar_kernels{false};

constexpr int64_t kMr = 4;    // micro-kernel rows
constexpr int64_t kNr = 16;   // micro-kernel cols
constexpr int64_t kKc = 256;  // k-panel depth
constexpr int64_t kMc = 64;   // task block rows
constexpr int64_t kNc = 256;  // task block cols

/// Work threshold above which GEMM-shaped loops go to the thread pool.
inline bool GemmParallel(int64_t m, int64_t k, int64_t n) {
  return m * k * n > (1 << 18);
}

// The 4x16 micro-tile body lives in simd_kernels.inc (compiled per ISA
// tier; the all-zero-quad skip and k-ascending order are documented there)
// and is reached through the runtime dispatch table, as is the fp32 axpy
// that the ragged-edge tail and the zero-skip GEMV bottom out in.

/// Ragged-edge tile (mr < 4 or nr < 16) over one k panel; same k order.
inline void MicroTail(const simd::KernelTable& kt, const float* a, int64_t lda,
                      const float* b, int64_t ldb, float* c, int64_t ldc, int64_t mr,
                      int64_t nr, int64_t kc) {
  for (int64_t i = 0; i < mr; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int64_t k = 0; k < kc; ++k) {
      kt.axpy_f32(arow[k], b + k * ldb, crow, nr);
    }
  }
}

/// Single-row zero-skip GEMV: C[0,:] += A[0,:] x B. Batch-1 serving is
/// weight-traffic-bound, and Duet's row is sparse (one-hot encodings,
/// wildcard zero blocks, ReLU-zeroed hidden activations), so skipping
/// k with A[k] == 0 avoids streaming most of B. Accumulation stays
/// k-ascending per output element, and a skipped term would contribute
/// exactly +-0.0f to an accumulator that is never -0.0 (C starts at +0 and
/// IEEE sums of finite terms cannot produce -0), so results are bitwise
/// identical to the tiled path — the batch-size-invariance contract holds.
void GemvRowSparse(const float* A, const float* B, float* C, int64_t K, int64_t N,
                   bool parallel) {
  const simd::KernelTable& kt = simd::Kernels();
  ParallelForChunked(
      0, N,
      [&](int64_t n0, int64_t n1) {
        for (int64_t k = 0; k < K; ++k) {
          const float av = A[k];
          if (av == 0.0f) continue;
          kt.axpy_f32(av, B + k * N + n0, C + n0, n1 - n0);
        }
      },
      parallel, /*grain=*/512);
}

/// Tiled C += A x B.
void GemmTiled(const float* A, const float* B, float* C, int64_t M, int64_t K, int64_t N,
               bool parallel) {
  if (M == 1) {
    GemvRowSparse(A, B, C, K, N, parallel);
    return;
  }
  const simd::KernelTable& kt = simd::Kernels();
  const int64_t row_blocks = (M + kMc - 1) / kMc;
  const int64_t col_blocks = (N + kNc - 1) / kNc;
  ParallelForChunked(
      0, row_blocks * col_blocks,
      [&](int64_t lo, int64_t hi) {
        for (int64_t t = lo; t < hi; ++t) {
          const int64_t m0 = (t / col_blocks) * kMc, m1 = std::min(M, m0 + kMc);
          const int64_t n0 = (t % col_blocks) * kNc, n1 = std::min(N, n0 + kNc);
          for (int64_t k0 = 0; k0 < K; k0 += kKc) {
            const int64_t kc = std::min(kKc, K - k0);
            const float* bp = B + k0 * N;
            int64_t i = m0;
            for (; i + kMr <= m1; i += kMr) {
              const float* ap = A + i * K + k0;
              int64_t j = n0;
              for (; j + kNr <= n1; j += kNr) {
                kt.micro4x16(ap, K, bp + j, N, C + i * N + j, N, kc);
              }
              if (j < n1) {
                MicroTail(kt, ap, K, bp + j, N, C + i * N + j, N, kMr, n1 - j, kc);
              }
            }
            if (i < m1) {
              MicroTail(kt, A + i * K + k0, K, bp + n0, N, C + i * N + n0, N, m1 - i,
                        n1 - n0, kc);
            }
          }
        }
      },
      parallel, /*grain=*/1);
}

/// Scalar reference: the original triple loop with the zero-skip.
void GemmScalarRef(const float* A, const float* B, float* C, int64_t M, int64_t K, int64_t N,
                   bool parallel) {
  ParallelForChunked(
      0, M,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* arow = A + r * K;
          float* crow = C + r * N;
          for (int64_t k = 0; k < K; ++k) {
            const float av = arow[k];
            if (av == 0.0f) continue;
            const float* brow = B + k * N;
            for (int64_t c = 0; c < N; ++c) crow[c] += av * brow[c];
          }
        }
      },
      parallel, /*grain=*/8);
}

/// C += A x B for either kernel selection.
inline void GemmAccum(const float* A, const float* B, float* C, int64_t M, int64_t K,
                      int64_t N, bool parallel) {
  if (g_use_scalar_kernels.load(std::memory_order_relaxed)) {
    GemmScalarRef(A, B, C, M, K, N, parallel);
  } else {
    GemmTiled(A, B, C, M, K, N, parallel);
  }
}

/// Dot-form accumulate: C[m,n] += dot(A_m, B_n) over the contiguous last
/// axis; A:[M,L], B:[N,L], C:[M,N]. This is dX += dY x W^T with W:[N,L].
void GemmDotAccum(const float* A, const float* B, float* C, int64_t M, int64_t N, int64_t L,
                  bool parallel) {
  ParallelForChunked(
      0, M,
      [&](int64_t lo, int64_t hi) {
        for (int64_t m = lo; m < hi; ++m) {
          const float* arow = A + m * L;
          float* crow = C + m * N;
          for (int64_t n = 0; n < N; ++n) {
            const float* brow = B + n * L;
            float acc = 0.0f;
#pragma omp simd reduction(+ : acc)
            for (int64_t k = 0; k < L; ++k) acc += arow[k] * brow[k];
            crow[n] += acc;
          }
        }
      },
      parallel, /*grain=*/8);
}

/// Weight-gradient accumulate: C[k,n] += sum_m A[m,k] * G[m,n]; parallel
/// over k rows so accumulation is race-free. Keeps the zero-skip — A is a
/// sparse one-hot-heavy input on the layers where this matters.
void GemmAtBAccum(const float* A, const float* G, float* C, int64_t M, int64_t K, int64_t N,
                  bool parallel) {
  ParallelForChunked(
      0, K,
      [&](int64_t lo, int64_t hi) {
        for (int64_t m = 0; m < M; ++m) {
          const float* arow = A + m * K;
          const float* grow = G + m * N;
          for (int64_t k = lo; k < hi; ++k) {
            const float av = arow[k];
            if (av == 0.0f) continue;
            float* crow = C + k * N;
#pragma omp simd
            for (int64_t n = 0; n < N; ++n) crow[n] += av * grow[n];
          }
        }
      },
      parallel, /*grain=*/8);
}

/// Scalar-reference dX: the original dot loop (no omp simd reduction), used
/// when the scalar flag is set so backward is also a faithful reference.
void GemmDotScalarRef(const float* A, const float* B, float* C, int64_t M, int64_t N,
                      int64_t L, bool parallel) {
  ParallelForChunked(
      0, M,
      [&](int64_t lo, int64_t hi) {
        for (int64_t m = lo; m < hi; ++m) {
          const float* arow = A + m * L;
          float* crow = C + m * N;
          for (int64_t n = 0; n < N; ++n) {
            const float* brow = B + n * L;
            float acc = 0.0f;
            for (int64_t k = 0; k < L; ++k) acc += arow[k] * brow[k];
            crow[n] += acc;
          }
        }
      },
      parallel, /*grain=*/8);
}

inline void GemmDot(const float* A, const float* B, float* C, int64_t M, int64_t N, int64_t L,
                    bool parallel) {
  if (g_use_scalar_kernels.load(std::memory_order_relaxed)) {
    GemmDotScalarRef(A, B, C, M, N, L, parallel);
  } else {
    GemmDotAccum(A, B, C, M, N, L, parallel);
  }
}

/// Shared fused bias+activation epilogue over [B, O] rows. One pass adds the
/// bias and applies the activation while the output rows are still
/// cache-hot. Rows are independent, so it splits across the pool exactly
/// like the GEMM without changing any numerics. Both MatMulBiasAct and the
/// raw compiled-plan path run THIS function, so their epilogue math is
/// structurally identical (bitwise-equality across the two paths never
/// depends on matching codegen of two copies).
void BiasActRows(float* cp, const float* bp, int64_t b, int64_t o, Activation act,
                 bool parallel) {
  ParallelForChunked(
      0, b,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          float* crow = cp + r * o;
          switch (act) {
            case Activation::kNone:
#pragma omp simd
              for (int64_t c = 0; c < o; ++c) crow[c] += bp[c];
              break;
            case Activation::kRelu:
#pragma omp simd
              for (int64_t c = 0; c < o; ++c) {
                const float v = crow[c] + bp[c];
                crow[c] = v > 0.0f ? v : 0.0f;
              }
              break;
            case Activation::kSigmoid:
              for (int64_t c = 0; c < o; ++c) {
                crow[c] = 1.0f / (1.0f + std::exp(-(crow[c] + bp[c])));
              }
              break;
            case Activation::kTanh:
              for (int64_t c = 0; c < o; ++c) crow[c] = std::tanh(crow[c] + bp[c]);
              break;
          }
        }
      },
      parallel, /*grain=*/8);
}

}  // namespace

void SetUseScalarKernels(bool use) {
  g_use_scalar_kernels.store(use, std::memory_order_relaxed);
}

bool UseScalarKernels() { return g_use_scalar_kernels.load(std::memory_order_relaxed); }

Tensor MatMul(const Tensor& a, const Tensor& w) {
  DUET_CHECK_EQ(a.ndim(), 2);
  DUET_CHECK_EQ(w.ndim(), 2);
  const int64_t b = a.dim(0), i_dim = a.dim(1), o = w.dim(1);
  DUET_CHECK_EQ(i_dim, w.dim(0));
  const bool track = TrackGrad({&a, &w});
  Tensor out = MakeResult({b, o}, track, {a.impl(), w.impl()});
  GemmAccum(a.data(), w.data(), out.data(), b, i_dim, o, GemmParallel(b, i_dim, o));
  if (track) {
    TensorImpl* ai = a.impl().get(); TensorImpl* wi = w.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [ai, wi, oi, b, i_dim, o]() {
      const float* gout = oi->grad.data();
      const bool par = GemmParallel(b, i_dim, o);
      if (ai->requires_grad || !ai->parents.empty() || ai->backward) {
        ai->EnsureGrad();
        // dA[r,k] = sum_c gout[r,c] * W[k,c]
        GemmDot(gout, wi->value.data(), ai->grad.data(), b, i_dim, o, par);
      }
      {
        wi->EnsureGrad();
        // dW[k,c] = sum_r A[r,k] * gout[r,c]
        GemmAtBAccum(ai->value.data(), gout, wi->grad.data(), b, i_dim, o, par);
      }
    };
  }
  return out;
}

Tensor MatMulBiasAct(const Tensor& a, const Tensor& w, const Tensor& bias, Activation act) {
  DUET_CHECK_EQ(a.ndim(), 2);
  DUET_CHECK_EQ(w.ndim(), 2);
  DUET_CHECK_EQ(bias.ndim(), 1);
  const int64_t b = a.dim(0), i_dim = a.dim(1), o = w.dim(1);
  DUET_CHECK_EQ(i_dim, w.dim(0));
  DUET_CHECK_EQ(o, bias.dim(0));
  const bool track = TrackGrad({&a, &w, &bias});
  Tensor out = MakeResult({b, o}, track, {a.impl(), w.impl(), bias.impl()});
  float* cp = out.data();
  const bool par = GemmParallel(b, i_dim, o);
  GemmAccum(a.data(), w.data(), cp, b, i_dim, o, par);
  BiasActRows(cp, bias.data(), b, o, act, par);
  if (track) {
    TensorImpl* ai = a.impl().get(); TensorImpl* wi = w.impl().get();
    TensorImpl* bi = bias.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [ai, wi, bi, oi, b, i_dim, o, act]() {
      const int64_t n = b * o;
      const float* g = oi->grad.data();
      const float* y = oi->value.data();
      // Gradient w.r.t. the pre-activation; every activation derivative here
      // is expressible from the output y, so no pre-activation is retained.
      std::vector<float> g_pre_buf;
      const float* gp = g;
      if (act != Activation::kNone) {
        g_pre_buf.resize(static_cast<size_t>(n));
        float* t = g_pre_buf.data();
        switch (act) {
          case Activation::kRelu:
            for (int64_t i = 0; i < n; ++i) t[i] = y[i] > 0.0f ? g[i] : 0.0f;
            break;
          case Activation::kSigmoid:
            for (int64_t i = 0; i < n; ++i) t[i] = g[i] * y[i] * (1.0f - y[i]);
            break;
          case Activation::kTanh:
            for (int64_t i = 0; i < n; ++i) t[i] = g[i] * (1.0f - y[i] * y[i]);
            break;
          case Activation::kNone:
            break;
        }
        gp = t;
      }
      const bool par = GemmParallel(b, i_dim, o);
      if (ai->requires_grad || !ai->parents.empty() || ai->backward) {
        ai->EnsureGrad();
        GemmDot(gp, wi->value.data(), ai->grad.data(), b, i_dim, o, par);
      }
      wi->EnsureGrad();
      GemmAtBAccum(ai->value.data(), gp, wi->grad.data(), b, i_dim, o, par);
      bi->EnsureGrad();
      float* gb = bi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        const float* grow = gp + r * o;
        for (int64_t c = 0; c < o; ++c) gb[c] += grow[c];
      }
    };
  }
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(bias.ndim(), 1);
  const int64_t b = x.dim(0), o = x.dim(1);
  DUET_CHECK_EQ(o, bias.dim(0));
  const bool track = TrackGrad({&x, &bias});
  Tensor out = MakeResult({b, o}, track, {x.impl(), bias.impl()});
  const float* xp = x.data();
  const float* bp = bias.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    for (int64_t c = 0; c < o; ++c) op[r * o + c] = xp[r * o + c] + bp[c];
  }
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* bi = bias.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, bi, oi, b, o]() {
      const float* g = oi->grad.data();
      xi->EnsureGrad();
      bi->EnsureGrad();
      float* gx = xi->grad.data();
      float* gb = bi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (int64_t c = 0; c < o; ++c) {
          gx[r * o + c] += g[r * o + c];
          gb[c] += g[r * o + c];
        }
      }
    };
  }
  return out;
}

namespace {

template <typename Fwd, typename Bwd>
Tensor BinaryElementwise(const Tensor& a, const Tensor& b, Fwd fwd, Bwd bwd) {
  DUET_CHECK_EQ(a.numel(), b.numel());
  const bool track = TrackGrad({&a, &b});
  Tensor out = MakeResult(a.shape(), track, {a.impl(), b.impl()});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) op[i] = fwd(ap[i], bp[i]);
  if (track) {
    TensorImpl* ai = a.impl().get(); TensorImpl* bi = b.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [ai, bi, oi, n, bwd]() {
      ai->EnsureGrad();
      bi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* av = ai->value.data();
      const float* bv = bi->value.data();
      float* ga = ai->grad.data();
      float* gb = bi->grad.data();
      for (int64_t i = 0; i < n; ++i) {
        const auto [da, db] = bwd(av[i], bv[i]);
        ga[i] += g[i] * da;
        gb[i] += g[i] * db;
      }
    };
  }
  return out;
}

template <typename Fwd, typename Bwd>
Tensor UnaryElementwise(const Tensor& x, Fwd fwd, Bwd bwd) {
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult(x.shape(), track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) op[i] = fwd(xp[i]);
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, n, bwd]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* xv = xi->value.data();
      const float* ov = oi->value.data();
      float* gx = xi->grad.data();
      for (int64_t i = 0; i < n; ++i) gx[i] += g[i] * bwd(xv[i], ov[i]);
    };
  }
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return std::pair<float, float>(1.0f, 1.0f); });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return std::pair<float, float>(1.0f, -1.0f); });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x * y; },
      [](float x, float y) { return std::pair<float, float>(y, x); });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryElementwise(
      a, b, [](float x, float y) { return x / y; },
      [](float x, float y) { return std::pair<float, float>(1.0f / y, -x / (y * y)); });
}

Tensor AddScalar(const Tensor& x, float c) {
  return UnaryElementwise(
      x, [c](float v) { return v + c; }, [](float, float) { return 1.0f; });
}

Tensor MulScalar(const Tensor& x, float c) {
  return UnaryElementwise(
      x, [c](float v) { return v * c; }, [c](float, float) { return c; });
}

Tensor Relu(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor Sigmoid(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::exp(v); }, [](float, float y) { return y; });
}

Tensor Log(const Tensor& x) {
  return UnaryElementwise(
      x, [](float v) { return std::log(v); }, [](float v, float) { return 1.0f / v; });
}

Tensor ClampMin(const Tensor& x, float c) {
  return UnaryElementwise(
      x, [c](float v) { return v > c ? v : c; },
      [c](float v, float) { return v > c ? 1.0f : 0.0f; });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  DUET_CHECK(!parts.empty());
  const int64_t b = Rows(parts[0]);
  int64_t total = 0;
  bool track = false;
  std::vector<Impl> parents;
  for (const Tensor& t : parts) {
    DUET_CHECK_EQ(Rows(t), b);
    total += Cols(t);
    track = track || (NoGradGuard::GradEnabled() && t.requires_grad());
    parents.push_back(t.impl());
  }
  Tensor out = MakeResult({b, total}, track, parents);
  float* op = out.data();
  int64_t off = 0;
  for (const Tensor& t : parts) {
    const int64_t w = Cols(t);
    const float* tp = t.data();
    for (int64_t r = 0; r < b; ++r) {
      std::copy(tp + r * w, tp + (r + 1) * w, op + r * total + off);
    }
    off += w;
  }
  if (track) {
    TensorImpl* oi = out.impl().get();
    std::vector<Impl> impls = std::move(parents);
    std::vector<int64_t> widths;
    widths.reserve(impls.size());
    for (const auto& im : impls) {
      widths.push_back(im->shape.size() == 1 ? im->shape[0] : im->shape[1]);
    }
    out.impl()->backward = [oi, impls, widths, b, total]() {
      const float* g = oi->grad.data();
      int64_t off = 0;
      for (size_t k = 0; k < impls.size(); ++k) {
        impls[k]->EnsureGrad();
        float* gp = impls[k]->grad.data();
        const int64_t w = widths[k];
        for (int64_t r = 0; r < b; ++r) {
          for (int64_t c = 0; c < w; ++c) gp[r * w + c] += g[r * total + off + c];
        }
        off += w;
      }
    };
  }
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  DUET_CHECK(!parts.empty());
  const int64_t h = Cols(parts[0]);
  int64_t total_rows = 0;
  bool track = false;
  std::vector<Impl> parents;
  for (const Tensor& t : parts) {
    DUET_CHECK_EQ(Cols(t), h);
    total_rows += Rows(t);
    track = track || (NoGradGuard::GradEnabled() && t.requires_grad());
    parents.push_back(t.impl());
  }
  Tensor out = MakeResult({total_rows, h}, track, parents);
  float* op = out.data();
  int64_t row = 0;
  for (const Tensor& t : parts) {
    const int64_t r = Rows(t);
    std::copy(t.data(), t.data() + r * h, op + row * h);
    row += r;
  }
  if (track) {
    TensorImpl* oi = out.impl().get();
    std::vector<Impl> impls = std::move(parents);
    out.impl()->backward = [oi, impls, h]() {
      const float* g = oi->grad.data();
      int64_t row = 0;
      for (const auto& im : impls) {
        im->EnsureGrad();
        const int64_t r = im->shape.size() == 1 ? 1 : im->shape[0];
        float* gp = im->grad.data();
        for (int64_t i = 0; i < r * h; ++i) gp[i] += g[row * h + i];
        row += r;
      }
    };
  }
  return out;
}

Tensor SliceCols(const Tensor& x, int64_t start, int64_t len) {
  DUET_CHECK_EQ(x.ndim(), 2);
  const int64_t b = x.dim(0), d = x.dim(1);
  DUET_CHECK_GE(start, 0);
  DUET_CHECK_LE(start + len, d);
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({b, len}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    std::copy(xp + r * d + start, xp + r * d + start + len, op + r * len);
  }
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, b, d, start, len]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (int64_t c = 0; c < len; ++c) gx[r * d + start + c] += g[r * len + c];
      }
    };
  }
  return out;
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int32_t>& idx) {
  DUET_CHECK_EQ(weight.ndim(), 2);
  const int64_t v = weight.dim(0), e = weight.dim(1);
  const int64_t b = static_cast<int64_t>(idx.size());
  const bool track = TrackGrad({&weight});
  Tensor out = MakeResult({b, e}, track, {weight.impl()});
  const float* wp = weight.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    DUET_CHECK_GE(idx[static_cast<size_t>(r)], 0);
    DUET_CHECK_LT(idx[static_cast<size_t>(r)], v);
    std::copy(wp + idx[static_cast<size_t>(r)] * e, wp + (idx[static_cast<size_t>(r)] + 1) * e,
              op + r * e);
  }
  if (track) {
    TensorImpl* wi = weight.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<int32_t> idx_copy = idx;
    out.impl()->backward = [wi, oi, idx_copy, e]() {
      wi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gw = wi->grad.data();
      for (size_t r = 0; r < idx_copy.size(); ++r) {
        float* dst = gw + static_cast<int64_t>(idx_copy[r]) * e;
        const float* src = g + static_cast<int64_t>(r) * e;
        for (int64_t c = 0; c < e; ++c) dst[c] += src[c];
      }
    };
  }
  return out;
}

Tensor SoftmaxBlocks(const Tensor& x, const std::vector<BlockSpec>& blocks) {
  DUET_CHECK_EQ(x.ndim(), 2);
  const int64_t b = x.dim(0), d = x.dim(1);
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({b, d}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    for (const BlockSpec& blk : blocks) {
      const float* xs = xp + r * d + blk.offset;
      float* os = op + r * d + blk.offset;
      float mx = xs[0];
      for (int64_t j = 1; j < blk.len; ++j) mx = std::max(mx, xs[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < blk.len; ++j) {
        os[j] = std::exp(xs[j] - mx);
        sum += os[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < blk.len; ++j) os[j] *= inv;
    }
  }
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<BlockSpec> blks = blocks;
    out.impl()->backward = [xi, oi, blks, b, d]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* y = oi->value.data();
      float* gx = xi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (const BlockSpec& blk : blks) {
          const float* gs = g + r * d + blk.offset;
          const float* ys = y + r * d + blk.offset;
          float dot = 0.0f;
          for (int64_t j = 0; j < blk.len; ++j) dot += gs[j] * ys[j];
          float* gxs = gx + r * d + blk.offset;
          for (int64_t j = 0; j < blk.len; ++j) gxs[j] += ys[j] * (gs[j] - dot);
        }
      }
    };
  }
  return out;
}

Tensor LogSoftmaxBlocks(const Tensor& x, const std::vector<BlockSpec>& blocks) {
  DUET_CHECK_EQ(x.ndim(), 2);
  const int64_t b = x.dim(0), d = x.dim(1);
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({b, d}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    for (const BlockSpec& blk : blocks) {
      const float* xs = xp + r * d + blk.offset;
      float* os = op + r * d + blk.offset;
      float mx = xs[0];
      for (int64_t j = 1; j < blk.len; ++j) mx = std::max(mx, xs[j]);
      float sum = 0.0f;
      for (int64_t j = 0; j < blk.len; ++j) sum += std::exp(xs[j] - mx);
      const float lse = mx + std::log(sum);
      for (int64_t j = 0; j < blk.len; ++j) os[j] = xs[j] - lse;
    }
  }
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<BlockSpec> blks = blocks;
    out.impl()->backward = [xi, oi, blks, b, d]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* ly = oi->value.data();
      float* gx = xi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (const BlockSpec& blk : blks) {
          const float* gs = g + r * d + blk.offset;
          const float* ls = ly + r * d + blk.offset;
          float gsum = 0.0f;
          for (int64_t j = 0; j < blk.len; ++j) gsum += gs[j];
          float* gxs = gx + r * d + blk.offset;
          for (int64_t j = 0; j < blk.len; ++j) gxs[j] += gs[j] - std::exp(ls[j]) * gsum;
        }
      }
    };
  }
  return out;
}

Tensor Softmax(const Tensor& x) {
  DUET_CHECK_EQ(x.ndim(), 2);
  return SoftmaxBlocks(x, {{0, x.dim(1)}});
}

Tensor NllLossBlocks(const Tensor& logp, const std::vector<BlockSpec>& blocks,
                     const std::vector<int32_t>& targets) {
  DUET_CHECK_EQ(logp.ndim(), 2);
  const int64_t b = logp.dim(0), d = logp.dim(1);
  const int64_t n = static_cast<int64_t>(blocks.size());
  DUET_CHECK_EQ(static_cast<int64_t>(targets.size()), b * n);
  const bool track = TrackGrad({&logp});
  Tensor out = MakeResult({1}, track, {logp.impl()});
  const float* lp = logp.data();
  double loss = 0.0;
  for (int64_t r = 0; r < b; ++r) {
    for (int64_t k = 0; k < n; ++k) {
      const int32_t t = targets[static_cast<size_t>(r * n + k)];
      DUET_CHECK_GE(t, 0);
      DUET_CHECK_LT(t, blocks[static_cast<size_t>(k)].len);
      loss -= lp[r * d + blocks[static_cast<size_t>(k)].offset + t];
    }
  }
  out.data()[0] = static_cast<float>(loss / static_cast<double>(b));
  if (track) {
    TensorImpl* li = logp.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<BlockSpec> blks = blocks;
    std::vector<int32_t> tgt = targets;
    out.impl()->backward = [li, oi, blks, tgt, b, d, n]() {
      li->EnsureGrad();
      const float g = oi->grad[0] / static_cast<float>(b);
      float* gl = li->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (int64_t k = 0; k < n; ++k) {
          const int32_t t = tgt[static_cast<size_t>(r * n + k)];
          gl[r * d + blks[static_cast<size_t>(k)].offset + t] -= g;
        }
      }
    };
  }
  return out;
}

Tensor MaskedSumBlocks(const Tensor& p, const Tensor& mask,
                       const std::vector<BlockSpec>& blocks) {
  DUET_CHECK_EQ(p.ndim(), 2);
  DUET_CHECK_EQ(mask.numel(), p.numel());
  const int64_t b = p.dim(0), d = p.dim(1);
  const int64_t n = static_cast<int64_t>(blocks.size());
  const bool track = TrackGrad({&p});
  Tensor out = MakeResult({b, n}, track, {p.impl(), mask.impl()});
  const float* pp = p.data();
  const float* mp = mask.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    for (int64_t k = 0; k < n; ++k) {
      const BlockSpec& blk = blocks[static_cast<size_t>(k)];
      const float* ps = pp + r * d + blk.offset;
      const float* ms = mp + r * d + blk.offset;
      float acc = 0.0f;
      for (int64_t j = 0; j < blk.len; ++j) acc += ps[j] * ms[j];
      op[r * n + k] = acc;
    }
  }
  if (track) {
    TensorImpl* pi = p.impl().get(); TensorImpl* mi = mask.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<BlockSpec> blks = blocks;
    out.impl()->backward = [pi, mi, oi, blks, b, d, n]() {
      pi->EnsureGrad();
      const float* g = oi->grad.data();
      const float* mp = mi->value.data();
      float* gp = pi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (int64_t k = 0; k < n; ++k) {
          const BlockSpec& blk = blks[static_cast<size_t>(k)];
          const float gv = g[r * n + k];
          const float* ms = mp + r * d + blk.offset;
          float* gs = gp + r * d + blk.offset;
          for (int64_t j = 0; j < blk.len; ++j) gs[j] += gv * ms[j];
        }
      }
    };
  }
  return out;
}

Tensor SumCols(const Tensor& x) {
  DUET_CHECK_EQ(x.ndim(), 2);
  const int64_t b = x.dim(0), n = x.dim(1);
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({b}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  for (int64_t r = 0; r < b; ++r) {
    float acc = 0.0f;
    for (int64_t c = 0; c < n; ++c) acc += xp[r * n + c];
    op[r] = acc;
  }
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, b, n]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        for (int64_t c = 0; c < n; ++c) gx[r * n + c] += g[r];
      }
    };
  }
  return out;
}

Tensor MeanAll(const Tensor& x) {
  const int64_t n = x.numel();
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({1}, track, {x.impl()});
  const float* xp = x.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += xp[i];
  out.data()[0] = static_cast<float>(acc / static_cast<double>(n));
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, n]() {
      xi->EnsureGrad();
      const float g = oi->grad[0] / static_cast<float>(n);
      float* gx = xi->grad.data();
      for (int64_t i = 0; i < n; ++i) gx[i] += g;
    };
  }
  return out;
}

Tensor SumAll(const Tensor& x) {
  const int64_t n = x.numel();
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({1}, track, {x.impl()});
  const float* xp = x.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) acc += xp[i];
  out.data()[0] = static_cast<float>(acc);
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, n]() {
      xi->EnsureGrad();
      const float g = oi->grad[0];
      float* gx = xi->grad.data();
      for (int64_t i = 0; i < n; ++i) gx[i] += g;
    };
  }
  return out;
}

Tensor Select(const std::vector<float>& cond, const Tensor& a, const Tensor& b) {
  DUET_CHECK_EQ(a.numel(), b.numel());
  DUET_CHECK_EQ(static_cast<int64_t>(cond.size()), a.numel());
  const bool track = TrackGrad({&a, &b});
  Tensor out = MakeResult(a.shape(), track, {a.impl(), b.impl()});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) op[i] = cond[static_cast<size_t>(i)] != 0.0f ? ap[i] : bp[i];
  if (track) {
    TensorImpl* ai = a.impl().get(); TensorImpl* bi = b.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<float> c = cond;
    out.impl()->backward = [ai, bi, oi, c, n]() {
      ai->EnsureGrad();
      bi->EnsureGrad();
      const float* g = oi->grad.data();
      float* ga = ai->grad.data();
      float* gb = bi->grad.data();
      for (int64_t i = 0; i < n; ++i) {
        if (c[static_cast<size_t>(i)] != 0.0f) {
          ga[i] += g[i];
        } else {
          gb[i] += g[i];
        }
      }
    };
  }
  return out;
}

Tensor MeanPoolSegments(const Tensor& x, const std::vector<float>& mask, int64_t batch,
                        int64_t set_size) {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(0), batch * set_size);
  DUET_CHECK_EQ(static_cast<int64_t>(mask.size()), batch * set_size);
  const int64_t h = x.dim(1);
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult({batch, h}, track, {x.impl()});
  const float* xp = x.data();
  float* op = out.data();
  std::vector<float> counts(static_cast<size_t>(batch), 0.0f);
  for (int64_t bi = 0; bi < batch; ++bi) {
    float cnt = 0.0f;
    for (int64_t s = 0; s < set_size; ++s) cnt += mask[static_cast<size_t>(bi * set_size + s)];
    counts[static_cast<size_t>(bi)] = cnt;
    if (cnt == 0.0f) continue;
    for (int64_t s = 0; s < set_size; ++s) {
      const float m = mask[static_cast<size_t>(bi * set_size + s)];
      if (m == 0.0f) continue;
      const float* row = xp + (bi * set_size + s) * h;
      float* orow = op + bi * h;
      for (int64_t c = 0; c < h; ++c) orow[c] += row[c] * m;
    }
    float* orow = op + bi * h;
    for (int64_t c = 0; c < h; ++c) orow[c] /= cnt;
  }
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    std::vector<float> m = mask;
    std::vector<float> cnts = counts;
    out.impl()->backward = [xi, oi, m, cnts, batch, set_size, h]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      for (int64_t bi = 0; bi < batch; ++bi) {
        const float cnt = cnts[static_cast<size_t>(bi)];
        if (cnt == 0.0f) continue;
        for (int64_t s = 0; s < set_size; ++s) {
          const float mv = m[static_cast<size_t>(bi * set_size + s)];
          if (mv == 0.0f) continue;
          float* grow = gx + (bi * set_size + s) * h;
          const float* gorow = g + bi * h;
          for (int64_t c = 0; c < h; ++c) grow[c] += gorow[c] * mv / cnt;
        }
      }
    };
  }
  return out;
}

Tensor Reshape(const Tensor& x, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  DUET_CHECK_EQ(n, x.numel());
  const bool track = TrackGrad({&x});
  Tensor out = MakeResult(std::move(shape), track, {x.impl()});
  std::copy(x.data(), x.data() + n, out.data());
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* oi = out.impl().get();
    out.impl()->backward = [xi, oi, n]() {
      xi->EnsureGrad();
      const float* g = oi->grad.data();
      float* gx = xi->grad.data();
      for (int64_t i = 0; i < n; ++i) gx[i] += g[i];
    };
  }
  return out;
}

Tensor BlockDiagMatMul(const Tensor& x, const Tensor& w, int64_t num_blocks, int64_t in,
                       int64_t out) {
  DUET_CHECK_EQ(x.ndim(), 2);
  DUET_CHECK_EQ(x.dim(1), num_blocks * in);
  DUET_CHECK_EQ(w.numel(), num_blocks * in * out);
  const int64_t b = x.dim(0);
  const bool track = TrackGrad({&x, &w});
  Tensor res = MakeResult({b, num_blocks * out}, track, {x.impl(), w.impl()});
  const float* xp = x.data();
  const float* wp = w.data();
  float* op = res.data();
  ParallelForChunked(
      0, b,
      [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          for (int64_t k = 0; k < num_blocks; ++k) {
            const float* xs = xp + r * num_blocks * in + k * in;
            const float* ws = wp + k * in * out;
            float* os = op + r * num_blocks * out + k * out;
            for (int64_t i = 0; i < in; ++i) {
              const float xv = xs[i];
              if (xv == 0.0f) continue;
              const float* wrow = ws + i * out;
              for (int64_t o = 0; o < out; ++o) os[o] += xv * wrow[o];
            }
          }
        }
      },
      b * num_blocks * in * out > (1 << 18), 8);
  if (track) {
    TensorImpl* xi = x.impl().get(); TensorImpl* wi = w.impl().get(); TensorImpl* oi = res.impl().get();
    res.impl()->backward = [xi, wi, oi, b, num_blocks, in, out]() {
      const float* g = oi->grad.data();
      const float* wp = wi->value.data();
      const float* xp = xi->value.data();
      if (xi->requires_grad) {
        xi->EnsureGrad();
        float* gx = xi->grad.data();
        for (int64_t r = 0; r < b; ++r) {
          for (int64_t k = 0; k < num_blocks; ++k) {
            const float* gs = g + r * num_blocks * out + k * out;
            const float* ws = wp + k * in * out;
            float* gxs = gx + r * num_blocks * in + k * in;
            for (int64_t i = 0; i < in; ++i) {
              const float* wrow = ws + i * out;
              float acc = 0.0f;
              for (int64_t o = 0; o < out; ++o) acc += gs[o] * wrow[o];
              gxs[i] += acc;
            }
          }
        }
      }
      {
        wi->EnsureGrad();
        float* gw = wi->grad.data();
        for (int64_t r = 0; r < b; ++r) {
          for (int64_t k = 0; k < num_blocks; ++k) {
            const float* xs = xp + r * num_blocks * in + k * in;
            const float* gs = g + r * num_blocks * out + k * out;
            float* gws = gw + k * in * out;
            for (int64_t i = 0; i < in; ++i) {
              const float xv = xs[i];
              if (xv == 0.0f) continue;
              float* gwrow = gws + i * out;
              for (int64_t o = 0; o < out; ++o) gwrow[o] += xv * gs[o];
            }
          }
        }
      }
    };
  }
  return res;
}

void RawMatMulBiasAct(const float* a, const float* w, const float* bias, int64_t m,
                      int64_t k, int64_t n, Activation act, float* out) {
  std::fill(out, out + m * n, 0.0f);
  const bool par = GemmParallel(m, k, n);
  GemmAccum(a, w, out, m, k, n, par);
  BiasActRows(out, bias, m, n, act, par);
}

void RawBiasAct(float* c, const float* bias, int64_t b, int64_t o, Activation act,
                bool parallel) {
  BiasActRows(c, bias, b, o, act, parallel);
}

}  // namespace duet::tensor
