#include "tensor/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

namespace duet::tensor::simd {

// Per-tier tables, defined by the simd_kernels_*.cc translation units. The
// vector tiers exist only on x86.
const KernelTable* ScalarTable();
#if defined(__x86_64__) || defined(__i386__)
const KernelTable* Avx2Table();
const KernelTable* Avx512Table();
#endif

namespace {

/// Selected tier + table, published together. The table pointer is the one
/// the kernels load on their hot paths (a single relaxed load per row
/// sweep); the tier enum rides along for ActiveIsa()/ActiveIsaName().
struct Selection {
  IsaTier tier;
  const KernelTable* table;
};

const Selection* SelectionFor(IsaTier tier) {
  static const Selection kScalarSel{IsaTier::kScalar, ScalarTable()};
#if defined(__x86_64__) || defined(__i386__)
  static const Selection kAvx2Sel{IsaTier::kAvx2, Avx2Table()};
  static const Selection kAvx512Sel{IsaTier::kAvx512, Avx512Table()};
  if (tier == IsaTier::kAvx2) return &kAvx2Sel;
  if (tier == IsaTier::kAvx512) return &kAvx512Sel;
#else
  (void)tier;
#endif
  return &kScalarSel;
}

/// Parses a DUET_FORCE_ISA / ForceIsa name. "neon" is accepted as an alias
/// for the scalar tier (NEON is the aarch64 baseline, so the scalar tier IS
/// the NEON tier there). Returns false on unknown names.
bool ParseTier(const std::string& name, IsaTier* out) {
  if (name == "scalar" || name == "neon") { *out = IsaTier::kScalar; return true; }
  if (name == "avx2") { *out = IsaTier::kAvx2; return true; }
  if (name == "avx512") { *out = IsaTier::kAvx512; return true; }
  return false;
}

/// Clamp a requested tier to what the CPU supports: an unsupported request
/// degrades to the best supported tier below it (never refuses to run — a
/// forced-avx512 test job on an AVX2 host still executes, one tier down).
IsaTier ClampToCpu(IsaTier requested) {
  const IsaTier best = DetectIsa();
  return requested <= best ? requested : best;
}

/// Startup selection: CPU probe, then the DUET_FORCE_ISA override (clamped
/// — forcing can only move DOWN from the probed tier, so a forced run is
/// always executable).
const Selection* InitialSelection() {
  IsaTier tier = DetectIsa();
  if (const char* force = std::getenv("DUET_FORCE_ISA")) {
    IsaTier forced;
    if (ParseTier(force, &forced)) tier = ClampToCpu(forced);
  }
  return SelectionFor(tier);
}

std::atomic<const Selection*> g_selection{nullptr};

const Selection& Active() {
  const Selection* sel = g_selection.load(std::memory_order_acquire);
  if (sel == nullptr) {
    // First use (or a benign race): recomputing is idempotent — every
    // thread derives the same selection from the same CPUID + env.
    sel = InitialSelection();
    g_selection.store(sel, std::memory_order_release);
  }
  return *sel;
}

}  // namespace

IsaTier DetectIsa() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  // The vector tiers require F16C so the f16 decode path can use VCVTPH2PS;
  // every AVX2-era CPU has it, but probe rather than assume.
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("f16c")) {
    return IsaTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c")) {
    return IsaTier::kAvx2;
  }
#endif
  return IsaTier::kScalar;
}

const KernelTable& Kernels() { return *Active().table; }

IsaTier ActiveIsa() { return Active().tier; }

const char* ActiveIsaName() {
  switch (ActiveIsa()) {
    case IsaTier::kScalar:
#if defined(__aarch64__)
      return "neon";
#else
      return "scalar";
#endif
    case IsaTier::kAvx2: return "avx2";
    case IsaTier::kAvx512: return "avx512";
  }
  return "unknown";
}

bool ForceIsa(const std::string& name) {
  IsaTier tier;
  if (!ParseTier(name, &tier)) return false;
  if (ClampToCpu(tier) != tier) return false;  // CPU can't run it
  g_selection.store(SelectionFor(tier), std::memory_order_release);
  return true;
}

}  // namespace duet::tensor::simd
