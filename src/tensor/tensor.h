// A small reverse-mode automatic-differentiation tensor engine.
//
// This is the substrate the paper gets from PyTorch/LibTorch: dense float32
// tensors, a dynamically built computation graph, and backpropagation. The
// reproduction implements it from scratch (see DESIGN.md Sec. 1) so that the
// MADE models, the Duet estimator, the Gumbel-Softmax progressive sampler of
// UAE, and the hybrid Q-error loss all run on one deterministic CPU engine.
//
// Design notes:
//  * A Tensor is a shared handle to an Impl node holding value, grad, and an
//    optional backward closure plus parent links (the graph is embedded in
//    the nodes; releasing the loss tensor frees the graph).
//  * Shapes are 1-D to 3-D; almost everything in the library is [batch, dim].
//  * Gradient tracking is opt-in per-leaf (requires_grad) and can be
//    suppressed globally with NoGradGuard for inference paths, which is how
//    the latency benches measure pure forward cost.
#ifndef DUET_TENSOR_TENSOR_H_
#define DUET_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace duet::tensor {

class Tensor;

/// Reference-counted tensor storage + autograd node.
struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> value;
  std::vector<float> grad;  // lazily sized to value.size()
  bool requires_grad = false;
  /// Value buffer came from the inference arena; returned on destruction.
  bool pooled = false;
  std::function<void()> backward;  // accumulates into parents' grads
  std::vector<std::shared_ptr<TensorImpl>> parents;

  TensorImpl() = default;
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  /// Sizes `value` to n floats filled with `fill`. Inside a NoGradScope the
  /// buffer is recycled from the thread-local inference arena when possible.
  void AllocValue(size_t n, float fill);

  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
  }
};

/// Thread-local buffer pool for forward-only (inference) passes. While a
/// NoGradScope is active, tensor value buffers are drawn from per-size free
/// lists and recycled when their TensorImpl dies, so a steady-state batched
/// forward performs zero heap allocations for activations. The counters
/// below are the allocation hook benches/tests assert against.
class InferenceArena {
 public:
  struct Stats {
    uint64_t fresh_allocs = 0;  // pool miss: a new buffer was heap-allocated
    uint64_t reuses = 0;        // pool hit: buffer served from a free list
    uint64_t returns = 0;       // buffers recycled back into the pool
  };

  /// True while a NoGradScope is active on this thread.
  static bool Active();
  static Stats stats();
  static void ResetStats();
  /// Frees every pooled buffer on this thread.
  static void Clear();

 private:
  friend struct TensorImpl;
  friend class NoGradScope;
  static std::vector<float> Acquire(size_t n);
  static void Release(std::vector<float>&& buf);
};

/// Monotonic counter identifying the current "version" of the model
/// parameters in this process. Every optimizer step (`Adam::Step`,
/// `Sgd::Step`) and every checkpoint load (`nn::Module::Load`) bumps it;
/// inference-side caches derived from parameters (e.g. the masked-weight
/// cache in `nn::MaskedLinear`) compare their stamp against this counter and
/// rebuild when stale. Code that mutates parameter storage directly through
/// raw `data()` pointers must call BumpParameterVersion() itself, otherwise
/// such caches will serve stale derived values.
///
/// Thread-safety: both functions are atomic and safe to call from any
/// thread. Note the counter orders cache invalidation only — a parameter
/// update racing an in-flight forward pass over the SAME storage still
/// yields torn reads of the weights themselves. Serving therefore never
/// mutates a served model in place: online updates train a clone and
/// publish it as an immutable snapshot (serve/model_registry.h), and only
/// code that owns a model exclusively may train it while it is being read.
uint64_t ParameterVersion();
void BumpParameterVersion();

/// RAII form of the invalidation contract above: construct one in any scope
/// that mutates parameter storage through raw `data()` pointers (checkpoint
/// restores, fine-tuning drivers, optimizer steps); its destructor bumps
/// ParameterVersion() exactly once, after the mutation — including on early
/// returns and exceptions — so parameter-derived caches can never observe a
/// completed mutation under a stale version. Prefer this over calling
/// BumpParameterVersion() by hand, which is easy to forget on one exit path.
class ParameterMutationGuard {
 public:
  ParameterMutationGuard() = default;
  ~ParameterMutationGuard() { BumpParameterVersion(); }
  ParameterMutationGuard(const ParameterMutationGuard&) = delete;
  ParameterMutationGuard& operator=(const ParameterMutationGuard&) = delete;
};

/// Identity of one immutable published model snapshot, layered on the
/// version counter above: `id` is a process-unique monotonic snapshot
/// number (never 0 — 0 marks "live/mutable model" in cache slots), and
/// `parameter_version` records ParameterVersion() at freeze time, i.e. the
/// version every parameter-derived cache of that snapshot is valid under.
///
/// This is what turns the process-global invalidation scheme into
/// multi-version concurrency: a cache pinned to a SnapshotStamp stops
/// comparing against the *moving* global counter (which a background
/// fine-tune of a cloned model bumps on every optimizer step) and instead
/// trusts the frozen version it was built under — valid forever, because a
/// snapshot's weights never change after freeze. See
/// nn::Module::FreezeInferenceCaches and serve/model_registry.h.
struct SnapshotStamp {
  uint64_t id = 0;
  uint64_t parameter_version = 0;
};

/// Allocates the next snapshot id and pairs it with the current
/// ParameterVersion(). Call only after the snapshot's weights are final.
/// Thread-safe.
SnapshotStamp AcquireSnapshotStamp();

/// RAII guard disabling graph construction (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when graph construction is currently enabled.
  static bool GradEnabled();

 private:
  bool prev_;
};

/// Explicit inference mode: disables graph construction like NoGradGuard and
/// additionally activates the thread-local InferenceArena so activation
/// buffers are recycled across forward passes. Numerics are identical to
/// tracked mode — only allocation behaviour changes.
class NoGradScope {
 public:
  NoGradScope();
  ~NoGradScope();
  NoGradScope(const NoGradScope&) = delete;
  NoGradScope& operator=(const NoGradScope&) = delete;

 private:
  NoGradGuard guard_;
  bool prev_active_;
};

/// Value-semantics handle over TensorImpl.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  /// Allocates a zero-filled tensor.
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);

  /// Allocates a constant-filled tensor.
  static Tensor Full(std::vector<int64_t> shape, float fill, bool requires_grad = false);

  /// Wraps existing data (copied).
  static Tensor FromVector(std::vector<int64_t> shape, std::vector<float> data,
                           bool requires_grad = false);

  /// A scalar (shape [1]).
  static Tensor Scalar(float v, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int64_t dim(int i) const;
  int ndim() const;
  int64_t numel() const;
  bool requires_grad() const;

  float* data();
  const float* data() const;
  /// Grad buffer (allocated on first use).
  float* grad_data();
  const std::vector<float>& grad_vector() const;
  const std::vector<float>& value_vector() const;

  /// Scalar value accessor (requires numel()==1).
  float item() const;

  /// Zeroes this tensor's grad buffer.
  void ZeroGrad();

  /// Runs reverse-mode autodiff from this tensor. The seed gradient is 1 for
  /// every element (callers typically invoke this on a scalar loss).
  void Backward();

  /// Deep copy of values only (no graph, no grad).
  Tensor Clone() const;

  /// Same storage, detached from the graph (no parents / backward).
  Tensor Detach() const;

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

  /// Human-readable short description ("Tensor[2x3]").
  std::string DebugString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace duet::tensor

#endif  // DUET_TENSOR_TENSOR_H_
