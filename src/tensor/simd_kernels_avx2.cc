// AVX2+F16C compilation of the shared SIMD kernel bodies (x86 only; this TU
// is empty elsewhere). Compiled with -mavx2 -mf16c -ffp-contract=off
// (CMakeLists.txt): 8-wide fp32 lanes and the VCVTPH2PS f16 decode, with
// the contract flag keeping the arithmetic mul+add so results stay
// bitwise-identical to the scalar tier. Only run when the CPUID probe in
// simd_dispatch.cc confirms AVX2 and F16C at runtime.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstdint>

#include "tensor/packed_weights.h"  // HalfToFloat
#include "tensor/simd_dispatch.h"

#define DUET_SIMD_TIER_NS avx2_tier
#include "tensor/simd_kernels.inc"
#undef DUET_SIMD_TIER_NS

namespace duet::tensor::simd {
const KernelTable* Avx2Table() { return &avx2_tier::kTable; }
}  // namespace duet::tensor::simd

#endif  // x86
