#include "data/table.h"

#include "common/logging.h"

namespace duet::data {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  DUET_CHECK(!columns_.empty());
  num_rows_ = columns_[0].num_rows();
  for (const Column& c : columns_) {
    DUET_CHECK_EQ(c.num_rows(), num_rows_) << "ragged table";
    DUET_CHECK_GT(c.ndv(), 0);
  }
}

std::vector<int64_t> Table::ColumnNdvs() const {
  std::vector<int64_t> ndvs;
  ndvs.reserve(columns_.size());
  for (const Column& c : columns_) ndvs.push_back(c.ndv());
  return ndvs;
}

int Table::LargestNdvColumn() const {
  int best = 0;
  for (int i = 1; i < num_columns(); ++i) {
    if (column(i).ndv() > column(best).ndv()) best = i;
  }
  return best;
}

}  // namespace duet::data
